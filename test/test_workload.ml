(* Workload generators: determinism, connectivity, uniqueness. *)

open Gbc

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 50 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed diverges" true (seq (Rng.create 42) <> seq c)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done;
  for _ = 1 to 100 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutation () =
  let a = Array.init 20 Fun.id in
  let r = Rng.create 5 in
  Rng.shuffle r a;
  Alcotest.(check (list int)) "permutation" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list a))

let test_sample_distinct () =
  let r = Rng.create 9 in
  let s = Rng.sample_distinct r 10 15 in
  Alcotest.(check int) "count" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 15)) s;
  Alcotest.(check bool) "k > bound rejected" true
    (try
       ignore (Rng.sample_distinct r 5 3);
       false
     with Invalid_argument _ -> true)

let connected (g : Graph_gen.t) =
  let uf = Union_find.create g.Graph_gen.nodes in
  List.iter (fun (u, v, _) -> ignore (Union_find.union uf u v)) g.Graph_gen.edges;
  Union_find.count uf = 1

let test_random_connected () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:30 ~extra_edges:20 in
      Alcotest.(check bool) "connected" true (connected g);
      Alcotest.(check int) "edge count" (29 + 20) (List.length g.Graph_gen.edges);
      let costs = List.map (fun (_, _, c) -> c) g.Graph_gen.edges in
      Alcotest.(check int) "unique costs" (List.length costs)
        (List.length (List.sort_uniq compare costs));
      List.iter
        (fun (u, v, _) ->
          Alcotest.(check bool) "normalized" true (u < v && v < g.Graph_gen.nodes))
        g.Graph_gen.edges)
    [ 1; 2; 3 ]

let test_random_connected_extra_edges_capped () =
  (* Requesting more chords than the complete graph holds must not loop. *)
  let g = Graph_gen.random_connected ~seed:4 ~nodes:5 ~extra_edges:1000 in
  Alcotest.(check int) "complete graph" 10 (List.length g.Graph_gen.edges)

let test_complete_graph () =
  let g = Graph_gen.complete ~seed:8 ~nodes:12 in
  Alcotest.(check int) "all pairs" 66 (List.length g.Graph_gen.edges);
  let costs = List.map (fun (_, _, c) -> c) g.Graph_gen.edges in
  Alcotest.(check int) "unique costs" 66 (List.length (List.sort_uniq compare costs))

let test_grid_graph () =
  let g = Graph_gen.grid ~width:4 ~height:3 in
  Alcotest.(check int) "nodes" 12 g.Graph_gen.nodes;
  (* 3 horizontal per row x 3 rows + 4 vertical per column x 2 = 17. *)
  Alcotest.(check int) "edges" 17 (List.length g.Graph_gen.edges);
  Alcotest.(check bool) "connected" true (connected g)

let test_graph_facts () =
  let g = { Graph_gen.nodes = 2; edges = [ (0, 1, 5) ] } in
  Alcotest.(check int) "undirected doubles" 2 (List.length (Graph_gen.to_facts g));
  Alcotest.(check int) "directed single" 1
    (List.length (Graph_gen.to_facts ~directed:true g));
  Alcotest.(check int) "node facts" 2 (List.length (Graph_gen.node_facts g))

let test_mst_weight_oracle () =
  let g = { Graph_gen.nodes = 3; edges = [ (0, 1, 1); (1, 2, 2); (0, 2, 10) ] } in
  Alcotest.(check int) "triangle MST" 3 (Graph_gen.mst_weight g)

let test_zipf_letters () =
  let letters = Text_gen.zipf ~seed:2 ~letters:20 in
  Alcotest.(check int) "count" 20 (List.length letters);
  List.iter (fun (_, f) -> Alcotest.(check bool) "positive" true (f >= 1)) letters;
  let first = snd (List.hd letters) and last = snd (List.nth letters 19) in
  Alcotest.(check bool) "roughly decreasing" true (first > last)

let test_of_string () =
  let freqs = Text_gen.of_string "aab" in
  Alcotest.(check int) "two symbols" 2 (List.length freqs);
  Alcotest.(check (option int)) "a twice" (Some 2)
    (List.assoc_opt (Printf.sprintf "c_%d" (Char.code 'a')) freqs)

let test_intervals () =
  let jobs = Interval_gen.random ~seed:3 ~jobs:15 ~horizon:100 in
  Alcotest.(check int) "count" 15 (List.length jobs);
  List.iter
    (fun (_, s, f) -> Alcotest.(check bool) "well-formed" true (0 <= s && s < f && f <= 100))
    jobs;
  let finishes = List.map (fun (_, _, f) -> f) jobs in
  Alcotest.(check int) "distinct finishes" 15 (List.length (List.sort_uniq compare finishes))

let () =
  Alcotest.run "workload"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct ] );
      ( "graphs",
        [ Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "extra edges capped" `Quick test_random_connected_extra_edges_capped;
          Alcotest.test_case "complete" `Quick test_complete_graph;
          Alcotest.test_case "grid" `Quick test_grid_graph;
          Alcotest.test_case "fact encodings" `Quick test_graph_facts;
          Alcotest.test_case "mst oracle" `Quick test_mst_weight_oracle ] );
      ( "text and intervals",
        [ Alcotest.test_case "zipf" `Quick test_zipf_letters;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "intervals" `Quick test_intervals ] ) ]
