(* Don't-know search over choice models, and the provenance explainer. *)

open Gbc

(* s1 takes c1 and c2; s2 takes only c1.  Greedy-first assigns (s1,c1)
   and strands s2; a full assignment exists and [find] locates it. *)
let strand_src = {|
takes(s1, c1, 1).
takes(s1, c2, 1).
takes(s2, c1, 1).
a_st(St, Crs) <- takes(St, Crs, _), choice(Crs, St), choice(St, Crs).
|}

let assignments db =
  Database.facts_of db "a_st"
  |> List.map (fun row -> (Value.to_string row.(0), Value.to_string row.(1)))
  |> List.sort compare

let test_greedy_first_strands () =
  let prog = Parser.parse_program strand_src in
  Alcotest.(check (list (pair string string))) "first gamma strands s2"
    [ ("s1", "c1") ]
    (assignments (Choice_fixpoint.model prog))

let test_find_full_assignment () =
  let prog = Parser.parse_program strand_src in
  match
    Choice_fixpoint.find prog ~accept:(fun db ->
        List.length (Database.facts_of db "a_st") = 2)
  with
  | None -> Alcotest.fail "a full assignment exists"
  | Some db ->
    Alcotest.(check (list (pair string string))) "the full assignment"
      [ ("s1", "c2"); ("s2", "c1") ]
      (assignments db)

let test_find_none_when_unsatisfiable () =
  let prog = Parser.parse_program strand_src in
  Alcotest.(check bool) "no 3-assignment" true
    (Choice_fixpoint.find prog ~accept:(fun db ->
         List.length (Database.facts_of db "a_st") >= 3)
    = None)

let test_find_on_positive_program () =
  let prog = Parser.parse_program "e(1). p(X) <- e(X)." in
  Alcotest.(check bool) "deterministic model found" true
    (Choice_fixpoint.find prog ~accept:(fun db -> Database.mem_fact db "p" [| Value.Int 1 |])
    <> None)

(* ---------------- explain ---------------- *)

let tc_prog =
  Parser.parse_program
    "e(1, 2). e(2, 3). tc(X, Y) <- e(X, Y). tc(X, Y) <- e(X, Z), tc(Z, Y)."

let test_explain_fact_leaf () =
  let db = Choice_fixpoint.model tc_prog in
  match Explain.fact tc_prog db "e" [| Value.Int 1; Value.Int 2 |] with
  | Some { Explain.reason = Explain.Extensional; children = []; _ } -> ()
  | _ -> Alcotest.fail "expected an extensional leaf"

let test_explain_derivation_depth () =
  let db = Choice_fixpoint.model tc_prog in
  match Explain.fact tc_prog db "tc" [| Value.Int 1; Value.Int 3 |] with
  | Some node ->
    let rec depth n =
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 n.Explain.children
    in
    Alcotest.(check bool) "two-hop derivation" true (depth node >= 3);
    (match node.Explain.reason with
    | Explain.Rule _ -> ()
    | _ -> Alcotest.fail "expected a rule node")
  | None -> Alcotest.fail "tc(1,3) should be explained"

let test_explain_absent_fact () =
  let db = Choice_fixpoint.model tc_prog in
  Alcotest.(check bool) "absent fact has no explanation" true
    (Explain.fact tc_prog db "tc" [| Value.Int 3; Value.Int 1 |] = None)

let test_explain_greedy_selection () =
  let g = Graph_gen.random_connected ~seed:5 ~nodes:8 ~extra_edges:8 in
  let prog = Prim.program ~root:0 g in
  let db = Stage_engine.model prog in
  let first_edge =
    List.find (fun row -> Value.as_int row.(3) = 1) (Database.facts_of db "prm")
  in
  match Explain.fact prog db "prm" first_edge with
  | Some { Explain.reason = Explain.Selected _; children; _ } ->
    Alcotest.(check bool) "justified by a new_g subgoal" true
      (List.exists (fun c -> c.Explain.pred = "new_g") children)
  | _ -> Alcotest.fail "expected a selection node"

let test_explain_renders () =
  let db = Choice_fixpoint.model tc_prog in
  match Explain.fact tc_prog db "tc" [| Value.Int 1; Value.Int 3 |] with
  | Some node ->
    let text = Format.asprintf "%a" Explain.pp node in
    Alcotest.(check bool) "non-empty rendering" true (String.length text > 40)
  | None -> Alcotest.fail "expected a derivation"

let test_enumeration_dedup_still_complete () =
  (* The state-memoized DFS must still find all models of Example 1. *)
  let prog = Assignment.program Assignment.example1_source in
  Alcotest.(check int) "three models" 3 (List.length (Choice_fixpoint.enumerate prog))

let () =
  Alcotest.run "search_explain"
    [ ( "find",
        [ Alcotest.test_case "greedy-first strands" `Quick test_greedy_first_strands;
          Alcotest.test_case "find locates the full assignment" `Quick
            test_find_full_assignment;
          Alcotest.test_case "find returns None" `Quick test_find_none_when_unsatisfiable;
          Alcotest.test_case "find on deterministic programs" `Quick
            test_find_on_positive_program;
          Alcotest.test_case "dedup keeps completeness" `Quick
            test_enumeration_dedup_still_complete ] );
      ( "explain",
        [ Alcotest.test_case "extensional leaf" `Quick test_explain_fact_leaf;
          Alcotest.test_case "recursive derivation" `Quick test_explain_derivation_depth;
          Alcotest.test_case "absent fact" `Quick test_explain_absent_fact;
          Alcotest.test_case "greedy selection node" `Quick test_explain_greedy_selection;
          Alcotest.test_case "renders" `Quick test_explain_renders ] ) ]
