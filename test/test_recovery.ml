(* Crash-safe durability, end to end.

   Units first: WAL round trips and torn/corrupt tails, the database
   snapshot codec, the snapshot envelope (a flipped byte reads as
   None, never a crash), fsync-failure injection.

   Then restarts: an in-process server with a data dir is shut down
   and rebuilt, and must serve byte-identical models to reclaiming
   clients — through the WAL alone and through snapshot + WAL tail.

   Finally the chaos test: a real gbcd subprocess with an armed WAL
   fault (GBCD_WAL_FAULT) SIGKILLs itself at the k-th appended record
   mid-workload; a supervisor thread respawns it on the same data dir
   and the resilient client reconnects, re-attaches and replays.  For
   every injection point the final models must be byte-identical to an
   uninterrupted run of the same workload.  Reduced scale by default
   (3 programs, every crash point); GBC_CHAOS_FULL=1 replays all 13
   exemplars. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source name = read_file ("../programs/" ^ name)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let tmp_counter = ref 0

let with_tmpdir f =
  incr tmp_counter;
  let dir = Printf.sprintf "gbcd_rec_%d_%d.data" (Unix.getpid ()) !tmp_counter in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------------- WAL units ---------------- *)

let sample_records =
  [ (0, Wal.Load { digest = "d41d8cd98f00b204e9800998ecf8427e" });
    (1, Wal.Assert { text = "p(1). p(2)."; id = Some 7 });
    (2, Wal.Retract { text = "p(2)."; id = None });
    (3, Wal.Run { engine = 0; seed = Some 42; model_digest = "00112233445566778899aabbccddeeff" });
    (4, Wal.Assert { text = String.make 300 'x'; id = None }) ]

let write_sample path =
  let w = Wal.create ~fsync:(Wal.Batch 2) path in
  List.iter (fun (lsn, r) -> Wal.append w ~lsn r) sample_records;
  Wal.close w

let check_records msg want got =
  Alcotest.(check int) (msg ^ ": count") (List.length want) (List.length got);
  List.iter2
    (fun (lsn, r) (lsn', r') ->
      Alcotest.(check int) (msg ^ ": lsn") lsn lsn';
      Alcotest.(check bool) (msg ^ ": record") true (r = r'))
    want got

let test_wal_roundtrip () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      write_sample path;
      let { Wal.records; corrupt } = Wal.replay path in
      Alcotest.(check bool) "no corruption" true (corrupt = None);
      check_records "roundtrip" sample_records records)

let test_wal_missing_file () =
  let { Wal.records; corrupt } = Wal.replay "does_not_exist.log" in
  Alcotest.(check bool) "empty" true (records = [] && corrupt = None)

let test_wal_torn_tail () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      write_sample path;
      (* cut into the final record: a torn write *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 3);
      Unix.close fd;
      let { Wal.records; corrupt } = Wal.replay path in
      Alcotest.(check bool) "tail reported" true (corrupt <> None);
      check_records "torn" (List.filteri (fun i _ -> i < 4) sample_records) records;
      (* the file was truncated back to its last whole record: a second
         replay is clean *)
      let { Wal.records; corrupt } = Wal.replay path in
      Alcotest.(check bool) "clean after truncation" true (corrupt = None);
      check_records "truncated" (List.filteri (fun i _ -> i < 4) sample_records) records;
      (* ... and appending continues where the log now ends *)
      let w = Wal.create ~fsync:Wal.Always path in
      Wal.append w ~lsn:4 (Wal.Assert { text = "q(9)."; id = None });
      Wal.close w;
      let { Wal.records; corrupt } = Wal.replay path in
      Alcotest.(check bool) "appendable after truncation" true
        (corrupt = None && List.length records = 5))

let test_wal_corrupt_crc () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      write_sample path;
      (* flip a payload byte inside the last record *)
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      let _ = Unix.lseek fd (size - 10) Unix.SEEK_SET in
      let b = Bytes.create 1 in
      let _ = Unix.read fd b 0 1 in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      let _ = Unix.lseek fd (size - 10) Unix.SEEK_SET in
      let _ = Unix.write fd b 0 1 in
      Unix.close fd;
      let { Wal.records; corrupt } = Wal.replay path in
      Alcotest.(check bool) "crc mismatch reported" true (corrupt <> None);
      check_records "crc" (List.filteri (fun i _ -> i < 4) sample_records) records)

let test_wal_garbage_file () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let oc = open_out_bin path in
      output_string oc "this is not a WAL at all, not even close";
      close_out oc;
      let { Wal.records; corrupt } = Wal.replay path in
      Alcotest.(check bool) "garbage is an empty log + warning" true
        (records = [] && corrupt <> None))

(* ---------------- snapshot units ---------------- *)

let small_model () =
  Stage_engine.model
    (Parser.parse_program "q(X) <- p(X).\np(1).\np(2).\np(\"a b\\nc\").\n")

let test_db_snapshot_roundtrip () =
  let db = small_model () in
  let buf = Buffer.create 256 in
  Db_snapshot.write buf db;
  let encoded = Buffer.contents buf in
  let db', consumed = Db_snapshot.read encoded 0 in
  Alcotest.(check int) "consumed everything" (String.length encoded) consumed;
  Alcotest.(check string) "canonical rendering survives"
    (Format.asprintf "%a" Database.pp db)
    (Format.asprintf "%a" Database.pp db')

let test_db_snapshot_corrupt () =
  (match Db_snapshot.read "garbage" 0 with
   | exception Db_snapshot.Corrupt _ -> ()
   | _ -> Alcotest.fail "garbage must raise Corrupt");
  let db = small_model () in
  let buf = Buffer.create 256 in
  Db_snapshot.write buf db;
  let encoded = Buffer.contents buf in
  (* every strict prefix is Corrupt, never a crash or a partial db *)
  for len = 0 to String.length encoded - 1 do
    match Db_snapshot.read (String.sub encoded 0 len) 0 with
    | exception Db_snapshot.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "prefix %d raised %s, not Corrupt" len (Printexc.to_string e)
    | _ -> Alcotest.failf "prefix %d decoded" len
  done

let test_snapshot_envelope () =
  with_tmpdir (fun dir ->
      match Durable.create ~fsync:Wal.Always ~snapshot_every:4 dir with
      | Error msg -> Alcotest.fail msg
      | Ok dur ->
        let db = small_model () in
        let snap =
          { Durable.last_lsn = 17;
            digest = Some "d41d8cd98f00b204e9800998ecf8427e";
            db;
            multiset = [];
            last_mut = Some (42, 3);
            mat = None }
        in
        (match Durable.write_snapshot dur ~id:5 snap with
         | Ok () -> ()
         | Error msg -> Alcotest.fail ("write_snapshot: " ^ msg));
        (match Durable.read_snapshot dur ~id:5 with
         | Some s ->
           Alcotest.(check int) "last_lsn" 17 s.Durable.last_lsn;
           Alcotest.(check bool) "dedup state" true (s.Durable.last_mut = Some (42, 3));
           Alcotest.(check string) "db survives"
             (Format.asprintf "%a" Database.pp db)
             (Format.asprintf "%a" Database.pp s.Durable.db)
         | None -> Alcotest.fail "snapshot must read back");
        (* flip one byte: the snapshot reads as None (with a warning),
           recovery falls back to the WAL *)
        let path = Filename.concat dir "sessions/5/snapshot.bin" in
        let size = (Unix.stat path).Unix.st_size in
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
        let _ = Unix.lseek fd (size / 2) Unix.SEEK_SET in
        let b = Bytes.create 1 in
        let _ = Unix.read fd b 0 1 in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x55));
        let _ = Unix.lseek fd (size / 2) Unix.SEEK_SET in
        let _ = Unix.write fd b 0 1 in
        Unix.close fd;
        (match Durable.read_snapshot dur ~id:5 with
         | None -> ()
         | Some _ -> Alcotest.fail "a corrupt snapshot must read as None"))

(* ---------------- in-process server fixtures ---------------- *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Printf.sprintf "gbcd_rec_%d_%d.sock" (Unix.getpid ()) !sock_counter

let with_durable_server ~dir ?(snapshot_every = 4) f =
  let path = fresh_sock () in
  let cfg =
    { Server.default_config with
      port = None;
      unix_path = Some path;
      workers = 2;
      data_dir = Some dir;
      fsync = Wal.Batch 4;
      snapshot_every }
  in
  match Server.create cfg with
  | Error msg -> Alcotest.fail ("server create: " ^ msg)
  | Ok srv ->
    let runner = Domain.spawn (fun () -> Server.run srv) in
    Fun.protect
      ~finally:(fun () ->
        Server.shutdown srv;
        Domain.join runner;
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
      (fun () -> f path)

let rec connect ?(tries = 100) path =
  match Client.connect_unix path with
  | c -> c
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
    Unix.sleepf 0.02;
    connect ~tries:(tries - 1) path

let with_conn path f =
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let expect_loaded = function
  | Protocol.Loaded _ -> ()
  | Protocol.Error { message; _ } -> Alcotest.fail ("load failed: " ^ message)
  | _ -> Alcotest.fail "expected a Loaded frame"

let expect_model = function
  | Protocol.Model { complete = true; text; _ } -> text
  | Protocol.Model _ -> Alcotest.fail "expected a complete model"
  | Protocol.Error { message; _ } -> Alcotest.fail ("run failed: " ^ message)
  | _ -> Alcotest.fail "expected a Model frame"

let expect_attached = function
  | Protocol.Attached { id } -> id
  | Protocol.Error { message; _ } -> Alcotest.fail ("attach failed: " ^ message)
  | _ -> Alcotest.fail "expected an Attached frame"

let run_req =
  Protocol.Run { engine = Protocol.Staged; seed = None; preds = None; budget = Protocol.no_budget }

let assert_req text = Protocol.Assert_facts { text; id = None }
let retract_req text = Protocol.Retract_facts { text; id = None }

(* ---------------- fsync failure injection ---------------- *)

(* A failing fsync surfaces as a structured io-error frame; the
   mutation is not applied, the connection stays usable, and the
   session's durable state stays consistent. *)
let test_fsync_failure_is_structured () =
  with_tmpdir (fun dir ->
      with_durable_server ~dir (fun path ->
          with_conn path (fun c ->
              expect_loaded (Client.rpc c (Protocol.Load "q(X) <- p(X).\np(1).\n"));
              (* the Load appended one record; make the next append fail *)
              Wal.set_fault (Some (Wal.Fsync_fail_at (Wal.appended () + 1)));
              (match Client.rpc c (assert_req "p(2).") with
               | Protocol.Error { code = Protocol.Io_error; _ } -> ()
               | _ -> Alcotest.fail "a failed WAL append must be an io-error frame");
              Wal.set_fault None;
              (* the refused mutation left nothing behind: retry applies *)
              (match Client.rpc c (assert_req "p(2).") with
               | Protocol.Asserted { added = 1 } -> ()
               | _ -> Alcotest.fail "retry after the one-shot fault must succeed");
              Alcotest.(check string) "model is consistent"
                "p(1).\np(2).\nq(1).\nq(2).\n"
                (expect_model (Client.rpc c run_req)))))

(* ---------------- in-process restart recovery ---------------- *)

let tc_src =
  "path(X, Y) <- edge(X, Y).\npath(X, Z) <- path(X, Y), edge(Y, Z).\nedge(1, 2).\n"

(* Shut a durable server down, rebuild it on the same data dir, and
   reclaim the session: program, facts, dedup state and model must all
   survive.  snapshot_every:0 forces pure-WAL recovery;
   snapshot_every:2 forces snapshot + tail recovery. *)
let restart_roundtrip ~snapshot_every () =
  with_tmpdir (fun dir ->
      let expected = ref "" in
      let sid = ref 0 in
      with_durable_server ~dir ~snapshot_every (fun path ->
          with_conn path (fun c ->
              expect_loaded (Client.rpc c (Protocol.Load tc_src));
              (match Client.rpc c (assert_req "edge(2, 3). edge(3, 4).") with
               | Protocol.Asserted { added = 2 } -> ()
               | _ -> Alcotest.fail "assert");
              (match Client.rpc c (retract_req "edge(3, 4).") with
               | Protocol.Retracted { removed = 1 } -> ()
               | _ -> Alcotest.fail "retract");
              (match Client.rpc c (assert_req "edge(3, 5).") with
               | Protocol.Asserted { added = 1 } -> ()
               | _ -> Alcotest.fail "assert 2");
              expected := expect_model (Client.rpc c run_req);
              sid := expect_attached (Client.rpc c (Protocol.Attach None))));
      (* the process state is gone; rebuild from disk *)
      with_durable_server ~dir ~snapshot_every (fun path ->
          with_conn path (fun c ->
              let id = expect_attached (Client.rpc c (Protocol.Attach (Some !sid))) in
              Alcotest.(check int) "same id across restart" !sid id;
              Alcotest.(check string) "byte-identical model after recovery" !expected
                (expect_model (Client.rpc c run_req));
              (* and the recovered session keeps evolving *)
              (match Client.rpc c (retract_req "edge(3, 5).") with
               | Protocol.Retracted { removed = 1 } -> ()
               | _ -> Alcotest.fail "retract after recovery");
              (match Client.rpc c Protocol.Stats with
               | Protocol.Stats_json json ->
                 let contains s sub =
                   let n = String.length sub in
                   let rec go i =
                     i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
                   in
                   go 0
                 in
                 Alcotest.(check bool) "recovery counted" true
                   (contains json "\"sessions_recovered\": 1")
               | _ -> Alcotest.fail "expected Stats_json"))))

let test_restart_wal_only () = restart_roundtrip ~snapshot_every:0 ()
let test_restart_snapshot_tail () = restart_roundtrip ~snapshot_every:2 ()

(* ---------------- the chaos test ---------------- *)

(* Workload for one daemon: for each program — load, assert two extra
   facts, retract one, run — through the resilient client, collecting
   the model texts.  4 WAL records per program. *)
let chaos_progs =
  if Sys.getenv_opt "GBC_CHAOS_FULL" = Some "1" then
    [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
      "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
      "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]
  else [ "example1.dl"; "prim.dl"; "transitive_closure.dl" ]

let chaos_workload r =
  List.map
    (fun name ->
      (match Client.resilient_rpc r (Protocol.Load (source name)) with
       | Protocol.Loaded _ -> ()
       | Protocol.Error { message; _ } -> Alcotest.fail (name ^ ": load: " ^ message)
       | _ -> Alcotest.fail (name ^ ": expected Loaded"));
      (match Client.resilient_rpc r (assert_req "zz_chaos(1). zz_chaos(2).") with
       | Protocol.Asserted { added = 2 } -> ()
       | Protocol.Error { message; _ } -> Alcotest.fail (name ^ ": assert: " ^ message)
       | _ -> Alcotest.fail (name ^ ": expected Asserted"));
      (match Client.resilient_rpc r (retract_req "zz_chaos(2).") with
       | Protocol.Retracted { removed = 1 } -> ()
       | Protocol.Error { message; _ } -> Alcotest.fail (name ^ ": retract: " ^ message)
       | _ -> Alcotest.fail (name ^ ": expected Retracted"));
      (match Client.resilient_rpc r run_req with
       | Protocol.Model { complete = true; text; _ } -> (name, text)
       | Protocol.Model { diagnostic; _ } ->
         Alcotest.fail
           (name ^ ": partial model: " ^ Option.value ~default:"?" diagnostic)
       | Protocol.Error { message; _ } -> Alcotest.fail (name ^ ": run: " ^ message)
       | _ -> Alcotest.fail (name ^ ": expected Model")))
    chaos_progs

let records_per_prog = 4

let daemon_exe = "../bin/gbcd.exe"

let spawn_daemon ?fault ~dir ~sock () =
  let args =
    [| daemon_exe; "--no-tcp"; "--unix"; sock; "--data-dir"; dir;
       "--workers"; "2"; "--fsync"; "batch:4"; "--snapshot-every"; "3" |]
  in
  let base =
    Array.to_list (Unix.environment ())
    |> List.filter (fun s -> not (String.length s >= 15 && String.sub s 0 15 = "GBCD_WAL_FAULT="))
  in
  let env =
    match fault with
    | None -> Array.of_list base
    | Some f -> Array.of_list (("GBCD_WAL_FAULT=" ^ f) :: base)
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () -> Unix.create_process_env daemon_exe args env Unix.stdin devnull Unix.stderr)

(* Run the workload against a daemon armed with [fault]; a supervisor
   thread respawns it (without the fault) whenever it dies, so the
   resilient client can reconnect, re-attach and replay. *)
let chaos_run ?fault dir =
  let sock = fresh_sock () in
  let first_pid = spawn_daemon ?fault ~dir ~sock () in
  let pid = ref first_pid in
  let stop = Atomic.make false in
  let supervisor =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          (match Unix.waitpid [ Unix.WNOHANG ] !pid with
           | 0, _ -> Unix.sleepf 0.02
           | _, _ -> pid := spawn_daemon ~dir ~sock ()
           | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.sleepf 0.02);
        done)
      ()
  in
  let r = Client.resilient ~connect_timeout:2.0 ~retries:10 (Client.Uds sock) in
  Fun.protect
    ~finally:(fun () ->
      Client.resilient_close r;
      Atomic.set stop true;
      Thread.join supervisor;
      (try Unix.kill !pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] !pid) with Unix.Unix_error _ -> ());
      (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ()))
    (fun () ->
      let results = chaos_workload r in
      (results, !pid <> first_pid))

let test_chaos () =
  (* the uninterrupted reference run *)
  let expected, ref_respawned = with_tmpdir (fun dir -> chaos_run dir) in
  Alcotest.(check bool) "reference run never died" false ref_respawned;
  let check_against what ~must_die (got, respawned) =
    (* the fault must actually have fired — a chaos run that never
       killed its daemon proves nothing *)
    if must_die && not respawned then
      Alcotest.failf "%s: the daemon never died (fault did not fire)" what;
    List.iter2
      (fun (name, want) (name', got) ->
        Alcotest.(check string) (what ^ ": program order") name name';
        if want <> got then
          Alcotest.failf "%s: %s diverged after recovery (%d vs %d bytes)" what name
            (String.length want) (String.length got))
      expected got
  in
  (* SIGKILL at every record the workload appends: k-th append writes,
     then the daemon dies; recovery + client replay must converge *)
  let total = records_per_prog * List.length chaos_progs in
  for k = 1 to total + 1 do
    let fault = Printf.sprintf "crash:%d" k in
    check_against fault ~must_die:(k <= total)
      (with_tmpdir (fun dir -> chaos_run ~fault dir))
  done;
  (* torn and short writes at a couple of points: the tail is dropped,
     the unacknowledged mutation is replayed by the client *)
  List.iter
    (fun fault ->
      check_against fault ~must_die:true (with_tmpdir (fun dir -> chaos_run ~fault dir)))
    [ "torn:2"; "torn:7"; "short:2"; "short:7" ]

let () =
  Alcotest.run "recovery"
    [ ( "wal",
        [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "missing file is empty" `Quick test_wal_missing_file;
          Alcotest.test_case "torn tail truncated" `Quick test_wal_torn_tail;
          Alcotest.test_case "crc mismatch truncated" `Quick test_wal_corrupt_crc;
          Alcotest.test_case "garbage file never raises" `Quick test_wal_garbage_file ] );
      ( "snapshot",
        [ Alcotest.test_case "database codec roundtrip" `Quick test_db_snapshot_roundtrip;
          Alcotest.test_case "database codec rejects corruption" `Quick
            test_db_snapshot_corrupt;
          Alcotest.test_case "envelope roundtrip and corruption" `Quick
            test_snapshot_envelope ] );
      ( "faults",
        [ Alcotest.test_case "fsync failure is a structured error" `Quick
            test_fsync_failure_is_structured ] );
      ( "restart",
        [ Alcotest.test_case "wal-only recovery" `Quick test_restart_wal_only;
          Alcotest.test_case "snapshot + tail recovery" `Quick test_restart_snapshot_tail ] );
      ( "chaos",
        [ Alcotest.test_case "kill -9 at every WAL record" `Quick test_chaos ] ) ]
