(* Well-founded semantics and its relationship to stable models and to
   choice programs (the paper's Section 1/4 framing). *)

open Gbc

let wf ?edb src = Wellfounded.compute ?edb (Parser.parse_program src)

let facts db pred =
  Database.facts_of db pred
  |> List.map (fun row -> List.map Value.to_string (Array.to_list row))
  |> List.sort compare

let test_stratified_total () =
  let t =
    wf
      "e(1,2). e(2,3). n(1). n(2). n(3). n(4).\n\
       reach(1).\n\
       reach(Y) <- reach(X), e(X, Y).\n\
       unreach(X) <- n(X), not reach(X)."
  in
  Alcotest.(check bool) "total" true (Wellfounded.is_total t);
  Alcotest.(check (list (list string))) "unreach" [ [ "4" ] ] (facts t.Wellfounded.true_facts "unreach");
  (* A stratified program's well-founded model equals the engine's. *)
  let m =
    Choice_fixpoint.model
      (Parser.parse_program
         "e(1,2). e(2,3). n(1). n(2). n(3). n(4).\n\
          reach(1).\n\
          reach(Y) <- reach(X), e(X, Y).\n\
          unreach(X) <- n(X), not reach(X).")
  in
  Alcotest.(check bool) "equals engine model" true
    (Database.equal_on t.Wellfounded.true_facts m [ "reach"; "unreach" ])

let test_win_move_game () =
  (* a -> b -> c (c stuck): win(b) true, win(a) false, win(c) false. *)
  let t = wf "m(a, b). m(b, c). win(X) <- m(X, Y), not win(Y)." in
  Alcotest.(check bool) "total" true (Wellfounded.is_total t);
  Alcotest.(check (list (list string))) "only b wins" [ [ "b" ] ]
    (facts t.Wellfounded.true_facts "win")

let test_two_cycle_undefined () =
  (* a <-> b: both win atoms undefined. *)
  let t = wf "m(a, b). m(b, a). win(X) <- m(X, Y), not win(Y)." in
  Alcotest.(check bool) "not total" false (Wellfounded.is_total t);
  Alcotest.(check int) "two undefined atoms" 2 (List.length (Wellfounded.undefined t));
  Alcotest.(check (list (list string))) "nothing definitely true" []
    (facts t.Wellfounded.true_facts "win");
  Alcotest.(check (list (list string))) "both possible"
    [ [ "a" ]; [ "b" ] ]
    (facts t.Wellfounded.possible "win")

let test_mixed_cycle_and_tail () =
  (* a <-> b, and d -> a: win(d) depends on undefined win(a): undefined;
     e -> c (stuck): win(e) true. *)
  let t =
    wf "m(a, b). m(b, a). m(d, a). m(e, c). win(X) <- m(X, Y), not win(Y)."
  in
  let undef = List.map fst (Wellfounded.undefined t) in
  Alcotest.(check int) "three undefined" 3 (List.length undef);
  Alcotest.(check (list (list string))) "e wins for sure" [ [ "e" ] ]
    (facts t.Wellfounded.true_facts "win")

let test_choice_program_undefined_choices () =
  (* The rewritten Example 1: the well-founded model cannot commit to
     any assignment — every a_st and chosen atom is undefined — while
     each choice model is a stable model sandwiched between the true
     and possible sets. *)
  let prog = Assignment.program Assignment.example1_source in
  let rewritten = Rewrite.expand_all prog in
  let t = Wellfounded.compute rewritten in
  Alcotest.(check bool) "not total" false (Wellfounded.is_total t);
  Alcotest.(check (list (list string))) "no committed assignment" []
    (facts t.Wellfounded.true_facts "a_st");
  Alcotest.(check int) "all four assignments possible" 4
    (List.length (facts t.Wellfounded.possible "a_st"));
  let models = Choice_fixpoint.enumerate prog in
  List.iter
    (fun m ->
      let completed = Stable.complete prog m in
      Alcotest.(check bool) "stable model within the WF bounds" true
        (Wellfounded.agrees_with_stable t completed))
    models

let test_positive_program_is_its_least_model () =
  let t = wf "e(1,2). e(2,3). tc(X,Y) <- e(X,Y). tc(X,Y) <- tc(X,Z), e(Z,Y)." in
  Alcotest.(check bool) "total" true (Wellfounded.is_total t);
  Alcotest.(check int) "tc size" 3 (List.length (facts t.Wellfounded.true_facts "tc"))

let test_rejects_non_flat () =
  Alcotest.(check bool) "choice goal rejected" true
    (try
       ignore (wf "p(X) <- e(X), choice((), X). e(1).");
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "wellfounded"
    [ ( "alternating fixpoint",
        [ Alcotest.test_case "stratified programs are total" `Quick test_stratified_total;
          Alcotest.test_case "win-move chain" `Quick test_win_move_game;
          Alcotest.test_case "two-cycle undefined" `Quick test_two_cycle_undefined;
          Alcotest.test_case "mixed cycle and tail" `Quick test_mixed_cycle_and_tail;
          Alcotest.test_case "choice stays undefined" `Quick
            test_choice_program_undefined_choices;
          Alcotest.test_case "positive = least model" `Quick
            test_positive_program_is_its_least_model;
          Alcotest.test_case "non-flat rejected" `Quick test_rejects_non_flat ] ) ]
