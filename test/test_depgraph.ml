(* Dependency graph: cliques (SCCs), topological order, polarity. *)

open Gbc

let graph_of src = Depgraph.make (Parser.parse_program src)

let test_edb_idb_split () =
  let g = graph_of "p(X) <- e(X). q(X) <- p(X). base(1)." in
  Alcotest.(check (list string)) "idb" [ "p"; "q" ] (List.sort compare (Depgraph.idb g));
  Alcotest.(check bool) "e is edb" true (List.mem "e" (Depgraph.edb g));
  Alcotest.(check bool) "pure facts are edb" true (List.mem "base" (Depgraph.edb g))

let test_topological_order () =
  let g = graph_of "a(X) <- e(X). b(X) <- a(X). c(X) <- b(X), a(X)." in
  Alcotest.(check (list (list string))) "dependencies first"
    [ [ "a" ]; [ "b" ]; [ "c" ] ]
    (Depgraph.cliques g)

let test_mutual_recursion_one_clique () =
  let g = graph_of "p(X) <- e(X). p(X) <- q(X). q(X) <- p(X), f(X)." in
  (match Depgraph.cliques g with
  | [ clique ] -> Alcotest.(check (list string)) "joint" [ "p"; "q" ] (List.sort compare clique)
  | cs -> Alcotest.fail (Printf.sprintf "expected one clique, got %d" (List.length cs)));
  Alcotest.(check bool) "recursive" true
    (Depgraph.is_recursive g (List.hd (Depgraph.cliques g)))

let test_self_loop_recursive () =
  let g = graph_of "tc(X, Y) <- e(X, Y). tc(X, Y) <- tc(X, Z), e(Z, Y)." in
  Alcotest.(check bool) "self edge counts" true (Depgraph.is_recursive g [ "tc" ]);
  let g2 = graph_of "p(X) <- e(X)." in
  Alcotest.(check bool) "non-recursive singleton" false (Depgraph.is_recursive g2 [ "p" ])

let test_diamond_topology () =
  let g =
    graph_of
      "top(X) <- left(X), right(X). left(X) <- base(X). right(X) <- base(X). base(X) <- e(X)."
  in
  let order = List.map List.hd (Depgraph.cliques g) in
  let pos p = Option.get (List.find_index (String.equal p) order) in
  Alcotest.(check bool) "base before left" true (pos "base" < pos "left");
  Alcotest.(check bool) "base before right" true (pos "base" < pos "right");
  Alcotest.(check bool) "left before top" true (pos "left" < pos "top");
  Alcotest.(check bool) "right before top" true (pos "right" < pos "top")

let test_polarity_edges () =
  let g =
    graph_of "p(X) <- e(X), not q(X). q(X) <- f(X). r(X) <- r(X), least(X)."
  in
  let edges = Depgraph.edges_within g [ "r" ] in
  Alcotest.(check bool) "extremal self edge" true
    (List.exists (fun (_, _, pol) -> pol = Depgraph.Extremal) edges)

let test_rules_of_clique () =
  let src = "p(X) <- e(X). p(X) <- p(X). q(X) <- p(X). f(1)." in
  let g = graph_of src in
  Alcotest.(check int) "p's rules" 2
    (List.length (Depgraph.rules_of_clique g [ "p" ]));
  Alcotest.(check int) "facts excluded" 1 (List.length (Depgraph.rules_of_clique g [ "q" ]))

let test_next_expansion_makes_self_edge () =
  (* Engines rely on next rules becoming self-recursive after expansion. *)
  let prog = Parser.parse_program "sp(nil, 0, 0). sp(X, C, I) <- next(I), p(X, C), least(C, I)." in
  let g = Depgraph.make (Rewrite.expand_next prog) in
  Alcotest.(check bool) "sp self-recursive" true (Depgraph.is_recursive g [ "sp" ])

let test_larger_scc () =
  let g =
    graph_of "a(X) <- b(X). b(X) <- c(X). c(X) <- a(X), e(X). d(X) <- c(X). e0(X) <- d(X)."
  in
  match Depgraph.cliques g with
  | [ abc; [ "d" ]; [ "e0" ] ] ->
    Alcotest.(check (list string)) "3-cycle" [ "a"; "b"; "c" ] (List.sort compare abc)
  | cs ->
    Alcotest.fail
      (Printf.sprintf "unexpected cliques: %s"
         (String.concat " | " (List.map (String.concat ",") cs)))

let () =
  Alcotest.run "depgraph"
    [ ( "structure",
        [ Alcotest.test_case "edb/idb split" `Quick test_edb_idb_split;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion_one_clique;
          Alcotest.test_case "self loops" `Quick test_self_loop_recursive;
          Alcotest.test_case "diamond" `Quick test_diamond_topology;
          Alcotest.test_case "polarity" `Quick test_polarity_edges;
          Alcotest.test_case "rules of clique" `Quick test_rules_of_clique;
          Alcotest.test_case "next expansion self edge" `Quick test_next_expansion_makes_self_edge;
          Alcotest.test_case "three-node SCC" `Quick test_larger_scc ] ) ]
