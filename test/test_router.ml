(* gbc-router end to end: the consistent-hash ring in isolation, then
   an in-process router over in-process backends, then a real gbcd
   child killed mid-request, then a spawned `--fleet` daemon.

   Covers the acceptance criteria for the router:
   - the ring is deterministic, roughly balanced, and removing a
     member only moves the keys that member owned;
   - models served through the router are byte-identical to
     single-shot evaluation for all 13 exemplar programs;
   - composite session ids: [Attach None] reports an id that a fresh
     connection can reclaim through the router, and the id names the
     owning backend;
   - the router answers [stats] itself with its forwarding counters;
   - shutdown drains gracefully (Bye, then the router's run returns);
   - a backend dying with a request in flight gets that request
     answered with a server-error frame, not silence. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let exemplars =
  [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
    "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
    "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]

let source name = read_file ("../programs/" ^ name)

let local_model name =
  Format.asprintf "%a" Database.pp (Stage_engine.model (Parser.parse_program (source name)))

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* crude but sufficient for the router's flat stats JSON *)
let int_field json key =
  let marker = "\"" ^ key ^ "\":" in
  let rec find i =
    if i + String.length marker > String.length json then
      Alcotest.fail (key ^ " not in " ^ json)
    else if String.sub json i (String.length marker) = marker then i + String.length marker
    else find (i + 1)
  in
  let start = ref (find 0) in
  while !start < String.length json && json.[!start] = ' ' do
    incr start
  done;
  let start = !start in
  let stop = ref start in
  while
    !stop < String.length json
    && (match json.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  int_of_string (String.sub json start (!stop - start))

(* ---------------- fixtures ---------------- *)

let sock_counter = ref 0

let fresh_sock tag =
  incr sock_counter;
  Printf.sprintf "gbcr_%s_%d_%d.sock" tag (Unix.getpid ()) !sock_counter

(* [n] in-process gbcd backends, each on its own Unix socket *)
let with_backends ?(n = 2) ?(workers = 2) f =
  let rec go acc k =
    if k = 0 then f (List.rev acc)
    else begin
      let path = fresh_sock "b" in
      let cfg = { Server.default_config with port = None; unix_path = Some path; workers } in
      match Server.create cfg with
      | Error msg -> Alcotest.fail ("backend create: " ^ msg)
      | Ok srv ->
        let runner = Domain.spawn (fun () -> Server.run srv) in
        Fun.protect
          ~finally:(fun () ->
            Server.shutdown srv;
            Domain.join runner;
            (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
          (fun () -> go (path :: acc) (k - 1))
    end
  in
  go [] n

let router_config path backends =
  { Router.default_config with
    port = None;
    unix_path = Some path;
    backends = List.map (fun p -> Client.Uds p) backends;
    connect_timeout = Some 2.0 }

let with_router backends f =
  let path = fresh_sock "r" in
  match Router.create (router_config path backends) with
  | Error msg -> Alcotest.fail ("router create: " ^ msg)
  | Ok rt ->
    let runner = Domain.spawn (fun () -> Router.run rt) in
    Fun.protect
      ~finally:(fun () ->
        Router.shutdown rt;
        Domain.join runner;
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
      (fun () -> f path)

let rec connect ?(tries = 50) path =
  match Client.connect_unix path with
  | c -> c
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
    Unix.sleepf 0.02;
    connect ~tries:(tries - 1) path

let with_conn path f =
  let c = connect path in
  Client.set_recv_deadline c (Some 30.0);
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let expect_loaded = function
  | Protocol.Loaded _ -> ()
  | Protocol.Error { message; _ } -> Alcotest.fail ("load failed: " ^ message)
  | _ -> Alcotest.fail "expected a Loaded frame"

let expect_model = function
  | Protocol.Model { complete; text; _ } ->
    Alcotest.(check bool) "model complete" true complete;
    text
  | Protocol.Error { message; _ } -> Alcotest.fail ("run failed: " ^ message)
  | _ -> Alcotest.fail "expected a Model frame"

let run_req =
  Protocol.Run { engine = Protocol.Staged; seed = None; preds = None; budget = Protocol.no_budget }

(* ---------------- the ring ---------------- *)

let keys = List.init 10_000 (fun i -> Printf.sprintf "key-%d" i)

let test_ring_balance () =
  let members = [ "alpha"; "beta"; "gamma" ] in
  let ring = Router.Ring.create members in
  let counts = Hashtbl.create 3 in
  List.iter
    (fun k ->
      let m = Router.Ring.lookup ring k in
      Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m)))
    keys;
  List.iter
    (fun m ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts m) in
      if n < 1_500 then
        Alcotest.failf "member %s owns only %d of 10000 keys — ring is badly skewed" m n)
    members;
  (* placement is a pure function of the member set *)
  let ring' = Router.Ring.create members in
  List.iter
    (fun k ->
      Alcotest.(check string) ("deterministic " ^ k) (Router.Ring.lookup ring k)
        (Router.Ring.lookup ring' k))
    keys

let test_ring_stability () =
  let ring3 = Router.Ring.create [ "alpha"; "beta"; "gamma" ] in
  let ring2 = Router.Ring.create [ "alpha"; "beta" ] in
  (* dropping gamma must not move any key alpha or beta already owned *)
  List.iter
    (fun k ->
      let owner = Router.Ring.lookup ring3 k in
      if owner <> "gamma" then
        Alcotest.(check string) ("stable " ^ k) owner (Router.Ring.lookup ring2 k))
    keys

(* ---------------- forwarding ---------------- *)

let test_byte_identity () =
  with_backends ~n:2 (fun backs ->
      with_router backs (fun path ->
          (* each exemplar on its own connection, so the ring spreads
             them across both backends *)
          List.iter
            (fun name ->
              with_conn path (fun c ->
                  expect_loaded (Client.rpc c (Protocol.Load (source name)));
                  let text = expect_model (Client.rpc c run_req) in
                  Alcotest.(check string) (name ^ " through router") (local_model name) text))
            exemplars;
          (* the router must have forwarded all of it *)
          with_conn path (fun c ->
              match Client.rpc c Protocol.Stats with
              | Protocol.Stats_json json ->
                Alcotest.(check bool) "router stats" true (contains json "\"router\"");
                let fwd = int_field json "forwarded" in
                if fwd < 2 * List.length exemplars then
                  Alcotest.failf "only %d frames forwarded" fwd
              | _ -> Alcotest.fail "expected Stats_json")))

let test_composite_session () =
  with_backends ~n:2 (fun backs ->
      with_router backs (fun path ->
          let src = "q(X) <- p(X).\np(1).\n" in
          let id =
            with_conn path (fun c ->
                expect_loaded (Client.rpc c (Protocol.Load src));
                (match Client.rpc c (Protocol.Assert_facts { text = "p(2)."; id = None }) with
                 | Protocol.Asserted { added = 1 } -> ()
                 | _ -> Alcotest.fail "assert");
                match Client.rpc c (Protocol.Attach None) with
                | Protocol.Attached { id } -> id
                | _ -> Alcotest.fail "expected Attached")
          in
          (* the composite id names the owning backend *)
          let idx, sid = Router.split_composite id in
          if idx < 0 || idx >= 2 then Alcotest.failf "backend index %d out of range" idx;
          Alcotest.(check int) "composite round-trips" id ((idx * Router.composite_base) + sid);
          (* a brand-new connection reclaims the session through the router *)
          with_conn path (fun c ->
              (match Client.rpc c (Protocol.Attach (Some id)) with
               | Protocol.Attached { id = id' } -> Alcotest.(check int) "same id" id id'
               | Protocol.Error { message; _ } -> Alcotest.fail ("re-attach: " ^ message)
               | _ -> Alcotest.fail "expected Attached");
              let text = expect_model (Client.rpc c run_req) in
              Alcotest.(check bool) "asserted fact survived" true (contains text "q(2)"))))

let test_drain () =
  with_backends ~n:1 (fun backs ->
      let path = fresh_sock "r" in
      match Router.create (router_config path backs) with
      | Error msg -> Alcotest.fail ("router create: " ^ msg)
      | Ok rt ->
        let runner = Domain.spawn (fun () -> Router.run rt) in
        Fun.protect
          ~finally:(fun () ->
            Router.shutdown rt;
            Domain.join runner;
            (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
          (fun () ->
            with_conn path (fun c ->
                (* warm a backend link first, so the drain has one to close *)
                (match Client.rpc c Protocol.Ping with
                 | Protocol.Pong -> ()
                 | _ -> Alcotest.fail "expected Pong");
                match Client.rpc c Protocol.Shutdown with
                | Protocol.Bye -> ()
                | _ -> Alcotest.fail "expected Bye");
            (* run must come home on its own — the Fun.protect join
               would hang here if the drain never finished *)
            Domain.join runner))

(* ---------------- backend death ---------------- *)

let daemon_exe = "../bin/gbcd.exe"

let spawn_daemon args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () ->
      Unix.create_process daemon_exe
        (Array.of_list (daemon_exe :: args))
        Unix.stdin devnull Unix.stderr)

let test_backend_death () =
  let sock = fresh_sock "bd" in
  let pid = spawn_daemon [ "--no-tcp"; "--unix"; sock; "--workers"; "1" ] in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ()))
    (fun () ->
      (* wait for the daemon to come up *)
      let probe = connect ~tries:150 sock in
      Client.close probe;
      with_router [ sock ] (fun path ->
          with_conn path (fun c ->
              (match Client.rpc c Protocol.Ping with
               | Protocol.Pong -> ()
               | _ -> Alcotest.fail "expected Pong");
              (* freeze the backend, launch a request it can never
                 answer, then kill it: the router must answer the
                 orphaned request with a server-error frame *)
              Unix.kill pid Sys.sigstop;
              Client.send c Protocol.Ping;
              Unix.sleepf 0.2;
              Unix.kill pid Sys.sigkill;
              match Client.recv c with
              | Protocol.Error { code = Protocol.Server_error; message } ->
                Alcotest.(check bool) "message names the death" true
                  (contains message "backend died")
              | Protocol.Error { message; _ } ->
                Alcotest.fail ("wrong error code: " ^ message)
              | _ -> Alcotest.fail "expected a server-error frame")))

(* ---------------- gbcd --fleet ---------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let test_fleet () =
  let sock = fresh_sock "fl" in
  let dir = Printf.sprintf "gbcr_fleet_%d.data" (Unix.getpid ()) in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let pid =
    spawn_daemon
      [ "--fleet"; "2"; "--no-tcp"; "--unix"; sock; "--workers"; "1"; "--data-dir"; dir ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
      rm_rf dir)
    (fun () ->
      (* fleet startup spawns two children before listening *)
      let c = connect ~tries:400 sock in
      Client.set_recv_deadline c (Some 30.0);
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.rpc c Protocol.Ping with
           | Protocol.Pong -> ()
           | _ -> Alcotest.fail "expected Pong");
          expect_loaded (Client.rpc c (Protocol.Load (source "prim.dl")));
          let text = expect_model (Client.rpc c run_req) in
          Alcotest.(check string) "prim.dl through the fleet" (local_model "prim.dl") text;
          (match Client.rpc c Protocol.Stats with
           | Protocol.Stats_json json ->
             Alcotest.(check bool) "fleet stats are the router's" true
               (contains json "\"router\"");
             Alcotest.(check bool) "two backend rows" true (contains json "\"backends\"")
           | _ -> Alcotest.fail "expected Stats_json");
          match Client.rpc c Protocol.Shutdown with
          | Protocol.Bye -> ()
          | _ -> Alcotest.fail "expected Bye");
      (* the whole fleet — router and both children — must wind down *)
      let rec wait tries =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ when tries > 0 ->
          Unix.sleepf 0.05;
          wait (tries - 1)
        | 0, _ -> Alcotest.fail "fleet did not exit after shutdown"
        | _, Unix.WEXITED 0 -> ()
        | _, _ -> Alcotest.fail "fleet exited abnormally"
      in
      wait 200)

let () =
  Alcotest.run "router"
    [ ("ring",
       [ Alcotest.test_case "10k keys spread over 3 members" `Quick test_ring_balance;
         Alcotest.test_case "removing a member strands no keys" `Quick test_ring_stability ]);
      ("forwarding",
       [ Alcotest.test_case "13 exemplars byte-identical through the router" `Slow
           test_byte_identity;
         Alcotest.test_case "composite session ids reclaim across connections" `Quick
           test_composite_session;
         Alcotest.test_case "shutdown drains and run returns" `Quick test_drain ]);
      ("failure",
       [ Alcotest.test_case "backend death orphans answered with server-error" `Quick
           test_backend_death ]);
      ("fleet",
       [ Alcotest.test_case "gbcd --fleet 2 serves and drains" `Slow test_fleet ]) ]
