(* Telemetry: both engines feed the same collector shape, the counters
   satisfy the structural invariants, and on tie-free programs the two
   engines agree on the model and on the number of gamma firings. *)

open Gbc

let run_reference prog =
  let telemetry = Telemetry.create () in
  let db, stats = Choice_fixpoint.run ~telemetry prog in
  (db, stats.Choice_fixpoint.gamma_steps, telemetry)

let run_staged prog =
  let telemetry = Telemetry.create () in
  let db, stats = Stage_engine.run ~telemetry prog in
  (db, stats.Stage_engine.gamma_steps, telemetry)

(* Structural invariants every collector must satisfy, whichever
   engine filled it. *)
let check_invariants name telemetry =
  List.iter
    (fun (label, rc) ->
      let ck msg cond = Alcotest.(check bool) (name ^ "/" ^ label ^ ": " ^ msg) true cond in
      ck "derived >= 0" (rc.Telemetry.derived >= 0);
      ck "candidates >= fired" (rc.Telemetry.candidates >= rc.Telemetry.fired);
      ck "fd_rejections <= candidates" (rc.Telemetry.fd_rejections <= rc.Telemetry.candidates);
      ck "pops <= pushes" (rc.Telemetry.pops <= rc.Telemetry.pushes);
      ck "shadowed <= pushes" (rc.Telemetry.shadowed <= rc.Telemetry.pushes);
      ck "stale + revalidations <= pops"
        (rc.Telemetry.stale + rc.Telemetry.revalidations <= rc.Telemetry.pops);
      ck "max_queue >= 0" (rc.Telemetry.max_queue >= 0);
      (* A [next] rule fires exactly once per stage, so the firing
         count must match the final stage value it reached. *)
      if rc.Telemetry.last_stage > 0 then
        ck "fired = last_stage" (rc.Telemetry.fired = rc.Telemetry.last_stage))
    (Telemetry.rules telemetry);
  let totals = Telemetry.totals telemetry in
  let total k = List.assoc k totals in
  Alcotest.(check bool) (name ^ ": totals pops <= pushes") true (total "pops" <= total "pushes");
  Alcotest.(check bool) (name ^ ": derived >= 0") true (total "derived" >= 0)

(* Tie-free instances: distinct costs force both engines onto the same
   greedy trajectory. *)
let prim_prog =
  let g = Gbc_workload.Graph_gen.random_connected ~seed:11 ~nodes:12 ~extra_edges:14 in
  Prim.program ~root:0 g

let sorting_prog =
  Sorting.program (List.init 16 (fun i -> (Printf.sprintf "x%d" i, (i * 37) mod 101)))

let matching_prog =
  Matching.program [ (0, 10, 7); (0, 11, 3); (1, 10, 5); (1, 12, 9); (2, 11, 1); (2, 12, 4) ]

let programs = [ ("prim", prim_prog); ("sorting", sorting_prog); ("matching", matching_prog) ]

let test_invariants_reference () =
  List.iter
    (fun (name, prog) ->
      let _, gamma, telemetry = run_reference prog in
      check_invariants ("reference/" ^ name) telemetry;
      Alcotest.(check int)
        (name ^ ": telemetry gamma = stats gamma") gamma (Telemetry.gamma_steps telemetry))
    programs

let test_invariants_staged () =
  List.iter
    (fun (name, prog) ->
      let _, gamma, telemetry = run_staged prog in
      check_invariants ("staged/" ^ name) telemetry;
      Alcotest.(check int)
        (name ^ ": telemetry gamma = stats gamma") gamma (Telemetry.gamma_steps telemetry))
    programs

let test_engines_agree () =
  List.iter
    (fun (name, prog) ->
      let db_ref, gamma_ref, t_ref = run_reference prog in
      let db_st, gamma_st, t_st = run_staged prog in
      Alcotest.(check int) (name ^ ": same gamma firings") gamma_ref gamma_st;
      Alcotest.(check int)
        (name ^ ": same gamma firings (telemetry)")
        (Telemetry.gamma_steps t_ref) (Telemetry.gamma_steps t_st);
      (* Tie-free extrema: the models coincide on every predicate the
         reference model mentions. *)
      Alcotest.(check bool) (name ^ ": models agree") true
        (Database.equal_on db_ref db_st (Database.preds db_ref)))
    programs

let test_disabled_sink_records_nothing () =
  let t = Telemetry.none in
  Alcotest.(check bool) "none is disabled" false (Telemetry.enabled t);
  Telemetry.add_derived t "r" 3;
  Telemetry.fired t ~stage:1 "r";
  Telemetry.iteration t "c";
  Telemetry.stratum t "s";
  Alcotest.(check int) "no rules" 0 (List.length (Telemetry.rules t));
  Alcotest.(check int) "no gamma" 0 (Telemetry.gamma_steps t);
  Alcotest.(check int) "no iterations" 0 (Telemetry.iterations t);
  Alcotest.(check (option unit)) "rule lookup is None" None
    (Option.map ignore (Telemetry.rule t "r"));
  (* And the engines run fine against it (the default). *)
  let _, stats = Stage_engine.run prim_prog in
  Alcotest.(check bool) "engine ran" true (stats.Stage_engine.gamma_steps > 0)

let test_stage_engine_iterations_and_strata () =
  let _, _, telemetry = run_staged prim_prog in
  Alcotest.(check bool) "iterations counted" true (Telemetry.iterations telemetry > 0);
  Alcotest.(check bool) "strata counted" true
    (List.assoc "strata" (Telemetry.totals telemetry) > 0)

let test_json_roundtrippable () =
  (* The JSON snapshot must escape rule labels (they contain quotes
     when the program does) into something structurally sane. *)
  let prog =
    Parser.parse_program
      "p(\"he \\\"quoted\\\" me\", 1).\nbest(X, C) <- p(X, C), least(C), choice((), X)."
  in
  let _, _, telemetry = run_reference prog in
  let json = Telemetry.to_json telemetry in
  Alcotest.(check bool) "nonempty" true (String.length json > 2);
  (* Balanced braces and quotes outside escapes. *)
  let depth = ref 0 and in_str = ref false and escaped = ref false and ok = ref true in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_str then begin
        if c = '\\' then escaped := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    json;
  Alcotest.(check bool) "balanced" true (!ok && !depth = 0 && not !in_str)

let () =
  Alcotest.run "telemetry"
    [ ( "invariants",
        [ Alcotest.test_case "reference engine" `Quick test_invariants_reference;
          Alcotest.test_case "staged engine" `Quick test_invariants_staged;
          Alcotest.test_case "iterations and strata" `Quick
            test_stage_engine_iterations_and_strata ] );
      ( "agreement",
        [ Alcotest.test_case "engines agree on tie-free programs" `Quick test_engines_agree ] );
      ( "plumbing",
        [ Alcotest.test_case "disabled sink records nothing" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "json snapshot well-formed" `Quick test_json_roundtrippable ] ) ]
