(* Lexer and parser: positives, errors, and the pretty-print round-trip. *)

open Gbc

let parse_ok src = try Ok (Parser.parse_program src) with Parser.Error (m, _) -> Error m

let check_rule_count name src n =
  match parse_ok src with
  | Ok prog -> Alcotest.(check int) name n (List.length prog)
  | Error m -> Alcotest.fail m

let test_facts () =
  check_rule_count "facts" "p(1). q(a, \"x\"). r." 3;
  let prog = Parser.parse_program "p(1, nil, (a, 2), t(b, c))." in
  match prog with
  | [ r ] ->
    Alcotest.(check bool) "is fact" true (Ast.is_fact r);
    Alcotest.(check int) "arity" 4 (List.length r.Ast.head.Ast.args)
  | _ -> Alcotest.fail "expected one clause"

let test_comments_and_arrows () =
  check_rule_count "comments"
    "% a comment\np(X) <- q(X). # another\nr(X) :- p(X).\n" 2

let test_comments_at_eof () =
  (* No trailing newline after the comment. *)
  check_rule_count "percent comment at eof" "p(1). % trailing" 1;
  check_rule_count "hash comment at eof" "p(1). # trailing" 1;
  check_rule_count "comment-only program" "% nothing here" 0;
  check_rule_count "empty program" "" 0

let test_malformed_arrow () =
  List.iter
    (fun src ->
      match parse_ok src with
      | Ok _ -> Alcotest.fail ("accepted: " ^ src)
      | Error _ -> ())
    [ "p(X) : q(X)."; "p(X) :q(X)."; "p(X) :- ."; "p(X) <-." ];
  (* ':-' and '<-' parse to the same rule. *)
  Alcotest.(check string) "arrow spellings agree"
    (Pretty.rule_to_string (Parser.parse_rule "p(X) :- q(X)"))
    (Pretty.rule_to_string (Parser.parse_rule "p(X) <- q(X)"))

let test_literals () =
  let r =
    Parser.parse_rule
      "h(X, C, I) <- next(I), p(X, C, J), J < I, not q(X, L), L < I, least(C, I), \
       choice(X, (C, I)), most(J, ()), C = J + 1, X != nil"
  in
  let kinds =
    List.map
      (function
        | Ast.Pos _ -> "pos"
        | Ast.Neg _ -> "neg"
        | Ast.Rel _ -> "rel"
        | Ast.Choice _ -> "choice"
        | Ast.Least _ -> "least"
        | Ast.Most _ -> "most"
        | Ast.Agg (Ast.Count, _, _, _) -> "count"
        | Ast.Agg (Ast.Sum, _, _, _) -> "sum"
        | Ast.Next _ -> "next")
      r.Ast.body
  in
  Alcotest.(check (list string)) "literal kinds"
    [ "next"; "pos"; "rel"; "neg"; "rel"; "least"; "choice"; "most"; "rel"; "rel" ]
    kinds

let test_choice_groups () =
  let r = Parser.parse_rule "p(X, Y) <- q(X, Y), choice((), (X, Y))" in
  (match Ast.choice_fds r with
  | [ ([], [ Ast.Var "X"; Ast.Var "Y" ]) ] -> ()
  | _ -> Alcotest.fail "choice((), (X,Y)) groups");
  let r = Parser.parse_rule "p(X, Y) <- q(X, Y), choice(Y, X)" in
  match Ast.choice_fds r with
  | [ ([ Ast.Var "Y" ], [ Ast.Var "X" ]) ] -> ()
  | _ -> Alcotest.fail "bare choice groups"

let test_least_forms () =
  let forms =
    [ ("least(C)", []); ("least(C, ())", []); ("least(C, I)", [ "I" ]);
      ("least(C, (I, J))", [ "I"; "J" ]) ]
  in
  List.iter
    (fun (txt, expected) ->
      let r = Parser.parse_rule (Printf.sprintf "p(C) <- q(C), %s" txt) in
      match List.find_map (function Ast.Least (_, ks) -> Some ks | _ -> None) r.Ast.body with
      | Some ks ->
        Alcotest.(check (list string)) txt expected (List.concat_map Ast.term_vars ks)
      | None -> Alcotest.fail "no least goal")
    forms

let test_negative_literals () =
  let prog = Parser.parse_program "p(-5). q(X) <- p(X), X < -2, Y = -X, q2(Y)." in
  (match prog with
  | [ fact; _rule ] -> (
    match fact.Ast.head.Ast.args with
    | [ Ast.Cst (Value.Int -5) ] -> ()
    | _ -> Alcotest.fail "expected p(-5)")
  | _ -> Alcotest.fail "expected two clauses");
  (* Negative facts survive the print/parse cycle. *)
  let printed = Pretty.program_to_string [ Ast.fact "p" [ Value.Int (-5) ] ] in
  Alcotest.(check string) "stable" printed
    (Pretty.program_to_string (Parser.parse_program printed))

let test_arithmetic () =
  let t = Parser.parse_term "1 + 2 * X - max(Y, 3)" in
  (* Shape: (1 + (2*X)) - max(Y,3). *)
  (match t with
  | Ast.Binop (Ast.Sub, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), Ast.Binop (Ast.Max, _, _))
    -> ()
  | _ -> Alcotest.fail "precedence shape");
  Alcotest.(check (list string)) "vars in order" [ "X"; "Y" ] (Ast.term_vars t)

let test_anonymous_vars_fresh () =
  let r = Parser.parse_rule "p(X) <- q(X, _), r(_, X)" in
  let vars = Ast.rule_vars r in
  (* X plus two distinct fresh variables. *)
  Alcotest.(check int) "three distinct variables" 3 (List.length vars)

let test_errors () =
  List.iter
    (fun src ->
      match parse_ok src with
      | Ok _ -> Alcotest.fail ("accepted: " ^ src)
      | Error _ -> ())
    [ "p(X <- q(X)."; "p(X)"; "p(X) <- ."; "p(X) <- q(X) r(X).";
      "p(X) <- least(X), choice(."; "<- q(X)."; "p(!)."; "p(\"abc)." ]

let test_roundtrip_paper_programs () =
  List.iter
    (fun src ->
      let p1 = Parser.parse_program src in
      let printed = Pretty.program_to_string p1 in
      let p2 = Parser.parse_program printed in
      Alcotest.(check string) "pretty . parse . pretty stable" printed
        (Pretty.program_to_string p2))
    [ Assignment.example1_source; Assignment.bi_st_c_source; Sorting.source;
      Prim.source ~root:0; Kruskal.source; Matching.source; Tsp.source; Huffman.source;
      Dijkstra.source ~root:0; Scheduling.source ]

let test_parse_rule_trailing_dot_optional () =
  let a = Parser.parse_rule "p(X) <- q(X)" and b = Parser.parse_rule "p(X) <- q(X)." in
  Alcotest.(check string) "same" (Pretty.rule_to_string a) (Pretty.rule_to_string b)

(* Random rule ASTs survive pretty-printing and re-parsing. *)
let gen_rule =
  let open QCheck.Gen in
  let var = oneofl [ "X"; "Y"; "Z"; "Cost" ] in
  let term =
    sized @@ fix (fun self n ->
        if n = 0 then
          oneof
            [ map (fun v -> Ast.Var v) var;
              map (fun i -> Ast.int i) small_nat;
              map (fun i -> Ast.sym ("c" ^ string_of_int i)) small_nat ]
        else
          frequency
            [ (3, map (fun v -> Ast.Var v) var);
              (1, map2 (fun a b -> Ast.Cmp ("t", [ a; b ])) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Ast.Cmp ("", [ a; b ])) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (self (n / 2)) (self (n / 2))) ])
  in
  let atom =
    map2 (fun p args -> Ast.atom ("p" ^ string_of_int p) args) (int_bound 3)
      (list_size (int_range 1 3) term)
  in
  let literal =
    frequency
      [ (4, map (fun a -> Ast.Pos a) atom);
        (1, map (fun a -> Ast.Neg a) atom);
        (1, map2 (fun a b -> Ast.Rel (Ast.Lt, a, b)) term term);
        (1, map2 (fun l r -> Ast.Choice ([ l ], [ r ])) term term);
        (1, map2 (fun c k -> Ast.Least (c, [ k ])) term term);
        (1, map (fun v -> Ast.Next v) var) ]
  in
  let* head = atom in
  let* body = list_size (int_range 1 4) literal in
  QCheck.Gen.return (Ast.rule head body)

let prop_ast_roundtrip =
  QCheck.Test.make ~name:"pretty . parse = id on random rule ASTs" ~count:300
    (QCheck.make ~print:Pretty.rule_to_string gen_rule)
    (fun rule ->
      let printed = Pretty.rule_to_string rule in
      match Parser.parse_rule printed with
      | reparsed -> Pretty.rule_to_string reparsed = printed
      | exception Parser.Error _ -> false)

let () =
  Alcotest.run "parser"
    [ ( "clauses",
        [ Alcotest.test_case "facts" `Quick test_facts;
          Alcotest.test_case "comments and arrows" `Quick test_comments_and_arrows;
          Alcotest.test_case "comments at eof" `Quick test_comments_at_eof;
          Alcotest.test_case "malformed arrows rejected" `Quick test_malformed_arrow;
          Alcotest.test_case "literal kinds" `Quick test_literals;
          Alcotest.test_case "choice groups" `Quick test_choice_groups;
          Alcotest.test_case "least key forms" `Quick test_least_forms;
          Alcotest.test_case "arithmetic precedence" `Quick test_arithmetic;
          Alcotest.test_case "negative literals" `Quick test_negative_literals;
          Alcotest.test_case "anonymous variables fresh" `Quick test_anonymous_vars_fresh;
          Alcotest.test_case "trailing dot optional" `Quick test_parse_rule_trailing_dot_optional ] );
      ( "robustness",
        [ Alcotest.test_case "rejects malformed input" `Quick test_errors;
          Alcotest.test_case "round-trips all paper programs" `Quick
            test_roundtrip_paper_programs;
          QCheck_alcotest.to_alcotest prop_ast_roundtrip ] ) ]
