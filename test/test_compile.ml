(* Compiled execution: the --compiled closure chains must be
   observationally invisible.

   The chain executes exactly the planned body's steps in order,
   probing the same indexes and enumerating rows in the same insertion
   order as the interpreter, so compiled models must be byte-identical
   — relation by relation, row by row, chosen$i layouts included — on
   both engines, sequential and sharded.  These tests pin that over
   every shipped exemplar and over random Horn programs, and pin the
   planner itself: join orders on a fixture with skewed selectivities,
   and the reorder gate that keeps choice programs in source order. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load name = Parser.parse_program (read_file ("../programs/" ^ name))

let exemplars =
  [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
    "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
    "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]

let db_bytes db = Format.asprintf "%a" Database.pp db

let jobs_under_test =
  match Option.bind (Sys.getenv_opt "GBC_TEST_JOBS") int_of_string_opt with
  | Some j when j > 1 -> [ 1; j ]
  | _ -> [ 1; 2 ]

let test_reference_byte_identical () =
  List.iter
    (fun file ->
      let prog = load file in
      let interpreted = db_bytes (fst (Choice_fixpoint.run ~jobs:1 prog)) in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s: reference --compiled jobs=%d byte-identical" file jobs)
            interpreted
            (db_bytes (fst (Choice_fixpoint.run ~compiled:true ~jobs prog))))
        jobs_under_test)
    exemplars

let test_staged_byte_identical () =
  List.iter
    (fun file ->
      let prog = load file in
      let interpreted = db_bytes (fst (Stage_engine.run ~jobs:1 prog)) in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s: staged --compiled jobs=%d byte-identical" file jobs)
            interpreted
            (db_bytes (fst (Stage_engine.run ~compiled:true ~jobs prog))))
        jobs_under_test)
    exemplars

(* Random Horn programs, compiled vs interpreted full models on the
   reference engine, sequential and sharded.  Same generator shape as
   the parallel suite: enough duplicate derivations to stress dedup,
   plus a join rule so the planner has an order to choose. *)
let gen_edges =
  QCheck.Gen.(list_size (int_range 5 25) (pair (int_bound 7) (int_bound 7)))

let arb_edges =
  QCheck.make
    ~print:(fun edges ->
      String.concat " " (List.map (fun (a, b) -> Printf.sprintf "e(%d,%d)." a b) edges))
    gen_edges

let horn_src edges =
  let src = Buffer.create 256 in
  List.iter
    (fun (a, b) -> Buffer.add_string src (Printf.sprintf "e(%d, %d).\n" a b))
    edges;
  Buffer.add_string src
    "t(X, Y) :- e(X, Y).\n\
     t(X, Z) :- t(X, Y), e(Y, Z).\n\
     j(X, Z) :- t(X, Y), t(Y, Z).\n\
     s(X) :- e(X, X).\n\
     u(X, Z) :- j(X, Z), not s(X).\n";
  Buffer.contents src

let prop_compiled_horn =
  QCheck.Test.make ~name:"random Horn: compiled = interpreted (jobs 1 and 3)" ~count:40
    arb_edges (fun edges ->
      let prog = Parser.parse_program (horn_src edges) in
      let interpreted = db_bytes (fst (Choice_fixpoint.run ~jobs:1 prog)) in
      String.equal interpreted
        (db_bytes (fst (Choice_fixpoint.run ~compiled:true ~jobs:1 prog)))
      && String.equal interpreted
           (db_bytes (fst (Choice_fixpoint.run ~compiled:true ~jobs:3 prog)))
      && String.equal
           (db_bytes (fst (Stage_engine.run ~jobs:1 prog)))
           (db_bytes (fst (Stage_engine.run ~compiled:true ~jobs:1 prog)))
      && String.equal
           (db_bytes (fst (Stage_engine.run ~jobs:1 prog)))
           (db_bytes (fst (Stage_engine.run ~compiled:true ~jobs:3 prog))))

(* ------------------------------------------------------------------ *)
(* The planner                                                         *)
(* ------------------------------------------------------------------ *)

(* Skewed selectivities: [big] has 64 rows, [small] 2, [tiny] 1.  The
   source order starts with the most expensive scan; the plan must put
   [tiny] first (cheapest seed), then [small], then [big] — by then the
   joins are index probes on bound columns. *)
let planner_fixture =
  let src = Buffer.create 1024 in
  for i = 0 to 63 do
    Buffer.add_string src (Printf.sprintf "big(%d, %d).\n" i (i mod 8))
  done;
  Buffer.add_string src "small(0, 1). small(1, 2).\ntiny(0).\n";
  Buffer.add_string src "out(X, Y, Z) :- big(Y, Z), small(X, Y), tiny(X).\n";
  Buffer.contents src

let body_preds (r : Ast.rule) =
  List.filter_map (function Ast.Pos a -> Some a.Ast.pred | _ -> None) r.Ast.body

let test_planner_join_order () =
  let prog = Parser.parse_program planner_fixture in
  let db = Choice_fixpoint.model (List.filter Ast.is_fact prog) in
  let plan = Plan.analyze ~db prog in
  Alcotest.(check bool) "pure-Horn program is reorderable" true plan.Plan.reorderable;
  let planned = Plan.program plan in
  let rule = List.find (fun r -> not (Ast.is_fact r)) planned in
  Alcotest.(check (list string)) "cheapest-first join order"
    [ "tiny"; "small"; "big" ] (body_preds rule);
  (* The program's own fact counts seed the estimates even without a
     materialized database. *)
  let from_facts = Plan.program (Plan.analyze prog) in
  let rule = List.find (fun r -> not (Ast.is_fact r)) from_facts in
  Alcotest.(check (list string)) "fact counts alone give the same order"
    [ "tiny"; "small"; "big" ] (body_preds rule);
  (* Without any statistics every atom costs the same default, so the
     tie-break keeps source order. *)
  let rules_only = List.filter (fun r -> not (Ast.is_fact r)) prog in
  let blind = Plan.program (Plan.analyze rules_only) in
  let rule = List.find (fun r -> not (Ast.is_fact r)) blind in
  Alcotest.(check (list string)) "no stats: source order preserved"
    [ "big"; "small"; "tiny" ] (body_preds rule)

let test_planner_gate () =
  (* A choice program: enumeration order leaks into tie-breaking, so
     the plan must be annotation-only. *)
  let prog = load "sorting.dl" in
  let plan = Plan.analyze prog in
  Alcotest.(check bool) "choice program is not reorderable" false plan.Plan.reorderable;
  Alcotest.(check bool) "gated plan leaves every body in source order" true
    (List.for_all2
       (fun a b -> Pretty.rule_to_string a = Pretty.rule_to_string b)
       (List.filter (fun r -> not (Ast.is_fact r)) prog)
       (List.filter (fun r -> not (Ast.is_fact r)) (Plan.program plan)))

let () =
  Alcotest.run "compiled"
    [ ( "byte-identity",
        [ Alcotest.test_case "reference --compiled on every exemplar" `Slow
            test_reference_byte_identical;
          Alcotest.test_case "staged --compiled on every exemplar" `Slow
            test_staged_byte_identical;
          QCheck_alcotest.to_alcotest prop_compiled_horn ] );
      ( "planner",
        [ Alcotest.test_case "skewed fixture: cheapest-first order" `Quick
            test_planner_join_order;
          Alcotest.test_case "choice programs stay in source order" `Quick
            test_planner_gate ] ) ]
