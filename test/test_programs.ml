(* End-to-end: every shipped .dl program parses, passes the analyses,
   runs on both engines and produces the expected result sizes. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load name = Parser.parse_program (read_file ("../programs/" ^ name))

(* (file, result predicate, expected rows incl. any seed, stability
   checkable) — set cover uses aggregates, which have no first-order
   expansion, so its model cannot be certified stable. *)
let expectations =
  [ ("example1.dl", "a_st", 2, true);
    ("bi_st_c.dl", "bi_st_c", 1, true);
    ("sorting.dl", "sp", 6, true);
    ("prim.dl", "prm", 6, true);
    ("kruskal.dl", "kruskal", 5, true);
    ("matching.dl", "matching", 4, true);
    ("huffman.dl", "h", 7, true);
    ("tsp.dl", "tsp_chain", 3, true);
    ("dijkstra.dl", "dij", 6, true);
    ("scheduling.dl", "sched", 4, true);
    ("vertex_cover.dl", "vc", 3, true);
    ("set_cover.dl", "picked", 3, false);
    ("transitive_closure.dl", "tc", 10, true) ]

let test_parses_and_analyzes () =
  List.iter
    (fun (file, _, _, _) ->
      let prog = load file in
      Alcotest.(check bool) (file ^ " parses non-trivially") true (List.length prog > 0);
      (* The analysis must not crash on any shipped program. *)
      ignore (Stage.analyze prog))
    expectations

let test_runs_on_both_engines () =
  List.iter
    (fun (file, pred, expected, _) ->
      let prog = load file in
      let reference = Choice_fixpoint.model prog in
      let staged = Stage_engine.model prog in
      Alcotest.(check int)
        (file ^ " reference rows of " ^ pred)
        expected
        (List.length (Database.facts_of reference pred));
      Alcotest.(check int)
        (file ^ " staged rows of " ^ pred)
        expected
        (List.length (Database.facts_of staged pred)))
    expectations

let test_models_stable () =
  List.iter
    (fun (file, _, _, checkable) ->
      if checkable then begin
        let prog = load file in
        Alcotest.(check bool) (file ^ " reference stable") true
          (Stable.is_stable prog (Choice_fixpoint.model prog));
        Alcotest.(check bool) (file ^ " staged stable") true
          (Stable.is_stable prog (Stage_engine.model prog))
      end)
    expectations

let test_roundtrip_through_pretty () =
  List.iter
    (fun (file, pred, expected, _) ->
      let prog = load file in
      let reparsed = Parser.parse_program (Pretty.program_to_string prog) in
      let db = Stage_engine.model reparsed in
      Alcotest.(check int) (file ^ " pretty-printed program still runs") expected
        (List.length (Database.facts_of db pred)))
    expectations

let test_prim_file_weight () =
  (* Cross-check one numeric outcome precisely: the MST of prim.dl. *)
  let db = Stage_engine.model (load "prim.dl") in
  let weight =
    Database.facts_of db "prm"
    |> List.filter (fun row -> Value.as_int row.(3) > 0)
    |> List.fold_left (fun acc row -> acc + Value.as_int row.(2)) 0
  in
  (* Edges: (1,2,2) (0,1,4) (3,4,4) (2,3,5) or (1,3,5), (2,4,9)?  The
     unique MST weight of that graph is 2+4+5+4+10 = 25. *)
  Alcotest.(check int) "prim.dl MST weight" 25 weight

let test_huffman_file_cost () =
  let db = Stage_engine.model (load "huffman.dl") in
  let cost =
    Database.facts_of db "h"
    |> List.filter (fun row -> Value.as_int row.(2) > 0)
    |> List.fold_left (fun acc row -> acc + Value.as_int row.(1)) 0
  in
  Alcotest.(check int) "huffman.dl weighted path length" 15 cost

let () =
  Alcotest.run "programs"
    [ ( "shipped .dl files",
        [ Alcotest.test_case "parse and analyze" `Quick test_parses_and_analyzes;
          Alcotest.test_case "run on both engines" `Quick test_runs_on_both_engines;
          Alcotest.test_case "models stable" `Quick test_models_stable;
          Alcotest.test_case "pretty round-trip runs" `Quick test_roundtrip_through_pretty;
          Alcotest.test_case "prim.dl weight" `Quick test_prim_file_weight;
          Alcotest.test_case "huffman.dl cost" `Quick test_huffman_file_cost ] ) ]
