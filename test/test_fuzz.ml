(* Differential fuzzing: randomly generated programs evaluated by
   independent paths must agree. *)

open Gbc

(* ------------------------------------------------------------------ *)
(* Random positive programs: semi-naive clique evaluation vs the naive
   whole-program fixpoint.                                             *)
(* ------------------------------------------------------------------ *)

let gen_positive_program =
  let open QCheck.Gen in
  let domain = 5 in
  let var = oneofl [ "X"; "Y"; "Z"; "W" ] in
  let edb_fact =
    map2
      (fun a b -> Ast.fact "e" [ Value.Int a; Value.Int b ])
      (int_bound (domain - 1)) (int_bound (domain - 1))
  in
  let idb = oneofl [ "p"; "q"; "r" ] in
  let body_atom =
    let pred = oneof [ return "e"; idb ] in
    map2 (fun p (v1, v2) -> Ast.Pos (Ast.atom p [ Ast.Var v1; Ast.Var v2 ])) pred (pair var var)
  in
  let rule =
    let* head_pred = idb in
    let* body = list_size (int_range 1 3) body_atom in
    (* Safe head: draw its variables from the body. *)
    let body_vars =
      List.concat_map (function Ast.Pos a -> Ast.atom_vars a | _ -> []) body
    in
    let* i = int_bound (max 0 (List.length body_vars - 1)) in
    let* j = int_bound (max 0 (List.length body_vars - 1)) in
    let nth k = List.nth body_vars (k mod List.length body_vars) in
    return (Ast.rule (Ast.atom head_pred [ Ast.Var (nth i); Ast.Var (nth j) ]) body)
  in
  let* facts = list_size (int_range 1 8) edb_fact in
  let* rules = list_size (int_range 1 5) rule in
  QCheck.Gen.return (facts @ rules)

let arb_positive_program =
  QCheck.make ~print:Pretty.program_to_string gen_positive_program

let prop_engine_equals_naive =
  QCheck.Test.make ~name:"random positive programs: engine = naive fixpoint" ~count:150
    arb_positive_program (fun prog ->
      let a = Choice_fixpoint.model prog in
      let b = Database.create () in
      Naive.saturate b prog;
      Database.equal_on a b [ "e"; "p"; "q"; "r" ])

let prop_staged_equals_naive =
  QCheck.Test.make ~name:"random positive programs: staged engine = naive" ~count:150
    arb_positive_program (fun prog ->
      let a = Stage_engine.model prog in
      let b = Database.create () in
      Naive.saturate b prog;
      Database.equal_on a b [ "e"; "p"; "q"; "r" ])

(* ------------------------------------------------------------------ *)
(* Random choice programs: fixpoint enumeration vs brute-force stable
   models of the rewriting (Lemma 2).                                  *)
(* ------------------------------------------------------------------ *)

let gen_choice_program =
  let open QCheck.Gen in
  let* nfacts = int_range 1 4 in
  let* pairs =
    list_repeat nfacts (pair (int_bound 2) (int_bound 2))
  in
  let facts =
    List.sort_uniq compare pairs
    |> List.map (fun (a, b) -> Ast.fact "e" [ Value.Int a; Value.Int b ])
  in
  let* fd = oneofl [ `Left; `Right; `Both; `Global ] in
  let choice_goals =
    match fd with
    | `Left -> [ Ast.Choice ([ Ast.Var "X" ], [ Ast.Var "Y" ]) ]
    | `Right -> [ Ast.Choice ([ Ast.Var "Y" ], [ Ast.Var "X" ]) ]
    | `Both ->
      [ Ast.Choice ([ Ast.Var "X" ], [ Ast.Var "Y" ]);
        Ast.Choice ([ Ast.Var "Y" ], [ Ast.Var "X" ]) ]
    | `Global -> [ Ast.Choice ([], [ Ast.Var "X"; Ast.Var "Y" ]) ]
  in
  let rule =
    Ast.rule
      (Ast.atom "sel" [ Ast.Var "X"; Ast.Var "Y" ])
      (Ast.Pos (Ast.atom "e" [ Ast.Var "X"; Ast.Var "Y" ]) :: choice_goals)
  in
  return (facts @ [ rule ])

let arb_choice_program =
  QCheck.make ~print:Pretty.program_to_string gen_choice_program

let models_signature dbs =
  List.sort compare
    (List.map
       (fun db ->
         Database.facts_of db "sel"
         |> List.map (fun row -> List.map Value.to_string (Array.to_list row))
         |> List.sort compare)
       dbs)

let prop_enumeration_equals_brute_force =
  QCheck.Test.make ~name:"random choice programs: enumerate = brute stable models"
    ~count:60 arb_choice_program (fun prog ->
      let enum = Choice_fixpoint.enumerate prog in
      let brute = Stable.stable_models_brute ~max_atoms:18 prog in
      models_signature enum = models_signature brute)

let prop_every_enumerated_model_stable =
  QCheck.Test.make ~name:"random choice programs: every model is stable" ~count:60
    arb_choice_program (fun prog ->
      List.for_all (fun db -> Stable.is_stable prog db) (Choice_fixpoint.enumerate prog))

(* ------------------------------------------------------------------ *)
(* Random greedy stage programs: every combination of choice FDs and
   extremum forms, on random data — both engines must produce stable
   models, and identical ones when costs are tie-free.  This is the
   adversarial test of the staged engine's shadow-safety analysis.     *)
(* ------------------------------------------------------------------ *)

let gen_stage_program =
  let open QCheck.Gen in
  let* nfacts = int_range 2 7 in
  let* tie_free = bool in
  let* raw =
    list_repeat nfacts (pair (int_bound 3) (pair (int_bound 3) (int_range 1 6)))
  in
  (* One cost per (a, b) pair, unique overall when tie_free. *)
  let seen = Hashtbl.create 8 in
  let facts =
    List.concat
      (List.mapi
         (fun i (a, (b, c)) ->
           if Hashtbl.mem seen (a, b) then []
           else begin
             Hashtbl.add seen (a, b) ();
             let cost = if tie_free then (i * 10) + c else c in
             [ Ast.fact "e" [ Value.Int a; Value.Int b; Value.Int cost ] ]
           end)
         raw)
  in
  let* fd =
    oneofl
      [ []; [ Ast.Choice ([ Ast.Var "A" ], [ Ast.Var "B" ]) ];
        [ Ast.Choice ([ Ast.Var "B" ], [ Ast.Var "A" ]) ];
        [ Ast.Choice ([ Ast.Var "A" ], [ Ast.Cmp ("", [ Ast.Var "B"; Ast.Var "C" ]) ]) ];
        [ Ast.Choice ([ Ast.Var "A" ], [ Ast.Var "B" ]);
          Ast.Choice ([ Ast.Var "B" ], [ Ast.Var "A" ]) ];
        [ Ast.Choice ([], [ Ast.Var "A"; Ast.Var "B" ]) ] ]
  in
  let* extremum =
    oneofl
      [ []; [ Ast.Least (Ast.Var "C", [ Ast.Var "I" ]) ];
        [ Ast.Most (Ast.Var "C", [ Ast.Var "I" ]) ] ]
  in
  let rule =
    Ast.rule
      (Ast.atom "p" [ Ast.Var "A"; Ast.Var "B"; Ast.Var "C"; Ast.Var "I" ])
      ((Ast.Next "I" :: Ast.Pos (Ast.atom "e" [ Ast.Var "A"; Ast.Var "B"; Ast.Var "C" ]) :: extremum)
      @ fd)
  in
  let seed = Ast.fact "p" [ Value.nil; Value.nil; Value.Int 0; Value.Int 0 ] in
  QCheck.Gen.return (tie_free, facts @ [ seed; rule ])

let prop_random_stage_programs =
  QCheck.Test.make ~name:"random stage programs: both engines stable; agree tie-free"
    ~count:120
    (QCheck.make
       ~print:(fun (tf, p) -> Printf.sprintf "tie_free=%b
%s" tf (Pretty.program_to_string p))
       gen_stage_program)
    (fun (tie_free, prog) ->
      let reference = Choice_fixpoint.model prog in
      let staged = Stage_engine.model prog in
      Stable.is_stable prog reference
      && Stable.is_stable prog staged
      && ((not tie_free) || Database.equal_on reference staged [ "p" ]))

(* ------------------------------------------------------------------ *)
(* Random sorting workloads through the full rewriting pipeline.       *)
(* ------------------------------------------------------------------ *)

let prop_random_sorting_stable =
  QCheck.Test.make ~name:"random sorting instances: staged model stable" ~count:25
    QCheck.(list_of_size (QCheck.Gen.int_range 0 6) (int_bound 9))
    (fun costs ->
      let items = List.mapi (fun i c -> (Printf.sprintf "x%d" i, c)) costs in
      let prog = Sorting.program items in
      Stable.is_stable prog (Stage_engine.model prog))

let () =
  Alcotest.run "fuzz"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest prop_engine_equals_naive;
          QCheck_alcotest.to_alcotest prop_staged_equals_naive;
          QCheck_alcotest.to_alcotest prop_enumeration_equals_brute_force;
          QCheck_alcotest.to_alcotest prop_every_enumerated_model_stable;
          QCheck_alcotest.to_alcotest prop_random_sorting_stable;
          QCheck_alcotest.to_alcotest prop_random_stage_programs ] ) ]
