(* The Section-7 transformation: naive accumulate-then-minimize
   programs rewritten into greedy stage programs. *)

open Gbc

(* The paper's naive matching (conclusion), with the accumulator seeded
   from the last selection as the prose describes. *)
let naive_matching = {|
matching(nil, nil, 0, 0).
matching(X, Y, C, I) <- next(I), new_arc(X, Y, C, J), I = J + 1,
                        choice(Y, X), choice(X, Y).
new_arc(X, Y, C, J) <- matching(A, B, C1, J), g(X, Y, C2), C = C1 + C2.
a_matching(C) <- matching(X, Y, C, I), most(I).
opt_matching(C) <- a_matching(C), least(C).
|}

let arcs = [ (0, 10, 3); (0, 11, 1); (1, 10, 2); (1, 11, 4); (2, 12, 5) ]

let arc_facts =
  List.map
    (fun (x, y, c) ->
      Ast.fact "g" [ Value.Int x; Value.Int y; Value.Int c ])
    arcs

let transform src =
  Transform.push_extremum (Parser.parse_program src)

let test_recognizes_the_paper_shape () =
  match transform naive_matching with
  | Error e -> Alcotest.fail e
  | Ok transformed ->
    (* The post-condition, aggregate and accumulator rules are gone. *)
    let heads = List.map Ast.head_pred transformed in
    Alcotest.(check bool) "opt gone" false (List.mem "opt_matching" heads);
    Alcotest.(check bool) "aggregate gone" false (List.mem "a_matching" heads);
    Alcotest.(check bool) "accumulator gone" false (List.mem "new_arc" heads);
    (* The next rule now reads g directly under a staged least. *)
    let next_rule = List.find Ast.has_next transformed in
    let body = Pretty.rule_to_string next_rule in
    let contains needle =
      let n = String.length needle in
      let rec go i = i + n <= String.length body && (String.sub body i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "reads the base relation" true (contains "g(X, Y, C)");
    Alcotest.(check bool) "staged least" true (contains "least(C, I)");
    Alcotest.(check bool) "keeps the choice goals" true (contains "choice(Y, X)")

let test_transformed_equals_example7 () =
  (* The transformed program computes exactly what the hand-written
     Example 7 program computes. *)
  match transform naive_matching with
  | Error e -> Alcotest.fail e
  | Ok transformed ->
    let db = Choice_fixpoint.model (arc_facts @ transformed) in
    let selected =
      Database.facts_of db "matching"
      |> List.filter (fun row -> Value.as_int row.(3) > 0)
      |> List.map (fun row ->
             (Value.as_int row.(0), Value.as_int row.(1), Value.as_int row.(2)))
      |> List.sort compare
    in
    let expected = List.sort compare (Matching.run Runner.Staged arcs).Matching.arcs in
    Alcotest.(check (list (triple int int int))) "same greedy matching" expected selected

let test_transformed_is_stage_stratified () =
  match transform naive_matching with
  | Error e -> Alcotest.fail e
  | Ok transformed ->
    Alcotest.(check bool) "within the compile-time class" true
      (Stage.analyze transformed).Stage.stage_stratified

let test_transformed_runs_on_stage_engine () =
  match transform naive_matching with
  | Error e -> Alcotest.fail e
  | Ok transformed ->
    let prog = arc_facts @ transformed in
    let a = Stage_engine.model prog in
    let b = Choice_fixpoint.model prog in
    Alcotest.(check bool) "engines agree" true (Database.equal_on a b [ "matching" ]);
    Alcotest.(check bool) "stable" true (Stable.is_stable prog a)

let test_rejects_programs_without_the_shape () =
  let reject src fragment =
    match transform src with
    | Ok _ -> Alcotest.fail ("accepted: " ^ src)
    | Error msg ->
      let contains hay needle =
        let n = String.length needle in
        let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (msg ^ " mentions " ^ fragment) true (contains msg fragment)
  in
  reject "p(X) <- e(X)." "post-condition";
  reject "opt(C) <- a(C), least(C). p(X) <- e(X)." "aggregate";
  reject
    "opt(C) <- a(C), least(C). a(C) <- p(X, C, I), most(I). p(nil, 0, 0)."
    "next rule";
  (* An accumulator that multiplies instead of adding is out of scope. *)
  reject
    {|
opt(C) <- a(C), least(C).
a(C) <- p(X, C, I), most(I).
p(nil, 0, 0).
p(X, C, I) <- next(I), acc(X, C, J), I = J + 1.
acc(X, C, J) <- p(_, C1, J), base(X, C2), C = C1 * C2.
|}
    "add"

let test_greedy_total_cost_matches_accumulated () =
  (* On this instance the naive program's accumulated optimum... is
     expensive to enumerate; instead check internal consistency: the
     transformed greedy total equals the sum over selected arcs. *)
  let greedy = Matching.run Runner.Staged arcs in
  let total = List.fold_left (fun a (_, _, c) -> a + c) 0 greedy.Matching.arcs in
  Alcotest.(check int) "cost bookkeeping" greedy.Matching.cost total

let () =
  Alcotest.run "transform"
    [ ( "push_extremum",
        [ Alcotest.test_case "recognizes the paper's shape" `Quick
            test_recognizes_the_paper_shape;
          Alcotest.test_case "equals Example 7" `Quick test_transformed_equals_example7;
          Alcotest.test_case "stage-stratified result" `Quick
            test_transformed_is_stage_stratified;
          Alcotest.test_case "runs on the stage engine" `Quick
            test_transformed_runs_on_stage_engine;
          Alcotest.test_case "rejects other shapes" `Quick
            test_rejects_programs_without_the_shape;
          Alcotest.test_case "cost bookkeeping" `Quick
            test_greedy_total_cost_matches_accumulated ] ) ]
