(* Extension programs and the matroid framework from the conclusion. *)

open Gbc

let engines = [ ("reference", Runner.Reference); ("staged", Runner.Staged) ]

(* ---------------- vertex cover ---------------- *)

let test_vertex_cover_small () =
  (* Path 0-1-2-3: greedy picks (0,1) then (2,3): cover size 4, optimum 2. *)
  let g = { Graph_gen.nodes = 4; edges = [ (0, 1, 1); (1, 2, 1); (2, 3, 1) ] } in
  List.iter
    (fun (name, eng) ->
      let r = Vertex_cover.run eng g in
      Alcotest.(check bool) (name ^ " covers") true (Vertex_cover.is_cover g r);
      Alcotest.(check (list (pair int int))) (name ^ " matching") [ (0, 1); (2, 3) ]
        r.Vertex_cover.picked)
    engines;
  Alcotest.(check int) "optimum" 2 (Vertex_cover.optimal_cover_size g)

let test_vertex_cover_agrees_with_procedural () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:16 ~extra_edges:25 in
      let expected = Vertex_cover.procedural g in
      List.iter
        (fun (name, eng) ->
          let r = Vertex_cover.run eng g in
          Alcotest.(check (list (pair int int))) (Printf.sprintf "%s seed %d" name seed)
            expected.Vertex_cover.picked r.Vertex_cover.picked)
        engines)
    [ 2; 4; 8 ]

let prop_vertex_cover_two_approx =
  QCheck.Test.make ~name:"vertex cover is a 2-approximation" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:12 ~extra_edges:10 in
      let r = Vertex_cover.run Runner.Staged g in
      Vertex_cover.is_cover g r
      && List.length r.Vertex_cover.cover <= 2 * Vertex_cover.optimal_cover_size g)

let test_vertex_cover_stable () =
  let g = Graph_gen.random_connected ~seed:3 ~nodes:7 ~extra_edges:4 in
  let prog = Vertex_cover.program g in
  Alcotest.(check bool) "staged model stable" true
    (Stable.is_stable prog (Stage_engine.model prog));
  Alcotest.(check bool) "reference model stable" true
    (Stable.is_stable prog (Choice_fixpoint.model prog))

(* ---------------- set cover (aggregates) ---------------- *)

let test_set_cover_small () =
  let sets = [ (0, [ 1; 2; 3 ]); (1, [ 3; 4 ]); (2, [ 4; 5; 6; 7 ]); (3, [ 1; 5 ]) ] in
  List.iter
    (fun (name, eng) ->
      let picked = Set_cover.run eng sets in
      Alcotest.(check (list int)) name [ 2; 0 ] picked;
      Alcotest.(check int) (name ^ " full coverage") (Set_cover.coverable sets)
        (Set_cover.coverage sets picked))
    engines;
  Alcotest.(check int) "optimum" 2 (Set_cover.optimal_size sets)

let test_set_cover_engines_agree () =
  List.iter
    (fun seed ->
      let sets = Set_cover.random_instance ~seed ~sets:8 ~universe:20 in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d" seed)
        (Set_cover.run Runner.Reference sets)
        (Set_cover.run Runner.Staged sets))
    [ 1; 2; 3; 4 ]

let prop_set_cover_covers_and_approximates =
  QCheck.Test.make ~name:"set cover: full coverage within the harmonic bound" ~count:15
    QCheck.(int_bound 100_000)
    (fun seed ->
      let sets = Set_cover.random_instance ~seed ~sets:7 ~universe:14 in
      let picked = Set_cover.run Runner.Staged sets in
      let opt = Set_cover.optimal_size sets in
      (* H_14 < 3.3 *)
      Set_cover.coverage sets picked = Set_cover.coverable sets
      && float_of_int (List.length picked) <= (3.3 *. float_of_int opt) +. 0.001)

let test_count_aggregate_basic () =
  let db =
    Choice_fixpoint.model
      (Parser.parse_program
         "elem(a, 1). elem(a, 2). elem(a, 2). elem(b, 5).
          size(S, N) <- elem(S, E), count(N, E, S).")
  in
  let rows =
    Database.facts_of db "size"
    |> List.map (fun r -> (Value.to_string r.(0), Value.as_int r.(1)))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string int))) "distinct counts" [ ("a", 2); ("b", 1) ] rows

let test_sum_aggregate_basic () =
  let db =
    Choice_fixpoint.model
      (Parser.parse_program
         "price(shop1, 10). price(shop1, 25). price(shop2, 40).
          total(S, N) <- price(S, P), sum(N, P, S).")
  in
  let rows =
    Database.facts_of db "total"
    |> List.map (fun r -> (Value.to_string r.(0), Value.as_int r.(1)))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string int))) "sums" [ ("shop1", 35); ("shop2", 40) ] rows

let test_aggregate_global_group () =
  let db =
    Choice_fixpoint.model
      (Parser.parse_program "p(1). p(2). p(3). n(N) <- p(X), count(N, X).")
  in
  Alcotest.(check int) "global count" 3
    (Value.as_int (List.hd (Database.facts_of db "n")).(0))

let test_aggregate_rejected_in_rewriting () =
  let prog = Parser.parse_program "size(S, N) <- elem(S, E), count(N, E, S). elem(a, 1)." in
  Alcotest.(check bool) "no first-order expansion" true
    (try
       ignore (Rewrite.expand_all prog);
       false
     with Invalid_argument _ -> true)

(* ---------------- matroids ---------------- *)

let test_uniform_matroid () =
  let m = Matroid.uniform ~k:2 [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "independence system" true (Matroid.is_independence_system m);
  Alcotest.(check bool) "exchange" true (Matroid.satisfies_exchange m);
  Alcotest.(check bool) "size bound" false (Matroid.independent m [ 1; 2; 3 ])

let test_partition_matroid () =
  let m = Matroid.partition ~class_of:(fun x -> x mod 3) ~capacity:1 [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "independence system" true (Matroid.is_independence_system m);
  Alcotest.(check bool) "exchange" true (Matroid.satisfies_exchange m);
  Alcotest.(check bool) "one per class" false (Matroid.independent m [ 0; 3 ]);
  Alcotest.(check bool) "distinct classes ok" true (Matroid.independent m [ 0; 1; 2 ])

let test_graphic_matroid () =
  let edges = [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  let m = Matroid.graphic ~nodes:4 edges in
  Alcotest.(check bool) "independence system" true (Matroid.is_independence_system m);
  Alcotest.(check bool) "exchange" true (Matroid.satisfies_exchange m);
  Alcotest.(check bool) "forest ok" true (Matroid.independent m [ (0, 1); (1, 2); (2, 3) ]);
  Alcotest.(check bool) "cycle dependent" false
    (Matroid.independent m [ (0, 1); (1, 2); (0, 2) ])

let test_greedy_optimal_on_matroids () =
  (* Greedy basis weight = exhaustive optimum, for several matroids and
     weightings. *)
  let check name m weight =
    let basis = Matroid.greedy ~weight m in
    let w = List.fold_left (fun a x -> a + weight x) 0 basis in
    Alcotest.(check int) name (Matroid.best_basis_weight ~weight m) w
  in
  check "uniform" (Matroid.uniform ~k:3 [ 1; 2; 3; 4; 5; 6 ]) (fun x -> x * x);
  check "partition"
    (Matroid.partition ~class_of:(fun x -> x mod 2) ~capacity:2 [ 1; 2; 3; 4; 5; 6 ])
    (fun x -> 13 * x mod 7);
  check "graphic"
    (Matroid.graphic ~nodes:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4); (1, 3) ])
    (fun (u, v) -> ((u * 5) + v) mod 11)

let test_kruskal_is_graphic_matroid_greedy () =
  let g = Graph_gen.random_connected ~seed:17 ~nodes:10 ~extra_edges:12 in
  let weight_of = Hashtbl.create 32 in
  List.iter (fun (u, v, c) -> Hashtbl.replace weight_of (u, v) c) g.Graph_gen.edges;
  let m = Matroid.graphic ~nodes:10 (List.map (fun (u, v, _) -> (u, v)) g.Graph_gen.edges) in
  let basis = Matroid.greedy ~weight:(fun e -> Hashtbl.find weight_of e) m in
  let basis_weight = List.fold_left (fun a e -> a + Hashtbl.find weight_of e) 0 basis in
  Alcotest.(check int) "matroid greedy = declarative Kruskal"
    (Kruskal.run Runner.Staged g).Kruskal.weight basis_weight

let test_matching_is_not_a_matroid () =
  (* Arc sets with per-column degree bounds = intersection of two
     partition matroids; the intersection fails the exchange axiom, so
     greedy maximality does not imply optimality — the paper's reason
     for invoking matroid theory rather than claiming optimality. *)
  let arcs = [ (0, 10); (0, 11); (1, 10) ] in
  let matching_system =
    Matroid.make ~ground:arcs ~independent:(fun s ->
        let distinct f = List.length (List.sort_uniq compare (List.map f s)) = List.length s in
        distinct fst && distinct snd)
  in
  Alcotest.(check bool) "downward closed" true
    (Matroid.is_independence_system matching_system);
  Alcotest.(check bool) "fails exchange" false
    (Matroid.satisfies_exchange matching_system)

let test_greedy_suboptimal_off_matroid () =
  (* A concrete instance where greedy matching is maximal but not
     minimum-cost-maximum-cardinality... weights chosen so that the
     greedy (by min cost) picks the arc that blocks the cheap pair. *)
  let arcs = [ (0, 10, 1); (0, 11, 2); (1, 10, 2) ] in
  let greedy = Matching.run Runner.Staged arcs in
  (* Greedy takes (0,10) for cost 1 and stops (all else blocked):
     total 1 with 1 arc; the alternative {(0,11),(1,10)} has 2 arcs. *)
  Alcotest.(check int) "greedy picks one arc" 1 (List.length greedy.Matching.arcs);
  Alcotest.(check bool) "greedy is maximal" true (Matching.is_maximal_matching arcs greedy)

let prop_graphic_matroid_random =
  QCheck.Test.make ~name:"random graphic matroids satisfy exchange" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:5 ~extra_edges:3 in
      let m = Matroid.graphic ~nodes:5 (List.map (fun (u, v, _) -> (u, v)) g.Graph_gen.edges) in
      Matroid.is_independence_system m && Matroid.satisfies_exchange m)

let () =
  Alcotest.run "extensions"
    [ ( "vertex cover",
        [ Alcotest.test_case "path graph" `Quick test_vertex_cover_small;
          Alcotest.test_case "agrees with procedural" `Quick
            test_vertex_cover_agrees_with_procedural;
          Alcotest.test_case "models stable" `Quick test_vertex_cover_stable;
          QCheck_alcotest.to_alcotest prop_vertex_cover_two_approx ] );
      ( "set cover and aggregates",
        [ Alcotest.test_case "known instance" `Quick test_set_cover_small;
          Alcotest.test_case "engines agree" `Quick test_set_cover_engines_agree;
          Alcotest.test_case "count aggregate" `Quick test_count_aggregate_basic;
          Alcotest.test_case "sum aggregate" `Quick test_sum_aggregate_basic;
          Alcotest.test_case "global group" `Quick test_aggregate_global_group;
          Alcotest.test_case "no expansion for aggregates" `Quick
            test_aggregate_rejected_in_rewriting;
          QCheck_alcotest.to_alcotest prop_set_cover_covers_and_approximates ] );
      ( "matroids",
        [ Alcotest.test_case "uniform" `Quick test_uniform_matroid;
          Alcotest.test_case "partition" `Quick test_partition_matroid;
          Alcotest.test_case "graphic" `Quick test_graphic_matroid;
          Alcotest.test_case "greedy optimal on matroids" `Quick
            test_greedy_optimal_on_matroids;
          Alcotest.test_case "kruskal = graphic greedy" `Quick
            test_kruskal_is_graphic_matroid_greedy;
          Alcotest.test_case "matching is not a matroid" `Quick test_matching_is_not_a_matroid;
          Alcotest.test_case "greedy suboptimal off matroid" `Quick
            test_greedy_suboptimal_off_matroid;
          QCheck_alcotest.to_alcotest prop_graphic_matroid_random ] ) ]
