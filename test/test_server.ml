(* gbcd end to end: an in-process server on a Unix-domain socket,
   exercised by real client connections.

   Covers the acceptance criteria for the daemon:
   - models served over the wire are byte-identical to single-shot
     evaluation, including under 8 concurrent sessions replaying all
     13 exemplar programs against a 4-worker pool;
   - two sessions loading the same cached program and asserting
     different facts get disjoint models (copy-on-write isolation);
   - budget exhaustion returns a structured partial frame and the
     connection stays usable;
   - malformed bytes get a structured error frame, not a dropped
     connection or a crash;
   - shutdown drains gracefully (Bye, then the server's run returns). *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let exemplars =
  [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
    "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
    "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]

let source name = read_file ("../programs/" ^ name)

(* ---------------- in-process server fixture ---------------- *)

let sock_counter = ref 0

let with_server ?(workers = 4) ?default_timeout_s ?max_facts ?(max_jobs = 1) ?worker_fault
    ?idle_timeout_s f =
  incr sock_counter;
  let path = Printf.sprintf "gbcd_test_%d_%d.sock" (Unix.getpid ()) !sock_counter in
  let cfg =
    { Server.default_config with
      port = None;
      unix_path = Some path;
      workers;
      default_timeout_s;
      max_facts;
      max_jobs;
      worker_fault;
      idle_timeout_s }
  in
  match Server.create cfg with
  | Error msg -> Alcotest.fail ("server create: " ^ msg)
  | Ok srv ->
    let runner = Domain.spawn (fun () -> Server.run srv) in
    Fun.protect
      ~finally:(fun () ->
        Server.shutdown srv;
        Domain.join runner;
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
      (fun () -> f path)

let rec connect ?(tries = 50) path =
  match Client.connect_unix path with
  | c -> c
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
    Unix.sleepf 0.02;
    connect ~tries:(tries - 1) path

let with_conn path f =
  let c = connect path in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* inline records cannot escape their constructor, so project to tuples *)
let expect_loaded = function
  | Protocol.Loaded { clauses; cache_hit; digest; stage_stratified } ->
    (clauses, cache_hit, digest, stage_stratified)
  | Protocol.Error { message; _ } -> Alcotest.fail ("load failed: " ^ message)
  | _ -> Alcotest.fail "expected a Loaded frame"

let expect_model = function
  | Protocol.Model { complete; text; diagnostic } -> (complete, text, diagnostic)
  | Protocol.Error { message; _ } -> Alcotest.fail ("run failed: " ^ message)
  | _ -> Alcotest.fail "expected a Model frame"

let run_req =
  Protocol.Run { engine = Protocol.Staged; seed = None; preds = None; budget = Protocol.no_budget }

let assert_req text = Protocol.Assert_facts { text; id = None }
let retract_req text = Protocol.Retract_facts { text; id = None }

(* single-shot reference output, same rendering as the server's *)
let local_model name =
  Format.asprintf "%a" Database.pp (Stage_engine.model (Parser.parse_program (source name)))

(* ---------------- basics ---------------- *)

let test_ping () =
  with_server (fun path ->
      with_conn path (fun c ->
          match Client.rpc c Protocol.Ping with
          | Protocol.Pong -> ()
          | _ -> Alcotest.fail "expected Pong"))

let test_run_matches_single_shot () =
  with_server (fun path ->
      with_conn path (fun c ->
          List.iter
            (fun name ->
              let _ = expect_loaded (Client.rpc c (Protocol.Load (source name))) in
              let complete, text, _ = expect_model (Client.rpc c run_req) in
              Alcotest.(check bool) (name ^ " complete") true complete;
              Alcotest.(check string) (name ^ " model") (local_model name) text)
            [ "example1.dl"; "prim.dl"; "transitive_closure.dl" ]))

let test_cache_hit () =
  with_server (fun path ->
      let src = source "prim.dl" in
      with_conn path (fun c1 ->
          let _, hit1, digest1, _ = expect_loaded (Client.rpc c1 (Protocol.Load src)) in
          Alcotest.(check bool) "first load is a miss" false hit1;
          with_conn path (fun c2 ->
              let _, hit2, digest2, _ = expect_loaded (Client.rpc c2 (Protocol.Load src)) in
              Alcotest.(check bool) "second load hits" true hit2;
              Alcotest.(check string) "same digest" digest1 digest2)))

let test_run_without_load () =
  with_server (fun path ->
      with_conn path (fun c ->
          match Client.rpc c run_req with
          | Protocol.Error { code = Protocol.No_program; _ } -> ()
          | _ -> Alcotest.fail "expected a No_program error"))

(* ---------------- session isolation ---------------- *)

(* two sessions share one cached program, assert different facts, and
   must see disjoint models — the copy-on-write snapshot is the
   isolation boundary *)
let test_session_isolation () =
  with_server (fun path ->
      let src = "path(X, Y) <- edge(X, Y).\npath(X, Z) <- path(X, Y), edge(Y, Z).\nedge(1, 2).\n" in
      with_conn path (fun c1 ->
          with_conn path (fun c2 ->
              let _, _, digest1, _ = expect_loaded (Client.rpc c1 (Protocol.Load src)) in
              let _, hit2, digest2, _ = expect_loaded (Client.rpc c2 (Protocol.Load src)) in
              Alcotest.(check string) "shared entry" digest1 digest2;
              Alcotest.(check bool) "second session hit the cache" true hit2;
              (match Client.rpc c1 (assert_req "edge(2, 31).") with
               | Protocol.Asserted { added = 1 } -> ()
               | _ -> Alcotest.fail "assert in session 1");
              (match Client.rpc c2 (assert_req "edge(2, 32).") with
               | Protocol.Asserted { added = 1 } -> ()
               | _ -> Alcotest.fail "assert in session 2");
              let _, m1, _ = expect_model (Client.rpc c1 run_req) in
              let _, m2, _ = expect_model (Client.rpc c2 run_req) in
              let contains s sub =
                let n = String.length sub in
                let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
                go 0
              in
              Alcotest.(check bool) "s1 sees its own fact" true (contains m1 "path(1, 31)");
              Alcotest.(check bool) "s1 does not see s2's fact" false (contains m1 "path(1, 32)");
              Alcotest.(check bool) "s2 sees its own fact" true (contains m2 "path(1, 32)");
              Alcotest.(check bool) "s2 does not see s1's fact" false (contains m2 "path(1, 31)"))))

let test_retract () =
  with_server (fun path ->
      with_conn path (fun c ->
          let src = "q(X) <- p(X).\np(1).\n" in
          let _ = expect_loaded (Client.rpc c (Protocol.Load src)) in
          (match Client.rpc c (assert_req "p(2). p(3).") with
           | Protocol.Asserted { added = 2 } -> ()
           | _ -> Alcotest.fail "assert two");
          (match Client.rpc c (retract_req "p(3).") with
           | Protocol.Retracted { removed = 1 } -> ()
           | _ -> Alcotest.fail "retract one");
          (* the program's own facts are not retractable: the batch is
             refused as a whole, and nothing changes *)
          (match Client.rpc c (retract_req "p(1).") with
           | Protocol.Error { code = Protocol.Not_retractable; _ } -> ()
           | _ -> Alcotest.fail "program facts must survive retraction");
          (* neither is a fact the session never asserted *)
          (match Client.rpc c (retract_req "p(99).") with
           | Protocol.Error { code = Protocol.Not_retractable; _ } -> ()
           | _ -> Alcotest.fail "never-asserted facts are not retractable");
          (* ... nor one already retracted *)
          (match Client.rpc c (retract_req "p(3).") with
           | Protocol.Error { code = Protocol.Not_retractable; _ } -> ()
           | _ -> Alcotest.fail "double retract must fail");
          (* multiset semantics: a double assert takes two retracts *)
          (match Client.rpc c (assert_req "p(2).") with
           | Protocol.Asserted { added = 0 } -> ()
           | _ -> Alcotest.fail "re-assert records an occurrence, adds no row");
          (match Client.rpc c (retract_req "p(2).") with
           | Protocol.Retracted { removed = 1 } -> ()
           | _ -> Alcotest.fail "first retract of a doubly-asserted fact");
          let _, text, _ = expect_model (Client.rpc c run_req) in
          Alcotest.(check string) "model after retract" "p(1).\np(2).\nq(1).\nq(2).\n" text;
          (match Client.rpc c (retract_req "p(2).") with
           | Protocol.Retracted { removed = 1 } -> ()
           | _ -> Alcotest.fail "second retract removes the row");
          let _, text, _ = expect_model (Client.rpc c run_req) in
          Alcotest.(check string) "model after final retract" "p(1).\nq(1).\n" text))

(* ---------------- governance ---------------- *)

let test_budget_partial_keeps_connection () =
  with_server (fun path ->
      with_conn path (fun c ->
          let _ = expect_loaded (Client.rpc c (Protocol.Load (source "adversarial_nat.dl"))) in
          let budget =
            { Protocol.no_budget with Protocol.max_facts = Some 50 }
          in
          let complete, _, diagnostic =
            expect_model
              (Client.rpc c
                 (Protocol.Run
                    { engine = Protocol.Staged; seed = None; preds = None; budget }))
          in
          Alcotest.(check bool) "partial" false complete;
          (match diagnostic with
           | Some d -> Alcotest.(check bool) "diagnostic names the budget" true
                         (String.length d > 0)
           | None -> Alcotest.fail "partial model must carry diagnostics");
          (* the connection survives the exhausted budget *)
          match Client.rpc c Protocol.Ping with
          | Protocol.Pong -> ()
          | _ -> Alcotest.fail "connection must stay usable after a partial"))

let test_server_side_cap () =
  (* the server's own cap applies even when the client asks for nothing *)
  with_server ~max_facts:50 (fun path ->
      with_conn path (fun c ->
          let _ = expect_loaded (Client.rpc c (Protocol.Load (source "adversarial_nat.dl"))) in
          let complete, _, _ = expect_model (Client.rpc c run_req) in
          Alcotest.(check bool) "server cap produced a partial" false complete))

(* ---------------- protocol robustness over the wire ---------------- *)

let test_malformed_frame_gets_error () =
  with_server (fun path ->
      with_conn path (fun c ->
          (* valid length prefix, garbage payload: unknown tag 0x7f *)
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          let raw = Client.connect_fd fd in
          let frame = "\x00\x00\x00\x01\x7f" in
          let _ = Unix.write_substring fd frame 0 (String.length frame) in
          (match Client.recv raw with
           | Protocol.Error { code = Protocol.Protocol_violation; _ } -> ()
           | _ -> Alcotest.fail "garbage must come back as Protocol_violation");
          Client.close raw;
          (* ... and the rest of the server is unaffected *)
          match Client.rpc c Protocol.Ping with
          | Protocol.Pong -> ()
          | _ -> Alcotest.fail "server must survive a malformed client"))

let test_query_and_enumerate () =
  with_server (fun path ->
      with_conn path (fun c ->
          let _ = expect_loaded (Client.rpc c (Protocol.Load (source "example1.dl"))) in
          (match
             Client.rpc c
               (Protocol.Query
                  { engine = Protocol.Staged; text = "a_st(X, Y)"; budget = Protocol.no_budget })
           with
           | Protocol.Answers { complete = true; vars = [ "X"; "Y" ]; rows } ->
             Alcotest.(check bool) "some answers" true (rows <> [])
           | _ -> Alcotest.fail "expected Answers");
          match Client.rpc c (Protocol.Enumerate { max_models = 50; preds = None }) with
          | Protocol.Model_set { total; models } ->
            Alcotest.(check int) "one model per listed text" total (List.length models);
            Alcotest.(check bool) "at least one model" true (total >= 1)
          | Protocol.Error { message; _ } -> Alcotest.fail ("enumerate: " ^ message)
          | _ -> Alcotest.fail "expected Model_set"))

let test_stats () =
  with_server (fun path ->
      with_conn path (fun c ->
          let _ = Client.rpc c Protocol.Ping in
          match Client.rpc c Protocol.Stats with
          | Protocol.Stats_json json ->
            let contains s sub =
              let n = String.length sub in
              let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "has requests" true (contains json "\"requests\"");
            Alcotest.(check bool) "has cache" true (contains json "\"cache\"");
            Alcotest.(check bool) "has session" true (contains json "\"session\"")
          | _ -> Alcotest.fail "expected Stats_json"))

(* pull the integer following "key": out of a stats json blob *)
let int_field json key =
  let marker = "\"" ^ key ^ "\": " in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length json then Alcotest.fail ("stats json lacks " ^ key)
    else if String.sub json i mlen = marker then i + mlen
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while
    !stop < String.length json
    && (match json.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  int_of_string (String.sub json start (!stop - start))

(* The program cache's hit/miss/eviction counters must surface in the
   stats frame: a second load of the same source from another session
   is a hit, a different source is another miss. *)
let test_cache_counters_in_stats () =
  with_server (fun path ->
      let src = source "prim.dl" in
      with_conn path (fun c1 ->
          let _ = expect_loaded (Client.rpc c1 (Protocol.Load src)) in
          with_conn path (fun c2 ->
              let _ = expect_loaded (Client.rpc c2 (Protocol.Load src)) in
              let _ = expect_loaded (Client.rpc c2 (Protocol.Load (source "sorting.dl"))) in
              match Client.rpc c2 Protocol.Stats with
              | Protocol.Stats_json json ->
                Alcotest.(check bool) "hits >= 1" true (int_field json "hits" >= 1);
                Alcotest.(check bool) "misses >= 2" true (int_field json "misses" >= 2);
                Alcotest.(check bool) "evictions >= 0" true (int_field json "evictions" >= 0);
                Alcotest.(check bool) "entries >= 2" true (int_field json "entries" >= 2)
              | _ -> Alcotest.fail "expected Stats_json")))

(* ---------------- sessions: attach / reclaim ---------------- *)

let expect_attached = function
  | Protocol.Attached { id } -> id
  | Protocol.Error { message; _ } -> Alcotest.fail ("attach failed: " ^ message)
  | _ -> Alcotest.fail "expected an Attached frame"

(* A session marked attachable survives its connection: a later client
   reclaims it by id and sees the same program and facts. *)
let test_attach_reclaim () =
  with_server (fun path ->
      let src = "q(X) <- p(X).\np(1).\n" in
      let id =
        with_conn path (fun c ->
            let _ = expect_loaded (Client.rpc c (Protocol.Load src)) in
            (match Client.rpc c (assert_req "p(7).") with
             | Protocol.Asserted { added = 1 } -> ()
             | _ -> Alcotest.fail "assert");
            expect_attached (Client.rpc c (Protocol.Attach None)))
      in
      with_conn path (fun c ->
          let id' = expect_attached (Client.rpc c (Protocol.Attach (Some id))) in
          Alcotest.(check int) "same session id" id id';
          let _, text, _ = expect_model (Client.rpc c run_req) in
          Alcotest.(check string) "state survived the reconnect"
            "p(1).\np(7).\nq(1).\nq(7).\n" text);
      (* an id nobody ever held is a permanent, structured answer *)
      with_conn path (fun c ->
          match Client.rpc c (Protocol.Attach (Some 424242)) with
          | Protocol.Error { code = Protocol.No_session; _ } -> ()
          | _ -> Alcotest.fail "expected No_session"))

(* A replayed mutation (same request id) is answered from the recorded
   result, not applied twice — the exactly-once contract the resilient
   client relies on after a broken connection. *)
let test_exactly_once_replay () =
  with_server (fun path ->
      with_conn path (fun c ->
          let _ = expect_loaded (Client.rpc c (Protocol.Load "q(X) <- p(X).\np(1).\n")) in
          let req = Protocol.Assert_facts { text = "p(5)."; id = Some 42 } in
          (match Client.rpc c req with
           | Protocol.Asserted { added = 1 } -> ()
           | _ -> Alcotest.fail "first assert");
          (match Client.rpc c req with
           | Protocol.Asserted { added = 1 } -> ()  (* the recorded result, replayed *)
           | _ -> Alcotest.fail "replay must echo the recorded result");
          (* one retract empties it: the occurrence was recorded once *)
          (match Client.rpc c (retract_req "p(5).") with
           | Protocol.Retracted { removed = 1 } -> ()
           | _ -> Alcotest.fail "retract");
          match Client.rpc c (retract_req "p(5).") with
          | Protocol.Error { code = Protocol.Not_retractable; _ } -> ()
          | _ -> Alcotest.fail "the deduped replay must not have added a second occurrence"))

(* ---------------- supervision ---------------- *)

(* An exception escaping a worker domain surfaces as a structured
   error frame on the connection whose request killed it, and the pool
   respawns the worker — the next request is served normally. *)
let test_worker_supervision () =
  with_server ~workers:2 ~worker_fault:1 (fun path ->
      with_conn path (fun c ->
          (match Client.rpc c Protocol.Ping with
           | Protocol.Error { code = Protocol.Server_error; _ } -> ()
           | _ -> Alcotest.fail "the injected fault must surface as a structured error");
          (match Client.rpc c Protocol.Ping with
           | Protocol.Pong -> ()
           | _ -> Alcotest.fail "expected Pong from the respawned pool");
          match Client.rpc c Protocol.Stats with
          | Protocol.Stats_json json ->
            Alcotest.(check bool) "respawn counted" true
              (int_field json "workers_respawned" >= 1)
          | _ -> Alcotest.fail "expected Stats_json"))

(* Clients hanging up mid-frame (torn length prefix, torn payload)
   must not leak connection slots or descriptors. *)
let test_midframe_disconnect () =
  with_server (fun path ->
      for i = 0 to 19 do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        let torn =
          match i mod 3 with
          | 0 -> "\x00\x00"                  (* half a length prefix *)
          | 1 -> "\x00\x00\x01\x00\x02\x05"  (* prefix promises 256 bytes, sends 2 *)
          | _ -> "\x00\x00\x00\x05\x10"      (* a fifth of a payload *)
        in
        let _ = Unix.write_substring fd torn 0 (String.length torn) in
        Unix.close fd
      done;
      with_conn path (fun c ->
          let rec settle tries =
            match Client.rpc c Protocol.Stats with
            | Protocol.Stats_json json ->
              let open_conns = int_field json "open_conns" in
              if open_conns = 1 then ()  (* just this stats connection *)
              else if tries = 0 then
                Alcotest.failf "leaked connections: open_conns=%d (want 1)" open_conns
              else begin
                Unix.sleepf 0.05;
                settle (tries - 1)
              end
            | _ -> Alcotest.fail "expected Stats_json"
          in
          settle 40;
          match Client.rpc c Protocol.Ping with
          | Protocol.Pong -> ()
          | _ -> Alcotest.fail "server must survive mid-frame hangups"))

(* --idle-timeout reaps detached sessions nobody reclaimed; without a
   data dir their state is then truly gone (no-session). *)
let test_idle_reap () =
  with_server ~idle_timeout_s:0.3 (fun path ->
      let id =
        with_conn path (fun c ->
            let _ = expect_loaded (Client.rpc c (Protocol.Load "p(1).\n")) in
            expect_attached (Client.rpc c (Protocol.Attach None)))
      in
      let rec wait tries =
        let reaped =
          with_conn path (fun c ->
              match Client.rpc c Protocol.Stats with
              | Protocol.Stats_json json -> int_field json "sessions_reaped" >= 1
              | _ -> Alcotest.fail "expected Stats_json")
        in
        if reaped then ()
        else if tries = 0 then Alcotest.fail "idle session never reaped"
        else begin
          Unix.sleepf 0.2;
          wait (tries - 1)
        end
      in
      wait 30;
      with_conn path (fun c ->
          match Client.rpc c (Protocol.Attach (Some id)) with
          | Protocol.Error { code = Protocol.No_session; _ } -> ()
          | _ -> Alcotest.fail "a reaped ephemeral session must answer no-session"))

(* A client asking for --jobs gets the same bytes as the sequential
   single-shot run, whether the server grants the parallelism
   (max_jobs 4) or clamps it back to 1 (default config). *)
let test_jobs_request_same_model () =
  let budget = { Protocol.no_budget with Protocol.jobs = Some 4 } in
  let req =
    Protocol.Run { engine = Protocol.Reference; seed = None; preds = None; budget }
  in
  let expected =
    Format.asprintf "%a" Database.pp
      (Choice_fixpoint.model (Parser.parse_program (source "prim.dl")))
  in
  List.iter
    (fun max_jobs ->
      with_server ~max_jobs (fun path ->
          with_conn path (fun c ->
              let _ = expect_loaded (Client.rpc c (Protocol.Load (source "prim.dl"))) in
              let complete, text, _ = expect_model (Client.rpc c req) in
              Alcotest.(check bool) "complete" true complete;
              Alcotest.(check string)
                (Printf.sprintf "model at max_jobs=%d" max_jobs)
                expected text)))
    [ 1; 4 ]

(* ---------------- pipelining (protocol v2) ---------------- *)

let with_pipeline path f =
  let r = Client.resilient (Client.Uds path) in
  let p = Client.Pipeline.create r in
  Fun.protect ~finally:(fun () -> Client.Pipeline.close p) (fun () -> f p)

(* Many requests on the wire at once, replies matched by envelope id:
   the served models must still be byte-identical to single-shot
   evaluation. *)
let test_pipeline_byte_identity () =
  with_server ~workers:2 (fun path ->
      with_pipeline path (fun p ->
          List.iter
            (fun name ->
              let rid_load = Client.Pipeline.submit p (Protocol.Load (source name)) in
              let rid_run = Client.Pipeline.submit p run_req in
              let replies = Client.Pipeline.drain p in
              Alcotest.(check bool) "negotiated v2" true (Client.Pipeline.v2 p);
              (match List.assoc rid_load replies with
              | Protocol.Loaded _ -> ()
              | _ -> Alcotest.fail (name ^ ": expected Loaded"));
              match List.assoc rid_run replies with
              | Protocol.Model { complete = true; text; _ } ->
                Alcotest.(check string) (name ^ " model") (local_model name) text
              | _ -> Alcotest.fail (name ^ ": expected a complete Model"))
            [ "example1.dl"; "prim.dl"; "huffman.dl" ]))

(* An enveloped Ping genuinely overtakes a long evaluation in flight on
   the same connection: out-of-order completion is real, not cosmetic. *)
let test_pipeline_out_of_order () =
  with_server ~workers:2 (fun path ->
      with_pipeline path (fun p ->
          let _ = Client.Pipeline.submit p (Protocol.Load (source "adversarial_nat.dl")) in
          ignore (Client.Pipeline.drain p);
          let budget = { Protocol.no_budget with Protocol.timeout_ms = Some 1000 } in
          let slow =
            Client.Pipeline.submit p
              (Protocol.Run { engine = Protocol.Staged; seed = None; preds = None; budget })
          in
          let ping = Client.Pipeline.submit p Protocol.Ping in
          let first_rid, first = Client.Pipeline.await p in
          Alcotest.(check int) "the ping's reply arrives first" ping first_rid;
          (match first with
          | Protocol.Pong -> ()
          | _ -> Alcotest.fail "expected Pong");
          match Client.Pipeline.drain p with
          | [ (rid, Protocol.Model _) ] ->
            Alcotest.(check int) "the slow run still completes" slow rid
          | _ -> Alcotest.fail "expected the run's Model frame"))

(* The pipelining telemetry surfaces in stats: in-flight depth, its
   p99, and the queue-wait histogram. *)
let test_pipeline_stats () =
  with_server ~workers:2 (fun path ->
      with_pipeline path (fun p ->
          let _ = Client.Pipeline.submit p (Protocol.Load (source "adversarial_nat.dl")) in
          ignore (Client.Pipeline.drain p);
          let budget = { Protocol.no_budget with Protocol.timeout_ms = Some 300 } in
          let _ =
            Client.Pipeline.submit p
              (Protocol.Run { engine = Protocol.Staged; seed = None; preds = None; budget })
          in
          let _ = Client.Pipeline.submit p Protocol.Ping in
          ignore (Client.Pipeline.drain p);
          let sid = Client.Pipeline.submit p Protocol.Stats in
          match List.assoc sid (Client.Pipeline.drain p) with
          | Protocol.Stats_json json ->
            Alcotest.(check bool) "inflight_max saw the pipeline" true
              (int_field json "inflight_max" >= 2);
            Alcotest.(check bool) "depth p99 present" true
              (int_field json "pipelined_depth_p99" >= 1);
            Alcotest.(check bool) "queue-wait samples recorded" true
              (int_field json "count" >= 1);
            Alcotest.(check bool) "queue-wait p99 sane" true (int_field json "p99_us" >= 0)
          | _ -> Alcotest.fail "expected Stats_json"))

(* Against a v1-only server — emulated here: it answers attach and
   ping but treats the hello tag as a protocol violation and hangs up —
   the pipeline falls back to bare framing on a fresh connection and
   keeps working, FIFO. *)
let test_pipeline_v1_fallback () =
  incr sock_counter;
  let path = Printf.sprintf "gbcd_v1_%d_%d.sock" (Unix.getpid ()) !sock_counter in
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 8;
  let stop = Atomic.make false in
  let serve_conn fd =
    let buf = Buffer.create 64 in
    let chunk = Bytes.create 4096 in
    let closed = ref false in
    while not !closed do
      match Protocol.extract_frame (Buffer.contents buf) 0 with
      | Protocol.Frame (body, next) ->
        let rest = Buffer.contents buf in
        Buffer.clear buf;
        Buffer.add_string buf (String.sub rest next (String.length rest - next));
        let reply =
          match Protocol.decode_request body with
          | Ok (Protocol.Attach _) -> Protocol.Attached { id = 1 }
          | Ok Protocol.Ping -> Protocol.Pong
          | Ok _ | Error _ ->
            (* an old server does not know hello or envelopes *)
            closed := true;
            Protocol.Error { code = Protocol.Protocol_violation; message = "unknown tag" }
        in
        let bytes = Protocol.encode_response reply in
        (try ignore (Unix.write_substring fd bytes 0 (String.length bytes))
         with Unix.Unix_error _ -> ());
        if !closed then (try Unix.close fd with Unix.Unix_error _ -> ())
      | _ -> (
        match Unix.read fd chunk 0 4096 with
        | 0 ->
          closed := true;
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | n -> Buffer.add_subbytes buf chunk 0 n
        | exception Unix.Unix_error _ ->
          closed := true;
          (try Unix.close fd with Unix.Unix_error _ -> ()))
    done
  in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.accept lfd with
          | exception Unix.Unix_error _ -> Atomic.set stop true
          | fd, _ -> serve_conn fd
        done)
      ()
  in
  let r = Client.resilient ~retries:2 (Client.Uds path) in
  let p = Client.Pipeline.create r in
  let rid = Client.Pipeline.submit p Protocol.Ping in
  let rid', resp = Client.Pipeline.await p in
  Alcotest.(check int) "bare reply matched FIFO to its id" rid rid';
  (match resp with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected Pong");
  Alcotest.(check bool) "fell back to v1 framing" false (Client.Pipeline.v2 p);
  Client.Pipeline.close p;
  Atomic.set stop true;
  (* a throwaway connection unblocks the accept loop *)
  (let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
   (try Unix.connect fd (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
   try Unix.close fd with Unix.Unix_error _ -> ());
  Thread.join th;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()

(* ---------------- shutdown ---------------- *)

let test_shutdown_drains () =
  incr sock_counter;
  let path = Printf.sprintf "gbcd_test_%d_%d.sock" (Unix.getpid ()) !sock_counter in
  let cfg = { Server.default_config with port = None; unix_path = Some path; workers = 2 } in
  (match Server.create cfg with
   | Error msg -> Alcotest.fail msg
   | Ok srv ->
     let runner = Domain.spawn (fun () -> Server.run srv) in
     let c = connect path in
     (match Client.rpc c Protocol.Shutdown with
      | Protocol.Bye -> ()
      | _ -> Alcotest.fail "expected Bye");
     Client.close c;
     (* run returns once drained; joining must not hang *)
     Domain.join runner);
  try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()

(* ---------------- the acceptance load test ---------------- *)

(* 8 concurrent sessions each replay all 13 exemplars against a
   4-worker pool; every served model must be byte-identical to the
   single-shot staged run. *)
let test_concurrent_sessions () =
  let expected = List.map (fun name -> (name, local_model name)) exemplars in
  with_server ~workers:4 (fun path ->
      let failures = Atomic.make 0 in
      let session i =
        with_conn path (fun c ->
            (* stagger the replay so sessions interleave differently *)
            let progs =
              let rec rot n = function
                | [] -> []
                | x :: tl when n > 0 -> rot (n - 1) tl @ [ x ]
                | l -> l
              in
              rot (i mod List.length expected) expected
            in
            List.iter
              (fun (name, want) ->
                let _ = expect_loaded (Client.rpc c (Protocol.Load (source name))) in
                match Client.rpc c run_req with
                | Protocol.Model { complete = true; text; _ } when text = want -> ()
                | Protocol.Model { complete; text; _ } ->
                  Printf.eprintf "session %d %s: complete=%b, %d vs %d bytes\n%!" i name
                    complete (String.length text) (String.length want);
                  Atomic.incr failures
                | _ -> Atomic.incr failures)
              progs)
      in
      let threads = List.init 8 (fun i -> Thread.create session i) in
      List.iter Thread.join threads;
      Alcotest.(check int) "every session saw every exact model" 0 (Atomic.get failures))

let () =
  Alcotest.run "server"
    [ ( "basics",
        [ Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "run matches single-shot" `Quick test_run_matches_single_shot;
          Alcotest.test_case "program cache hit" `Quick test_cache_hit;
          Alcotest.test_case "run without load" `Quick test_run_without_load ] );
      ( "sessions",
        [ Alcotest.test_case "copy-on-write isolation" `Quick test_session_isolation;
          Alcotest.test_case "retract" `Quick test_retract;
          Alcotest.test_case "attach and reclaim" `Quick test_attach_reclaim;
          Alcotest.test_case "exactly-once replay" `Quick test_exactly_once_replay ] );
      ( "supervision",
        [ Alcotest.test_case "worker dies, pool respawns" `Quick test_worker_supervision;
          Alcotest.test_case "mid-frame disconnects leak nothing" `Quick
            test_midframe_disconnect;
          Alcotest.test_case "idle sessions reaped" `Quick test_idle_reap ] );
      ( "governance",
        [ Alcotest.test_case "client budget partial keeps connection" `Quick
            test_budget_partial_keeps_connection;
          Alcotest.test_case "server-side cap" `Quick test_server_side_cap ] );
      ( "robustness",
        [ Alcotest.test_case "malformed frame gets a structured error" `Quick
            test_malformed_frame_gets_error;
          Alcotest.test_case "query and enumerate" `Quick test_query_and_enumerate;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "cache counters in stats" `Quick test_cache_counters_in_stats;
          Alcotest.test_case "jobs request serves identical model" `Quick
            test_jobs_request_same_model ] );
      ( "pipelining",
        [ Alcotest.test_case "pipelined models byte-identical" `Quick
            test_pipeline_byte_identity;
          Alcotest.test_case "enveloped ping overtakes a running eval" `Quick
            test_pipeline_out_of_order;
          Alcotest.test_case "depth and queue-wait in stats" `Quick test_pipeline_stats;
          Alcotest.test_case "v1 fallback keeps working" `Quick test_pipeline_v1_fallback ] );
      ( "lifecycle",
        [ Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains;
          Alcotest.test_case "8 sessions x 13 exemplars x 4 workers" `Slow
            test_concurrent_sessions ] ) ]
