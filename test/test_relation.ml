(* Relation storage, indexes, and the database. *)

open Gbc

let row xs = Array.of_list (List.map (fun i -> Value.Int i) xs)

let test_add_dedup () =
  let r = Relation.create "p" 2 in
  Alcotest.(check bool) "first insert" true (Relation.add r (row [ 1; 2 ]));
  Alcotest.(check bool) "duplicate" false (Relation.add r (row [ 1; 2 ]));
  Alcotest.(check bool) "other row" true (Relation.add r (row [ 2; 1 ]));
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r);
  Alcotest.(check bool) "mem" true (Relation.mem r (row [ 1; 2 ]));
  Alcotest.(check bool) "not mem" false (Relation.mem r (row [ 3; 3 ]))

let test_arity_check () =
  let r = Relation.create "p" 2 in
  Alcotest.(check bool) "raises on arity mismatch" true
    (try
       ignore (Relation.add r (row [ 1 ]));
       false
     with Invalid_argument _ -> true)

let test_insertion_order () =
  let r = Relation.create "p" 1 in
  List.iter (fun i -> ignore (Relation.add r (row [ i ]))) [ 5; 3; 9; 1 ];
  let order = List.map (fun a -> Value.as_int a.(0)) (Relation.to_list r) in
  Alcotest.(check (list int)) "insertion order preserved" [ 5; 3; 9; 1 ] order

let test_iter_from () =
  let r = Relation.create "p" 1 in
  List.iter (fun i -> ignore (Relation.add r (row [ i ]))) [ 1; 2; 3; 4 ];
  let acc = ref [] in
  Relation.iter_from r 2 (fun a -> acc := Value.as_int a.(0) :: !acc);
  Alcotest.(check (list int)) "delta window" [ 4; 3 ] !acc

let test_index_lookup () =
  let r = Relation.create "g" 3 in
  for i = 0 to 99 do
    ignore (Relation.add r (row [ i mod 10; i; i * 2 ]))
  done;
  let hits = ref 0 in
  Relation.iter_matching r [| Some (Value.Int 3); None; None |] (fun _ -> incr hits);
  Alcotest.(check int) "matches via index" 10 !hits;
  (* Rows inserted after the index was built must be visible. *)
  ignore (Relation.add r (row [ 3; 1000; 2000 ]));
  hits := 0;
  Relation.iter_matching r [| Some (Value.Int 3); None; None |] (fun _ -> incr hits);
  Alcotest.(check int) "index maintained on insert" 11 !hits

let test_index_multi_column () =
  let r = Relation.create "g" 3 in
  for i = 0 to 49 do
    ignore (Relation.add r (row [ i mod 5; i mod 7; i ]))
  done;
  let hits = ref [] in
  Relation.iter_matching r
    [| Some (Value.Int 2); Some (Value.Int 3); None |]
    (fun a -> hits := Value.as_int a.(2) :: !hits);
  let expected =
    List.filter (fun i -> i mod 5 = 2 && i mod 7 = 3) (List.init 50 Fun.id)
  in
  Alcotest.(check (list int)) "two-column index" expected (List.rev !hits)

let test_full_scan_pattern () =
  let r = Relation.create "p" 2 in
  for i = 0 to 9 do
    ignore (Relation.add r (row [ i; i ]))
  done;
  let hits = ref 0 in
  Relation.iter_matching r [| None; None |] (fun _ -> incr hits);
  Alcotest.(check int) "unbound pattern scans all" 10 !hits

let test_copy_isolation () =
  let r = Relation.create "p" 1 in
  ignore (Relation.add r (row [ 1 ]));
  let r' = Relation.copy r in
  ignore (Relation.add r (row [ 2 ]));
  ignore (Relation.add r' (row [ 3 ]));
  Alcotest.(check int) "original" 2 (Relation.cardinal r);
  Alcotest.(check int) "copy" 2 (Relation.cardinal r');
  Alcotest.(check bool) "copy lacks original's new row" false (Relation.mem r' (row [ 2 ]))

let test_database_basics () =
  let db = Database.create () in
  Alcotest.(check bool) "add" true (Database.add_fact db "p" (row [ 1; 2 ]));
  Alcotest.(check bool) "dup" false (Database.add_fact db "p" (row [ 1; 2 ]));
  Alcotest.(check bool) "mem" true (Database.mem_fact db "p" (row [ 1; 2 ]));
  Alcotest.(check bool) "absent pred" false (Database.mem_fact db "q" (row [ 1 ]));
  Alcotest.(check int) "cardinal" 1 (Database.cardinal db);
  Alcotest.(check bool) "arity clash raises" true
    (try
       ignore (Database.relation db "p" 3);
       false
     with Invalid_argument _ -> true)

let test_database_copy_and_equal () =
  let db = Database.create () in
  ignore (Database.add_fact db "p" (row [ 1 ]));
  ignore (Database.add_fact db "q" (row [ 2; 3 ]));
  let db' = Database.copy db in
  Alcotest.(check bool) "equal after copy" true (Database.equal_on db db' [ "p"; "q" ]);
  ignore (Database.add_fact db' "p" (row [ 9 ]));
  Alcotest.(check bool) "diverges" false (Database.equal_on db db' [ "p" ]);
  Alcotest.(check bool) "other pred still equal" true (Database.equal_on db db' [ "q" ])

let test_load_facts_rejects_rules () =
  let db = Database.create () in
  let prog = Parser.parse_program "p(X) <- q(X)." in
  Alcotest.(check bool) "rejects non-fact" true
    (try
       Database.load_facts db prog;
       false
     with Invalid_argument _ -> true)

let test_pp_stable_output () =
  let db = Database.create () in
  ignore (Database.add_fact db "b" (row [ 2 ]));
  ignore (Database.add_fact db "a" (row [ 9 ]));
  ignore (Database.add_fact db "b" (row [ 1 ]));
  Alcotest.(check string) "sorted rendering" "a(9).\nb(1).\nb(2).\n"
    (Format.asprintf "%a" Database.pp db)

(* ---------------- flat vs boxed equivalence ---------------- *)

let with_threshold t f =
  let saved = Relation.flat_threshold () in
  Relation.set_flat_threshold t;
  Fun.protect ~finally:(fun () -> Relation.set_flat_threshold saved) f

let ints_of_tuple a = Array.to_list (Array.map Value.as_int a)

(* One scripted interleaving of inserts, membership checks, index
   probes, iterations, and copy-on-write forks, replayed on a relation
   pinned boxed (threshold [None]) and one promoted at the first row
   (threshold [Some 1]).  Every observation, including iteration
   order, must be identical. *)
type op =
  | Insert of int * int
  | Insert_ints of int * int
  | Member of int * int
  | Probe of int * int  (** column, key *)
  | Iterate
  | Fork_diverge of int * int
      (** copy, then insert into the original: the copy must not see the
          row (exercises [privatize] on the shared store) *)

let apply_ops ~flat ops =
  with_threshold (if flat then Some 1 else None) (fun () ->
      let r = Relation.create "p" 2 in
      let obs = Buffer.create 256 in
      let log fmt = Printf.ksprintf (fun s -> Buffer.add_string obs (s ^ "\n")) fmt in
      List.iter
        (fun op ->
          match op with
          | Insert (a, b) -> log "ins %b" (Relation.add r (row [ a; b ]))
          | Insert_ints (a, b) -> log "insi %b" (Relation.add_ints r [| a; b |])
          | Member (a, b) -> log "mem %b" (Relation.mem r (row [ a; b ]))
          | Probe (col, key) ->
            let pat = [| None; None |] in
            pat.(col) <- Some (Value.Int key);
            Relation.iter_matching r pat (fun a -> log "hit %d %d" (Value.as_int a.(0)) (Value.as_int a.(1)));
            (* The id-based probe must visit the same rows in the same
               order, and [read] must decode the same cells. *)
            Relation.iter_matching_ids r pat (fun id ->
                log "hid %d %d"
                  (Value.as_int (Relation.read r id 0))
                  (Value.as_int (Relation.read r id 1)))
          | Iterate -> Relation.iter r (fun a -> log "row %d %d" (Value.as_int a.(0)) (Value.as_int a.(1)))
          | Fork_diverge (a, b) ->
            let c = Relation.copy r in
            ignore (Relation.add r (row [ a; b ]));
            log "fork %d %d %b" (Relation.cardinal c) (Relation.cardinal r)
              (Relation.mem c (row [ a; b ])))
        ops;
      (Buffer.contents obs, List.map ints_of_tuple (Relation.to_list r), Relation.is_flat r))

let gen_op =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun a b -> Insert (a, b)) (int_bound 6) (int_bound 6));
        (3, map2 (fun a b -> Insert_ints (a, b)) (int_bound 6) (int_bound 6));
        (2, map2 (fun a b -> Member (a, b)) (int_bound 6) (int_bound 6));
        (2, map2 (fun c k -> Probe (c, k)) (int_bound 1) (int_bound 6));
        (1, return Iterate);
        (1, map2 (fun a b -> Fork_diverge (a + 10, b)) (int_bound 6) (int_bound 6)) ])

let arb_ops = QCheck.make ~print:(fun l -> string_of_int (List.length l)) QCheck.Gen.(list_size (int_bound 40) gen_op)

let prop_flat_boxed_equivalent =
  QCheck.Test.make ~name:"flat and boxed relations are observationally equal" ~count:300
    arb_ops
    (fun ops ->
      let obs_b, rows_b, flat_b = apply_ops ~flat:false ops in
      let obs_f, rows_f, flat_f = apply_ops ~flat:true ops in
      obs_b = obs_f && rows_b = rows_f && (not flat_b)
      && (flat_f || List.length rows_f = 0))

let prop_promote_demote_roundtrip =
  QCheck.Test.make ~name:"promote/demote round-trips preserve rows and order" ~count:200
    QCheck.(small_list (pair (int_bound 8) (int_bound 8)))
    (fun rows ->
      with_threshold (Some 1024) (fun () ->
          let r = Relation.create "p" 2 in
          List.iter (fun (a, b) -> ignore (Relation.add r (row [ a; b ]))) rows;
          let before = List.map ints_of_tuple (Relation.to_list r) in
          let promoted = Relation.promote r in
          let after_p = List.map ints_of_tuple (Relation.to_list r) in
          Relation.demote r;
          let after_d = List.map ints_of_tuple (Relation.to_list r) in
          ignore (Relation.promote r);
          let again = List.map ints_of_tuple (Relation.to_list r) in
          (promoted || rows = [])
          && before = after_p && before = after_d && before = again))

let test_mixed_rows_demote () =
  with_threshold (Some 1) (fun () ->
      let r = Relation.create "p" 2 in
      ignore (Relation.add_ints r [| 1; 2 |]);
      Alcotest.(check bool) "flat after int row" true (Relation.is_flat r);
      ignore (Relation.add r [| Value.str "s"; Value.Int 3 |]);
      Alcotest.(check bool) "demoted by non-encodable row" false (Relation.is_flat r);
      Alcotest.(check int) "both rows kept" 2 (Relation.cardinal r);
      Alcotest.(check bool) "int row survives" true (Relation.mem r (row [ 1; 2 ]));
      Alcotest.(check bool) "promote refuses mixed" false (Relation.promote r))

(* ---------------- snapshot codec ---------------- *)

let db_of_source src =
  let db = Database.create () in
  Database.load_facts db (Parser.parse_program src);
  db

let pp_db db = Format.asprintf "%a" Database.pp db

(* A version 1 stream (the format every release up to the previous one
   wrote) must still restore byte-identically. *)
let test_snapshot_v1_compat () =
  let db = db_of_source "edge(a, b, 3). edge(b, c, 1). label(a, \"x y\"). n(42). n(-7)." in
  let buf = Buffer.create 256 in
  Db_snapshot.write_v1 buf db;
  let db', _ = Db_snapshot.read (Buffer.contents buf) 0 in
  Alcotest.(check string) "v1 restores byte-identically" (pp_db db) (pp_db db')

let test_snapshot_v2_flat_roundtrip () =
  with_threshold (Some 1024) (fun () ->
      let db = db_of_source "mixed(a, 1). mixed(b, 2)." in
      let rel = Database.relation db "big" 3 in
      for i = 0 to 2_000 do
        ignore (Relation.add_ints rel [| i; i * 2; -i |])
      done;
      Alcotest.(check bool) "source is flat" true (Relation.is_flat rel);
      let buf = Buffer.create 256 in
      Db_snapshot.write buf db;
      let db', _ = Db_snapshot.read (Buffer.contents buf) 0 in
      Alcotest.(check string) "v2 restores byte-identically" (pp_db db) (pp_db db');
      Alcotest.(check bool) "restored as flat without re-encoding" true
        (Relation.is_flat (Database.relation db' "big" 3));
      (* The same data through the legacy writer must decode too. *)
      let buf1 = Buffer.create 256 in
      Db_snapshot.write_v1 buf1 db;
      let db1, _ = Db_snapshot.read (Buffer.contents buf1) 0 in
      Alcotest.(check string) "v1 of the same db agrees" (pp_db db) (pp_db db1))

let test_snapshot_rejects_future_version () =
  let buf = Buffer.create 8 in
  Buffer.add_int32_be buf 0x47424332l;
  Buffer.add_uint8 buf 99;
  Alcotest.(check bool) "future version raises Corrupt" true
    (try
       ignore (Db_snapshot.read (Buffer.contents buf) 0);
       false
     with Db_snapshot.Corrupt _ -> true)

let prop_index_agrees_with_scan =
  QCheck.Test.make ~name:"indexed lookup = filtered scan" ~count:200
    QCheck.(pair (small_list (pair (int_bound 5) (int_bound 5))) (pair (int_bound 5) (int_bound 1)))
    (fun (rows, (key, col)) ->
      let r = Relation.create "p" 2 in
      List.iter (fun (a, b) -> ignore (Relation.add r (row [ a; b ]))) rows;
      let pattern = [| None; None |] in
      pattern.(col) <- Some (Value.Int key);
      let indexed = ref [] in
      Relation.iter_matching r pattern (fun a -> indexed := Array.to_list a :: !indexed);
      let scanned = ref [] in
      Relation.iter r (fun a ->
          if Value.equal a.(col) (Value.Int key) then scanned := Array.to_list a :: !scanned);
      List.sort compare !indexed = List.sort compare !scanned)

let () =
  Alcotest.run "relation"
    [ ( "relation",
        [ Alcotest.test_case "add/mem/dedup" `Quick test_add_dedup;
          Alcotest.test_case "arity check" `Quick test_arity_check;
          Alcotest.test_case "insertion order" `Quick test_insertion_order;
          Alcotest.test_case "iter_from (delta windows)" `Quick test_iter_from;
          Alcotest.test_case "index lookup" `Quick test_index_lookup;
          Alcotest.test_case "multi-column index" `Quick test_index_multi_column;
          Alcotest.test_case "full scan" `Quick test_full_scan_pattern;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolation ] );
      ( "database",
        [ Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "copy and equal_on" `Quick test_database_copy_and_equal;
          Alcotest.test_case "load_facts validation" `Quick test_load_facts_rejects_rules;
          Alcotest.test_case "stable pp" `Quick test_pp_stable_output ] );
      ( "flat",
        [ Alcotest.test_case "mixed rows demote" `Quick test_mixed_rows_demote;
          QCheck_alcotest.to_alcotest prop_flat_boxed_equivalent;
          QCheck_alcotest.to_alcotest prop_promote_demote_roundtrip ] );
      ( "snapshot",
        [ Alcotest.test_case "v1 back-compat" `Quick test_snapshot_v1_compat;
          Alcotest.test_case "v2 flat round-trip" `Quick test_snapshot_v2_flat_roundtrip;
          Alcotest.test_case "future version rejected" `Quick
            test_snapshot_rejects_future_version ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_index_agrees_with_scan ]) ]
