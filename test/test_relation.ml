(* Relation storage, indexes, and the database. *)

open Gbc

let row xs = Array.of_list (List.map (fun i -> Value.Int i) xs)

let test_add_dedup () =
  let r = Relation.create "p" 2 in
  Alcotest.(check bool) "first insert" true (Relation.add r (row [ 1; 2 ]));
  Alcotest.(check bool) "duplicate" false (Relation.add r (row [ 1; 2 ]));
  Alcotest.(check bool) "other row" true (Relation.add r (row [ 2; 1 ]));
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r);
  Alcotest.(check bool) "mem" true (Relation.mem r (row [ 1; 2 ]));
  Alcotest.(check bool) "not mem" false (Relation.mem r (row [ 3; 3 ]))

let test_arity_check () =
  let r = Relation.create "p" 2 in
  Alcotest.(check bool) "raises on arity mismatch" true
    (try
       ignore (Relation.add r (row [ 1 ]));
       false
     with Invalid_argument _ -> true)

let test_insertion_order () =
  let r = Relation.create "p" 1 in
  List.iter (fun i -> ignore (Relation.add r (row [ i ]))) [ 5; 3; 9; 1 ];
  let order = List.map (fun a -> Value.as_int a.(0)) (Relation.to_list r) in
  Alcotest.(check (list int)) "insertion order preserved" [ 5; 3; 9; 1 ] order

let test_iter_from () =
  let r = Relation.create "p" 1 in
  List.iter (fun i -> ignore (Relation.add r (row [ i ]))) [ 1; 2; 3; 4 ];
  let acc = ref [] in
  Relation.iter_from r 2 (fun a -> acc := Value.as_int a.(0) :: !acc);
  Alcotest.(check (list int)) "delta window" [ 4; 3 ] !acc

let test_index_lookup () =
  let r = Relation.create "g" 3 in
  for i = 0 to 99 do
    ignore (Relation.add r (row [ i mod 10; i; i * 2 ]))
  done;
  let hits = ref 0 in
  Relation.iter_matching r [| Some (Value.Int 3); None; None |] (fun _ -> incr hits);
  Alcotest.(check int) "matches via index" 10 !hits;
  (* Rows inserted after the index was built must be visible. *)
  ignore (Relation.add r (row [ 3; 1000; 2000 ]));
  hits := 0;
  Relation.iter_matching r [| Some (Value.Int 3); None; None |] (fun _ -> incr hits);
  Alcotest.(check int) "index maintained on insert" 11 !hits

let test_index_multi_column () =
  let r = Relation.create "g" 3 in
  for i = 0 to 49 do
    ignore (Relation.add r (row [ i mod 5; i mod 7; i ]))
  done;
  let hits = ref [] in
  Relation.iter_matching r
    [| Some (Value.Int 2); Some (Value.Int 3); None |]
    (fun a -> hits := Value.as_int a.(2) :: !hits);
  let expected =
    List.filter (fun i -> i mod 5 = 2 && i mod 7 = 3) (List.init 50 Fun.id)
  in
  Alcotest.(check (list int)) "two-column index" expected (List.rev !hits)

let test_full_scan_pattern () =
  let r = Relation.create "p" 2 in
  for i = 0 to 9 do
    ignore (Relation.add r (row [ i; i ]))
  done;
  let hits = ref 0 in
  Relation.iter_matching r [| None; None |] (fun _ -> incr hits);
  Alcotest.(check int) "unbound pattern scans all" 10 !hits

let test_copy_isolation () =
  let r = Relation.create "p" 1 in
  ignore (Relation.add r (row [ 1 ]));
  let r' = Relation.copy r in
  ignore (Relation.add r (row [ 2 ]));
  ignore (Relation.add r' (row [ 3 ]));
  Alcotest.(check int) "original" 2 (Relation.cardinal r);
  Alcotest.(check int) "copy" 2 (Relation.cardinal r');
  Alcotest.(check bool) "copy lacks original's new row" false (Relation.mem r' (row [ 2 ]))

let test_database_basics () =
  let db = Database.create () in
  Alcotest.(check bool) "add" true (Database.add_fact db "p" (row [ 1; 2 ]));
  Alcotest.(check bool) "dup" false (Database.add_fact db "p" (row [ 1; 2 ]));
  Alcotest.(check bool) "mem" true (Database.mem_fact db "p" (row [ 1; 2 ]));
  Alcotest.(check bool) "absent pred" false (Database.mem_fact db "q" (row [ 1 ]));
  Alcotest.(check int) "cardinal" 1 (Database.cardinal db);
  Alcotest.(check bool) "arity clash raises" true
    (try
       ignore (Database.relation db "p" 3);
       false
     with Invalid_argument _ -> true)

let test_database_copy_and_equal () =
  let db = Database.create () in
  ignore (Database.add_fact db "p" (row [ 1 ]));
  ignore (Database.add_fact db "q" (row [ 2; 3 ]));
  let db' = Database.copy db in
  Alcotest.(check bool) "equal after copy" true (Database.equal_on db db' [ "p"; "q" ]);
  ignore (Database.add_fact db' "p" (row [ 9 ]));
  Alcotest.(check bool) "diverges" false (Database.equal_on db db' [ "p" ]);
  Alcotest.(check bool) "other pred still equal" true (Database.equal_on db db' [ "q" ])

let test_load_facts_rejects_rules () =
  let db = Database.create () in
  let prog = Parser.parse_program "p(X) <- q(X)." in
  Alcotest.(check bool) "rejects non-fact" true
    (try
       Database.load_facts db prog;
       false
     with Invalid_argument _ -> true)

let test_pp_stable_output () =
  let db = Database.create () in
  ignore (Database.add_fact db "b" (row [ 2 ]));
  ignore (Database.add_fact db "a" (row [ 9 ]));
  ignore (Database.add_fact db "b" (row [ 1 ]));
  Alcotest.(check string) "sorted rendering" "a(9).\nb(1).\nb(2).\n"
    (Format.asprintf "%a" Database.pp db)

let prop_index_agrees_with_scan =
  QCheck.Test.make ~name:"indexed lookup = filtered scan" ~count:200
    QCheck.(pair (small_list (pair (int_bound 5) (int_bound 5))) (pair (int_bound 5) (int_bound 1)))
    (fun (rows, (key, col)) ->
      let r = Relation.create "p" 2 in
      List.iter (fun (a, b) -> ignore (Relation.add r (row [ a; b ]))) rows;
      let pattern = [| None; None |] in
      pattern.(col) <- Some (Value.Int key);
      let indexed = ref [] in
      Relation.iter_matching r pattern (fun a -> indexed := Array.to_list a :: !indexed);
      let scanned = ref [] in
      Relation.iter r (fun a ->
          if Value.equal a.(col) (Value.Int key) then scanned := Array.to_list a :: !scanned);
      List.sort compare !indexed = List.sort compare !scanned)

let () =
  Alcotest.run "relation"
    [ ( "relation",
        [ Alcotest.test_case "add/mem/dedup" `Quick test_add_dedup;
          Alcotest.test_case "arity check" `Quick test_arity_check;
          Alcotest.test_case "insertion order" `Quick test_insertion_order;
          Alcotest.test_case "iter_from (delta windows)" `Quick test_iter_from;
          Alcotest.test_case "index lookup" `Quick test_index_lookup;
          Alcotest.test_case "multi-column index" `Quick test_index_multi_column;
          Alcotest.test_case "full scan" `Quick test_full_scan_pattern;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolation ] );
      ( "database",
        [ Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "copy and equal_on" `Quick test_database_copy_and_equal;
          Alcotest.test_case "load_facts validation" `Quick test_load_facts_rejects_rules;
          Alcotest.test_case "stable pp" `Quick test_pp_stable_output ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_index_agrees_with_scan ]) ]
