(* Edge cases and failure modes of the engines and the language. *)

open Gbc

let model src = Choice_fixpoint.model (Parser.parse_program src)

let facts db pred =
  Database.facts_of db pred
  |> List.map (fun row -> List.map Value.to_string (Array.to_list row))
  |> List.sort compare

let test_empty_program () =
  let db = Choice_fixpoint.model [] in
  Alcotest.(check int) "empty model" 0 (Database.cardinal db);
  let db = Stage_engine.model [] in
  Alcotest.(check int) "empty staged model" 0 (Database.cardinal db)

let test_facts_only () =
  let db = model "p(1). p(2). q(a, b)." in
  Alcotest.(check int) "three facts" 3 (Database.cardinal db)

let test_duplicate_facts_set_semantics () =
  let db = model "p(1). p(1). p(1)." in
  Alcotest.(check int) "one fact" 1 (Database.cardinal db)

let test_zero_arity_predicates () =
  let db = model "raining. wet <- raining. dry <- sunny." in
  Alcotest.(check int) "wet derived" 1 (List.length (facts db "wet"));
  Alcotest.(check int) "dry not derived" 0 (List.length (facts db "dry"))

let test_negative_constants_via_arithmetic () =
  let db = model "p(0 - 5). q(X) <- p(X), X < 0." in
  Alcotest.(check (list (list string))) "negative fact" [ [ "-5" ] ] (facts db "q")

let test_rule_with_empty_relation_body () =
  let db = model "p(X) <- nothing(X)." in
  Alcotest.(check int) "no facts" 0 (List.length (facts db "p"))

let test_long_chain_recursion () =
  let buf = Buffer.create 4096 in
  for i = 0 to 999 do
    Buffer.add_string buf (Printf.sprintf "e(%d, %d). " i (i + 1))
  done;
  Buffer.add_string buf "r(0). r(Y) <- r(X), e(X, Y).";
  let db = model (Buffer.contents buf) in
  Alcotest.(check int) "reaches the end" 1001 (List.length (facts db "r"))

let test_long_sorting_chain_staged () =
  (* 1000 gamma steps through the staged engine. *)
  let items = List.init 1000 (fun i -> (Printf.sprintf "x%d" i, (i * 7919) mod 104729)) in
  let out = Sorting.run Runner.Staged items in
  Alcotest.(check bool) "sorted" true (Sorting.is_sorted_permutation ~input:items out)

let test_unsupported_errors_are_informative () =
  let check_msg src fragment =
    match Choice_fixpoint.model (Parser.parse_program src) with
    | _ -> Alcotest.fail ("expected Unsupported for: " ^ src)
    | exception Choice_fixpoint.Unsupported msg ->
      let contains hay needle =
        let n = String.length needle in
        let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S mentions %S" msg fragment) true
        (contains msg fragment)
  in
  check_msg "m(a, b). win(X) <- m(X, Y), not win(Y)." "win";
  check_msg "p(X, C) <- e(X, C). p(X, C) <- p(X, C1), least(C1, X), C = C1 + 1. e(a, 1)."
    "extremum"

let test_stage_engine_not_compilable () =
  let src = "p(nil, 0). p(X, I) <- next(I), e(X, C, D), least(C, I), most(D, I). e(a, 1, 2)." in
  Alcotest.(check bool) "two extrema rejected" true
    (try
       ignore (Stage_engine.model (Parser.parse_program src));
       false
     with Stage_engine.Not_compilable _ -> true);
  (* The reference engine handles the same program. *)
  let db = Choice_fixpoint.model (Parser.parse_program src) in
  Alcotest.(check int) "reference runs it" 1 (List.length (facts db "p") - 1)

let test_stage_engine_on_choice_only_program () =
  let prog = Assignment.program Assignment.example1_source in
  let db = Stage_engine.model prog in
  Alcotest.(check bool) "a stable model" true (Stable.is_stable prog db);
  Alcotest.(check int) "two assignments" 2 (List.length (facts db "a_st"))

let test_enumerate_cap () =
  let prog = Parser.parse_program "e(1). e(2). e(3). e(4). p(X) <- e(X), choice((), X)." in
  Alcotest.(check int) "capped" 2 (List.length (Choice_fixpoint.enumerate ~max_models:2 prog));
  Alcotest.(check int) "uncapped" 4 (List.length (Choice_fixpoint.enumerate prog))

let test_preloaded_edb () =
  let db = Database.create () in
  ignore (Database.add_fact db "e" [| Value.Int 1; Value.Int 2 |]);
  ignore (Database.add_fact db "e" [| Value.Int 2; Value.Int 3 |]);
  let out, _ = Choice_fixpoint.run ~db (Parser.parse_program "tc(X,Y) <- e(X,Y). tc(X,Y) <- tc(X,Z), e(Z,Y).") in
  Alcotest.(check int) "tc over preloaded edb" 3 (List.length (facts out "tc"))

let test_rewrite_identity_on_flat_programs () =
  let prog = Parser.parse_program "p(X) <- e(X), not q(X). q(X) <- f(X)." in
  Alcotest.(check int) "no new rules" (List.length prog)
    (List.length (Rewrite.expand_all prog))

let test_stage_value_must_be_integer () =
  let src = "p(nil, a). p(X, I) <- next(I), e(X). e(1)." in
  Alcotest.(check bool) "non-integer stage rejected" true
    (try
       ignore (Choice_fixpoint.model (Parser.parse_program src));
       false
     with Choice_fixpoint.Unsupported _ -> true)

let test_huffman_single_letter () =
  let r = Huffman.run Runner.Staged [ ("only", 7) ] in
  Alcotest.(check int) "no merges" 0 r.Huffman.merges;
  Alcotest.(check int) "zero cost" 0 r.Huffman.internal_cost;
  Alcotest.(check (list (pair string string))) "degenerate code"
    [ ("only", "0") ]
    (Huffman.codes r.Huffman.root)

let test_prim_single_node () =
  let g = { Graph_gen.nodes = 1; edges = [] } in
  let r = Prim.run Runner.Staged g in
  Alcotest.(check int) "no edges" 0 (List.length r.Prim.edges);
  Alcotest.(check bool) "trivially spanning" true (Prim.is_spanning_tree g r)

let test_disconnected_graph_partial_tree () =
  (* Two components: Prim from node 0 spans only its own component. *)
  let g = { Graph_gen.nodes = 4; edges = [ (0, 1, 1); (2, 3, 1) ] } in
  let r = Prim.run Runner.Staged g in
  Alcotest.(check int) "one edge reached" 1 (List.length r.Prim.edges);
  (* Kruskal, by contrast, spans every component (a spanning forest). *)
  let k = Kruskal.run Runner.Staged g in
  Alcotest.(check int) "forest has both edges" 2 (List.length k.Kruskal.edges)

let test_comparisons_across_types () =
  (* The total order on values makes heterogeneous comparisons legal
     and deterministic: Int < Sym. *)
  let db = model "p(1). p(a). small(X) <- p(X), X < a." in
  Alcotest.(check (list (list string))) "ints below syms" [ [ "1" ] ] (facts db "small")

let test_choice_on_constant_groups () =
  (* choice((), ()) is degenerate: no FD at all; the rule fires for
     every tuple (one gamma step each). *)
  let db = model "e(1). e(2). p(X) <- e(X), choice(X, ())." in
  Alcotest.(check int) "everything selected" 2 (List.length (facts db "p"))

let test_database_isolation_between_runs () =
  let prog = Assignment.program Assignment.example1_source in
  let a = Choice_fixpoint.model prog in
  let b = Choice_fixpoint.model prog in
  Alcotest.(check bool) "fresh databases" true (Database.equal_on a b [ "a_st" ])

let () =
  Alcotest.run "edge_cases"
    [ ( "degenerate programs",
        [ Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "facts only" `Quick test_facts_only;
          Alcotest.test_case "duplicate facts" `Quick test_duplicate_facts_set_semantics;
          Alcotest.test_case "zero-arity predicates" `Quick test_zero_arity_predicates;
          Alcotest.test_case "negative constants" `Quick test_negative_constants_via_arithmetic;
          Alcotest.test_case "empty body relation" `Quick test_rule_with_empty_relation_body ] );
      ( "scale",
        [ Alcotest.test_case "1000-step recursion" `Quick test_long_chain_recursion;
          Alcotest.test_case "1000 gamma steps staged" `Quick test_long_sorting_chain_staged ] );
      ( "errors",
        [ Alcotest.test_case "informative Unsupported" `Quick
            test_unsupported_errors_are_informative;
          Alcotest.test_case "Not_compilable fallback" `Quick test_stage_engine_not_compilable;
          Alcotest.test_case "non-integer stage" `Quick test_stage_value_must_be_integer ] );
      ( "behaviour",
        [ Alcotest.test_case "staged on choice-only programs" `Quick
            test_stage_engine_on_choice_only_program;
          Alcotest.test_case "enumerate cap" `Quick test_enumerate_cap;
          Alcotest.test_case "preloaded EDB" `Quick test_preloaded_edb;
          Alcotest.test_case "rewrite identity on flat" `Quick
            test_rewrite_identity_on_flat_programs;
          Alcotest.test_case "huffman single letter" `Quick test_huffman_single_letter;
          Alcotest.test_case "prim single node" `Quick test_prim_single_node;
          Alcotest.test_case "disconnected graphs" `Quick test_disconnected_graph_partial_tree;
          Alcotest.test_case "heterogeneous comparisons" `Quick test_comparisons_across_types;
          Alcotest.test_case "degenerate choice groups" `Quick test_choice_on_constant_groups;
          Alcotest.test_case "run isolation" `Quick test_database_isolation_between_runs ] ) ]
