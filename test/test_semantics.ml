(* Engine semantics: naive/semi-naive evaluation, the Choice Fixpoint
   (Lemmas 1-2), Theorem 1 (stability of produced models), and the
   agreement between the reference and the staged engine. *)

open Gbc

let model src = Choice_fixpoint.model (Parser.parse_program src)

let facts db pred =
  Database.facts_of db pred
  |> List.map (fun row -> List.map Value.to_string (Array.to_list row))
  |> List.sort compare

(* ---------------- stratified evaluation ---------------- *)

let test_transitive_closure () =
  let db = model "e(1,2). e(2,3). e(3,4). tc(X,Y) <- e(X,Y). tc(X,Y) <- tc(X,Z), e(Z,Y)." in
  Alcotest.(check int) "6 pairs" 6 (List.length (facts db "tc"))

let test_same_generation () =
  let db =
    model
      "par(r, a). par(a, b). par(a, c). par(b, d). par(b, e). par(c, f).\n\
       sg(X, X) <- par(_, X).\n\
       sg(X, Y) <- par(P, X), sg(P, Q), par(Q, Y)."
  in
  let sg = facts db "sg" in
  Alcotest.(check bool) "d ~ f" true (List.mem [ "d"; "f" ] sg);
  Alcotest.(check bool) "b ~ c" true (List.mem [ "b"; "c" ] sg);
  Alcotest.(check bool) "not b ~ d" false (List.mem [ "b"; "d" ] sg)

let test_stratified_negation () =
  let db =
    model
      "e(1,2). e(2,3). n(1). n(2). n(3).\n\
       reach(1).\n\
       reach(Y) <- reach(X), e(X, Y).\n\
       unreach(X) <- n(X), not reach(X)."
  in
  Alcotest.(check (list (list string))) "unreachable" [] (facts db "unreach");
  let db2 =
    model
      "e(1,2). n(1). n(2). n(3).\n\
       reach(1).\n\
       reach(Y) <- reach(X), e(X, Y).\n\
       unreach(X) <- n(X), not reach(X)."
  in
  Alcotest.(check (list (list string))) "node 3 unreachable" [ [ "3" ] ] (facts db2 "unreach")

let test_nonrecursive_extrema () =
  let db = model "p(a, 3). p(b, 1). p(c, 1). m(X, C) <- p(X, C), least(C)." in
  Alcotest.(check (list (list string))) "global min keeps ties"
    [ [ "b"; "1" ]; [ "c"; "1" ] ]
    (facts db "m");
  let db = model "p(a, 3). p(a, 1). p(b, 2). m(X, C) <- p(X, C), least(C, X)." in
  Alcotest.(check (list (list string))) "grouped min"
    [ [ "a"; "1" ]; [ "b"; "2" ] ]
    (facts db "m")

let test_most_extremum () =
  let db = model "p(a, 3). p(a, 1). m(X, C) <- p(X, C), most(C, X)." in
  Alcotest.(check (list (list string))) "grouped max" [ [ "a"; "3" ] ] (facts db "m")

let test_seminaive_equals_naive () =
  let src =
    "e(1,2). e(2,3). e(3,1). e(3,4). e(4,5).\n\
     tc(X,Y) <- e(X,Y).\n\
     tc(X,Y) <- tc(X,Z), tc(Z,Y)."
  in
  let prog = Parser.parse_program src in
  let db1 = Choice_fixpoint.model prog in
  let db2 = Database.create () in
  Gbc_datalog.Naive.saturate db2 prog;
  Alcotest.(check bool) "agree" true (Database.equal_on db1 db2 [ "tc" ])

let test_unstratified_rejected () =
  Alcotest.(check bool) "win/lose rejected" true
    (try
       ignore (model "m(a, b). win(X) <- m(X, Y), not win(Y).");
       false
     with Choice_fixpoint.Unsupported _ -> true)

(* ---------------- choice fixpoint ---------------- *)

let test_example1_models_exact () =
  let prog = Assignment.program Assignment.example1_source in
  let models = Choice_fixpoint.enumerate prog in
  let exts =
    List.sort compare
      (List.map (fun db -> facts db "a_st") models)
  in
  Alcotest.(check (list (list (list string)))) "M1 M2 M3"
    [ [ [ "andy"; "engl" ]; [ "ann"; "math" ] ];
      [ [ "andy"; "engl" ]; [ "mark"; "math" ] ];
      [ [ "ann"; "math" ]; [ "mark"; "engl" ] ] ]
    exts

let test_choice_fd_holds_in_every_model () =
  let prog =
    Assignment.random_takes ~seed:5 ~students:4 ~courses:4 ~enrollments:9
    @ Parser.parse_program Assignment.example1_source
  in
  let models = Choice_fixpoint.enumerate prog in
  Alcotest.(check bool) "at least one model" true (models <> []);
  List.iter
    (fun db ->
      let rows = Database.facts_of db "a_st" in
      let by i = List.map (fun r -> Value.to_string r.(i)) rows in
      let distinct l = List.length (List.sort_uniq compare l) = List.length l in
      Alcotest.(check bool) "St -> Crs" true (distinct (by 0));
      Alcotest.(check bool) "Crs -> St" true (distinct (by 1)))
    models

let test_choice_models_maximality () =
  (* Each model is a maximal FD-respecting subset: no takes tuple can
     be added without breaking a functional dependency. *)
  let prog = Assignment.program Assignment.example1_source in
  List.iter
    (fun db ->
      let chosen =
        List.map (fun r -> (Value.to_string r.(0), Value.to_string r.(1)))
          (Database.facts_of db "a_st")
      in
      List.iter
        (fun row ->
          let s = Value.to_string row.(0) and c = Value.to_string row.(1) in
          let compatible =
            (not (List.exists (fun (s', c') -> s = s' && c <> c') chosen))
            && not (List.exists (fun (s', c') -> c = c' && s <> s') chosen)
          in
          Alcotest.(check bool) "maximal" true ((not compatible) || List.mem (s, c) chosen))
        (Database.facts_of (Choice_fixpoint.model prog) "takes"))
    (Choice_fixpoint.enumerate prog)

let test_policy_random_reproducible () =
  let prog = Assignment.program Assignment.example1_source in
  let a = Choice_fixpoint.model ~policy:(Random 7) prog in
  let b = Choice_fixpoint.model ~policy:(Random 7) prog in
  Alcotest.(check bool) "same seed, same model" true (Database.equal_on a b [ "a_st" ]);
  let models =
    List.init 20 (fun seed -> facts (Choice_fixpoint.model ~policy:(Random seed) prog) "a_st")
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "different seeds reach several models" true (List.length models > 1)

let test_lemma2_completeness_random_policy () =
  (* Every model found by enumeration is reachable by some gamma
     instantiation; conversely every random run lands in the
     enumerated set. *)
  let prog = Assignment.program Assignment.example1_source in
  let enumerated =
    List.sort compare (List.map (fun db -> facts db "a_st") (Choice_fixpoint.enumerate prog))
  in
  List.iter
    (fun seed ->
      let m = facts (Choice_fixpoint.model ~policy:(Random seed) prog) "a_st" in
      Alcotest.(check bool) "random run is an enumerated model" true (List.mem m enumerated))
    (List.init 15 Fun.id)

(* ---------------- Theorem 1: stability ---------------- *)

let paper_programs_small =
  [ ("example1", Assignment.program Assignment.example1_source);
    ("bi_st_c", Assignment.program Assignment.bi_st_c_source);
    ( "sorting",
      Sorting.program [ ("a", 3); ("b", 1); ("c", 2); ("d", 2) ] );
    ( "prim",
      Prim.program ~root:0 (Graph_gen.random_connected ~seed:1 ~nodes:6 ~extra_edges:5) );
    ( "kruskal",
      Kruskal.program (Graph_gen.random_connected ~seed:2 ~nodes:5 ~extra_edges:4) );
    ( "matching",
      Matching.program [ (0, 10, 3); (0, 11, 1); (1, 10, 2); (1, 11, 4); (2, 12, 5) ] );
    ("tsp", Tsp.program (Graph_gen.complete ~seed:3 ~nodes:5));
    ("huffman", Huffman.program [ ("a", 5); ("b", 2); ("c", 1); ("d", 1) ]);
    ( "dijkstra",
      Dijkstra.program ~root:0 (Graph_gen.random_connected ~seed:4 ~nodes:6 ~extra_edges:6) );
    ("scheduling", Scheduling.program (Interval_gen.random ~seed:5 ~jobs:6 ~horizon:30)) ]

let test_theorem1_reference_models_stable () =
  List.iter
    (fun (name, prog) ->
      let db = Choice_fixpoint.model prog in
      Alcotest.(check bool) (name ^ ": reference model stable") true (Stable.is_stable prog db))
    paper_programs_small

let test_theorem1_staged_models_stable () =
  List.iter
    (fun (name, prog) ->
      let db = Stage_engine.model prog in
      Alcotest.(check bool) (name ^ ": staged model stable") true (Stable.is_stable prog db))
    paper_programs_small

let test_non_models_fail_stability () =
  let prog = Assignment.program Assignment.example1_source in
  let db = Choice_fixpoint.model prog in
  (* Adding an unjustified fact must break stability. *)
  let tampered = Database.copy db in
  ignore (Database.add_fact tampered "a_st" [| Value.sym "ghost"; Value.sym "phys" |]);
  Alcotest.(check bool) "extra fact breaks stability" false (Stable.is_stable prog tampered);
  (* Removing a derived fact must too: rebuild a db without one a_st row. *)
  let pruned = Database.create () in
  List.iter
    (fun pred ->
      let rows = Database.facts_of db pred in
      let rows = if pred = "a_st" then List.tl rows else rows in
      List.iter (fun row -> ignore (Database.add_fact pruned pred row)) rows)
    (Database.preds db);
  Alcotest.(check bool) "missing fact breaks stability" false (Stable.is_stable prog pruned)

let test_brute_force_agrees_on_small_choice_programs () =
  let check_program name src facts_src =
    let prog = Parser.parse_program (facts_src ^ src) in
    let brute = List.length (Stable.stable_models_brute prog) in
    let enum = List.length (Choice_fixpoint.enumerate prog) in
    Alcotest.(check int) (name ^ ": |brute| = |enumerate|") brute enum
  in
  check_program "single choice" "p(X) <- e(X), choice((), X)." "e(1). e(2). e(3).";
  check_program "fd choice" "p(X, Y) <- e(X, Y), choice(X, Y)." "e(1, a). e(1, b). e(2, a)."

let test_least_fixpoint_is_a_strict_subset () =
  (* With an extremum inside the choice rule, the fixpoint commits to
     greedy selections: its models are stable (Theorem 1) but they are
     a strict subset of the stable models of the rewriting — choosing
     the expensive tuple first is also stable under the footnote-2
     reading (choice applied before least).  Lemma 2's completeness is
     only claimed for pure choice programs. *)
  let prog =
    Parser.parse_program
      "e(1, 5). e(2, 3). e(3, 3). p(X, C) <- e(X, C), least(C), choice((), X)."
  in
  let brute = Stable.stable_models_brute prog in
  let enum = Choice_fixpoint.enumerate prog in
  Alcotest.(check int) "three stable models of the rewriting" 3 (List.length brute);
  Alcotest.(check int) "two greedy models" 2 (List.length enum);
  List.iter
    (fun db -> Alcotest.(check bool) "each greedy model is stable" true (Stable.is_stable prog db))
    enum;
  (* The greedy models are exactly the minimum-cost ones. *)
  List.iter
    (fun db ->
      match Database.facts_of db "p" with
      | [ row ] -> Alcotest.(check int) "greedy picks cost 3" 3 (Value.as_int row.(1))
      | _ -> Alcotest.fail "expected a single p fact")
    enum

(* ---------------- engine agreement ---------------- *)

let test_engines_agree_exactly_on_tie_free_programs () =
  (* Unique costs make the stable model unique, so the two engines must
     produce identical relations. *)
  List.iter
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:12 ~extra_edges:20 in
      let prog = Prim.program ~root:0 g in
      let a = Choice_fixpoint.model prog and b = Stage_engine.model prog in
      Alcotest.(check bool) "prim models identical" true (Database.equal_on a b [ "prm" ]))
    [ 1; 2; 3; 4; 5 ]

let prop_engines_agree_dijkstra =
  QCheck.Test.make ~name:"engines agree on dijkstra (random graphs)" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:10 ~extra_edges:12 in
      List.sort compare (Dijkstra.run Runner.Reference g)
      = List.sort compare (Dijkstra.run Runner.Staged g))

let prop_staged_stable_sorting =
  QCheck.Test.make ~name:"staged sorting model is stable" ~count:20
    QCheck.(small_list (int_bound 50))
    (fun costs ->
      let items = List.mapi (fun i c -> (Printf.sprintf "x%d" i, c)) costs in
      let prog = Sorting.program items in
      Stable.is_stable prog (Stage_engine.model prog))

let () =
  Alcotest.run "semantics"
    [ ( "stratified",
        [ Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "same generation" `Quick test_same_generation;
          Alcotest.test_case "stratified negation" `Quick test_stratified_negation;
          Alcotest.test_case "non-recursive extrema" `Quick test_nonrecursive_extrema;
          Alcotest.test_case "most" `Quick test_most_extremum;
          Alcotest.test_case "seminaive = naive" `Quick test_seminaive_equals_naive;
          Alcotest.test_case "unstratified rejected" `Quick test_unstratified_rejected ] );
      ( "choice fixpoint",
        [ Alcotest.test_case "Example 1 models" `Quick test_example1_models_exact;
          Alcotest.test_case "FDs hold in every model" `Quick test_choice_fd_holds_in_every_model;
          Alcotest.test_case "maximality" `Quick test_choice_models_maximality;
          Alcotest.test_case "random policy reproducible" `Quick test_policy_random_reproducible;
          Alcotest.test_case "Lemma 2 completeness" `Quick test_lemma2_completeness_random_policy ] );
      ( "theorem 1",
        [ Alcotest.test_case "reference models stable (all programs)" `Slow
            test_theorem1_reference_models_stable;
          Alcotest.test_case "staged models stable (all programs)" `Slow
            test_theorem1_staged_models_stable;
          Alcotest.test_case "tampered models rejected" `Quick test_non_models_fail_stability;
          Alcotest.test_case "brute force agrees" `Quick
            test_brute_force_agrees_on_small_choice_programs;
          Alcotest.test_case "least commits greedily (strict subset)" `Quick
            test_least_fixpoint_is_a_strict_subset ] );
      ( "agreement",
        [ Alcotest.test_case "tie-free exact agreement" `Quick
            test_engines_agree_exactly_on_tie_free_programs;
          QCheck_alcotest.to_alcotest prop_engines_agree_dijkstra;
          QCheck_alcotest.to_alcotest prop_staged_stable_sorting ] ) ]
