(* The greedy algorithm suite: every Section-5 program (plus the
   extensions) against its procedural baseline, on both engines,
   across deterministic and randomized workloads. *)

open Gbc

let engines = [ ("reference", Runner.Reference); ("staged", Runner.Staged) ]

(* ---------------- sorting (Example 5) ---------------- *)

let test_sorting_basic () =
  let items = [ ("c", 3); ("a", 1); ("b", 2) ] in
  List.iter
    (fun (name, eng) ->
      Alcotest.(check (list (pair string int))) name
        [ ("a", 1); ("b", 2); ("c", 3) ]
        (Sorting.run eng items))
    engines

let test_sorting_with_cost_ties () =
  let items = [ ("a", 2); ("b", 1); ("c", 2); ("d", 1) ] in
  List.iter
    (fun (name, eng) ->
      let out = Sorting.run eng items in
      Alcotest.(check bool) (name ^ " sorted perm") true
        (Sorting.is_sorted_permutation ~input:items out))
    engines

let test_sorting_singleton_and_empty () =
  List.iter
    (fun (name, eng) ->
      Alcotest.(check (list (pair string int))) (name ^ " singleton") [ ("x", 5) ]
        (Sorting.run eng [ ("x", 5) ]);
      Alcotest.(check (list (pair string int))) (name ^ " empty") [] (Sorting.run eng []))
    engines

let prop_sorting =
  QCheck.Test.make ~name:"sorting = heap sort (both engines)" ~count:30
    QCheck.(small_list (int_bound 100))
    (fun costs ->
      let items = List.mapi (fun i c -> (Printf.sprintf "x%d" i, c)) costs in
      let reference = Sorting.run Runner.Reference items in
      let staged = Sorting.run Runner.Staged items in
      (* The heap baseline breaks cost ties arbitrarily, so compare the
         engines exactly against each other and both against the
         sorted-permutation specification. *)
      reference = staged
      && Sorting.is_sorted_permutation ~input:items reference
      && List.map snd reference = List.map snd (Sorting.procedural items))

(* ---------------- Prim (Example 4) ---------------- *)

let test_prim_triangle_root_guard () =
  (* The canonical root re-entry trap: without Y != root the program
     picks the cheap reverse edge into the root. *)
  let g = { Graph_gen.nodes = 3; edges = [ (0, 1, 1); (1, 2, 3); (0, 2, 5) ] } in
  List.iter
    (fun (name, eng) ->
      let r = Prim.run eng g in
      Alcotest.(check int) (name ^ " weight") 4 r.Prim.weight;
      Alcotest.(check bool) (name ^ " tree") true (Prim.is_spanning_tree g r))
    engines

let test_prim_matches_oracle () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:24 ~extra_edges:50 in
      let oracle = Graph_gen.mst_weight g in
      List.iter
        (fun (name, eng) ->
          let r = Prim.run eng g in
          Alcotest.(check int) (Printf.sprintf "%s seed %d" name seed) oracle r.Prim.weight;
          Alcotest.(check bool) "spanning tree" true (Prim.is_spanning_tree g r))
        engines;
      Alcotest.(check int) "procedural" oracle (Prim.procedural g).Prim.weight)
    [ 10; 20; 30 ]

let test_prim_nonzero_root () =
  let g = Graph_gen.random_connected ~seed:77 ~nodes:10 ~extra_edges:12 in
  let r = Prim.run Runner.Staged ~root:3 g in
  Alcotest.(check int) "weight independent of root" (Graph_gen.mst_weight g) r.Prim.weight

let test_prim_on_grid () =
  let g = Graph_gen.grid ~width:5 ~height:4 in
  let oracle = Graph_gen.mst_weight g in
  List.iter
    (fun (name, eng) ->
      Alcotest.(check int) (name ^ " grid") oracle (Prim.run eng g).Prim.weight)
    engines

let prop_mst_with_ties =
  QCheck.Test.make ~name:"prim and kruskal handle weight ties" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Graph_gen.random_connected_ties ~seed ~nodes:14 ~extra_edges:20 in
      let oracle = Graph_gen.mst_weight g in
      let p = Prim.run Runner.Staged g and k = Kruskal.run Runner.Staged g in
      p.Prim.weight = oracle && k.Kruskal.weight = oracle
      && Prim.is_spanning_tree g p && Kruskal.is_spanning_tree g k)

let prop_prim =
  QCheck.Test.make ~name:"prim = MST oracle (staged)" ~count:30 QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:16 ~extra_edges:25 in
      let r = Prim.run Runner.Staged g in
      r.Prim.weight = Graph_gen.mst_weight g && Prim.is_spanning_tree g r)

(* ---------------- Kruskal (Example 8) ---------------- *)

let test_kruskal_matches_oracle () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:14 ~extra_edges:25 in
      let oracle = Graph_gen.mst_weight g in
      List.iter
        (fun (name, eng) ->
          let r = Kruskal.run eng g in
          Alcotest.(check int) (Printf.sprintf "%s seed %d" name seed) oracle r.Kruskal.weight;
          Alcotest.(check bool) "spanning tree" true (Kruskal.is_spanning_tree g r))
        engines)
    [ 11; 22; 33 ]

let test_kruskal_selects_edges_in_cost_order () =
  let g = Graph_gen.random_connected ~seed:5 ~nodes:12 ~extra_edges:20 in
  let r = Kruskal.run Runner.Staged g in
  let costs = List.map (fun (_, _, c) -> c) r.Kruskal.edges in
  Alcotest.(check (list int)) "monotone selection" (List.sort compare costs) costs

let test_kruskal_no_rank_ablation_same_tree () =
  let g = Graph_gen.random_connected ~seed:6 ~nodes:20 ~extra_edges:30 in
  Alcotest.(check int) "rank heuristic does not change the MST"
    (Kruskal.procedural ~by_rank:true g).Kruskal.weight
    (Kruskal.procedural ~by_rank:false g).Kruskal.weight

let prop_kruskal_equals_prim =
  QCheck.Test.make ~name:"kruskal = prim (staged engines)" ~count:20 QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:12 ~extra_edges:18 in
      (Kruskal.run Runner.Staged g).Kruskal.weight = (Prim.run Runner.Staged g).Prim.weight)

(* ---------------- matching (Example 7) ---------------- *)

let arcs_of_seed seed n =
  (* One cost per arc (the paper's Example 3 remark: with several costs
     per arc the choice goals must carry the cost). *)
  let rng = Rng.create seed in
  let seen = Hashtbl.create 64 in
  List.init (3 * n) (fun i -> (Rng.int rng n, n + Rng.int rng n, (i * 37 mod 499) + 1))
  |> List.filter (fun (x, y, _) ->
         if Hashtbl.mem seen (x, y) then false
         else begin
           Hashtbl.add seen (x, y) ();
           true
         end)
  |> List.sort compare

let test_matching_paper_shape () =
  let arcs = [ (0, 10, 3); (0, 11, 1); (1, 10, 2); (1, 11, 4); (2, 12, 5) ] in
  List.iter
    (fun (name, eng) ->
      let r = Matching.run eng arcs in
      Alcotest.(check bool) (name ^ " maximal") true (Matching.is_maximal_matching arcs r);
      Alcotest.(check int) (name ^ " greedy cost") 8 r.Matching.cost)
    engines

let test_matching_equals_procedural () =
  List.iter
    (fun seed ->
      let arcs = arcs_of_seed seed 8 in
      let expected = Matching.procedural arcs in
      List.iter
        (fun (name, eng) ->
          let r = Matching.run eng arcs in
          Alcotest.(check (list (triple int int int)))
            (Printf.sprintf "%s seed %d" name seed)
            expected.Matching.arcs r.Matching.arcs)
        engines)
    [ 3; 7; 13 ]

let prop_matching_valid =
  QCheck.Test.make ~name:"matching maximal partial permutation" ~count:30
    QCheck.(int_bound 100_000)
    (fun seed ->
      let arcs = arcs_of_seed seed 10 in
      let r = Matching.run Runner.Staged arcs in
      Matching.is_maximal_matching arcs r)

(* ---------------- greedy TSP ---------------- *)

let test_tsp_agrees_with_procedural () =
  List.iter
    (fun seed ->
      let g = Graph_gen.complete ~seed ~nodes:10 in
      let expected = Tsp.procedural g in
      List.iter
        (fun (name, eng) ->
          let r = Tsp.run eng g in
          Alcotest.(check bool) (name ^ " hamiltonian") true (Tsp.is_hamiltonian_path g r);
          Alcotest.(check (list (triple int int int))) name expected.Tsp.chain r.Tsp.chain)
        engines)
    [ 1; 2; 3 ]

let test_tsp_starts_with_cheapest_arc () =
  let g = Graph_gen.complete ~seed:9 ~nodes:8 in
  let cheapest =
    List.fold_left (fun acc (_, _, c) -> min acc c) max_int g.Graph_gen.edges
  in
  match (Tsp.run Runner.Staged g).Tsp.chain with
  | (_, _, c) :: _ -> Alcotest.(check int) "exit rule picks the least arc" cheapest c
  | [] -> Alcotest.fail "empty chain"

let prop_tsp =
  QCheck.Test.make ~name:"tsp chain = procedural greedy" ~count:15 QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Graph_gen.complete ~seed ~nodes:9 in
      let r = Tsp.run Runner.Staged g in
      Tsp.is_hamiltonian_path g r && r.Tsp.chain = (Tsp.procedural g).Tsp.chain)

(* ---------------- Huffman (Example 6) ---------------- *)

let test_huffman_known_tree () =
  (* Classic: a:5 b:2 c:1 d:1 -> cost = 2 + 4 + 9 = wpl 5*1+2*2+1*3+1*3 = 15? *)
  let letters = [ ("a", 5); ("b", 2); ("c", 1); ("d", 1) ] in
  let optimal = Huffman.procedural_cost letters in
  List.iter
    (fun (name, eng) ->
      let r = Huffman.run eng letters in
      Alcotest.(check int) (name ^ " optimal cost") optimal r.Huffman.internal_cost;
      Alcotest.(check int) (name ^ " merges") 3 r.Huffman.merges)
    engines

let test_huffman_codes_prefix_free () =
  let letters = Text_gen.zipf ~seed:8 ~letters:10 in
  let r = Huffman.run Runner.Staged letters in
  let codes = Huffman.codes r.Huffman.root in
  Alcotest.(check int) "one code per letter" (List.length letters) (List.length codes);
  let bits = List.map snd codes in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then
            let prefix =
              String.length a <= String.length b && String.sub b 0 (String.length a) = a
            in
            Alcotest.(check bool) "prefix-free" false prefix)
        bits)
    bits

let test_huffman_cost_equals_weighted_code_length () =
  let letters = Text_gen.zipf ~seed:4 ~letters:9 in
  let r = Huffman.run Runner.Staged letters in
  let codes = Huffman.codes r.Huffman.root in
  let wcl =
    List.fold_left
      (fun acc (sym, freq) -> acc + (freq * String.length (List.assoc sym codes)))
      0 letters
  in
  Alcotest.(check int) "internal cost = weighted code length" r.Huffman.internal_cost wcl

let prop_huffman_roundtrip =
  QCheck.Test.make ~name:"huffman encode/decode round-trip" ~count:20
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 8) (int_range 1 30))
              (small_list (int_bound 7)))
    (fun (freqs, message) ->
      let letters = List.mapi (fun i f -> (Printf.sprintf "l%d" i, f)) freqs in
      let n = List.length letters in
      let message = List.map (fun i -> Printf.sprintf "l%d" (i mod n)) message in
      let tree = (Huffman.run Runner.Staged letters).Huffman.root in
      Huffman.decode tree (Huffman.encode tree message) = message
      || (message = [] && Huffman.decode tree "" = []))

let prop_huffman_optimal =
  QCheck.Test.make ~name:"huffman engine cost = two-queue optimum" ~count:15
    QCheck.(list_of_size (QCheck.Gen.int_range 2 9) (int_range 1 40))
    (fun freqs ->
      let letters = List.mapi (fun i f -> (Printf.sprintf "l%d" i, f)) freqs in
      (Huffman.run Runner.Staged letters).Huffman.internal_cost
      = Huffman.procedural_cost letters)

(* ---------------- Dijkstra (extension) ---------------- *)

let test_dijkstra_small_known () =
  let g = { Graph_gen.nodes = 4; edges = [ (0, 1, 1); (1, 2, 1); (0, 2, 5); (2, 3, 2) ] } in
  List.iter
    (fun (name, eng) ->
      Alcotest.(check (list (pair int int))) name
        [ (0, 0); (1, 1); (2, 2); (3, 4) ]
        (Dijkstra.run eng g))
    engines

let prop_dijkstra =
  QCheck.Test.make ~name:"dijkstra = procedural (staged)" ~count:30 QCheck.(int_bound 100_000)
    (fun seed ->
      let g = Graph_gen.random_connected ~seed ~nodes:14 ~extra_edges:25 in
      (* Equal-distance nodes may settle in either order; compare as
         sets of (node, distance). *)
      List.sort compare (Dijkstra.run Runner.Staged g)
      = List.sort compare (Dijkstra.procedural g))

(* ---------------- scheduling (extension) ---------------- *)

let test_scheduling_known () =
  let jobs = [ (0, 0, 3); (1, 2, 5); (2, 4, 7); (3, 1, 2); (4, 6, 8) ] in
  (* Earliest finish: job 3 (f=2), then job 1 (s=2>=2, f=5)? job 1 starts at 2 >= 2 ok,
     then job 2 (s=4 < 5 conflict), job 4 (s=6 >= 5, f=8). *)
  let expected = [ (3, 1, 2); (1, 2, 5); (4, 6, 8) ] in
  List.iter
    (fun (name, eng) ->
      Alcotest.(check (list (triple int int int))) name expected (Scheduling.run eng jobs))
    engines

let prop_scheduling =
  QCheck.Test.make ~name:"scheduling = earliest finish (both engines)" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let jobs = Interval_gen.random ~seed ~jobs:12 ~horizon:80 in
      let expected = Scheduling.procedural jobs in
      Scheduling.run Runner.Reference jobs = expected
      && Scheduling.run Runner.Staged jobs = expected
      && Scheduling.is_valid_schedule ~all:jobs expected)

(* ---------------- shadow analysis keys ---------------- *)

let test_compiled_keys () =
  let keys src = Stage_engine.compiled_keys (Parser.parse_program src) in
  (match keys (Prim.source ~root:0) with
  | [ ("prm", shadow, positions) ] ->
    Alcotest.(check bool) "prim shadows" true shadow;
    Alcotest.(check (list int)) "keyed on the frontier node" [ 1 ] positions
  | _ -> Alcotest.fail "prim keys");
  (match keys Matching.source with
  | [ ("matching", shadow, _) ] ->
    Alcotest.(check bool) "matching must not shadow" false shadow
  | _ -> Alcotest.fail "matching keys");
  (match keys Sorting.source with
  | [ ("sp", shadow, _) ] -> Alcotest.(check bool) "sorting must not shadow" false shadow
  | _ -> Alcotest.fail "sorting keys");
  match keys (Dijkstra.source ~root:0) with
  | [ ("dij", shadow, positions) ] ->
    Alcotest.(check bool) "dijkstra shadows (decrease-key)" true shadow;
    Alcotest.(check (list int)) "keyed on the node" [ 0 ] positions
  | _ -> Alcotest.fail "dijkstra keys"

let test_shadow_off_ablation_still_correct () =
  let g = Graph_gen.random_connected ~seed:12 ~nodes:15 ~extra_edges:25 in
  let db, stats = Stage_engine.run ~shadow:`Off (Prim.program ~root:0 g) in
  let weight =
    Database.facts_of db "prm"
    |> List.filter (fun row -> Value.as_int row.(3) > 0)
    |> List.fold_left (fun acc row -> acc + Value.as_int row.(2)) 0
  in
  Alcotest.(check int) "MST weight with shadowing off" (Graph_gen.mst_weight g) weight;
  Alcotest.(check int) "nothing shadowed" 0 stats.Stage_engine.shadowed

let test_pairing_backend_agrees () =
  let g = Graph_gen.random_connected ~seed:13 ~nodes:15 ~extra_edges:25 in
  let a = fst (Stage_engine.run ~backend:`Binary (Prim.program ~root:0 g)) in
  let b = fst (Stage_engine.run ~backend:`Pairing (Prim.program ~root:0 g)) in
  Alcotest.(check bool) "backends agree" true (Database.equal_on a b [ "prm" ])

let () =
  Alcotest.run "greedy"
    [ ( "sorting",
        [ Alcotest.test_case "basic" `Quick test_sorting_basic;
          Alcotest.test_case "cost ties" `Quick test_sorting_with_cost_ties;
          Alcotest.test_case "degenerate sizes" `Quick test_sorting_singleton_and_empty;
          QCheck_alcotest.to_alcotest prop_sorting ] );
      ( "prim",
        [ Alcotest.test_case "root guard on triangle" `Quick test_prim_triangle_root_guard;
          Alcotest.test_case "matches MST oracle" `Quick test_prim_matches_oracle;
          Alcotest.test_case "non-zero root" `Quick test_prim_nonzero_root;
          Alcotest.test_case "grid graph" `Quick test_prim_on_grid;
          QCheck_alcotest.to_alcotest prop_prim;
          QCheck_alcotest.to_alcotest prop_mst_with_ties ] );
      ( "kruskal",
        [ Alcotest.test_case "matches MST oracle" `Quick test_kruskal_matches_oracle;
          Alcotest.test_case "cost-ordered selection" `Quick
            test_kruskal_selects_edges_in_cost_order;
          Alcotest.test_case "rank ablation" `Quick test_kruskal_no_rank_ablation_same_tree;
          QCheck_alcotest.to_alcotest prop_kruskal_equals_prim ] );
      ( "matching",
        [ Alcotest.test_case "paper-shape instance" `Quick test_matching_paper_shape;
          Alcotest.test_case "equals procedural" `Quick test_matching_equals_procedural;
          QCheck_alcotest.to_alcotest prop_matching_valid ] );
      ( "tsp",
        [ Alcotest.test_case "agrees with procedural" `Quick test_tsp_agrees_with_procedural;
          Alcotest.test_case "exit rule least arc" `Quick test_tsp_starts_with_cheapest_arc;
          QCheck_alcotest.to_alcotest prop_tsp ] );
      ( "huffman",
        [ Alcotest.test_case "known alphabet" `Quick test_huffman_known_tree;
          Alcotest.test_case "prefix-free codes" `Quick test_huffman_codes_prefix_free;
          Alcotest.test_case "cost = weighted code length" `Quick
            test_huffman_cost_equals_weighted_code_length;
          QCheck_alcotest.to_alcotest prop_huffman_optimal;
          QCheck_alcotest.to_alcotest prop_huffman_roundtrip ] );
      ( "dijkstra",
        [ Alcotest.test_case "known distances" `Quick test_dijkstra_small_known;
          QCheck_alcotest.to_alcotest prop_dijkstra ] );
      ( "scheduling",
        [ Alcotest.test_case "known instance" `Quick test_scheduling_known;
          QCheck_alcotest.to_alcotest prop_scheduling ] );
      ( "stage engine internals",
        [ Alcotest.test_case "congruence keys" `Quick test_compiled_keys;
          Alcotest.test_case "shadow-off ablation" `Quick test_shadow_off_ablation_still_correct;
          Alcotest.test_case "pairing backend" `Quick test_pairing_backend_agrees ] ) ]
