(* The resource governor: every engine terminates under budget on the
   adversarial corpus, reports the violated limit, and leaves a
   consistent partial database; plus the deterministic fault-injection
   harness and the structured Gbc_error type. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load name = Parser.parse_program (read_file ("../programs/" ^ name))
let nat_prog () = load "adversarial_nat.dl"
let blowup_prog () = load "adversarial_blowup.dl"
let choice_prog () = load "adversarial_choice.dl"

(* Deep recursion: r(0) plus a chain of [n] edges derives exactly [n]
   facts r(1) .. r(n), one per semi-naive iteration. *)
let chain_prog n =
  let facts = List.init n (fun i -> Printf.sprintf "e(%d, %d)." i (i + 1)) in
  Parser.parse_program
    (String.concat "\n" facts ^ "\nr(0).\nr(Y) <- r(X), e(X, Y).\n")

let map_outcome f = function
  | Limits.Complete x -> Limits.Complete (f x)
  | Limits.Partial (x, d) -> Limits.Partial (f x, d)

(* Both engines behind one governed signature returning the database. *)
let engines =
  [ ( "reference",
      fun ~limits prog -> map_outcome fst (Choice_fixpoint.run_governed ~limits prog) );
    ( "staged",
      fun ~limits prog -> map_outcome fst (Stage_engine.run_governed ~limits prog) ) ]

let violation = Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Limits.violation_to_string v))
    (fun a b -> a = b)

let expect_partial name outcome =
  match outcome with
  | Limits.Complete _ -> Alcotest.failf "%s: expected a Partial outcome" name
  | Limits.Partial (db, d) -> (db, d)

(* ------------------------------------------------------------------ *)
(* Adversarial corpus: termination + the right violation              *)
(* ------------------------------------------------------------------ *)

let test_adversarial_terminates () =
  List.iter
    (fun (ename, run) ->
      (* Non-terminating plain programs stopped by the fact budget. *)
      List.iter
        (fun (pname, prog, pred) ->
          let limits = Limits.create ~max_facts:500 () in
          let name = Printf.sprintf "%s/%s" ename pname in
          let db, d = expect_partial name (run ~limits prog) in
          Alcotest.check violation (name ^ " violation") Limits.Max_facts d.Limits.violated;
          Alcotest.(check bool) (name ^ " made progress") true (d.Limits.facts > 0);
          Alcotest.(check bool)
            (name ^ " partial db non-empty") true
            (Database.facts_of db pred <> []))
        [ ("nat", nat_prog (), "nat"); ("blowup", blowup_prog (), "p") ];
      (* The non-stage-stratified choice program stopped by the step
         budget (gamma never runs dry). *)
      let limits = Limits.create ~max_steps:100 () in
      let name = ename ^ "/choice" in
      let _db, d = expect_partial name (run ~limits (choice_prog ())) in
      Alcotest.check violation (name ^ " violation") Limits.Max_steps d.Limits.violated;
      Alcotest.(check bool) (name ^ " steps counted") true (d.Limits.steps > 100 - 1);
      (* Wall clock: the successor generator against a tiny deadline. *)
      let limits = Limits.create ~timeout_s:0.05 () in
      let name = ename ^ "/nat-deadline" in
      let _db, d = expect_partial name (run ~limits (nat_prog ())) in
      Alcotest.check violation (name ^ " violation") Limits.Deadline d.Limits.violated;
      Alcotest.(check bool) (name ^ " elapsed recorded") true (d.Limits.elapsed_s >= 0.05))
    engines

let test_diagnostics_fields () =
  List.iter
    (fun (ename, run) ->
      let limits = Limits.create ~max_facts:100 () in
      let _db, d = expect_partial ename (run ~limits (nat_prog ())) in
      Alcotest.(check bool) (ename ^ " active stratum recorded") true
        (match d.Limits.active with Some s -> String.length s > 0 | None -> false);
      Alcotest.(check bool) (ename ^ " facts counted") true (d.Limits.facts > 100 - 1);
      Alcotest.(check bool) (ename ^ " elapsed non-negative") true (d.Limits.elapsed_s >= 0.);
      (* The renderer mentions the violated budget. *)
      let text = Format.asprintf "%a" Limits.pp_diagnostics d in
      Alcotest.(check bool) (ename ^ " renderer names the budget") true
        (let sub = "max-facts" in
         let rec find i =
           i + String.length sub <= String.length text
           && (String.sub text i (String.length sub) = sub || find (i + 1))
         in
         find 0))
    engines

(* ------------------------------------------------------------------ *)
(* Partial-database consistency                                        *)
(* ------------------------------------------------------------------ *)

let rec is_tower = function
  | Value.Sym id -> Value.resolve id = "z"
  | Value.App ("s", [ v ]) -> is_tower v
  | _ -> false

let test_partial_consistency_infinite () =
  List.iter
    (fun (ename, run) ->
      let limits = Limits.create ~max_facts:200 () in
      let db, _ = expect_partial ename (run ~limits (nat_prog ())) in
      let rows = Database.facts_of db "nat" in
      Alcotest.(check bool) (ename ^ " all facts are s-towers") true
        (List.for_all (fun row -> Array.length row = 1 && is_tower row.(0)) rows);
      (* Downward closed: nat(s(t)) only ever derives from nat(t). *)
      Alcotest.(check bool) (ename ^ " downward closed") true
        (List.for_all
           (fun row ->
             match row.(0) with
             | Value.App ("s", [ v ]) -> Database.mem_fact db "nat" [| v |]
             | _ -> true)
           rows))
    engines

let test_partial_subset_of_full () =
  let prog = chain_prog 100 in
  List.iter
    (fun (ename, run) ->
      let full = Limits.value (run ~limits:Limits.unlimited prog) in
      let limits = Limits.create ~max_facts:50 () in
      let partial, d = expect_partial ename (run ~limits prog) in
      Alcotest.check violation (ename ^ " violation") Limits.Max_facts d.Limits.violated;
      Alcotest.(check bool) (ename ^ " partial subset of full model") true
        (List.for_all
           (fun pred ->
             List.for_all
               (fun row -> Database.mem_fact full pred row)
               (Database.facts_of partial pred))
           (Database.preds partial));
      Alcotest.(check bool) (ename ^ " partial strictly smaller") true
        (List.length (Database.facts_of partial "r") < List.length (Database.facts_of full "r")))
    engines

(* ------------------------------------------------------------------ *)
(* Budget boundaries                                                   *)
(* ------------------------------------------------------------------ *)

let test_boundary_exact_budget () =
  (* chain_prog 10 derives exactly 10 facts: a budget of 10 completes,
     9 trips. *)
  let prog = chain_prog 10 in
  List.iter
    (fun (ename, run) ->
      (match run ~limits:(Limits.create ~max_facts:10 ()) prog with
      | Limits.Complete db ->
        Alcotest.(check int) (ename ^ " complete model size") 11
          (List.length (Database.facts_of db "r"))
      | Limits.Partial _ -> Alcotest.failf "%s: budget == derivations must complete" ename);
      let _db, d =
        expect_partial ename (run ~limits:(Limits.create ~max_facts:9 ()) prog)
      in
      Alcotest.check violation (ename ^ " one-less trips") Limits.Max_facts d.Limits.violated)
    engines

let test_deadline_zero_fails_fast () =
  let prog = chain_prog 10 in
  List.iter
    (fun (ename, run) ->
      let _db, d =
        expect_partial ename (run ~limits:(Limits.create ~timeout_s:0. ()) prog)
      in
      Alcotest.check violation (ename ^ " deadline 0") Limits.Deadline d.Limits.violated;
      Alcotest.(check int) (ename ^ " no facts derived") 0 d.Limits.facts;
      Alcotest.(check int) (ename ^ " no steps taken") 0 d.Limits.steps)
    engines;
  (* The saturators and semantic checkers raise through the same path. *)
  let flat = chain_prog 10 in
  let dead () = Limits.create ~timeout_s:0. () in
  Alcotest.check_raises "naive saturate" (Limits.Exhausted Limits.Deadline) (fun () ->
      Naive.saturate ~limits:(dead ()) (Database.create ()) flat);
  Alcotest.check_raises "wellfounded" (Limits.Exhausted Limits.Deadline) (fun () ->
      ignore (Wellfounded.compute ~limits:(dead ()) (Rewrite.expand_all flat)));
  Alcotest.check_raises "stable check" (Limits.Exhausted Limits.Deadline) (fun () ->
      let db = Stage_engine.model flat in
      ignore (Stable.is_stable ~limits:(dead ()) flat db))

let test_cancellation_token () =
  let prog = chain_prog 10 in
  List.iter
    (fun (ename, run) ->
      let cancel = ref true in
      let _db, d =
        expect_partial ename (run ~limits:(Limits.create ~cancel ()) prog)
      in
      Alcotest.check violation (ename ^ " pre-set token") Limits.Cancelled d.Limits.violated)
    engines

let test_max_candidates () =
  List.iter
    (fun (ename, run) ->
      let limits = Limits.create ~max_candidates:5 () in
      let _db, d = expect_partial ename (run ~limits (choice_prog ())) in
      Alcotest.check violation (ename ^ " candidate budget") Limits.Max_candidates
        d.Limits.violated;
      Alcotest.(check bool) (ename ^ " candidates counted") true (d.Limits.candidates > 5 - 1))
    engines

(* A budget tripped inside a parallel saturation region must broadcast
   to every shard and abort before any shard buffer is merged: the
   partial database is a consistent subset of the full model, with no
   leaked $delta scratch relations. *)
let parallel_engines =
  [ ( "reference",
      fun ~limits prog ->
        map_outcome fst (Choice_fixpoint.run_governed ~limits ~jobs:4 prog) );
    ( "staged",
      fun ~limits prog -> map_outcome fst (Stage_engine.run_governed ~limits ~jobs:4 prog) ) ]

let test_parallel_cancellation_consistent () =
  let prog = chain_prog 200 in
  List.iter
    (fun (ename, run) ->
      let full = Limits.value (run ~limits:Limits.unlimited prog) in
      let limits = Limits.create ~max_facts:60 () in
      let partial, d = expect_partial (ename ^ "/jobs4") (run ~limits prog) in
      Alcotest.check violation (ename ^ " parallel trip violation") Limits.Max_facts
        d.Limits.violated;
      Alcotest.(check bool) (ename ^ " no $delta scratch leaked") true
        (List.for_all
           (fun p -> not (String.length p > 6 && String.sub p (String.length p - 6) 6 = "$delta"))
           (Database.preds partial));
      Alcotest.(check bool) (ename ^ " parallel partial subset of full") true
        (List.for_all
           (fun pred ->
             List.for_all
               (fun row -> Database.mem_fact full pred row)
               (Database.facts_of partial pred))
           (Database.preds partial));
      Alcotest.(check bool) (ename ^ " parallel partial strictly smaller") true
        (List.length (Database.facts_of partial "r") < List.length (Database.facts_of full "r")))
    parallel_engines

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

exception Boom

let test_fault_trip () =
  let prog = chain_prog 100 in
  List.iter
    (fun (ename, run) ->
      let limits = Limits.create ~max_facts:1000 () in
      Limits.fault_at limits ~k:5 (Limits.Trip Limits.Max_candidates);
      let db, d = expect_partial ename (run ~limits prog) in
      Alcotest.check violation (ename ^ " injected violation surfaces")
        Limits.Max_candidates d.Limits.violated;
      Alcotest.(check bool) (ename ^ " tripped at the k-th derivation") true
        (d.Limits.facts >= 5 && d.Limits.facts < 100);
      (* The structured exit leaves a consistent prefix. *)
      let full = Limits.value (run ~limits:Limits.unlimited prog) in
      Alcotest.(check bool) (ename ^ " prefix consistent") true
        (List.for_all
           (fun row -> Database.mem_fact full "r" row)
           (Database.facts_of db "r")))
    engines

let test_fault_raise () =
  let prog = chain_prog 100 in
  List.iter
    (fun (ename, run) ->
      let limits = Limits.create ~max_facts:1000 () in
      Limits.fault_at limits ~k:5 (Limits.Raise Boom);
      Alcotest.check_raises (ename ^ " engine crash escapes govern") Boom (fun () ->
          ignore (run ~limits prog)))
    engines

(* ------------------------------------------------------------------ *)
(* The corpus really is what it claims to be                           *)
(* ------------------------------------------------------------------ *)

let test_choice_prog_not_stage_stratified () =
  let report = Stage.analyze (choice_prog ()) in
  Alcotest.(check bool) "adversarial_choice is non-stage-stratified" false
    report.Stage.stage_stratified

(* ------------------------------------------------------------------ *)
(* Structured errors                                                   *)
(* ------------------------------------------------------------------ *)

let test_gbc_error_classification () =
  let pos = { Gbc_error.line = 3; col = 7 } in
  let cases =
    [ (Lexer.Error ("bad char", pos), Gbc_error.Lex ("bad char", pos));
      (Parser.Error ("lexical error: bad char", pos), Gbc_error.Lex ("bad char", pos));
      (Parser.Error ("expected '.'", pos), Gbc_error.Parse ("expected '.'", pos));
      (Eval.Unsafe "unbound var", Gbc_error.Unsafe "unbound var");
      (Choice_fixpoint.Unsupported "bad clique", Gbc_error.Unsupported "bad clique");
      (Stage_engine.Not_compilable "no source", Gbc_error.Not_compilable "no source");
      (Sys_error "nope.dl: No such file or directory",
       Gbc_error.Io "nope.dl: No such file or directory") ]
  in
  List.iter
    (fun (exn, expected) ->
      match Gbc_error.of_exn exn with
      | Some got ->
        Alcotest.(check bool)
          (Printexc.to_string exn ^ " classified") true (got = expected)
      | None -> Alcotest.failf "%s not classified" (Printexc.to_string exn))
    cases;
  Alcotest.(check bool) "unknown exceptions pass through" true
    (Gbc_error.of_exn Boom = None)

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_gbc_error_rendering () =
  (match Gbc_error.protect (fun () -> Parser.parse_program "p(X <- q(X).") with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error e ->
    let s = Gbc_error.to_string e in
    Alcotest.(check bool) "parse error carries a position" true
      (contains s "line" && contains s "column"));
  (match Gbc_error.protect (fun () -> read_file "does_not_exist.dl") with
  | Ok _ -> Alcotest.fail "missing file read"
  | Error e ->
    Alcotest.(check bool) "io errors are classified" true
      (match e with Gbc_error.Io _ -> true | _ -> false));
  (* Positions at line 0 (synthetic) are omitted from the rendering. *)
  let s = Gbc_error.to_string (Gbc_error.Parse ("boom", { Gbc_error.line = 0; col = 0 })) in
  Alcotest.(check string) "synthetic position omitted" "parse error: boom" s

let test_unlimited_is_shared_noop () =
  Alcotest.(check bool) "unlimited" true (Limits.is_unlimited Limits.unlimited);
  Alcotest.(check bool) "created governors are limited" false
    (Limits.is_unlimited (Limits.create ()));
  (* Ticking the shared instance forever never trips. *)
  for _ = 1 to 10_000 do
    Limits.tick_derived Limits.unlimited 1;
    Limits.tick_step Limits.unlimited;
    Limits.tick_candidates Limits.unlimited 1
  done;
  Limits.check_now Limits.unlimited

let () =
  Alcotest.run "limits"
    [ ( "adversarial",
        [ Alcotest.test_case "every engine terminates under budget" `Quick
            test_adversarial_terminates;
          Alcotest.test_case "diagnostics snapshot" `Quick test_diagnostics_fields;
          Alcotest.test_case "corpus is non-stage-stratified" `Quick
            test_choice_prog_not_stage_stratified ] );
      ( "consistency",
        [ Alcotest.test_case "partial db of an infinite program" `Quick
            test_partial_consistency_infinite;
          Alcotest.test_case "partial db is a subset of the model" `Quick
            test_partial_subset_of_full ] );
      ( "boundaries",
        [ Alcotest.test_case "budget == derivations completes" `Quick
            test_boundary_exact_budget;
          Alcotest.test_case "deadline 0 fails fast" `Quick test_deadline_zero_fails_fast;
          Alcotest.test_case "cancellation token" `Quick test_cancellation_token;
          Alcotest.test_case "candidate budget" `Quick test_max_candidates;
          Alcotest.test_case "parallel trip leaves consistent partial db" `Quick
            test_parallel_cancellation_consistent ] );
      ( "faults",
        [ Alcotest.test_case "injected trip exits structurally" `Quick test_fault_trip;
          Alcotest.test_case "injected crash escapes govern" `Quick test_fault_raise ] );
      ( "errors",
        [ Alcotest.test_case "classification" `Quick test_gbc_error_classification;
          Alcotest.test_case "rendering" `Quick test_gbc_error_rendering;
          Alcotest.test_case "unlimited is a no-op" `Quick test_unlimited_is_shared_noop ] ) ]
