(* The gbcd wire protocol: QCheck round-trips for every frame type,
   plus totality on malformed input — truncated length prefixes,
   oversized frames, garbage payloads, trailing bytes.  A server must
   be able to answer any byte sequence with a structured error, so
   nothing here may raise. *)

open Gbc

(* ---------------- generators ---------------- *)

let gen_small_string = QCheck.Gen.(string_size ~gen:printable (int_bound 40))

(* include the bytes that break naive framing: NULs, high bit, '\n' *)
let gen_binary_string =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 60))

let gen_opt g = QCheck.Gen.(oneof [ return None; map Option.some g ])

let gen_engine = QCheck.Gen.oneofl [ Protocol.Staged; Protocol.Reference ]

let gen_budget =
  QCheck.Gen.(
    map2
      (fun (a, b) (c, d, j) ->
        { Protocol.timeout_ms = a; max_facts = b; max_steps = c; max_candidates = d; jobs = j })
      (pair (gen_opt (int_bound 1_000_000)) (gen_opt (int_bound 1_000_000)))
      (triple (gen_opt (int_bound 1_000_000)) (gen_opt (int_bound 1_000_000))
         (gen_opt (int_bound 64))))

let gen_preds = gen_opt QCheck.Gen.(list_size (int_bound 5) gen_small_string)

let gen_request =
  QCheck.Gen.(
    oneof
      [ return Protocol.Ping;
        map (fun s -> Protocol.Load s) gen_binary_string;
        map2
          (fun text id -> Protocol.Assert_facts { text; id })
          gen_binary_string (gen_opt (int_bound 1_000_000_000));
        map2
          (fun text id -> Protocol.Retract_facts { text; id })
          gen_binary_string (gen_opt (int_bound 1_000_000_000));
        map (fun s -> Protocol.Attach s) (gen_opt (int_bound 1_000_000));
        map4
          (fun engine seed preds budget -> Protocol.Run { engine; seed; preds; budget })
          gen_engine (gen_opt (int_bound 1_000_000)) gen_preds gen_budget;
        map2
          (fun max_models preds -> Protocol.Enumerate { max_models; preds })
          (int_bound 1000) gen_preds;
        map3
          (fun engine text budget -> Protocol.Query { engine; text; budget })
          gen_engine gen_binary_string gen_budget;
        return Protocol.Stats;
        return Protocol.Shutdown;
        map (fun version -> Protocol.Hello { version }) (int_bound 1000) ])

let all_error_codes =
  [ Protocol.Lex_error; Protocol.Parse_error; Protocol.Unsafe; Protocol.Unsupported;
    Protocol.Not_compilable; Protocol.Io_error; Protocol.Protocol_violation;
    Protocol.No_program; Protocol.Budget_exhausted; Protocol.Draining; Protocol.Server_error;
    Protocol.Not_retractable; Protocol.No_session ]

let gen_response =
  QCheck.Gen.(
    oneof
      [ return Protocol.Pong;
        return Protocol.Bye;
        map4
          (fun clauses cache_hit digest stage_stratified ->
            Protocol.Loaded { clauses; cache_hit; digest; stage_stratified })
          (int_bound 10_000) bool gen_small_string bool;
        map (fun added -> Protocol.Asserted { added }) (int_bound 1000);
        map (fun removed -> Protocol.Retracted { removed }) (int_bound 1000);
        map (fun id -> Protocol.Attached { id }) (int_bound 1_000_000);
        map3
          (fun complete text diagnostic -> Protocol.Model { complete; text; diagnostic })
          bool gen_binary_string (gen_opt gen_binary_string);
        map2
          (fun total models -> Protocol.Model_set { total; models })
          (int_bound 1000)
          (list_size (int_bound 5) gen_binary_string);
        map3
          (fun complete vars rows -> Protocol.Answers { complete; vars; rows })
          bool
          (list_size (int_bound 5) gen_small_string)
          (list_size (int_bound 5) gen_binary_string);
        map (fun s -> Protocol.Stats_json s) gen_binary_string;
        map2
          (fun code message -> Protocol.Error { code; message })
          (oneofl all_error_codes) gen_binary_string;
        map (fun version -> Protocol.Welcome { version }) (int_bound 1000);
      ])

(* ---------------- round trips ---------------- *)

let strip_frame encoded =
  match Protocol.extract_frame encoded 0 with
  | Protocol.Frame (body, next) ->
    Alcotest.(check int) "frame consumes everything" (String.length encoded) next;
    body
  | _ -> Alcotest.fail "encode did not produce one whole frame"

let request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request encode/decode round-trip"
    (QCheck.make gen_request) (fun req ->
      match Protocol.decode_request (strip_frame (Protocol.encode_request req)) with
      | Ok req' -> req = req'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response encode/decode round-trip"
    (QCheck.make gen_response) (fun resp ->
      match Protocol.decode_response (strip_frame (Protocol.encode_response resp)) with
      | Ok resp' -> resp = resp'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

(* ---------------- protocol v2 envelopes ---------------- *)

let gen_rid = QCheck.Gen.(oneof [ int_bound 1_000_000; return 0; return max_int ])

let enveloped_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"v2 request envelope round-trip (id preserved)"
    (QCheck.make QCheck.Gen.(pair gen_rid gen_request)) (fun (rid, req) ->
      match Protocol.decode_request_v2 (strip_frame (Protocol.encode_request_v2 ~rid req)) with
      | Ok (Some rid', req') -> rid = rid' && req = req'
      | Ok (None, _) -> QCheck.Test.fail_reportf "envelope id lost"
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let enveloped_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"v2 response envelope round-trip (id preserved)"
    (QCheck.make QCheck.Gen.(pair gen_rid gen_response)) (fun (rid, resp) ->
      match Protocol.decode_response_v2 (strip_frame (Protocol.encode_response_v2 ~rid resp)) with
      | Ok (Some rid', resp') -> rid = rid' && resp = resp'
      | Ok (None, _) -> QCheck.Test.fail_reportf "envelope id lost"
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

(* the v2 decoders accept bare v1 frames unchanged: same connection,
   both framings, no mode switch *)
let bare_through_v2 =
  QCheck.Test.make ~count:500 ~name:"bare v1 frames decode through the v2 entry points"
    (QCheck.make QCheck.Gen.(pair gen_request gen_response)) (fun (req, resp) ->
      (match Protocol.decode_request_v2 (strip_frame (Protocol.encode_request req)) with
      | Ok (None, req') when req' = req -> ()
      | Ok _ -> QCheck.Test.fail_reportf "bare request misdecoded"
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg);
      match Protocol.decode_response_v2 (strip_frame (Protocol.encode_response resp)) with
      | Ok (None, resp') when resp' = resp -> true
      | Ok _ -> QCheck.Test.fail_reportf "bare response misdecoded"
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let garbage_payload_v2 =
  QCheck.Test.make ~count:1000 ~name:"v2 decoders are total on garbage"
    (QCheck.make gen_binary_string) (fun payload ->
      (match Protocol.decode_request_v2 payload with Ok _ | Error _ -> ());
      (match Protocol.decode_response_v2 payload with Ok _ | Error _ -> ());
      (* envelope tags followed by junk, and truncated envelopes *)
      (match Protocol.decode_request_v2 ("\x7f" ^ payload) with Ok _ | Error _ -> ());
      (match Protocol.decode_response_v2 ("\xff" ^ payload) with Ok _ | Error _ -> ());
      true)

let truncated_envelope () =
  let body = strip_frame (Protocol.encode_request_v2 ~rid:42 Protocol.Ping) in
  for len = 0 to String.length body - 1 do
    match Protocol.decode_request_v2 (String.sub body 0 len) with
    | Ok (Some 42, Protocol.Ping) -> Alcotest.fail "a strict prefix decoded whole"
    | Ok _ | Error _ -> ()
  done

(* every error code survives the int mapping *)
let error_code_ints () =
  List.iter
    (fun c ->
      match Protocol.error_code_of_int (Protocol.error_code_to_int c) with
      | Some c' -> Alcotest.(check bool) "code survives" true (c = c')
      | None -> Alcotest.fail "error code does not survive the int round-trip")
    all_error_codes

(* ---------------- framing ---------------- *)

let frame_of_len n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let truncated_prefix () =
  (* anything shorter than the 4-byte prefix, or a prefix promising
     more bytes than are present, is Need_more — never an exception *)
  List.iter
    (fun s ->
      match Protocol.extract_frame s 0 with
      | Protocol.Need_more -> ()
      | _ -> Alcotest.fail ("expected Need_more on " ^ String.escaped s))
    [ ""; "\x00"; "\x00\x00"; "\x00\x00\x00"; frame_of_len 5 ^ "abc" ]

let oversized_frame () =
  (match Protocol.extract_frame ~max_frame:1024 (frame_of_len 2048) 0 with
   | Protocol.Bad_length n -> Alcotest.(check int) "reported length" 2048 n
   | _ -> Alcotest.fail "oversized length must be rejected before buffering");
  (* a negative 32-bit prefix must not be treated as a length *)
  (match Protocol.extract_frame "\xff\xff\xff\xff" 0 with
   | Protocol.Bad_length _ -> ()
   | _ -> Alcotest.fail "negative length must be Bad_length");
  match Protocol.extract_frame (frame_of_len 0) 0 with
  | Protocol.Bad_length 0 -> ()
  | _ -> Alcotest.fail "zero-length frame must be Bad_length"

let garbage_payload =
  QCheck.Test.make ~count:1000 ~name:"garbage payloads decode to Error, never raise"
    (QCheck.make gen_binary_string) (fun payload ->
      (match Protocol.decode_request payload with Ok _ | Error _ -> ());
      (match Protocol.decode_response payload with Ok _ | Error _ -> ());
      true)

let truncated_valid_payload =
  (* every strict prefix of a well-formed payload is a structured error *)
  QCheck.Test.make ~count:200 ~name:"truncated payloads are structured errors"
    (QCheck.make gen_request) (fun req ->
      let body = strip_frame (Protocol.encode_request req) in
      let ok = ref true in
      for len = 0 to String.length body - 1 do
        match Protocol.decode_request (String.sub body 0 len) with
        | Ok req' when req' = req -> ok := false  (* a prefix must not decode to the same value *)
        | Ok _ | Error _ -> ()
      done;
      !ok)

let trailing_bytes () =
  let body = strip_frame (Protocol.encode_request Protocol.Ping) in
  match Protocol.decode_request (body ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes must be a decode error"

let response_tag_is_not_a_request () =
  let body = strip_frame (Protocol.encode_response Protocol.Pong) in
  match Protocol.decode_request body with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a response tag must not decode as a request"

let split_stream () =
  (* two frames back to back, delivered byte by byte, come out whole *)
  let f1 = Protocol.encode_request Protocol.Ping in
  let f2 = Protocol.encode_request (Protocol.Load "p(1).") in
  let stream = f1 ^ f2 in
  let got = ref [] in
  let buf = Buffer.create 16 in
  String.iter
    (fun ch ->
      Buffer.add_char buf ch;
      let rec drain () =
        match Protocol.extract_frame (Buffer.contents buf) 0 with
        | Protocol.Frame (body, next) ->
          got := body :: !got;
          let rest = Buffer.contents buf in
          Buffer.clear buf;
          Buffer.add_string buf (String.sub rest next (String.length rest - next));
          drain ()
        | Protocol.Need_more -> ()
        | Protocol.Bad_length _ -> Alcotest.fail "valid stream misframed"
      in
      drain ())
    stream;
  match List.rev_map Protocol.decode_request !got with
  | [ Ok Protocol.Ping; Ok (Protocol.Load "p(1).") ] -> ()
  | _ -> Alcotest.fail "byte-by-byte delivery lost or reordered frames"

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "protocol"
    [ ( "roundtrip",
        [ qt request_roundtrip; qt response_roundtrip;
          Alcotest.test_case "error codes" `Quick error_code_ints ] );
      ( "v2-envelopes",
        [ qt enveloped_request_roundtrip; qt enveloped_response_roundtrip;
          qt bare_through_v2; qt garbage_payload_v2;
          Alcotest.test_case "truncated envelope" `Quick truncated_envelope ] );
      ( "malformed",
        [ Alcotest.test_case "truncated length prefix" `Quick truncated_prefix;
          Alcotest.test_case "oversized / zero / negative length" `Quick oversized_frame;
          qt garbage_payload; qt truncated_valid_payload;
          Alcotest.test_case "trailing bytes rejected" `Quick trailing_bytes;
          Alcotest.test_case "response tag is not a request" `Quick response_tag_is_not_a_request;
          Alcotest.test_case "byte-by-byte reassembly" `Quick split_stream ] ) ]
