(* Ordered structures: heaps, union-find, and the Section-6 (R,Q,L). *)

open Gbc

let int_cmp = (compare : int -> int -> int)

(* ---------------- heaps ---------------- *)

module type HEAP = sig
  type 'a t

  val create : cmp:('a -> 'a -> int) -> unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val peek : 'a t -> 'a option
  val length : 'a t -> int
  val is_empty : 'a t -> bool
end

let test_heap_basic (module H : HEAP) () =
  let h = H.create ~cmp:int_cmp () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (H.pop h);
  List.iter (H.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (H.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (H.peek h);
  Alcotest.(check (option int)) "pop1" (Some 1) (H.pop h);
  Alcotest.(check (option int)) "pop2 (duplicate)" (Some 1) (H.pop h);
  Alcotest.(check (option int)) "pop3" (Some 3) (H.pop h);
  Alcotest.(check int) "length after pops" 2 (H.length h)

module B = struct
  include Binary_heap
  let create ~cmp () = create ~cmp ()
end

let binary_basic = test_heap_basic (module B)
let pairing_basic = test_heap_basic (module Pairing_heap)

let test_binary_of_list_heapify () =
  let h = Binary_heap.of_list ~cmp:int_cmp [ 9; 2; 7; 2; 0; 5 ] in
  Alcotest.(check (list int)) "heapify + drain" [ 0; 2; 2; 5; 7; 9 ]
    (Binary_heap.to_sorted_list h)

let test_pairing_sorted_insertion_no_stack_overflow () =
  (* Degenerate order: ascending inserts build a deep pairing heap. *)
  let h = Pairing_heap.create ~cmp:int_cmp () in
  for i = 1 to 200_000 do
    Pairing_heap.push h i
  done;
  Alcotest.(check (option int)) "min" (Some 1) (Pairing_heap.pop h);
  Alcotest.(check (option int)) "next" (Some 2) (Pairing_heap.pop h)

let prop_heap_sorts backend =
  let name = match backend with `Binary -> "binary" | `Pairing -> "pairing" in
  QCheck.Test.make
    ~name:(name ^ " heap drains sorted")
    ~count:300
    QCheck.(small_list small_signed_int)
    (fun xs ->
      let sorted =
        match backend with
        | `Binary -> Binary_heap.to_sorted_list (Binary_heap.of_list ~cmp:int_cmp xs)
        | `Pairing -> Pairing_heap.to_sorted_list (Pairing_heap.of_list ~cmp:int_cmp xs)
      in
      sorted = List.sort int_cmp xs)

(* ---------------- union-find ---------------- *)

let test_union_find () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial classes" 6 (Union_find.count uf);
  Alcotest.(check bool) "union 0 1" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union 1 0 again" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "union 2 3" true (Union_find.union uf 2 3);
  Alcotest.(check bool) "same 0 1" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same 0 2" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "transitive" true (Union_find.same uf 0 2);
  Alcotest.(check int) "classes" 3 (Union_find.count uf)

let prop_union_find_vs_naive =
  QCheck.Test.make ~name:"union-find = naive partition" ~count:200
    QCheck.(small_list (pair (int_bound 9) (int_bound 9)))
    (fun unions ->
      let uf = Union_find.create 10 in
      let naive = Array.init 10 Fun.id in
      let relabel a b =
        let ra = naive.(a) and rb = naive.(b) in
        Array.iteri (fun i x -> if x = ra then naive.(i) <- rb) naive
      in
      List.iter
        (fun (a, b) ->
          ignore (Union_find.union uf a b);
          relabel a b)
        unions;
      List.for_all
        (fun i ->
          List.for_all
            (fun j -> Union_find.same uf i j = (naive.(i) = naive.(j)))
            (List.init 10 Fun.id))
        (List.init 10 Fun.id))

(* ---------------- Rql ---------------- *)

type fact = { key : int; cost : int; stage : int }

let make_rql ?backend ?lean ?shadow ?newer_wins () =
  Rql.create ?backend ?lean ?shadow ?newer_wins ~key:(fun f -> f.key)
    ~cost_cmp:(fun a b -> compare a.cost b.cost)
    ~stage:(fun f -> f.stage) ()

let test_rql_pops_in_cost_order () =
  let q = make_rql ~shadow:false () in
  List.iteri
    (fun i c -> Rql.insert q { key = i; cost = c; stage = 0 })
    [ 7; 1; 5; 3 ];
  let pops = ref [] in
  let rec drain () =
    match Rql.retrieve_least q ~valid:(fun _ -> true) with
    | Some f ->
      pops := f.cost :: !pops;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5; 7 ] (List.rev !pops)

let test_rql_congruence_shadowing () =
  let q = make_rql () in
  Rql.insert q { key = 1; cost = 10; stage = 0 };
  Rql.insert q { key = 1; cost = 5; stage = 0 };  (* replaces *)
  Rql.insert q { key = 1; cost = 8; stage = 0 };  (* shadowed out *)
  Rql.insert q { key = 2; cost = 7; stage = 0 };
  Alcotest.(check int) "live queue" 2 (Rql.queue_length q);
  let first = Option.get (Rql.retrieve_least q ~valid:(fun _ -> true)) in
  Alcotest.(check int) "cheapest representative" 5 first.cost;
  (* Class 1 is now Used: later inserts are redundant. *)
  Rql.insert q { key = 1; cost = 1; stage = 0 };
  let second = Option.get (Rql.retrieve_least q ~valid:(fun _ -> true)) in
  Alcotest.(check int) "used class stays closed" 7 second.cost;
  Alcotest.(check (option int)) "drained" None
    (Option.map (fun f -> f.cost) (Rql.retrieve_least q ~valid:(fun _ -> true)));
  let s = Rql.stats q in
  Alcotest.(check int) "shadowed count" 3 s.Rql.shadowed;
  Alcotest.(check int) "used count" 2 s.Rql.used

let test_rql_invalid_reopens_class () =
  let q = make_rql () in
  Rql.insert q { key = 1; cost = 3; stage = 0 };
  Alcotest.(check (option int)) "invalid pop discarded" None
    (Option.map (fun f -> f.cost) (Rql.retrieve_least q ~valid:(fun _ -> false)));
  (* The class reopened: a new insert is live again. *)
  Rql.insert q { key = 1; cost = 9; stage = 0 };
  Alcotest.(check (option int)) "reinserted" (Some 9)
    (Option.map (fun f -> f.cost) (Rql.retrieve_least q ~valid:(fun _ -> true)));
  Alcotest.(check int) "invalid counted" 1 (Rql.stats q).Rql.invalid

let test_rql_newer_wins () =
  let q = make_rql ~newer_wins:true () in
  Rql.insert q { key = 1; cost = 1; stage = 1 };
  (* Newer stage shadows even at higher cost (TSP's I = J + 1). *)
  Rql.insert q { key = 1; cost = 100; stage = 2 };
  let f = Option.get (Rql.retrieve_least q ~valid:(fun _ -> true)) in
  Alcotest.(check int) "newer survived" 2 f.stage;
  (* And an older fact never displaces a newer incumbent. *)
  let q = make_rql ~newer_wins:true () in
  Rql.insert q { key = 1; cost = 100; stage = 2 };
  Rql.insert q { key = 1; cost = 1; stage = 1 };
  let f = Option.get (Rql.retrieve_least q ~valid:(fun _ -> true)) in
  Alcotest.(check int) "older rejected" 2 f.stage

let test_rql_stale_entries_skipped () =
  let q = make_rql () in
  Rql.insert q { key = 1; cost = 10; stage = 0 };
  Rql.insert q { key = 1; cost = 5; stage = 0 };
  (* The superseded cost-10 entry must be skipped silently. *)
  ignore (Rql.retrieve_least q ~valid:(fun _ -> true));
  Alcotest.(check (option int)) "no ghost" None
    (Option.map (fun f -> f.cost) (Rql.retrieve_least q ~valid:(fun _ -> true)));
  Alcotest.(check int) "stale counted" 1 (Rql.stats q).Rql.stale

let prop_rql_no_shadow_equals_heap backend =
  let name = match backend with `Binary -> "binary" | `Pairing -> "pairing" in
  QCheck.Test.make
    ~name:("rql(no shadow, " ^ name ^ ") drains like a heap")
    ~count:200
    QCheck.(small_list (int_bound 100))
    (fun costs ->
      let q = make_rql ~backend ~shadow:false () in
      List.iteri (fun i c -> Rql.insert q { key = i; cost = c; stage = 0 }) costs;
      let rec drain acc =
        match Rql.retrieve_least q ~valid:(fun _ -> true) with
        | Some f -> drain (f.cost :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare costs)

(* The compiled engine's flat heap must be observationally identical
   to the boxed backends: ids make the (cost, id) order total, so the
   pop sequence — including which pops the validity predicate rejects —
   matches fact for fact. *)
let prop_rql_lean_equals_boxed =
  QCheck.Test.make ~name:"rql ~lean drains identically to the boxed heap" ~count:200
    QCheck.(pair bool (small_list (pair (int_bound 4) (int_bound 50))))
    (fun (shadow, facts) ->
      let drain q =
        (* Reject every third valid-checked candidate, deterministically,
           to exercise the invalid-reopens-class path too. *)
        let checks = ref 0 in
        let valid _ =
          incr checks;
          !checks mod 3 <> 0
        in
        let rec go acc =
          match Rql.retrieve_least q ~valid with
          | Some f -> go ((f.key, f.cost) :: acc)
          | None -> List.rev acc
        in
        (go [], Rql.stats q)
      in
      let fill q = List.iter (fun (k, c) -> Rql.insert q { key = k; cost = c; stage = 0 }) facts in
      let boxed = make_rql ~shadow () in
      let lean = make_rql ~lean:true ~shadow () in
      fill boxed;
      fill lean;
      drain boxed = drain lean)

let prop_rql_shadow_one_per_class =
  QCheck.Test.make ~name:"rql shadowing yields at most one pop per class" ~count:200
    QCheck.(small_list (pair (int_bound 4) (int_bound 50)))
    (fun facts ->
      let q = make_rql () in
      List.iter (fun (k, c) -> Rql.insert q { key = k; cost = c; stage = 0 }) facts;
      let seen = Hashtbl.create 8 in
      let rec drain () =
        match Rql.retrieve_least q ~valid:(fun _ -> true) with
        | Some f ->
          if Hashtbl.mem seen f.key then false
          else begin
            Hashtbl.add seen f.key ();
            drain ()
          end
        | None -> true
      in
      drain ()
      && List.for_all (fun (k, _) -> Hashtbl.mem seen k) facts)

let () =
  Alcotest.run "ordered"
    [ ( "heaps",
        [ Alcotest.test_case "binary basics" `Quick binary_basic;
          Alcotest.test_case "pairing basics" `Quick pairing_basic;
          Alcotest.test_case "binary heapify" `Quick test_binary_of_list_heapify;
          Alcotest.test_case "pairing deep insertion" `Quick
            test_pairing_sorted_insertion_no_stack_overflow;
          QCheck_alcotest.to_alcotest (prop_heap_sorts `Binary);
          QCheck_alcotest.to_alcotest (prop_heap_sorts `Pairing) ] );
      ( "union-find",
        [ Alcotest.test_case "basics" `Quick test_union_find;
          QCheck_alcotest.to_alcotest prop_union_find_vs_naive ] );
      ( "rql",
        [ Alcotest.test_case "cost order" `Quick test_rql_pops_in_cost_order;
          Alcotest.test_case "congruence shadowing" `Quick test_rql_congruence_shadowing;
          Alcotest.test_case "invalid pop reopens class" `Quick test_rql_invalid_reopens_class;
          Alcotest.test_case "newer wins" `Quick test_rql_newer_wins;
          Alcotest.test_case "stale entries skipped" `Quick test_rql_stale_entries_skipped;
          QCheck_alcotest.to_alcotest (prop_rql_no_shadow_equals_heap `Binary);
          QCheck_alcotest.to_alcotest (prop_rql_no_shadow_equals_heap `Pairing);
          QCheck_alcotest.to_alcotest prop_rql_lean_equals_boxed;
          QCheck_alcotest.to_alcotest prop_rql_shadow_one_per_class ] ) ]
