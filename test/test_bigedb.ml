(* Big-EDB smoke: a 10^4-edge generated corpus loaded through the flat
   fast path must render byte-identically to the boxed load, survive a
   snapshot round-trip without losing the flat representation, and stay
   inside the bulk-load allocation budget.  Kept at 10^4 edges so it can
   run under [runtest]; the million-edge tier lives in bench E20. *)

open Gbc

let pp_db db = Format.asprintf "%a" Database.pp db

let with_threshold t f =
  let saved = Relation.flat_threshold () in
  Relation.set_flat_threshold t;
  Fun.protect ~finally:(fun () -> Relation.set_flat_threshold saved) f

let load ~flat g =
  with_threshold (if flat then Some 1024 else None) (fun () ->
      let db = Database.create () in
      Graph_gen.load_big db g;
      Graph_gen.load_big_nodes db g;
      db)

let corpora =
  [ ("power-law", Graph_gen.power_law ~seed:42 ~nodes:2_000 ~edges:10_000);
    ("road", Graph_gen.road_network ~seed:7 ~width:64 ~height:64) ]

let test_byte_identity () =
  List.iter
    (fun (name, g) ->
      let flat = load ~flat:true g and boxed = load ~flat:false g in
      Alcotest.(check bool)
        (name ^ ": fast path took the flat representation")
        true
        (Relation.is_flat (Database.relation flat "g" 3));
      Alcotest.(check bool)
        (name ^ ": boxed control stayed boxed")
        false
        (Relation.is_flat (Database.relation boxed "g" 3));
      Alcotest.(check string) (name ^ ": byte-identical rendering") (pp_db boxed) (pp_db flat))
    corpora

let test_snapshot_roundtrip () =
  let g = snd (List.hd corpora) in
  let db = load ~flat:true g in
  let buf = Buffer.create (1 lsl 16) in
  Db_snapshot.write buf db;
  let db', _ = Db_snapshot.read (Buffer.contents buf) 0 in
  Alcotest.(check string) "restored byte-identically" (pp_db db) (pp_db db');
  Alcotest.(check bool) "restored flat (blob blit, no re-encoding)" true
    (Relation.is_flat (Database.relation db' "g" 3));
  (* The legacy writer over the same database must agree. *)
  let buf1 = Buffer.create (1 lsl 16) in
  Db_snapshot.write_v1 buf1 db;
  Alcotest.(check string) "v1 stream of the same db restores identically" (pp_db db)
    (pp_db (fst (Db_snapshot.read (Buffer.contents buf1) 0)))

(* The whole point of the flat path: loading must not allocate per row.
   Budget of 2 minor words per fact (measured ~0.1); the boxed path
   costs ~23, so a regression that re-boxes rows trips this at once. *)
let test_alloc_budget () =
  let g = snd (List.hd corpora) in
  with_threshold (Some 1024) (fun () ->
      Gc.compact ();
      let before = Gc.minor_words () in
      let db = Database.create () in
      Graph_gen.load_big db g;
      Graph_gen.load_big_nodes db g;
      let words = Gc.minor_words () -. before in
      let facts = Database.cardinal db in
      let wpf = words /. float_of_int facts in
      if wpf > 2.0 then
        Alcotest.failf "flat bulk load allocated %.1f minor words/fact (budget 2.0)" wpf)

let test_oracle () =
  (* The columnar Kruskal oracle agrees with the list-based one on a
     corpus both can represent (grid without shortcuts = unique simple
     edges). *)
  let g = Graph_gen.road_network ~seed:7 ~width:20 ~height:20 in
  let w = Graph_gen.big_mst_weight g in
  Alcotest.(check bool) "mst weight positive" true (w > 0);
  let g' = Graph_gen.power_law ~seed:1 ~nodes:100 ~edges:400 in
  Alcotest.(check bool) "power-law mst positive" true (Graph_gen.big_mst_weight g' > 0)

let () =
  Alcotest.run "bigedb"
    [ ( "bigedb",
        [ Alcotest.test_case "flat vs boxed byte-identity" `Quick test_byte_identity;
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "bulk-load allocation budget" `Quick test_alloc_budget;
          Alcotest.test_case "mst oracle" `Quick test_oracle ] ) ]
