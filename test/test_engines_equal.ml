(* Cross-engine model equality after symbol interning.

   Interning replaced string payloads in [Value.Sym]/[Value.Str] with
   table ids, and the hot-path rewrite replaced term-by-term matching
   with precompiled kernels — in four engines (naive, seminaive,
   staged, reference) that must all still compute the same models.
   These tests pin that down over every shipped exemplar program, and
   QCheck properties pin the interner laws the engines rely on:
   intern/resolve round-trip and preservation of string order. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load name = Parser.parse_program (read_file ("../programs/" ^ name))

let exemplars =
  [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
    "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
    "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]

let all_preds dbs =
  List.sort_uniq String.compare (List.concat_map Database.preds dbs)

let check_same_model file a b name_a name_b =
  let preds = all_preds [ a; b ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s and %s agree on %s" file name_a name_b p)
        true
        (Database.equal_on a b [ p ]))
    preds

(* Every exemplar, reference vs staged, every predicate — including the
   [chosen$i] memo relations, whose layouts the two engines must share. *)
let test_reference_vs_staged () =
  List.iter
    (fun file ->
      let prog = load file in
      let reference = Choice_fixpoint.model prog in
      let staged = Stage_engine.model prog in
      check_same_model file reference staged "reference" "staged")
    exemplars

(* Horn programs run on all four engines.  [transitive_closure.dl] is
   the shipped Horn exemplar; the inline programs add a second clique
   and a join through a compound value, exercising interned symbols as
   join keys. *)
let horn_programs =
  [ ("transitive_closure.dl (file)", lazy (load "transitive_closure.dl"));
    ( "same-generation",
      lazy
        (Parser.parse_program
           "par(a, c). par(b, c). par(c, e). par(d, e).\n\
            sg(X, X) :- par(X, _).\n\
            sg(X, Y) :- par(X, P), sg(P, Q), par(Y, Q).") );
    ( "two cliques",
      lazy
        (Parser.parse_program
           "edge(a, b). edge(b, c). edge(c, d).\n\
            path(X, Y) :- edge(X, Y).\n\
            path(X, Z) :- path(X, Y), edge(Y, Z).\n\
            far(X) :- path(a, X).") ) ]

let idb_preds prog =
  List.sort_uniq String.compare
    (List.filter_map
       (fun r -> if Ast.is_fact r then None else Some (Ast.head_pred r))
       prog)

let run_naive prog =
  let db = Database.create () in
  Naive.saturate db prog;
  db

let run_seminaive prog =
  let db = Database.create () in
  Database.load_facts db (List.filter Ast.is_fact prog);
  Seminaive.eval_clique db ~clique:(idb_preds prog) prog;
  db

let test_four_engines_on_horn () =
  List.iter
    (fun (name, prog) ->
      let prog = Lazy.force prog in
      let reference = Choice_fixpoint.model prog in
      let staged = Stage_engine.model prog in
      let naive = run_naive prog in
      let seminaive = run_seminaive prog in
      check_same_model name naive reference "naive" "reference";
      check_same_model name seminaive reference "seminaive" "reference";
      check_same_model name staged reference "staged" "reference")
    horn_programs

(* ------------------------------------------------------------------ *)
(* Interner properties                                                 *)
(* ------------------------------------------------------------------ *)

(* Printable strings, biased toward collisions: short alphabet plus a
   few fixed names the engines themselves intern. *)
let gen_name =
  QCheck.Gen.(
    oneof
      [ map (fun s -> "s" ^ string_of_int s) small_nat;
        oneofl [ "a"; "b"; "nil"; "edge"; "x0"; ""; "zz" ];
        string_size ~gen:(char_range 'a' 'e') (int_range 0 4) ])

let arb_name = QCheck.make ~print:(fun s -> "\"" ^ s ^ "\"") gen_name

let sign x = compare x 0

let prop_roundtrip =
  QCheck.Test.make ~name:"intern -> resolve round-trips" ~count:1000 arb_name
    (fun s ->
      Interner.resolve (Interner.intern s) = s
      && Interner.intern s = Interner.intern s)

let prop_order_preserved =
  QCheck.Test.make ~name:"compare_ids and Value.compare preserve string order"
    ~count:1000 (QCheck.pair arb_name arb_name) (fun (a, b) ->
      sign (Interner.compare_ids (Interner.intern a) (Interner.intern b))
      = sign (String.compare a b)
      && sign (Value.compare (Value.sym a) (Value.sym b)) = sign (String.compare a b)
      && sign (Value.compare (Value.str a) (Value.str b)) = sign (String.compare a b))

let prop_equal_iff_same_string =
  QCheck.Test.make ~name:"interned equality is string equality" ~count:1000
    (QCheck.pair arb_name arb_name) (fun (a, b) ->
      Value.equal (Value.sym a) (Value.sym b) = String.equal a b)

let () =
  Alcotest.run "engines-equal"
    [ ( "models",
        [ Alcotest.test_case "reference = staged on every exemplar" `Slow
            test_reference_vs_staged;
          Alcotest.test_case "naive = seminaive = staged = reference on Horn" `Quick
            test_four_engines_on_horn ] );
      ( "interner",
        [ QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_order_preserved;
          QCheck_alcotest.to_alcotest prop_equal_iff_same_string ] ) ]
