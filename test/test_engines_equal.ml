(* Cross-engine model equality after symbol interning.

   Interning replaced string payloads in [Value.Sym]/[Value.Str] with
   table ids, and the hot-path rewrite replaced term-by-term matching
   with precompiled kernels — in four engines (naive, seminaive,
   staged, reference) that must all still compute the same models.
   These tests pin that down over every shipped exemplar program, and
   QCheck properties pin the interner laws the engines rely on:
   intern/resolve round-trip and preservation of string order. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load name = Parser.parse_program (read_file ("../programs/" ^ name))

let exemplars =
  [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
    "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
    "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]

let all_preds dbs =
  List.sort_uniq String.compare (List.concat_map Database.preds dbs)

let check_same_model file a b name_a name_b =
  let preds = all_preds [ a; b ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s and %s agree on %s" file name_a name_b p)
        true
        (Database.equal_on a b [ p ]))
    preds

(* Every exemplar, reference vs staged, every predicate — including the
   [chosen$i] memo relations, whose layouts the two engines must share. *)
let test_reference_vs_staged () =
  List.iter
    (fun file ->
      let prog = load file in
      let reference = Choice_fixpoint.model prog in
      let staged = Stage_engine.model prog in
      check_same_model file reference staged "reference" "staged")
    exemplars

(* Horn programs run on all four engines.  [transitive_closure.dl] is
   the shipped Horn exemplar; the inline programs add a second clique
   and a join through a compound value, exercising interned symbols as
   join keys. *)
let horn_programs =
  [ ("transitive_closure.dl (file)", lazy (load "transitive_closure.dl"));
    ( "same-generation",
      lazy
        (Parser.parse_program
           "par(a, c). par(b, c). par(c, e). par(d, e).\n\
            sg(X, X) :- par(X, _).\n\
            sg(X, Y) :- par(X, P), sg(P, Q), par(Y, Q).") );
    ( "two cliques",
      lazy
        (Parser.parse_program
           "edge(a, b). edge(b, c). edge(c, d).\n\
            path(X, Y) :- edge(X, Y).\n\
            path(X, Z) :- path(X, Y), edge(Y, Z).\n\
            far(X) :- path(a, X).") ) ]

let idb_preds prog =
  List.sort_uniq String.compare
    (List.filter_map
       (fun r -> if Ast.is_fact r then None else Some (Ast.head_pred r))
       prog)

let run_naive prog =
  let db = Database.create () in
  Naive.saturate db prog;
  db

let run_seminaive prog =
  let db = Database.create () in
  Database.load_facts db (List.filter Ast.is_fact prog);
  Seminaive.eval_clique db ~clique:(idb_preds prog) prog;
  db

let test_four_engines_on_horn () =
  List.iter
    (fun (name, prog) ->
      let prog = Lazy.force prog in
      let reference = Choice_fixpoint.model prog in
      let staged = Stage_engine.model prog in
      let naive = run_naive prog in
      let seminaive = run_seminaive prog in
      check_same_model name naive reference "naive" "reference";
      check_same_model name seminaive reference "seminaive" "reference";
      check_same_model name staged reference "staged" "reference")
    horn_programs

(* ------------------------------------------------------------------ *)
(* Data-parallel evaluation: --jobs N must be byte-identical           *)
(* ------------------------------------------------------------------ *)

(* The parallel saturation path merges shard buffers in an order chosen
   to reproduce the sequential database insertion order exactly, so the
   rendered database — relation by relation, row by row, chosen$i
   layouts included — must not differ by a single byte. *)

let db_bytes db = Format.asprintf "%a" Database.pp db

(* CI runs the suite twice: once default, once with GBC_TEST_JOBS set,
   to exercise the parallel path under a different shard count. *)
let jobs_under_test =
  let base = [ 2; 4 ] in
  match Option.bind (Sys.getenv_opt "GBC_TEST_JOBS") int_of_string_opt with
  | Some j when j > 1 && not (List.mem j base) -> base @ [ j ]
  | _ -> base

let test_parallel_byte_identical () =
  List.iter
    (fun file ->
      let prog = load file in
      let ref1 = db_bytes (fst (Choice_fixpoint.run ~jobs:1 prog)) in
      let st1 = db_bytes (fst (Stage_engine.run ~jobs:1 prog)) in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s: reference jobs=%d byte-identical to sequential" file jobs)
            ref1
            (db_bytes (fst (Choice_fixpoint.run ~jobs prog)));
          Alcotest.(check string)
            (Printf.sprintf "%s: staged jobs=%d byte-identical to sequential" file jobs)
            st1
            (db_bytes (fst (Stage_engine.run ~jobs prog))))
        jobs_under_test)
    exemplars

(* Random Horn programs: transitive closure plus a join rule over a
   random edge set — deltas big enough to cross the parallel-fire
   threshold, with plenty of duplicate derivations to stress the
   shard-merge dedup. *)
let gen_edges =
  QCheck.Gen.(list_size (int_range 5 25) (pair (int_bound 7) (int_bound 7)))

let arb_edges =
  QCheck.make
    ~print:(fun edges ->
      String.concat " " (List.map (fun (a, b) -> Printf.sprintf "e(%d,%d)." a b) edges))
    gen_edges

let prop_parallel_horn =
  QCheck.Test.make ~name:"random Horn: jobs 3 byte-identical to jobs 1" ~count:40 arb_edges
    (fun edges ->
      let src = Buffer.create 256 in
      List.iter
        (fun (a, b) -> Buffer.add_string src (Printf.sprintf "e(%d, %d).\n" a b))
        edges;
      Buffer.add_string src
        "t(X, Y) :- e(X, Y).\n\
         t(X, Z) :- t(X, Y), e(Y, Z).\n\
         j(X, Z) :- t(X, Y), t(Y, Z).\n";
      let prog = Parser.parse_program (Buffer.contents src) in
      String.equal
        (db_bytes (fst (Choice_fixpoint.run ~jobs:1 prog)))
        (db_bytes (fst (Choice_fixpoint.run ~jobs:3 prog)))
      && String.equal
           (db_bytes (fst (Stage_engine.run ~jobs:1 prog)))
           (db_bytes (fst (Stage_engine.run ~jobs:3 prog))))

(* ------------------------------------------------------------------ *)
(* The domain pool itself                                              *)
(* ------------------------------------------------------------------ *)

let test_par_pool () =
  let pool = Par.get 4 in
  Alcotest.(check int) "pool width" 4 (Par.size pool);
  Alcotest.(check bool) "jobs 1 is the shared sequential pool" true
    (Par.get 1 == Par.sequential);
  let n = 10_000 in
  let shards = Par.nshards pool n in
  let accs = Array.make shards 0 in
  Par.run pool ~shards (fun s ->
      let lo, hi = Par.bounds ~shards n s in
      let t = ref 0 in
      for i = lo to hi - 1 do
        t := !t + i
      done;
      accs.(s) <- !t);
  Alcotest.(check int) "sharded sum covers every index once" (n * (n - 1) / 2)
    (Array.fold_left ( + ) 0 accs);
  (* Shard bounds partition [0, n) exactly. *)
  let cover = Array.make 17 0 in
  let k = 5 in
  for s = 0 to k - 1 do
    let lo, hi = Par.bounds ~shards:k 17 s in
    for i = lo to hi - 1 do
      cover.(i) <- cover.(i) + 1
    done
  done;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "index %d covered once" i) 1 c)
    cover

let test_par_exception () =
  let pool = Par.get 4 in
  match Par.run pool ~shards:4 (fun s -> if s >= 2 then failwith (string_of_int s)) with
  | () -> Alcotest.fail "expected a shard failure to propagate"
  | exception Failure s ->
    Alcotest.(check string) "lowest failing shard index wins" "2" s

(* ------------------------------------------------------------------ *)
(* Interner under concurrent domains                                   *)
(* ------------------------------------------------------------------ *)

(* Four domains intern overlapping string sets concurrently; every id
   must resolve back to its string, the same string must map to the
   same id from every domain, and the published rank table must keep
   comparing ids in string order. *)
let test_interner_concurrent_domains () =
  let sign x = compare x 0 in
  let per_domain = 2000 in
  let name d i = Printf.sprintf "cd_%d_%d" ((i + d) mod 53) (i mod 17) in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            Array.init per_domain (fun i ->
                let s = name d i in
                (s, Interner.intern s))))
  in
  let results = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  List.iter
    (fun (s, id) ->
      Alcotest.(check string) "concurrent intern resolves back" s (Interner.resolve id);
      Alcotest.(check bool) "re-interning from the main domain agrees" true
        (Interner.intern s = id))
    results;
  (* Order law over a sample of the concurrently interned ids. *)
  let ids = List.map snd results in
  let strs = List.map fst results in
  List.iteri
    (fun i id_a ->
      if i < 50 then
        List.iteri
          (fun j id_b ->
            if j < 50 then
              Alcotest.(check int)
                (Printf.sprintf "rank order %d/%d" i j)
                (sign (String.compare (List.nth strs i) (List.nth strs j)))
                (sign (Interner.compare_ids id_a id_b)))
          ids)
    ids

(* ------------------------------------------------------------------ *)
(* Interner properties                                                 *)
(* ------------------------------------------------------------------ *)

(* Printable strings, biased toward collisions: short alphabet plus a
   few fixed names the engines themselves intern. *)
let gen_name =
  QCheck.Gen.(
    oneof
      [ map (fun s -> "s" ^ string_of_int s) small_nat;
        oneofl [ "a"; "b"; "nil"; "edge"; "x0"; ""; "zz" ];
        string_size ~gen:(char_range 'a' 'e') (int_range 0 4) ])

let arb_name = QCheck.make ~print:(fun s -> "\"" ^ s ^ "\"") gen_name

let sign x = compare x 0

let prop_roundtrip =
  QCheck.Test.make ~name:"intern -> resolve round-trips" ~count:1000 arb_name
    (fun s ->
      Interner.resolve (Interner.intern s) = s
      && Interner.intern s = Interner.intern s)

let prop_order_preserved =
  QCheck.Test.make ~name:"compare_ids and Value.compare preserve string order"
    ~count:1000 (QCheck.pair arb_name arb_name) (fun (a, b) ->
      sign (Interner.compare_ids (Interner.intern a) (Interner.intern b))
      = sign (String.compare a b)
      && sign (Value.compare (Value.sym a) (Value.sym b)) = sign (String.compare a b)
      && sign (Value.compare (Value.str a) (Value.str b)) = sign (String.compare a b))

let prop_equal_iff_same_string =
  QCheck.Test.make ~name:"interned equality is string equality" ~count:1000
    (QCheck.pair arb_name arb_name) (fun (a, b) ->
      Value.equal (Value.sym a) (Value.sym b) = String.equal a b)

let () =
  Alcotest.run "engines-equal"
    [ ( "models",
        [ Alcotest.test_case "reference = staged on every exemplar" `Slow
            test_reference_vs_staged;
          Alcotest.test_case "naive = seminaive = staged = reference on Horn" `Quick
            test_four_engines_on_horn ] );
      ( "parallel",
        [ Alcotest.test_case "every exemplar byte-identical at jobs 1/2/4" `Slow
            test_parallel_byte_identical;
          QCheck_alcotest.to_alcotest prop_parallel_horn;
          Alcotest.test_case "domain pool shards, merges, covers" `Quick test_par_pool;
          Alcotest.test_case "shard failure propagates (lowest index)" `Quick
            test_par_exception;
          Alcotest.test_case "interner safe under concurrent domains" `Quick
            test_interner_concurrent_domains ] );
      ( "interner",
        [ QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_order_preserved;
          QCheck_alcotest.to_alcotest prop_equal_iff_same_string ] ) ]
