(* The body evaluator: joins, binding order, negation with scoped
   guards, arithmetic (including inversion), safety errors. *)

open Gbc

let db_of facts =
  let db = Database.create () in
  Database.load_facts db (Parser.parse_program facts);
  db

let body_of src =
  let r = Parser.parse_rule ("dummy <- " ^ src) in
  r.Ast.body

let solutions ?extra_bound ?bindings facts body outs =
  let b = Eval.compile_body ?extra_bound (body_of body) in
  Eval.solutions b (db_of facts) ?bindings (List.map (fun v -> Ast.Var v) outs)

let ints rows = List.map (List.map Value.as_int) rows

let test_simple_join () =
  let rows =
    solutions "e(1,2). e(2,3). e(3,4)." "e(X, Y), e(Y, Z)" [ "X"; "Z" ]
  in
  Alcotest.(check (list (list int))) "two-hop" [ [ 1; 3 ]; [ 2; 4 ] ] (ints rows)

let test_self_join_dedup_bindings () =
  let rows = solutions "p(1). p(2)." "p(X), p(Y), X != Y" [ "X"; "Y" ] in
  Alcotest.(check (list (list int))) "pairs" [ [ 1; 2 ]; [ 2; 1 ] ] (ints rows)

let test_constant_in_pattern () =
  let rows = solutions "e(1,2). e(2,3)." "e(2, Y)" [ "Y" ] in
  Alcotest.(check (list (list int))) "constant arg" [ [ 3 ] ] (ints rows)

let test_compound_pattern_match () =
  let rows =
    solutions "h(t(a,b), 3). h(c, 4)." "h(t(X, Y), C)" [ "C" ]
  in
  Alcotest.(check (list (list int))) "matches only compound rows" [ [ 3 ] ] (ints rows)

let test_arithmetic_assign () =
  let rows = solutions "p(3)." "p(X), Y = X * 2 + 1" [ "Y" ] in
  Alcotest.(check (list (list int))) "assign" [ [ 7 ] ] (ints rows)

let test_arithmetic_inversion () =
  (* I bound, equation binds J = I - 1. *)
  let rows =
    solutions ~extra_bound:[ "I" ] ~bindings:[ ("I", Value.Int 5) ] "p(4). p(3)."
      "I = J + 1, p(J)" [ "J" ]
  in
  Alcotest.(check (list (list int))) "inverted" [ [ 4 ] ] (ints rows)

let test_max_min () =
  let rows = solutions "p(3, 8)." "p(A, B), M = max(A, B), N = min(A, B)" [ "M"; "N" ] in
  Alcotest.(check (list (list int))) "max/min" [ [ 8; 3 ] ] (ints rows)

let test_comparisons () =
  let rows = solutions "p(1). p(2). p(3)." "p(X), X >= 2, X != 3" [ "X" ] in
  Alcotest.(check (list (list int))) "filters" [ [ 2 ] ] (ints rows)

let test_negation_simple () =
  let rows = solutions "p(1). p(2). q(2)." "p(X), not q(X)" [ "X" ] in
  Alcotest.(check (list (list int))) "not q" [ [ 1 ] ] (ints rows)

let test_negation_missing_pred () =
  let rows = solutions "p(1)." "p(X), not nothing(X)" [ "X" ] in
  Alcotest.(check (list (list int))) "absent predicate is empty" [ [ 1 ] ] (ints rows)

let test_negation_with_guard () =
  (* The paper's idiom: not subtree(X, L), L < I — L existential under
     the negation, the comparison scoped inside it. *)
  let facts = "cand(a). cand(b). cand(c). used(a, 1). used(b, 5)." in
  let body = "cand(X), not used(X, L), L < I" in
  let rows =
    solutions ~extra_bound:[ "I" ] ~bindings:[ ("I", Value.Int 3) ] facts body [ "X" ]
  in
  (* a used at 1 < 3: blocked; b used at 5 (not < 3): allowed; c never used. *)
  Alcotest.(check (list string)) "guarded negation"
    [ "b"; "c" ]
    (List.map (fun r -> Value.to_string (List.hd r)) rows)

let test_two_guarded_negations () =
  let facts = "pair(a, b). used(a, 1)." in
  let body = "pair(X, Y), not used(X, L1), L1 < I, not used(Y, L2), L2 < I" in
  let run i =
    solutions ~extra_bound:[ "I" ] ~bindings:[ ("I", Value.Int i) ] facts body [ "X" ]
  in
  Alcotest.(check int) "blocked at stage 2" 0 (List.length (run 2));
  Alcotest.(check int) "allowed at stage 1" 1 (List.length (run 1))

let test_unsafe_head_var () =
  Alcotest.(check bool) "unbound comparison var rejected" true
    (try
       ignore (Eval.compile_body (body_of "p(X), Y < X"));
       false
     with Eval.Unsafe _ -> true)

let test_unsafe_negation_only_var () =
  (* A variable appearing only in a negation and in no guard cannot be
     a comparison input elsewhere. *)
  Alcotest.(check bool) "local var leaking" true
    (try
       let b = Eval.compile_body (body_of "p(X), not q(X, L), r(L)") in
       ignore b;
       (* If compilation succeeded, L was treated as bound by r(L):
          that is also acceptable — run it to check semantics. *)
       true
     with Eval.Unsafe _ -> true)

let test_non_flat_literal_rejected () =
  Alcotest.(check bool) "choice in flat body" true
    (try
       ignore (Eval.compile_body (body_of "p(X), choice(X, Y)"));
       false
     with Invalid_argument _ -> true)

let test_tuple_equality_unification () =
  let rows = solutions "p(1, 2)." "p(A, B), (X, Y) = (B, A)" [ "X"; "Y" ] in
  Alcotest.(check (list (list int))) "tuple unification" [ [ 2; 1 ] ] (ints rows)

let test_overflow_detected () =
  let raises_overflow op a b =
    match Eval.apply_binop op (Value.Int a) (Value.Int b) with
    | _ -> false
    | exception Eval.Unsafe msg ->
      (* The message names the offending operation. *)
      let has_sub needle hay =
        let n = String.length needle in
        let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      has_sub "overflow" msg
      && has_sub (match op with Ast.Add -> "+" | Ast.Sub -> "-" | _ -> "*") msg
  in
  Alcotest.(check bool) "max_int + 1" true (raises_overflow Ast.Add max_int 1);
  Alcotest.(check bool) "min_int + (-1)" true (raises_overflow Ast.Add min_int (-1));
  Alcotest.(check bool) "min_int - 1" true (raises_overflow Ast.Sub min_int 1);
  Alcotest.(check bool) "max_int - (-1)" true (raises_overflow Ast.Sub max_int (-1));
  Alcotest.(check bool) "max_int * 2" true (raises_overflow Ast.Mul max_int 2);
  Alcotest.(check bool) "min_int * -1" true (raises_overflow Ast.Mul min_int (-1));
  Alcotest.(check bool) "-1 * min_int" true (raises_overflow Ast.Mul (-1) min_int)

let test_overflow_boundaries_ok () =
  let eval op a b = Value.as_int (Eval.apply_binop op (Value.Int a) (Value.Int b)) in
  Alcotest.(check int) "max_int + 0" max_int (eval Ast.Add max_int 0);
  Alcotest.(check int) "min_int + 1" (min_int + 1) (eval Ast.Add min_int 1);
  Alcotest.(check int) "max_int - 1" (max_int - 1) (eval Ast.Sub max_int 1);
  Alcotest.(check int) "min_int - 0" min_int (eval Ast.Sub min_int 0);
  Alcotest.(check int) "min_int * 1" min_int (eval Ast.Mul min_int 1);
  Alcotest.(check int) "0 * min_int" 0 (eval Ast.Mul 0 min_int);
  Alcotest.(check int) "negatives" 12 (eval Ast.Mul (-3) (-4))

let test_overflow_in_body () =
  (* Reaching the overflow through a rule body: the evaluator's guard
     raises rather than silently wrapping. *)
  let facts = Printf.sprintf "f(%d)." max_int in
  Alcotest.(check bool) "body arithmetic overflows loudly" true
    (try
       ignore (solutions facts "f(A), X = A + A" [ "X" ]);
       false
     with Eval.Unsafe _ -> true)

let prop_mul_overflow_guard =
  (* The multiplication guard agrees with a widening oracle computed
     via division: for random 62-bit operands it either raises exactly
     when the true product leaves the int range, or returns it. *)
  QCheck.Test.make ~name:"checked mul = oracle" ~count:500
    QCheck.(pair int int)
    (fun (x, y) ->
      (* Exact representability test by integer division; truncation
         toward zero gives ceil for negative and floor for positive
         quotients, which is what each sign case needs. *)
      let fits =
        if x = 0 || y = 0 then true
        else if x > 0 && y > 0 then x <= max_int / y
        else if x < 0 && y < 0 then x >= max_int / y
        else if x < 0 then x >= min_int / y
        else x <= min_int / y
      in
      match Eval.apply_binop Ast.Mul (Value.Int x) (Value.Int y) with
      | v -> fits && Value.as_int v = x * y
      | exception Eval.Unsafe _ -> not fits)

let test_filters_run_before_scans () =
  (* Just a behavioural check: both orders give the same solutions. *)
  let facts = "p(1). p(2). q(1). q(2)." in
  let a = solutions facts "p(X), q(Y), X < Y" [ "X"; "Y" ] in
  let b = solutions facts "X < Y, p(X), q(Y)" [ "X"; "Y" ] in
  Alcotest.(check (list (list int))) "planner order-insensitive"
    (List.sort compare (ints a))
    (List.sort compare (ints b))

let prop_join_against_bruteforce =
  (* Random binary relations; compare the evaluator's e(X,Y),e(Y,Z)
     against a brute-force product. *)
  QCheck.Test.make ~name:"join = brute force" ~count:200
    QCheck.(small_list (pair (int_bound 6) (int_bound 6)))
    (fun pairs ->
      let db = Database.create () in
      List.iter
        (fun (a, b) ->
          ignore (Database.add_fact db "e" [| Value.Int a; Value.Int b |]))
        pairs;
      let body = Eval.compile_body (body_of "e(X, Y), e(Y, Z)") in
      let got =
        Eval.solutions body db [ Ast.Var "X"; Ast.Var "Y"; Ast.Var "Z" ]
        |> List.map (List.map Value.as_int)
        |> List.sort compare
      in
      let distinct = List.sort_uniq compare pairs in
      let expected =
        List.concat_map
          (fun (x, y) ->
            List.filter_map (fun (y', z) -> if y = y' then Some [ x; y; z ] else None) distinct)
          distinct
        |> List.sort compare
      in
      got = expected)

let () =
  Alcotest.run "eval"
    [ ( "joins",
        [ Alcotest.test_case "simple join" `Quick test_simple_join;
          Alcotest.test_case "self join" `Quick test_self_join_dedup_bindings;
          Alcotest.test_case "constant patterns" `Quick test_constant_in_pattern;
          Alcotest.test_case "compound patterns" `Quick test_compound_pattern_match;
          Alcotest.test_case "planner order-insensitive" `Quick test_filters_run_before_scans ] );
      ( "arithmetic",
        [ Alcotest.test_case "assignment" `Quick test_arithmetic_assign;
          Alcotest.test_case "inversion of I = J + 1" `Quick test_arithmetic_inversion;
          Alcotest.test_case "max/min" `Quick test_max_min;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "tuple unification" `Quick test_tuple_equality_unification;
          Alcotest.test_case "overflow detected" `Quick test_overflow_detected;
          Alcotest.test_case "overflow boundaries ok" `Quick test_overflow_boundaries_ok;
          Alcotest.test_case "overflow in rule body" `Quick test_overflow_in_body;
          QCheck_alcotest.to_alcotest prop_mul_overflow_guard ] );
      ( "negation",
        [ Alcotest.test_case "plain" `Quick test_negation_simple;
          Alcotest.test_case "missing predicate" `Quick test_negation_missing_pred;
          Alcotest.test_case "scoped guard (paper idiom)" `Quick test_negation_with_guard;
          Alcotest.test_case "two scoped guards" `Quick test_two_guarded_negations ] );
      ( "safety",
        [ Alcotest.test_case "unbound comparison" `Quick test_unsafe_head_var;
          Alcotest.test_case "negation-local leak" `Quick test_unsafe_negation_only_var;
          Alcotest.test_case "non-flat literal" `Quick test_non_flat_literal_rejected ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_join_against_bruteforce ]) ]
