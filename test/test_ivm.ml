(* Incremental view maintenance: byte-identity against from-scratch.

   The contract under test (ISSUE PR 6): a session that asserts and
   retracts facts against a materialized model must render exactly the
   bytes a fresh session evaluating the final fact base from scratch
   renders — whether the maintenance path was a semi-naive delta step,
   counting deletion, DRed, a non-monotone recompute, or a
   choice-stratum fallback to full re-evaluation.

   - every exemplar program, both engines: assert a probe fact, run,
     compare against a fresh session; retract it, run, compare against
     the pristine model;
   - retract leaves no stale derived state behind (chosen$i included);
   - QCheck: random interleavings of asserts/retracts/runs over a
     recursive + negation program equal from-scratch evaluation of the
     final EDB, for both engines and jobs 1 and 2;
   - the assert multiset and its counters stay consistent, and refused
     retractions mutate nothing. *)

open Gbc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let exemplars =
  [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
    "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
    "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]

let source name = read_file ("../programs/" ^ name)
let cache = Program_cache.create ()

let mk_session src =
  let s = Session.create ~cache ~id:0 () in
  match Session.load s src with
  | Ok (entry, _) -> (s, entry)
  | Error (_, msg) -> Alcotest.failf "load: %s" msg

let run_bytes ?seed ?(jobs = 1) ~engine s =
  match
    Session.run s ~engine ~seed ~jobs ~limits:Limits.unlimited ~telemetry:Telemetry.none
  with
  | Ok (Limits.Complete db) -> Session.render_model db
  | Ok (Limits.Partial _) -> Alcotest.fail "unexpected partial model"
  | Error (_, msg) -> Alcotest.failf "run: %s" msg

let fact_text pred row =
  Printf.sprintf "%s(%s)." pred
    (String.concat ", " (List.map Value.to_string (Array.to_list row)))

let expect_assert s text =
  match Session.assert_facts s text with
  | Ok n -> n
  | Error (_, msg) -> Alcotest.failf "assert: %s" msg

let expect_retract s text =
  match Session.retract_facts s text with
  | Ok n -> n
  | Error (_, msg) -> Alcotest.failf "retract: %s" msg

(* A probe fact shaped like the program's own EDB but absent from it:
   first base row whose values are all ints/symbols, ints shifted by a
   large prime, symbols replaced by a fresh one. *)
let probe_of_base base =
  let rec pick = function
    | [] -> None
    | p :: rest -> (
      match Database.facts_of base p with
      | row :: _
        when Array.for_all
               (function Value.Int _ | Value.Sym _ -> true | _ -> false)
               row ->
        let row' =
          Array.map
            (function
              | Value.Int n -> Value.Int (n + 7919)
              | Value.Sym _ -> Value.sym "zzivmprobe"
              | v -> v)
            row
        in
        Some (p, row')
      | _ -> pick rest)
  in
  pick (Database.preds base)

let engines = [ ("staged", Protocol.Staged, None); ("reference", Protocol.Reference, Some 42) ]

(* ---------------- exemplar sweep ---------------- *)

let test_exemplar_identity () =
  List.iter
    (fun name ->
      let src = source name in
      List.iter
        (fun (ename, engine, seed) ->
          let s, entry = mk_session src in
          match probe_of_base entry.Program_cache.base with
          | None -> Alcotest.failf "%s: no probe-able base fact" name
          | Some (pred, row) ->
            let probe = fact_text pred row in
            let pristine = run_bytes ~engine ?seed s in
            ignore (expect_assert s probe);
            let incr_bytes = run_bytes ~engine ?seed s in
            (* fresh session, same final fact base, from scratch *)
            let fresh, _ = mk_session src in
            ignore (expect_assert fresh probe);
            let scratch_bytes = run_bytes ~engine ?seed fresh in
            Alcotest.(check string)
              (Printf.sprintf "%s/%s: assert matches from-scratch" name ename)
              scratch_bytes incr_bytes;
            let c = s.Session.counters in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: second run was incremental or a counted fallback"
                 name ename)
              true
              (c.Session.runs_incremental + c.Session.ivm_fallbacks >= 1);
            (* retract the probe: byte-identical to the pristine model *)
            ignore (expect_retract s probe);
            let back = run_bytes ~engine ?seed s in
            Alcotest.(check string)
              (Printf.sprintf "%s/%s: retract restores the pristine model" name ename)
              pristine back)
        engines)
    exemplars

(* ---------------- stale derived state after retract ---------------- *)

let choice_src =
  "assign(X, Y) <- task(X), worker(Y), choice((X), (Y)).\n\
   busy(Y) <- assign(X, Y).\n\
   task(1). task(2).\n\
   worker(10). worker(20).\n"

let tc_src =
  "tc(X, Y) <- edge(X, Y).\n\
   tc(X, Z) <- tc(X, Y), edge(Y, Z).\n\
   edge(1, 2). edge(2, 3). edge(3, 4).\n"

let test_no_stale_state () =
  List.iter
    (fun (ename, engine, seed) ->
      List.iter
        (fun (pname, src, probe) ->
          let s, _ = mk_session src in
          let pristine = run_bytes ~engine ?seed s in
          ignore (expect_assert s probe);
          ignore (run_bytes ~engine ?seed s);
          ignore (expect_retract s probe);
          let back = run_bytes ~engine ?seed s in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: no stale derived facts survive retract" pname ename)
            pristine back;
          (* and the model equals a session that never asserted at all *)
          let never, _ = mk_session src in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: equals a never-asserted session" pname ename)
            (run_bytes ~engine ?seed never) back)
        [ ("choice", choice_src, "task(3)."); ("tc", tc_src, "edge(4, 5).") ])
    engines

(* On a recursive monotone program nothing can reach a choice stratum,
   so assert and retract must both be served by actual maintenance —
   the delta step on insert, DRed on delete — with zero fallbacks. *)
let test_genuinely_incremental () =
  let s, _ = mk_session tc_src in
  ignore (run_bytes ~engine:Protocol.Staged s);
  ignore (expect_assert s "edge(4, 5).");
  ignore (run_bytes ~engine:Protocol.Staged s);
  ignore (expect_retract s "edge(4, 5).");
  ignore (run_bytes ~engine:Protocol.Staged s);
  let c = s.Session.counters in
  Alcotest.(check int) "one full evaluation (the materializing run)" 1 c.Session.runs_full;
  Alcotest.(check int) "two incremental runs" 2 c.Session.runs_incremental;
  Alcotest.(check int) "no fallbacks" 0 c.Session.ivm_fallbacks;
  match s.Session.mat with
  | None -> Alcotest.fail "materialization must survive maintenance"
  | Some m ->
    let st = Ivm.stats m.Session.ivm in
    Alcotest.(check bool) "insert rode the delta step" true (st.Ivm.strata_stepped >= 1);
    Alcotest.(check bool) "retract went through DRed" true (st.Ivm.dred_overdeleted >= 1)

(* ---------------- multiset + counter consistency ---------------- *)

let test_multiset_counters () =
  let s, _ = mk_session tc_src in
  Alcotest.(check int) "batch of two new rows" 2 (expect_assert s "edge(7, 8). edge(8, 9).");
  Alcotest.(check int) "re-assert adds no row" 0 (expect_assert s "edge(7, 8).");
  let c = s.Session.counters in
  Alcotest.(check int) "three occurrences recorded" 3 c.Session.facts_asserted;
  (* a batch that over-retracts is refused atomically *)
  (match Session.retract_facts s "edge(8, 9). edge(8, 9)." with
  | Error (Protocol.Not_retractable, _) -> ()
  | _ -> Alcotest.fail "over-retract must be refused");
  (* a batch naming a program-owned fact is refused too *)
  (match Session.retract_facts s "edge(1, 2)." with
  | Error (Protocol.Not_retractable, _) -> ()
  | _ -> Alcotest.fail "program-owned fact must not be retractable");
  Alcotest.(check int) "refused retracts count nothing" 0 c.Session.facts_retracted;
  Alcotest.(check int) "refused retracts mutate nothing" 3 c.Session.facts_asserted;
  (* one occurrence down: the row stays visible *)
  Alcotest.(check int) "retract one occurrence" 1 (expect_retract s "edge(7, 8).");
  let m1 = run_bytes ~engine:Protocol.Staged s in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "doubly-asserted row survives one retract" true
    (contains m1 "edge(7, 8)");
  Alcotest.(check int) "second retract removes it" 1 (expect_retract s "edge(7, 8).");
  let m2 = run_bytes ~engine:Protocol.Staged s in
  Alcotest.(check bool) "row gone after final retract" false (contains m2 "edge(7, 8)");
  Alcotest.(check int) "retracted occurrences tallied" 2 c.Session.facts_retracted

(* ---------------- random interleavings (QCheck) ---------------- *)

let qc_src =
  "tc(X, Y) <- edge(X, Y).\n\
   tc(X, Z) <- tc(X, Y), edge(Y, Z).\n\
   node(X) <- edge(X, Y).\n\
   node(Y) <- edge(X, Y).\n\
   unreach(X, Y) <- node(X), node(Y), not tc(X, Y).\n\
   edge(0, 1). edge(1, 2).\n"

let base_edges = [ (0, 1); (1, 2) ]

type op = Assert of int * int | Retract of int * int | Run

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (map3
         (fun k a b ->
           match k mod 5 with
           | 0 | 1 -> Assert (a, b)
           | 2 | 3 -> Retract (a, b)
           | _ -> Run)
         (int_range 0 4) (int_range 0 4) (int_range 0 4)))

let edge_text a b = Printf.sprintf "edge(%d, %d)." a b

let replay ~engine ~seed ~jobs ops =
  let s, _ = mk_session qc_src in
  let counts = Hashtbl.create 16 in
  let count k = try Hashtbl.find counts k with Not_found -> 0 in
  List.iter
    (fun op ->
      match op with
      | Assert (a, b) ->
        ignore (expect_assert s (edge_text a b));
        Hashtbl.replace counts (a, b) (count (a, b) + 1)
      | Retract (a, b) -> (
        let valid = count (a, b) > 0 in
        match Session.retract_facts s (edge_text a b) with
        | Ok 1 when valid -> Hashtbl.replace counts (a, b) (count (a, b) - 1)
        | Ok n -> QCheck.Test.fail_reportf "retract: unexpected Ok %d (valid=%b)" n valid
        | Error (Protocol.Not_retractable, _) when not valid -> ()
        | Error (_, msg) -> QCheck.Test.fail_reportf "retract: %s (valid=%b)" msg valid)
      | Run -> ignore (run_bytes ~engine ?seed ~jobs s))
    ops;
  let final = run_bytes ~engine ?seed ~jobs s in
  (* a fresh session fed only the surviving occurrences, from scratch *)
  let fresh, _ = mk_session qc_src in
  Hashtbl.iter
    (fun (a, b) n ->
      for _ = 1 to n do
        ignore (expect_assert fresh (edge_text a b))
      done)
    counts;
  let scratch = run_bytes ~engine ?seed ~jobs fresh in
  if not (String.equal final scratch) then
    QCheck.Test.fail_reportf
      "interleaving diverged from from-scratch (engine=%s jobs=%d)\n-- incremental --\n%s\n-- scratch --\n%s"
      (match engine with Protocol.Staged -> "staged" | Protocol.Reference -> "reference")
      jobs final scratch;
  true

let qc_interleavings =
  QCheck.Test.make ~count:25 ~name:"interleavings equal from-scratch (both engines, jobs 1/2)"
    (QCheck.make gen_ops)
    (fun ops ->
      replay ~engine:Protocol.Staged ~seed:None ~jobs:1 ops
      && replay ~engine:Protocol.Staged ~seed:None ~jobs:2 ops
      && replay ~engine:Protocol.Reference ~seed:(Some 7) ~jobs:1 ops)

(* base edges are owned by the program, so a generated retract of one
   that was never re-asserted must be refused — make sure the
   generator actually produces that collision at least once. *)
let test_base_edge_refused () =
  let s, _ = mk_session qc_src in
  List.iter
    (fun (a, b) ->
      match Session.retract_facts s (edge_text a b) with
      | Error (Protocol.Not_retractable, _) -> ()
      | _ -> Alcotest.failf "retract of program edge(%d, %d) must be refused" a b)
    base_edges

let () =
  Alcotest.run "ivm"
    [ ( "byte-identity",
        [ Alcotest.test_case "13 exemplars, assert+retract, both engines" `Slow
            test_exemplar_identity ] );
      ( "retract hygiene",
        [ Alcotest.test_case "no stale derived state" `Quick test_no_stale_state;
          Alcotest.test_case "program-owned facts refused" `Quick test_base_edge_refused ] );
      ( "multiset",
        [ Alcotest.test_case "occurrences and counters" `Quick test_multiset_counters ] );
      ( "maintenance path",
        [ Alcotest.test_case "monotone changes never fall back" `Quick
            test_genuinely_incremental ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest qc_interleavings ] ) ]
