(* The Section-4 compile-time analysis: stage-argument inference and
   the stage-stratification verdicts on the paper's programs. *)

open Gbc

let analyze src = Stage.analyze (Parser.parse_program src)

let stage_args src =
  Stage.stage_positions (Parser.parse_program src)

let test_infer_next_head () =
  let args = stage_args "sp(nil, 0, 0). sp(X, C, I) <- next(I), p(X, C), least(C, I)." in
  Alcotest.(check (option (list int))) "sp stage arg" (Some [ 2 ]) (List.assoc_opt "sp" args)

let test_infer_propagation_same_var () =
  let args =
    stage_args
      "prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).\n\
       new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C)."
  in
  Alcotest.(check (option (list int))) "prm" (Some [ 3 ]) (List.assoc_opt "prm" args);
  Alcotest.(check (option (list int))) "new_g inherits" (Some [ 3 ])
    (List.assoc_opt "new_g" args)

let test_infer_propagation_through_max () =
  let args = stage_args (Huffman.source ^ "letter(a, 1).") in
  Alcotest.(check (option (list int))) "h" (Some [ 2 ]) (List.assoc_opt "h" args);
  Alcotest.(check (option (list int))) "feasible via max(J,K)" (Some [ 2 ])
    (List.assoc_opt "feasible" args);
  Alcotest.(check (option (list int))) "subtree" (Some [ 1 ]) (List.assoc_opt "subtree" args)

let test_infer_propagation_through_increment () =
  let args = stage_args Kruskal.source in
  Alcotest.(check (option (list int))) "stage via I = I1 + 1" (Some [ 0 ])
    (List.assoc_opt "stage" args)

let stratified src = (analyze src).Stage.stage_stratified

let test_paper_programs_accepted () =
  List.iter
    (fun (name, src) ->
      Alcotest.(check bool) (name ^ " stage-stratified") true (stratified src))
    [ ("sorting", Sorting.source);
      ("prim", Prim.source ~root:0);
      ("matching", Matching.source);
      ("huffman", Huffman.source);
      ("tsp", Tsp.source);
      ("dijkstra", Dijkstra.source ~root:0);
      ("example1", Assignment.example1_source);
      ("bi_st_c", Assignment.bi_st_c_source) ]

let test_prim_least_without_stage_key_flagged () =
  (* The paper's own remark: replacing least(C, I) by least(C, ())
     loses stage-stratification; we surface it as a note. *)
  let bad =
    "prm(nil, 0, 0, 0).\n\
     prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C), choice(Y, X).\n\
     new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C)."
  in
  let report = analyze bad in
  let notes = List.concat_map (fun c -> c.Stage.notes) report.Stage.cliques in
  Alcotest.(check bool) "note about missing stage key" true
    (List.exists (fun n -> String.length n > 0 && String.sub n 0 8 = "extremum") notes)

let test_unbounded_body_stage_rejected () =
  (* A next rule reading the stage predicate without bounding its stage
     argument is not stage-stratified. *)
  let bad =
    "p(nil, 0, 0).\n\
     p(X, C, I) <- next(I), q(X, C, J), least(C, I).\n\
     q(X, C, J) <- p(X, C, J), e(X, C)."
  in
  Alcotest.(check bool) "rejected" false (stratified bad)

let test_negated_occurrence_needs_strict_bound () =
  let good =
    "p(nil, 0, 0).\n\
     p(X, C, I) <- next(I), e(X, C), not q(X, J), J < I, least(C, I).\n\
     q(X, J) <- p(X, _, J)."
  in
  let bad =
    "p(nil, 0, 0).\n\
     p(X, C, I) <- next(I), e(X, C), not q(X, I), least(C, I).\n\
     q(X, J) <- p(X, _, J)."
  in
  Alcotest.(check bool) "strictly bounded negation ok" true (stratified good);
  Alcotest.(check bool) "same-stage negation rejected" false (stratified bad)

let test_kruskal_beyond_the_class () =
  (* The paper presents Kruskal as beyond strict stage-stratification;
     our formulation is likewise flagged (cur is read at the head's own
     stage). *)
  Alcotest.(check bool) "kruskal flagged" false (stratified Kruskal.source)

let test_tsp_accepted_with_staged_guard () =
  (* The stage-guarded visited(Y, L), L < I keeps the greedy TSP inside
     the strict class (a stage-less guard would not — and would not be
     a stable model of the rewriting either, see DESIGN.md). *)
  Alcotest.(check bool) "tsp accepted" true (stratified Tsp.source)

let test_nonrecursive_choice_clique_ok () =
  let report = analyze Assignment.example1_source in
  match report.Stage.cliques with
  | [ c ] ->
    Alcotest.(check bool) "choice kind" true (c.Stage.kind = Stage.Choice_clique);
    Alcotest.(check (list string)) "no issues" [] c.Stage.issues
  | _ -> Alcotest.fail "expected a single clique"

let test_flat_stratified_clique () =
  let report = analyze "p(X) <- e(X), not q(X). q(X) <- f(X)." in
  Alcotest.(check bool) "ok" true report.Stage.stage_stratified;
  let kinds = List.map (fun c -> c.Stage.kind) report.Stage.cliques in
  Alcotest.(check bool) "has a stratified clique" true
    (List.mem Stage.Flat_stratified kinds)

let test_negation_inside_recursion_rejected () =
  let report = analyze "p(X) <- e(X). p(X) <- q(X). q(X) <- f(X), not p(X)." in
  Alcotest.(check bool) "negation in recursive clique" false report.Stage.stage_stratified

let test_extremum_inside_recursion_rejected () =
  let report = analyze "p(X, C) <- e(X, C). p(X, C) <- p(X, C1), least(C1, X), C = C1 + 1." in
  Alcotest.(check bool) "extremum over recursion" false report.Stage.stage_stratified

let test_mixed_next_flat_rules_rejected () =
  let bad =
    "p(nil, 0).\n\
     p(X, I) <- next(I), e(X).\n\
     p(X, I) <- p(X, I), f(X)."
  in
  let report = analyze bad in
  let issues = List.concat_map (fun c -> c.Stage.issues) report.Stage.cliques in
  Alcotest.(check bool) "mix flagged" true
    (List.exists
       (fun i ->
         let has sub =
           let n = String.length sub in
           let rec go k = k + n <= String.length i && (String.sub i k n = sub || go (k + 1)) in
           go 0
         in
         has "mixes")
       issues)

let test_report_rendering () =
  let report = analyze (Prim.source ~root:0) in
  let rendered = Format.asprintf "%a" Stage.pp_report report in
  Alcotest.(check bool) "mentions verdict" true
    (String.length rendered > 0
    &&
    let has sub =
      let n = String.length sub in
      let rec go k = k + n <= String.length rendered && (String.sub rendered k n = sub || go (k + 1)) in
      go 0
    in
    has "stage-stratified: true")

let () =
  Alcotest.run "stage"
    [ ( "inference",
        [ Alcotest.test_case "next head" `Quick test_infer_next_head;
          Alcotest.test_case "propagation (same var)" `Quick test_infer_propagation_same_var;
          Alcotest.test_case "propagation (max)" `Quick test_infer_propagation_through_max;
          Alcotest.test_case "propagation (increment)" `Quick
            test_infer_propagation_through_increment ] );
      ( "verdicts",
        [ Alcotest.test_case "paper programs accepted" `Quick test_paper_programs_accepted;
          Alcotest.test_case "least without stage key noted" `Quick
            test_prim_least_without_stage_key_flagged;
          Alcotest.test_case "unbounded body stage" `Quick test_unbounded_body_stage_rejected;
          Alcotest.test_case "negation strictness" `Quick
            test_negated_occurrence_needs_strict_bound;
          Alcotest.test_case "kruskal beyond the class" `Quick test_kruskal_beyond_the_class;
          Alcotest.test_case "tsp staged guard accepted" `Quick
            test_tsp_accepted_with_staged_guard;
          Alcotest.test_case "non-recursive choice ok" `Quick test_nonrecursive_choice_clique_ok;
          Alcotest.test_case "flat stratified clique" `Quick test_flat_stratified_clique;
          Alcotest.test_case "negation in recursion" `Quick
            test_negation_inside_recursion_rejected;
          Alcotest.test_case "extremum in recursion" `Quick
            test_extremum_inside_recursion_rejected;
          Alcotest.test_case "mixed rule kinds" `Quick test_mixed_next_flat_rules_rejected;
          Alcotest.test_case "report rendering" `Quick test_report_rendering ] ) ]
