(* Herbrand values: ordering, hashing, printing. *)

open Gbc

let v = Alcotest.testable Value.pp Value.equal

let test_compare_total_order () =
  let values =
    [ Value.Int (-3); Value.Int 0; Value.Int 7; Value.sym "a"; Value.sym "b";
      Value.str "a"; Value.Tup []; Value.Tup [ Value.Int 1 ];
      Value.App ("t", [ Value.sym "a" ]) ]
  in
  (* compare is a strict total order on this list as given. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "a < b" true (Value.compare a b < 0);
      Alcotest.(check bool) "b > a" true (Value.compare b a > 0);
      check rest
    | _ -> ()
  in
  check values;
  List.iter (fun x -> Alcotest.(check int) "reflexive" 0 (Value.compare x x)) values

let test_int_order_is_numeric () =
  Alcotest.(check bool) "negative below positive" true
    (Value.compare (Value.Int (-5)) (Value.Int 3) < 0);
  Alcotest.(check bool) "10 above 9 (not lexicographic)" true
    (Value.compare (Value.Int 10) (Value.Int 9) > 0)

let test_tuple_order_lexicographic () =
  let t xs = Value.Tup (List.map (fun i -> Value.Int i) xs) in
  Alcotest.(check bool) "prefix first" true (Value.compare (t [ 1 ]) (t [ 1; 0 ]) < 0);
  Alcotest.(check bool) "componentwise" true (Value.compare (t [ 1; 2 ]) (t [ 1; 3 ]) < 0)

let test_app_order () =
  let a = Value.App ("s", [ Value.Int 9 ]) and b = Value.App ("t", [ Value.Int 0 ]) in
  Alcotest.(check bool) "constructor name first" true (Value.compare a b < 0)

let test_equal_hash_consistent () =
  let deep n =
    let rec go n acc = if n = 0 then acc else go (n - 1) (Value.App ("t", [ acc; Value.Int n ])) in
    go n (Value.sym "leaf")
  in
  let a = deep 50 and b = deep 50 in
  Alcotest.check v "structural equality" a b;
  Alcotest.(check int) "equal values hash equally" (Value.hash a) (Value.hash b)

let test_hash_sees_deep_differences () =
  (* Unlike Hashtbl.hash, Value.hash must not truncate deep terms. *)
  let rec deep n leaf =
    if n = 0 then leaf else Value.App ("t", [ deep (n - 1) leaf; Value.Int 0 ])
  in
  let a = deep 40 (Value.sym "x") and b = deep 40 (Value.sym "y") in
  Alcotest.(check bool) "distinct leaves, distinct hashes" true (Value.hash a <> Value.hash b)

let test_pp () =
  let check expected value = Alcotest.(check string) expected expected (Value.to_string value) in
  check "42" (Value.Int 42);
  check "nil" Value.nil;
  check "()" Value.unit;
  check "(1, a)" (Value.Tup [ Value.Int 1; Value.sym "a" ]);
  check "t(a, t(b, c))"
    (Value.App ("t", [ Value.sym "a"; Value.App ("t", [ Value.sym "b"; Value.sym "c" ]) ]));
  check "\"hi\"" (Value.str "hi")

let test_as_int () =
  Alcotest.(check int) "as_int" 7 (Value.as_int (Value.Int 7));
  Alcotest.check_raises "as_int on sym" (Invalid_argument "Value.as_int: a") (fun () ->
      ignore (Value.as_int (Value.sym "a")))

let test_tbl () =
  let tbl = Value.Tbl.create 4 in
  Value.Tbl.replace tbl (Value.Tup [ Value.Int 1; Value.sym "a" ]) 1;
  Value.Tbl.replace tbl (Value.Tup [ Value.Int 1; Value.sym "a" ]) 2;
  Alcotest.(check int) "replace dedups structurally" 1 (Value.Tbl.length tbl);
  Alcotest.(check (option int)) "lookup" (Some 2)
    (Value.Tbl.find_opt tbl (Value.Tup [ Value.Int 1; Value.sym "a" ]))

let prop_compare_antisymmetric =
  let gen_value =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n = 0 then
            oneof
              [ map (fun i -> Value.Int i) small_signed_int;
                map (fun s -> Value.sym ("s" ^ string_of_int s)) small_nat ]
          else
            frequency
              [ (2, map (fun i -> Value.Int i) small_signed_int);
                (1, map2 (fun a b -> Value.Tup [ a; b ]) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun a b -> Value.App ("t", [ a; b ])) (self (n / 2)) (self (n / 2))) ]))
  in
  let arb = QCheck.make ~print:Value.to_string gen_value in
  QCheck.Test.make ~name:"compare antisymmetric + equal consistent" ~count:500
    (QCheck.pair arb arb) (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0) = (c2 = 0)
      && (c1 > 0) = (c2 < 0)
      && Value.equal a b = (c1 = 0)
      && ((not (Value.equal a b)) || Value.hash a = Value.hash b))

let () =
  Alcotest.run "value"
    [ ( "order",
        [ Alcotest.test_case "total order across tags" `Quick test_compare_total_order;
          Alcotest.test_case "numeric ints" `Quick test_int_order_is_numeric;
          Alcotest.test_case "lexicographic tuples" `Quick test_tuple_order_lexicographic;
          Alcotest.test_case "app by name then args" `Quick test_app_order ] );
      ( "hash",
        [ Alcotest.test_case "equal => same hash (deep)" `Quick test_equal_hash_consistent;
          Alcotest.test_case "deep difference changes hash" `Quick test_hash_sees_deep_differences ] );
      ( "pp",
        [ Alcotest.test_case "rendering" `Quick test_pp;
          Alcotest.test_case "as_int" `Quick test_as_int;
          Alcotest.test_case "hashtable" `Quick test_tbl ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_compare_antisymmetric ]) ]
