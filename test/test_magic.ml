(* Magic-set rewriting: query equivalence and the work saved. *)

open Gbc

let tc_program n =
  let buf = Buffer.create 1024 in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "e(%d, %d). " i (i + 1))
  done;
  Buffer.add_string buf "tc(X, Y) <- e(X, Y). tc(X, Y) <- e(X, Z), tc(Z, Y).";
  Parser.parse_program (Buffer.contents buf)

let q src = match Parser.parse_rule ("query_goal <- " ^ src) with
  | { Ast.body = [ Ast.Pos a ]; _ } -> a
  | _ -> assert false

let sorted rows = List.sort compare (List.map Array.to_list rows)

let test_point_query_equivalence () =
  let prog = tc_program 30 in
  let query = q "tc(25, X)" in
  Alcotest.(check bool) "same answers" true
    (sorted (Magic.answers ~query prog) = sorted (Magic.answers_unoptimized ~query prog));
  Alcotest.(check int) "five successors" 5 (List.length (Magic.answers ~query prog))

let test_bound_bound_query () =
  let prog = tc_program 20 in
  let yes = q "tc(3, 17)" and no = q "tc(17, 3)" in
  Alcotest.(check int) "reachable" 1 (List.length (Magic.answers ~query:yes prog));
  Alcotest.(check int) "unreachable" 0 (List.length (Magic.answers ~query:no prog))

let test_free_query_degenerates_to_full () =
  let prog = tc_program 12 in
  let query = q "tc(X, Y)" in
  Alcotest.(check bool) "all pairs" true
    (sorted (Magic.answers ~query prog) = sorted (Magic.answers_unoptimized ~query prog))

let test_magic_saves_work () =
  let prog = tc_program 200 in
  let magic, full = Magic.facts_computed ~query:(q "tc(195, X)") prog in
  Alcotest.(check bool)
    (Printf.sprintf "magic (%d) derives far fewer facts than full (%d)" magic full)
    true
    (magic * 10 < full)

let test_same_generation_query () =
  let prog =
    Parser.parse_program
      "par(rr, r). par(r, a). par(r, b). par(a, c). par(a, d). par(b, e).\n\
       sg(X, X) <- par(_, X).\n\
       sg(X, Y) <- par(P, X), sg(P, Q), par(Q, Y)."
  in
  let query = q "sg(c, X)" in
  Alcotest.(check bool) "same answers" true
    (sorted (Magic.answers ~query prog) = sorted (Magic.answers_unoptimized ~query prog));
  (* c is same-generation with c, d and e. *)
  Alcotest.(check int) "three answers" 3 (List.length (Magic.answers ~query prog))

let test_multiple_adornments () =
  (* A program where one predicate is demanded under two binding
     patterns. *)
  let prog =
    Parser.parse_program
      "e(1, 2). e(2, 3). e(3, 4).\n\
       p(X, Y) <- e(X, Y).\n\
       p(X, Y) <- p(X, Z), p(Z, Y).\n\
       two_hop(X) <- p(1, X), p(X, 4)."
  in
  let query = q "two_hop(X)" in
  Alcotest.(check bool) "same answers" true
    (sorted (Magic.answers ~query prog) = sorted (Magic.answers_unoptimized ~query prog))

let test_constants_inside_rules () =
  let prog =
    Parser.parse_program
      "e(1, 2). e(2, 3).\n\
       from_one(Y) <- reach(1, Y).\n\
       reach(X, Y) <- e(X, Y).\n\
       reach(X, Y) <- reach(X, Z), e(Z, Y)."
  in
  let query = q "from_one(Y)" in
  Alcotest.(check int) "two reachable" 2 (List.length (Magic.answers ~query prog))

let test_rejects_non_positive () =
  let prog = Parser.parse_program "p(X) <- e(X), not q(X). q(1). e(1)." in
  (match Magic.rewrite ~query:(q "p(X)") prog with
  | Ok _ -> Alcotest.fail "accepted negation"
  | Error _ -> ());
  let prog = Parser.parse_program "p(X, C) <- e(X, C), least(C). e(1, 2)." in
  match Magic.rewrite ~query:(q "p(X, C)") prog with
  | Ok _ -> Alcotest.fail "accepted extremum"
  | Error _ -> ()

let test_rejects_edb_query () =
  let prog = tc_program 5 in
  match Magic.rewrite ~query:(q "e(1, X)") prog with
  | Ok _ -> Alcotest.fail "accepted an EDB query"
  | Error _ -> ()

let prop_magic_equivalence =
  QCheck.Test.make ~name:"magic = full on random graphs and queries" ~count:40
    QCheck.(pair (int_bound 100_000) (int_bound 14))
    (fun (seed, start) ->
      let g = Graph_gen.random_connected ~seed ~nodes:15 ~extra_edges:10 in
      let facts = Graph_gen.to_facts ~directed:true g in
      let prog =
        facts
        @ Parser.parse_program "tc(X, Y) <- g(X, Y, _). tc(X, Y) <- g(X, Z, _), tc(Z, Y)."
      in
      let query = q (Printf.sprintf "tc(%d, X)" start) in
      sorted (Magic.answers ~query prog) = sorted (Magic.answers_unoptimized ~query prog))

let () =
  Alcotest.run "magic"
    [ ( "rewriting",
        [ Alcotest.test_case "point query" `Quick test_point_query_equivalence;
          Alcotest.test_case "bound-bound" `Quick test_bound_bound_query;
          Alcotest.test_case "free query" `Quick test_free_query_degenerates_to_full;
          Alcotest.test_case "saves work" `Quick test_magic_saves_work;
          Alcotest.test_case "same generation" `Quick test_same_generation_query;
          Alcotest.test_case "multiple adornments" `Quick test_multiple_adornments;
          Alcotest.test_case "constants inside rules" `Quick test_constants_inside_rules;
          Alcotest.test_case "rejects non-positive" `Quick test_rejects_non_positive;
          Alcotest.test_case "rejects EDB queries" `Quick test_rejects_edb_query;
          QCheck_alcotest.to_alcotest prop_magic_equivalence ] ) ]
