(* The first-order rewritings of Sections 2-3: shapes and semantics. *)

open Gbc

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_expand_next_shape () =
  let prog = Parser.parse_program "sp(nil, 0, 0). sp(X, C, I) <- next(I), p(X, C), least(C, I)." in
  match Rewrite.expand_next prog with
  | [ _fact; rule ] ->
    Alcotest.(check bool) "no next goal left" false (Ast.has_next rule);
    (* Self atom + increment + the two stage FDs. *)
    let fds = Ast.choice_fds rule in
    Alcotest.(check int) "two choice goals" 2 (List.length fds);
    let self =
      List.exists
        (function Ast.Pos a -> a.Ast.pred = "sp" | _ -> false)
        rule.Ast.body
    in
    Alcotest.(check bool) "self atom present" true self;
    let incr =
      List.exists
        (function
          | Ast.Rel (Ast.Eq, Ast.Var "I", Ast.Binop (Ast.Add, _, Ast.Cst (Value.Int 1))) -> true
          | _ -> false)
        rule.Ast.body
    in
    Alcotest.(check bool) "I = I1 + 1" true incr
  | _ -> Alcotest.fail "unexpected expansion"

let test_expand_next_requires_head_stage () =
  let prog = Parser.parse_program "p(X) <- next(I), e(X)." in
  Alcotest.(check bool) "stage var must be in head" true
    (try
       ignore (Rewrite.expand_next prog);
       false
     with Invalid_argument _ -> true)

let test_expand_choice_shape () =
  let prog = Parser.parse_program Assignment.example1_source in
  let rewritten = Rewrite.expand_choice prog in
  (match rewritten with
  | [ positive; chosen ] ->
    Alcotest.(check string) "positive keeps head" "a_st" (Ast.head_pred positive);
    Alcotest.(check string) "chosen rule" (Rewrite.chosen_pred 0) (Ast.head_pred chosen);
    (* chosen rule: body + one negated chosen occurrence per FD. *)
    let negs = Ast.negative_body_atoms chosen in
    Alcotest.(check int) "two FD negations" 2 (List.length negs);
    List.iter
      (fun a -> Alcotest.(check string) "negations are on chosen" (Rewrite.chosen_pred 0) a.Ast.pred)
      negs
  | _ -> Alcotest.fail "expected two rules");
  (* Numbering is per choice rule. *)
  let two =
    Parser.parse_program
      "p(X) <- e(X), choice((), X). q(X) <- f(X), choice((), X)."
  in
  let rw = Rewrite.expand_choice two in
  let heads = List.map Ast.head_pred rw in
  Alcotest.(check bool) "chosen$0 and chosen$1" true
    (List.mem (Rewrite.chosen_pred 0) heads && List.mem (Rewrite.chosen_pred 1) heads)

let test_expand_extrema_shape () =
  let prog = Parser.parse_program "m(X, C) <- p(X, C), least(C, X)." in
  match Rewrite.expand_extrema prog with
  | [ main; witness ] ->
    Alcotest.(check bool) "no extremum left" false (Ast.has_extrema main);
    Alcotest.(check bool) "witness head" true
      (Rewrite.is_internal_pred (Ast.head_pred witness));
    (* The main rule negates the witness with a strict guard. *)
    let printed = Pretty.rule_to_string main in
    Alcotest.(check bool) "guarded negation" true (contains printed "not witness$");
    Alcotest.(check bool) "strict comparison" true (contains printed "<")
  | _ -> Alcotest.fail "expected two rules"

let test_most_uses_greater_guard () =
  let prog = Parser.parse_program "m(X, C) <- p(X, C), most(C, X)." in
  match Rewrite.expand_extrema prog with
  | [ main; _ ] ->
    Alcotest.(check bool) "uses >" true (contains (Pretty.rule_to_string main) ">")
  | _ -> Alcotest.fail "expected two rules"

let test_expand_all_is_flat () =
  List.iter
    (fun src ->
      let rewritten = Rewrite.expand_all (Parser.parse_program src) in
      List.iter
        (fun r ->
          Alcotest.(check bool) "flat" false
            (Ast.has_next r || Ast.has_choice r || Ast.has_extrema r))
        rewritten)
    [ Sorting.source; Prim.source ~root:0; Matching.source; Huffman.source; Kruskal.source;
      Tsp.source; Assignment.bi_st_c_source ]

let test_internal_pred_detection () =
  Alcotest.(check bool) "chosen$3" true (Rewrite.is_internal_pred "chosen$3");
  Alcotest.(check bool) "witness$0" true (Rewrite.is_internal_pred "witness$0");
  Alcotest.(check bool) "user pred" false (Rewrite.is_internal_pred "chosen");
  Alcotest.(check bool) "user pred 2" false (Rewrite.is_internal_pred "prm")

(* Semantics: the rewritten Example 1 has exactly the three stable
   models of the choice program (checked via the brute-force search
   over the rewriting), i.e. the rewriting defines choice. *)
let test_choice_rewriting_defines_choice () =
  let prog = Assignment.program Assignment.example1_source in
  let brute = Stable.stable_models_brute prog in
  Alcotest.(check int) "three stable models" 3 (List.length brute);
  let fixpoint = Choice_fixpoint.enumerate prog in
  Alcotest.(check int) "fixpoint finds the same number" 3 (List.length fixpoint);
  (* Same a_st extensions on both sides. *)
  let extension db =
    Database.facts_of db "a_st"
    |> List.map (fun row -> Value.to_string row.(0) ^ "/" ^ Value.to_string row.(1))
    |> List.sort compare
  in
  Alcotest.(check (list (list string))) "same assignments"
    (List.sort compare (List.map extension brute))
    (List.sort compare (List.map extension fixpoint))

(* bi_st_c (Section 2's combined example): exactly the paper's two
   stable models, and the least-within-choice interplay. *)
let test_bi_st_c_models () =
  let prog = Assignment.program Assignment.bi_st_c_source in
  let models = Choice_fixpoint.enumerate prog in
  let extensions =
    List.map
      (fun db ->
        Database.facts_of db "bi_st_c"
        |> List.map (fun row ->
               Printf.sprintf "%s/%s/%s" (Value.to_string row.(0)) (Value.to_string row.(1))
                 (Value.to_string row.(2)))
        |> List.sort compare)
      models
    |> List.sort compare
  in
  Alcotest.(check (list (list string))) "the paper's M1 and M2"
    [ [ "mark/engl/2" ]; [ "mark/math/2" ] ]
    extensions

let () =
  Alcotest.run "rewrite"
    [ ( "shapes",
        [ Alcotest.test_case "next expansion" `Quick test_expand_next_shape;
          Alcotest.test_case "next needs head stage" `Quick test_expand_next_requires_head_stage;
          Alcotest.test_case "choice expansion" `Quick test_expand_choice_shape;
          Alcotest.test_case "extrema expansion" `Quick test_expand_extrema_shape;
          Alcotest.test_case "most flips the guard" `Quick test_most_uses_greater_guard;
          Alcotest.test_case "expand_all is flat" `Quick test_expand_all_is_flat;
          Alcotest.test_case "internal predicates" `Quick test_internal_pred_detection ] );
      ( "semantics",
        [ Alcotest.test_case "choice = stable models of rewriting" `Quick
            test_choice_rewriting_defines_choice;
          Alcotest.test_case "bi_st_c two models" `Quick test_bi_st_c_models ] ) ]
