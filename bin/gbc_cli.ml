(* gbc — command-line front end: run choice programs, inspect the
   compile-time stage analysis, print rewritings, enumerate models,
   check stability, and run the built-in greedy demos.

   Exit codes: 0 on success, 2 on a structured diagnostic (syntax
   error, unsupported program, unreadable file, ...), 3 when a resource
   budget was exhausted and only a partial model was printed.  Usage
   errors keep cmdliner's defaults. *)

open Gbc
open Cmdliner

let err_exit = 2
let partial_exit = 3

(* Every user-facing failure is classified into Gbc_error and rendered
   as one line on stderr — no raw exception backtraces. *)
let handle f =
  match Gbc_error.protect f with
  | Ok () -> ()
  | Error e ->
    Format.eprintf "gbc: %s@." (Gbc_error.to_string e);
    exit err_exit

(* [-] reads the program from stdin, as in `gbc run -`. *)
let read_file path =
  if String.equal path "-" then In_channel.input_all stdin
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

(* Raises Sys_error / Lexer.Error / Parser.Error; callers run under
   [handle] (or classify explicitly, as the repl's :load does). *)
let parse_file path = Parser.parse_program (read_file path)

let nowhere = { Lexer.line = 0; col = 0 }

let print_model ?preds db =
  match preds with
  | None -> Format.printf "%a@?" Database.pp db
  | Some preds ->
    List.iter
      (fun pred ->
        List.iter
          (fun row ->
            Format.printf "%s(%s).@." pred
              (String.concat ", " (List.map Value.to_string (Array.to_list row))))
          (Database.facts_of db pred))
      preds

(* ---------------- common options ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Program file, or $(b,-) for stdin.")

let engine_conv = Arg.enum [ ("reference", `Reference); ("staged", `Staged) ]

let engine_arg =
  Arg.(value & opt engine_conv `Staged & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Evaluation engine: $(b,reference) (Choice Fixpoint) or $(b,staged) (Section-6 priority queues).")

let preds_arg =
  Arg.(value & opt (some (list string)) None & info [ "print" ] ~docv:"PREDS"
         ~doc:"Comma-separated predicates to print (default: whole model).")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
         ~doc:"Random gamma policy with this seed (reference engine only).")

(* ---------------- resource budgets ---------------- *)

let timeout_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC"
         ~doc:"Wall-clock budget in seconds; on exhaustion the partial model is printed and the exit code is 3.")

let max_facts_arg =
  Arg.(value & opt (some int) None & info [ "max-facts" ] ~docv:"N"
         ~doc:"Stop after more than N facts have been derived (loaded facts are not counted).")

let max_steps_arg =
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N"
         ~doc:"Stop after more than N fixpoint iterations / gamma firings.")

let max_candidates_arg =
  Arg.(value & opt (some int) None & info [ "max-candidates" ] ~docv:"N"
         ~doc:"Stop after more than N choice-candidate examinations.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Evaluation domains for data-parallel saturation (default 1: sequential).  \
               The model is byte-identical at any value.")

let compiled_arg =
  Arg.(value & flag & info [ "compiled" ]
         ~doc:"Evaluate with the ahead-of-time compiled closure chains: rule bodies are \
               cost-planned (join order by index selectivity) and compiled to straight-line \
               scans.  The model is byte-identical to the interpreter's.")

let limits_of ?timeout_s ?max_facts ?max_steps ?max_candidates () =
  match (timeout_s, max_facts, max_steps, max_candidates) with
  | None, None, None, None -> Limits.unlimited
  | _ -> Limits.create ?timeout_s ?max_facts ?max_steps ?max_candidates ()

let map_outcome f = function
  | Limits.Complete x -> Limits.Complete (f x)
  | Limits.Partial (x, d) -> Limits.Partial (f x, d)

(* Evaluate with telemetry and a governor threaded through the chosen
   engine; the outcome carries just the database. *)
let evaluate_with ?(jobs = 1) ?(compiled = false) ?db ~telemetry ~limits ~engine ~seed prog =
  match (engine, seed) with
  | `Reference, Some s ->
    map_outcome fst
      (Choice_fixpoint.run_governed ~policy:(Random s) ~telemetry ~limits ~jobs ~compiled ?db prog)
  | `Reference, None ->
    map_outcome fst (Choice_fixpoint.run_governed ~telemetry ~limits ~jobs ~compiled ?db prog)
  | `Staged, _ ->
    map_outcome fst (Stage_engine.run_governed ~telemetry ~limits ~jobs ~compiled ?db prog)

(* A fact base written by `gbc load` — decoded with the snapshot codec,
   so flat relations come back as cell-blob blits. *)
let read_db path =
  match Db_snapshot.read (read_file path) 0 with
  | db, _ -> db
  | exception Db_snapshot.Corrupt msg ->
    Format.eprintf "gbc: %s: corrupt fact base: %s@." path msg;
    exit err_exit

let db_arg =
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE"
         ~doc:"Seed the evaluation with a bulk-loaded fact base written by $(b,gbc load); \
               the program's own facts are added on top.")

(* ---------------- run ---------------- *)

let run_cmd =
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Collect engine telemetry and print the per-rule counter table to stderr.")
  in
  let run file engine preds seed stats jobs compiled db timeout_s max_facts max_steps
      max_candidates =
    handle (fun () ->
        let prog = parse_file file in
        let db = Option.map read_db db in
        let telemetry = if stats then Telemetry.create () else Telemetry.none in
        let limits = limits_of ?timeout_s ?max_facts ?max_steps ?max_candidates () in
        match
          evaluate_with ~jobs:(max 1 jobs) ~compiled ?db ~telemetry ~limits ~engine ~seed prog
        with
        | Limits.Complete db ->
          print_model ?preds db;
          if stats then Format.eprintf "%a@?" Telemetry.pp telemetry
        | Limits.Partial (db, d) ->
          print_model ?preds db;
          Format.eprintf "gbc: %a" Limits.pp_diagnostics d;
          Format.eprintf "gbc: the model above is partial@.";
          if stats then Format.eprintf "%a@?" Telemetry.pp telemetry;
          exit partial_exit)
  in
  let doc =
    "Evaluate a choice program and print one stable model.  $(b,--jobs) shards \
     flat-rule saturation across that many OCaml domains (same model, byte for byte); \
     $(b,--compiled) runs the cost-planned closure chains (same model again).  \
     With a budget ($(b,--timeout), $(b,--max-facts), $(b,--max-steps), \
     $(b,--max-candidates)) exhaustion prints the partial model, a diagnostic on \
     stderr, and exits with code 3."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ engine_arg $ preds_arg $ seed_arg $ stats_arg $ jobs_arg
          $ compiled_arg $ db_arg $ timeout_arg $ max_facts_arg $ max_steps_arg
          $ max_candidates_arg)

(* ---------------- load ---------------- *)

(* Bulk-load a fact base and write it as a snapshot file for
   `gbc run --db`.  Generated corpora go through the columnar
   generators and [Relation.add_ints], so the facts land in flat
   relations and the snapshot writes them as raw cell blobs — loading
   a million-edge graph never boxes a value. *)
let load_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output fact-base file.")
  in
  let gen_arg =
    Arg.(value & opt (some (enum [ ("power-law", `Power); ("road", `Road) ])) None
         & info [ "gen" ] ~docv:"KIND"
             ~doc:"Generate a graph corpus instead of reading $(i,FACTS): $(b,power-law) \
                   (hub-heavy connected multigraph) or $(b,road) (grid plus ~1% shortcuts).  \
                   Edges load as $(b,g(u, v, cost)), nodes as $(b,node(i)).")
  in
  let nodes_arg =
    Arg.(value & opt int 100_000 & info [ "nodes" ] ~docv:"N"
           ~doc:"Node count for $(b,--gen power-law).")
  in
  let edges_arg =
    Arg.(value & opt int 1_000_000 & info [ "edges" ] ~docv:"M"
           ~doc:"Edge count for $(b,--gen power-law).")
  in
  let width_arg =
    Arg.(value & opt int 1000 & info [ "width" ] ~docv:"W" ~doc:"Grid width for $(b,--gen road).")
  in
  let height_arg =
    Arg.(value & opt int 1000 & info [ "height" ] ~docv:"H"
           ~doc:"Grid height for $(b,--gen road).")
  in
  let gseed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let pred_arg =
    Arg.(value & opt string "g" & info [ "pred" ] ~docv:"NAME" ~doc:"Edge predicate name.")
  in
  let directed_arg =
    Arg.(value & flag & info [ "directed" ]
           ~doc:"Load each generated edge once instead of in both orientations.")
  in
  let facts_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FACTS"
           ~doc:"Fact file (surface syntax, or $(b,-) for stdin) when no $(b,--gen) is given.")
  in
  let run out gen nodes edges width height seed pred directed facts_file =
    handle (fun () ->
        let t0 = Unix.gettimeofday () in
        let db = Database.create () in
        (match (gen, facts_file) with
        | Some `Power, _ ->
          let g = Graph_gen.power_law ~seed ~nodes ~edges in
          Graph_gen.load_big ~pred ~directed db g;
          Graph_gen.load_big_nodes db g
        | Some `Road, _ ->
          let g = Graph_gen.road_network ~seed ~width ~height in
          Graph_gen.load_big ~pred ~directed db g;
          Graph_gen.load_big_nodes db g
        | None, Some file ->
          let prog = parse_file file in
          List.iter
            (fun c ->
              if not (Ast.is_fact c) then begin
                Format.eprintf "gbc: %s: only ground facts can be bulk-loaded@." file;
                exit err_exit
              end)
            prog;
          Database.load_facts db prog
        | None, None ->
          Format.eprintf "gbc: nothing to load: give a FACTS file or --gen@.";
          exit err_exit);
        let nfacts =
          List.fold_left
            (fun acc p -> acc + Relation.cardinal (Option.get (Database.find db p)))
            0 (Database.preds db)
        in
        let buf = Buffer.create (1 lsl 20) in
        Db_snapshot.write buf db;
        let data = Buffer.contents buf in
        let oc = open_out_bin out in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data);
        Format.printf "loaded %d fact(s) into %d predicate(s); wrote %d bytes to %s in %.2fs@."
          nfacts
          (List.length (Database.preds db))
          (String.length data) out
          (Unix.gettimeofday () -. t0))
  in
  let doc =
    "Bulk-load a fact base — from a fact file or a generated graph corpus — and write it \
     as a snapshot for $(b,gbc run --db).  Generated corpora use the columnar fast path \
     end to end: facts land in flat (unboxed) relations and the snapshot stores them as \
     raw cell blobs, so both this command and the later restore run without boxing."
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(const run $ out_arg $ gen_arg $ nodes_arg $ edges_arg $ width_arg $ height_arg
          $ gseed_arg $ pred_arg $ directed_arg $ facts_arg)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the counter snapshot as JSON instead of the table.")
  in
  let run file engine seed compiled json =
    handle (fun () ->
        let prog = parse_file file in
        let telemetry = Telemetry.create () in
        let _db =
          Telemetry.span telemetry "total" (fun () ->
              Limits.value
                (evaluate_with ~compiled ~telemetry ~limits:Limits.unlimited ~engine ~seed prog))
        in
        if json then print_string (Telemetry.to_json telemetry)
        else Format.printf "%a@?" Telemetry.pp telemetry)
  in
  let doc =
    "Evaluate a choice program with telemetry enabled and print the per-rule \
     counters (derivations, candidates, FD rejections, queue statistics), delta \
     sizes, per-stratum spans and totals."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ file_arg $ engine_arg $ seed_arg $ compiled_arg $ json_arg)

(* ---------------- check ---------------- *)

let check_cmd =
  let run file =
    handle (fun () ->
        let report = Stage.analyze (parse_file file) in
        Format.printf "%a@?" Stage.pp_report report)
  in
  let doc = "Compile-time analysis: cliques, stage arguments, stage-stratification." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ file_arg)

(* `analyze` is `check` under the name the daemon docs use; both read
   from stdin with [-]. *)
let analyze_cmd =
  let run file =
    handle (fun () ->
        let report = Stage.analyze (parse_file file) in
        Format.printf "%a@?" Stage.pp_report report)
  in
  let doc = "Alias of $(b,check): cliques, stage arguments, stage-stratification." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ file_arg)

(* ---------------- plan ---------------- *)

let plan_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the plan as JSON instead of the table.")
  in
  let run file json =
    handle (fun () ->
        let prog = parse_file file in
        (* Materialize the program's own facts so the planner sees real
           cardinalities and per-column distinct counts — the same
           statistics a --compiled run (and the daemon's program cache)
           plans against. *)
        let db = Database.create () in
        Database.load_facts db (List.filter Ast.is_fact prog);
        let plan = Plan.analyze ~db prog in
        if json then print_string (Plan.to_json plan)
        else Format.printf "@[<v>%a@]@?" Plan.pp plan)
  in
  let doc =
    "Print the cost-based join plan $(b,--compiled) evaluation would execute: per rule, \
     the planned scan order with estimated cardinalities and per-binding costs, and \
     whether reordering is enabled (flat programs) or gated off (choice / extrema / \
     next programs keep their source order)."
  in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const run $ file_arg $ json_arg)

(* ---------------- rewrite ---------------- *)

let rewrite_cmd =
  let run file =
    handle (fun () ->
        Format.printf "%a@." Pretty.pp_program (Rewrite.expand_all (parse_file file)))
  in
  let doc = "Print the first-order rewriting (next, choice, extrema expanded to negation)." in
  Cmd.v (Cmd.info "rewrite" ~doc) Term.(const run $ file_arg)

(* ---------------- models ---------------- *)

let models_cmd =
  let max_arg =
    Arg.(value & opt int 100 & info [ "max" ] ~docv:"N" ~doc:"Stop after N distinct models.")
  in
  let run file preds max_models =
    handle (fun () ->
        let models = Choice_fixpoint.enumerate ~max_models (parse_file file) in
        Format.printf "%d model(s)@." (List.length models);
        List.iteri
          (fun i db ->
            Format.printf "--- model %d ---@." (i + 1);
            print_model ?preds db)
          models)
  in
  let doc = "Enumerate all choice models (small programs only)." in
  Cmd.v (Cmd.info "models" ~doc) Term.(const run $ file_arg $ preds_arg $ max_arg)

(* ---------------- stable ---------------- *)

let stable_cmd =
  let run file engine =
    handle (fun () ->
        let prog = parse_file file in
        let db =
          match engine with
          | `Reference -> Choice_fixpoint.model prog
          | `Staged -> Stage_engine.model prog
        in
        let ok = Stable.is_stable prog db in
        Format.printf "stable: %b@." ok;
        if not ok then begin
          Format.eprintf "gbc: produced model is not stable@.";
          exit err_exit
        end)
  in
  let doc = "Evaluate and verify the result against the Gelfond-Lifschitz reduct (Theorem 1)." in
  Cmd.v (Cmd.info "stable" ~doc) Term.(const run $ file_arg $ engine_arg)

(* ---------------- wellfounded ---------------- *)

let wellfounded_cmd =
  let run file =
    handle (fun () ->
        let prog = parse_file file in
        match Wellfounded.compute (Rewrite.expand_all prog) with
        | t ->
          Format.printf "total: %b@." (Wellfounded.is_total t);
          let undef = Wellfounded.undefined t in
          Format.printf "%d undefined atom(s)@." (List.length undef);
          List.iter
            (fun (pred, row) ->
              Format.printf "  undefined: %s(%s)@." pred
                (String.concat ", " (List.map Value.to_string (Array.to_list row))))
            undef
        | exception Invalid_argument msg ->
          Format.eprintf "gbc: %s@." msg;
          exit err_exit)
  in
  let doc =
    "Well-founded model of the rewritten program (choices show up as undefined atoms)."
  in
  Cmd.v (Cmd.info "wellfounded" ~doc) Term.(const run $ file_arg)

(* ---------------- query ---------------- *)

let parse_goal text =
  match Parser.parse_rule ("query_goal <- " ^ text) with
  | { Ast.body = [ Ast.Pos a ]; _ } -> a
  | _ -> raise (Parser.Error ("expected a single positive atom", nowhere))

let query_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ATOM"
           ~doc:"Query atom, e.g. 'prm(X, Y, C, _)'.")
  in
  let magic_flag =
    Arg.(value & flag & info [ "magic" ]
           ~doc:"Use the magic-set rewriting (positive programs only).")
  in
  let run file engine q magic =
    handle (fun () ->
        let prog = parse_file file in
        let goal = parse_goal q in
        let vars = Ast.atom_vars goal in
        let print_rows rows =
          List.iter
            (fun row ->
              Format.printf "%s@."
                (String.concat ", "
                   (List.map2
                      (fun v x -> v ^ " = " ^ Value.to_string x)
                      vars row)))
            rows;
          Format.printf "%d answer(s)@." (List.length rows)
        in
        try
          if magic then begin
            let var_positions =
              List.mapi (fun i t -> (i, t)) goal.Ast.args
              |> List.filter_map (fun (i, t) ->
                     match t with Ast.Var _ -> Some i | _ -> None)
            in
            let rows = Magic.answers ~query:goal prog in
            print_rows
              (List.map (fun row -> List.map (fun i -> row.(i)) var_positions) rows)
          end
          else begin
            let db =
              match engine with
              | `Reference -> Choice_fixpoint.model prog
              | `Staged -> Stage_engine.model prog
            in
            let body = Eval.compile_body [ Ast.Pos goal ] in
            let outs = List.map (fun v -> Ast.Var v) vars in
            print_rows (Eval.solutions body db outs)
          end
        with Invalid_argument msg ->
          Format.eprintf "gbc: %s@." msg;
          exit err_exit)
  in
  let doc = "Evaluate the program, then answer a query atom against the model." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run $ file_arg $ engine_arg $ query_arg $ magic_flag)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let atom_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FACT"
           ~doc:"Ground fact to explain, e.g. 'prm(0, 3, 5, 2)'.")
  in
  let run file engine text =
    handle (fun () ->
        let prog = parse_file file in
        let goal = parse_goal text in
        try
          let row = Array.of_list (List.map Ast.term_to_value goal.Ast.args) in
          let db =
            match engine with
            | `Reference -> Choice_fixpoint.model prog
            | `Staged -> Stage_engine.model prog
          in
          match Explain.fact prog db goal.Ast.pred row with
          | Some node -> Format.printf "%a@?" Explain.pp node
          | None -> Format.printf "not in the model@."
        with Invalid_argument msg ->
          Format.eprintf "gbc: %s@." msg;
          exit err_exit)
  in
  let doc = "Evaluate the program and print a derivation of a ground fact." in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ file_arg $ engine_arg $ atom_arg)

(* ---------------- repl ---------------- *)

let repl_cmd =
  let run () =
    (* Ctrl-C at the prompt raises Sys.Break (caught by the loop);
       during evaluation the handler is swapped for one that only sets
       the cancellation token, so the engines stop at the next poll and
       the session survives with the program intact. *)
    Sys.catch_break true;
    let cancel = ref false in
    let with_interrupt f =
      cancel := false;
      let previous =
        Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> cancel := true))
      in
      Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint previous) f
    in
    let program = ref [] in
    let jobs = ref 1 in
    let compiled = ref false in
    let errors = ref 0 in
    let print_err msg =
      incr errors;
      Format.eprintf "error: %s@." msg
    in
    let evaluate () =
      let limits = Limits.create ~cancel () in
      let unwrap = function
        | Limits.Complete (db, _) -> Ok db
        | Limits.Partial ((_ : Database.t * _), d) ->
          Error ("query interrupted (" ^ Limits.violation_to_string d.Limits.violated ^ ")")
      in
      with_interrupt (fun () ->
          match Stage_engine.run_governed ~limits ~jobs:!jobs ~compiled:!compiled !program with
          | outcome -> unwrap outcome
          | exception Stage_engine.Not_compilable _ -> (
            match
              Choice_fixpoint.run_governed ~limits ~jobs:!jobs ~compiled:!compiled !program
            with
            | outcome -> unwrap outcome
            | exception Choice_fixpoint.Unsupported msg -> Error msg)
          | exception Choice_fixpoint.Unsupported msg -> Error msg)
    in
    let answer_query text =
      match Parser.parse_rule ("query_goal <- " ^ text) with
      | exception Parser.Error (msg, _) -> print_err msg
      | { Ast.body = [ Ast.Pos goal ]; _ } -> (
        match evaluate () with
        | Error msg -> print_err msg
        | Ok db ->
          let body = Eval.compile_body [ Ast.Pos goal ] in
          let vars = Ast.atom_vars goal in
          let rows = Eval.solutions body db (List.map (fun v -> Ast.Var v) vars) in
          if vars = [] then Format.printf "%b@." (rows <> [])
          else begin
            List.iter
              (fun row ->
                Format.printf "%s@."
                  (String.concat ", "
                     (List.map2 (fun v x -> v ^ " = " ^ Value.to_string x) vars row)))
              rows;
            Format.printf "%d answer(s)@." (List.length rows)
          end)
      | _ -> print_err "queries take a single positive atom"
    in
    let handle_command line =
      match String.split_on_char ' ' (String.trim line) with
      | [ ":quit" ] | [ ":q" ] -> raise Exit
      | [ ":clear" ] ->
        program := [];
        Format.printf "cleared@."
      | [ ":list" ] -> Format.printf "%a@." Pretty.pp_program !program
      | [ ":check" ] -> Format.printf "%a@?" Stage.pp_report (Stage.analyze !program)
      | [ ":model" ] -> (
        match evaluate () with
        | Ok db -> Format.printf "%a@?" Database.pp db
        | Error msg -> print_err msg)
      | [ ":models" ] -> (
        try
          let models = Choice_fixpoint.enumerate ~max_models:50 !program in
          Format.printf "%d model(s)@." (List.length models)
        with Choice_fixpoint.Unsupported msg -> print_err msg)
      | [ ":stable" ] -> (
        match evaluate () with
        | Ok db -> (
          try Format.printf "stable: %b@." (Stable.is_stable !program db)
          with Invalid_argument msg -> print_err msg)
        | Error msg -> print_err msg)
      | [ ":compiled" ] ->
        compiled := not !compiled;
        Format.printf "compiled: %b@." !compiled
      | [ ":jobs" ] -> Format.printf "jobs: %d@." !jobs
      | [ ":jobs"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
          jobs := n;
          Format.printf "jobs: %d@." n
        | _ -> print_err "usage: :jobs N  (N >= 1)")
      | [ ":load"; path ] -> (
        match Gbc_error.protect (fun () -> parse_file path) with
        | Ok prog ->
          program := !program @ prog;
          Format.printf "loaded %d clause(s)@." (List.length prog)
        | Error e -> print_err (Gbc_error.to_string e))
      | [ ":help" ] | [ ":h" ] ->
        Format.printf
          "clauses end with '.'; queries start with '?-'.@.commands: :model :models            :check :stable :list :load FILE :jobs N :compiled :clear :quit@.:compiled toggles the ahead-of-time compiled evaluation (same model, byte for byte).@.Ctrl-C interrupts a running query (the session and the program survive).@."
      | _ -> print_err ("unknown command: " ^ line)
    in
    Format.printf "gbc repl — :help for commands, :quit to leave@.";
    let buffer = Buffer.create 256 in
    (try
       while true do
         try
           Format.printf "%s @?" (if Buffer.length buffer = 0 then "gbc>" else "...>");
           let line = try input_line stdin with End_of_file -> raise Exit in
           let trimmed = String.trim line in
           if Buffer.length buffer = 0 && String.length trimmed > 0 && trimmed.[0] = ':' then
             handle_command trimmed
           else if String.length trimmed >= 2 && String.sub trimmed 0 2 = "?-" then begin
             let q = String.trim (String.sub trimmed 2 (String.length trimmed - 2)) in
             let q =
               if String.length q > 0 && q.[String.length q - 1] = '.' then
                 String.sub q 0 (String.length q - 1)
               else q
             in
             answer_query q
           end
           else begin
             Buffer.add_string buffer line;
             Buffer.add_char buffer '\n';
             if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '.' then begin
               let text = Buffer.contents buffer in
               Buffer.clear buffer;
               match Parser.parse_program text with
               | clauses -> program := !program @ clauses
               | exception Parser.Error (msg, _) -> print_err msg
             end
           end
         with Sys.Break ->
           Buffer.clear buffer;
           Format.printf "@.interrupted@."
       done
     with Exit -> ());
    if !errors = 0 then Ok ()
    else Error (`Msg (Printf.sprintf "%d error(s) during the session" !errors))
  in
  let doc = "Interactive session: enter clauses, ask '?-' queries, inspect analyses." in
  Cmd.v (Cmd.info "repl" ~doc) Term.(term_result (const run $ const ()))

(* ---------------- demo ---------------- *)

let demo_cmd =
  let algo_arg =
    let algos =
      [ ("prim", `Prim); ("kruskal", `Kruskal); ("sort", `Sort); ("matching", `Matching);
        ("tsp", `Tsp); ("huffman", `Huffman); ("dijkstra", `Dijkstra); ("scheduling", `Sched);
        ("vcover", `Vcover); ("setcover", `Setcover) ]
    in
    Arg.(required & pos 0 (some (enum algos)) None & info [] ~docv:"ALGO"
           ~doc:"One of: prim, kruskal, sort, matching, tsp, huffman, dijkstra, scheduling, vcover, setcover.")
  in
  let size_arg =
    Arg.(value & opt int 64 & info [ "size" ] ~docv:"N" ~doc:"Workload size (nodes/items).")
  in
  let dseed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")
  in
  let run algo size seed engine =
    let eng = match engine with `Reference -> Runner.Reference | `Staged -> Runner.Staged in
    let time f =
      let t0 = Sys.time () in
      let r = f () in
      (r, Sys.time () -. t0)
    in
    (match algo with
       | `Prim ->
         let g = Graph_gen.random_connected ~seed ~nodes:size ~extra_edges:(4 * size) in
         let r, dt = time (fun () -> Prim.run eng g) in
         Format.printf "prim: %d edges, weight %d (MST oracle %d), %.3fs@."
           (List.length r.Prim.edges) r.Prim.weight (Graph_gen.mst_weight g) dt
       | `Kruskal ->
         let g = Graph_gen.random_connected ~seed ~nodes:size ~extra_edges:(4 * size) in
         let r, dt = time (fun () -> Kruskal.run eng g) in
         Format.printf "kruskal: %d edges, weight %d (MST oracle %d), %.3fs@."
           (List.length r.Kruskal.edges) r.Kruskal.weight (Graph_gen.mst_weight g) dt
       | `Sort ->
         let rng = Rng.create seed in
         let items = List.init size (fun i -> (Printf.sprintf "x%d" i, Rng.int rng 100_000)) in
         let r, dt = time (fun () -> Sorting.run eng items) in
         Format.printf "sort: %d items, sorted %b, %.3fs@." (List.length r)
           (Sorting.is_sorted_permutation ~input:items r) dt
       | `Matching ->
         let rng = Rng.create seed in
         let arcs =
           List.init (4 * size) (fun i ->
               (Rng.int rng size, size + Rng.int rng size, (i * 7919 mod 104729) + 1))
           |> List.sort_uniq compare
         in
         let r, dt = time (fun () -> Matching.run eng arcs) in
         Format.printf "matching: %d arcs selected, cost %d, %.3fs@."
           (List.length r.Matching.arcs) r.Matching.cost dt
       | `Tsp ->
         let g = Graph_gen.complete ~seed ~nodes:size in
         let r, dt = time (fun () -> Tsp.run eng g) in
         Format.printf "tsp: chain of %d arcs, cost %d (procedural %d), %.3fs@."
           (List.length r.Tsp.chain) r.Tsp.cost (Tsp.procedural g).Tsp.cost dt
       | `Huffman ->
         let letters = Text_gen.zipf ~seed ~letters:size in
         let r, dt = time (fun () -> Huffman.run eng letters) in
         Format.printf "huffman: %d merges, cost %d (optimal %d), %.3fs@." r.Huffman.merges
           r.Huffman.internal_cost (Huffman.procedural_cost letters) dt
       | `Dijkstra ->
         let g = Graph_gen.random_connected ~seed ~nodes:size ~extra_edges:(4 * size) in
         let r, dt = time (fun () -> Dijkstra.run eng g) in
         Format.printf "dijkstra: %d nodes settled, %.3fs@." (List.length r) dt
       | `Sched ->
         let jobs = Interval_gen.random ~seed ~jobs:size ~horizon:(20 * size) in
         let r, dt = time (fun () -> Scheduling.run eng jobs) in
         Format.printf "scheduling: %d jobs selected of %d, %.3fs@." (List.length r) size dt
       | `Vcover ->
         let g = Graph_gen.random_connected ~seed ~nodes:size ~extra_edges:(2 * size) in
         let r, dt = time (fun () -> Vertex_cover.run eng g) in
         Format.printf "vertex cover: %d nodes cover %d edges (valid %b), %.3fs@."
           (List.length r.Vertex_cover.cover)
           (List.length g.Graph_gen.edges)
           (Vertex_cover.is_cover g r) dt
       | `Setcover ->
         let sets = Set_cover.random_instance ~seed ~sets:size ~universe:(4 * size) in
         let r, dt = time (fun () -> Set_cover.run eng sets) in
         Format.printf "set cover: %d sets cover %d/%d elements, %.3fs@." (List.length r)
           (Set_cover.coverage sets r) (Set_cover.coverable sets) dt);
    Ok ()
  in
  let doc = "Run a built-in greedy demo on a generated workload." in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(term_result (const run $ algo_arg $ size_arg $ dseed_arg $ engine_arg))

(* ---------------- serve ---------------- *)

let serve_cmd =
  Cmd.v (Cmd.info "serve" ~doc:Daemon_cli.serve_doc) Daemon_cli.serve_term

(* ---------------- router ---------------- *)

let router_cmd =
  Cmd.v (Cmd.info "router" ~doc:Router_cli.router_doc) Router_cli.router_term

(* ---------------- client ---------------- *)

(* A one-shot client for a running gbcd: connect, (optionally) load a
   program, perform one request, print the response, exit.  Exit codes
   mirror the local commands: 2 on a structured error frame, 3 when
   the server returned a partial model. *)

let chost_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")

let cport_arg =
  Arg.(value & opt int 7411 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Server TCP port.")

let cunix_arg =
  Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH"
         ~doc:"Connect over a Unix-domain socket instead of TCP.")

let ctimeout_arg =
  Arg.(value & opt (some float) None & info [ "connect-timeout" ] ~docv:"SEC"
         ~doc:"Give up on a connect attempt after SEC seconds.")

let cretries_arg =
  Arg.(value & opt int 5 & info [ "retries" ] ~docv:"N"
         ~doc:"Reconnect attempts (exponential backoff with jitter) before giving up; \
               a broken connection replays the request exactly-once.")

(* All client commands go through the resilient layer: reconnect with
   backoff, re-attach to the session, replay the interrupted request
   (mutations stamped with client-unique ids, so exactly-once). *)
let with_client ?deadline ?connect_timeout ?(retries = 5) host port unix_path f =
  let endpoint =
    match unix_path with
    | Some path -> Client.Uds path
    | None -> Client.Tcp { host; port }
  in
  let r = Client.resilient ?connect_timeout ?deadline ~retries endpoint in
  Fun.protect ~finally:(fun () -> Client.resilient_close r) (fun () ->
      try f r with
      | Client.Protocol_error msg ->
        Format.eprintf "gbc: protocol error: %s@." msg;
        exit err_exit
      | Client.Timeout ->
        Format.eprintf "gbc: deadline exceeded: the server did not answer in time@.";
        exit err_exit
      | Client.Session_lost msg ->
        Format.eprintf "gbc: session lost: %s@." msg;
        exit err_exit
      | Unix.Unix_error (e, _, _) ->
        Format.eprintf "gbc: cannot reach the server: %s@." (Unix.error_message e);
        exit err_exit)

let crpc = Client.resilient_rpc

let print_response = function
  | Protocol.Pong -> Format.printf "pong@."
  | Protocol.Bye -> Format.printf "bye (server draining)@."
  | Protocol.Loaded { clauses; cache_hit; digest; stage_stratified } ->
    Format.printf "loaded %d clause(s), digest %s, cache %s, stage-stratified %b@." clauses
      digest
      (if cache_hit then "hit" else "miss")
      stage_stratified
  | Protocol.Asserted { added } -> Format.printf "asserted %d new fact(s)@." added
  | Protocol.Retracted { removed } -> Format.printf "retracted %d fact(s)@." removed
  | Protocol.Model { complete; text; diagnostic } ->
    print_string text;
    if not complete then begin
      Option.iter (fun d -> Format.eprintf "gbc: %s@?" d) diagnostic;
      Format.eprintf "gbc: the model above is partial@.";
      exit partial_exit
    end
  | Protocol.Model_set { total; models } ->
    Format.printf "%d model(s)@." total;
    List.iteri
      (fun i m ->
        Format.printf "--- model %d ---@." (i + 1);
        print_string m)
      models
  | Protocol.Answers { complete; vars = _; rows } ->
    List.iter (fun r -> Format.printf "%s@." r) rows;
    Format.printf "%d answer(s)@." (List.length rows);
    if not complete then begin
      Format.eprintf "gbc: answers computed against a partial model@.";
      exit partial_exit
    end
  | Protocol.Attached { id } -> Format.printf "attached to session %d@." id
  | Protocol.Welcome { version } -> Format.printf "welcome, protocol v%d@." version
  | Protocol.Stats_json json -> Format.printf "%s@." json
  | Protocol.Error { code; message } ->
    Format.eprintf "gbc: %s: %s@." (Protocol.error_code_to_string code) message;
    exit err_exit

let load_or_die c file =
  match crpc c (Protocol.Load (read_file file)) with
  | Protocol.Loaded _ as r -> r
  | Protocol.Error _ as r ->
    print_response r;
    assert false
  | r -> r

let budget_of ?timeout_s ?max_facts ?max_steps ?max_candidates ?jobs () =
  { Protocol.timeout_ms = Option.map (fun s -> int_of_float (s *. 1000.0)) timeout_s;
    max_facts;
    max_steps;
    max_candidates;
    jobs }

(* The client's --jobs is a request; the server clamps it to its own
   --max-jobs, so omitted means "whatever the server's default is"
   (sequential). *)
let cjobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Request N evaluation domains; the server grants at most its $(b,--max-jobs).")

let wire_engine = function `Staged -> Protocol.Staged | `Reference -> Protocol.Reference

let client_ping_cmd =
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Fail (exit code 2) unless the pong arrives within SEC seconds — \
                 distinguishes a hung daemon from a healthy one.")
  in
  let run host port unix ctimeout retries deadline =
    with_client ?deadline ?connect_timeout:ctimeout ~retries host port unix (fun c ->
        print_response (crpc c Protocol.Ping))
  in
  Cmd.v (Cmd.info "ping" ~doc:"Round-trip a ping frame.")
    Term.(const run $ chost_arg $ cport_arg $ cunix_arg $ ctimeout_arg $ cretries_arg
          $ deadline_arg)

let client_run_cmd =
  let facts_arg =
    Arg.(value & opt (some string) None & info [ "assert" ] ~docv:"FACTS"
           ~doc:"Ground facts (surface syntax) asserted into the session before running.")
  in
  let run host port unix ctimeout retries file engine preds seed facts jobs timeout_s
      max_facts max_steps max_candidates =
    with_client ?connect_timeout:ctimeout ~retries host port unix (fun c ->
        ignore (load_or_die c file);
        Option.iter
          (fun fs ->
            match crpc c (Protocol.Assert_facts { text = fs; id = None }) with
            | Protocol.Asserted _ -> ()
            | r -> print_response r)
          facts;
        print_response
          (crpc c
             (Protocol.Run
                { engine = wire_engine engine;
                  seed;
                  preds;
                  budget = budget_of ?timeout_s ?max_facts ?max_steps ?max_candidates ?jobs () })))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Load FILE (or stdin with $(b,-)) into a server session and print one stable model.")
    Term.(const run $ chost_arg $ cport_arg $ cunix_arg $ ctimeout_arg $ cretries_arg
          $ file_arg $ engine_arg $ preds_arg $ seed_arg $ facts_arg $ cjobs_arg $ timeout_arg
          $ max_facts_arg $ max_steps_arg $ max_candidates_arg)

let client_models_cmd =
  let max_arg =
    Arg.(value & opt int 100 & info [ "max" ] ~docv:"N" ~doc:"Stop after N distinct models.")
  in
  let run host port unix ctimeout retries file preds max_models =
    with_client ?connect_timeout:ctimeout ~retries host port unix (fun c ->
        ignore (load_or_die c file);
        print_response (crpc c (Protocol.Enumerate { max_models; preds })))
  in
  Cmd.v (Cmd.info "models" ~doc:"Enumerate the choice models of FILE on the server.")
    Term.(const run $ chost_arg $ cport_arg $ cunix_arg $ ctimeout_arg $ cretries_arg
          $ file_arg $ preds_arg $ max_arg)

let client_query_cmd =
  let atom_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ATOM"
           ~doc:"Query atom, e.g. 'prm(X, Y, C, _)'.")
  in
  let run host port unix ctimeout retries file engine text jobs timeout_s max_facts max_steps
      max_candidates =
    with_client ?connect_timeout:ctimeout ~retries host port unix (fun c ->
        ignore (load_or_die c file);
        print_response
          (crpc c
             (Protocol.Query
                { engine = wire_engine engine;
                  text;
                  budget = budget_of ?timeout_s ?max_facts ?max_steps ?max_candidates ?jobs () })))
  in
  Cmd.v (Cmd.info "query" ~doc:"Load FILE on the server and answer one query atom.")
    Term.(const run $ chost_arg $ cport_arg $ cunix_arg $ ctimeout_arg $ cretries_arg
          $ file_arg $ engine_arg $ atom_arg $ cjobs_arg $ timeout_arg $ max_facts_arg
          $ max_steps_arg $ max_candidates_arg)

let client_stats_cmd =
  let run host port unix ctimeout retries =
    with_client ?connect_timeout:ctimeout ~retries host port unix (fun c ->
        print_response (crpc c Protocol.Stats))
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print the server's aggregated telemetry as JSON.")
    Term.(const run $ chost_arg $ cport_arg $ cunix_arg $ ctimeout_arg $ cretries_arg)

let client_shutdown_cmd =
  let run host port unix ctimeout retries =
    with_client ?connect_timeout:ctimeout ~retries host port unix (fun c ->
        print_response (crpc c Protocol.Shutdown))
  in
  Cmd.v (Cmd.info "shutdown" ~doc:"Ask the server to drain and exit gracefully.")
    Term.(const run $ chost_arg $ cport_arg $ cunix_arg $ ctimeout_arg $ cretries_arg)

let client_cmd =
  let doc = "Talk to a running gbcd (see $(b,gbc serve))." in
  Cmd.group (Cmd.info "client" ~doc)
    [ client_ping_cmd; client_run_cmd; client_models_cmd; client_query_cmd;
      client_stats_cmd; client_shutdown_cmd ]

let () =
  let doc = "Greedy by Choice: Datalog with choice, least/most and next (PODS'92)." in
  let info = Cmd.info "gbc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; load_cmd; profile_cmd; check_cmd; analyze_cmd; plan_cmd; rewrite_cmd; models_cmd; stable_cmd;
            wellfounded_cmd; query_cmd; explain_cmd; repl_cmd; demo_cmd; serve_cmd; router_cmd;
            client_cmd ]))
