(* The router command, shared between `gbc router` and the standalone
   `gbc-router` binary: parse listeners and backend endpoints, build
   the consistent-hash ring, and proxy until drained.

   SIGINT/SIGTERM begin a graceful drain (stop accepting, let
   in-flight backend replies come home, flush, close); the backends
   are left running — their lifetime belongs to whoever spawned them
   (`gbc serve --fleet` owns its own). *)

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind the TCP listener on.")

let port_arg =
  Arg.(value & opt int 7412 & info [ "port"; "p" ] ~docv:"PORT"
         ~doc:"TCP port (0 picks a free one; the bound port is printed).")

let no_tcp_arg =
  Arg.(value & flag & info [ "no-tcp" ] ~doc:"Do not open a TCP listener (use with $(b,--unix)).")

let unix_arg =
  Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH"
         ~doc:"Also listen on a Unix-domain socket at PATH.")

let backend_conv =
  let parse s =
    let uds p = Ok (Gbc.Client.Uds p) in
    if String.length s >= 5 && String.sub s 0 5 = "unix:" then
      uds (String.sub s 5 (String.length s - 5))
    else if String.length s > 0 && s.[0] = '/' then uds s
    else
      match String.rindex_opt s ':' with
      | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some port when host <> "" -> Ok (Gbc.Client.Tcp { host; port })
        | _ -> Error (`Msg (Printf.sprintf "bad backend %S (want HOST:PORT)" s)))
      | None ->
        Error (`Msg (Printf.sprintf "bad backend %S (want HOST:PORT or a socket path)" s))
  in
  let print ppf = function
    | Gbc.Client.Tcp { host; port } -> Format.fprintf ppf "%s:%d" host port
    | Gbc.Client.Uds path -> Format.fprintf ppf "unix:%s" path
  in
  Arg.conv (parse, print)

let backends_arg =
  Arg.(value & opt_all backend_conv [] & info [ "backend"; "b" ] ~docv:"ADDR"
         ~doc:"A gbcd backend: $(b,HOST:PORT), an absolute socket path, or \
               $(b,unix:PATH).  Repeatable; at least one is required.")

let vnodes_arg =
  Arg.(value & opt int 100 & info [ "vnodes" ] ~docv:"N"
         ~doc:"Virtual nodes per backend on the hash ring.")

let max_frame_arg =
  Arg.(value & opt int Gbc.Protocol.max_frame_default & info [ "max-frame" ] ~docv:"BYTES"
         ~doc:"Largest accepted frame payload.")

let connect_timeout_arg =
  Arg.(value & opt float 5.0 & info [ "connect-timeout" ] ~docv:"SEC"
         ~doc:"Give up on a backend connect attempt after SEC seconds; 0 disables.")

let route host port no_tcp unix_path backends vnodes max_frame connect_timeout =
  if backends = [] then begin
    Format.eprintf "gbc-router: no backends (give at least one --backend)@.";
    exit 2
  end;
  let cfg =
    { Gbc.Router.host;
      port = (if no_tcp then None else Some port);
      unix_path;
      backlog = 64;
      backends;
      vnodes = max 1 vnodes;
      max_frame;
      connect_timeout = (if connect_timeout > 0.0 then Some connect_timeout else None) }
  in
  match Gbc.Router.create cfg with
  | Error msg ->
    Format.eprintf "gbc-router: %s@." msg;
    exit 2
  | Ok rt ->
    let drain _ = Gbc.Router.shutdown rt in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain) with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle drain) with Invalid_argument _ -> ());
    Option.iter
      (fun p -> Format.printf "gbc-router: listening on %s:%d@." cfg.Gbc.Router.host p)
      (Gbc.Router.port rt);
    Option.iter (fun p -> Format.printf "gbc-router: listening on %s@." p) unix_path;
    Format.printf "gbc-router: %d backend(s), %d virtual node(s) each@?"
      (List.length backends) cfg.Gbc.Router.vnodes;
    Gbc.Router.run rt;
    Format.printf "gbc-router: drained, goodbye@."

let router_term =
  Term.(const route $ host_arg $ port_arg $ no_tcp_arg $ unix_arg $ backends_arg
        $ vnodes_arg $ max_frame_arg $ connect_timeout_arg)

let router_doc =
  "Route clients across a fleet of gbcd backends: new sessions are placed by \
   consistent hashing (a ring with virtual nodes), composite session ids route \
   reconnecting clients back to the backend that owns their session, and frames — \
   protocol v1 or pipelined v2 — are forwarded byte-identically.  The router \
   answers $(b,hello), $(b,stats) and $(b,shutdown) itself; requests in flight on \
   a dying backend come back as structured server-error frames."
