(* gbcd — the standalone daemon entry point.  `gbcd --port 7411` is
   `gbc serve --port 7411`; both share Daemon_cli. *)

let () =
  let open Cmdliner in
  let info = Cmd.info "gbcd" ~version:"1.0.0" ~doc:Daemon_cli.serve_doc in
  exit (Cmd.eval (Cmd.v info Daemon_cli.serve_term))
