(* The serve command, shared between `gbc serve` and the standalone
   `gbcd` binary: parse listener/worker/governor options, bind, print
   where we are listening, and run until drained.

   SIGINT/SIGTERM begin a graceful drain (finish in-flight requests,
   flush, close) rather than killing the process. *)

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind the TCP listener on.")

let port_arg =
  Arg.(value & opt int 7411 & info [ "port"; "p" ] ~docv:"PORT"
         ~doc:"TCP port (0 picks a free one; the bound port is printed).")

let no_tcp_arg =
  Arg.(value & flag & info [ "no-tcp" ] ~doc:"Do not open a TCP listener (use with $(b,--unix)).")

let unix_arg =
  Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH"
         ~doc:"Also listen on a Unix-domain socket at PATH.")

let workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
         ~doc:"Worker domains evaluating requests (at least 1).")

let default_timeout_arg =
  Arg.(value & opt float 30.0 & info [ "default-timeout" ] ~docv:"SEC"
         ~doc:"Per-request wall-clock cap; 0 disables.  Clients can only tighten it.")

let smax name doc =
  Arg.(value & opt (some int) None & info [ name ] ~docv:"N" ~doc)

let max_facts_arg = smax "max-facts" "Server-side per-request cap on derived facts."
let max_steps_arg = smax "max-steps" "Server-side per-request cap on fixpoint steps / gamma firings."
let max_candidates_arg = smax "max-candidates" "Server-side per-request cap on choice-candidate examinations."

let max_jobs_arg =
  Arg.(value & opt int 1 & info [ "max-jobs" ] ~docv:"N"
         ~doc:"Cap on evaluation domains granted per request; a client's requested \
               $(b,jobs) is clamped to this (default 1: sequential).")

let max_frame_arg =
  Arg.(value & opt int Gbc.Protocol.max_frame_default & info [ "max-frame" ] ~docv:"BYTES"
         ~doc:"Largest accepted frame payload.")

let cache_arg =
  Arg.(value & opt int 64 & info [ "cache-capacity" ] ~docv:"N"
         ~doc:"Compiled-program cache entries (LRU beyond that).")

let compiled_arg =
  Arg.(value & flag & info [ "compiled" ]
         ~doc:"Evaluate requests with the ahead-of-time compiled closure chains \
               (cost-planned join orders cached per program).  Models are \
               byte-identical to the interpreter's.")

let data_dir_arg =
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
         ~doc:"Make sessions durable under DIR: mutations are write-ahead logged and \
               periodically snapshotted; a restart recovers every session (crash-safe) \
               and clients reclaim theirs by id.  Omitted: sessions are ephemeral.")

let fsync_arg =
  Arg.(value & opt string "batch:16" & info [ "fsync" ] ~docv:"POLICY"
         ~doc:"WAL fsync policy: $(b,always), $(b,never) or $(b,batch:N) (sync every Nth \
               record; a process crash loses nothing either way, an OS crash at most N \
               acknowledged records).")

let snapshot_every_arg =
  Arg.(value & opt int 64 & info [ "snapshot-every" ] ~docv:"N"
         ~doc:"Collapse a session's WAL into a binary snapshot every N records \
               (0 disables snapshotting).")

let idle_timeout_arg =
  Arg.(value & opt float 0.0 & info [ "idle-timeout" ] ~docv:"SEC"
         ~doc:"Reap connections and detached sessions idle longer than SEC (closing \
               their WAL descriptors; durable state stays reclaimable).  0 disables.")

let fleet_arg =
  Arg.(value & opt int 0 & info [ "fleet" ] ~docv:"N"
         ~doc:"Scale out: spawn N backend daemons (each with its own worker pool, on \
               private Unix sockets) and serve the given listeners through a \
               consistent-hash router in this process.  Sessions are spread across \
               the backends; with $(b,--data-dir) each backend persists under its own \
               subdirectory.  0 (the default) serves directly, single-process.")

(* Scale-out mode: this process becomes the router; the evaluation
   happens in [fleet] child daemons re-exec'd from our own binary,
   each listening on a private Unix socket.  The router owns the
   children's lifetime — when it finishes draining they are SIGTERMed
   (their own graceful drain) and reaped. *)
let serve_fleet host port no_tcp unix_path workers default_timeout max_facts max_steps
    max_candidates max_jobs max_frame cache_capacity compiled data_dir fsync
    snapshot_every idle_timeout fleet =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gbc-fleet-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sock i = Filename.concat dir (Printf.sprintf "backend-%d.sock" i) in
  let child_args i =
    let opt name v = match v with Some x -> [ name; string_of_int x ] | None -> [] in
    [ "--no-tcp"; "--unix"; sock i;
      "--workers"; string_of_int (max 1 workers);
      "--default-timeout"; Printf.sprintf "%g" default_timeout;
      "--max-jobs"; string_of_int (max 1 max_jobs);
      "--max-frame"; string_of_int max_frame;
      "--cache-capacity"; string_of_int cache_capacity;
      "--fsync"; fsync;
      "--snapshot-every"; string_of_int (max 0 snapshot_every);
      "--idle-timeout"; Printf.sprintf "%g" idle_timeout ]
    @ (if compiled then [ "--compiled" ] else [])
    @ opt "--max-facts" max_facts
    @ opt "--max-steps" max_steps
    @ opt "--max-candidates" max_candidates
    @ (match data_dir with
      | Some d -> [ "--data-dir"; Filename.concat d (Printf.sprintf "backend-%d" i) ]
      | None -> [])
  in
  let exe = Sys.executable_name in
  (* re-exec ourselves: under `gbc serve` the child needs the
     subcommand back; under standalone `gbcd` it must not appear *)
  let prefix = if Array.length Sys.argv > 1 && Sys.argv.(1) = "serve" then [ "serve" ] else [] in
  let spawn i =
    Unix.create_process exe
      (Array.of_list ((exe :: prefix) @ child_args i))
      Unix.stdin Unix.stdout Unix.stderr
  in
  let pids = List.init fleet spawn in
  let reap () =
    List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) pids;
    List.iter (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()) pids;
    List.iter (fun i -> try Sys.remove (sock i) with Sys_error _ -> ()) (List.init fleet Fun.id);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  (* wait until every backend accepts on its socket *)
  let wait_backend i =
    let deadline = Unix.gettimeofday () +. 15.0 in
    let up () =
      Sys.file_exists (sock i)
      &&
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | fd ->
        let ok = try Unix.connect fd (Unix.ADDR_UNIX (sock i)); true with Unix.Unix_error _ -> false in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ok
      | exception Unix.Unix_error _ -> false
    in
    let rec go () =
      if up () then ()
      else if Unix.gettimeofday () > deadline then begin
        Format.eprintf "gbcd: backend %d did not come up on %s@." i (sock i);
        reap ();
        exit 2
      end
      else begin
        Unix.sleepf 0.05;
        go ()
      end
    in
    go ()
  in
  List.iter wait_backend (List.init fleet Fun.id);
  let rcfg =
    { Gbc.Router.host;
      port = (if no_tcp then None else Some port);
      unix_path;
      backlog = 64;
      backends = List.init fleet (fun i -> Gbc.Client.Uds (sock i));
      vnodes = 100;
      max_frame;
      connect_timeout = Some 5.0 }
  in
  match Gbc.Router.create rcfg with
  | Error msg ->
    Format.eprintf "gbcd: %s@." msg;
    reap ();
    exit 2
  | Ok rt ->
    let drain _ = Gbc.Router.shutdown rt in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain) with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle drain) with Invalid_argument _ -> ());
    Format.printf "gbcd: fleet of %d backend(s) under %s@." fleet dir;
    Option.iter
      (fun p -> Format.printf "gbcd: routing on %s:%d@." host p)
      (Gbc.Router.port rt);
    Option.iter (fun p -> Format.printf "gbcd: routing on %s@?" p) unix_path;
    Gbc.Router.run rt;
    reap ();
    Format.printf "gbcd: fleet drained, goodbye@."

let serve host port no_tcp unix_path workers default_timeout max_facts max_steps
    max_candidates max_jobs max_frame cache_capacity compiled data_dir fsync
    snapshot_every idle_timeout fleet =
  if fleet > 0 then
    serve_fleet host port no_tcp unix_path workers default_timeout max_facts max_steps
      max_candidates max_jobs max_frame cache_capacity compiled data_dir fsync
      snapshot_every idle_timeout fleet
  else
  let fsync =
    match Gbc.Wal.fsync_policy_of_string fsync with
    | Ok p -> p
    | Error msg ->
      Format.eprintf "gbcd: %s@." msg;
      exit 2
  in
  let cfg =
    { Gbc.Server.host;
      port = (if no_tcp then None else Some port);
      unix_path;
      backlog = 64;
      workers = max 1 workers;
      default_timeout_s = (if default_timeout > 0.0 then Some default_timeout else None);
      max_facts;
      max_steps;
      max_candidates;
      max_jobs = max 1 max_jobs;
      max_frame;
      cache_capacity;
      compiled;
      data_dir;
      fsync;
      snapshot_every = max 0 snapshot_every;
      idle_timeout_s = (if idle_timeout > 0.0 then Some idle_timeout else None);
      worker_fault =
        (* undocumented, tests only: kill the worker handling the k-th request *)
        Option.bind (Sys.getenv_opt "GBCD_WORKER_FAULT") int_of_string_opt }
  in
  match Gbc.Server.create cfg with
  | Error msg ->
    Format.eprintf "gbcd: %s@." msg;
    exit 2
  | Ok srv ->
    let drain _ = Gbc.Server.shutdown srv in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain) with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle drain) with Invalid_argument _ -> ());
    Option.iter
      (fun p -> Format.printf "gbcd: listening on %s:%d@." cfg.Gbc.Server.host p)
      (Gbc.Server.port srv);
    Option.iter (fun p -> Format.printf "gbcd: listening on %s@." p) unix_path;
    Option.iter
      (fun d ->
        Format.printf "gbcd: durable under %s (fsync %s, snapshot every %d)@." d
          (Gbc.Wal.fsync_policy_to_string cfg.Gbc.Server.fsync)
          cfg.Gbc.Server.snapshot_every)
      data_dir;
    Format.printf "gbcd: %d worker(s), default timeout %s@?"
      cfg.Gbc.Server.workers
      (match cfg.Gbc.Server.default_timeout_s with
       | Some s -> Printf.sprintf "%gs" s
       | None -> "none");
    Gbc.Server.run srv;
    Format.printf "gbcd: drained, goodbye@."

let serve_term =
  Term.(const serve $ host_arg $ port_arg $ no_tcp_arg $ unix_arg $ workers_arg
        $ default_timeout_arg $ max_facts_arg $ max_steps_arg $ max_candidates_arg
        $ max_jobs_arg $ max_frame_arg $ cache_arg $ compiled_arg $ data_dir_arg
        $ fsync_arg $ snapshot_every_arg $ idle_timeout_arg $ fleet_arg)

let serve_doc =
  "Serve programs over the gbcd wire protocol: a worker pool of OCaml domains, \
   per-connection sessions with copy-on-write isolation, a compiled-program cache, \
   and a per-request resource governor.  With $(b,--data-dir) sessions are durable: \
   write-ahead logged, snapshotted, and recovered on restart.  SIGINT/SIGTERM (or a \
   client's shutdown frame) drain gracefully."
