(* gbc-router — the standalone router entry point.  `gbc-router
   --backend HOST:PORT ...` is `gbc router ...`; both share
   Router_cli. *)

let () =
  let open Cmdliner in
  let info = Cmd.info "gbc-router" ~version:"1.0.0" ~doc:Router_cli.router_doc in
  exit (Cmd.eval (Cmd.v info Router_cli.router_term))
