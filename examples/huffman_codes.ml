(* Huffman coding (Example 6): build the tree declaratively, read the
   prefix codes off it and compress a sample sentence.

   Run with:  dune exec examples/huffman_codes.exe *)

open Gbc

let sample =
  "the greedy paradigm of algorithm design is a well known tool used for \
   efficiently solving many classical computational problems"

let () =
  let letters = Text_gen.of_string sample in
  Printf.printf "alphabet: %d distinct characters, %d total\n" (List.length letters)
    (String.length sample);

  let tree = Huffman.run Runner.Staged letters in
  Printf.printf "weighted path length: %d (optimal: %d)\n" tree.Huffman.internal_cost
    (Huffman.procedural_cost letters);
  assert (tree.Huffman.internal_cost = Huffman.procedural_cost letters);

  let codes = Huffman.codes tree.Huffman.root in
  let code_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (sym, bits) -> Hashtbl.replace tbl sym bits) codes;
    fun c -> Hashtbl.find tbl (Printf.sprintf "c_%d" (Char.code c))
  in
  print_endline "codes for the most frequent characters:";
  let by_freq = List.sort (fun (_, a) (_, b) -> compare b a) letters in
  List.iteri
    (fun i (sym, freq) ->
      if i < 8 then
        let c = Scanf.sscanf sym "c_%d" Char.chr in
        Printf.printf "  %C (freq %3d) -> %s\n" c freq (code_of c))
    by_freq;

  let encoded_bits =
    String.to_seq sample |> Seq.fold_left (fun acc c -> acc + String.length (code_of c)) 0
  in
  Printf.printf "encoded size: %d bits vs %d bits in 8-bit ASCII (%.1f%%)\n" encoded_bits
    (8 * String.length sample)
    (100.0 *. float_of_int encoded_bits /. float_of_int (8 * String.length sample))
