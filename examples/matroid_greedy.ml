(* The conclusion's research program, made executable: matroid theory
   explains exactly when "greedy by choice" is optimal.

   - Kruskal's program optimizes over a graphic matroid: greedy finds
     the minimum basis, and the declarative program finds the same tree.
   - The matching program optimizes over the intersection of two
     partition matroids, which fails the exchange axiom: greedy is
     maximal but can be beaten.

   Run with:  dune exec examples/matroid_greedy.exe *)

open Gbc

let () =
  print_endline "=== Graphic matroid: Kruskal is matroid greedy ===";
  let g = Graph_gen.random_connected ~seed:11 ~nodes:9 ~extra_edges:8 in
  let weight_tbl = Hashtbl.create 32 in
  List.iter (fun (u, v, c) -> Hashtbl.replace weight_tbl (u, v) c) g.Graph_gen.edges;
  let m = Matroid.graphic ~nodes:9 (List.map (fun (u, v, _) -> (u, v)) g.Graph_gen.edges) in
  Printf.printf "independence system: %b, exchange axiom: %b -> a matroid\n"
    (Matroid.is_independence_system m) (Matroid.satisfies_exchange m);
  let weight e = Hashtbl.find weight_tbl e in
  let basis = Matroid.greedy ~weight m in
  let basis_weight = List.fold_left (fun a e -> a + weight e) 0 basis in
  let kruskal = Kruskal.run Runner.Staged g in
  Printf.printf "matroid greedy basis weight : %d\n" basis_weight;
  Printf.printf "declarative Kruskal weight  : %d\n" kruskal.Kruskal.weight;
  Printf.printf "exhaustive optimum          : %d\n"
    (Matroid.best_basis_weight ~weight m);
  assert (basis_weight = kruskal.Kruskal.weight);
  assert (basis_weight = Matroid.best_basis_weight ~weight m)

let () =
  print_endline "\n=== Matching: an intersection of matroids, not a matroid ===";
  let arcs = [ (0, 10); (0, 11); (1, 10) ] in
  let system =
    Matroid.make ~ground:arcs ~independent:(fun s ->
        let distinct f = List.length (List.sort_uniq compare (List.map f s)) = List.length s in
        distinct fst && distinct snd)
  in
  Printf.printf "downward closed: %b, exchange axiom: %b -> NOT a matroid\n"
    (Matroid.is_independence_system system)
    (Matroid.satisfies_exchange system);
  let weighted = [ (0, 10, 1); (0, 11, 2); (1, 10, 2) ] in
  let greedy = Matching.run Runner.Staged weighted in
  Printf.printf "greedy matching: %d arc(s) (maximal), but {(0,11),(1,10)} has 2 arcs\n"
    (List.length greedy.Matching.arcs);
  print_endline "\nexactly why the paper's conclusion reaches for matroid theory:";
  print_endline "pushing least into a choice program is safe on matroids,";
  print_endline "and only heuristic (a sub-optimal, Section 5) elsewhere."
