(* Quickstart: the paper's Example 1 and the bi_st_c refinement.

   Run with:  dune exec examples/quickstart.exe *)

open Gbc

let () =
  print_endline "=== Example 1: one student per course, one course per student ===";
  (* Parse a choice program from text and enumerate its choice models. *)
  let program =
    Parser.parse_program
      {|
takes(andy, engl, 4).
takes(mark, engl, 2).
takes(ann,  math, 3).
takes(mark, math, 2).
a_st(St, Crs) <- takes(St, Crs, _), choice(Crs, St), choice(St, Crs).
|}
  in
  let models = Choice_fixpoint.enumerate program in
  Printf.printf "choice models: %d (the paper's M1, M2, M3)\n" (List.length models);
  List.iteri
    (fun i db ->
      Printf.printf "  M%d:" (i + 1);
      List.iter
        (fun row ->
          Printf.printf " a_st(%s, %s)" (Value.to_string row.(0)) (Value.to_string row.(1)))
        (Database.facts_of db "a_st");
      print_newline ();
      (* Every model the fixpoint produces is a stable model (Theorem 1). *)
      assert (Stable.is_stable program db))
    models

let () =
  print_endline "\n=== bi_st_c: bi-injective pairs with the lowest grade above 1 ===";
  let program = Assignment.program Assignment.bi_st_c_source in
  let models = Choice_fixpoint.enumerate program in
  List.iter
    (fun db ->
      List.iter
        (fun row ->
          Printf.printf "  bi_st_c(%s, %s, %s)\n" (Value.to_string row.(0))
            (Value.to_string row.(1)) (Value.to_string row.(2)))
        (Database.facts_of db "bi_st_c"))
    models;
  Printf.printf "(%d models; the paper's two stable models)\n" (List.length models)

let () =
  print_endline "\n=== A first greedy program: sorting with next + least ===";
  let items = [ ("pear", 30); ("fig", 10); ("plum", 20); ("date", 50); ("lime", 40) ] in
  let sorted = Sorting.run Runner.Staged items in
  List.iter (fun (x, c) -> Printf.printf "  %s (%d)\n" x c) sorted;
  (* The same program runs on the reference Choice Fixpoint engine. *)
  assert (Sorting.run Runner.Reference items = sorted)
