(* Minimum spanning trees two ways: Prim (Example 4) and Kruskal
   (Example 8), both as declarative choice programs, validated against
   each other and the procedural baselines.

   Run with:  dune exec examples/spanning_tree.exe *)

open Gbc

let () =
  let g = Graph_gen.random_connected ~seed:2026 ~nodes:40 ~extra_edges:120 in
  Printf.printf "graph: %d nodes, %d edges\n" g.Graph_gen.nodes
    (List.length g.Graph_gen.edges);

  let prim = Prim.run Runner.Staged g in
  Printf.printf "\nPrim (staged engine): weight %d\n" prim.Prim.weight;
  List.iteri
    (fun i (x, y, c) ->
      if i < 5 then Printf.printf "  stage %d: enter %d via %d (cost %d)\n" (i + 1) y x c)
    prim.Prim.edges;
  Printf.printf "  ... (%d edges total)\n" (List.length prim.Prim.edges);

  let kruskal = Kruskal.run Runner.Staged g in
  Printf.printf "\nKruskal (staged engine): weight %d\n" kruskal.Kruskal.weight;

  let oracle = Graph_gen.mst_weight g in
  Printf.printf "\nprocedural Prim     : weight %d\n" (Prim.procedural g).Prim.weight;
  Printf.printf "procedural Kruskal  : weight %d\n" (Kruskal.procedural g).Kruskal.weight;
  Printf.printf "MST oracle          : weight %d\n" oracle;
  assert (prim.Prim.weight = oracle);
  assert (kruskal.Kruskal.weight = oracle);
  assert (Prim.is_spanning_tree g prim);
  assert (Kruskal.is_spanning_tree g kruskal);

  (* Show the compile-time analysis of the Prim program. *)
  print_endline "\nstage analysis of the Prim program:";
  let report = Stage.analyze (Parser.parse_program (Prim.source ~root:0)) in
  Format.printf "%a@?" Stage.pp_report report
