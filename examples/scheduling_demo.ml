(* Interval scheduling by earliest finish time — a greedy-by-choice
   extension program.  Prints a small Gantt-style view of which jobs
   the declarative program selects.

   Run with:  dune exec examples/scheduling_demo.exe *)

open Gbc

let () =
  let jobs = Interval_gen.random ~seed:7 ~jobs:14 ~horizon:60 in
  let selected = Scheduling.run Runner.Staged jobs in
  assert (selected = Scheduling.procedural jobs);
  assert (Scheduling.is_valid_schedule ~all:jobs selected);
  let chosen = List.map (fun (id, _, _) -> id) selected in
  Printf.printf "selected %d of %d jobs:\n\n" (List.length selected) (List.length jobs);
  List.iter
    (fun (id, s, f) ->
      let mark = if List.mem id chosen then '#' else '.' in
      Printf.printf "job %2d %c |%s%s%s|\n" id
        (if List.mem id chosen then '*' else ' ')
        (String.make s ' ') (String.make (f - s) mark)
        (String.make (60 - f) ' '))
    jobs;
  print_newline ();
  (* The schedule found by the engines maximizes the number of jobs. *)
  Printf.printf "the earliest-finish greedy schedule is optimal in count: %d jobs\n"
    (List.length selected)
