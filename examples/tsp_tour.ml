(* Greedy TSP chains (Section 5, "Computation of Sub-Optimals"): the
   declarative greedy chain versus the optimal tour on small instances
   (Held-Karp by dynamic programming), quantifying the approximation.

   Run with:  dune exec examples/tsp_tour.exe *)

open Gbc

(* Exact shortest Hamiltonian path from node 0 by Held-Karp. *)
let exact_path_cost (g : Graph_gen.t) =
  let n = g.Graph_gen.nodes in
  let inf = max_int / 4 in
  let d = Array.make_matrix n n inf in
  List.iter
    (fun (u, v, c) ->
      d.(u).(v) <- min d.(u).(v) c;
      d.(v).(u) <- min d.(v).(u) c)
    g.Graph_gen.edges;
  let size = 1 lsl n in
  let dp = Array.make_matrix size n inf in
  for v = 0 to n - 1 do
    dp.(1 lsl v).(v) <- 0
  done;
  for mask = 1 to size - 1 do
    for last = 0 to n - 1 do
      if mask land (1 lsl last) <> 0 && dp.(mask).(last) < inf then
        for next = 0 to n - 1 do
          if mask land (1 lsl next) = 0 && d.(last).(next) < inf then begin
            let mask' = mask lor (1 lsl next) in
            let cost = dp.(mask).(last) + d.(last).(next) in
            if cost < dp.(mask').(next) then dp.(mask').(next) <- cost
          end
        done
    done
  done;
  Array.fold_left min inf dp.(size - 1)

let () =
  List.iter
    (fun seed ->
      let g = Graph_gen.complete ~seed ~nodes:12 in
      let greedy = Tsp.run Runner.Staged g in
      let exact = exact_path_cost g in
      assert (Tsp.is_hamiltonian_path g greedy);
      assert (greedy.Tsp.chain = (Tsp.procedural g).Tsp.chain);
      Printf.printf
        "seed %2d: greedy chain cost %9d, optimal path %9d, ratio %.3f\n" seed greedy.Tsp.cost
        exact
        (float_of_int greedy.Tsp.cost /. float_of_int exact))
    [ 1; 2; 3; 4; 5 ];
  print_endline "\n(the greedy chain is a sub-optimal, as the paper says: a fast";
  print_endline " approximation whose quality the exact DP quantifies)"
