(** Shared plumbing for the greedy-algorithm modules: run a program on
    either engine and decode the result relation. *)

open Gbc_datalog

type engine = Reference | Staged

val run : engine -> Ast.program -> Database.t
(** Evaluate with {!Choice_fixpoint} (policy [First]) or
    {!Stage_engine}. *)

val rows : Database.t -> string -> Value.t array list
(** Rows of a predicate in insertion order. *)

val int_at : Value.t array -> int -> int
(** Integer at a column. @raise Invalid_argument otherwise. *)

val sort_by_stage : stage_col:int -> Value.t array list -> Value.t array list
(** Sort rows by the integer value of the stage column. *)
