open Gbc_datalog

let source = {|
picked(nil, 0).
picked(S, I) <- next(I), gain(S, G, I), G > 0, most(G, I), choice(S, I).
gain(S, G, I) <- uncovered(S, E, I), count(G, E, (S, I)).
uncovered(S, E, I) <- stage(I), elem(S, E), not covered(E, L), L < I.
covered(E, I) <- picked(S, I), elem(S, E).
stage(I) <- picked(_, I1), I = I1 + 1.
|}

let program sets =
  List.concat_map
    (fun (s, elems) ->
      List.map (fun e -> Ast.fact "elem" [ Value.Int s; Value.Int e ]) elems)
    sets
  @ Parser.parse_program source

let run engine sets =
  let db = Runner.run engine (program sets) in
  Runner.rows db "picked"
  |> List.filter (fun row -> Runner.int_at row 1 > 0)
  |> Runner.sort_by_stage ~stage_col:1
  |> List.map (fun row -> Runner.int_at row 0)

let coverage sets picked =
  let covered = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match List.assoc_opt s sets with
      | Some elems -> List.iter (fun e -> Hashtbl.replace covered e ()) elems
      | None -> ())
    picked;
  Hashtbl.length covered

let coverable sets =
  let all = Hashtbl.create 64 in
  List.iter (fun (_, elems) -> List.iter (fun e -> Hashtbl.replace all e ()) elems) sets;
  Hashtbl.length all

let procedural sets =
  let covered = Hashtbl.create 64 in
  let rec go acc =
    let gain (_, elems) =
      List.length (List.sort_uniq compare (List.filter (fun e -> not (Hashtbl.mem covered e)) elems))
    in
    let best =
      List.fold_left
        (fun acc set ->
          let g = gain set in
          match acc with
          | Some (_, bg) when bg >= g -> acc
          | _ when g > 0 -> Some (set, g)
          | _ -> acc)
        None sets
    in
    match best with
    | None -> List.rev acc
    | Some ((s, elems), _) ->
      List.iter (fun e -> Hashtbl.replace covered e ()) elems;
      go (s :: acc)
  in
  go []

let optimal_size sets =
  let n = List.length sets in
  if n > 16 then invalid_arg "Set_cover.optimal_size: too many sets";
  let target = coverable sets in
  let arr = Array.of_list sets in
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = ref [] in
    Array.iteri (fun i (s, _) -> if mask land (1 lsl i) <> 0 then chosen := s :: !chosen) arr;
    let size = List.length !chosen in
    if size < !best && coverage sets !chosen = target then best := size
  done;
  !best

let random_instance ~seed ~sets ~universe =
  let rng = Gbc_workload.Rng.create seed in
  let base =
    List.init sets (fun s ->
        let size = 1 + Gbc_workload.Rng.int rng (max 1 (universe / 2)) in
        (s, List.sort_uniq compare (List.init size (fun _ -> Gbc_workload.Rng.int rng universe))))
  in
  (* Guarantee full coverability: sweep leftovers into the last set. *)
  let covered = Hashtbl.create 64 in
  List.iter (fun (_, es) -> List.iter (fun e -> Hashtbl.replace covered e ()) es) base;
  let missing = List.filter (fun e -> not (Hashtbl.mem covered e)) (List.init universe Fun.id) in
  match List.rev base with
  | (s, es) :: rest -> List.rev ((s, List.sort_uniq compare (es @ missing)) :: rest)
  | [] -> []
