open Gbc_datalog
module Graph_gen = Gbc_workload.Graph_gen

let source = {|
tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1, least(C, I),
                         not visited(Y, L), L < I, choice(Y, X).
new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
visited(X, J) <- tsp_chain(X, _, _, J).
visited(Y, J) <- tsp_chain(_, Y, _, J).
least_arcs(X, Y, C) <- g(X, Y, C), least(C).
|}

let program g = Graph_gen.to_facts g @ Parser.parse_program source

type result = { chain : (int * int * int) list; cost : int }

let decode db =
  let chain =
    Runner.rows db "tsp_chain"
    |> Runner.sort_by_stage ~stage_col:3
    |> List.map (fun row -> (Runner.int_at row 0, Runner.int_at row 1, Runner.int_at row 2))
  in
  { chain; cost = List.fold_left (fun acc (_, _, c) -> acc + c) 0 chain }

let run engine g = decode (Runner.run engine (program g))

let procedural (g : Graph_gen.t) =
  let n = g.Graph_gen.nodes in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, c) ->
      adj.(u) <- (v, c) :: adj.(u);
      adj.(v) <- (u, c) :: adj.(v))
    g.Graph_gen.edges;
  match List.sort (fun (_, _, a) (_, _, b) -> compare a b) g.Graph_gen.edges with
  | [] -> { chain = []; cost = 0 }
  | (u0, v0, c0) :: _ ->
    let visited = Array.make n false in
    visited.(u0) <- true;
    visited.(v0) <- true;
    let chain = ref [ (u0, v0, c0) ] in
    let current = ref v0 in
    let rec extend () =
      let best =
        List.fold_left
          (fun acc (y, c) ->
            if visited.(y) then acc
            else
              match acc with
              | Some (_, c') when c' <= c -> acc
              | _ -> Some (y, c))
          None adj.(!current)
      in
      match best with
      | None -> ()
      | Some (y, c) ->
        chain := (!current, y, c) :: !chain;
        visited.(y) <- true;
        current := y;
        extend ()
    in
    extend ();
    let chain = List.rev !chain in
    { chain; cost = List.fold_left (fun acc (_, _, c) -> acc + c) 0 chain }

let is_hamiltonian_path (g : Graph_gen.t) r =
  let n = g.Graph_gen.nodes in
  let visited = Array.make n false in
  let ok = ref (List.length r.chain = n - 1) in
  (match r.chain with
  | [] -> ok := n <= 1
  | (u0, v0, _) :: rest ->
    visited.(u0) <- true;
    visited.(v0) <- true;
    let current = ref v0 in
    List.iter
      (fun (x, y, _) ->
        if x <> !current || visited.(y) then ok := false
        else begin
          visited.(y) <- true;
          current := y
        end)
      rest);
  !ok && Array.for_all (fun b -> b) visited
