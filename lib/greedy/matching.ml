open Gbc_datalog

let source = {|
matching(nil, nil, 0, 0).
matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
                        choice(Y, X), choice(X, Y).
|}

let arc_facts arcs =
  List.map (fun (x, y, c) -> Ast.fact "g" [ Value.Int x; Value.Int y; Value.Int c ]) arcs

let program arcs = arc_facts arcs @ Parser.parse_program source

type result = { arcs : (int * int * int) list; cost : int }

let decode db =
  let arcs =
    Runner.rows db "matching"
    |> List.filter (fun row -> Runner.int_at row 3 > 0)
    |> Runner.sort_by_stage ~stage_col:3
    |> List.map (fun row -> (Runner.int_at row 0, Runner.int_at row 1, Runner.int_at row 2))
  in
  { arcs; cost = List.fold_left (fun acc (_, _, c) -> acc + c) 0 arcs }

let run engine arcs = decode (Runner.run engine (program arcs))

let procedural arcs =
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare a b) arcs in
  let out_used = Hashtbl.create 64 and in_used = Hashtbl.create 64 in
  let chosen =
    List.filter
      (fun (x, y, _) ->
        if Hashtbl.mem out_used x || Hashtbl.mem in_used y then false
        else begin
          Hashtbl.add out_used x ();
          Hashtbl.add in_used y ();
          true
        end)
      sorted
  in
  { arcs = chosen; cost = List.fold_left (fun acc (_, _, c) -> acc + c) 0 chosen }

let is_maximal_matching all r =
  let out_used = Hashtbl.create 64 and in_used = Hashtbl.create 64 in
  let valid =
    List.for_all
      (fun (x, y, _) ->
        if Hashtbl.mem out_used x || Hashtbl.mem in_used y then false
        else begin
          Hashtbl.add out_used x ();
          Hashtbl.add in_used y ();
          true
        end)
      r.arcs
  in
  valid
  && List.for_all
       (fun (x, y, _) -> Hashtbl.mem out_used x || Hashtbl.mem in_used y)
       all
