(** Example 5: sorting a relation with [next] + [least].

    The program stamps each tuple of [p(X, C)] with a stage [I] such
    that stages increase with costs — the paper's point being that the
    fixpoint implementation of this "insertion sort"-looking program is
    actually a heap sort ([O(n log n)], claim C2). *)

open Gbc_datalog

val source : string
(** The program text (without the [p] facts). *)

val program : (string * int) list -> Ast.program
(** Program plus [p(name, cost)] facts. *)

val run : Runner.engine -> (string * int) list -> (string * int) list
(** Items in stage order (the sort produced by the engine). *)

val procedural : (string * int) list -> (string * int) list
(** Heap-sort baseline (binary heap), stable on distinct costs. *)

val is_sorted_permutation : input:(string * int) list -> (string * int) list -> bool
(** Output is non-decreasing in cost and a permutation of the distinct
    input tuples. *)
