(** Example 6: Huffman trees.

    Subtrees [h(T, C, I)] merge greedily by least cost; [feasible]
    enumerates candidate pairs and the stage-guarded negations
    [not subtree(X, L1), L1 < I] express availability, using the
    paper's scoped-negation idiom directly (the guard comparison is
    folded under the negation by {!Eval}).

    One repair over the printed program, documented in DESIGN.md: the
    availability checks are carried in the {e next rule} as well, not
    only inside [feasible].  Since [feasible] facts are materialized,
    the printed program can select a pair whose component was consumed
    after the pair was derived — the choice FDs [choice(X, I)],
    [choice(Y, I)] cannot catch a subtree reused across the two
    columns. *)

open Gbc_datalog

val source : string

val program : (string * int) list -> Ast.program
(** [letter(sym, freq)] facts plus the rules. *)

type result = {
  root : Value.t;  (** the final tree term *)
  internal_cost : int;  (** sum of merge costs = weighted path length *)
  merges : int;
}

val run : Runner.engine -> (string * int) list -> result

val procedural_cost : (string * int) list -> int
(** Optimal weighted path length via the classic two-queue algorithm. *)

val codes : Value.t -> (string * string) list
(** Prefix codes read off a tree term: leaf symbol to bit string. *)

val encode : Value.t -> string list -> string
(** Encode a sequence of symbols with the tree's codes.
    @raise Not_found for a symbol outside the alphabet. *)

val decode : Value.t -> string -> string list
(** Decode a bit string back into symbols.
    @raise Invalid_argument on a bit sequence that is not a codeword
    concatenation. *)
