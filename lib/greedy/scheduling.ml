open Gbc_datalog

let source = {|
sched(nil, 0, 0, 0).
sched(Id, S, F, I) <- next(I), job(Id, S, F), least(F, I),
                      not conflict(Id), choice(Id, (S, F)).
conflict(Id) <- job(Id, S, F), sched(Id1, S1, F1, I), I > 0, Id1 != Id,
                S < F1, S1 < F.
|}

let program jobs = Gbc_workload.Interval_gen.job_facts jobs @ Parser.parse_program source

let decode db =
  Runner.rows db "sched"
  |> List.filter (fun row -> Runner.int_at row 3 > 0)
  |> Runner.sort_by_stage ~stage_col:3
  |> List.map (fun row -> (Runner.int_at row 0, Runner.int_at row 1, Runner.int_at row 2))

let run engine jobs = decode (Runner.run engine (program jobs))

let procedural jobs =
  let sorted = List.sort (fun (_, _, f1) (_, _, f2) -> compare f1 f2) jobs in
  let rec go last acc = function
    | [] -> List.rev acc
    | ((_, s, f) as job) :: rest ->
      if s >= last then go f (job :: acc) rest else go last acc rest
  in
  go min_int [] sorted

let is_valid_schedule ~all selected =
  let compatible (_, s1, f1) (_, s2, f2) = f1 <= s2 || f2 <= s1 in
  let pairwise_ok =
    List.for_all
      (fun j1 -> List.for_all (fun j2 -> j1 = j2 || compatible j1 j2) selected)
      selected
  in
  (* Maximality: every unselected job conflicts with a selected one. *)
  pairwise_ok
  && List.for_all
       (fun job ->
         List.mem job selected || List.exists (fun s -> not (compatible job s)) selected)
       all
