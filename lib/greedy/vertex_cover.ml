open Gbc_datalog
module Graph_gen = Gbc_workload.Graph_gen

let source = {|
vc(nil, nil, 0).
vc(X, Y, I) <- next(I), g(X, Y, C),
               not covered(X, L1), L1 < I,
               not covered(Y, L2), L2 < I.
covered(X, I) <- vc(X, _, I).
covered(Y, I) <- vc(_, Y, I).
|}

let program g = Graph_gen.to_facts g @ Parser.parse_program source

type result = { picked : (int * int) list; cover : int list }

let decode db =
  let picked =
    Runner.rows db "vc"
    |> List.filter (fun row -> Runner.int_at row 2 > 0)
    |> Runner.sort_by_stage ~stage_col:2
    |> List.map (fun row -> (Runner.int_at row 0, Runner.int_at row 1))
  in
  let cover =
    List.sort_uniq compare (List.concat_map (fun (x, y) -> [ x; y ]) picked)
  in
  { picked; cover }

let run engine g = decode (Runner.run engine (program g))

let procedural (g : Graph_gen.t) =
  (* The engines scan g in fact-insertion order: both orientations of
     each edge, in edge-list order. *)
  let covered = Hashtbl.create 64 in
  let picked =
    List.filter_map
      (fun (u, v, _) ->
        if Hashtbl.mem covered u || Hashtbl.mem covered v then None
        else begin
          Hashtbl.add covered u ();
          Hashtbl.add covered v ();
          Some (u, v)
        end)
      g.Graph_gen.edges
  in
  { picked;
    cover = List.sort_uniq compare (List.concat_map (fun (x, y) -> [ x; y ]) picked) }

let is_cover (g : Graph_gen.t) r =
  List.for_all
    (fun (u, v, _) -> List.mem u r.cover || List.mem v r.cover)
    g.Graph_gen.edges

let optimal_cover_size (g : Graph_gen.t) =
  let n = g.Graph_gen.nodes in
  if n > 20 then invalid_arg "Vertex_cover.optimal_cover_size: too large";
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    let size =
      let rec bits m acc = if m = 0 then acc else bits (m lsr 1) (acc + (m land 1)) in
      bits mask 0
    in
    if size < !best then begin
      let covers =
        List.for_all
          (fun (u, v, _) -> mask land (1 lsl u) <> 0 || mask land (1 lsl v) <> 0)
          g.Graph_gen.edges
      in
      if covers then best := size
    end
  done;
  !best
