(** Greedy vertex cover (the classic maximal-matching 2-approximation)
    as a choice program — an extension exercising the one construct
    combination the Section-5 examples skip: a [next] rule with {e no}
    extremum, where the paper's [retrieve least] degenerates to
    [retrieve any].

    The program repeatedly picks any edge with both endpoints uncovered
    and covers both; the picked edges form a maximal matching, so the
    cover is at most twice the optimum. *)

open Gbc_datalog

val source : string
val program : Gbc_workload.Graph_gen.t -> Ast.program

type result = {
  picked : (int * int) list;  (** the matching edges, in selection order *)
  cover : int list;  (** their endpoints, sorted *)
}

val run : Runner.engine -> Gbc_workload.Graph_gen.t -> result

val procedural : Gbc_workload.Graph_gen.t -> result
(** Same greedy, scanning edges in the engines' candidate order. *)

val is_cover : Gbc_workload.Graph_gen.t -> result -> bool
val optimal_cover_size : Gbc_workload.Graph_gen.t -> int
(** Exhaustive minimum vertex cover — exponential, tests only.
    @raise Invalid_argument beyond 20 nodes. *)
