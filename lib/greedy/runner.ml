open Gbc_datalog

type engine = Reference | Staged

let run engine program =
  match engine with
  | Reference -> Choice_fixpoint.model program
  | Staged -> Stage_engine.model program

let rows db pred = Database.facts_of db pred
let int_at row i = Value.as_int row.(i)

let sort_by_stage ~stage_col rows =
  List.sort (fun a b -> compare (int_at a stage_col) (int_at b stage_col)) rows
