(** Example 4: Prim's minimum-spanning-tree algorithm.

    One deviation from the PODS'92 text, documented in DESIGN.md: the
    rule carries the guard [Y != root].  Without it the choice FD
    cannot prevent re-entering the source node — no chosen tuple ever
    mentions it — and the program can select a cycle edge.  We also
    write [choice(Y, (X, C))] (the Example-3 form, robust to parallel
    edges) rather than [choice(Y, X)].

    Claim C1: the [(R, Q, L)] implementation runs in [O(e log e)]. *)

open Gbc_datalog

val source : root:int -> string
val program : root:int -> Gbc_workload.Graph_gen.t -> Ast.program

type result = { edges : (int * int * int) list; weight : int }

val run : Runner.engine -> ?root:int -> Gbc_workload.Graph_gen.t -> result
(** Tree edges in selection order ([(x, y, c)]: [y] entered the tree
    through [x]). *)

val procedural : ?root:int -> Gbc_workload.Graph_gen.t -> result
(** Classic Prim with a binary heap and lazy deletion. *)

val is_spanning_tree : Gbc_workload.Graph_gen.t -> result -> bool
(** Edges form a spanning tree of the graph (when it is connected). *)
