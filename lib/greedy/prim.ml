open Gbc_datalog
module Graph_gen = Gbc_workload.Graph_gen

let source ~root =
  Printf.sprintf
    {|
prm(nil, %d, 0, 0).
prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, Y != %d,
                   least(C, I), choice(Y, (X, C)).
new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
|}
    root root

let program ~root g = Graph_gen.to_facts g @ Parser.parse_program (source ~root)

type result = { edges : (int * int * int) list; weight : int }

let decode db =
  let edges =
    Runner.rows db "prm"
    |> List.filter (fun row -> Runner.int_at row 3 > 0)
    |> Runner.sort_by_stage ~stage_col:3
    |> List.map (fun row -> (Runner.int_at row 0, Runner.int_at row 1, Runner.int_at row 2))
  in
  { edges; weight = List.fold_left (fun acc (_, _, c) -> acc + c) 0 edges }

let run engine ?(root = 0) g = decode (Runner.run engine (program ~root g))

let procedural ?(root = 0) (g : Graph_gen.t) =
  let n = g.Graph_gen.nodes in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, c) ->
      adj.(u) <- (v, c) :: adj.(u);
      adj.(v) <- (u, c) :: adj.(v))
    g.Graph_gen.edges;
  let in_tree = Array.make n false in
  let heap = Gbc_ordered.Binary_heap.create ~cmp:(fun (c1, _, _) (c2, _, _) -> compare c1 c2) () in
  let enter x =
    in_tree.(x) <- true;
    List.iter (fun (y, c) -> if not in_tree.(y) then Gbc_ordered.Binary_heap.push heap (c, x, y)) adj.(x)
  in
  enter root;
  let edges = ref [] in
  let rec loop () =
    match Gbc_ordered.Binary_heap.pop heap with
    | None -> ()
    | Some (c, x, y) ->
      if not in_tree.(y) then begin
        edges := (x, y, c) :: !edges;
        enter y
      end;
      loop ()
  in
  loop ();
  let edges = List.rev !edges in
  { edges; weight = List.fold_left (fun acc (_, _, c) -> acc + c) 0 edges }

let is_spanning_tree (g : Graph_gen.t) r =
  let n = g.Graph_gen.nodes in
  let uf = Gbc_ordered.Union_find.create n in
  List.length r.edges = n - 1
  && List.for_all (fun (u, v, _) -> Gbc_ordered.Union_find.union uf u v) r.edges
