(** Example 8: Kruskal's minimum-spanning-tree algorithm.

    The paper's conclusion presents Kruskal as a program {e beyond} the
    strictly stage-stratified class (its flat rules are not strictly
    stratified) whose stable model nonetheless computes an MST, and
    analyzes the fixpoint implementation at [O(e·n)] (claim C4) against
    the classical [O(e log e)] — the gap being the full component
    relabeling at every step, with no merge-small-into-large.

    Our formulation keeps the paper's structure (per-stage component
    relabeling driven by the selected edge) but repairs two glitches of
    the printed program, documented in DESIGN.md: [last_comp] as
    printed is not range-restricted (its stage argument is unbound),
    and [most(J, X)] selects the largest component {e identifier}
    rather than the latest assignment.  We materialize the per-stage
    view [cur(X, K, I)] directly: members of the selected edge's first
    component move to the second's, everyone else is copied — exactly
    the [O(n)]-per-step relabeling the paper's analysis charges for. *)

open Gbc_datalog

val source : string
val program : Gbc_workload.Graph_gen.t -> Ast.program

type result = { edges : (int * int * int) list; weight : int }

val run : Runner.engine -> Gbc_workload.Graph_gen.t -> result

val procedural : ?by_rank:bool -> Gbc_workload.Graph_gen.t -> result
(** Classic Kruskal: sort edges, union–find.  [~by_rank:false] is the
    ablation without merge-by-size. *)

val is_spanning_tree : Gbc_workload.Graph_gen.t -> result -> bool
