type 'a t = { m_ground : 'a list; m_independent : 'a list -> bool }

let make ~ground ~independent =
  if not (independent []) then invalid_arg "Matroid.make: the empty set must be independent";
  { m_ground = ground; m_independent = independent }

let ground t = t.m_ground
let independent t s = t.m_independent s

let uniform ~k elements =
  make ~ground:elements ~independent:(fun s -> List.length s <= k)

let partition ~class_of ~capacity elements =
  make ~ground:elements ~independent:(fun s ->
      let counts = Hashtbl.create 8 in
      List.for_all
        (fun x ->
          let c = class_of x in
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt counts c) in
          Hashtbl.replace counts c n;
          n <= capacity)
        s)

let graphic ~nodes edges =
  make ~ground:edges ~independent:(fun s ->
      let uf = Gbc_ordered.Union_find.create nodes in
      List.for_all (fun (u, v) -> Gbc_ordered.Union_find.union uf u v) s)

(* All subsets of the ground set, as lists (small grounds only). *)
let subsets t =
  let elements = Array.of_list t.m_ground in
  let n = Array.length elements in
  if n > 20 then invalid_arg "Matroid: ground set too large for exhaustive checks";
  List.init (1 lsl n) (fun mask ->
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list elements))

let is_independence_system t =
  t.m_independent []
  && List.for_all
       (fun s ->
         (not (t.m_independent s))
         || List.for_all
              (fun dropped -> t.m_independent (List.filter (fun x -> x != dropped) s))
              s)
       (subsets t)

let satisfies_exchange t =
  let independents = List.filter t.m_independent (subsets t) in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          List.length a >= List.length b
          || List.exists
               (fun x -> (not (List.memq x a)) && t.m_independent (x :: a))
               b)
        independents)
    independents

let greedy ~weight ?(maximize = false) t =
  let order a b =
    let c = compare (weight a) (weight b) in
    if maximize then -c else c
  in
  let sorted = List.stable_sort order t.m_ground in
  List.rev
    (List.fold_left
       (fun acc x -> if t.m_independent (x :: acc) then x :: acc else acc)
       [] sorted)

let best_basis_weight ~weight ?(maximize = false) t =
  let independents = List.filter t.m_independent (subsets t) in
  let maximal s =
    List.for_all
      (fun x -> List.memq x s || not (t.m_independent (x :: s)))
      t.m_ground
  in
  let bases = List.filter maximal independents in
  let weights = List.map (fun s -> List.fold_left (fun a x -> a + weight x) 0 s) bases in
  match weights with
  | [] -> invalid_arg "Matroid.best_basis_weight: no bases"
  | w :: ws -> List.fold_left (if maximize then max else min) w ws
