open Gbc_datalog
module Graph_gen = Gbc_workload.Graph_gen

let source ~root =
  Printf.sprintf
    {|
dij(%d, 0, 0).
dij(Y, D, I) <- next(I), cand(Y, D, J), J < I, Y != %d, least(D, I), choice(Y, D).
cand(Y, D, J) <- dij(X, DX, J), g(X, Y, C), D = DX + C.
|}
    root root

let program ~root g = Graph_gen.to_facts g @ Parser.parse_program (source ~root)

let decode db =
  Runner.rows db "dij"
  |> Runner.sort_by_stage ~stage_col:2
  |> List.map (fun row -> (Runner.int_at row 0, Runner.int_at row 1))

let run engine ?(root = 0) g = decode (Runner.run engine (program ~root g))

let procedural ?(root = 0) (g : Graph_gen.t) =
  let n = g.Graph_gen.nodes in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, c) ->
      adj.(u) <- (v, c) :: adj.(u);
      adj.(v) <- (u, c) :: adj.(v))
    g.Graph_gen.edges;
  let dist = Array.make n max_int in
  let settled = Array.make n false in
  let heap = Gbc_ordered.Binary_heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) () in
  dist.(root) <- 0;
  Gbc_ordered.Binary_heap.push heap (0, root);
  let order = ref [] in
  let rec loop () =
    match Gbc_ordered.Binary_heap.pop heap with
    | None -> ()
    | Some (d, x) ->
      if not settled.(x) then begin
        settled.(x) <- true;
        order := (x, d) :: !order;
        List.iter
          (fun (y, c) ->
            if (not settled.(y)) && d + c < dist.(y) then begin
              dist.(y) <- d + c;
              Gbc_ordered.Binary_heap.push heap (d + c, y)
            end)
          adj.(x)
      end;
      loop ()
  in
  loop ();
  List.rev !order
