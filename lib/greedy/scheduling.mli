(** Interval scheduling by earliest finish time — a second extension
    program (the paper's Section 5 mentions scheduling algorithms among
    those expressed in the companion report [2]).

    Greedy earliest-finish is optimal for maximizing the number of
    compatible jobs; the [not conflict(Id)] guard rejects jobs
    overlapping an already-selected one. *)

open Gbc_datalog

val source : string
val program : (int * int * int) list -> Ast.program

val run : Runner.engine -> (int * int * int) list -> (int * int * int) list
(** Selected jobs [(id, start, finish)] in selection order. *)

val procedural : (int * int * int) list -> (int * int * int) list

val is_valid_schedule : all:(int * int * int) list -> (int * int * int) list -> bool
(** Pairwise compatible and maximal in the greedy sense. *)
