(** Matroids and the greedy theorem — the paper's conclusion points at
    matroid theory [12] (and greedoids, matroid embeddings) as the road
    to deciding when [least] can be pushed into a choice program.  This
    module implements the structures that discussion rests on:
    independence systems with an oracle, the matroid axioms as
    executable (exhaustive, small-scale) checks, and the generic greedy
    algorithm, which is optimal exactly on matroids.

    The tests connect the theory back to the programs: Kruskal's edge
    sets are the greedy bases of the graphic matroid; the matching
    program optimizes over an intersection of two partition matroids —
    not itself a matroid, which is exactly why its greedy result is
    maximal but not always optimal. *)

type 'a t
(** An independence system over a finite ground set. *)

val make : ground:'a list -> independent:('a list -> bool) -> 'a t
(** [independent] must accept the empty list. *)

val ground : 'a t -> 'a list
val independent : 'a t -> 'a list -> bool

val uniform : k:int -> 'a list -> 'a t
(** Sets of size at most [k]. *)

val partition : class_of:('a -> int) -> capacity:int -> 'a list -> 'a t
(** At most [capacity] elements per class. *)

val graphic : nodes:int -> (int * int) list -> (int * int) t
(** Forests of the given edge set (edges are ground elements). *)

val is_independence_system : 'a t -> bool
(** Non-empty and downward closed (exhaustive — keep the ground set
    small). *)

val satisfies_exchange : 'a t -> bool
(** The matroid augmentation axiom, checked exhaustively. *)

val greedy : weight:('a -> int) -> ?maximize:bool -> 'a t -> 'a list
(** The generic greedy: scan elements by weight (ascending by default),
    keep each element that preserves independence.  Returns a basis;
    optimal for matroids (minimum-weight basis), merely maximal
    otherwise. *)

val best_basis_weight : weight:('a -> int) -> ?maximize:bool -> 'a t -> int
(** Exhaustive optimum over all maximal independent sets (tests only).
    @raise Invalid_argument beyond 20 ground elements. *)
