(** Examples 1 and 2 (and the [bi_st_c] refinement): bi-injective
    student/course assignments — the paper's introductory choice
    programs, used by the quickstart and by the semantics tests. *)

open Gbc_datalog

val example1_source : string
(** One student per course and vice versa ([a_st]). *)

val bi_st_c_source : string
(** Bi-injective pairs among the lowest grades above 1. *)

val paper_facts : Ast.program
(** The four [takes] facts of Example 1. *)

val program : ?facts:Ast.program -> string -> Ast.program
(** Source plus facts (defaults to {!paper_facts}). *)

val models : ?facts:Ast.program -> string -> (string * string) list list
(** All choice models, as sorted (student, course) assignment lists —
    for Example 1 on the paper's facts, exactly M1, M2, M3. *)

val random_takes : seed:int -> students:int -> courses:int -> enrollments:int -> Ast.program
(** Random [takes] facts for scaling experiments (E7). *)
