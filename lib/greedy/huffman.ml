open Gbc_datalog

let source = {|
h(X, C, 0) <- letter(X, C).
h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I,
                    not subtree(X, L1), L1 < I,
                    not subtree(Y, L2), L2 < I,
                    least(C, I), choice(X, I), choice(Y, I).
feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K), X != Y,
                           I = max(J, K), C = C1 + C2,
                           not subtree(X, L1), L1 < I,
                           not subtree(Y, L2), L2 < I.
subtree(X, I) <- h(t(X, _), _, I).
subtree(Y, I) <- h(t(_, Y), _, I).
|}

let program letters = Gbc_workload.Text_gen.letter_facts letters @ Parser.parse_program source

type result = { root : Value.t; internal_cost : int; merges : int }

let decode letters db =
  let internal =
    Runner.rows db "h" |> List.filter (fun row -> Runner.int_at row 2 > 0)
  in
  let internal_cost = List.fold_left (fun acc row -> acc + Runner.int_at row 1) 0 internal in
  let root =
    match Runner.sort_by_stage ~stage_col:2 internal with
    | [] ->
      (* Degenerate single-letter alphabet: the root is the leaf. *)
      (match letters with
      | [ (sym, _) ] -> Value.sym sym
      | _ -> invalid_arg "Huffman.decode: no merges on a multi-letter alphabet")
    | rows -> (List.nth rows (List.length rows - 1)).(0)
  in
  { root; internal_cost; merges = List.length internal }

let run engine letters = decode letters (Runner.run engine (program letters))

(* Two sorted queues: leaves and merged trees; always combine the two
   globally smallest costs.  O(n log n) because of the initial sort. *)
let procedural_cost letters =
  let leaves = Queue.create () and merged = Queue.create () in
  List.iter
    (fun (_, c) -> Queue.push c leaves)
    (List.sort (fun (_, a) (_, b) -> compare a b) letters);
  let pop_min () =
    match Queue.peek_opt leaves, Queue.peek_opt merged with
    | None, None -> invalid_arg "Huffman.procedural_cost: empty alphabet"
    | Some _, None -> Queue.pop leaves
    | None, Some _ -> Queue.pop merged
    | Some a, Some b -> if a <= b then Queue.pop leaves else Queue.pop merged
  in
  let total = ref 0 in
  let remaining = ref (List.length letters) in
  while !remaining > 1 do
    let a = pop_min () in
    let b = pop_min () in
    let c = a + b in
    total := !total + c;
    Queue.push c merged;
    decr remaining
  done;
  !total

let encode root symbols =
  let codes =
    let tbl = Hashtbl.create 64 in
    let rec walk prefix = function
      | Value.App ("t", [ l; r ]) ->
        walk (prefix ^ "0") l;
        walk (prefix ^ "1") r
      | Value.Sym id -> Hashtbl.replace tbl (Value.resolve id) (if prefix = "" then "0" else prefix)
      | v -> invalid_arg ("Huffman.encode: unexpected node " ^ Value.to_string v)
    in
    walk "" root;
    tbl
  in
  String.concat "" (List.map (Hashtbl.find codes) symbols)

let decode root bits =
  let out = ref [] in
  let node = ref root in
  let consume_leaf s =
    out := s :: !out;
    node := root
  in
  (match root with
  | Value.Sym id ->
    (* Single-letter alphabet: every bit is that letter. *)
    String.iter (fun _ -> consume_leaf (Value.resolve id)) bits
  | _ ->
    String.iter
      (fun bit ->
        (match !node with
        | Value.App ("t", [ l; r ]) -> node := (if bit = '0' then l else r)
        | v -> invalid_arg ("Huffman.decode: unexpected node " ^ Value.to_string v));
        match !node with Value.Sym id -> consume_leaf (Value.resolve id) | _ -> ())
      bits;
    if !node != root then invalid_arg "Huffman.decode: truncated codeword");
  List.rev !out

let codes root =
  let rec walk prefix acc = function
    | Value.App ("t", [ l; r ]) -> walk (prefix ^ "0") (walk (prefix ^ "1") acc r) l
    | Value.Sym id -> (Value.resolve id, if prefix = "" then "0" else prefix) :: acc
    | v -> invalid_arg ("Huffman.codes: unexpected node " ^ Value.to_string v)
  in
  walk "" [] root
