(** Single-source shortest paths as a stage-stratified program — an
    extension in the spirit of the paper's conclusion: Dijkstra's
    algorithm is greedy-by-choice too, and its program compiles to the
    same [(R, Q, L)] plan (the congruence key is the frontier node, so
    shadowing implements decrease-key).

    As with Prim, the [Y != root] guard keeps the source from being
    re-entered (its distance is a fact, not a chosen tuple). *)

open Gbc_datalog

val source : root:int -> string
val program : root:int -> Gbc_workload.Graph_gen.t -> Ast.program

val run : Runner.engine -> ?root:int -> Gbc_workload.Graph_gen.t -> (int * int) list
(** [(node, distance)] for every reachable node, in settling order. *)

val procedural : ?root:int -> Gbc_workload.Graph_gen.t -> (int * int) list
(** Classic Dijkstra with a binary heap; same output order. *)
