(** Greedy set cover — named by the paper among the greedy algorithms
    expressed in its companion report [2], and the reason this library
    carries LDL-style [count] aggregates: the greedy gain of a set is
    "how many still-uncovered elements it contains", a per-stage
    aggregate over a stage-guarded negation.

    The program follows the Kruskal pattern (a per-stage recomputed
    view) with [most(G, I)] selecting a maximum-gain set:

    {v
    picked(S, I) <- next(I), gain(S, G, I), G > 0, most(G, I), choice(S, I).
    gain(S, G, I) <- uncovered(S, E, I), count(G, E, (S, I)).
    uncovered(S, E, I) <- stage(I), elem(S, E), not covered(E, L), L < I.
    covered(E, I) <- picked(S, I), elem(S, E).
    v}

    The classical [H_k]-approximation bound applies.  Note that
    aggregates have no first-order expansion in this library, so set
    cover is the one program whose models cannot be fed to the
    stability checker (documented in DESIGN.md). *)

open Gbc_datalog

val source : string

val program : (int * int list) list -> Ast.program
(** Sets as [(set id, elements)]. *)

val run : Runner.engine -> (int * int list) list -> int list
(** Picked set ids, in selection order. *)

val procedural : (int * int list) list -> int list
(** Classic greedy max-gain (ties by lowest set id). *)

val coverage : (int * int list) list -> int list -> int
(** Number of distinct elements covered by the given sets. *)

val coverable : (int * int list) list -> int
(** Number of distinct elements in the instance. *)

val optimal_size : (int * int list) list -> int
(** Exhaustive minimum number of sets achieving full coverage
    (tests only). @raise Invalid_argument beyond 16 sets. *)

val random_instance : seed:int -> sets:int -> universe:int -> (int * int list) list
(** Random instance whose union covers the whole universe. *)
