open Gbc_datalog

let example1_source = {|
a_st(St, Crs) <- takes(St, Crs, _), choice(Crs, St), choice(St, Crs).
|}

let bi_st_c_source = {|
bi_st_c(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G),
                       choice(St, Crs), choice(Crs, St).
|}

let paper_facts =
  Parser.parse_program
    {|
takes(andy, engl, 4).
takes(mark, engl, 2).
takes(ann,  math, 3).
takes(mark, math, 2).
|}

let program ?(facts = paper_facts) source = facts @ Parser.parse_program source

let models ?facts source =
  let prog = program ?facts source in
  let pred =
    match Parser.parse_program source with
    | { Ast.head = { Ast.pred; _ }; _ } :: _ -> pred
    | [] -> invalid_arg "Assignment.models: empty source"
  in
  Choice_fixpoint.enumerate prog
  |> List.map (fun db ->
         Runner.rows db pred
         |> List.map (fun row ->
                match row.(0), row.(1) with
                | Value.Sym s, Value.Sym c -> (Value.resolve s, Value.resolve c)
                | _ -> invalid_arg "Assignment.models: non-symbolic assignment")
         |> List.sort compare)
  |> List.sort_uniq compare

let random_takes ~seed ~students ~courses ~enrollments =
  let rng = Gbc_workload.Rng.create seed in
  let seen = Hashtbl.create (2 * enrollments) in
  let rec draw acc n guard =
    if n = 0 || guard = 0 then acc
    else
      let s = Gbc_workload.Rng.int rng students and c = Gbc_workload.Rng.int rng courses in
      if Hashtbl.mem seen (s, c) then draw acc n (guard - 1)
      else begin
        Hashtbl.add seen (s, c) ();
        let g = 1 + Gbc_workload.Rng.int rng 4 in
        let fact =
          Ast.fact "takes"
            [ Value.sym (Printf.sprintf "s%d" s);
              Value.sym (Printf.sprintf "c%d" c);
              Value.Int g ]
        in
        draw (fact :: acc) (n - 1) guard
      end
  in
  draw [] enrollments (100 * enrollments)
