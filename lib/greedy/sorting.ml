open Gbc_datalog

let source = {|
sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).
|}

let item_facts items =
  List.map (fun (x, c) -> Ast.fact "p" [ Value.sym x; Value.Int c ]) items

let program items = item_facts items @ Parser.parse_program source

let run engine items =
  let db = Runner.run engine (program items) in
  Runner.rows db "sp"
  |> List.filter (fun row -> Runner.int_at row 2 > 0) (* drop the seed *)
  |> Runner.sort_by_stage ~stage_col:2
  |> List.map (fun row ->
         match row.(0) with
         | Value.Sym x -> (Value.resolve x, Runner.int_at row 1)
         | v -> invalid_arg ("Sorting.run: unexpected item " ^ Value.to_string v))

let procedural items =
  let heap =
    Gbc_ordered.Binary_heap.of_list
      ~cmp:(fun (_, a) (_, b) -> compare a b)
      (List.sort_uniq compare items)
  in
  Gbc_ordered.Binary_heap.to_sorted_list heap

let is_sorted_permutation ~input output =
  let rec sorted = function
    | [] | [ _ ] -> true
    | (_, c1) :: ((_, c2) :: _ as rest) -> c1 <= c2 && sorted rest
  in
  sorted output
  && List.sort compare output = List.sort compare (List.sort_uniq compare input)
