open Gbc_datalog
module Graph_gen = Gbc_workload.Graph_gen

let source = {|
kruskal(nil, nil, 0, 0).
kruskal(X, Y, C, I) <- next(I), g(X, Y, C), cur(X, J, I), cur(Y, K, I), J != K,
                       least(C, I).

% Per-stage component view: comp0 seeds stage 1; after the selection at
% stage I1, members of the first endpoint's component adopt the second
% endpoint's, everyone else carries over.  Both rules are positive (the
% carry-over tests component inequality instead of negating a "moved"
% predicate), so saturation order cannot matter.
cur(X, K, 1) <- comp0(X, K).
cur(X, K, I) <- stage(I), I = I1 + 1, cur(X, J, I1), kruskal(A, B, _, I1),
                cur(A, J, I1), cur(B, K, I1).
cur(X, K, I) <- stage(I), I = I1 + 1, cur(X, K, I1), kruskal(A, B, _, I1),
                cur(A, J, I1), K != J.
stage(I) <- kruskal(_, _, _, I1), I = I1 + 1.

% Initial components: one fresh identifier per node.
comp0(nil, 0).
comp0(X, K) <- next(K), node(X).
|}

let program g =
  Graph_gen.to_facts g @ Graph_gen.node_facts g @ Parser.parse_program source

type result = { edges : (int * int * int) list; weight : int }

let decode db =
  let edges =
    Runner.rows db "kruskal"
    |> List.filter (fun row -> Runner.int_at row 3 > 0)
    |> Runner.sort_by_stage ~stage_col:3
    |> List.map (fun row -> (Runner.int_at row 0, Runner.int_at row 1, Runner.int_at row 2))
  in
  { edges; weight = List.fold_left (fun acc (_, _, c) -> acc + c) 0 edges }

let run engine g = decode (Runner.run engine (program g))

let procedural ?(by_rank = true) (g : Graph_gen.t) =
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> compare a b) g.Graph_gen.edges
  in
  let uf = Gbc_ordered.Union_find.create ~by_rank g.Graph_gen.nodes in
  let edges =
    List.filter (fun (u, v, _) -> Gbc_ordered.Union_find.union uf u v) sorted
  in
  { edges; weight = List.fold_left (fun acc (_, _, c) -> acc + c) 0 edges }

let is_spanning_tree (g : Graph_gen.t) r =
  let uf = Gbc_ordered.Union_find.create g.Graph_gen.nodes in
  List.length r.edges = g.Graph_gen.nodes - 1
  && List.for_all (fun (u, v, _) -> Gbc_ordered.Union_find.union uf u v) r.edges
