(** Example 7: greedy minimum-cost maximal matching on a directed
    graph.

    As the program's choice goals define it ([choice(Y, X)],
    [choice(X, Y)]), the result is a maximal {e partial permutation}:
    each node has at most one outgoing and at most one incoming
    selected arc.  (The paper's prose says "no two arcs share a common
    vertex"; the FDs of the printed program enforce the per-column
    reading, which is what we — and the baseline — implement.  See
    DESIGN.md.)

    Claim C3: [O(e log e)] with all [e] arcs in the priority queue;
    the congruence analysis correctly refuses to shadow here. *)

open Gbc_datalog

val source : string

val program : (int * int * int) list -> Ast.program
(** Directed arcs [(x, y, c)]. *)

type result = { arcs : (int * int * int) list; cost : int }

val run : Runner.engine -> (int * int * int) list -> result

val procedural : (int * int * int) list -> result
(** Sort arcs by cost, take each whose source is an unused source and
    whose target is an unused target. *)

val is_maximal_matching : (int * int * int) list -> result -> bool
(** Valid partial permutation, maximal for the arc set. *)
