(** Section 5, "Computation of Sub-Optimals": the greedy
    traveling-salesperson chain.

    Start from the globally cheapest arc, then repeatedly extend the
    chain's end with the cheapest arc into an unvisited node.  The
    stage-guarded [not visited(Y, L), L < I] implements the paper's own
    side condition ("provided that an arc with starting node Y has not
    been previously selected") — the choice FD alone cannot see the
    first arc's endpoints, which live in the exit rule's separate
    [chosen] relation; and the guard must be stage-bounded, or the
    selected arc would formally block itself in the rewriting (see
    DESIGN.md). *)

open Gbc_datalog

val source : string
val program : Gbc_workload.Graph_gen.t -> Ast.program

type result = { chain : (int * int * int) list; cost : int }

val run : Runner.engine -> Gbc_workload.Graph_gen.t -> result

val procedural : Gbc_workload.Graph_gen.t -> result
(** The same greedy chain, imperatively. *)

val is_hamiltonian_path : Gbc_workload.Graph_gen.t -> result -> bool
(** The chain is connected, starts at the cheapest arc and visits every
    node exactly once (complete graphs always admit this). *)
