(** The gbcd wire protocol: length-prefixed binary frames.

    A frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is the message tag (requests
    below [0x80], responses at or above it).  See docs/SERVER.md for
    the full field layout of every frame.

    Decoding is total: malformed input of any shape — truncated
    payloads, unknown tags, inconsistent lengths, trailing bytes —
    comes back as [Error msg], never an exception, so a server can
    always answer garbage with a structured error frame.

    {b Protocol v2 — pipelining.}  A request payload may be wrapped in
    an {e envelope}: tag [0x7f], an i64 request id, then the v1
    payload verbatim; the response comes back wrapped the same way
    (tag [0xff], the request's id), so a client can keep many requests
    in flight on one connection and match replies by id even when they
    arrive out of order.  Envelopes are per-frame and stateless — the
    v2 decoders accept bare v1 payloads too — so [Hello]/[Welcome]
    negotiation exists only to tell the {e client} whether the peer
    echoes ids (a v1 server answers [Hello] with a protocol-violation
    error, and the client falls back to blocking v1). *)

val max_frame_default : int
(** Default payload-size cap (16 MiB). *)

val protocol_version : int
(** The highest protocol version this build speaks (2). *)

type engine = Staged | Reference

type budget = {
  timeout_ms : int option;
  max_facts : int option;
  max_steps : int option;
  max_candidates : int option;
  jobs : int option;  (** requested evaluation domains (parallelism) *)
}
(** Client-requested resource caps for one evaluation.  The server
    clamps each against its own configured cap (the effective budget
    is the pointwise minimum), so a client can tighten but never
    loosen the server's governor.  [jobs] asks for data-parallel
    evaluation across that many domains; the grant is
    [min (server max-jobs) jobs], defaulting to sequential. *)

val no_budget : budget

type request =
  | Ping
  | Load of string  (** program source text; compiled through the cache *)
  | Assert_facts of { text : string; id : int option }
      (** ground facts in surface syntax.  [id] is an optional client
          request id: resending the id of the session's last applied
          mutation is answered from its recorded result instead of
          applying again, making retries after a lost response exactly-
          once (the dedup state survives crashes via the WAL). *)
  | Retract_facts of { text : string; id : int option }  (** ground facts; [id] as above *)
  | Run of { engine : engine; seed : int option; preds : string list option; budget : budget }
  | Enumerate of { max_models : int; preds : string list option }
  | Query of { engine : engine; text : string; budget : budget }
  | Stats
  | Shutdown  (** graceful drain: in-flight queries finish first *)
  | Attach of int option
      (** [Attach None] marks the connection's session attachable and
          reports its id; [Attach (Some id)] swaps the connection onto
          session [id] — detached in memory, or restored from the data
          dir when the server is durable.  Unknown or busy ids get a
          [No_session] error. *)
  | Hello of { version : int }
      (** capability negotiation: the client's highest version.  v2+
          servers answer [Welcome]; a v1 server answers with a
          protocol-violation error, telling the client to stay on
          blocking v1. *)

type error_code =
  | Lex_error
  | Parse_error
  | Unsafe
  | Unsupported
  | Not_compilable
  | Io_error
  | Protocol_violation
  | No_program  (** session has no loaded program *)
  | Budget_exhausted  (** enumeration budget tripped (runs return a partial {!Model} instead) *)
  | Draining  (** request arrived after shutdown began *)
  | Server_error  (** unclassified server-side exception *)
  | Not_retractable  (** retract of a fact the session never asserted (or owned by the program) *)
  | No_session  (** [Attach] named a session that does not exist or is attached elsewhere *)

type response =
  | Pong
  | Loaded of { clauses : int; cache_hit : bool; digest : string; stage_stratified : bool }
  | Asserted of { added : int }
  | Retracted of { removed : int }
  | Model of { complete : bool; text : string; diagnostic : string option }
      (** [complete = false] carries the consistent partial model plus
          the governor's diagnostics — budget exhaustion is an answer,
          not a dropped connection. *)
  | Model_set of { total : int; models : string list }
  | Answers of { complete : bool; vars : string list; rows : string list }
  | Stats_json of string
  | Error of { code : error_code; message : string }
  | Bye
  | Attached of { id : int }  (** the session now driven by this connection *)
  | Welcome of { version : int }
      (** the settled version: [min client_version protocol_version] *)

val error_code_to_int : error_code -> int
val error_code_of_int : int -> error_code option
val error_code_to_string : error_code -> string

val encode_request : request -> string
(** The full frame, length prefix included. *)

val encode_response : response -> string

val encode_request_v2 : rid:int -> request -> string
(** The enveloped form: tag [0x7f], the i64 [rid], then the v1
    payload.  Full frame, length prefix included. *)

val encode_response_v2 : rid:int -> response -> string

type extracted =
  | Need_more  (** not yet a whole frame *)
  | Bad_length of int  (** length prefix negative, zero or over the cap *)
  | Frame of string * int  (** payload and the offset just past the frame *)

val extract_frame : ?max_frame:int -> string -> int -> extracted
(** [extract_frame buf start] splits the first frame out of a byte
    accumulation starting at [start]. *)

val decode_request : string -> (request, string) result
(** Decode a frame payload.  Response tags, unknown tags and every
    malformation are [Error]. *)

val decode_response : string -> (response, string) result

val decode_request_v2 : string -> (int option * request, string) result
(** Like {!decode_request} but accepts both wire forms: an enveloped
    payload yields [Some rid], a bare v1 payload yields [None]. *)

val decode_response_v2 : string -> (int option * response, string) result
