(* gbc-router: a consistent-hash fan-out proxy for a fleet of gbcd
   backends.

   One single-threaded select loop owns everything: the client
   listeners, every accepted client connection, and one backend link
   per client connection.  The router never evaluates — it decodes
   frames only far enough to route and account them, then re-encodes
   (the codec is canonical, so a forwarded frame is byte-identical to
   the one received).

   Placement.  A fresh connection is placed on the ring
   (consistent hash with virtual nodes, keyed by a router-assigned
   connection id) the first time it sends a request that must reach a
   backend; the choice then sticks for the connection's lifetime.
   Session ids crossing the router are {e composite}:
   [idx * 1_000_000_000 + backend_session_id], so an
   [Attach (Some id)] from a reconnecting client routes
   deterministically back to the backend that owns the session — the
   ring is only consulted for sessions the router has never seen.

   The router answers some requests itself, never forwarding them:
   [Hello] (the router speaks protocol v2; its backends must too),
   [Stats] (its own JSON: per-backend in-flight/forwarded/reconnects
   plus totals) and [Shutdown] ([Bye], then a graceful drain — stop
   accepting, let in-flight replies come home, flush, close).  The
   backends are {e not} shut down by the router; whoever spawned the
   fleet owns their lifetime (see [gbc serve --fleet]).

   Backend death.  When a link's read or write fails, every request
   still in flight on it is answered with a structured [server-error]
   frame (a pipelined client sees one error per orphaned id and can
   replay — its session survives on the backend's data dir).  The
   backend is marked dead; the next request that needs it connects
   again, and a success after a observed death counts as a reconnect
   in the stats. *)

module P = Protocol

(* ---------------- the hash ring ---------------- *)

module Ring = struct
  type t = { points : (int * string) array }

  (* a 62-bit point from the MD5 of the key: stable across runs,
     processes and architectures (unlike Hashtbl.hash) *)
  let hash key =
    let d = Digest.string key in
    let b i = Char.code d.[i] in
    (b 0 lsl 54) lor (b 1 lsl 46) lor (b 2 lsl 38) lor (b 3 lsl 30)
    lor (b 4 lsl 22) lor (b 5 lsl 14) lor (b 6 lsl 6) lor (b 7 lsr 2)

  let create ?(vnodes = 100) members =
    if members = [] then invalid_arg "Router.Ring.create: no members";
    let points =
      List.concat_map
        (fun m -> List.init vnodes (fun v -> (hash (Printf.sprintf "%s#%d" m v), m)))
        members
      |> Array.of_list
    in
    Array.sort compare points;
    { points }

  (* the member owning the first point at or after [hash key],
     wrapping around the ring *)
  let lookup t key =
    let n = Array.length t.points in
    let h = hash key in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    snd t.points.(if !lo = n then 0 else !lo)
end

(* Composite session ids: backend index in the high digits, the
   backend's own session id below. *)
let composite_base = 1_000_000_000

let composite ~idx sid = (idx * composite_base) + sid
let split_composite cid = (cid / composite_base, cid mod composite_base)

(* ---------------- configuration ---------------- *)

type config = {
  host : string;
  port : int option;  (* None: no TCP listener *)
  unix_path : string option;  (* None: no Unix-domain listener *)
  backlog : int;
  backends : Client.endpoint list;
  vnodes : int;  (* virtual nodes per backend on the ring *)
  max_frame : int;
  connect_timeout : float option;  (* per backend connect attempt *)
}

let default_config =
  { host = "127.0.0.1";
    port = Some 7412;
    unix_path = None;
    backlog = 64;
    backends = [];
    vnodes = 100;
    max_frame = P.max_frame_default;
    connect_timeout = Some 5.0 }

(* ---------------- state ---------------- *)

type backend = {
  b_endpoint : Client.endpoint;
  b_name : string;
  mutable b_alive : bool;  (* last connect / IO verdict *)
  mutable b_connected_once : bool;
  mutable b_inflight : int;  (* forwarded, not yet answered *)
  mutable b_forwarded : int;
  mutable b_reconnects : int;  (* successful connects after a death *)
}

type link = {
  l_fd : Unix.file_descr;
  l_idx : int;  (* backend index *)
  l_in : Buffer.t;  (* unconsumed reply bytes from the backend *)
  l_out : Buffer.t;  (* frames awaiting forwarding; [l_out_off] written *)
  mutable l_out_off : int;
  mutable l_alive : bool;
}

type rconn = {
  c_fd : Unix.file_descr;
  c_key : string;  (* ring key for first placement *)
  c_in : Buffer.t;
  c_out : Buffer.t;
  mutable c_out_off : int;
  mutable c_backend : int option;  (* sticky once placed *)
  mutable c_link : link option;
  mutable c_outstanding : int option list;
      (* envelope ids of forwarded-unanswered requests, oldest first;
         [None] entries are bare v1 frames, matched FIFO *)
  mutable c_alive : bool;
  mutable c_peer_gone : bool;
  mutable c_close_after_flush : bool;
}

type t = {
  cfg : config;
  listeners : Unix.file_descr list;
  tcp_port : int option;
  backends : backend array;
  idx_of_name : (string, int) Hashtbl.t;
  ring : Ring.t;
  started_at : float;
  draining : bool Atomic.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable conn_seq : int;
  mutable forwarded_total : int;
  mutable reconnects_total : int;
  mutable inflight_now : int;
  mutable inflight_max : int;
  mutable conns : rconn list;
}

let endpoint_name = function
  | Client.Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port
  | Client.Uds path -> "unix:" ^ path

let bind_tcp host port backlog =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = try Unix.inet_addr_of_string host with Failure _ -> failwith ("bad host " ^ host) in
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd backlog;
  let actual = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port in
  (fd, actual)

let bind_unix path backlog =
  if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  fd

let create (cfg : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    if cfg.backends = [] then failwith "no backends configured";
    let backends =
      Array.of_list
        (List.map
           (fun e ->
             { b_endpoint = e;
               b_name = endpoint_name e;
               (* assumed reachable until an IO failure says otherwise *)
               b_alive = true;
               b_connected_once = false;
               b_inflight = 0;
               b_forwarded = 0;
               b_reconnects = 0 })
           cfg.backends)
    in
    let idx_of_name = Hashtbl.create 8 in
    Array.iteri (fun i b -> Hashtbl.replace idx_of_name b.b_name i) backends;
    if Hashtbl.length idx_of_name <> Array.length backends then
      failwith "duplicate backend endpoints";
    let ring =
      Ring.create ~vnodes:(max 1 cfg.vnodes)
        (Array.to_list (Array.map (fun b -> b.b_name) backends))
    in
    let tcp = Option.map (fun p -> bind_tcp cfg.host p cfg.backlog) cfg.port in
    let uds = Option.map (fun p -> bind_unix p cfg.backlog) cfg.unix_path in
    let listeners = List.filter_map Fun.id [ Option.map fst tcp; uds ] in
    if listeners = [] then failwith "no listener configured (need a port or a unix path)";
    List.iter Unix.set_nonblock listeners;
    let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock pipe_r;
    Unix.set_nonblock pipe_w;
    { cfg;
      listeners;
      tcp_port = Option.map snd tcp;
      backends;
      idx_of_name;
      ring;
      started_at = Unix.gettimeofday ();
      draining = Atomic.make false;
      pipe_r;
      pipe_w;
      conn_seq = 0;
      forwarded_total = 0;
      reconnects_total = 0;
      inflight_now = 0;
      inflight_max = 0;
      conns = [] }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> Error msg

let port t = t.tcp_port

let wake t =
  try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _) ->
    (* a second shutdown after run already tore the pipe down is a no-op *)
    ()

let shutdown t =
  Atomic.set t.draining true;
  wake t

(* ---------------- stats ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let stats_json t =
  let backend b =
    Printf.sprintf
      "{\"endpoint\": \"%s\", \"alive\": %b, \"inflight\": %d, \"forwarded\": %d, \
       \"reconnects\": %d}"
      (json_escape b.b_name) b.b_alive b.b_inflight b.b_forwarded b.b_reconnects
  in
  Printf.sprintf
    "{\"router\": {\"uptime_s\": %.3f, \"draining\": %b, \"open_conns\": %d, \
     \"forwarded\": %d, \"backend_reconnects\": %d, \"inflight\": %d, \"inflight_max\": %d, \
     \"backends\": [%s]}}"
    (Unix.gettimeofday () -. t.started_at)
    (Atomic.get t.draining)
    (List.length (List.filter (fun c -> c.c_alive) t.conns))
    t.forwarded_total t.reconnects_total t.inflight_now t.inflight_max
    (String.concat ", " (Array.to_list (Array.map backend t.backends)))

(* ---------------- wire helpers ---------------- *)

(* Replies echo the request's wire form (enveloped or bare), exactly
   like gbcd itself. *)
let encode_reply rid resp =
  match rid with
  | Some rid -> P.encode_response_v2 ~rid resp
  | None -> P.encode_response resp

let encode_forward rid req =
  match rid with
  | Some rid -> P.encode_request_v2 ~rid req
  | None -> P.encode_request req

let reply_now c rid resp = Buffer.add_string c.c_out (encode_reply rid resp)

(* ---------------- backend links ---------------- *)

let connect_backend t idx =
  let b = t.backends.(idx) in
  let domain, addr =
    match b.b_endpoint with
    | Client.Tcp { host; port } -> (
      match Unix.inet_addr_of_string host with
      | inet -> (Unix.PF_INET, Unix.ADDR_INET (inet, port))
      | exception Failure _ -> failwith ("bad host " ^ host))
    | Client.Uds path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    (* bounded non-blocking connect, as in Client.connect *)
    match t.cfg.connect_timeout with
    | None -> Unix.connect fd addr
    | Some tmo -> (
      Unix.set_nonblock fd;
      (match Unix.connect fd addr with
      | () -> ()
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> (
        match Unix.select [] [ fd ] [] tmo with
        | _, [], _ -> failwith "backend connect timed out"
        | _ -> (
          match Unix.getsockopt_error fd with
          | None -> ()
          | Some err -> raise (Unix.Unix_error (err, "connect", b.b_name)))));
      Unix.clear_nonblock fd)
  with
  | () ->
    Unix.set_nonblock fd;
    if b.b_connected_once && not b.b_alive then begin
      b.b_reconnects <- b.b_reconnects + 1;
      t.reconnects_total <- t.reconnects_total + 1
    end;
    b.b_alive <- true;
    b.b_connected_once <- true;
    Ok { l_fd = fd; l_idx = idx; l_in = Buffer.create 1024; l_out = Buffer.create 1024;
         l_out_off = 0; l_alive = true }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    b.b_alive <- false;
    Error
      (Printf.sprintf "backend %s unreachable: %s" b.b_name
         (match e with
         | Unix.Unix_error (err, _, _) -> Unix.error_message err
         | Failure msg -> msg
         | e -> Printexc.to_string e))

(* Tear a link down and answer every request still in flight on it
   with a structured error — a pipelined client gets one per orphaned
   envelope id and can replay against the recovered backend. *)
let kill_link t c reason =
  match c.c_link with
  | None -> ()
  | Some l ->
    l.l_alive <- false;
    (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
    c.c_link <- None;
    let b = t.backends.(l.l_idx) in
    b.b_alive <- false;
    let orphans = c.c_outstanding in
    c.c_outstanding <- [];
    let n = List.length orphans in
    b.b_inflight <- b.b_inflight - n;
    t.inflight_now <- t.inflight_now - n;
    List.iter
      (fun rid ->
        reply_now c rid
          (P.Error
             { code = P.Server_error;
               message = "backend died with this request in flight: " ^ reason }))
      orphans

(* The sticky backend for this connection, choosing from the ring on
   first need. *)
let placed_backend t c =
  match c.c_backend with
  | Some idx -> idx
  | None ->
    let idx = Hashtbl.find t.idx_of_name (Ring.lookup t.ring c.c_key) in
    c.c_backend <- Some idx;
    idx

let ensure_link t c idx =
  match c.c_link with
  | Some l when l.l_alive && l.l_idx = idx -> Ok l
  | Some l when l.l_alive ->
    Error (Printf.sprintf "connection is bound to backend %s" t.backends.(l.l_idx).b_name)
  | _ -> (
    match connect_backend t idx with
    | Ok l ->
      c.c_link <- Some l;
      c.c_backend <- Some idx;
      Ok l
    | Error _ as e -> e)

let forward t c rid req =
  match c.c_link with
  | None -> assert false
  | Some l ->
    Buffer.add_string l.l_out (encode_forward rid req);
    c.c_outstanding <- c.c_outstanding @ [ rid ];
    let b = t.backends.(l.l_idx) in
    b.b_forwarded <- b.b_forwarded + 1;
    b.b_inflight <- b.b_inflight + 1;
    t.forwarded_total <- t.forwarded_total + 1;
    t.inflight_now <- t.inflight_now + 1;
    if t.inflight_now > t.inflight_max then t.inflight_max <- t.inflight_now

(* ---------------- request handling ---------------- *)

let handle_client_frame t c (rid, req) =
  if Atomic.get t.draining then
    reply_now c rid (P.Error { code = P.Draining; message = "router is draining" })
  else
    match req with
    | P.Hello { version } ->
      (* answered locally: the router requires v2-capable backends, so
         it can promise envelope framing on the client side *)
      reply_now c rid (P.Welcome { version = min version P.protocol_version })
    | P.Stats -> reply_now c rid (P.Stats_json (stats_json t))
    | P.Shutdown ->
      reply_now c rid P.Bye;
      Atomic.set t.draining true;
      c.c_close_after_flush <- true
    | P.Attach (Some cid) -> (
      let idx, sid = split_composite cid in
      if idx < 0 || idx >= Array.length t.backends then
        reply_now c rid
          (P.Error { code = P.No_session; message = Printf.sprintf "no session %d" cid })
      else
        match ensure_link t c idx with
        | Ok _ -> forward t c rid (P.Attach (Some sid))
        | Error msg -> reply_now c rid (P.Error { code = P.No_session; message = msg }))
    | req -> (
      let idx = placed_backend t c in
      match ensure_link t c idx with
      | Ok _ -> forward t c rid req
      | Error msg -> reply_now c rid (P.Error { code = P.Server_error; message = msg }))

(* A reply coming home from the backend: rewrite session ids to their
   composite form, account it, pass it through in the request's wire
   form. *)
let handle_backend_frame t c l (rid, resp) =
  let resp =
    match resp with
    | P.Attached { id } -> P.Attached { id = composite ~idx:l.l_idx id }
    | resp -> resp
  in
  let rec remove_first seen = function
    | [] -> List.rev seen  (* unmatched: tolerate, the client will complain *)
    | r :: rest when r = rid -> List.rev_append seen rest
    | r :: rest -> remove_first (r :: seen) rest
  in
  c.c_outstanding <- remove_first [] c.c_outstanding;
  let b = t.backends.(l.l_idx) in
  b.b_inflight <- b.b_inflight - 1;
  t.inflight_now <- t.inflight_now - 1;
  reply_now c rid resp

(* ---------------- the event loop ---------------- *)

let out_pending c = Buffer.length c.c_out - c.c_out_off
let link_out_pending l = Buffer.length l.l_out - l.l_out_off

let close_conn t c =
  if c.c_alive then begin
    c.c_alive <- false;
    (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
    (match c.c_link with
    | None -> ()
    | Some l ->
      (* closing the link detaches the session on the backend (it
         survives there if the client made it attachable) *)
      l.l_alive <- false;
      (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
      c.c_link <- None;
      let n = List.length c.c_outstanding in
      c.c_outstanding <- [];
      let b = t.backends.(l.l_idx) in
      b.b_inflight <- b.b_inflight - n;
      t.inflight_now <- t.inflight_now - n)
  end

let on_peer_gone t c =
  c.c_peer_gone <- true;
  close_conn t c

let parse_client_frames t c =
  let data = Buffer.contents c.c_in in
  let off = ref 0 in
  let stop = ref false in
  while not !stop do
    match P.extract_frame ~max_frame:t.cfg.max_frame data !off with
    | P.Need_more -> stop := true
    | P.Bad_length n ->
      reply_now c None
        (P.Error
           { code = P.Protocol_violation;
             message = Printf.sprintf "unacceptable frame length %d" n });
      c.c_peer_gone <- true;
      c.c_close_after_flush <- true;
      stop := true
    | P.Frame (body, next) -> (
      off := next;
      match P.decode_request_v2 body with
      | Ok (rid, req) -> handle_client_frame t c (rid, req)
      | Error msg ->
        reply_now c None (P.Error { code = P.Protocol_violation; message = msg });
        c.c_peer_gone <- true;
        c.c_close_after_flush <- true;
        stop := true)
  done;
  if !off > 0 then begin
    let rest = String.sub data !off (String.length data - !off) in
    Buffer.clear c.c_in;
    Buffer.add_string c.c_in rest
  end

let parse_backend_frames t c l =
  let data = Buffer.contents l.l_in in
  let off = ref 0 in
  let stop = ref false in
  while not !stop do
    match P.extract_frame ~max_frame:t.cfg.max_frame data !off with
    | P.Need_more -> stop := true
    | P.Bad_length n ->
      kill_link t c (Printf.sprintf "sent an unacceptable frame length %d" n);
      stop := true
    | P.Frame (body, next) -> (
      off := next;
      match P.decode_response_v2 body with
      | Ok (rid, resp) -> handle_backend_frame t c l (rid, resp)
      | Error msg ->
        kill_link t c ("sent an undecodable reply: " ^ msg);
        stop := true)
  done;
  if l.l_alive && !off > 0 then begin
    let rest = String.sub data !off (String.length data - !off) in
    Buffer.clear l.l_in;
    Buffer.add_string l.l_in rest
  end

let accept_conn t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> ()
  | fd, _addr ->
    Unix.set_nonblock fd;
    t.conn_seq <- t.conn_seq + 1;
    let c =
      { c_fd = fd;
        c_key = string_of_int t.conn_seq;
        c_in = Buffer.create 1024;
        c_out = Buffer.create 1024;
        c_out_off = 0;
        c_backend = None;
        c_link = None;
        c_outstanding = [];
        c_alive = true;
        c_peer_gone = false;
        c_close_after_flush = false }
    in
    t.conns <- c :: t.conns

let read_chunk = Bytes.create 65536

let on_client_readable t c =
  match Unix.read c.c_fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> on_peer_gone t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> on_peer_gone t c
  | n ->
    Buffer.add_subbytes c.c_in read_chunk 0 n;
    parse_client_frames t c

let on_link_readable t c l =
  match Unix.read l.l_fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> kill_link t c "connection closed"
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (e, _, _) -> kill_link t c (Unix.error_message e)
  | n ->
    Buffer.add_subbytes l.l_in read_chunk 0 n;
    parse_backend_frames t c l

let on_client_writable t c =
  let len = out_pending c in
  if len > 0 then begin
    match Unix.write_substring c.c_fd (Buffer.contents c.c_out) c.c_out_off len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ ->
      Buffer.clear c.c_out;
      c.c_out_off <- 0;
      on_peer_gone t c
    | n ->
      c.c_out_off <- c.c_out_off + n;
      if out_pending c = 0 then begin
        Buffer.clear c.c_out;
        c.c_out_off <- 0
      end
  end;
  if c.c_alive && out_pending c = 0 && c.c_close_after_flush && c.c_outstanding = [] then
    close_conn t c

let on_link_writable t c l =
  let len = link_out_pending l in
  if len > 0 then begin
    match Unix.write_substring l.l_fd (Buffer.contents l.l_out) l.l_out_off len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) -> kill_link t c (Unix.error_message e)
    | n ->
      l.l_out_off <- l.l_out_off + n;
      if link_out_pending l = 0 then begin
        Buffer.clear l.l_out;
        l.l_out_off <- 0
      end
  end

let drain_pipe t =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read t.pipe_r b 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

let run t =
  let live_link c =
    match c.c_link with Some l when l.l_alive -> Some l | _ -> None
  in
  let rec loop () =
    t.conns <- List.filter (fun c -> c.c_alive) t.conns;
    if finished () then ()
    else begin
      let accepting = not (Atomic.get t.draining) in
      let rds =
        (t.pipe_r :: (if accepting then t.listeners else []))
        @ List.filter_map
            (fun c -> if not c.c_peer_gone then Some c.c_fd else None)
            t.conns
        @ List.filter_map (fun c -> Option.map (fun l -> l.l_fd) (live_link c)) t.conns
      in
      let wrs =
        List.filter_map (fun c -> if out_pending c > 0 then Some c.c_fd else None) t.conns
        @ List.filter_map
            (fun c ->
              match live_link c with
              | Some l when link_out_pending l > 0 -> Some l.l_fd
              | _ -> None)
            t.conns
      in
      (match Unix.select rds wrs [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
        if List.mem t.pipe_r readable then drain_pipe t;
        List.iter (fun lfd -> if List.mem lfd readable then accept_conn t lfd) t.listeners;
        List.iter
          (fun c ->
            match live_link c with
            | Some l when c.c_alive && List.mem l.l_fd readable -> on_link_readable t c l
            | _ -> ())
          t.conns;
        List.iter
          (fun c -> if c.c_alive && List.mem c.c_fd readable then on_client_readable t c)
          t.conns;
        List.iter
          (fun c ->
            match live_link c with
            | Some l when c.c_alive && List.mem l.l_fd writable -> on_link_writable t c l
            | _ -> ())
          t.conns;
        List.iter
          (fun c -> if c.c_alive && List.mem c.c_fd writable then on_client_writable t c)
          t.conns);
      if Atomic.get t.draining then
        List.iter
          (fun c ->
            if c.c_alive && c.c_outstanding = [] then begin
              c.c_close_after_flush <- true;
              if out_pending c = 0 then close_conn t c
            end)
          t.conns;
      loop ()
    end
  and finished () = Atomic.get t.draining && List.for_all (fun c -> not c.c_alive) t.conns in
  loop ();
  List.iter (fun c -> close_conn t c) t.conns;
  t.conns <- [];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  Option.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    t.cfg.unix_path
