(* The gbcd wire protocol: length-prefixed binary frames.

   A frame is a 4-byte big-endian payload length followed by the
   payload; the payload's first byte is the message tag (requests
   below 0x80, responses at or above it) and the rest is the tag's
   field encoding.  Primitives: u8, i64 (8-byte big-endian), strings
   and lists behind a u32 big-endian length.  Everything is
   deterministic — one value, one encoding — so the QCheck round-trip
   property in test/test_protocol.ml is exact equality.

   Decoding never throws out of this module: [decode_request] and
   [decode_response] classify every malformation (truncated payload,
   bad tag, bad length, trailing bytes) into [Error msg], and
   [extract_frame] reports an undecodable length prefix as
   [Bad_length] so the server can answer with a structured error frame
   instead of dying on garbage input.

   Protocol v2 adds pipelining: a request payload may be wrapped in an
   envelope (tag 0x7f, then an i64 request id, then the v1 payload
   unchanged), and the matching response comes back in a response
   envelope (tag 0xff, same id).  Envelopes are stateless — the server
   accepts bare v1 and enveloped v2 payloads on the same connection —
   so version negotiation ([Hello]/[Welcome]) only informs the
   *client* whether the peer will echo ids back. *)

let max_frame_default = 16 * 1024 * 1024
let protocol_version = 2

type engine = Staged | Reference

type budget = {
  timeout_ms : int option;
  max_facts : int option;
  max_steps : int option;
  max_candidates : int option;
  jobs : int option;  (* requested evaluation domains; server clamps *)
}

let no_budget =
  { timeout_ms = None; max_facts = None; max_steps = None; max_candidates = None; jobs = None }

type request =
  | Ping
  | Load of string  (** program source text *)
  | Assert_facts of { text : string; id : int option }  (** ground facts, surface syntax *)
  | Retract_facts of { text : string; id : int option }
  | Run of { engine : engine; seed : int option; preds : string list option; budget : budget }
  | Enumerate of { max_models : int; preds : string list option }
  | Query of { engine : engine; text : string; budget : budget }
  | Stats
  | Shutdown
  | Attach of int option
      (** [None]: mark this session attachable and report its id;
          [Some id]: adopt session [id] (detached, or durable on disk) *)
  | Hello of { version : int }
      (** capability negotiation: the client's highest protocol
          version; answered with [Welcome] (v2+ servers) or a
          protocol-violation error (v1 servers), so the client can
          fall back *)

type error_code =
  | Lex_error
  | Parse_error
  | Unsafe
  | Unsupported
  | Not_compilable
  | Io_error
  | Protocol_violation
  | No_program
  | Budget_exhausted
  | Draining
  | Server_error
  | Not_retractable
  | No_session

type response =
  | Pong
  | Loaded of { clauses : int; cache_hit : bool; digest : string; stage_stratified : bool }
  | Asserted of { added : int }
  | Retracted of { removed : int }
  | Model of { complete : bool; text : string; diagnostic : string option }
  | Model_set of { total : int; models : string list }
  | Answers of { complete : bool; vars : string list; rows : string list }
  | Stats_json of string
  | Error of { code : error_code; message : string }
  | Bye
  | Attached of { id : int }
  | Welcome of { version : int }
      (** the version the server settles on: [min client_version
          protocol_version] *)

let error_code_to_int = function
  | Lex_error -> 1
  | Parse_error -> 2
  | Unsafe -> 3
  | Unsupported -> 4
  | Not_compilable -> 5
  | Io_error -> 6
  | Protocol_violation -> 7
  | No_program -> 8
  | Budget_exhausted -> 9
  | Draining -> 10
  | Server_error -> 11
  | Not_retractable -> 12
  | No_session -> 13

let error_code_of_int = function
  | 1 -> Some Lex_error
  | 2 -> Some Parse_error
  | 3 -> Some Unsafe
  | 4 -> Some Unsupported
  | 5 -> Some Not_compilable
  | 6 -> Some Io_error
  | 7 -> Some Protocol_violation
  | 8 -> Some No_program
  | 9 -> Some Budget_exhausted
  | 10 -> Some Draining
  | 11 -> Some Server_error
  | 12 -> Some Not_retractable
  | 13 -> Some No_session
  | _ -> None

let error_code_to_string = function
  | Lex_error -> "lex-error"
  | Parse_error -> "parse-error"
  | Unsafe -> "unsafe"
  | Unsupported -> "unsupported"
  | Not_compilable -> "not-compilable"
  | Io_error -> "io-error"
  | Protocol_violation -> "protocol-violation"
  | No_program -> "no-program"
  | Budget_exhausted -> "budget-exhausted"
  | Draining -> "draining"
  | Server_error -> "server-error"
  | Not_retractable -> "not-retractable"
  | No_session -> "no-session"

(* ---------------- field writers ---------------- *)

let w_u8 b n = Buffer.add_uint8 b (n land 0xff)
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_int b n = Buffer.add_int64_be b (Int64.of_int n)

let w_string b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

let w_opt w b = function
  | None -> w_u8 b 0
  | Some x ->
    w_u8 b 1;
    w b x

let w_list w b xs =
  Buffer.add_int32_be b (Int32.of_int (List.length xs));
  List.iter (w b) xs

let w_engine b = function Staged -> w_u8 b 0 | Reference -> w_u8 b 1

let w_budget b { timeout_ms; max_facts; max_steps; max_candidates; jobs } =
  w_opt w_int b timeout_ms;
  w_opt w_int b max_facts;
  w_opt w_int b max_steps;
  w_opt w_int b max_candidates;
  w_opt w_int b jobs

(* ---------------- field readers ---------------- *)

exception Malformed of string

type reader = { src : string; mutable pos : int }

let need rd n what =
  if n < 0 || rd.pos + n > String.length rd.src then
    raise (Malformed (Printf.sprintf "truncated %s at offset %d" what rd.pos))

let r_u8 rd what =
  need rd 1 what;
  let v = Char.code rd.src.[rd.pos] in
  rd.pos <- rd.pos + 1;
  v

let r_bool rd what =
  match r_u8 rd what with
  | 0 -> false
  | 1 -> true
  | n -> raise (Malformed (Printf.sprintf "bad boolean %d in %s" n what))

let r_int rd what =
  need rd 8 what;
  let v = Int64.to_int (String.get_int64_be rd.src rd.pos) in
  rd.pos <- rd.pos + 8;
  v

let r_len rd what =
  need rd 4 what;
  let v = Int32.to_int (String.get_int32_be rd.src rd.pos) in
  rd.pos <- rd.pos + 4;
  if v < 0 || rd.pos + v > String.length rd.src then
    raise (Malformed (Printf.sprintf "bad length %d in %s" v what));
  v

let r_string rd what =
  let n = r_len rd what in
  let s = String.sub rd.src rd.pos n in
  rd.pos <- rd.pos + n;
  s

let r_opt r rd what =
  match r_u8 rd what with
  | 0 -> None
  | 1 -> Some (r rd what)
  | n -> raise (Malformed (Printf.sprintf "bad option tag %d in %s" n what))

let r_list r rd what =
  let n = r_len rd what in
  (* every element encodes at least one byte, so a count beyond the
     remaining payload is malformed — reject before allocating. *)
  if n > String.length rd.src - rd.pos then
    raise (Malformed (Printf.sprintf "bad count %d in %s" n what));
  List.init n (fun _ -> r rd what)

let r_engine rd what =
  match r_u8 rd what with
  | 0 -> Staged
  | 1 -> Reference
  | n -> raise (Malformed (Printf.sprintf "bad engine %d in %s" n what))

let r_budget rd what =
  let timeout_ms = r_opt r_int rd what in
  let max_facts = r_opt r_int rd what in
  let max_steps = r_opt r_int rd what in
  let max_candidates = r_opt r_int rd what in
  let jobs = r_opt r_int rd what in
  { timeout_ms; max_facts; max_steps; max_candidates; jobs }

(* ---------------- framing ---------------- *)

let frame body =
  let b = Buffer.create (String.length body + 4) in
  Buffer.add_int32_be b (Int32.of_int (String.length body));
  Buffer.add_string b body;
  Buffer.contents b

type extracted =
  | Need_more  (** not yet a whole frame *)
  | Bad_length of int  (** length prefix is negative, zero or over the cap *)
  | Frame of string * int  (** payload and the offset just past the frame *)

let extract_frame ?(max_frame = max_frame_default) buf start =
  let avail = String.length buf - start in
  if avail < 4 then Need_more
  else begin
    let len = Int32.to_int (String.get_int32_be buf start) in
    if len < 1 || len > max_frame then Bad_length len
    else if avail - 4 < len then Need_more
    else Frame (String.sub buf (start + 4) len, start + 4 + len)
  end

(* ---------------- requests ---------------- *)

let tag_ping = 0x01
let tag_load = 0x02
let tag_assert = 0x03
let tag_retract = 0x04
let tag_run = 0x05
let tag_enumerate = 0x06
let tag_query = 0x07
let tag_stats = 0x08
let tag_shutdown = 0x09
let tag_attach = 0x0a
let tag_hello = 0x0b

(* the v2 envelope: tag, i64 request id, then the v1 payload verbatim.
   0x7f/0xff sit at the top of each tag space so they can never
   collide with a v1 frame kind. *)
let tag_req_envelope = 0x7f
let tag_resp_envelope = 0xff

let write_request b req =
  (match req with
   | Ping -> w_u8 b tag_ping
   | Load src ->
     w_u8 b tag_load;
     w_string b src
   | Assert_facts { text; id } ->
     w_u8 b tag_assert;
     w_string b text;
     w_opt w_int b id
   | Retract_facts { text; id } ->
     w_u8 b tag_retract;
     w_string b text;
     w_opt w_int b id
   | Run { engine; seed; preds; budget } ->
     w_u8 b tag_run;
     w_engine b engine;
     w_opt w_int b seed;
     w_opt (w_list w_string) b preds;
     w_budget b budget
   | Enumerate { max_models; preds } ->
     w_u8 b tag_enumerate;
     w_int b max_models;
     w_opt (w_list w_string) b preds
   | Query { engine; text; budget } ->
     w_u8 b tag_query;
     w_engine b engine;
     w_string b text;
     w_budget b budget
   | Stats -> w_u8 b tag_stats
   | Shutdown -> w_u8 b tag_shutdown
   | Attach id ->
     w_u8 b tag_attach;
     w_opt w_int b id
   | Hello { version } ->
     w_u8 b tag_hello;
     w_int b version)

let encode_request req =
  let b = Buffer.create 64 in
  write_request b req;
  frame (Buffer.contents b)

let encode_request_v2 ~rid req =
  let b = Buffer.create 72 in
  w_u8 b tag_req_envelope;
  w_int b rid;
  write_request b req;
  frame (Buffer.contents b)

let finish rd v what =
  if rd.pos <> String.length rd.src then
    raise (Malformed (Printf.sprintf "%d trailing byte(s) after %s" (String.length rd.src - rd.pos) what));
  v

let read_request rd =
  let tag = r_u8 rd "request tag" in
  if tag = tag_ping then Ping
  else if tag = tag_load then Load (r_string rd "load")
  else if tag = tag_assert then begin
    let text = r_string rd "assert" in
    Assert_facts { text; id = r_opt r_int rd "assert" }
  end
  else if tag = tag_retract then begin
    let text = r_string rd "retract" in
    Retract_facts { text; id = r_opt r_int rd "retract" }
  end
  else if tag = tag_run then begin
    let engine = r_engine rd "run" in
    let seed = r_opt r_int rd "run" in
    let preds = r_opt (r_list r_string) rd "run" in
    let budget = r_budget rd "run" in
    Run { engine; seed; preds; budget }
  end
  else if tag = tag_enumerate then begin
    let max_models = r_int rd "enumerate" in
    let preds = r_opt (r_list r_string) rd "enumerate" in
    Enumerate { max_models; preds }
  end
  else if tag = tag_query then begin
    let engine = r_engine rd "query" in
    let text = r_string rd "query" in
    let budget = r_budget rd "query" in
    Query { engine; text; budget }
  end
  else if tag = tag_stats then Stats
  else if tag = tag_shutdown then Shutdown
  else if tag = tag_attach then Attach (r_opt r_int rd "attach")
  else if tag = tag_hello then Hello { version = r_int rd "hello" }
  else raise (Malformed (Printf.sprintf "unknown request tag 0x%02x" tag))

let decode_request body =
  let rd = { src = body; pos = 0 } in
  try Ok (finish rd (read_request rd) "request")
  with Malformed msg -> Result.Error msg

(* v2-aware decode: accepts a bare v1 payload ([None] id) or an
   enveloped one ([Some rid]); the connection needs no decode mode. *)
let decode_request_v2 body =
  let rd = { src = body; pos = 0 } in
  try
    if String.length body > 0 && Char.code body.[0] = tag_req_envelope then begin
      rd.pos <- 1;
      let rid = r_int rd "request envelope" in
      let req = read_request rd in
      Ok (Some rid, finish rd req "request")
    end
    else Ok (None, finish rd (read_request rd) "request")
  with Malformed msg -> Result.Error msg

(* ---------------- responses ---------------- *)

let tag_pong = 0x81
let tag_loaded = 0x82
let tag_asserted = 0x83
let tag_retracted = 0x84
let tag_model = 0x85
let tag_model_set = 0x86
let tag_answers = 0x87
let tag_stats_json = 0x88
let tag_error = 0x89
let tag_bye = 0x8a
let tag_attached = 0x8b
let tag_welcome = 0x8c

let write_response b resp =
  (match resp with
   | Pong -> w_u8 b tag_pong
   | Loaded { clauses; cache_hit; digest; stage_stratified } ->
     w_u8 b tag_loaded;
     w_int b clauses;
     w_bool b cache_hit;
     w_string b digest;
     w_bool b stage_stratified
   | Asserted { added } ->
     w_u8 b tag_asserted;
     w_int b added
   | Retracted { removed } ->
     w_u8 b tag_retracted;
     w_int b removed
   | Model { complete; text; diagnostic } ->
     w_u8 b tag_model;
     w_bool b complete;
     w_string b text;
     w_opt w_string b diagnostic
   | Model_set { total; models } ->
     w_u8 b tag_model_set;
     w_int b total;
     w_list w_string b models
   | Answers { complete; vars; rows } ->
     w_u8 b tag_answers;
     w_bool b complete;
     w_list w_string b vars;
     w_list w_string b rows
   | Stats_json json ->
     w_u8 b tag_stats_json;
     w_string b json
   | Error { code; message } ->
     w_u8 b tag_error;
     w_u8 b (error_code_to_int code);
     w_string b message
   | Bye -> w_u8 b tag_bye
   | Attached { id } ->
     w_u8 b tag_attached;
     w_int b id
   | Welcome { version } ->
     w_u8 b tag_welcome;
     w_int b version)

let encode_response resp =
  let b = Buffer.create 256 in
  write_response b resp;
  frame (Buffer.contents b)

let encode_response_v2 ~rid resp =
  let b = Buffer.create 264 in
  w_u8 b tag_resp_envelope;
  w_int b rid;
  write_response b resp;
  frame (Buffer.contents b)

let read_response rd =
  let tag = r_u8 rd "response tag" in
  if tag = tag_pong then Pong
  else if tag = tag_loaded then begin
    let clauses = r_int rd "loaded" in
    let cache_hit = r_bool rd "loaded" in
    let digest = r_string rd "loaded" in
    let stage_stratified = r_bool rd "loaded" in
    Loaded { clauses; cache_hit; digest; stage_stratified }
  end
  else if tag = tag_asserted then Asserted { added = r_int rd "asserted" }
  else if tag = tag_retracted then Retracted { removed = r_int rd "retracted" }
  else if tag = tag_model then begin
    let complete = r_bool rd "model" in
    let text = r_string rd "model" in
    let diagnostic = r_opt r_string rd "model" in
    Model { complete; text; diagnostic }
  end
  else if tag = tag_model_set then begin
    let total = r_int rd "model-set" in
    let models = r_list r_string rd "model-set" in
    Model_set { total; models }
  end
  else if tag = tag_answers then begin
    let complete = r_bool rd "answers" in
    let vars = r_list r_string rd "answers" in
    let rows = r_list r_string rd "answers" in
    Answers { complete; vars; rows }
  end
  else if tag = tag_stats_json then Stats_json (r_string rd "stats")
  else if tag = tag_error then begin
    let code =
      match error_code_of_int (r_u8 rd "error") with
      | Some c -> c
      | None -> raise (Malformed "unknown error code")
    in
    let message = r_string rd "error" in
    Error { code; message }
  end
  else if tag = tag_bye then Bye
  else if tag = tag_attached then Attached { id = r_int rd "attached" }
  else if tag = tag_welcome then Welcome { version = r_int rd "welcome" }
  else raise (Malformed (Printf.sprintf "unknown response tag 0x%02x" tag))

let decode_response body =
  let rd = { src = body; pos = 0 } in
  try Ok (finish rd (read_response rd) "response")
  with Malformed msg -> Result.Error msg

let decode_response_v2 body =
  let rd = { src = body; pos = 0 } in
  try
    if String.length body > 0 && Char.code body.[0] = tag_resp_envelope then begin
      rd.pos <- 1;
      let rid = r_int rd "response envelope" in
      let resp = read_response rd in
      Ok (Some rid, finish rd resp "response")
    end
    else Ok (None, finish rd (read_response rd) "response")
  with Malformed msg -> Result.Error msg
