(* A session: one connected client's private view of the engine.

   A session owns a reference to an immutable cache entry (the
   compiled program) and a private database snapshot taken from the
   entry's frozen fact base with [Database.copy] — copy-on-write at
   the relation level, so isolation between sessions sharing a cached
   program costs O(#relations) until a session actually asserts.

   Asserted facts form a multiset: asserting the same row twice means
   retracting it once still leaves it visible.  Retraction is exact —
   a batch that tries to remove more occurrences than the session
   asserted (or a fact owned by the loaded program) is refused as a
   whole, mutating nothing.

   Lifecycle:
     Load        -> snapshot := copy(entry.base); multiset := {};
                    materialization dropped
     Assert      -> occurrences recorded; net-new rows enter the
                    snapshot and the pending delta
     Retract     -> occurrences removed; rows whose count hits zero
                    (and that the program does not own) leave the
                    snapshot and enter the pending delta
     Run/Query   -> with a live materialization for the same
                    (engine, seed): repair it incrementally from the
                    pending delta (Ivm.apply) — or serve it as-is when
                    nothing changed.  Otherwise evaluate from scratch
                    on copy(snapshot) and materialize the complete
                    model for next time.
     Enumerate   -> always from scratch (a model set has no single
                    materialization)

   A session is driven by at most one worker at a time (the server
   dispatches one request per connection), so nothing here needs a
   lock; the only cross-domain touch is [cancel], which the event loop
   sets when the client disconnects and the governor polls. *)

module Ast = Gbc_datalog.Ast
module Database = Gbc_datalog.Database
module Relation = Gbc_datalog.Relation
module Value = Gbc_datalog.Value
module Parser = Gbc_datalog.Parser
module Eval = Gbc_datalog.Eval
module Ivm = Gbc_datalog.Ivm
module Par = Gbc_datalog.Par
module Limits = Gbc_datalog.Limits
module Telemetry = Gbc_datalog.Telemetry
module Gbc_error = Gbc_datalog.Gbc_error
module Choice_fixpoint = Gbc_datalog.Choice_fixpoint
module Stage_engine = Gbc_datalog.Stage_engine
module Lexer = Gbc_datalog.Lexer

type counters = {
  mutable requests : int;
  mutable evaluations : int;  (* Run + Enumerate + Query *)
  mutable partials : int;
  mutable errors : int;
  mutable facts_asserted : int;
  mutable facts_retracted : int;
  mutable runs_incremental : int;  (* served by maintaining the materialized model *)
  mutable runs_full : int;  (* from-scratch engine evaluations *)
  mutable ivm_fallbacks : int;  (* materializations dropped (choice reach, errors) *)
  mutable eval_wall_s : float;
  engine_totals : (string, int) Hashtbl.t;  (* summed Telemetry.totals *)
}

type materialization = {
  mat_engine : Protocol.engine;
  mat_seed : int option;
  ivm : Ivm.t;
}

(* Durability state of one session: its WAL handle (fd opened lazily,
   so sessions that never load a program leave nothing on disk), the
   next LSN to assign, and how many records were appended since the
   last snapshot. *)
type durability = {
  dur : Durable.t;
  wal : Wal.t;
  mutable next_lsn : int;
  mutable since_snapshot : int;
}

type t = {
  id : int;
  cache : Program_cache.t;
  cancel : bool ref;
  mutable entry : Program_cache.entry option;
  mutable db : Database.t option;  (* base snapshot + net asserted facts *)
  mutable asserted : (string, int Relation.Row_tbl.t) Hashtbl.t;
      (* occurrence count per asserted row, by predicate *)
  mutable pending_inserts : (string * Value.t array) list;  (* newest first *)
  mutable pending_deletes : (string * Value.t array) list;  (* newest first *)
  mutable mat : materialization option;
  durability : durability option;
  mutable replaying : bool;  (* recovery replay: suppress WAL writes *)
  mutable last_mut : (int * int) option;  (* exactly-once dedup: (request id, result) *)
  mutable recent_muts : (int * int) list;  (* bounded dedup window for pipelined replay *)
  mutable attachable : bool;  (* survives its connection in memory *)
  counters : counters;
}

type error = Protocol.error_code * string

let create ?durable ~cache ~id () =
  { id;
    cache;
    cancel = ref false;
    entry = None;
    db = None;
    asserted = Hashtbl.create 8;
    pending_inserts = [];
    pending_deletes = [];
    mat = None;
    durability =
      Option.map
        (fun dur ->
          { dur;
            wal = Wal.create ~fsync:(Durable.fsync dur) (Durable.wal_path dur id);
            next_lsn = 0;
            since_snapshot = 0 })
        durable;
    replaying = false;
    last_mut = None;
    recent_muts = [];
    attachable = false;
    counters =
      { requests = 0; evaluations = 0; partials = 0; errors = 0; facts_asserted = 0;
        facts_retracted = 0; runs_incremental = 0; runs_full = 0; ivm_fallbacks = 0;
        eval_wall_s = 0.0; engine_totals = Hashtbl.create 16 } }

let discard t =
  match t.durability with None -> () | Some d -> Wal.close d.wal

let of_gbc_error (e : Gbc_error.t) : error =
  let code =
    match e with
    | Gbc_error.Lex _ -> Protocol.Lex_error
    | Gbc_error.Parse _ -> Protocol.Parse_error
    | Gbc_error.Unsafe _ -> Protocol.Unsafe
    | Gbc_error.Unsupported _ -> Protocol.Unsupported
    | Gbc_error.Not_compilable _ -> Protocol.Not_compilable
    | Gbc_error.Io _ -> Protocol.Io_error
  in
  (code, Gbc_error.to_string e)

(* Classify like Gbc_error.protect, but also absorb the
   [Invalid_argument]s the substrate raises on arity clashes and
   rule-shape violations — a client must never crash a worker. *)
let protect f =
  match Gbc_error.protect f with
  | Ok v -> Ok v
  | Error e -> Error (of_gbc_error e)
  | exception Invalid_argument msg -> Error (Protocol.Unsupported, msg)

(* ---------------- rendering ---------------- *)

(* Identical to the CLI's print_model: the whole model through
   [Database.pp] (sorted, one fact per line), or the chosen predicates
   in insertion order. *)
let render_model ?preds db =
  match preds with
  | None -> Format.asprintf "%a" Database.pp db
  | Some preds ->
    let b = Buffer.create 256 in
    List.iter
      (fun pred ->
        List.iter
          (fun row ->
            Buffer.add_string b
              (Printf.sprintf "%s(%s).\n" pred
                 (String.concat ", " (List.map Value.to_string (Array.to_list row)))))
          (Database.facts_of db pred))
      preds;
    Buffer.contents b

let model_digest db = Digest.to_hex (Digest.string (render_model db))

(* ---------------- durability ---------------- *)

(* Log-before-apply: the record must be on the log (per the fsync
   policy) before the mutation touches memory.  A failed append is an
   [io-error] frame and the mutation is NOT applied — the client can
   retry.  During recovery replay the log already holds the record, so
   appends are suppressed. *)
let log_record t record =
  match t.durability with
  | None -> Ok ()
  | Some _ when t.replaying -> Ok ()
  | Some d -> (
    match Wal.append d.wal ~lsn:d.next_lsn record with
    | () ->
      d.next_lsn <- d.next_lsn + 1;
      d.since_snapshot <- d.since_snapshot + 1;
      Ok ()
    | exception Unix.Unix_error (e, fn, _) ->
      Error
        ( Protocol.Io_error,
          Printf.sprintf "write-ahead log append failed: %s: %s" fn (Unix.error_message e) ))

let engine_to_int = function Protocol.Staged -> 0 | Protocol.Reference -> 1
let engine_of_int n = if n = 1 then Protocol.Reference else Protocol.Staged

(* Collapse the WAL into a fresh snapshot once enough records piled
   up.  The materialized model is stored only when nothing is pending
   (then it, its engine key and its rendering digest fully describe
   the session's warm state); with mutations pending the next run is
   full anyway, so recovery just drops the materialization.  A failed
   snapshot only warns — the WAL still holds everything. *)
let maybe_snapshot t =
  match t.durability with
  | Some d when (not t.replaying) && Durable.snapshot_every d.dur > 0
                && d.since_snapshot >= Durable.snapshot_every d.dur -> (
    match t.db with
    | None -> ()
    | Some db -> (
      let multiset =
        Hashtbl.fold
          (fun pred tb acc ->
            Relation.Row_tbl.fold (fun row n acc -> (pred, row, n) :: acc) tb acc)
          t.asserted []
      in
      let mat =
        match (t.mat, t.pending_inserts, t.pending_deletes) with
        | Some m, [], [] ->
          let model = Ivm.model m.ivm in
          Some
            { Durable.m_engine = engine_to_int m.mat_engine;
              m_seed = m.mat_seed;
              model;
              model_digest = model_digest model }
        | _ -> None
      in
      let snap =
        { Durable.last_lsn = d.next_lsn - 1;
          digest = Option.map (fun e -> e.Program_cache.digest) t.entry;
          db;
          multiset;
          last_mut = t.last_mut;
          mat }
      in
      (* reset the counter either way: on failure we retry after
         another [snapshot_every] records, not on every append *)
      d.since_snapshot <- 0;
      match Durable.write_snapshot d.dur ~id:t.id snap with
      | Ok () -> ( try Wal.reset d.wal with Unix.Unix_error _ -> ())
      | Error msg -> Durable.warn d.dur (Printf.sprintf "session %d: %s" t.id msg)))
  | _ -> ()

(* ---------------- load / assert / retract ---------------- *)

let load t source =
  match Program_cache.find_or_compile t.cache source with
  | Error e -> Error (of_gbc_error e)
  | Ok (entry, hit) -> (
    (* Persist the source first (the WAL only names its digest), then
       log, then apply. *)
    (match t.durability with
    | Some d when not t.replaying ->
      Durable.store_program d.dur ~digest:entry.Program_cache.digest ~source
    | _ -> ());
    match log_record t (Wal.Load { digest = entry.Program_cache.digest }) with
    | Error e -> Error e
    | Ok () ->
      t.entry <- Some entry;
      t.db <- Some (Database.copy entry.Program_cache.base);
      t.asserted <- Hashtbl.create 8;
      t.pending_inserts <- [];
      t.pending_deletes <- [];
      t.mat <- None;
      maybe_snapshot t;
      Ok (entry, hit))

let parse_ground_facts text =
  protect (fun () ->
      let clauses = Parser.parse_program text in
      List.map
        (fun r ->
          if not (Ast.is_fact r) then
            raise (Parser.Error ("expected ground facts only", { Lexer.line = 0; col = 0 }));
          (r.Ast.head.Ast.pred, Array.of_list (List.map Ast.term_to_value r.Ast.head.Ast.args)))
        clauses)

let with_db t f =
  match t.db with
  | None -> Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some db -> f db

let occ_tbl t pred =
  match Hashtbl.find_opt t.asserted pred with
  | Some tb -> tb
  | None ->
    let tb = Relation.Row_tbl.create 8 in
    Hashtbl.replace t.asserted pred tb;
    tb

let occ_count t pred row =
  match Hashtbl.find_opt t.asserted pred with
  | None -> 0
  | Some tb -> ( try Relation.Row_tbl.find tb row with Not_found -> 0)

(* Remove the first pending entry equal to (pred, row); [None] when
   absent.  Pending lists are the (small) net delta since the last
   materialization, so linear scans are fine. *)
let rec remove_first pred (row : Value.t array) = function
  | [] -> None
  | (p, r) :: rest when String.equal p pred && Relation.Row_key.equal r row -> Some rest
  | x :: rest -> Option.map (fun rest' -> x :: rest') (remove_first pred row rest)

(* Exactly-once dedup: a client that lost the response to a mutation
   resends it under the same request id; an id the session already
   applied is answered from the recorded result instead of applied
   twice.  The blocking client replays only its last unacknowledged
   mutation ([last_mut], which also rides snapshots), but a pipelined
   client reconnecting replays {e every} in-flight request, so a
   bounded window of recent ids backs the single slot.  The window is
   not snapshotted: WAL-tail replay repopulates it through the normal
   mutation paths, which covers exactly the records a replaying client
   could still resend. *)
let recent_muts_cap = 128

let dedup t id =
  match id with
  | None -> None
  | Some i -> (
    match t.last_mut with
    | Some (j, result) when i = j -> Some result
    | _ -> List.assoc_opt i t.recent_muts)

let record_mut t id result =
  match (id, result) with
  | Some i, Ok n ->
    t.last_mut <- Some (i, n);
    let window = (i, n) :: t.recent_muts in
    t.recent_muts <-
      (if List.length window > recent_muts_cap then
         List.filteri (fun k _ -> k < recent_muts_cap) window
       else window)
  | _ -> ()

let assert_facts ?id t text =
  match dedup t id with
  | Some result -> Ok result
  | None ->
    with_db t (fun db ->
        match parse_ground_facts text with
        | Error e -> Error e
        | Ok facts -> (
          match log_record t (Wal.Assert { text; id }) with
          | Error e -> Error e
          | Ok () ->
            let result =
              protect (fun () ->
            let added =
              List.fold_left
                (fun added (pred, row) ->
                  let tb = occ_tbl t pred in
                  let n = try Relation.Row_tbl.find tb row with Not_found -> 0 in
                  Relation.Row_tbl.replace tb row (n + 1);
                  if Database.add_fact db pred row then begin
                    (* A net-new visible row: it either cancels a
                       pending delete (re-asserted since the last
                       materialization) or becomes a pending insert. *)
                    (match remove_first pred row t.pending_deletes with
                    | Some rest -> t.pending_deletes <- rest
                    | None -> t.pending_inserts <- (pred, row) :: t.pending_inserts);
                    added + 1
                  end
                  else added)
                0 facts
            in
                  t.counters.facts_asserted <- t.counters.facts_asserted + List.length facts;
                  added)
            in
            record_mut t id result;
            maybe_snapshot t;
            result))

let render_fact pred row =
  Printf.sprintf "%s(%s)" pred
    (String.concat ", " (List.map Value.to_string (Array.to_list row)))

(* Retraction removes exactly one asserted occurrence per batch entry.
   The whole batch is validated against the occurrence multiset first:
   if any entry exceeds what the session asserted — including facts
   owned by the loaded program, which are immutable — the request is
   refused and nothing (snapshot, multiset, counters) changes. *)
let retract_facts ?id t text =
  match dedup t id with
  | Some result -> Ok result
  | None -> (
  match (t.entry, t.db) with
  | None, _ | _, None ->
    Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some entry, Some db -> (
    match parse_ground_facts text with
    | Error e -> Error e
    | Ok facts ->
      (* Batch multiset: how many occurrences of each row this request
         wants gone (the same fact may appear twice in one batch). *)
      let need : (string * int Relation.Row_tbl.t) list ref = ref [] in
      let need_tbl pred =
        match List.assoc_opt pred !need with
        | Some tb -> tb
        | None ->
          let tb = Relation.Row_tbl.create 8 in
          need := (pred, tb) :: !need;
          tb
      in
      List.iter
        (fun (pred, row) ->
          let tb = need_tbl pred in
          let n = try Relation.Row_tbl.find tb row with Not_found -> 0 in
          Relation.Row_tbl.replace tb row (n + 1))
        facts;
      let bad = ref None in
      List.iter
        (fun (pred, tb) ->
          Relation.Row_tbl.iter
            (fun row n ->
              if !bad = None && occ_count t pred row < n then bad := Some (pred, row))
            tb)
        !need;
      match !bad with
      | Some (pred, row) ->
        let owned = Database.mem_fact entry.Program_cache.base pred row in
        Error
          ( Protocol.Not_retractable,
            Printf.sprintf "cannot retract %s: %s" (render_fact pred row)
              (if owned then "the fact is owned by the loaded program"
               else "the fact was never asserted (or was already retracted)") )
      | None -> (
        (* validated: every occurrence is retractable, so log it — a
           replay of this record revalidates against the same state
           and succeeds identically *)
        match log_record t (Wal.Retract { text; id }) with
        | Error e -> Error e
        | Ok () ->
          let result =
            protect (fun () ->
            List.iter
              (fun (pred, tb) ->
                Relation.Row_tbl.iter
                  (fun row n ->
                    let cur = occ_count t pred row in
                    let left = cur - n in
                    let otb = occ_tbl t pred in
                    if left > 0 then Relation.Row_tbl.replace otb row left
                    else begin
                      Relation.Row_tbl.remove otb row;
                      (* The last occurrence is gone; the row leaves
                         the snapshot unless the program owns it. *)
                      if not (Database.mem_fact entry.Program_cache.base pred row)
                      then begin
                        (match Database.find db pred with
                        | Some rel ->
                          Database.set_relation db pred
                            (Relation.filter rel (fun r ->
                                 not (Relation.Row_key.equal r row)))
                        | None -> ());
                        match remove_first pred row t.pending_inserts with
                        | Some rest -> t.pending_inserts <- rest
                        | None -> t.pending_deletes <- (pred, row) :: t.pending_deletes
                      end
                    end)
                  tb)
              !need;
            t.counters.facts_retracted <- t.counters.facts_retracted + List.length facts;
            List.length facts)
          in
          record_mut t id result;
          maybe_snapshot t;
          result)))

(* ---------------- evaluation ---------------- *)

let map_outcome f = function
  | Limits.Complete x -> Limits.Complete (f x)
  | Limits.Partial (x, d) -> Limits.Partial (f x, d)

let note_eval t telemetry t0 =
  t.counters.evaluations <- t.counters.evaluations + 1;
  t.counters.eval_wall_s <- t.counters.eval_wall_s +. (Unix.gettimeofday () -. t0);
  List.iter
    (fun (k, v) ->
      let prev = try Hashtbl.find t.counters.engine_totals k with Not_found -> 0 in
      Hashtbl.replace t.counters.engine_totals k (prev + v))
    (Telemetry.totals telemetry)

(* The materialization is keyed by what makes a run's model unique:
   the engine, and for the reference engine its choice seed. *)
let run_key engine seed =
  match engine with
  | Protocol.Staged -> (Protocol.Staged, None)
  | Protocol.Reference -> (Protocol.Reference, seed)

(* Try to serve this run from the live materialization: nothing
   pending means the model is already current; otherwise repair it
   from the pending delta.  [None] means evaluate from scratch —
   because there is no materialization for this (engine, seed), or the
   repair refused (choice stratum reachable) or failed (budget,
   substrate error): those drop the materialization, and the
   from-scratch run surfaces any real error through [protect]. *)
let try_incremental t ~key ~jobs ~limits ~telemetry =
  match t.mat with
  | Some m when (m.mat_engine, m.mat_seed) = key -> (
    match (t.pending_inserts, t.pending_deletes) with
    | [], [] -> Some (Limits.Complete (Ivm.model m.ivm))
    | ins, dels -> (
      let drop () =
        t.mat <- None;
        t.counters.ivm_fallbacks <- t.counters.ivm_fallbacks + 1;
        None
      in
      match
        Ivm.apply ~telemetry ~limits ~pool:(Par.get jobs) m.ivm
          ~inserts:(List.rev ins) ~deletes:(List.rev dels)
      with
      | Ivm.Maintained ->
        t.pending_inserts <- [];
        t.pending_deletes <- [];
        Some (Limits.Complete (Ivm.model m.ivm))
      | Ivm.Fallback _ -> drop ()
      | exception _ -> drop ()))
  | _ -> None

(* A complete run is WAL-logged with the MD5 of its canonical
   rendering: recovery re-runs it to rebuild the warm materialization
   and the digest proves the restored model byte-identical.  A failed
   append here only warns — the model was already computed and the
   fact state is fully covered by the mutation records. *)
let log_run t ~key model =
  match
    log_record t
      (Wal.Run
         { engine = engine_to_int (fst key); seed = snd key; model_digest = model_digest model })
  with
  | Ok () -> maybe_snapshot t
  | Error (_, msg) -> (
    match t.durability with Some d -> Durable.warn d.dur msg | None -> ())

let run ?(compiled = false) t ~engine ~seed ~jobs ~limits ~telemetry =
  match (t.entry, t.db) with
  | None, _ | _, None -> Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some entry, Some db -> (
    let t0 = Unix.gettimeofday () in
    let key = run_key engine seed in
    match try_incremental t ~key ~jobs ~limits ~telemetry with
    | Some outcome ->
      t.counters.runs_incremental <- t.counters.runs_incremental + 1;
      note_eval t telemetry t0;
      (match outcome with
      | Limits.Complete model -> log_run t ~key model
      | Limits.Partial _ -> ());
      Ok outcome
    | None ->
      let work = Database.copy db in
      (* In compiled mode hand the engines the entry's cached cost
         plan: re-runs skip re-analysis, and every session sharing the
         entry executes the same join orders. *)
      let plan = entry.Program_cache.plan in
      let result =
        protect (fun () ->
            match engine with
            | Protocol.Staged ->
              map_outcome fst
                (Stage_engine.run_governed ~compiled ~plan ~telemetry ~limits ~jobs ~db:work
                   entry.Program_cache.rules)
            | Protocol.Reference ->
              let policy =
                match seed with Some s -> Choice_fixpoint.Random s | None -> Choice_fixpoint.First
              in
              map_outcome fst
                (Choice_fixpoint.run_governed ~compiled ~plan ~policy ~telemetry ~limits ~jobs
                   ~db:work entry.Program_cache.rules))
      in
      note_eval t telemetry t0;
      (match result with
      | Ok (Limits.Complete model) ->
        t.counters.runs_full <- t.counters.runs_full + 1;
        (* A complete model over the current snapshot: materialize it
           so the next run with this key is incremental. *)
        t.pending_inserts <- [];
        t.pending_deletes <- [];
        t.mat <-
          Some
            { mat_engine = fst key;
              mat_seed = snd key;
              ivm = Ivm.create entry.Program_cache.rules ~edb:db ~model };
        log_run t ~key model
      | Ok (Limits.Partial _) ->
        t.counters.runs_full <- t.counters.runs_full + 1;
        t.counters.partials <- t.counters.partials + 1;
        t.mat <- None
      | Error _ -> t.mat <- None);
      result)

let enumerate t ~max_models ~limits =
  match (t.entry, t.db) with
  | None, _ | _, None -> Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some entry, Some db -> (
    let t0 = Unix.gettimeofday () in
    let result =
      protect (fun () ->
          (* [enumerate] snapshots the db itself; [Exhausted] escapes
             it (there is no governed variant of a model set), so it
             becomes a structured error frame here. *)
          try Ok (Choice_fixpoint.enumerate ~max_models ~limits ~db entry.Program_cache.rules)
          with Limits.Exhausted v ->
            Error
              ( Protocol.Budget_exhausted,
                "enumeration stopped: " ^ Limits.violation_to_string v ))
    in
    t.counters.evaluations <- t.counters.evaluations + 1;
    t.counters.eval_wall_s <- t.counters.eval_wall_s +. (Unix.gettimeofday () -. t0);
    match result with Ok r -> r | Error e -> Error e)

let nowhere = { Lexer.line = 0; col = 0 }

let parse_goal text =
  match Parser.parse_rule ("query_goal <- " ^ text) with
  | { Ast.body = [ Ast.Pos a ]; _ } -> a
  | _ -> raise (Parser.Error ("queries take a single positive atom", nowhere))

let query ?compiled t ~engine ~text ~jobs ~limits ~telemetry =
  match parse_goal text with
  | exception Parser.Error (msg, pos) -> Error (of_gbc_error (Gbc_error.Parse (msg, pos)))
  | goal -> (
    match run ?compiled t ~engine ~seed:None ~jobs ~limits ~telemetry with
    | Error e -> Error e
    | Ok outcome ->
      let complete = match outcome with Limits.Complete _ -> true | _ -> false in
      let db = Limits.value outcome in
      protect (fun () ->
          let body = Eval.compile_body [ Ast.Pos goal ] in
          let vars = Ast.atom_vars goal in
          let rows = Eval.solutions body db (List.map (fun v -> Ast.Var v) vars) in
          let rendered =
            List.map
              (fun row ->
                if vars = [] then "true"
                else
                  String.concat ", "
                    (List.map2 (fun v x -> v ^ " = " ^ Value.to_string x) vars row))
              rows
          in
          (complete, vars, rendered)))


(* ---------------- recovery ---------------- *)

let warn_recovery t msg =
  match t.durability with
  | Some d -> Durable.warn d.dur (Printf.sprintf "session %d: %s" t.id msg)
  | None -> ()

(* Re-execute a logged complete run to rebuild the warm
   materialization, then prove the model byte-identical to what was
   served before the crash: the canonical rendering's MD5 must match
   the one logged with the record.  Any disagreement — partial
   outcome, error, digest mismatch — drops the materialization and
   warns; the next client run evaluates from scratch.  Recovery never
   crashes and never serves a silently different model warm. *)
let replay_run t ~engine ~seed ~digest =
  let limits = Limits.create ~cancel:t.cancel () in
  let telemetry = Telemetry.create () in
  match run t ~engine:(engine_of_int engine) ~seed ~jobs:1 ~limits ~telemetry with
  | Ok (Limits.Complete model) ->
    if model_digest model <> digest then begin
      warn_recovery t "replayed run disagrees with the logged model digest; materialization dropped";
      t.mat <- None
    end
  | Ok (Limits.Partial _) | Error _ ->
    warn_recovery t "a logged run did not complete on replay; materialization dropped";
    t.mat <- None

let replay_load t dur digest =
  match Durable.load_program dur digest with
  | None ->
    warn_recovery t (Printf.sprintf "program %s is missing from the store; its state is lost" digest)
  | Some src -> (
    match load t src with
    | Ok _ -> ()
    | Error (_, msg) -> warn_recovery t ("stored program no longer compiles: " ^ msg))

let restore ~cache dur id =
  let t = create ~durable:dur ~cache ~id () in
  let d = match t.durability with Some d -> d | None -> assert false in
  t.replaying <- true;
  t.attachable <- true;
  let snap = Durable.read_snapshot dur ~id in
  let base_lsn = match snap with Some s -> s.Durable.last_lsn | None -> -1 in
  (* 1. the snapshot: program through the cache, then fact base,
     multiset, dedup state and (when stored) the materialization *)
  (match snap with
  | None -> ()
  | Some s ->
    (match s.Durable.digest with
    | None -> ()
    | Some digest -> replay_load t dur digest);
    (match t.entry with
    | None -> ()
    | Some entry ->
      t.db <- Some s.Durable.db;
      List.iter
        (fun (pred, row, n) -> Relation.Row_tbl.replace (occ_tbl t pred) row n)
        s.Durable.multiset;
      t.last_mut <- s.Durable.last_mut;
      (match s.Durable.mat with
      | None -> ()
      | Some m ->
        if model_digest m.Durable.model <> m.Durable.model_digest then
          warn_recovery t "snapshot materialization fails its digest; dropped"
        else
          t.mat <-
            Some
              { mat_engine = engine_of_int m.Durable.m_engine;
                mat_seed = m.Durable.m_seed;
                ivm =
                  Ivm.create entry.Program_cache.rules ~edb:s.Durable.db
                    ~model:m.Durable.model })));
  (* 2. the WAL tail: records beyond the snapshot, in order, through
     the exact in-memory paths the live session used *)
  let { Wal.records; corrupt } = Wal.replay (Durable.wal_path dur id) in
  (match corrupt with
  | Some msg -> warn_recovery t ("write-ahead log tail dropped: " ^ msg)
  | None -> ());
  let replayed = ref 0 in
  let max_lsn = ref base_lsn in
  List.iter
    (fun (lsn, record) ->
      if lsn > base_lsn then begin
        if lsn > !max_lsn then max_lsn := lsn;
        incr replayed;
        match record with
        | Wal.Load { digest } -> replay_load t dur digest
        | Wal.Assert { text; id } -> (
          match assert_facts ?id t text with
          | Ok _ -> ()
          | Error (_, msg) -> warn_recovery t ("a logged assert failed on replay: " ^ msg))
        | Wal.Retract { text; id } -> (
          match retract_facts ?id t text with
          | Ok _ -> ()
          | Error (_, msg) -> warn_recovery t ("a logged retract failed on replay: " ^ msg))
        | Wal.Run { engine; seed; model_digest } -> replay_run t ~engine ~seed ~digest:model_digest
      end)
    records;
  d.next_lsn <- !max_lsn + 1;
  d.since_snapshot <- !replayed;
  t.replaying <- false;
  t
