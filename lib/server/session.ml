(* A session: one connected client's private view of the engine.

   A session owns a reference to an immutable cache entry (the
   compiled program) and a private database snapshot taken from the
   entry's frozen fact base with [Database.copy] — copy-on-write at
   the relation level, so isolation between sessions sharing a cached
   program costs O(#relations) until a session actually asserts.

   Lifecycle:
     Load        -> snapshot := copy(entry.base); asserted := []
     Assert      -> facts added to the snapshot (and remembered)
     Retract     -> snapshot rebuilt from base + remaining asserts
     Run/Query/
     Enumerate   -> evaluate on copy(snapshot); the snapshot itself
                    never sees derived facts, so runs are repeatable

   A session is driven by at most one worker at a time (the server
   dispatches one request per connection), so nothing here needs a
   lock; the only cross-domain touch is [cancel], which the event loop
   sets when the client disconnects and the governor polls. *)

module Ast = Gbc_datalog.Ast
module Database = Gbc_datalog.Database
module Value = Gbc_datalog.Value
module Parser = Gbc_datalog.Parser
module Eval = Gbc_datalog.Eval
module Limits = Gbc_datalog.Limits
module Telemetry = Gbc_datalog.Telemetry
module Gbc_error = Gbc_datalog.Gbc_error
module Choice_fixpoint = Gbc_datalog.Choice_fixpoint
module Stage_engine = Gbc_datalog.Stage_engine
module Lexer = Gbc_datalog.Lexer

type counters = {
  mutable requests : int;
  mutable evaluations : int;  (* Run + Enumerate + Query *)
  mutable partials : int;
  mutable errors : int;
  mutable facts_asserted : int;
  mutable facts_retracted : int;
  mutable eval_wall_s : float;
  engine_totals : (string, int) Hashtbl.t;  (* summed Telemetry.totals *)
}

type t = {
  id : int;
  cache : Program_cache.t;
  cancel : bool ref;
  mutable entry : Program_cache.entry option;
  mutable db : Database.t option;  (* base snapshot + asserted facts *)
  mutable asserted : (string * Value.t array) list;  (* newest first *)
  counters : counters;
}

type error = Protocol.error_code * string

let create ~cache ~id =
  { id;
    cache;
    cancel = ref false;
    entry = None;
    db = None;
    asserted = [];
    counters =
      { requests = 0; evaluations = 0; partials = 0; errors = 0; facts_asserted = 0;
        facts_retracted = 0; eval_wall_s = 0.0; engine_totals = Hashtbl.create 16 } }

let of_gbc_error (e : Gbc_error.t) : error =
  let code =
    match e with
    | Gbc_error.Lex _ -> Protocol.Lex_error
    | Gbc_error.Parse _ -> Protocol.Parse_error
    | Gbc_error.Unsafe _ -> Protocol.Unsafe
    | Gbc_error.Unsupported _ -> Protocol.Unsupported
    | Gbc_error.Not_compilable _ -> Protocol.Not_compilable
    | Gbc_error.Io _ -> Protocol.Io_error
  in
  (code, Gbc_error.to_string e)

(* Classify like Gbc_error.protect, but also absorb the
   [Invalid_argument]s the substrate raises on arity clashes and
   rule-shape violations — a client must never crash a worker. *)
let protect f =
  match Gbc_error.protect f with
  | Ok v -> Ok v
  | Error e -> Error (of_gbc_error e)
  | exception Invalid_argument msg -> Error (Protocol.Unsupported, msg)

(* ---------------- load / assert / retract ---------------- *)

let load t source =
  match Program_cache.find_or_compile t.cache source with
  | Error e -> Error (of_gbc_error e)
  | Ok (entry, hit) ->
    t.entry <- Some entry;
    t.db <- Some (Database.copy entry.Program_cache.base);
    t.asserted <- [];
    Ok (entry, hit)

let parse_ground_facts text =
  protect (fun () ->
      let clauses = Parser.parse_program text in
      List.map
        (fun r ->
          if not (Ast.is_fact r) then
            raise (Parser.Error ("expected ground facts only", { Lexer.line = 0; col = 0 }));
          (r.Ast.head.Ast.pred, Array.of_list (List.map Ast.term_to_value r.Ast.head.Ast.args)))
        clauses)

let with_db t f =
  match t.db with
  | None -> Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some db -> f db

let assert_facts t text =
  with_db t (fun db ->
      match parse_ground_facts text with
      | Error e -> Error e
      | Ok facts ->
        protect (fun () ->
            let added =
              List.fold_left
                (fun added (pred, row) ->
                  if Database.add_fact db pred row then begin
                    t.asserted <- (pred, row) :: t.asserted;
                    added + 1
                  end
                  else added)
                0 facts
            in
            t.counters.facts_asserted <- t.counters.facts_asserted + added;
            added))

let row_equal (p1, (r1 : Value.t array)) (p2, r2) =
  String.equal p1 p2 && Array.length r1 = Array.length r2
  && (let ok = ref true in
      Array.iteri (fun i v -> if not (Value.equal v r2.(i)) then ok := false) r1;
      !ok)

(* Relations are append-only, so retraction rebuilds the snapshot from
   the frozen base plus the surviving asserts.  Only session-asserted
   facts are retractable; the loaded program's own facts are part of
   the compiled entry and immutable. *)
let retract_facts t text =
  match t.entry with
  | None -> Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some entry -> (
    match parse_ground_facts text with
    | Error e -> Error e
    | Ok facts ->
      protect (fun () ->
          let removed = ref 0 in
          let survivors =
            List.filter
              (fun kept ->
                if List.exists (row_equal kept) facts then begin
                  incr removed;
                  false
                end
                else true)
              t.asserted
          in
          if !removed > 0 then begin
            let db = Database.copy entry.Program_cache.base in
            List.iter (fun (pred, row) -> ignore (Database.add_fact db pred row))
              (List.rev survivors);
            t.asserted <- survivors;
            t.db <- Some db
          end;
          t.counters.facts_retracted <- t.counters.facts_retracted + !removed;
          !removed))

(* ---------------- evaluation ---------------- *)

let map_outcome f = function
  | Limits.Complete x -> Limits.Complete (f x)
  | Limits.Partial (x, d) -> Limits.Partial (f x, d)

let note_eval t telemetry t0 =
  t.counters.evaluations <- t.counters.evaluations + 1;
  t.counters.eval_wall_s <- t.counters.eval_wall_s +. (Unix.gettimeofday () -. t0);
  List.iter
    (fun (k, v) ->
      let prev = try Hashtbl.find t.counters.engine_totals k with Not_found -> 0 in
      Hashtbl.replace t.counters.engine_totals k (prev + v))
    (Telemetry.totals telemetry)

let run t ~engine ~seed ~jobs ~limits ~telemetry =
  match (t.entry, t.db) with
  | None, _ | _, None -> Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some entry, Some db ->
    let work = Database.copy db in
    let t0 = Unix.gettimeofday () in
    let result =
      protect (fun () ->
          match engine with
          | Protocol.Staged ->
            map_outcome fst
              (Stage_engine.run_governed ~telemetry ~limits ~jobs ~db:work
                 entry.Program_cache.rules)
          | Protocol.Reference ->
            let policy =
              match seed with Some s -> Choice_fixpoint.Random s | None -> Choice_fixpoint.First
            in
            map_outcome fst
              (Choice_fixpoint.run_governed ~policy ~telemetry ~limits ~jobs ~db:work
                 entry.Program_cache.rules))
    in
    note_eval t telemetry t0;
    (match result with
     | Ok (Limits.Partial _) -> t.counters.partials <- t.counters.partials + 1
     | _ -> ());
    result

let enumerate t ~max_models ~limits =
  match (t.entry, t.db) with
  | None, _ | _, None -> Error (Protocol.No_program, "no program loaded (send a load frame first)")
  | Some entry, Some db -> (
    let t0 = Unix.gettimeofday () in
    let result =
      protect (fun () ->
          (* [enumerate] snapshots the db itself; [Exhausted] escapes
             it (there is no governed variant of a model set), so it
             becomes a structured error frame here. *)
          try Ok (Choice_fixpoint.enumerate ~max_models ~limits ~db entry.Program_cache.rules)
          with Limits.Exhausted v ->
            Error
              ( Protocol.Budget_exhausted,
                "enumeration stopped: " ^ Limits.violation_to_string v ))
    in
    t.counters.evaluations <- t.counters.evaluations + 1;
    t.counters.eval_wall_s <- t.counters.eval_wall_s +. (Unix.gettimeofday () -. t0);
    match result with Ok r -> r | Error e -> Error e)

let nowhere = { Lexer.line = 0; col = 0 }

let parse_goal text =
  match Parser.parse_rule ("query_goal <- " ^ text) with
  | { Ast.body = [ Ast.Pos a ]; _ } -> a
  | _ -> raise (Parser.Error ("queries take a single positive atom", nowhere))

let query t ~engine ~text ~jobs ~limits ~telemetry =
  match parse_goal text with
  | exception Parser.Error (msg, pos) -> Error (of_gbc_error (Gbc_error.Parse (msg, pos)))
  | goal -> (
    match run t ~engine ~seed:None ~jobs ~limits ~telemetry with
    | Error e -> Error e
    | Ok outcome ->
      let complete = match outcome with Limits.Complete _ -> true | _ -> false in
      let db = Limits.value outcome in
      protect (fun () ->
          let body = Eval.compile_body [ Ast.Pos goal ] in
          let vars = Ast.atom_vars goal in
          let rows = Eval.solutions body db (List.map (fun v -> Ast.Var v) vars) in
          let rendered =
            List.map
              (fun row ->
                if vars = [] then "true"
                else
                  String.concat ", "
                    (List.map2 (fun v x -> v ^ " = " ^ Value.to_string x) vars row))
              rows
          in
          (complete, vars, rendered)))

(* ---------------- rendering ---------------- *)

(* Identical to the CLI's print_model: the whole model through
   [Database.pp] (sorted, one fact per line), or the chosen predicates
   in insertion order. *)
let render_model ?preds db =
  match preds with
  | None -> Format.asprintf "%a" Database.pp db
  | Some preds ->
    let b = Buffer.create 256 in
    List.iter
      (fun pred ->
        List.iter
          (fun row ->
            Buffer.add_string b
              (Printf.sprintf "%s(%s).\n" pred
                 (String.concat ", " (List.map Value.to_string (Array.to_list row)))))
          (Database.facts_of db pred))
      preds;
    Buffer.contents b
