(* gbcd: the concurrent query-serving daemon.

   Architecture — one event-loop domain plus a pool of worker domains:

   - The event loop owns every socket.  It accepts connections, reads
     bytes, splits frames (Protocol.extract_frame), decodes requests
     (v1 or enveloped v2), and queues session-bound work on the shared
     work queue at most one per connection at a time (per-connection
     FIFO order is what makes assert-then-run meaningful).  Enveloped
     Ping/Hello frames are "independent": they carry no session state,
     so they are dispatched immediately — even while a session-bound
     request is in flight — and their replies genuinely overtake
     (out-of-order, matched by the envelope id on the client).  It
     also owns all outbound buffers and flushes them as sockets become
     writable.

   - Worker domains block on the work queue, evaluate the request
     against the connection's session under a per-request Limits
     governor, and push the encoded response onto the completion
     queue, waking the loop through a self-pipe.  Workers never touch
     sockets or connection state — only the session they were handed.

   - Workers are supervised: an exception escaping a request handler
     (which already classifies everything it can) answers the client
     with a structured error frame, reports the death on the
     completion queue, and lets the domain exit; the event loop joins
     the corpse and spawns a replacement, so the pool never shrinks
     and no connection hangs on a dead worker.

   - Client disconnects flip the session's cancellation token, so a
     runaway evaluation for a dead client stops at the governor's next
     poll; the orphaned response is discarded.

   - With a data dir configured, sessions are durable: mutations are
     write-ahead logged and periodically snapshotted (see Session and
     Durable), startup restores every on-disk session into the
     detached registry, and a client reclaims its session with Attach.
     The actual connection/session swap happens on the event loop (it
     owns connections); the worker only claims the target under the
     registry lock and posts a [Swap].

   - Shutdown is a graceful drain: stop accepting, finish in-flight
     evaluations and flush their responses, answer queued-but-unstarted
     requests with a Draining error, then join the workers and close.

   Every server-side failure is classified (Session.protect /
   Gbc_error) and returned as a structured Error frame; a connection
   is only ever closed by the client, by a framing violation, by the
   idle reaper, or by drain. *)

module Limits = Gbc_datalog.Limits
module Telemetry = Gbc_datalog.Telemetry

(* A lock-free log2-bucketed histogram: bucket i counts values v with
   floor(log2 v) = i (v = 0 lands in bucket 0).  Cheap enough for the
   per-request hot path, precise enough for tail percentiles — a
   reported percentile is the bucket's upper bound, clamped by the
   true maximum.  Workers add concurrently; readers get a consistent-
   enough snapshot for stats. *)
module Hist = struct
  type t = {
    buckets : int Atomic.t array;
    count : int Atomic.t;
    sum : int Atomic.t;
    max : int Atomic.t;
  }

  let nbuckets = 40

  let create () =
    { buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum = Atomic.make 0;
      max = Atomic.make 0 }

  let bucket_of v =
    let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
    min (nbuckets - 1) (go 0 (max v 0))

  let add t v =
    let v = max 0 v in
    Atomic.incr t.buckets.(bucket_of v);
    Atomic.incr t.count;
    ignore (Atomic.fetch_and_add t.sum v);
    let rec bump () =
      let m = Atomic.get t.max in
      if v > m && not (Atomic.compare_and_set t.max m v) then bump ()
    in
    bump ()

  let count t = Atomic.get t.count
  let max_value t = Atomic.get t.max

  let mean t =
    let n = Atomic.get t.count in
    if n = 0 then 0.0 else float_of_int (Atomic.get t.sum) /. float_of_int n

  (* the value at percentile p (0 < p <= 100): upper bound of the
     bucket where the cumulative count crosses it *)
  let percentile t p =
    let total = Atomic.get t.count in
    if total = 0 then 0
    else begin
      let target =
        Stdlib.max 1 (int_of_float (Float.round (p *. float_of_int total /. 100.0)))
      in
      let cum = ref 0 in
      let result = ref (Atomic.get t.max) in
      (try
         Array.iteri
           (fun i b ->
             cum := !cum + Atomic.get b;
             if !cum >= target then begin
               result := (2 lsl i) - 1;
               raise Exit
             end)
           t.buckets
       with Exit -> ());
      min !result (Atomic.get t.max)
    end
end

type config = {
  host : string;
  port : int option;  (* None: no TCP listener *)
  unix_path : string option;  (* None: no Unix-domain listener *)
  backlog : int;
  workers : int;
  default_timeout_s : float option;  (* per-request governor caps *)
  max_facts : int option;
  max_steps : int option;
  max_candidates : int option;
  max_jobs : int;  (* cap on granted evaluation domains per request *)
  max_frame : int;
  cache_capacity : int;
  compiled : bool;  (* evaluate with the AOT-compiled closure chains *)
  data_dir : string option;  (* None: ephemeral sessions, no WAL *)
  fsync : Wal.fsync_policy;
  snapshot_every : int;  (* WAL records between snapshots; 0 disables *)
  idle_timeout_s : float option;  (* reap idle conns + detached sessions *)
  worker_fault : int option;  (* tests only: k-th request kills its worker *)
}

let default_config =
  { host = "127.0.0.1";
    port = Some 7411;
    unix_path = None;
    backlog = 64;
    workers = 4;
    default_timeout_s = Some 30.0;
    max_facts = None;
    max_steps = None;
    max_candidates = None;
    max_jobs = 1;
    max_frame = Protocol.max_frame_default;
    cache_capacity = 64;
    compiled = false;
    data_dir = None;
    fsync = Wal.Batch 16;
    snapshot_every = 64;
    idle_timeout_s = None;
    worker_fault = None }

type conn = {
  fd : Unix.file_descr;
  mutable session : Session.t;  (* event-loop owned; replaced by Attach *)
  inbuf : Buffer.t;  (* unconsumed inbound bytes *)
  out : Buffer.t;  (* outbound bytes; [out_off] already written *)
  mutable out_off : int;
  pending : (int option * Protocol.request * float) Queue.t;
      (* (envelope id, request, parse time) — parse time feeds the
         queue-wait histogram when a worker finally dequeues it *)
  mutable busy : bool;  (* a session-bound request is with a worker *)
  mutable inflight : int;  (* all requests with workers, independents included *)
  mutable alive : bool;  (* fd open *)
  mutable peer_gone : bool;  (* EOF/error seen; stop reading *)
  mutable close_after_flush : bool;
  mutable last_activity : float;  (* inbound data or completed request *)
}

type post = Keep | Start_drain | Swap of Session.t

type work_item =
  | Job of conn * int option * Protocol.request * bool * float
      (* conn, envelope id, request, session-bound?, parse time *)
  | Quit

type completion =
  | Done of conn * string * post * bool  (* encoded reply, post-action, session-bound? *)
  | Worker_died of int * string  (* slot, cause — respawn it *)

type t = {
  cfg : config;
  listeners : Unix.file_descr list;
  tcp_port : int option;  (* actual bound port (for port 0) *)
  cache : Program_cache.t;
  durable : Durable.t option;
  work_m : Mutex.t;
  work_c : Condition.t;
  work : work_item Queue.t;
  done_m : Mutex.t;
  done_q : completion Queue.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  draining : bool Atomic.t;
  started_at : float;
  requests : int Atomic.t;
  errors : int Atomic.t;
  partials : int Atomic.t;
  sessions_total : int Atomic.t;
  (* the session registry: which ids are on a connection, which are
     detached (attachable, conn-less) and when they detached.  Workers
     claim from it (Attach), the event loop releases into it, the idle
     sweep reaps from it — all under [sessions_m]. *)
  sessions_m : Mutex.t;
  live_ids : (int, unit) Hashtbl.t;
  detached : (int, Session.t * float) Hashtbl.t;
  open_conns : int Atomic.t;
  workers_respawned : int Atomic.t;
  sessions_reaped : int Atomic.t;
  sessions_recovered : int Atomic.t;
  conns_idle_closed : int Atomic.t;
  fault_tick : int Atomic.t;  (* counts requests toward [worker_fault] *)
  totals_m : Mutex.t;
  engine_totals : (string, int) Hashtbl.t;
  queue_wait : Hist.t;  (* µs from frame parse to worker dequeue *)
  depth : Hist.t;  (* per-connection in-flight depth at each dispatch *)
  inflight_max : int Atomic.t;  (* deepest pipeline any connection reached *)
  mutable conns : conn list;  (* event-loop owned *)
}

(* ---------------- creation ---------------- *)

let bind_tcp host port backlog =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = try Unix.inet_addr_of_string host with Failure _ -> failwith ("bad host " ^ host) in
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd backlog;
  let actual =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, actual)

let bind_unix path backlog =
  if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  fd

let create cfg =
  (* writes to sockets whose peer vanished must surface as EPIPE, not
     kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let cache = Program_cache.create ~capacity:cfg.cache_capacity () in
    let durable =
      match cfg.data_dir with
      | None -> None
      | Some dir -> (
        match Durable.create ~fsync:cfg.fsync ~snapshot_every:cfg.snapshot_every dir with
        | Ok d -> Some d
        | Error msg -> failwith msg)
    in
    (* Recover before binding: warm the compile cache from the program
       store, then rebuild every on-disk session (snapshot + WAL tail)
       into the detached registry — clients reclaim them with Attach.
       Nothing is accepted until the restored state is consistent. *)
    let detached = Hashtbl.create 16 in
    let sessions_total = Atomic.make 0 in
    let sessions_recovered = Atomic.make 0 in
    (match durable with
    | None -> ()
    | Some dur ->
      List.iter
        (fun src -> ignore (Program_cache.find_or_compile cache src))
        (Durable.list_programs dur);
      List.iter
        (fun id ->
          let s = Session.restore ~cache dur id in
          Hashtbl.replace detached id (s, Unix.gettimeofday ());
          Atomic.incr sessions_recovered;
          if id > Atomic.get sessions_total then Atomic.set sessions_total id)
        (Durable.session_ids dur));
    let tcp = Option.map (fun p -> bind_tcp cfg.host p cfg.backlog) cfg.port in
    let uds = Option.map (fun p -> bind_unix p cfg.backlog) cfg.unix_path in
    let listeners =
      List.filter_map Fun.id [ Option.map fst tcp; uds ]
    in
    if listeners = [] then failwith "no listener configured (need a port or a unix path)";
    List.iter Unix.set_nonblock listeners;
    let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock pipe_r;
    Unix.set_nonblock pipe_w;
    { cfg;
      listeners;
      tcp_port = Option.map snd tcp;
      cache;
      durable;
      work_m = Mutex.create ();
      work_c = Condition.create ();
      work = Queue.create ();
      done_m = Mutex.create ();
      done_q = Queue.create ();
      pipe_r;
      pipe_w;
      draining = Atomic.make false;
      started_at = Unix.gettimeofday ();
      requests = Atomic.make 0;
      errors = Atomic.make 0;
      partials = Atomic.make 0;
      sessions_total;
      sessions_m = Mutex.create ();
      live_ids = Hashtbl.create 16;
      detached;
      open_conns = Atomic.make 0;
      workers_respawned = Atomic.make 0;
      sessions_reaped = Atomic.make 0;
      sessions_recovered;
      conns_idle_closed = Atomic.make 0;
      fault_tick = Atomic.make 0;
      totals_m = Mutex.create ();
      engine_totals = Hashtbl.create 32;
      queue_wait = Hist.create ();
      depth = Hist.create ();
      inflight_max = Atomic.make 0;
      conns = [] }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> Error msg

let port t = t.tcp_port

let wake t =
  try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let shutdown t =
  Atomic.set t.draining true;
  wake t

(* ---------------- the session registry ---------------- *)

(* Release a session whose connection is gone: attachable sessions
   wait in the detached registry for a reconnecting client (their WAL
   stays open for the next mutation); anything else is discarded.
   During drain nothing waits. *)
let release_session t (s : Session.t) =
  Mutex.protect t.sessions_m (fun () ->
      Hashtbl.remove t.live_ids s.Session.id;
      if s.Session.attachable && not (Atomic.get t.draining) then
        Hashtbl.replace t.detached s.Session.id (s, Unix.gettimeofday ())
      else Session.discard s)

(* Claim a session for attachment: detached in memory first, then —
   when durable — restored from disk (it may have been idle-reaped, or
   belong to a previous daemon run whose startup recovery was itself
   interrupted).  The restore runs under [sessions_m] so two clients
   racing for one id cannot both rebuild it; attaches are rare enough
   that the stall does not matter. *)
let claim_session t id =
  Mutex.protect t.sessions_m (fun () ->
      if Hashtbl.mem t.live_ids id then
        Error (Printf.sprintf "session %d is attached to another connection" id)
      else
        match Hashtbl.find_opt t.detached id with
        | Some (s, _) ->
          Hashtbl.remove t.detached id;
          Hashtbl.replace t.live_ids id ();
          s.Session.cancel := false;
          Ok s
        | None -> (
          match t.durable with
          | Some dur when Durable.session_exists dur id ->
            let s = Session.restore ~cache:t.cache dur id in
            Atomic.incr t.sessions_recovered;
            Hashtbl.replace t.live_ids id ();
            Ok s
          | _ -> Error (Printf.sprintf "no session %d" id)))

(* ---------------- per-request governance ---------------- *)

let opt_min a b = match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (min a b)

(* The effective budget is the pointwise minimum of the server's caps
   and whatever the client asked for — clients tighten, never loosen.
   The cancellation token is always wired in, so a disconnect stops
   even a budget-less run. *)
let effective_limits t (session : Session.t) (b : Protocol.budget) =
  let ms_to_s ms = float_of_int ms /. 1000.0 in
  Limits.create
    ?timeout_s:(opt_min t.cfg.default_timeout_s (Option.map ms_to_s b.Protocol.timeout_ms))
    ?max_facts:(opt_min t.cfg.max_facts b.Protocol.max_facts)
    ?max_steps:(opt_min t.cfg.max_steps b.Protocol.max_steps)
    ?max_candidates:(opt_min t.cfg.max_candidates b.Protocol.max_candidates)
    ~cancel:session.Session.cancel ()

(* Granted parallelism: the client's request clamped by the server's
   [max_jobs]; no request (or a nonsense one) means sequential. *)
let effective_jobs t (b : Protocol.budget) =
  max 1 (min t.cfg.max_jobs (Option.value b.Protocol.jobs ~default:1))

(* ---------------- stats ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let totals_json tbl =
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v) entries)
  ^ "}"

let durable_json t =
  match t.durable with
  | None -> "null"
  | Some d ->
    Printf.sprintf
      "{\"data_dir\": \"%s\", \"fsync\": \"%s\", \"snapshot_every\": %d, \"wal_records\": %d, \
       \"snapshots_written\": %d}"
      (json_escape (Durable.root d))
      (Wal.fsync_policy_to_string (Durable.fsync d))
      (Durable.snapshot_every d) (Wal.appended ())
      (Durable.snapshots_written ())

let stats_json t (session : Session.t) =
  let cache = Program_cache.stats t.cache in
  let c = session.Session.counters in
  let global_totals = Mutex.protect t.totals_m (fun () -> totals_json t.engine_totals) in
  let sessions_detached = Mutex.protect t.sessions_m (fun () -> Hashtbl.length t.detached) in
  Printf.sprintf
    "{\"server\": {\"workers\": %d, \"max_jobs\": %d, \"uptime_s\": %.3f, \"draining\": %b, \"requests\": %d, \
     \"errors\": %d, \"partials\": %d, \"sessions_total\": %d, \"open_conns\": %d, \
     \"workers_respawned\": %d, \"sessions_detached\": %d, \"sessions_reaped\": %d, \
     \"sessions_recovered\": %d, \"conns_idle_closed\": %d, \"inflight_max\": %d, \
     \"pipelined_depth_p99\": %d, \"queue_wait\": {\"count\": %d, \"mean_us\": %.1f, \
     \"p50_us\": %d, \"p99_us\": %d, \"max_us\": %d}, \"durable\": %s, \"cache\": {\"hits\": %d, \
     \"misses\": %d, \"evictions\": %d, \"entries\": %d, \"programs_compiled\": %d, \
     \"compile_ms_total\": %.3f}, \"engine\": %s}, \"session\": \
     {\"id\": %d, \"requests\": %d, \"evaluations\": %d, \"partials\": %d, \"errors\": %d, \
     \"facts_asserted\": %d, \"facts_retracted\": %d, \"runs_incremental\": %d, \
     \"runs_full\": %d, \"ivm_fallbacks\": %d, \"eval_wall_s\": %.6f, \"engine\": %s}}"
    t.cfg.workers t.cfg.max_jobs
    (Unix.gettimeofday () -. t.started_at)
    (Atomic.get t.draining) (Atomic.get t.requests) (Atomic.get t.errors)
    (Atomic.get t.partials)
    (Atomic.get t.sessions_total)
    (Atomic.get t.open_conns)
    (Atomic.get t.workers_respawned)
    sessions_detached
    (Atomic.get t.sessions_reaped)
    (Atomic.get t.sessions_recovered)
    (Atomic.get t.conns_idle_closed)
    (Atomic.get t.inflight_max)
    (Hist.percentile t.depth 99.0)
    (Hist.count t.queue_wait) (Hist.mean t.queue_wait)
    (Hist.percentile t.queue_wait 50.0)
    (Hist.percentile t.queue_wait 99.0)
    (Hist.max_value t.queue_wait)
    (durable_json t) cache.Program_cache.hits cache.Program_cache.misses
    cache.Program_cache.evictions cache.Program_cache.entries
    cache.Program_cache.programs_compiled cache.Program_cache.compile_ms_total global_totals
    session.Session.id
    c.Session.requests c.Session.evaluations c.Session.partials c.Session.errors
    c.Session.facts_asserted c.Session.facts_retracted c.Session.runs_incremental
    c.Session.runs_full c.Session.ivm_fallbacks c.Session.eval_wall_s
    (totals_json c.Session.engine_totals)

(* ---------------- request handling (worker side) ---------------- *)

let merge_global_totals t telemetry =
  match Telemetry.totals telemetry with
  | [] -> ()
  | totals ->
    Mutex.protect t.totals_m (fun () ->
        List.iter
          (fun (k, v) ->
            let prev = try Hashtbl.find t.engine_totals k with Not_found -> 0 in
            Hashtbl.replace t.engine_totals k (prev + v))
          totals)

let handle_request t (session : Session.t) req : Protocol.response * post =
  Atomic.incr t.requests;
  session.Session.counters.Session.requests <-
    session.Session.counters.Session.requests + 1;
  let err (code, message) =
    Atomic.incr t.errors;
    session.Session.counters.Session.errors <- session.Session.counters.Session.errors + 1;
    (Protocol.Error { code; message }, Keep)
  in
  try
    match req with
    | Protocol.Ping -> (Protocol.Pong, Keep)
    | Protocol.Hello { version } ->
      (Protocol.Welcome { version = min version Protocol.protocol_version }, Keep)
    | Protocol.Shutdown -> (Protocol.Bye, Start_drain)
    | Protocol.Stats -> (Protocol.Stats_json (stats_json t session), Keep)
    | Protocol.Attach None ->
      (* survive this connection: from now on the session outlives its
         socket and can be reclaimed by id *)
      session.Session.attachable <- true;
      (Protocol.Attached { id = session.Session.id }, Keep)
    | Protocol.Attach (Some id) ->
      if id = session.Session.id then (Protocol.Attached { id }, Keep)
      else (
        match claim_session t id with
        | Ok s -> (Protocol.Attached { id }, Swap s)
        | Error msg -> err (Protocol.No_session, msg))
    | Protocol.Load src -> (
      match Session.load session src with
      | Ok (entry, cache_hit) ->
        ( Protocol.Loaded
            { clauses = List.length entry.Program_cache.program;
              cache_hit;
              digest = entry.Program_cache.digest;
              stage_stratified = entry.Program_cache.report.Gbc_datalog.Stage.stage_stratified },
          Keep )
      | Error e -> err e)
    | Protocol.Assert_facts { text; id } -> (
      match Session.assert_facts ?id session text with
      | Ok added -> (Protocol.Asserted { added }, Keep)
      | Error e -> err e)
    | Protocol.Retract_facts { text; id } -> (
      match Session.retract_facts ?id session text with
      | Ok removed -> (Protocol.Retracted { removed }, Keep)
      | Error e -> err e)
    | Protocol.Run { engine; seed; preds; budget } -> (
      let limits = effective_limits t session budget in
      let jobs = effective_jobs t budget in
      let telemetry = Telemetry.create () in
      let result =
        Session.run ~compiled:t.cfg.compiled session ~engine ~seed ~jobs ~limits ~telemetry
      in
      merge_global_totals t telemetry;
      match result with
      | Ok (Limits.Complete db) ->
        (Protocol.Model { complete = true; text = Session.render_model ?preds db; diagnostic = None }, Keep)
      | Ok (Limits.Partial (db, d)) ->
        Atomic.incr t.partials;
        ( Protocol.Model
            { complete = false;
              text = Session.render_model ?preds db;
              diagnostic = Some (Format.asprintf "%a" Limits.pp_diagnostics d) },
          Keep )
      | Error e -> err e)
    | Protocol.Enumerate { max_models; preds } -> (
      let limits = effective_limits t session Protocol.no_budget in
      match Session.enumerate session ~max_models:(max 1 max_models) ~limits with
      | Ok models ->
        ( Protocol.Model_set
            { total = List.length models;
              models = List.map (fun db -> Session.render_model ?preds db) models },
          Keep )
      | Error e -> err e)
    | Protocol.Query { engine; text; budget } -> (
      let limits = effective_limits t session budget in
      let jobs = effective_jobs t budget in
      let telemetry = Telemetry.create () in
      let result =
        Session.query ~compiled:t.cfg.compiled session ~engine ~text ~jobs ~limits ~telemetry
      in
      merge_global_totals t telemetry;
      match result with
      | Ok (complete, vars, rows) ->
        if not complete then Atomic.incr t.partials;
        (Protocol.Answers { complete; vars; rows }, Keep)
      | Error e -> err e)
  with e ->
    (* last-resort classification: a worker must survive anything *)
    err (Protocol.Server_error, Printexc.to_string e)

(* Replies echo the request's wire form: an enveloped request gets its
   reply wrapped in a response envelope carrying the same id, a bare v1
   request gets a bare v1 reply. *)
let encode_reply rid resp =
  match rid with
  | Some rid -> Protocol.encode_response_v2 ~rid resp
  | None -> Protocol.encode_response resp

let worker t slot =
  let pop () =
    Mutex.lock t.work_m;
    while Queue.is_empty t.work do
      Condition.wait t.work_c t.work_m
    done;
    let item = Queue.pop t.work in
    Mutex.unlock t.work_m;
    item
  in
  let rec go () =
    match pop () with
    | Quit -> ()
    | Job (conn, rid, req, session_bound, parsed_at) -> (
      Hist.add t.queue_wait
        (int_of_float ((Unix.gettimeofday () -. parsed_at) *. 1e6));
      match
        (match t.cfg.worker_fault with
        | Some k when k = 1 + Atomic.fetch_and_add t.fault_tick 1 ->
          (* tests only: simulate a handler bug that escapes every
             classification layer *)
          failwith "injected worker fault"
        | _ -> ());
        handle_request t conn.session req
      with
      | resp, post ->
        let bytes = encode_reply rid resp in
        Mutex.protect t.done_m (fun () ->
            Queue.push (Done (conn, bytes, post, session_bound)) t.done_q);
        wake t;
        go ()
      | exception e ->
        (* This domain is compromised: answer the client with a
           structured error (never a hung connection), report the
           death for respawning, and exit the domain. *)
        Atomic.incr t.errors;
        let bytes =
          encode_reply rid
            (Protocol.Error
               { code = Protocol.Server_error;
                 message = "worker crashed handling this request: " ^ Printexc.to_string e })
        in
        Mutex.protect t.done_m (fun () ->
            Queue.push (Done (conn, bytes, Keep, session_bound)) t.done_q;
            Queue.push (Worker_died (slot, Printexc.to_string e)) t.done_q);
        wake t)
  in
  go ()

(* ---------------- event loop ---------------- *)

let close_conn t c =
  if c.alive then begin
    c.alive <- false;
    Atomic.decr t.open_conns;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    release_session t c.session
  end

let on_peer_gone t c =
  if not c.peer_gone then begin
    c.peer_gone <- true;
    (* stop any in-flight evaluation for this client at the governor's
       next poll *)
    c.session.Session.cancel := true;
    Queue.clear c.pending
  end;
  if c.inflight = 0 then close_conn t c

let respond_now ?rid c resp = Buffer.add_string c.out (encode_reply rid resp)

let enqueue_job t c (rid, req, parsed_at) ~session_bound =
  if session_bound then c.busy <- true;
  c.inflight <- c.inflight + 1;
  Hist.add t.depth c.inflight;
  if c.inflight > Atomic.get t.inflight_max then Atomic.set t.inflight_max c.inflight;
  Mutex.protect t.work_m (fun () ->
      Queue.push (Job (c, rid, req, session_bound, parsed_at)) t.work);
  Condition.signal t.work_c

(* Requests that touch no session state may overtake the per-connection
   FIFO — but only when the client asked for it by enveloping them
   (bare v1 traffic keeps its strict request/reply ordering). *)
let independent = function
  | Protocol.Ping | Protocol.Hello _ -> true
  | _ -> false

let dispatch t c =
  if c.alive && not (Queue.is_empty c.pending) then begin
    if Atomic.get t.draining then begin
      (* drain answers queued-but-unstarted work without evaluating *)
      Queue.iter
        (fun (rid, _, _) ->
          respond_now ?rid c
            (Protocol.Error { code = Protocol.Draining; message = "server is draining" }))
        c.pending;
      Queue.clear c.pending;
      c.close_after_flush <- true
    end
    else begin
      (* enveloped independents go to workers immediately, out of
         order; session-bound requests stay one-at-a-time FIFO *)
      let keep = Queue.create () in
      Queue.iter
        (fun ((rid, req, _) as item) ->
          match rid with
          | Some _ when independent req -> enqueue_job t c item ~session_bound:false
          | _ -> Queue.push item keep)
        c.pending;
      Queue.clear c.pending;
      Queue.transfer keep c.pending;
      if (not c.busy) && not (Queue.is_empty c.pending) then
        enqueue_job t c (Queue.pop c.pending) ~session_bound:true
    end
  end

let parse_frames t c =
  let data = Buffer.contents c.inbuf in
  let off = ref 0 in
  let stop = ref false in
  while not !stop do
    match Protocol.extract_frame ~max_frame:t.cfg.max_frame data !off with
    | Protocol.Need_more -> stop := true
    | Protocol.Bad_length n ->
      respond_now c
        (Protocol.Error
           { code = Protocol.Protocol_violation;
             message = Printf.sprintf "unacceptable frame length %d" n });
      (* framing is desynchronized beyond repair; stop reading *)
      c.peer_gone <- true;
      c.close_after_flush <- true;
      stop := true
    | Protocol.Frame (body, next) -> (
      off := next;
      match Protocol.decode_request_v2 body with
      | Ok (rid, req) -> Queue.push (rid, req, Unix.gettimeofday ()) c.pending
      | Error msg ->
        respond_now c
          (Protocol.Error { code = Protocol.Protocol_violation; message = msg });
        c.peer_gone <- true;
        c.close_after_flush <- true;
        stop := true)
  done;
  if !off > 0 then begin
    let rest = String.sub data !off (String.length data - !off) in
    Buffer.clear c.inbuf;
    Buffer.add_string c.inbuf rest
  end;
  dispatch t c

let accept_conn t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> ()
  | fd, _addr ->
    Unix.set_nonblock fd;
    let id = 1 + Atomic.fetch_and_add t.sessions_total 1 in
    Mutex.protect t.sessions_m (fun () -> Hashtbl.replace t.live_ids id ());
    Atomic.incr t.open_conns;
    let c =
      { fd;
        session = Session.create ?durable:t.durable ~cache:t.cache ~id ();
        inbuf = Buffer.create 1024;
        out = Buffer.create 1024;
        out_off = 0;
        pending = Queue.create ();
        busy = false;
        inflight = 0;
        alive = true;
        peer_gone = false;
        close_after_flush = false;
        last_activity = Unix.gettimeofday () }
    in
    t.conns <- c :: t.conns

let read_chunk = Bytes.create 65536

let on_readable t c =
  match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> on_peer_gone t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> on_peer_gone t c
  | n ->
    c.last_activity <- Unix.gettimeofday ();
    Buffer.add_subbytes c.inbuf read_chunk 0 n;
    parse_frames t c

let out_pending c = Buffer.length c.out - c.out_off

let on_writable t c =
  let len = out_pending c in
  if len > 0 then begin
    match Unix.write_substring c.fd (Buffer.contents c.out) c.out_off len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ ->
      (* EPIPE/ECONNRESET and kin: the peer is gone — clean teardown,
         never a crash (SIGPIPE is ignored process-wide) *)
      Buffer.clear c.out;
      c.out_off <- 0;
      on_peer_gone t c
    | n ->
      c.out_off <- c.out_off + n;
      if out_pending c = 0 then begin
        Buffer.clear c.out;
        c.out_off <- 0
      end
  end;
  if out_pending c = 0 && c.close_after_flush && c.inflight = 0 && Queue.is_empty c.pending
  then close_conn t c

let drain_completions t ~respawn =
  let items =
    Mutex.protect t.done_m (fun () ->
        let xs = List.of_seq (Queue.to_seq t.done_q) in
        Queue.clear t.done_q;
        xs)
  in
  List.iter
    (fun item ->
      match item with
      | Worker_died (slot, cause) ->
        Printf.eprintf "gbcd: worker %d died (%s); respawning\n%!" slot cause;
        respawn slot
      | Done (c, bytes, post, session_bound) ->
        if session_bound then c.busy <- false;
        c.inflight <- c.inflight - 1;
        c.last_activity <- Unix.gettimeofday ();
        (match post with
        | Start_drain -> Atomic.set t.draining true
        | Swap s ->
          if c.alive && not c.peer_gone then begin
            (* the connection abandons its old session for the claimed
               one; the old one waits detached (if attachable) or dies *)
            release_session t c.session;
            s.Session.cancel := false;
            c.session <- s
          end
          else
            (* the client vanished mid-attach: the claimed session goes
               straight back to the registry *)
            release_session t s
        | Keep -> ());
        if c.alive && not c.peer_gone then Buffer.add_string c.out bytes
        else if c.alive && c.inflight = 0 then close_conn t c;
        dispatch t c)
    items

let drain_pipe t =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read t.pipe_r b 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

(* Reap what the idle timeout says is abandoned: detached sessions
   nobody reclaimed (their WAL fds close with them; the on-disk state
   stays reclaimable via Attach) and connections with no traffic, no
   pending work and nothing in flight. *)
let sweep_idle t now timeout =
  let reaped =
    Mutex.protect t.sessions_m (fun () ->
        let dead =
          Hashtbl.fold
            (fun id (s, since) acc -> if now -. since >= timeout then (id, s) :: acc else acc)
            t.detached []
        in
        List.iter (fun (id, _) -> Hashtbl.remove t.detached id) dead;
        dead)
  in
  List.iter
    (fun (_, s) ->
      Session.discard s;
      Atomic.incr t.sessions_reaped)
    reaped;
  List.iter
    (fun c ->
      if
        c.alive && c.inflight = 0
        && Queue.is_empty c.pending
        && out_pending c = 0
        && now -. c.last_activity >= timeout
      then begin
        Atomic.incr t.conns_idle_closed;
        on_peer_gone t c
      end)
    t.conns

(* The select timeout is the distance to the nearest deadline — the
   next idle sweep (when an idle timeout is configured) or the next
   batched-WAL staleness flush — and infinite when there is none: the
   self-pipe wakes the loop for completions, so an idle server makes
   no wakeups at all instead of ticking on a fixed period. *)
let select_timeout t ~last_sweep =
  let deadlines =
    (match t.cfg.idle_timeout_s with
    | Some _ -> [ last_sweep +. 1.0 ]
    | None -> [])
    @ (match Wal.next_flush_deadline () with Some d -> [ d ] | None -> [])
  in
  match deadlines with
  | [] -> -1.0
  | ds ->
    Float.max 0.0 (List.fold_left Float.min Float.infinity ds -. Unix.gettimeofday ())

let run t =
  let domains = Array.init t.cfg.workers (fun slot -> Some (Domain.spawn (fun () -> worker t slot))) in
  (* how many live workers will consume a Quit at drain time *)
  let live = ref t.cfg.workers in
  let respawn slot =
    (match domains.(slot) with
    | Some d -> Domain.join d  (* the domain already exited; reclaim it *)
    | None -> ());
    domains.(slot) <- None;
    Atomic.incr t.workers_respawned;
    if Atomic.get t.draining then decr live
    else domains.(slot) <- Some (Domain.spawn (fun () -> worker t slot))
  in
  let last_sweep = ref (Unix.gettimeofday ()) in
  let rec loop () =
    t.conns <- List.filter (fun c -> c.alive || c.inflight > 0) t.conns;
    if finished t then ()
    else begin
      let accepting = not (Atomic.get t.draining) in
      let rds =
        (t.pipe_r :: (if accepting then t.listeners else []))
        @ List.filter_map
            (fun c -> if c.alive && not c.peer_gone then Some c.fd else None)
            t.conns
      in
      let wrs =
        List.filter_map (fun c -> if c.alive && out_pending c > 0 then Some c.fd else None) t.conns
      in
      (match Unix.select rds wrs [] (select_timeout t ~last_sweep:!last_sweep) with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, writable, _ ->
         if List.mem t.pipe_r readable then drain_pipe t;
         List.iter (fun lfd -> if List.mem lfd readable then accept_conn t lfd) t.listeners;
         List.iter
           (fun c -> if c.alive && List.mem c.fd readable then on_readable t c)
           t.conns;
         List.iter
           (fun c -> if c.alive && List.mem c.fd writable then on_writable t c)
           t.conns);
      drain_completions t ~respawn;
      Wal.sync_stale ();
      (match t.cfg.idle_timeout_s with
      | Some timeout ->
        let now = Unix.gettimeofday () in
        if now -. !last_sweep >= 1.0 then begin
          last_sweep := now;
          sweep_idle t now timeout
        end
      | None -> ());
      (* drain mode: flush Draining errors to idle connections *)
      if Atomic.get t.draining then List.iter (fun c -> dispatch t c) t.conns;
      loop ()
    end
  and finished t =
    Atomic.get t.draining
    && List.for_all (fun c -> c.inflight = 0 && ((not c.alive) || out_pending c = 0)) t.conns
  in
  loop ();
  (* drained: release everything *)
  List.iter (fun c -> close_conn t c) t.conns;
  t.conns <- [];
  Mutex.protect t.sessions_m (fun () ->
      Hashtbl.iter (fun _ (s, _) -> Session.discard s) t.detached;
      Hashtbl.reset t.detached);
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  Mutex.protect t.work_m (fun () ->
      for _ = 1 to !live do
        Queue.push Quit t.work
      done);
  Condition.broadcast t.work_c;
  Array.iter (Option.iter Domain.join) domains;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  Option.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    t.cfg.unix_path
