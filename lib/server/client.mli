(** Clients for the gbcd wire protocol.

    {!t} is one blocking socket: send/recv/rpc, an optional connect
    timeout and an optional receive deadline.  {!resilient} wraps an
    endpoint with a retry policy: it attaches to a server session on
    every (re)connect and transparently replays a request whose
    connection died — exponential backoff with jitter between
    attempts.  Mutations are stamped with client-unique request ids,
    so a replay the server already applied is answered from its
    recorded result rather than applied twice, even across a server
    crash and recovery (the dedup state rides the WAL). *)

type t

exception Protocol_error of string
(** Framing or decoding failure, or the server closed mid-exchange.
    Socket-level failures raise [Unix.Unix_error] as usual. *)

exception Timeout
(** The connect timeout or receive deadline expired. *)

type endpoint = Tcp of { host : string; port : int } | Uds of string

val connect : ?max_frame:int -> ?timeout:float -> endpoint -> t
(** Connect to an endpoint.  With [timeout] the connect is
    non-blocking + select, raising {!Timeout} when the server does not
    accept in time. *)

val connect_tcp : ?max_frame:int -> ?timeout:float -> host:string -> port:int -> unit -> t
val connect_unix : ?max_frame:int -> ?timeout:float -> string -> t

val connect_fd : ?max_frame:int -> Unix.file_descr -> t
(** Wrap an already-connected socket. *)

val set_recv_deadline : t -> float option -> unit
(** Bound every subsequent {!recv} (SO_RCVTIMEO); an expired deadline
    raises {!Timeout}.  [None] removes the bound. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
val recv : t -> Protocol.response

val rpc : t -> Protocol.request -> Protocol.response
(** [send] then [recv] — the one-in-flight round trip gbcd expects. *)

(** {2 Retry / backoff} *)

exception Session_lost of string
(** The server answered [no-session] to an attach: the session's state
    is truly gone (never retried). *)

type resilient

val resilient :
  ?max_frame:int ->
  ?connect_timeout:float ->
  ?deadline:float ->
  ?retries:int ->
  endpoint ->
  resilient
(** A reconnecting client.  [connect_timeout] bounds each connect
    attempt, [deadline] bounds each response wait, [retries] (default
    5) caps reconnect attempts per operation.  Nothing connects until
    the first {!resilient_rpc}. *)

val resilient_rpc : resilient -> Protocol.request -> Protocol.response
(** Send one request, transparently reconnecting (backoff + jitter),
    re-attaching to the session and replaying on a broken connection.
    Assert/retract requests without an id are stamped with a fresh
    client-unique id first, making the replay exactly-once.  Raises
    {!Timeout} when the response deadline expires (not retried — the
    deadline is the caller's contract), {!Session_lost} when the
    session cannot be reclaimed, or the last failure when [retries] is
    exhausted. *)

val session_id : resilient -> int option
(** The server-side session id, once the first attach learned it. *)

val resilient_close : resilient -> unit

(** {2 Pipelining (protocol v2)} *)

module Pipeline : sig
  (** Many requests in flight on one connection.  Each request is
      wrapped in a v2 envelope carrying a client-unique id; replies
      come back in server completion order and are matched by that id.
      Against a v1 server the pipeline falls back transparently to
      bare frames with FIFO reply matching (same API, no overtaking).

      Built on {!type-resilient}: when the connection dies, the next
      {!submit}/{!await} reconnects, re-attaches, and replays the whole
      in-flight window in submission order with the {e same} ids — the
      server's dedup window answers already-applied mutations from
      their recorded results, keeping replays exactly-once. *)

  type t

  val create : resilient -> t
  (** Nothing connects until the first {!submit}. *)

  val submit : t -> Protocol.request -> int
  (** Enqueue one request without waiting for its reply; returns the
      request id to match against {!await}.  Assert/retract requests
      without an id are stamped with the envelope id itself.  Raises
      like {!resilient_rpc} when the connection cannot be
      (re)established. *)

  val await : t -> int * Protocol.response
  (** The next reply off the wire, in server completion order.  Raises
      [Invalid_argument] when nothing is in flight, {!Timeout} when the
      receive deadline expires (not retried). *)

  val drain : t -> (int * Protocol.response) list
  (** {!await} until the in-flight window is empty, in arrival order. *)

  val inflight : t -> int
  (** Requests submitted but not yet answered. *)

  val v2 : t -> bool
  (** Whether envelope framing was negotiated ([false] before the first
      connect and against a v1 server). *)

  val session_id : t -> int option
  val close : t -> unit
end
