(** A blocking client for the gbcd wire protocol. *)

type t

exception Protocol_error of string
(** Framing or decoding failure, or the server closed mid-exchange.
    Socket-level failures raise [Unix.Unix_error] as usual. *)

val connect_tcp : ?max_frame:int -> host:string -> port:int -> unit -> t
val connect_unix : ?max_frame:int -> string -> t

val connect_fd : ?max_frame:int -> Unix.file_descr -> t
(** Wrap an already-connected socket. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
val recv : t -> Protocol.response

val rpc : t -> Protocol.request -> Protocol.response
(** [send] then [recv] — the one-in-flight round trip gbcd expects. *)
