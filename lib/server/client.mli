(** Clients for the gbcd wire protocol.

    {!t} is one blocking socket: send/recv/rpc, an optional connect
    timeout and an optional receive deadline.  {!resilient} wraps an
    endpoint with a retry policy: it attaches to a server session on
    every (re)connect and transparently replays a request whose
    connection died — exponential backoff with jitter between
    attempts.  Mutations are stamped with client-unique request ids,
    so a replay the server already applied is answered from its
    recorded result rather than applied twice, even across a server
    crash and recovery (the dedup state rides the WAL). *)

type t

exception Protocol_error of string
(** Framing or decoding failure, or the server closed mid-exchange.
    Socket-level failures raise [Unix.Unix_error] as usual. *)

exception Timeout
(** The connect timeout or receive deadline expired. *)

type endpoint = Tcp of { host : string; port : int } | Uds of string

val connect : ?max_frame:int -> ?timeout:float -> endpoint -> t
(** Connect to an endpoint.  With [timeout] the connect is
    non-blocking + select, raising {!Timeout} when the server does not
    accept in time. *)

val connect_tcp : ?max_frame:int -> ?timeout:float -> host:string -> port:int -> unit -> t
val connect_unix : ?max_frame:int -> ?timeout:float -> string -> t

val connect_fd : ?max_frame:int -> Unix.file_descr -> t
(** Wrap an already-connected socket. *)

val set_recv_deadline : t -> float option -> unit
(** Bound every subsequent {!recv} (SO_RCVTIMEO); an expired deadline
    raises {!Timeout}.  [None] removes the bound. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
val recv : t -> Protocol.response

val rpc : t -> Protocol.request -> Protocol.response
(** [send] then [recv] — the one-in-flight round trip gbcd expects. *)

(** {2 Retry / backoff} *)

exception Session_lost of string
(** The server answered [no-session] to an attach: the session's state
    is truly gone (never retried). *)

type resilient

val resilient :
  ?max_frame:int ->
  ?connect_timeout:float ->
  ?deadline:float ->
  ?retries:int ->
  endpoint ->
  resilient
(** A reconnecting client.  [connect_timeout] bounds each connect
    attempt, [deadline] bounds each response wait, [retries] (default
    5) caps reconnect attempts per operation.  Nothing connects until
    the first {!resilient_rpc}. *)

val resilient_rpc : resilient -> Protocol.request -> Protocol.response
(** Send one request, transparently reconnecting (backoff + jitter),
    re-attaching to the session and replaying on a broken connection.
    Assert/retract requests without an id are stamped with a fresh
    client-unique id first, making the replay exactly-once.  Raises
    {!Timeout} when the response deadline expires (not retried — the
    deadline is the caller's contract), {!Session_lost} when the
    session cannot be reclaimed, or the last failure when [retries] is
    exhausted. *)

val session_id : resilient -> int option
(** The server-side session id, once the first attach learned it. *)

val resilient_close : resilient -> unit
