(** The daemon's data directory: program store, per-session WALs and
    snapshots.

    Layout under the root:
    {v
    programs/<md5>.dl          program sources, write-once by digest
    sessions/<id>/wal.log      the session's write-ahead log
    sessions/<id>/snapshot.bin periodic binary snapshot
    v}

    A snapshot collapses the WAL prefix up to [last_lsn] into one
    CRC-protected file: the session's fact base, its assert multiset,
    its exactly-once dedup state and — when no mutations were pending —
    the materialized model with the MD5 of its canonical rendering, so
    a restart re-serves the model without re-evaluating and can prove
    it byte-identical.  Snapshots are written to a temporary file,
    fsynced and renamed, so a crash mid-snapshot leaves the previous
    one intact; recovery then replays only WAL records beyond
    [last_lsn].

    A corrupt snapshot (bad magic, version, CRC or encoding) reads as
    [None] with a warning — recovery falls back to the full WAL, never
    crashes. *)

module Database = Gbc_datalog.Database
module Value = Gbc_datalog.Value

type t

val create :
  fsync:Wal.fsync_policy -> snapshot_every:int -> string -> (t, string) result
(** Open (creating directories as needed) a data dir rooted at the
    given path.  [snapshot_every] is the number of WAL records between
    snapshots (0 disables snapshotting). *)

val root : t -> string
val fsync : t -> Wal.fsync_policy
val snapshot_every : t -> int

val warn : t -> string -> unit
(** Report a recovery/durability anomaly on stderr (prefixed, never
    raises). *)

(** {2 Program store} *)

val store_program : t -> digest:string -> source:string -> unit
(** Persist a program source under its digest (atomic, write-once; a
    failure is reported via {!warn} — losing warm restarts, not
    data). *)

val load_program : t -> string -> string option
(** The source stored under a digest, if present and readable. *)

val list_programs : t -> string list
(** Every stored program source (for warming the compile cache). *)

(** {2 Sessions} *)

val session_ids : t -> int list
(** Ids with a directory under [sessions/], sorted ascending. *)

val session_exists : t -> int -> bool
val wal_path : t -> int -> string

type mat_snapshot = {
  m_engine : int;  (** wire encoding: 0 staged, 1 reference *)
  m_seed : int option;
  model : Database.t;
  model_digest : string;  (** MD5 (hex) of the canonical rendering *)
}

type snapshot = {
  last_lsn : int;  (** WAL records at or below this are collapsed in *)
  digest : string option;  (** loaded program, if any *)
  db : Database.t;  (** fact base: program facts + net asserts *)
  multiset : (string * Value.t array * int) list;  (** assert occurrence counts *)
  last_mut : (int * int) option;  (** exactly-once dedup: (request id, result) *)
  mat : mat_snapshot option;  (** present only when nothing was pending *)
}

val write_snapshot : t -> id:int -> snapshot -> (unit, string) result
(** Atomically replace the session's snapshot (tmp + fsync + rename). *)

val read_snapshot : t -> id:int -> snapshot option
(** [None] when absent — or corrupt, which warns and leaves recovery
    to the WAL. *)

val snapshots_written : unit -> int
(** Process-wide count, for stats. *)
