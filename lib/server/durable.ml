(* The data directory.  See durable.mli for the layout.

   Snapshot file format:

     "GBCS"            magic
     u32 version       1
     u32 crc           CRC-32 of the body
     body:
       i64  last_lsn
       opt  string digest
       db_snapshot      fact base
       db_snapshot      assert multiset (rows widened by a count column)
       opt  (i64, i64)  last mutation (id, result)
       opt  mat:
         u8   engine
         opt  i64 seed
         string model_digest
         db_snapshot    model

   The multiset rides the database codec by appending the occurrence
   count to each row as an extra [Int] column — an aux database whose
   arities are all real-arity + 1, decoded back by splitting the last
   column off. *)

module Database = Gbc_datalog.Database
module Db_snapshot = Gbc_datalog.Db_snapshot
module Value = Gbc_datalog.Value
module Checksum = Gbc_datalog.Checksum

type t = {
  root : string;
  fsync : Wal.fsync_policy;
  snapshot_every : int;
}

let root t = t.root
let fsync t = t.fsync
let snapshot_every t = t.snapshot_every

let written = Atomic.make 0
let snapshots_written () = Atomic.get written

let warn _t msg = Printf.eprintf "gbcd: durability: %s\n%!" msg

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let programs_dir t = Filename.concat t.root "programs"
let sessions_dir t = Filename.concat t.root "sessions"
let session_dir t id = Filename.concat (sessions_dir t) (string_of_int id)
let wal_path t id = Filename.concat (session_dir t id) "wal.log"
let snapshot_path t id = Filename.concat (session_dir t id) "snapshot.bin"
let program_path t digest = Filename.concat (programs_dir t) (digest ^ ".dl")

let create ~fsync ~snapshot_every path =
  match
    mkdir_p path;
    mkdir_p (Filename.concat path "programs");
    mkdir_p (Filename.concat path "sessions")
  with
  | () -> Ok { root = path; fsync; snapshot_every }
  | exception Unix.Unix_error (e, fn, arg) ->
    Error (Printf.sprintf "cannot open data dir %s: %s(%s): %s" path fn arg (Unix.error_message e))
  | exception Sys_error msg -> Error (Printf.sprintf "cannot open data dir %s: %s" path msg)

(* ---------------- small file helpers ---------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        Some (really_input_string ic len))

(* atomic publish: write a temp file in the target's directory, fsync
   it, rename over the target.  A crash at any point leaves either the
   old file or the new one, never a mix.  The temp name is unique per
   call: worker domains storing the same program concurrently must not
   rename each other's temp files away. *)
let tmp_counter = Atomic.make 0

let write_file_atomic path content =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let off = ref 0 in
      let len = String.length content in
      while !off < len do
        off := !off + Unix.write_substring fd content !off (len - !off)
      done;
      Unix.fsync fd);
  Unix.rename tmp path;
  (* make the rename itself durable *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    (try Unix.close dfd with Unix.Unix_error _ -> ())

(* ---------------- program store ---------------- *)

let store_program t ~digest ~source =
  let path = program_path t digest in
  if not (Sys.file_exists path) then
    try write_file_atomic path source
    with (Unix.Unix_error _ | Sys_error _) as exn ->
      warn t (Printf.sprintf "cannot store program %s: %s" digest (Printexc.to_string exn))

let load_program t digest = read_file (program_path t digest)

let list_programs t =
  match Sys.readdir (programs_dir t) with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".dl")
    |> List.sort String.compare
    |> List.filter_map (fun n -> read_file (Filename.concat (programs_dir t) n))

(* ---------------- sessions ---------------- *)

let session_ids t =
  match Sys.readdir (sessions_dir t) with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names |> List.filter_map int_of_string_opt |> List.sort compare

let session_exists t id = Sys.file_exists (session_dir t id)

type mat_snapshot = {
  m_engine : int;
  m_seed : int option;
  model : Database.t;
  model_digest : string;
}

type snapshot = {
  last_lsn : int;
  digest : string option;
  db : Database.t;
  multiset : (string * Value.t array * int) list;
  last_mut : (int * int) option;
  mat : mat_snapshot option;
}

let magic = "GBCS"
let version = 1

let w_u8 b n = Buffer.add_uint8 b (n land 0xff)
let w_u32 b n = Buffer.add_int32_be b (Int32.of_int n)
let w_i64 b n = Buffer.add_int64_be b (Int64.of_int n)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_opt w b = function
  | None -> w_u8 b 0
  | Some x ->
    w_u8 b 1;
    w b x

exception Corrupt = Db_snapshot.Corrupt

type reader = { src : string; mutable pos : int }

let need rd n what =
  if rd.pos + n > String.length rd.src then raise (Corrupt ("truncated " ^ what))

let r_u8 rd what =
  need rd 1 what;
  let v = Char.code rd.src.[rd.pos] in
  rd.pos <- rd.pos + 1;
  v

let r_u32 rd what =
  need rd 4 what;
  let v = Int32.to_int (String.get_int32_be rd.src rd.pos) in
  rd.pos <- rd.pos + 4;
  if v < 0 then raise (Corrupt ("negative length in " ^ what));
  v

let r_i64 rd what =
  need rd 8 what;
  let v = Int64.to_int (String.get_int64_be rd.src rd.pos) in
  rd.pos <- rd.pos + 8;
  v

let r_str rd what =
  let n = r_u32 rd what in
  need rd n what;
  let s = String.sub rd.src rd.pos n in
  rd.pos <- rd.pos + n;
  s

let r_opt r rd what =
  match r_u8 rd what with
  | 0 -> None
  | 1 -> Some (r rd what)
  | _ -> raise (Corrupt ("bad option tag in " ^ what))

let r_db rd what =
  match Db_snapshot.read rd.src rd.pos with
  | db, next ->
    rd.pos <- next;
    db
  | exception Db_snapshot.Corrupt msg -> raise (Corrupt (what ^ ": " ^ msg))

(* the multiset as an aux database: each row widened by its count *)
let multiset_to_db entries =
  let db = Database.create () in
  List.iter
    (fun (pred, row, n) ->
      ignore (Database.add_fact db pred (Array.append row [| Value.Int n |])))
    entries;
  db

let multiset_of_db db =
  List.concat_map
    (fun pred ->
      List.map
        (fun row ->
          let w = Array.length row in
          if w = 0 then raise (Corrupt "empty multiset row");
          match row.(w - 1) with
          | Value.Int n when n >= 1 -> (pred, Array.sub row 0 (w - 1), n)
          | _ -> raise (Corrupt "multiset row without a count column"))
        (Database.facts_of db pred))
    (Database.preds db)

let encode_snapshot snap =
  let body = Buffer.create 8192 in
  w_i64 body snap.last_lsn;
  w_opt w_str body snap.digest;
  Db_snapshot.write body snap.db;
  Db_snapshot.write body (multiset_to_db snap.multiset);
  w_opt
    (fun b (id, result) ->
      w_i64 b id;
      w_i64 b result)
    body snap.last_mut;
  w_opt
    (fun b m ->
      w_u8 b m.m_engine;
      w_opt w_i64 b m.m_seed;
      w_str b m.model_digest;
      Db_snapshot.write b m.model)
    body snap.mat;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 12) in
  Buffer.add_string out magic;
  w_u32 out version;
  w_u32 out (Checksum.string body);
  Buffer.add_string out body;
  Buffer.contents out

let decode_snapshot data =
  let n = String.length data in
  if n < 12 || String.sub data 0 4 <> magic then raise (Corrupt "bad snapshot magic");
  let v = Int32.to_int (String.get_int32_be data 4) in
  if v <> version then raise (Corrupt (Printf.sprintf "unsupported snapshot version %d" v));
  let crc = Int32.to_int (String.get_int32_be data 8) land 0xFFFFFFFF in
  if Checksum.sub_string data ~pos:12 ~len:(n - 12) <> crc then
    raise (Corrupt "snapshot checksum mismatch");
  let rd = { src = data; pos = 12 } in
  let last_lsn = r_i64 rd "lsn" in
  let digest = r_opt r_str rd "program digest" in
  let db = r_db rd "fact base" in
  let multiset = multiset_of_db (r_db rd "assert multiset") in
  let last_mut =
    r_opt
      (fun rd what ->
        let id = r_i64 rd what in
        let result = r_i64 rd what in
        (id, result))
      rd "last mutation"
  in
  let mat =
    r_opt
      (fun rd what ->
        let m_engine = r_u8 rd what in
        let m_seed = r_opt r_i64 rd what in
        let model_digest = r_str rd what in
        let model = r_db rd "model" in
        { m_engine; m_seed; model; model_digest })
      rd "materialization"
  in
  if rd.pos <> n then raise (Corrupt "trailing bytes in snapshot");
  { last_lsn; digest; db; multiset; last_mut; mat }

let write_snapshot t ~id snap =
  match
    mkdir_p (session_dir t id);
    write_file_atomic (snapshot_path t id) (encode_snapshot snap)
  with
  | () ->
    Atomic.incr written;
    Ok ()
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "snapshot write failed: %s: %s" fn (Unix.error_message e))
  | exception Sys_error msg -> Error ("snapshot write failed: " ^ msg)

let read_snapshot t ~id =
  match read_file (snapshot_path t id) with
  | None -> None
  | Some data -> (
    match decode_snapshot data with
    | snap -> Some snap
    | exception Corrupt msg ->
      warn t
        (Printf.sprintf "session %d: snapshot unreadable (%s); recovering from the WAL alone" id
           msg);
      None)
