(** gbc-router: a consistent-hash fan-out proxy for a fleet of gbcd
    backends.

    One single-threaded select loop accepts client connections and
    forwards their frames to backend daemons, one backend link per
    client connection.  The router never evaluates anything — it
    decodes frames only far enough to route and account them, then
    re-encodes them canonically, so what a backend serves through the
    router is byte-identical to what it serves directly.

    {b Placement.}  A fresh connection is placed by consistent hashing
    (a ring with virtual nodes) and the choice sticks for the
    connection's lifetime.  Session ids crossing the router are
    composite — [backend_index * 1_000_000_000 + backend_session_id] —
    so a reconnecting client's [Attach (Some id)] routes
    deterministically back to the backend that owns the session,
    without consulting the ring.

    {b Answered locally} (never forwarded): [Hello] (the router speaks
    protocol v2 and requires v2-capable backends), [Stats] (the
    router's own JSON: per-backend in-flight / forwarded / reconnects
    and totals) and [Shutdown] ([Bye], then a graceful drain).  The
    backends' lifetime belongs to whoever spawned them (see
    [gbc serve --fleet]).

    {b Backend death.}  Requests in flight on a dying link are each
    answered with a [server-error] frame; the backend is marked dead
    and the next connection that needs it reconnects (counted in the
    stats).  A durable session survives on the backend's data dir and
    can be reclaimed through the router after the backend returns. *)

(** The hash ring: each member appears as [vnodes] points (MD5 of
    ["member#i"]) on a 62-bit circle; a key belongs to the member
    owning the first point at or after the key's hash, wrapping.
    Removing a member only moves the keys it owned (consistency). *)
module Ring : sig
  type t

  val create : ?vnodes:int -> string list -> t
  (** A ring over the given member names, [vnodes] (default 100)
      virtual nodes each.  Raises [Invalid_argument] on an empty
      member list. *)

  val lookup : t -> string -> string
  (** The member owning this key. *)
end

val composite_base : int
(** Composite session ids are [idx * composite_base + session_id]
    (1_000_000_000). *)

val split_composite : int -> int * int
(** [(backend index, backend session id)] of a composite id. *)

type config = {
  host : string;
  port : int option;  (** [None]: no TCP listener *)
  unix_path : string option;  (** [None]: no Unix-domain listener *)
  backlog : int;
  backends : Client.endpoint list;
  vnodes : int;  (** virtual nodes per backend on the ring *)
  max_frame : int;
  connect_timeout : float option;  (** per backend connect attempt *)
}

val default_config : config
(** TCP on 127.0.0.1:7412, no backends (you must supply some), 100
    virtual nodes, 5 s backend connect timeout. *)

type t

val create : config -> (t, string) result
(** Bind the listeners and build the ring.  Backend links are opened
    lazily, per client connection, on first need. *)

val run : t -> unit
(** The event loop; returns after {!shutdown} completes the drain. *)

val shutdown : t -> unit
(** Start a graceful drain from any thread or signal handler: stop
    accepting, answer new requests with [draining], let in-flight
    backend replies come home, flush, close. *)

val port : t -> int option
(** The actually bound TCP port (for [port = Some 0]). *)

val stats_json : t -> string
(** The JSON the router answers [stats] with. *)
