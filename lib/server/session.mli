(** One connected client's private view of the engine.

    A session pairs an immutable {!Program_cache.entry} (the compiled
    program, shared by every session that loaded the same text) with a
    private database snapshot taken via the copy-on-write
    [Database.copy], so concurrently connected sessions asserting
    different facts see disjoint models at O(#relations) isolation
    cost.  Every evaluation runs on a fresh copy of the snapshot —
    derived facts never leak back into the session's EDB, so repeated
    runs are repeatable.

    A session is driven by at most one server worker at a time; the
    only cross-domain field is {!val-cancel}, set by the event loop on
    client disconnect and polled by the governor. *)

module Database = Gbc_datalog.Database
module Limits = Gbc_datalog.Limits
module Telemetry = Gbc_datalog.Telemetry

type counters = {
  mutable requests : int;
  mutable evaluations : int;
  mutable partials : int;
  mutable errors : int;
  mutable facts_asserted : int;
  mutable facts_retracted : int;
  mutable eval_wall_s : float;
  engine_totals : (string, int) Hashtbl.t;  (** summed [Telemetry.totals] *)
}

type t = {
  id : int;
  cache : Program_cache.t;
  cancel : bool ref;  (** wire into [Limits.create ~cancel]; set on disconnect *)
  mutable entry : Program_cache.entry option;
  mutable db : Database.t option;
  mutable asserted : (string * Gbc_datalog.Value.t array) list;
  counters : counters;
}

type error = Protocol.error_code * string

val create : cache:Program_cache.t -> id:int -> t

val load : t -> string -> (Program_cache.entry * bool, error) result
(** Compile (through the cache) and make this the session's program;
    resets the snapshot and the assert set.  The flag is [true] on a
    cache hit. *)

val assert_facts : t -> string -> (int, error) result
(** Parse ground facts and add them to the private snapshot; returns
    how many were new. *)

val retract_facts : t -> string -> (int, error) result
(** Remove previously asserted facts (exact matches) and rebuild the
    snapshot from the frozen base; returns how many were removed.  The
    loaded program's own facts are immutable. *)

val run :
  t ->
  engine:Protocol.engine ->
  seed:int option ->
  jobs:int ->
  limits:Limits.t ->
  telemetry:Telemetry.t ->
  (Database.t Limits.outcome, error) result
(** Evaluate on a fresh copy of the snapshot.  [jobs] is the granted
    number of evaluation domains (the server clamps the client's
    request against its own [max-jobs]); the model is independent of
    it.  Budget exhaustion and cancellation come back as
    [Limits.Partial] — a consistent partial model, never a crash. *)

val enumerate : t -> max_models:int -> limits:Limits.t -> (Database.t list, error) result
(** All choice models (small programs); a tripped budget is a
    [Budget_exhausted] error. *)

val query :
  t ->
  engine:Protocol.engine ->
  text:string ->
  jobs:int ->
  limits:Limits.t ->
  telemetry:Telemetry.t ->
  (bool * string list * string list, error) result
(** Evaluate, then answer one positive query atom against the model:
    (model was complete, variable names, rendered rows). *)

val render_model : ?preds:string list -> Database.t -> string
(** Same text as [gbc run] prints: the whole model via [Database.pp],
    or the chosen predicates in insertion order. *)
