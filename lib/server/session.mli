(** One connected client's private view of the engine.

    A session pairs an immutable {!Program_cache.entry} (the compiled
    program, shared by every session that loaded the same text) with a
    private database snapshot taken via the copy-on-write
    [Database.copy], so concurrently connected sessions asserting
    different facts see disjoint models at O(#relations) isolation
    cost.

    Asserted facts form a {e multiset}: asserting a row twice means one
    retract still leaves it visible, and a retract batch that exceeds
    what was asserted — or names a fact owned by the loaded program —
    is refused atomically ([Not_retractable]), mutating nothing.

    A complete run {e materializes} its model: the session keeps the
    evaluated database alive, and subsequent runs with the same
    (engine, seed) are served by incremental view maintenance
    ({!Gbc_datalog.Ivm}) over the net asserted/retracted delta instead
    of a from-scratch fixpoint.  Changes that can reach a choice
    stratum, budget trips and substrate errors drop the materialization
    and fall back to a full evaluation (counted in
    [counters.ivm_fallbacks]).

    A session is driven by at most one server worker at a time; the
    only cross-domain field is {!val-cancel}, set by the event loop on
    client disconnect and polled by the governor. *)

module Database = Gbc_datalog.Database
module Relation = Gbc_datalog.Relation
module Ivm = Gbc_datalog.Ivm
module Limits = Gbc_datalog.Limits
module Telemetry = Gbc_datalog.Telemetry

type counters = {
  mutable requests : int;
  mutable evaluations : int;
  mutable partials : int;
  mutable errors : int;
  mutable facts_asserted : int;  (** occurrences recorded (batch sizes) *)
  mutable facts_retracted : int;  (** occurrences removed (batch sizes) *)
  mutable runs_incremental : int;
      (** runs served from the materialized model (repaired or as-is) *)
  mutable runs_full : int;  (** from-scratch engine evaluations *)
  mutable ivm_fallbacks : int;
      (** materializations dropped: choice-stratum reach, budget, errors *)
  mutable eval_wall_s : float;
  engine_totals : (string, int) Hashtbl.t;  (** summed [Telemetry.totals] *)
}

type materialization = {
  mat_engine : Protocol.engine;
  mat_seed : int option;
  ivm : Ivm.t;
}

type t = {
  id : int;
  cache : Program_cache.t;
  cancel : bool ref;  (** wire into [Limits.create ~cancel]; set on disconnect *)
  mutable entry : Program_cache.entry option;
  mutable db : Database.t option;
  mutable asserted : (string, int Relation.Row_tbl.t) Hashtbl.t;
      (** occurrence count per asserted row, by predicate *)
  mutable pending_inserts : (string * Gbc_datalog.Value.t array) list;
  mutable pending_deletes : (string * Gbc_datalog.Value.t array) list;
  mutable mat : materialization option;
  counters : counters;
}

type error = Protocol.error_code * string

val create : cache:Program_cache.t -> id:int -> t

val load : t -> string -> (Program_cache.entry * bool, error) result
(** Compile (through the cache) and make this the session's program;
    resets the snapshot, the assert multiset, the pending delta and the
    materialization.  The flag is [true] on a cache hit. *)

val assert_facts : t -> string -> (int, error) result
(** Parse ground facts and record one occurrence of each in the assert
    multiset; net-new rows enter the private snapshot and the pending
    delta.  Returns how many rows were {e new to the snapshot} (a
    re-assert only raises the occurrence count). *)

val retract_facts : t -> string -> (int, error) result
(** Remove exactly one asserted occurrence per batch entry.  The batch
    is validated as a whole first: retracting a fact that was never
    asserted (or asserted fewer times than the batch demands), or one
    owned by the loaded program, fails with [Not_retractable] and
    mutates nothing — snapshot, multiset and counters are untouched.
    On success returns the batch size; rows whose occurrence count hits
    zero (and that the program does not own) leave the snapshot and
    join the pending delta. *)

val run :
  t ->
  engine:Protocol.engine ->
  seed:int option ->
  jobs:int ->
  limits:Limits.t ->
  telemetry:Telemetry.t ->
  (Database.t Limits.outcome, error) result
(** Evaluate the session's program.  When a live materialization
    exists for the same (engine, seed), the pending delta is applied
    incrementally ({!Gbc_datalog.Ivm.apply}) — or the materialized
    model is served as-is when nothing changed; the result is
    byte-identical (canonical rendering) to a from-scratch run.
    Otherwise a fresh copy of the snapshot is evaluated and, when the
    outcome is [Complete], materialized for next time.  [jobs] is the
    granted number of evaluation domains (the server clamps the
    client's request against its own [max-jobs]); the model is
    independent of it.  Budget exhaustion and cancellation come back
    as [Limits.Partial] — a consistent partial model, never a crash. *)

val enumerate : t -> max_models:int -> limits:Limits.t -> (Database.t list, error) result
(** All choice models (small programs); a tripped budget is a
    [Budget_exhausted] error.  Always evaluates from scratch. *)

val query :
  t ->
  engine:Protocol.engine ->
  text:string ->
  jobs:int ->
  limits:Limits.t ->
  telemetry:Telemetry.t ->
  (bool * string list * string list, error) result
(** Evaluate ({!run}, so incremental when possible), then answer one
    positive query atom against the model: (model was complete,
    variable names, rendered rows). *)

val render_model : ?preds:string list -> Database.t -> string
(** Same text as [gbc run] prints: the whole model via [Database.pp],
    or the chosen predicates in insertion order.  After incremental
    maintenance the per-predicate insertion order can differ from a
    from-scratch run (the canonical [Database.pp] form never does). *)
