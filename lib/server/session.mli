(** One connected client's private view of the engine.

    A session pairs an immutable {!Program_cache.entry} (the compiled
    program, shared by every session that loaded the same text) with a
    private database snapshot taken via the copy-on-write
    [Database.copy], so concurrently connected sessions asserting
    different facts see disjoint models at O(#relations) isolation
    cost.

    Asserted facts form a {e multiset}: asserting a row twice means one
    retract still leaves it visible, and a retract batch that exceeds
    what was asserted — or names a fact owned by the loaded program —
    is refused atomically ([Not_retractable]), mutating nothing.

    A complete run {e materializes} its model: the session keeps the
    evaluated database alive, and subsequent runs with the same
    (engine, seed) are served by incremental view maintenance
    ({!Gbc_datalog.Ivm}) over the net asserted/retracted delta instead
    of a from-scratch fixpoint.  Changes that can reach a choice
    stratum, budget trips and substrate errors drop the materialization
    and fall back to a full evaluation (counted in
    [counters.ivm_fallbacks]).

    A session is driven by at most one server worker at a time; the
    only cross-domain field is {!val-cancel}, set by the event loop on
    client disconnect and polled by the governor. *)

module Database = Gbc_datalog.Database
module Relation = Gbc_datalog.Relation
module Ivm = Gbc_datalog.Ivm
module Limits = Gbc_datalog.Limits
module Telemetry = Gbc_datalog.Telemetry

type counters = {
  mutable requests : int;
  mutable evaluations : int;
  mutable partials : int;
  mutable errors : int;
  mutable facts_asserted : int;  (** occurrences recorded (batch sizes) *)
  mutable facts_retracted : int;  (** occurrences removed (batch sizes) *)
  mutable runs_incremental : int;
      (** runs served from the materialized model (repaired or as-is) *)
  mutable runs_full : int;  (** from-scratch engine evaluations *)
  mutable ivm_fallbacks : int;
      (** materializations dropped: choice-stratum reach, budget, errors *)
  mutable eval_wall_s : float;
  engine_totals : (string, int) Hashtbl.t;  (** summed [Telemetry.totals] *)
}

type materialization = {
  mat_engine : Protocol.engine;
  mat_seed : int option;
  ivm : Ivm.t;
}

type durability = {
  dur : Durable.t;
  wal : Wal.t;  (** fd opened lazily on the first append *)
  mutable next_lsn : int;
  mutable since_snapshot : int;  (** WAL records since the last snapshot *)
}
(** Durability state of one session; present when the server runs with
    a data dir.  Mutations are logged {e before} they are applied (a
    failed append is an [io-error] and nothing changes), complete runs
    are logged with the MD5 of their canonical rendering, and every
    [snapshot_every] records the WAL is collapsed into an atomic
    binary snapshot. *)

type t = {
  id : int;
  cache : Program_cache.t;
  cancel : bool ref;  (** wire into [Limits.create ~cancel]; set on disconnect *)
  mutable entry : Program_cache.entry option;
  mutable db : Database.t option;
  mutable asserted : (string, int Relation.Row_tbl.t) Hashtbl.t;
      (** occurrence count per asserted row, by predicate *)
  mutable pending_inserts : (string * Gbc_datalog.Value.t array) list;
  mutable pending_deletes : (string * Gbc_datalog.Value.t array) list;
  mutable mat : materialization option;
  durability : durability option;
  mutable replaying : bool;  (** recovery replay in progress: WAL appends suppressed *)
  mutable last_mut : (int * int) option;
      (** exactly-once dedup: (request id, result) of the last applied
          mutation carrying an id; survives crashes via the WAL *)
  mutable recent_muts : (int * int) list;
      (** bounded window of recently applied (id, result) pairs backing
          [last_mut], so a pipelined client replaying {e all} its
          in-flight mutations after a reconnect stays exactly-once;
          rebuilt from the WAL tail on recovery *)
  mutable attachable : bool;  (** survives its connection, reclaimable via [Attach] *)
  counters : counters;
}

type error = Protocol.error_code * string

val create : ?durable:Durable.t -> cache:Program_cache.t -> id:int -> unit -> t
(** A fresh session; with [durable] its mutations are WAL-logged under
    the data dir (the session directory is created lazily on the first
    logged record, so sessions that never load leave nothing). *)

val restore : cache:Program_cache.t -> Durable.t -> int -> t
(** Rebuild a session from its on-disk state: the latest readable
    snapshot, then the WAL tail beyond it replayed through the normal
    [load]/[assert_facts]/[retract_facts]/[run] paths.  Logged runs are
    re-executed and their models verified byte-identical (canonical
    rendering MD5) before the materialization is kept.  Tolerant by
    construction: corrupt snapshots, torn/corrupt WAL tails, missing
    program sources and replay failures warn on stderr and degrade
    (cold materialization, lost tail) — they never raise.  The result
    is [attachable]. *)

val discard : t -> unit
(** Release the session's WAL file descriptor (memory state is left to
    the GC).  On-disk state is kept — the session can be restored. *)

val load : t -> string -> (Program_cache.entry * bool, error) result
(** Compile (through the cache) and make this the session's program;
    resets the snapshot, the assert multiset, the pending delta and the
    materialization.  The flag is [true] on a cache hit. *)

val assert_facts : ?id:int -> t -> string -> (int, error) result
(** Parse ground facts and record one occurrence of each in the assert
    multiset; net-new rows enter the private snapshot and the pending
    delta.  Returns how many rows were {e new to the snapshot} (a
    re-assert only raises the occurrence count).  [id] is the client's
    request id: when it equals the last applied mutation's id the
    recorded result is returned without applying again (retry after a
    lost response is exactly-once). *)

val retract_facts : ?id:int -> t -> string -> (int, error) result
(** Remove exactly one asserted occurrence per batch entry.  The batch
    is validated as a whole first: retracting a fact that was never
    asserted (or asserted fewer times than the batch demands), or one
    owned by the loaded program, fails with [Not_retractable] and
    mutates nothing — snapshot, multiset and counters are untouched.
    On success returns the batch size; rows whose occurrence count hits
    zero (and that the program does not own) leave the snapshot and
    join the pending delta. *)

val run :
  ?compiled:bool ->
  t ->
  engine:Protocol.engine ->
  seed:int option ->
  jobs:int ->
  limits:Limits.t ->
  telemetry:Telemetry.t ->
  (Database.t Limits.outcome, error) result
(** Evaluate the session's program.  With [compiled] (default false)
    from-scratch evaluations run the ahead-of-time compiled closure
    chains, reusing the cache entry's cost plan — models stay
    byte-identical.  When a live materialization
    exists for the same (engine, seed), the pending delta is applied
    incrementally ({!Gbc_datalog.Ivm.apply}) — or the materialized
    model is served as-is when nothing changed; the result is
    byte-identical (canonical rendering) to a from-scratch run.
    Otherwise a fresh copy of the snapshot is evaluated and, when the
    outcome is [Complete], materialized for next time.  [jobs] is the
    granted number of evaluation domains (the server clamps the
    client's request against its own [max-jobs]); the model is
    independent of it.  Budget exhaustion and cancellation come back
    as [Limits.Partial] — a consistent partial model, never a crash. *)

val enumerate : t -> max_models:int -> limits:Limits.t -> (Database.t list, error) result
(** All choice models (small programs); a tripped budget is a
    [Budget_exhausted] error.  Always evaluates from scratch. *)

val query :
  ?compiled:bool ->
  t ->
  engine:Protocol.engine ->
  text:string ->
  jobs:int ->
  limits:Limits.t ->
  telemetry:Telemetry.t ->
  (bool * string list * string list, error) result
(** Evaluate ({!run}, so incremental when possible), then answer one
    positive query atom against the model: (model was complete,
    variable names, rendered rows). *)

val render_model : ?preds:string list -> Database.t -> string
(** Same text as [gbc run] prints: the whole model via [Database.pp],
    or the chosen predicates in insertion order.  After incremental
    maintenance the per-predicate insertion order can differ from a
    from-scratch run (the canonical [Database.pp] form never does). *)
