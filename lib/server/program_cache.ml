(* The compiled-program cache: parse + stage-analysis + EDB load happen
   once per distinct program text, keyed by source digest.

   An entry is immutable after construction: the parse, the partition
   into rules and facts, the stage report, and a frozen base database
   holding the program's ground facts.  Sessions never mutate the base
   — they take [Database.copy] snapshots (copy-on-write at the
   relation level), so serving an entry to any number of concurrent
   sessions costs one O(#relations) copy per session, not a re-parse
   and re-load.

   Publication safety: entries are only ever handed out from under
   [lock], and an entry is fully built before insertion, so a worker
   domain that receives one also observes all of its contents.  Two
   domains racing to compile the same new text both build an entry;
   the second insert discards its own and adopts the winner's, keeping
   the digest -> entry mapping unique. *)

module Ast = Gbc_datalog.Ast
module Database = Gbc_datalog.Database
module Parser = Gbc_datalog.Parser
module Stage = Gbc_datalog.Stage
module Plan = Gbc_datalog.Plan
module Gbc_error = Gbc_datalog.Gbc_error

type entry = {
  digest : string;  (* hex MD5 of the source text *)
  source_bytes : int;
  program : Ast.program;
  rules : Ast.program;  (* non-fact clauses *)
  base : Database.t;  (* the program's ground facts; frozen *)
  report : Stage.report;
  plan : Plan.t;  (* cost plan against [base]; feeds --compiled runs *)
  compile_ms : float;  (* wall time of this entry's compilation *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  programs_compiled : int;
  compile_ms_total : float;
}

type t = {
  capacity : int;
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable lru : string list;  (* most recently used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable programs_compiled : int;
  mutable compile_ms_total : float;
}

let create ?(capacity = 64) () =
  { capacity = max 1 capacity;
    lock = Mutex.create ();
    table = Hashtbl.create 32;
    lru = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    programs_compiled = 0;
    compile_ms_total = 0.0 }

let digest_hex source = Digest.to_hex (Digest.string source)

let compile ~digest source =
  let t0 = Unix.gettimeofday () in
  let program = Parser.parse_program source in
  let facts, rules = List.partition Ast.is_fact program in
  let base = Database.create () in
  Database.load_facts base facts;
  let report = Stage.analyze program in
  (* Plan over the non-fact clauses only — sessions evaluate [rules]
     against a copy of [base], so the plan's program must match; the
     base database supplies the cardinality statistics the fact
     clauses would otherwise seed. *)
  let plan = Plan.analyze ~db:base rules in
  { digest; source_bytes = String.length source; program; rules; base; report; plan;
    compile_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }

let touch t digest = t.lru <- digest :: List.filter (fun d -> not (String.equal d digest)) t.lru

let evict_over_capacity t =
  while List.length t.lru > t.capacity do
    match List.rev t.lru with
    | oldest :: _ ->
      Hashtbl.remove t.table oldest;
      t.lru <- List.filter (fun d -> not (String.equal d oldest)) t.lru;
      t.evictions <- t.evictions + 1
    | [] -> ()
  done

let find_or_compile t source =
  let digest = digest_hex source in
  let cached =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table digest with
        | Some e ->
          t.hits <- t.hits + 1;
          touch t digest;
          Some e
        | None -> None)
  in
  match cached with
  | Some e -> Ok (e, true)
  | None -> (
    (* Compile outside the lock: a slow parse must not serialize every
       other session's loads. *)
    match Gbc_error.protect (fun () -> compile ~digest source) with
    | Error e ->
      Mutex.protect t.lock (fun () -> t.misses <- t.misses + 1);
      Error e
    | Ok entry ->
      Ok
        (Mutex.protect t.lock (fun () ->
             t.misses <- t.misses + 1;
             (* Counted even on a lost race: the compilation work (and
                its wall time) really happened in this process. *)
             t.programs_compiled <- t.programs_compiled + 1;
             t.compile_ms_total <- t.compile_ms_total +. entry.compile_ms;
             match Hashtbl.find_opt t.table digest with
             | Some winner ->
               (* lost a compile race; the mapping stays unique *)
               touch t digest;
               (winner, true)
             | None ->
               Hashtbl.replace t.table digest entry;
               touch t digest;
               evict_over_capacity t;
               (entry, false))))

let stats t =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        entries = Hashtbl.length t.table;
        programs_compiled = t.programs_compiled;
        compile_ms_total = t.compile_ms_total })
