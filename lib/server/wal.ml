(* The write-ahead log.  On disk, a log is a sequence of records:

     u32 len      payload length
     u32 crc      CRC-32 of the payload
     payload      i64 lsn, u8 tag, fields

   Appends are single write(2) calls, so a crash leaves at worst one
   torn record at the tail; replay validates length and CRC record by
   record and truncates the file back to the last whole record when
   either check fails.  LSNs are assigned by the session (monotone per
   log) and let recovery skip records a snapshot already covers.

   Fault injection is process-wide and deterministic: a global atomic
   counts appended records, and the armed fault fires when the count
   reaches its k — mirroring Limits.fault_at.  Crash faults SIGKILL
   the process (the real thing, not an exception), which is how the
   chaos test kills the daemon at exact points in the durability
   path. *)

module Checksum = Gbc_datalog.Checksum

type fsync_policy = Always | Batch of int | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s -> (
    let n =
      if String.length s > 6 && String.sub s 0 6 = "batch:" then
        int_of_string_opt (String.sub s 6 (String.length s - 6))
      else int_of_string_opt s
    in
    match n with
    | Some n when n > 0 -> Ok (Batch n)
    | _ -> Error (Printf.sprintf "bad fsync policy %S (always | never | batch:N)" s))

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Batch n -> Printf.sprintf "batch:%d" n

type record =
  | Load of { digest : string }
  | Assert of { text : string; id : int option }
  | Retract of { text : string; id : int option }
  | Run of { engine : int; seed : int option; model_digest : string }

(* ---------------- fault injection ---------------- *)

type fault = Crash_at of int | Torn_at of int | Short_at of int | Fsync_fail_at of int

let armed : fault option Atomic.t = Atomic.make None
let counter = Atomic.make 0

let set_fault f = Atomic.set armed f
let appended () = Atomic.get counter

let fault_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let kind = String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | None -> None
    | Some k -> (
      match kind with
      | "crash" -> Some (Crash_at k)
      | "torn" -> Some (Torn_at k)
      | "short" -> Some (Short_at k)
      | "fsyncfail" -> Some (Fsync_fail_at k)
      | _ -> None))

let () =
  match Sys.getenv_opt "GBCD_WAL_FAULT" with
  | Some s -> set_fault (fault_of_string s)
  | None -> ()

let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* ---------------- record codec ---------------- *)

let tag_load = 1
let tag_assert = 2
let tag_retract = 3
let tag_run = 4

let w_u8 b n = Buffer.add_uint8 b (n land 0xff)
let w_i64 b n = Buffer.add_int64_be b (Int64.of_int n)

let w_str b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

let w_opt_int b = function
  | None -> w_u8 b 0
  | Some n ->
    w_u8 b 1;
    w_i64 b n

let encode_payload ~lsn record =
  let b = Buffer.create 128 in
  w_i64 b lsn;
  (match record with
   | Load { digest } ->
     w_u8 b tag_load;
     w_str b digest
   | Assert { text; id } ->
     w_u8 b tag_assert;
     w_str b text;
     w_opt_int b id
   | Retract { text; id } ->
     w_u8 b tag_retract;
     w_str b text;
     w_opt_int b id
   | Run { engine; seed; model_digest } ->
     w_u8 b tag_run;
     w_u8 b engine;
     w_opt_int b seed;
     w_str b model_digest);
  Buffer.contents b

exception Bad of string

type reader = { src : string; mutable pos : int }

let need rd n =
  if rd.pos + n > String.length rd.src then raise (Bad "truncated record payload")

let r_u8 rd =
  need rd 1;
  let v = Char.code rd.src.[rd.pos] in
  rd.pos <- rd.pos + 1;
  v

let r_i64 rd =
  need rd 8;
  let v = Int64.to_int (String.get_int64_be rd.src rd.pos) in
  rd.pos <- rd.pos + 8;
  v

let r_str rd =
  need rd 4;
  let n = Int32.to_int (String.get_int32_be rd.src rd.pos) in
  rd.pos <- rd.pos + 4;
  if n < 0 || rd.pos + n > String.length rd.src then raise (Bad "bad string length");
  let s = String.sub rd.src rd.pos n in
  rd.pos <- rd.pos + n;
  s

let r_opt_int rd =
  match r_u8 rd with
  | 0 -> None
  | 1 -> Some (r_i64 rd)
  | _ -> raise (Bad "bad option tag")

let decode_payload s =
  let rd = { src = s; pos = 0 } in
  let lsn = r_i64 rd in
  let record =
    match r_u8 rd with
    | 1 -> Load { digest = r_str rd }
    | 2 ->
      let text = r_str rd in
      Assert { text; id = r_opt_int rd }
    | 3 ->
      let text = r_str rd in
      Retract { text; id = r_opt_int rd }
    | 4 ->
      let engine = r_u8 rd in
      let seed = r_opt_int rd in
      Run { engine; seed; model_digest = r_str rd }
    | t -> raise (Bad (Printf.sprintf "unknown record tag %d" t))
  in
  if rd.pos <> String.length s then raise (Bad "trailing bytes in record");
  (lsn, record)

(* ---------------- appending ---------------- *)

type t = {
  path : string;
  fsync : fsync_policy;
  mutable fd : Unix.file_descr option;
  mutable unsynced : int;
}

let create ~fsync path = { path; fsync; fd = None; unsynced = 0 }

(* ---------------- batched-sync staleness ---------------- *)

(* Under [Batch n] an acknowledged record can wait for n-1 successors
   before it reaches stable storage — indefinitely, on a quiet session.
   This process-wide registry tracks every log holding unsynced
   records and when its oldest one landed, so the server's event loop
   can (a) compute its select timeout from the nearest flush deadline
   instead of ticking on a fixed period and (b) sync stale logs when
   that deadline passes.  Entries are compared physically; the mutex
   only guards the list — fsync itself runs outside it. *)

let flush_max_age = 0.1  (* seconds an acknowledged record may wait unsynced *)

let reg_m = Mutex.create ()
let registry : (t * float) list ref = ref []

let register t now =
  Mutex.protect reg_m (fun () ->
      if not (List.exists (fun (w, _) -> w == t) !registry) then
        registry := (t, now) :: !registry)

let unregister t =
  Mutex.protect reg_m (fun () ->
      registry := List.filter (fun (w, _) -> not (w == t)) !registry)

let next_flush_deadline () =
  Mutex.protect reg_m (fun () ->
      List.fold_left
        (fun acc (_, since) ->
          let d = since +. flush_max_age in
          match acc with None -> Some d | Some d' -> Some (Float.min d d'))
        None !registry)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let get_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
    mkdir_p (Filename.dirname t.path);
    let fd = Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    t.fd <- Some fd;
    fd

let write_all fd s pos len =
  let off = ref pos in
  while !off < pos + len do
    let n = Unix.write_substring fd s !off (pos + len - !off) in
    off := !off + n
  done

let max_record = 64 * 1024 * 1024

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_int32_be b (Int32.of_int (Checksum.string payload));
  Buffer.add_string b payload;
  Buffer.contents b

let do_sync t fd =
  Unix.fsync fd;
  t.unsynced <- 0;
  unregister t

let append t ~lsn record =
  let payload = encode_payload ~lsn record in
  let whole = frame payload in
  let k = 1 + Atomic.fetch_and_add counter 1 in
  (match Atomic.get armed with
   | Some (Fsync_fail_at j) when j = k ->
     (* one-shot: the record is rejected before any byte lands, as if
        the write+sync failed atomically *)
     Atomic.set armed None;
     raise (Unix.Unix_error (Unix.EIO, "fsync", t.path))
   | Some (Crash_at j) when j = k ->
     write_all (get_fd t) whole 0 (String.length whole);
     kill_self ()
   | Some (Torn_at j) when j = k ->
     (* cut mid-payload: header promises more than is present, CRC
        cannot match *)
     write_all (get_fd t) whole 0 (8 + ((String.length whole - 8) / 2));
     kill_self ()
   | Some (Short_at j) when j = k ->
     (* not even a whole header *)
     write_all (get_fd t) whole 0 (min 6 (String.length whole));
     kill_self ()
   | _ -> ());
  let fd = get_fd t in
  write_all fd whole 0 (String.length whole);
  match t.fsync with
  | Always -> do_sync t fd
  | Never -> ()
  | Batch n ->
    t.unsynced <- t.unsynced + 1;
    if t.unsynced >= n then do_sync t fd
    else if t.unsynced = 1 then register t (Unix.gettimeofday ())

let sync t =
  (match t.fd with
  | Some fd when t.unsynced > 0 -> do_sync t fd
  | _ -> ());
  unregister t

let sync_stale () =
  let now = Unix.gettimeofday () in
  let stale =
    Mutex.protect reg_m (fun () ->
        List.filter_map
          (fun (w, since) -> if now -. since >= flush_max_age then Some w else None)
          !registry)
  in
  List.iter
    (fun w -> try sync w with Unix.Unix_error _ -> unregister w)
    stale

let reset t =
  let fd = get_fd t in
  Unix.ftruncate fd 0;
  t.unsynced <- 0;
  unregister t

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (try sync t with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None

(* ---------------- replay ---------------- *)

type replayed = {
  records : (int * record) list;
  corrupt : string option;
}

let read_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create len in
        let off = ref 0 in
        (try
           while !off < len do
             let n = Unix.read fd buf !off (len - !off) in
             if n = 0 then raise Exit;
             off := !off + n
           done
         with Exit -> ());
        Some (Bytes.sub_string buf 0 !off))

let truncate_to path len =
  match Unix.openfile path [ Unix.O_WRONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.ftruncate fd len with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let replay path =
  match read_file path with
  | None -> { records = []; corrupt = None }
  | Some data ->
    let len = String.length data in
    let records = ref [] in
    let pos = ref 0 in
    let corrupt = ref None in
    let bad msg = corrupt := Some (Printf.sprintf "%s at offset %d" msg !pos) in
    (try
       while !pos < len && !corrupt = None do
         if len - !pos < 8 then begin bad "short record header"; raise Exit end;
         let plen = Int32.to_int (String.get_int32_be data !pos) in
         let crc = Int32.to_int (String.get_int32_be data (!pos + 4)) land 0xFFFFFFFF in
         if plen <= 0 || plen > max_record then begin
           bad (Printf.sprintf "implausible record length %d" plen);
           raise Exit
         end;
         if len - !pos - 8 < plen then begin bad "torn final record"; raise Exit end;
         if Checksum.sub_string data ~pos:(!pos + 8) ~len:plen <> crc then begin
           bad "record checksum mismatch";
           raise Exit
         end;
         (match decode_payload (String.sub data (!pos + 8) plen) with
          | lsn_record -> records := lsn_record :: !records
          | exception Bad msg -> bad ("undecodable record: " ^ msg); raise Exit);
         pos := !pos + 8 + plen
       done
     with Exit -> ());
    (match !corrupt with
     | Some _ ->
       (* drop the tail on disk too, so the next writer does not
          append after garbage *)
       truncate_to path !pos
     | None -> ());
    { records = List.rev !records; corrupt = !corrupt }
