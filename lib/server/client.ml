(* A small blocking client for the gbcd wire protocol: connect, frame
   requests out, read response frames back.  Used by `gbc client`, the
   server tests and bench E15/E18.

   Two layers:

   - [t]: one socket, send/recv/rpc, optional connect timeout and
     receive deadline (SO_RCVTIMEO -> Timeout).

   - [resilient]: an endpoint plus retry policy.  It attaches to a
     server session on every (re)connect — first Attach None to learn
     the session id, later Attach (Some id) to reclaim it — and
     replays a request whose connection died, after exponential
     backoff with jitter.  Mutations are stamped with client-unique
     request ids, so a replay the server already applied is answered
     from its recorded result (exactly-once), even across a server
     crash and recovery. *)

type t = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (* unconsumed response bytes *)
  max_frame : int;
}

exception Protocol_error of string
exception Timeout

type endpoint = Tcp of { host : string; port : int } | Uds of string

let connect_fd ?(max_frame = Protocol.max_frame_default) fd = { fd; inbuf = ""; max_frame }

(* Bounded connect: non-blocking connect, select for writability, read
   the socket error back.  Never blocks past [timeout]. *)
let connect_bounded fd addr timeout =
  match timeout with
  | None -> Unix.connect fd addr
  | Some tmo -> (
    Unix.set_nonblock fd;
    (match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] tmo with
      | _, [], _ -> raise Timeout
      | _ -> (
        match Unix.getsockopt_error fd with
        | None -> ()
        | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
    Unix.clear_nonblock fd)

let connect ?max_frame ?timeout endpoint =
  let domain, addr =
    match endpoint with
    | Tcp { host; port } ->
      let inet = try Unix.inet_addr_of_string host with Failure _ -> failwith ("bad host " ^ host) in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    | Uds path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try connect_bounded fd addr timeout
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd ?max_frame fd

let connect_tcp ?max_frame ?timeout ~host ~port () = connect ?max_frame ?timeout (Tcp { host; port })
let connect_unix ?max_frame ?timeout path = connect ?max_frame ?timeout (Uds path)

let set_recv_deadline t = function
  | None -> ( try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO 0.0 with Unix.Unix_error _ -> ())
  | Some s -> Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO (Float.max 0.001 s)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t bytes =
  let n = String.length bytes in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring t.fd bytes !off (n - !off) in
    if w = 0 then raise (Protocol_error "connection closed while sending");
    off := !off + w
  done

let send t req = send_raw t (Protocol.encode_request req)

let chunk = 65536

(* One whole frame payload off the wire (blocking, deadline-aware). *)
let recv_body t =
  let buf = Bytes.create chunk in
  let rec go () =
    match Protocol.extract_frame ~max_frame:t.max_frame t.inbuf 0 with
    | Protocol.Frame (body, next) ->
      t.inbuf <- String.sub t.inbuf next (String.length t.inbuf - next);
      body
    | Protocol.Bad_length n ->
      raise (Protocol_error (Printf.sprintf "unacceptable frame length %d" n))
    | Protocol.Need_more -> (
      match Unix.read t.fd buf 0 chunk with
      | 0 -> raise (Protocol_error "connection closed by server")
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* SO_RCVTIMEO expired: the response deadline passed *)
        raise Timeout
      | n ->
        t.inbuf <- t.inbuf ^ Bytes.sub_string buf 0 n;
        go ())
  in
  go ()

let recv t =
  match Protocol.decode_response (recv_body t) with
  | Ok resp -> resp
  | Error msg -> raise (Protocol_error msg)

let rpc t req =
  send t req;
  recv t

(* ---------------- the resilient layer ---------------- *)

exception Session_lost of string

type resilient = {
  endpoint : endpoint;
  r_max_frame : int;
  connect_timeout : float option;
  deadline : float option;
  retries : int;
  mutable conn : t option;
  mutable session : int option;  (* learned from the first Attach *)
  mutable next_id : int;  (* mutation request ids, client-unique *)
}

let rng = lazy (Random.State.make_self_init ())

let resilient ?(max_frame = Protocol.max_frame_default) ?connect_timeout ?deadline ?(retries = 5)
    endpoint =
  { endpoint;
    r_max_frame = max_frame;
    connect_timeout;
    deadline;
    retries;
    conn = None;
    session = None;
    (* seed mutation ids from the clock so a fresh client reclaiming a
       durable session cannot collide with its predecessor's ids (the
       server's dedup state survives restarts) *)
    next_id = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e6)) land 0x3FFFFFFFFFFFF }

let session_id r = r.session

let backoff_sleep attempt =
  let capped = Float.min (0.05 *. (2.0 ** float_of_int attempt)) 2.0 in
  Unix.sleepf (capped +. Random.State.float (Lazy.force rng) (capped *. 0.5))

let drop_conn r =
  match r.conn with
  | None -> ()
  | Some c ->
    close c;
    r.conn <- None

(* Connect and attach.  [Attach None] registers a fresh session as
   attachable and reports its id; [Attach (Some id)] reclaims ours —
   from the server's memory, or restored from its data dir after a
   crash.  A [no-session] answer is permanent (the state is truly
   gone) and is never retried. *)
let rec ensure_conn r attempt =
  match r.conn with
  | Some c -> c
  | None -> (
    match
      let c = connect ~max_frame:r.r_max_frame ?timeout:r.connect_timeout r.endpoint in
      match
        set_recv_deadline c r.deadline;
        rpc c (Protocol.Attach r.session)
      with
      | Protocol.Attached { id } ->
        r.session <- Some id;
        c
      | Protocol.Error { code = Protocol.No_session; message } ->
        close c;
        raise (Session_lost message)
      | _ ->
        close c;
        raise (Protocol_error "unexpected response to attach")
      | exception e ->
        close c;
        raise e
    with
    | c ->
      r.conn <- Some c;
      c
    | exception ((Unix.Unix_error _ | Protocol_error _ | Timeout) as e) ->
      if attempt < r.retries then begin
        backoff_sleep attempt;
        ensure_conn r (attempt + 1)
      end
      else raise e)

(* Stamp mutations that do not carry an id yet: the id is what makes a
   replayed retry exactly-once on the server. *)
let assign_id r = function
  | Protocol.Assert_facts { text; id = None } ->
    r.next_id <- r.next_id + 1;
    Protocol.Assert_facts { text; id = Some r.next_id }
  | Protocol.Retract_facts { text; id = None } ->
    r.next_id <- r.next_id + 1;
    Protocol.Retract_facts { text; id = Some r.next_id }
  | req -> req

let resilient_rpc r req =
  let req = assign_id r req in
  let rec go attempt =
    let c = ensure_conn r 0 in
    match rpc c req with
    | resp -> resp
    | exception Timeout ->
      (* the deadline is the caller's contract; do not retry into it *)
      drop_conn r;
      raise Timeout
    | exception ((Unix.Unix_error _ | Protocol_error _) as e) ->
      (* broken connection: reconnect (with backoff), re-attach, and
         replay this very request *)
      drop_conn r;
      if attempt < r.retries then begin
        backoff_sleep attempt;
        go (attempt + 1)
      end
      else raise e
  in
  go 0

let resilient_close r = drop_conn r

(* ---------------- pipelining (protocol v2) ---------------- *)

module Pipeline = struct
  (* Many requests in flight on one connection, replies matched by the
     per-request id of the v2 envelope.  Built on [resilient]: when the
     connection dies, the next submit/await reconnects, re-attaches,
     and replays the whole in-flight window in submission order with
     the {e same} request ids — the server's dedup window answers
     already-applied mutations from their recorded results. *)

  type nonrec t = {
    r : resilient;
    mutable bound : t option;
        (* the connection the in-flight window lives on; compared
           physically against [r.conn] to detect a reconnect *)
    mutable v2 : bool;  (* negotiated verdict: envelopes understood? *)
    mutable negotiated : bool;
    mutable inflight : (int * Protocol.request) list;  (* oldest first *)
  }

  let create r = { r; bound = None; v2 = false; negotiated = false; inflight = [] }
  let inflight t = List.length t.inflight
  let v2 t = t.v2
  let session_id t = session_id t.r

  let fresh_rid t =
    t.r.next_id <- t.r.next_id + 1;
    t.r.next_id

  let send_req t c (rid, req) =
    send_raw c
      (if t.v2 then Protocol.encode_request_v2 ~rid req else Protocol.encode_request req)

  (* Bind the in-flight window to the current (possibly fresh)
     connection: negotiate v2 once per pipeline, then replay every
     outstanding request in order. *)
  let rec ensure t =
    let c = ensure_conn t.r 0 in
    match t.bound with
    | Some b when b == c -> c
    | _ ->
      if t.negotiated then begin
        t.bound <- Some c;
        List.iter (send_req t c) t.inflight;
        c
      end
      else begin
        (match rpc c (Protocol.Hello { version = Protocol.protocol_version }) with
        | Protocol.Welcome { version } ->
          t.v2 <- version >= 2;
          t.negotiated <- true
        | Protocol.Error { code = Protocol.Protocol_violation; _ } ->
          (* a v1 server refuses the unknown tag and hangs up; remember
             the verdict and fall back to bare frames on a fresh
             connection *)
          t.v2 <- false;
          t.negotiated <- true;
          drop_conn t.r
        | _ ->
          drop_conn t.r;
          raise (Protocol_error "unexpected response to hello"));
        ensure t
      end

  let on_conn_error t =
    drop_conn t.r;
    t.bound <- None

  (* Enqueue one request; returns its id without waiting.  The request
     joins the in-flight window {e before} the send, so a reconnect
     replay inside [ensure] covers it exactly once. *)
  let submit t req =
    let rid = fresh_rid t in
    let req =
      match req with
      | Protocol.Assert_facts { text; id = None } ->
        Protocol.Assert_facts { text; id = Some rid }
      | Protocol.Retract_facts { text; id = None } ->
        Protocol.Retract_facts { text; id = Some rid }
      | req -> req
    in
    t.inflight <- t.inflight @ [ (rid, req) ];
    let rec go attempt =
      match
        let already_bound =
          match (t.bound, t.r.conn) with Some b, Some c -> b == c | _ -> false
        in
        let c = ensure t in
        (* a rebind just replayed the whole window, this request included *)
        if already_bound then send_req t c (rid, req)
      with
      | () -> rid
      | exception Timeout ->
        on_conn_error t;
        raise Timeout
      | exception ((Unix.Unix_error _ | Protocol_error _) as e) ->
        on_conn_error t;
        if attempt < t.r.retries then begin
          backoff_sleep attempt;
          go (attempt + 1)
        end
        else raise e
    in
    go 0

  (* Next reply off the wire, in server completion order (not
     necessarily submission order).  Bare v1 replies are matched FIFO
     against the oldest in-flight request. *)
  let await t =
    if t.inflight = [] then invalid_arg "Client.Pipeline.await: nothing in flight";
    let rec go attempt =
      match
        let c = ensure t in
        match Protocol.decode_response_v2 (recv_body c) with
        | Error msg -> raise (Protocol_error msg)
        | Ok (Some rid, resp) ->
          t.inflight <- List.filter (fun (r, _) -> r <> rid) t.inflight;
          (rid, resp)
        | Ok (None, resp) -> (
          match t.inflight with
          | (rid, _) :: rest ->
            t.inflight <- rest;
            (rid, resp)
          | [] -> raise (Protocol_error "response with nothing in flight"))
      with
      | reply -> reply
      | exception Timeout ->
        on_conn_error t;
        raise Timeout
      | exception ((Unix.Unix_error _ | Protocol_error _) as e) ->
        on_conn_error t;
        if attempt < t.r.retries then begin
          backoff_sleep attempt;
          go (attempt + 1)
        end
        else raise e
    in
    go 0

  (* Collect every outstanding reply, keyed by request id. *)
  let drain t =
    let rec go acc = if t.inflight = [] then List.rev acc else go (await t :: acc) in
    go []

  let close t =
    t.bound <- None;
    resilient_close t.r
end
