(* A small blocking client for the gbcd wire protocol: connect, frame
   requests out, read response frames back.  Used by `gbc client`, the
   server tests and bench E15. *)

type t = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (* unconsumed response bytes *)
  max_frame : int;
}

exception Protocol_error of string

let connect_fd ?(max_frame = Protocol.max_frame_default) fd = { fd; inbuf = ""; max_frame }

let connect_tcp ?max_frame ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  connect_fd ?max_frame fd

let connect_unix ?max_frame path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  connect_fd ?max_frame fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t bytes =
  let n = String.length bytes in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write_substring t.fd bytes !off (n - !off) in
    if w = 0 then raise (Protocol_error "connection closed while sending");
    off := !off + w
  done

let send t req = send_raw t (Protocol.encode_request req)

let chunk = 65536

let recv t =
  let buf = Bytes.create chunk in
  let rec go () =
    match Protocol.extract_frame ~max_frame:t.max_frame t.inbuf 0 with
    | Protocol.Frame (body, next) ->
      t.inbuf <- String.sub t.inbuf next (String.length t.inbuf - next);
      (match Protocol.decode_response body with
       | Ok resp -> resp
       | Error msg -> raise (Protocol_error msg))
    | Protocol.Bad_length n ->
      raise (Protocol_error (Printf.sprintf "unacceptable frame length %d" n))
    | Protocol.Need_more ->
      let n = Unix.read t.fd buf 0 chunk in
      if n = 0 then raise (Protocol_error "connection closed by server");
      t.inbuf <- t.inbuf ^ Bytes.sub_string buf 0 n;
      go ()
  in
  go ()

let rpc t req =
  send t req;
  recv t
