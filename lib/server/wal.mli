(** Per-session write-ahead log.

    Every accepted mutation is appended as a length-prefixed,
    CRC-checked record {e before} it is applied in memory, so a crash
    at any instant loses at most the unacknowledged request in flight.
    Records carry a monotone LSN; a snapshot stores the LSN it covers,
    and recovery replays only the records beyond it.

    {!replay} tolerates a torn or corrupt tail — a partially written
    final record, a short header, a CRC mismatch — by truncating the
    file back to its last whole record and reporting what it dropped.
    It never raises on file content, and never yields a partial
    record.

    Fsync batching amortizes durability cost: [Batch n] syncs every
    [n]th record (so an OS/power failure can lose up to [n]
    acknowledged records; a plain process crash loses none, because
    written pages survive in the page cache).  [Always] syncs each
    record, [Never] leaves syncing to the OS.

    The deterministic fault-injection hooks mirror
    [Limits.fault_at]: arm a fault (programmatically or through the
    [GBCD_WAL_FAULT] environment variable, e.g. ["crash:3"]) and the
    k-th appended record in the process triggers it — a full write
    then SIGKILL, a torn write, a short header, or a failing fsync —
    which is what drives the chaos test in test/test_recovery.ml. *)

type fsync_policy =
  | Always  (** fsync after every record *)
  | Batch of int  (** fsync every n records *)
  | Never  (** rely on the OS writeback *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["always"], ["never"], ["batch:N"] (or a bare integer [N]). *)

val fsync_policy_to_string : fsync_policy -> string

type record =
  | Load of { digest : string }
      (** program loaded; the source lives in the data dir's program
          store under this digest *)
  | Assert of { text : string; id : int option }
  | Retract of { text : string; id : int option }
  | Run of { engine : int; seed : int option; model_digest : string }
      (** a complete run was materialized; [model_digest] is the MD5 of
          the canonical rendering, checked on replay *)

(** {2 Fault injection} *)

type fault =
  | Crash_at of int  (** write record k fully, then SIGKILL the process *)
  | Torn_at of int  (** write only part of record k's payload, then SIGKILL *)
  | Short_at of int  (** write only part of record k's header, then SIGKILL *)
  | Fsync_fail_at of int
      (** record k's append raises [EIO] before writing (one-shot) *)

val set_fault : fault option -> unit
(** Arm (or clear) the process-wide fault.  Also armed at module
    initialization from [GBCD_WAL_FAULT]. *)

val fault_of_string : string -> fault option
(** ["crash:K"], ["torn:K"], ["short:K"], ["fsyncfail:K"]. *)

val appended : unit -> int
(** Records appended process-wide (the fault counter), for stats. *)

(** {2 Appending} *)

type t

val create : fsync:fsync_policy -> string -> t
(** A log at the given path.  The file and its directory are created
    lazily on first {!append}, so sessions that never persist anything
    leave nothing behind. *)

val append : t -> lsn:int -> record -> unit
(** Append (and per policy sync) one record.  Raises [Unix.Unix_error]
    when the write or sync fails — the caller must surface an
    [io-error] frame and must {e not} apply the mutation. *)

val sync : t -> unit
(** Flush any batched records to stable storage now. *)

val flush_max_age : float
(** How long (seconds) an acknowledged record may wait unsynced under
    [Batch n] before {!sync_stale} flushes it (0.1). *)

val next_flush_deadline : unit -> float option
(** The earliest absolute time ([Unix.gettimeofday] clock) at which
    some log's batched records turn stale — process-wide, across every
    live log.  [None] when nothing is waiting.  The server's event
    loop folds this into its select timeout. *)

val sync_stale : unit -> unit
(** Fsync every log whose oldest batched record has waited at least
    {!flush_max_age}.  Sync failures are swallowed here (the log drops
    off the deadline registry; the next append surfaces the error to
    its caller). *)

val reset : t -> unit
(** Truncate the log to empty (after a successful snapshot). *)

val close : t -> unit
(** Close the file descriptor (syncing batched records first).
    Idempotent; a later {!append} reopens. *)

(** {2 Replay} *)

type replayed = {
  records : (int * record) list;  (** (lsn, record), oldest first *)
  corrupt : string option;
      (** why the tail was dropped, when it was; the file has been
          truncated back to the last whole record *)
}

val replay : string -> replayed
(** Scan a log file.  A missing file is an empty log.  A torn,
    short or CRC-corrupt tail is truncated away (see [corrupt]);
    content before it is returned in full.  Never raises on file
    content. *)
