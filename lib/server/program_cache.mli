(** The compiled-program cache behind gbcd's [Load] request.

    Keyed by the MD5 digest of the source text: repeated loads of the
    same [.dl] program skip parsing, rewriting/stage analysis and EDB
    loading entirely, and hand every session the same immutable
    {!entry}.  Sessions isolate themselves by snapshotting
    [entry.base] with [Database.copy] (copy-on-write), never by
    mutating it.

    Domain-safe: lookups, inserts and LRU eviction are serialized
    behind a mutex; compilation itself runs outside the lock and a
    lost compile race adopts the winner's entry. *)

module Ast = Gbc_datalog.Ast
module Database = Gbc_datalog.Database
module Stage = Gbc_datalog.Stage
module Plan = Gbc_datalog.Plan
module Gbc_error = Gbc_datalog.Gbc_error

type entry = private {
  digest : string;  (** hex MD5 of the source text *)
  source_bytes : int;
  program : Ast.program;  (** the full parse, facts included *)
  rules : Ast.program;  (** non-fact clauses only *)
  base : Database.t;  (** the program's ground facts — treat as frozen *)
  report : Stage.report;
  plan : Plan.t;
      (** cost plan computed once against [base]; sessions hand it to
          the engines for [compiled] evaluation so re-runs skip
          re-analysis *)
  compile_ms : float;  (** wall time this entry took to compile *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  programs_compiled : int;  (** entries compiled by this process *)
  compile_ms_total : float;  (** total wall time spent compiling *)
}

type t

val create : ?capacity:int -> unit -> t
(** LRU cache holding at most [capacity] (default 64) entries. *)

val digest_hex : string -> string

val find_or_compile : t -> string -> (entry * bool, Gbc_error.t) result
(** The entry for a source text, compiling on first sight; the flag is
    [true] on a cache hit.  Parse/analysis failures are classified
    into {!Gbc_error.t} and are not cached. *)

val stats : t -> stats
