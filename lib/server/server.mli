(** gbcd: a concurrent query-serving daemon.

    One event-loop domain owns the sockets (accept, frame splitting,
    response flushing); [workers] worker domains pull decoded requests
    from a shared queue and evaluate them against per-connection
    {!Session.t}s.  At most one request per connection is in flight at
    a time, so a client's assert-then-run sequence is meaningful.

    Every request runs under a per-request [Limits] governor — the
    pointwise minimum of the server's configured caps and the client's
    requested budget — with the session's cancellation token wired in,
    so a client disconnect stops its in-flight evaluation at the next
    governor poll.  All failures come back as structured [Error]
    frames; the server never drops a connection in response to a
    well-framed request.

    Shutdown (the [Shutdown] request, or {!shutdown} from another
    domain) drains gracefully: stop accepting, finish in-flight work,
    answer queued requests with [Draining], flush, join workers. *)

type config = {
  host : string;
  port : int option;  (** TCP listener; [None] disables.  0 picks a free port. *)
  unix_path : string option;  (** Unix-domain listener; [None] disables. *)
  backlog : int;
  workers : int;
  default_timeout_s : float option;  (** server-side per-request caps … *)
  max_facts : int option;
  max_steps : int option;
  max_candidates : int option;
  max_jobs : int;
      (** cap on evaluation domains granted per request; the grant is
          [min max_jobs (client's requested jobs)], at least 1 *)
  max_frame : int;  (** frames above this are a protocol violation *)
  cache_capacity : int;  (** compiled-program cache entries *)
}

val default_config : config
(** 127.0.0.1:7411, 4 workers, sequential evaluation ([max_jobs = 1]),
    30s default timeout, 16 MiB max frame, 64 cache entries. *)

type t

val create : config -> (t, string) result
(** Bind the configured listeners (SO_REUSEADDR; a stale Unix-socket
    path is unlinked) and build the server.  Ignores SIGPIPE. *)

val port : t -> int option
(** The actually-bound TCP port (useful with [port = Some 0]). *)

val run : t -> unit
(** Spawn the worker domains and serve until drained.  Blocks; returns
    only after a graceful shutdown has closed every socket and joined
    every worker. *)

val shutdown : t -> unit
(** Begin a graceful drain from another domain.  Idempotent. *)
