(** gbcd: a concurrent query-serving daemon.

    One event-loop domain owns the sockets (accept, frame splitting,
    response flushing); [workers] worker domains pull decoded requests
    from a shared queue and evaluate them against per-connection
    {!Session.t}s.  Clients may pipeline: protocol v2 envelopes carry
    a per-request id and replies echo the request's wire form, so many
    requests can be in flight on one connection.  Session-bound
    requests still execute one at a time per connection, in arrival
    order — assert-then-run stays meaningful at any pipeline depth —
    and only independent frames (an enveloped [Ping] or [Hello])
    overtake a running evaluation.  Queue-wait and pipeline-depth
    histograms land in the stats ([queue_wait], [inflight_max],
    [pipelined_depth_p99]), keeping queueing distinguishable from
    service time.

    Every request runs under a per-request [Limits] governor — the
    pointwise minimum of the server's configured caps and the client's
    requested budget — with the session's cancellation token wired in,
    so a client disconnect stops its in-flight evaluation at the next
    governor poll.  All failures come back as structured [Error]
    frames; the server never drops a connection in response to a
    well-framed request.

    Shutdown (the [Shutdown] request, or {!shutdown} from another
    domain) drains gracefully: stop accepting, finish in-flight work,
    answer queued requests with [Draining], flush, join workers.

    Workers are {e supervised}: an exception that escapes a request
    handler answers the client with a structured [server-error] frame
    and kills only its own domain — the event loop joins the corpse
    and spawns a replacement, so the pool never shrinks and no
    connection hangs.

    With [data_dir] set the daemon is {e crash-safe}: every session
    mutation is write-ahead logged before it is applied and the log is
    periodically collapsed into an atomic binary snapshot (see
    {!Wal}, {!Durable}, {!Session}).  Startup recovery warms the
    compile cache from the program store and rebuilds every on-disk
    session — tolerating torn or corrupt WAL tails and unreadable
    snapshots by truncating/warning, never by refusing to start — and
    clients reclaim their sessions with [Attach]. *)

type config = {
  host : string;
  port : int option;  (** TCP listener; [None] disables.  0 picks a free port. *)
  unix_path : string option;  (** Unix-domain listener; [None] disables. *)
  backlog : int;
  workers : int;
  default_timeout_s : float option;  (** server-side per-request caps … *)
  max_facts : int option;
  max_steps : int option;
  max_candidates : int option;
  max_jobs : int;
      (** cap on evaluation domains granted per request; the grant is
          [min max_jobs (client's requested jobs)], at least 1 *)
  max_frame : int;  (** frames above this are a protocol violation *)
  cache_capacity : int;  (** compiled-program cache entries *)
  compiled : bool;
      (** evaluate requests with the ahead-of-time compiled closure
          chains (cost-planned join orders from the cached
          {!Program_cache.entry} plan); models are byte-identical to
          interpreted evaluation *)
  data_dir : string option;
      (** root of the durability layout (WALs, snapshots, program
          store); [None] keeps sessions ephemeral *)
  fsync : Wal.fsync_policy;  (** WAL sync batching (default [Batch 16]) *)
  snapshot_every : int;
      (** WAL records between snapshots per session; 0 never snapshots *)
  idle_timeout_s : float option;
      (** reap idle connections and unreclaimed detached sessions
          (closing their WAL fds); [None] keeps them forever *)
  worker_fault : int option;
      (** tests only: the k-th request process-wide raises inside its
          worker {e outside} every classification layer, exercising
          supervision *)
}

val default_config : config
(** 127.0.0.1:7411, 4 workers, sequential evaluation ([max_jobs = 1]),
    30s default timeout, 16 MiB max frame, 64 cache entries, no
    durability, no idle timeout. *)

type t

val create : config -> (t, string) result
(** Bind the configured listeners (SO_REUSEADDR; a stale Unix-socket
    path is unlinked) and build the server.  Ignores SIGPIPE. *)

val port : t -> int option
(** The actually-bound TCP port (useful with [port = Some 0]). *)

val run : t -> unit
(** Spawn the worker domains and serve until drained.  Blocks; returns
    only after a graceful shutdown has closed every socket and joined
    every worker. *)

val shutdown : t -> unit
(** Begin a graceful drain from another domain.  Idempotent. *)
