type 'f entry = { fact : 'f; id : int }

type 'f queue = {
  q_push : 'f entry -> unit;
  q_pop : unit -> 'f entry option;
  q_length : unit -> int;
}

type 'k class_state = Used | Live of int (* live entry id *)

type stats = {
  inserted : int;
  shadowed : int;
  stale : int;
  invalid : int;
  used : int;
  max_queue : int;
}

(* Allocation-lean queue used by the compiled engine: the same
   (cost, insertion id) total order as the boxed backends — ids are
   unique, so the order is total and the pop sequence is identical
   whatever the heap — but entries live in two parallel arrays and the
   sift loops are top-level recursions over plain integers, so a push
   or pop allocates nothing beyond amortized array growth. *)
type 'f flat = {
  mutable ff : 'f array;  (* facts, heap-ordered *)
  mutable fi : int array;  (* insertion ids, the cost tie-break *)
  mutable fn : int;
  mutable f_popped_id : int;  (* id of the last [flat_pop] result *)
}

type ('f, 'k) t = {
  key : 'f -> 'k;
  cost_cmp : 'f -> 'f -> int;
  stage : 'f -> int;
  shadow : bool;
  newer_wins : bool;
  classes : ('k, 'k class_state * 'f) Hashtbl.t;
  queue : 'f queue;
  flat : 'f flat option;
  mutable live : int;
  mutable next_id : int;
  mutable s_inserted : int;
  mutable s_shadowed : int;
  mutable s_stale : int;
  mutable s_invalid : int;
  mutable s_used : int;
  mutable s_max_queue : int;
}

let make_queue backend cmp =
  match backend with
  | `Binary ->
    let h = Binary_heap.create ~cmp () in
    { q_push = Binary_heap.push h;
      q_pop = (fun () -> Binary_heap.pop h);
      q_length = (fun () -> Binary_heap.length h) }
  | `Pairing ->
    let h = Pairing_heap.create ~cmp () in
    { q_push = Pairing_heap.push h;
      q_pop = (fun () -> Pairing_heap.pop h);
      q_length = (fun () -> Pairing_heap.length h) }

(* Flat-heap primitives.  Explicit arguments on the sift recursions:
   a nested [let rec] capturing its surroundings would allocate a
   closure per operation, defeating the point. *)
let flat_less cmp fl i j =
  let c = cmp fl.ff.(i) fl.ff.(j) in
  c < 0 || (c = 0 && fl.fi.(i) < fl.fi.(j))

let flat_swap fl i j =
  let f = fl.ff.(i) and d = fl.fi.(i) in
  fl.ff.(i) <- fl.ff.(j);
  fl.fi.(i) <- fl.fi.(j);
  fl.ff.(j) <- f;
  fl.fi.(j) <- d

let rec flat_up cmp fl i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if flat_less cmp fl i p then begin
      flat_swap fl i p;
      flat_up cmp fl p
    end
  end

let rec flat_down cmp fl i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = if l < fl.fn && flat_less cmp fl l i then l else i in
  let s = if r < fl.fn && flat_less cmp fl r s then r else s in
  if s <> i then begin
    flat_swap fl s i;
    flat_down cmp fl s
  end

let flat_push cmp fl fact id =
  let cap = Array.length fl.ff in
  if fl.fn = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nff = Array.make ncap fact in
    let nfi = Array.make ncap 0 in
    Array.blit fl.ff 0 nff 0 fl.fn;
    Array.blit fl.fi 0 nfi 0 fl.fn;
    fl.ff <- nff;
    fl.fi <- nfi
  end;
  fl.ff.(fl.fn) <- fact;
  fl.fi.(fl.fn) <- id;
  fl.fn <- fl.fn + 1;
  flat_up cmp fl (fl.fn - 1)

(* Caller checks [fl.fn > 0]. *)
let flat_pop cmp fl =
  let top = fl.ff.(0) in
  fl.f_popped_id <- fl.fi.(0);
  fl.fn <- fl.fn - 1;
  if fl.fn > 0 then begin
    fl.ff.(0) <- fl.ff.(fl.fn);
    fl.fi.(0) <- fl.fi.(fl.fn);
    flat_down cmp fl 0
  end;
  top

let create ?(backend = `Binary) ?(lean = false) ?(shadow = true) ?(newer_wins = false) ~key
    ~cost_cmp ?(stage = fun _ -> 0) () =
  (* Entry ids break cost ties so pops are deterministic (FIFO within
     equal cost), which the engines rely on for reproducible models. *)
  let entry_cmp a b =
    let c = cost_cmp a.fact b.fact in
    if c <> 0 then c else compare a.id b.id
  in
  { key; cost_cmp; stage; shadow; newer_wins;
    classes = Hashtbl.create 64;
    queue = make_queue backend entry_cmp;
    flat = (if lean then Some { ff = [||]; fi = [||]; fn = 0; f_popped_id = 0 } else None);
    live = 0; next_id = 0;
    s_inserted = 0; s_shadowed = 0; s_stale = 0; s_invalid = 0; s_used = 0;
    s_max_queue = 0 }

let bump_max t =
  if t.live > t.s_max_queue then t.s_max_queue <- t.live

let push_live t fact =
  let id = t.next_id in
  t.next_id <- id + 1;
  (match t.flat with
  | Some fl -> flat_push t.cost_cmp fl fact id
  | None -> t.queue.q_push { fact; id });
  t.live <- t.live + 1;
  bump_max t;
  id

let insert t fact =
  t.s_inserted <- t.s_inserted + 1;
  if not t.shadow then ignore (push_live t fact)
  else begin
    let k = t.key fact in
    match Hashtbl.find_opt t.classes k with
    | Some (Used, _) -> t.s_shadowed <- t.s_shadowed + 1
    | Some (Live _, incumbent) ->
      let replaces =
        if t.newer_wins && t.stage fact > t.stage incumbent then true
        else if t.newer_wins && t.stage fact < t.stage incumbent then false
        else t.cost_cmp fact incumbent < 0
      in
      if replaces then begin
        (* The incumbent's queue entry becomes stale; it is skipped at
           pop time.  [live] counts it out immediately. *)
        t.live <- t.live - 1;
        t.s_shadowed <- t.s_shadowed + 1;
        let id = push_live t fact in
        Hashtbl.replace t.classes k (Live id, fact)
      end
      else t.s_shadowed <- t.s_shadowed + 1
    | None ->
      let id = push_live t fact in
      Hashtbl.replace t.classes k (Live id, fact)
  end

(* Lean retrieval over the flat heap: same class/liveness logic as
   [retrieve_least] below, but tail-recursive with no result cells, the
   congruence key is only computed when shadowing is on, and the pop
   itself does not allocate. *)
let rec retrieve_flat t fl ~valid =
  if fl.fn = 0 then None
  else begin
    let fact = flat_pop t.cost_cmp fl in
    if not t.shadow then begin
      (* Every fact is its own class: every pop is live. *)
      t.live <- t.live - 1;
      if valid fact then begin
        t.s_used <- t.s_used + 1;
        Some fact
      end
      else begin
        t.s_invalid <- t.s_invalid + 1;
        retrieve_flat t fl ~valid
      end
    end
    else begin
      let id = fl.f_popped_id in
      let k = t.key fact in
      let is_live =
        match Hashtbl.find_opt t.classes k with
        | Some (Live live_id, _) -> live_id = id
        | Some (Used, _) | None -> false
      in
      if not is_live then begin
        t.s_stale <- t.s_stale + 1;
        retrieve_flat t fl ~valid
      end
      else begin
        t.live <- t.live - 1;
        if valid fact then begin
          t.s_used <- t.s_used + 1;
          Hashtbl.replace t.classes k (Used, fact);
          Some fact
        end
        else begin
          t.s_invalid <- t.s_invalid + 1;
          Hashtbl.remove t.classes k;
          retrieve_flat t fl ~valid
        end
      end
    end
  end

let retrieve_boxed t ~valid =
  (* Iterative: a queue full of stale or invalid entries must not blow
     the stack. *)
  let result = ref None in
  let finished = ref false in
  while not !finished do
    match t.queue.q_pop () with
    | None -> finished := true
    | Some { fact; id } ->
      let k = t.key fact in
      let is_live =
        if not t.shadow then true
        else
          match Hashtbl.find_opt t.classes k with
          | Some (Live live_id, _) -> live_id = id
          | Some (Used, _) | None -> false
      in
      if not is_live then t.s_stale <- t.s_stale + 1
      else begin
        t.live <- t.live - 1;
        if valid fact then begin
          t.s_used <- t.s_used + 1;
          if t.shadow then Hashtbl.replace t.classes k (Used, fact);
          result := Some fact;
          finished := true
        end
        else begin
          (* Invalid candidate: goes to R and reopens its class. *)
          t.s_invalid <- t.s_invalid + 1;
          if t.shadow then Hashtbl.remove t.classes k
        end
      end
  done;
  !result

let retrieve_least t ~valid =
  match t.flat with
  | Some fl -> retrieve_flat t fl ~valid
  | None -> retrieve_boxed t ~valid

let queue_length t = t.live

let stats t =
  { inserted = t.s_inserted;
    shadowed = t.s_shadowed;
    stale = t.s_stale;
    invalid = t.s_invalid;
    used = t.s_used;
    max_queue = t.s_max_queue }
