type 'f entry = { fact : 'f; id : int }

type 'f queue = {
  q_push : 'f entry -> unit;
  q_pop : unit -> 'f entry option;
  q_length : unit -> int;
}

type 'k class_state = Used | Live of int (* live entry id *)

type stats = {
  inserted : int;
  shadowed : int;
  stale : int;
  invalid : int;
  used : int;
  max_queue : int;
}

type ('f, 'k) t = {
  key : 'f -> 'k;
  cost_cmp : 'f -> 'f -> int;
  stage : 'f -> int;
  shadow : bool;
  newer_wins : bool;
  classes : ('k, 'k class_state * 'f) Hashtbl.t;
  queue : 'f queue;
  mutable live : int;
  mutable next_id : int;
  mutable s_inserted : int;
  mutable s_shadowed : int;
  mutable s_stale : int;
  mutable s_invalid : int;
  mutable s_used : int;
  mutable s_max_queue : int;
}

let make_queue backend cmp =
  match backend with
  | `Binary ->
    let h = Binary_heap.create ~cmp () in
    { q_push = Binary_heap.push h;
      q_pop = (fun () -> Binary_heap.pop h);
      q_length = (fun () -> Binary_heap.length h) }
  | `Pairing ->
    let h = Pairing_heap.create ~cmp () in
    { q_push = Pairing_heap.push h;
      q_pop = (fun () -> Pairing_heap.pop h);
      q_length = (fun () -> Pairing_heap.length h) }

let create ?(backend = `Binary) ?(shadow = true) ?(newer_wins = false) ~key ~cost_cmp
    ?(stage = fun _ -> 0) () =
  (* Entry ids break cost ties so pops are deterministic (FIFO within
     equal cost), which the engines rely on for reproducible models. *)
  let entry_cmp a b =
    let c = cost_cmp a.fact b.fact in
    if c <> 0 then c else compare a.id b.id
  in
  { key; cost_cmp; stage; shadow; newer_wins;
    classes = Hashtbl.create 64;
    queue = make_queue backend entry_cmp;
    live = 0; next_id = 0;
    s_inserted = 0; s_shadowed = 0; s_stale = 0; s_invalid = 0; s_used = 0;
    s_max_queue = 0 }

let bump_max t =
  if t.live > t.s_max_queue then t.s_max_queue <- t.live

let push_live t fact =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.queue.q_push { fact; id };
  t.live <- t.live + 1;
  bump_max t;
  id

let insert t fact =
  t.s_inserted <- t.s_inserted + 1;
  if not t.shadow then ignore (push_live t fact)
  else begin
    let k = t.key fact in
    match Hashtbl.find_opt t.classes k with
    | Some (Used, _) -> t.s_shadowed <- t.s_shadowed + 1
    | Some (Live _, incumbent) ->
      let replaces =
        if t.newer_wins && t.stage fact > t.stage incumbent then true
        else if t.newer_wins && t.stage fact < t.stage incumbent then false
        else t.cost_cmp fact incumbent < 0
      in
      if replaces then begin
        (* The incumbent's queue entry becomes stale; it is skipped at
           pop time.  [live] counts it out immediately. *)
        t.live <- t.live - 1;
        t.s_shadowed <- t.s_shadowed + 1;
        let id = push_live t fact in
        Hashtbl.replace t.classes k (Live id, fact)
      end
      else t.s_shadowed <- t.s_shadowed + 1
    | None ->
      let id = push_live t fact in
      Hashtbl.replace t.classes k (Live id, fact)
  end

let retrieve_least t ~valid =
  (* Iterative: a queue full of stale or invalid entries must not blow
     the stack. *)
  let result = ref None in
  let finished = ref false in
  while not !finished do
    match t.queue.q_pop () with
    | None -> finished := true
    | Some { fact; id } ->
      let k = t.key fact in
      let is_live =
        if not t.shadow then true
        else
          match Hashtbl.find_opt t.classes k with
          | Some (Live live_id, _) -> live_id = id
          | Some (Used, _) | None -> false
      in
      if not is_live then t.s_stale <- t.s_stale + 1
      else begin
        t.live <- t.live - 1;
        if valid fact then begin
          t.s_used <- t.s_used + 1;
          if t.shadow then Hashtbl.replace t.classes k (Used, fact);
          result := Some fact;
          finished := true
        end
        else begin
          (* Invalid candidate: goes to R and reopens its class. *)
          t.s_invalid <- t.s_invalid + 1;
          if t.shadow then Hashtbl.remove t.classes k
        end
      end
  done;
  !result

let queue_length t = t.live

let stats t =
  { inserted = t.s_inserted;
    shadowed = t.s_shadowed;
    stale = t.s_stale;
    invalid = t.s_invalid;
    used = t.s_used;
    max_queue = t.s_max_queue }
