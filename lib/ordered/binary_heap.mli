(** Array-based binary min-heap.

    The heap is parameterized at creation time by a comparison function;
    elements compare smaller are popped first.  Used by the procedural
    baselines (Prim, Dijkstra, heap-sort, Huffman) and by {!Rql}. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x] in [O(log n)]. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns a minimal element, or [None] when empty. *)

val peek : 'a t -> 'a option
(** [peek h] returns a minimal element without removing it. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** [of_list ~cmp xs] heapifies [xs] in [O(n)]. *)

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains [h], returning its elements in ascending
    order.  The heap is empty afterwards. *)
