(** Disjoint-set forest over integers [0 .. n-1].

    Used by the procedural Kruskal baseline.  The [~by_rank:false] mode
    disables union-by-rank (path compression stays on) so that the
    benchmark ablation can mimic the paper's remark that the declarative
    Kruskal does not merge the smaller component into the larger. *)

type t

val create : ?by_rank:bool -> int -> t
(** [create n] is [n] singleton classes [0 .. n-1]. *)

val find : t -> int -> int
(** Representative of the class of the argument, with path compression. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the classes of [a] and [b].  Returns [false]
    when they were already in the same class. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of distinct classes remaining. *)
