(** Functional pairing heap with an imperative wrapper.

    Pairing heaps give amortized [O(1)] meld/insert and [O(log n)]
    delete-min.  This implementation exists alongside {!Binary_heap} so
    that the benchmark harness can compare the two backends of the
    Section-6 [(R, Q, L)] structure. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
