(** The paper's Section-6 data structure [D_r = (R_r, Q_r, L_r)].

    [Q] is a priority queue of candidate facts for a [next]-rule [r],
    [L] the set of facts already used to fire [r], and [R] the facts
    known to be redundant.  Facts are grouped into {e r-congruence}
    classes (all arguments equal except the stage argument, the cost
    argument and the choice-FD-determined arguments); within a class at
    most one candidate lives in [Q] — the others are shadowed straight
    into [R].

    [R] is never materialized: redundant facts are only counted, which
    preserves the complexity bounds (the paper keeps [R] "as a simple
    set" purely to argue termination).

    Two compiler refinements over the paper's letter, both documented in
    DESIGN.md:

    - [~newer_wins:true] makes a fact from a strictly later stage shadow
      an older congruent fact regardless of cost.  This is required for
      rules whose body pins the candidate stage exactly (greedy TSP's
      [I = J + 1]): an older fact can never fire again, so letting it
      shadow a newer one would lose solutions.
    - [retrieve_least] takes a validity predicate and lazily re-checks
      the popped candidate (choice FDs, residual negated goals).  This
      is sound for stage-stratified programs because those conditions
      are monotone: once violated they stay violated.  An invalid pop is
      moved to [R] and its congruence class is reopened.

    [~shadow:false] disables congruence shadowing entirely (every fact
    is its own class); this is both the ablation knob and the correct
    mode for rules whose choice FDs make shadowing unsafe (e.g. the
    matching program, where the paper itself keeps all [e] arcs in
    [Q]). *)

type ('f, 'k) t

type stats = {
  inserted : int;  (** facts offered to [insert] *)
  shadowed : int;  (** facts sent to [R] at insertion time *)
  stale : int;  (** queue entries popped after being superseded *)
  invalid : int;  (** popped candidates rejected by the validity check *)
  used : int;  (** facts moved to [L] (returned by [retrieve_least]) *)
  max_queue : int;  (** high-water mark of [Q] *)
}

val create :
  ?backend:[ `Binary | `Pairing ] ->
  ?lean:bool ->
  ?shadow:bool ->
  ?newer_wins:bool ->
  key:('f -> 'k) ->
  cost_cmp:('f -> 'f -> int) ->
  ?stage:('f -> int) ->
  unit ->
  ('f, 'k) t
(** [create ~key ~cost_cmp ()] builds an empty structure.  [key]
    extracts the r-congruence class, [cost_cmp] orders candidates
    (ties must be broken deterministically by the caller for reproducible
    runs), and [stage] is required when [newer_wins] is set.

    [~lean:true] (the compiled engine's mode) stores the queue in a
    flat dual-array heap whose push/pop allocate nothing beyond
    amortized growth, overriding [backend].  The pop sequence is
    byte-identical either way: ids make the (cost, id) order total, so
    every correct heap drains in the same order. *)

val insert : ('f, 'k) t -> 'f -> unit
(** The paper's insertion operation, [O(log |Q|)] plus one hash probe. *)

val retrieve_least : ('f, 'k) t -> valid:('f -> bool) -> 'f option
(** The paper's retrieve-least operation: pops minimal live candidates,
    discards invalid ones into [R], moves the first valid one into [L]
    and returns it.  [None] when no valid candidate remains. *)

val queue_length : ('f, 'k) t -> int
(** Live entries currently in [Q] (stale entries excluded). *)

val stats : ('f, 'k) t -> stats
