type 'a tree = Leaf | Node of 'a * 'a tree list

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable root : 'a tree;
  mutable size : int;
}

let create ~cmp () = { cmp; root = Leaf; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let meld cmp a b =
  match a, b with
  | Leaf, t | t, Leaf -> t
  | Node (x, xs), Node (y, ys) ->
    if cmp x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

(* Two-pass pairing merge, written tail-recursively so that degenerate
   insertion orders (e.g. already-sorted input) cannot overflow the
   stack: first pair up adjacent siblings, then fold the pairs. *)
let merge_pairs cmp children =
  let rec pair acc = function
    | [] -> acc
    | [ t ] -> t :: acc
    | a :: b :: rest -> pair (meld cmp a b :: acc) rest
  in
  List.fold_left (meld cmp) Leaf (pair [] children)

let push h x =
  h.root <- meld h.cmp h.root (Node (x, []));
  h.size <- h.size + 1

let peek h = match h.root with Leaf -> None | Node (x, _) -> Some x

let pop h =
  match h.root with
  | Leaf -> None
  | Node (x, children) ->
    h.root <- merge_pairs h.cmp children;
    h.size <- h.size - 1;
    Some x

let of_list ~cmp xs =
  let h = create ~cmp () in
  List.iter (push h) xs;
  h

let to_sorted_list h =
  let rec drain acc = match pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  drain []
