(* Ahead-of-time compilation of planned rule bodies into closure
   chains.

   [Eval.compile_body] already fixes the join order, the guard
   placement and the static bound-column masks; this module takes that
   plan and specializes it once per rule into straight-line closures:

   - the environment is a plain [Value.t array] — no [Some] box per
     binding, the dominant allocation of the interpreter's kernel;
   - every per-row obligation (write, repeated-variable equality,
     structural match, arithmetic inversion) is resolved statically
     into a [rowop], so execution dispatches on a tiny opcode array
     instead of re-deriving bindings from [pterm]s per tuple;
   - index probes go through {!Relation.iter_matching_cols}: a static
     mask plus a reusable full-arity key buffer, no option pattern;
   - relation lookup happens once per chain execution, not once per
     enclosing solution.

   Static binding analysis is exact because it replays the interpreter:
   the caller promises to bind exactly the [bound] slots before
   {!run}, which is what every engine does with its [extra_bound]
   variables.  Probe masks equal the interpreter's runtime masks, so
   the same indexes are chosen, the same buckets walked, and rows are
   enumerated in exactly the same order — byte-identical models follow
   by construction.

   Chains hold private mutable buffers (environment, probe keys,
   resolved relations), so one instance must not be shared across
   concurrent executors: shards take a {!clone} (same static plan,
   fresh buffers) and run read-only via {!run_slice}, mirroring the
   interpreter's sharding contract. *)

module E = Eval
module ISet = Set.Make (Int)

type env = Value.t array

let test_cmp (op : Ast.cmp_op) a b =
  let c = Value.compare a b in
  match op with
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0

(* ------------------------------------------------------------------ *)
(* Compiled sub-programs                                               *)
(* ------------------------------------------------------------------ *)

(* All compiled closures take the environment as an argument, so a
   clone can share them and differ only in its buffers. *)

let rec has_unbound bound = function
  | E.PVar s -> not (ISet.mem s bound)
  | E.PCst _ -> false
  | E.PCmp (_, args) -> Array.exists (has_unbound bound) args
  | E.PBinop (_, a, b) -> has_unbound bound a || has_unbound bound b
  | E.PAny -> true

(* Evaluator of a pterm whose variables the static analysis proved
   bound.  A statically unbound variable (or a wildcard) compiles to a
   raising closure — the interpreter's runtime [Unsafe] on the same
   program, just decided earlier. *)
let rec compile_eval bound (t : E.pterm) : env -> Value.t =
  match t with
  | E.PVar s ->
    if ISet.mem s bound then fun env -> env.(s)
    else fun _ -> raise (E.Unsafe "unbound variable in compiled term")
  | E.PCst c -> fun _ -> c
  | E.PCmp (f, args) ->
    let progs = Array.map (compile_eval bound) args in
    let n = Array.length progs in
    let eval_args env =
      let rec go i = if i = n then [] else progs.(i) env :: go (i + 1) in
      go 0
    in
    if f = "" then fun env -> Value.Tup (eval_args env)
    else fun env -> Value.App (f, eval_args env)
  | E.PBinop (op, a, b) ->
    let ea = compile_eval bound a and eb = compile_eval bound b in
    fun env -> E.apply_binop op (ea env) (eb env)
  | E.PAny -> fun _ -> raise (E.Unsafe "unbound variable in compiled term")

(* Matcher of a pterm against a ground value, binding statically
   unbound slots in place.  This is [match_pterm] with the dynamic
   bound checks replayed at compile time; [inversion] selects between
   [match_pterm] semantics (scans, unifications — Add/Sub equations
   can bind their one unbound side) and [bind_cterm] semantics
   (engine-side row binding — partially bound arithmetic never
   matches).  No trail: stale writes from a failed row are invisible
   because a statically-unbound slot is never read before the next
   write. *)
let rec compile_match ~inversion bound (t : E.pterm) : (env -> Value.t -> bool) * ISet.t =
  match t with
  | E.PAny -> (fun _ _ -> true), bound
  | E.PVar s ->
    if ISet.mem s bound then (fun env v -> Value.equal env.(s) v), bound
    else
      ( (fun env v ->
          env.(s) <- v;
          true),
        ISet.add s bound )
  | E.PCst c -> (fun _ v -> Value.equal c v), bound
  | E.PCmp (f, args) ->
    let n = Array.length args in
    let bound = ref bound in
    let ms =
      Array.map
        (fun a ->
          let m, b = compile_match ~inversion !bound a in
          bound := b;
          m)
        args
    in
    let match_list env vs =
      List.length vs = n
      &&
      let rec go i = function
        | [] -> true
        | v :: rest -> ms.(i) env v && go (i + 1) rest
      in
      go 0 vs
    in
    let m =
      if f = "" then fun env v ->
        match v with Value.Tup vs -> match_list env vs | _ -> false
      else fun env v ->
        match v with
        | Value.App (g, vs) when String.equal f g -> match_list env vs
        | _ -> false
    in
    (m, !bound)
  | E.PBinop (op, a, b) ->
    if not (has_unbound bound t) then
      let ev = compile_eval bound t in
      (fun env v -> Value.equal (ev env) v), bound
    else if not inversion then (fun _ _ -> false), bound
    else (
      (* Invert simple integer arithmetic so that equations like
         [I = J + 1] can bind [J] when [I] is already known — exactly
         the interpreter's [match_pterm] cases. *)
      match op with
      | Ast.Add ->
        if not (has_unbound bound a) then
          let ea = compile_eval bound a in
          let mb, bound' = compile_match ~inversion bound b in
          ( (fun env v ->
              match v with
              | Value.Int s -> (
                match ea env with
                | Value.Int x -> mb env (Value.Int (s - x))
                | _ -> false)
              | _ -> false),
            bound' )
        else if not (has_unbound bound b) then
          let eb = compile_eval bound b in
          let ma, bound' = compile_match ~inversion bound a in
          ( (fun env v ->
              match v with
              | Value.Int s -> (
                match eb env with
                | Value.Int y -> ma env (Value.Int (s - y))
                | _ -> false)
              | _ -> false),
            bound' )
        else (fun _ _ -> false), bound
      | Ast.Sub ->
        if not (has_unbound bound a) then
          let ea = compile_eval bound a in
          let mb, bound' = compile_match ~inversion bound b in
          ( (fun env v ->
              match v with
              | Value.Int s -> (
                match ea env with
                | Value.Int x -> mb env (Value.Int (x - s))
                | _ -> false)
              | _ -> false),
            bound' )
        else if not (has_unbound bound b) then
          let eb = compile_eval bound b in
          let ma, bound' = compile_match ~inversion bound a in
          ( (fun env v ->
              match v with
              | Value.Int s -> (
                match eb env with
                | Value.Int y -> ma env (Value.Int (s + y))
                | _ -> false)
              | _ -> false),
            bound' )
        else (fun _ _ -> false), bound
      | _ -> (fun _ _ -> false), bound)

(* ------------------------------------------------------------------ *)
(* Compiled scans                                                      *)
(* ------------------------------------------------------------------ *)

(* What is left to do per enumerated row, positions ascending — the
   statically-unrolled residue of [match_row] after the index probe
   guaranteed every masked column. *)
type rowop =
  | WVar of int * int  (** [env.(slot) <- row.(pos)] — first occurrence *)
  | REq of int * int  (** [row.(pos)] must equal [env.(slot)] — repeat *)
  | RMatch of int * (env -> Value.t -> bool)  (** structural match-bind *)

type cscan = {
  cs_pred : string;
  cs_arity : int;
  cs_mask : int;
  cs_key : Value.t array;  (* full-arity probe key; constants prefilled *)
  cs_kfill : (int * (env -> Value.t)) array;
  cs_ops : rowop array;
  cs_writes : (int * int) array;  (* = the ops when they are all writes *)
  cs_all_writes : bool;
  cs_probe : Value.t array;  (* private probe buffer for read-only runs *)
  cs_iprobe : int array;  (* private flat-probe buffer for read-only runs *)
  mutable cs_rel : Relation.t option;
}

type cstep =
  | CScan of cscan
  | CNeg of cscan * (env -> bool) array
  | CTest of (env -> bool)
  | CUnify of (env -> Value.t) * (env -> Value.t -> bool)

let popcount mask =
  let n = ref 0 and m = ref mask in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr n
  done;
  !n

let build_scan bound (sc : E.scan) =
  let mask = sc.E.sc_mask in
  let key = Array.make (max 1 sc.E.sc_arity) Value.unit in
  let kfill = ref [] in
  let ops = ref [] in
  let bound = ref bound in
  for p = 0 to sc.E.sc_arity - 1 do
    let t = sc.E.sc_args.(p) in
    if mask land (1 lsl p) <> 0 then (
      match t with
      | E.PCst c -> key.(p) <- c
      | _ -> kfill := (p, compile_eval !bound t) :: !kfill)
    else
      match t with
      | E.PVar s ->
        if ISet.mem s !bound then ops := REq (p, s) :: !ops
        else begin
          ops := WVar (p, s) :: !ops;
          bound := ISet.add s !bound
        end
      | E.PCmp _ | E.PBinop _ ->
        let m, b = compile_match ~inversion:true !bound t in
        ops := RMatch (p, m) :: !ops;
        bound := b
      | E.PCst _ | E.PAny -> assert false (* constants are always masked *)
  done;
  let ops = Array.of_list (List.rev !ops) in
  let writes =
    Array.of_list
      (List.filter_map (function WVar (p, s) -> Some (p, s) | _ -> None) (Array.to_list ops))
  in
  let all_writes = Array.length writes = Array.length ops in
  ( { cs_pred = sc.E.sc_pred;
      cs_arity = sc.E.sc_arity;
      cs_mask = mask;
      cs_key = key;
      cs_kfill = Array.of_list (List.rev !kfill);
      cs_ops = ops;
      cs_writes = writes;
      cs_all_writes = all_writes;
      cs_probe = Array.make (max 1 (popcount mask)) Value.unit;
      cs_iprobe = Array.make (max 1 sc.E.sc_arity) 0;
      cs_rel = None },
    !bound )

(* The statically-unrolled residue of [match_row] per enumerated row:
   fields are read positionally through [Relation.read], so flat
   relations never materialize a row tuple. *)
let rec ops_ok_ids env (ops : rowop array) rel id j =
  j = Array.length ops
  || (match ops.(j) with
     | WVar (p, s) ->
       env.(s) <- Relation.read rel id p;
       true
     | REq (p, s) -> Value.equal env.(s) (Relation.read rel id p)
     | RMatch (p, m) -> m env (Relation.read rel id p))
     && ops_ok_ids env ops rel id (j + 1)

let rec guards_ok env (gs : (env -> bool) array) j =
  j = Array.length gs || (gs.(j) env && guards_ok env gs (j + 1))

let fill_key env cs =
  let kf = cs.cs_kfill in
  for j = 0 to Array.length kf - 1 do
    let p, e = kf.(j) in
    cs.cs_key.(p) <- e env
  done

(* Does some row of the negated relation match?  Boolean only, so
   enumeration order inside is free; the probe mask still matches the
   interpreter's so no index is built that it would not build. *)
let neg_fails ~ro env cs guards =
  match cs.cs_rel with
  | None -> false
  | Some rel ->
    fill_key env cs;
    let hit = ref false in
    let visit id =
      if ops_ok_ids env cs.cs_ops rel id 0 && guards_ok env guards 0 then begin
        hit := true;
        raise Exit
      end
    in
    (try
       if ro then
         Relation.iter_matching_cols_ro_ids rel cs.cs_mask cs.cs_key cs.cs_probe cs.cs_iprobe visit
       else Relation.iter_matching_cols_ids rel cs.cs_mask cs.cs_key visit
     with Exit -> ());
    !hit

(* ------------------------------------------------------------------ *)
(* Chains                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  c_body : E.body;
  c_bound0 : int list;
  c_env : env;
  c_steps : cstep array;
  c_bound_end : ISet.t;
  c_kont : (unit -> unit) ref;
  c_entry : unit -> unit;  (* read-write executor over all steps *)
  c_slice_entry : Relation.slice -> int -> int -> unit;  (* read-only, step 0 from a slice *)
}

let noop () = ()

let of_body ?(bound = []) (body : E.body) =
  let bound0 = bound in
  let bound = ref (ISet.of_list bound) in
  let steps =
    Array.map
      (fun (s : E.step) ->
        match s with
        | E.SScan sc ->
          let cs, b = build_scan !bound sc in
          bound := b;
          CScan cs
        | E.SNeg (sc, guards) ->
          (* Locals bind inside the negation only: thread the scan's
             bound set into the guards, then forget it. *)
          let cs, b = build_scan !bound sc in
          let gs =
            Array.of_list
              (List.map
                 (fun ((op, x, y) : E.guard) ->
                   let ex = compile_eval b x and ey = compile_eval b y in
                   fun env -> test_cmp op (ex env) (ey env))
                 guards)
          in
          CNeg (cs, gs)
        | E.STest (op, x, y) ->
          let ex = compile_eval !bound x and ey = compile_eval !bound y in
          CTest (fun env -> test_cmp op (ex env) (ey env))
        | E.SUnify (pat, ground) ->
          let eg = compile_eval !bound ground in
          let m, b = compile_match ~inversion:true !bound pat in
          bound := b;
          CUnify (eg, m))
      body.E.steps
  in
  let env = Array.make (max 1 body.E.nvars) Value.unit in
  let kont = ref noop in
  let n = Array.length steps in
  let rec build ~ro i : unit -> unit =
    if i >= n then fun () -> !kont ()
    else
      let next = build ~ro (i + 1) in
      match steps.(i) with
      | CScan cs ->
        (* visit closures are preallocated; they re-read [cs_rel] per
           row (set before iteration starts, never cleared mid-run) *)
        if cs.cs_all_writes then begin
          let writes = cs.cs_writes in
          let nw = Array.length writes in
          let visit id =
            (match cs.cs_rel with
            | Some rel ->
              for j = 0 to nw - 1 do
                let p, s = writes.(j) in
                env.(s) <- Relation.read rel id p
              done
            | None -> assert false);
            next ()
          in
          fun () ->
            match cs.cs_rel with
            | None -> ()
            | Some rel ->
              fill_key env cs;
              if ro then
                Relation.iter_matching_cols_ro_ids rel cs.cs_mask cs.cs_key cs.cs_probe
                  cs.cs_iprobe visit
              else Relation.iter_matching_cols_ids rel cs.cs_mask cs.cs_key visit
        end
        else begin
          let ops = cs.cs_ops in
          let visit id =
            match cs.cs_rel with
            | Some rel -> if ops_ok_ids env ops rel id 0 then next ()
            | None -> assert false
          in
          fun () ->
            match cs.cs_rel with
            | None -> ()
            | Some rel ->
              fill_key env cs;
              if ro then
                Relation.iter_matching_cols_ro_ids rel cs.cs_mask cs.cs_key cs.cs_probe
                  cs.cs_iprobe visit
              else Relation.iter_matching_cols_ids rel cs.cs_mask cs.cs_key visit
        end
      | CNeg (cs, gs) -> fun () -> if not (neg_fails ~ro env cs gs) then next ()
      | CTest t -> fun () -> if t env then next ()
      | CUnify (eg, m) -> fun () -> if m env (eg env) then next ()
  in
  let entry = build ~ro:false 0 in
  let slice_tail = build ~ro:true 1 in
  let slice_entry =
    if n = 0 || (match steps.(0) with CScan _ -> false | _ -> true) then
      fun _ _ _ -> invalid_arg "Compile.run_slice: chain does not start with a scan"
    else
      match steps.(0) with
      | CScan cs ->
        if cs.cs_all_writes then begin
          let writes = cs.cs_writes in
          let nw = Array.length writes in
          fun sl lo hi ->
            let rel = Relation.slice_rel sl in
            Relation.slice_iter_ids sl lo hi (fun id ->
                for j = 0 to nw - 1 do
                  let p, s = writes.(j) in
                  env.(s) <- Relation.read rel id p
                done;
                slice_tail ())
        end
        else begin
          let ops = cs.cs_ops in
          fun sl lo hi ->
            let rel = Relation.slice_rel sl in
            Relation.slice_iter_ids sl lo hi (fun id ->
                if ops_ok_ids env ops rel id 0 then slice_tail ())
        end
      | _ -> assert false
  in
  { c_body = body;
    c_bound0 = bound0;
    c_env = env;
    c_steps = steps;
    c_bound_end = !bound;
    c_kont = kont;
    c_entry = entry;
    c_slice_entry = slice_entry }

let clone t = of_body ~bound:t.c_bound0 t.c_body
let env t = t.c_env
let set_slot t s v = t.c_env.(s) <- v
let body t = t.c_body

let find_rel db cs =
  match Database.find db cs.cs_pred with
  | None -> None
  | Some rel ->
    if Relation.arity rel <> cs.cs_arity then
      invalid_arg
        (Printf.sprintf "predicate %s used with arity %d and %d" cs.cs_pred (Relation.arity rel)
           cs.cs_arity);
    Some rel

(* Relation resolution happens once per execution: engines collect
   solutions first and insert afterwards, so the database's relation
   map is stable while a chain runs. *)
let resolve t db =
  Array.iter
    (function
      | CScan cs | CNeg (cs, _) -> cs.cs_rel <- find_rel db cs
      | CTest _ | CUnify _ -> ())
    t.c_steps

let run_resolved t k =
  t.c_kont := k;
  t.c_entry ();
  t.c_kont := noop

let run t db k =
  resolve t db;
  run_resolved t k

let shardable t = E.shardable t.c_body
let prepare_indexes t db = E.prepare_indexes t.c_body db

let shard_scan t db =
  if Array.length t.c_steps = 0 then invalid_arg "Compile.shard_scan: empty chain"
  else
    match t.c_steps.(0) with
    | CScan cs -> (
      cs.cs_rel <- find_rel db cs;
      match cs.cs_rel with
      | None -> None
      | Some rel ->
        fill_key t.c_env cs;
        Some (Relation.slice_cols rel cs.cs_mask cs.cs_key))
    | _ -> invalid_arg "Compile.shard_scan: chain does not start with a scan"

let run_slice t db sl lo hi k =
  resolve t db;
  t.c_kont := k;
  t.c_slice_entry sl lo hi;
  t.c_kont := noop

(* ------------------------------------------------------------------ *)
(* Engine-side programs over a chain's environment                     *)
(* ------------------------------------------------------------------ *)

type value_prog = env -> Value.t

let compile_value t ct = compile_eval t.c_bound_end ct
let compile_row t cts = Array.map (compile_value t) cts

let eval_row env (progs : value_prog array) =
  let n = Array.length progs in
  let out = Array.make n Value.unit in
  for i = 0 to n - 1 do
    out.(i) <- progs.(i) env
  done;
  out

type binder = (env -> Value.t -> bool) array

(* [bind_cterm] semantics: no arithmetic inversion, no trail. *)
let compile_binder ~bound cts =
  let b = ref (ISet.of_list bound) in
  Array.map
    (fun ct ->
      let m, b' = compile_match ~inversion:false !b ct in
      b := b';
      m)
    cts

let rec bind_from (bdr : binder) env (row : Value.t array) i =
  i = Array.length bdr || (bdr.(i) env row.(i) && bind_from bdr env row (i + 1))

let bind (bdr : binder) env (row : Value.t array) =
  Array.length row = Array.length bdr && bind_from bdr env row 0
