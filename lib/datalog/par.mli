(** A work-sharing pool of OCaml 5 domains.

    The data-parallel half of the Theorem 3 alternation: flat-rule
    saturation shards each rule's delta across domains, while the
    choice/[next] firings that need sequencing stay on the calling
    domain.  A pool owns [size - 1] blocked worker domains plus the
    caller; {!run} splits a job into dynamically claimed shards and
    joins them all before returning, re-raising the first shard failure
    (by lowest shard index) so exception behaviour is deterministic.

    Pools promise nothing about shard execution order.  The engines
    obtain deterministic (byte-identical to sequential) models by
    having each shard fill a private buffer and merging the buffers in
    shard-index order after the join — see docs/INTERNALS.md,
    "Parallel evaluation". *)

type t

val sequential : t
(** The width-1 pool: {!run} executes shards inline on the caller, no
    domains are ever spawned.  The default of every engine entry
    point. *)

val create : jobs:int -> t
(** A private pool of [jobs] domains total (the caller counts as one;
    clamped to [1 .. 64]).  Workers are spawned lazily on the first
    parallel {!run} and live for the rest of the process. *)

val get : int -> t
(** The shared process-wide pool of the given width — repeated
    [get 4] returns the same pool, so repl/daemon/bench runs reuse
    workers instead of accumulating idle domains.  [get 1] is
    {!sequential}. *)

val size : t -> int
(** Total domains including the caller. *)

val run : t -> shards:int -> (int -> unit) -> unit
(** [run t ~shards f] executes [f 0 .. f (shards-1)], concurrently on
    the pool's domains when the pool is wider than 1 and available,
    inline otherwise (including when another domain currently owns the
    pool).  Returns only after every shard finished.  If shards raised,
    the exception of the lowest-indexed failing shard is re-raised.
    Must not be called from inside a shard body of the same pool. *)

val nshards : t -> int -> int
(** How many shards to cut [n] work items into: [min (size t) n]
    (0 when [n <= 0]). *)

val bounds : shards:int -> int -> int -> int * int
(** [bounds ~shards n i] is the contiguous [lo, hi) sub-range of
    [0, n) owned by shard [i] under a near-equal split. *)
