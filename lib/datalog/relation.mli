(** Append-only relation storage with on-demand hash indexes.

    Rows are kept in insertion order (engines rely on this for
    deterministic tie-breaking), membership is a hash set, and an index
    is built lazily for every distinct bound-column pattern that a query
    uses.  Indexes are maintained incrementally on insertion, so any
    lookup after the first is expected [O(1 + matches)].

    Relations only grow — the semantics never retracts a fact — which is
    what makes the watermark-based semi-naive deltas ({!cardinal} +
    {!iter_from}) sound. *)

type tuple = Value.t array

type t

val create : string -> int -> t
(** [create name arity]. *)

val name : t -> string
val arity : t -> int
val cardinal : t -> int

val add : t -> tuple -> bool
(** [add r row] returns [true] if the row was new.
    @raise Invalid_argument on arity mismatch. *)

val mem : t -> tuple -> bool

val iter : t -> (tuple -> unit) -> unit
(** All rows, in insertion order. *)

val iter_from : t -> int -> (tuple -> unit) -> unit
(** [iter_from r k f] applies [f] to rows [k, k+1, ...] in insertion
    order — the semi-naive delta between two watermarks. *)

val iter_matching : t -> Value.t option array -> (tuple -> unit) -> unit
(** [iter_matching r pattern f]: rows agreeing with every [Some v]
    position of [pattern].  Uses (and if needed builds) the index for
    the pattern's bound-column set. *)

val fold : t -> init:'a -> f:('a -> tuple -> 'a) -> 'a
val to_list : t -> tuple list
val copy : t -> t
(** Deep enough a copy that further [add]s to either side are invisible
    to the other (rows themselves are immutable values). *)
