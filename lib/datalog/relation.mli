(** Append-only relation storage with on-demand hash indexes.

    Rows are kept in insertion order (engines rely on this for
    deterministic tie-breaking), membership is a hash set, and an index
    is built lazily for every distinct bound-column pattern that a query
    uses.  Indexes are maintained incrementally on insertion, so any
    lookup after the first is expected [O(1 + matches)].

    Relations only grow — the semantics never retracts a fact — which is
    what makes the watermark-based semi-naive deltas ({!cardinal} +
    {!iter_from}) sound, and what lets {!copy} share the frozen prefix
    copy-on-write instead of re-hashing every row.

    {b Two physical representations} live behind this interface.  Rows
    whose fields are all [Value.Int]/[Value.Sym] (every ground EDB row
    since interning) can be stored {e flat}: one growable int array of
    [arity * count] cells, with membership and index buckets probing
    directly into it — no per-row tuple, no per-field box.  A relation
    starts boxed and promotes automatically once it holds
    {!flat_threshold} all-int rows; a later non-encodable row demotes it
    back.  Promotion is invisible: iteration order, dedup and probe
    semantics are identical in both representations, which the
    byte-identity of canonical models depends on.  Flat relations decode
    cells through shared-value caches, so scans allocate (almost)
    nothing; the id-based accessors below avoid even the per-row tuple
    for hot paths that only read a few fields. *)

type tuple = Value.t array

module Row_key : Hashtbl.HashedType with type t = tuple
(** Structural equality and deep hash over whole rows. *)

module Row_tbl : Hashtbl.S with type key = tuple
(** Hash tables keyed by rows — use this instead of a polymorphic
    [Hashtbl] so keys hash via {!Value.hash} (never truncated). *)

type t

val create : string -> int -> t
(** [create name arity]. *)

val name : t -> string
val arity : t -> int
val cardinal : t -> int

val add : t -> tuple -> bool
(** [add r row] returns [true] if the row was new.
    @raise Invalid_argument on arity mismatch. *)

val add_ints : t -> int array -> bool
(** [add_ints r ints]: add the row [Int ints.(0), ..., Int ints.(n-1)]
    without boxing any field — the bulk-loader fast path.  The first row
    of an empty relation switches it to the flat representation
    immediately (when flat storage is enabled), bypassing the promotion
    threshold.  Same dedup/return semantics as {!add}.
    @raise Invalid_argument on arity mismatch. *)

val mem : t -> tuple -> bool

val iter : t -> (tuple -> unit) -> unit
(** All rows, in insertion order. *)

val iter_from : t -> int -> (tuple -> unit) -> unit
(** [iter_from r k f] applies [f] to rows [k, k+1, ...] in insertion
    order — the semi-naive delta between two watermarks. *)

val filter : t -> (tuple -> bool) -> t
(** [filter r keep]: a fresh relation holding the rows of [r] that
    satisfy [keep], in their original insertion order.  This is how
    incremental view maintenance retracts: relations themselves are
    append-only, so deletion rebuilds the survivors (O(n)) and installs
    the result with [Database.set_relation]; indexes are rebuilt lazily
    on the next probe.  Preserves the source's representation. *)

val append_from : t -> t -> int -> unit
(** [append_from dst src from]: bulk-copy rows [from, cardinal src) of
    [src] into [dst], which must be empty — the semi-naive delta
    publisher.  Rows of one relation are already distinct, so no
    membership probes are paid on the way in; a flat source is copied as
    one cell blit.
    @raise Invalid_argument if [dst] is non-empty or arities differ. *)

(** {2 Id-based access}

    Row ids are insertion positions: row [0] is the oldest, ids are
    dense in [0, cardinal) and stable forever (relations only grow).
    The [_ids] iterators enumerate exactly the same ids, in exactly the
    same order, as their tuple-yielding counterparts — but without
    materializing a tuple per row, which on flat relations is the
    difference between one array load per field and an allocation per
    row.  Pair them with {!read}. *)

val read : t -> int -> int -> Value.t
(** [read r id col]: field [col] of row [id].  No bounds checks beyond
    the store's own; callers pass ids obtained from the [_ids]
    iterators.  Allocation-free on boxed relations and on flat cells
    that hit the decode cache. *)

val iter_ids : t -> (int -> unit) -> unit
(** Ids [0, cardinal) in order; the bound is read once. *)

val iter_matching_ids : t -> Value.t option array -> (int -> unit) -> unit
(** Id-yielding {!iter_matching}: same index use, same order, same
    snapshot semantics. *)

val iter_matching_ro_ids : t -> Value.t option array -> (int -> unit) -> unit
(** Id-yielding {!iter_matching_ro}. *)

val iter_matching_cols_ids : t -> int -> Value.t array -> (int -> unit) -> unit
(** Id-yielding {!iter_matching_cols}. *)

val iter_matching_cols_ro_ids :
  t -> int -> Value.t array -> Value.t array -> int array -> (int -> unit) -> unit
(** [iter_matching_cols_ro_ids r mask key probe iprobe f]: id-yielding
    {!iter_matching_cols_ro}.  Concurrent readers own both scratch
    buffers: [probe] needs as many slots as [mask] has bits (boxed
    probes), [iprobe] needs [arity r] slots (flat probes). *)

val iter_matching : t -> Value.t option array -> (tuple -> unit) -> unit
(** [iter_matching r pattern f]: rows agreeing with every [Some v]
    position of [pattern], in insertion order.  Uses (and if needed
    builds) the index for the pattern's bound-column set.  The pattern
    is consumed before [f] is first called, so callers may reuse a
    scratch pattern buffer across calls.  Rows inserted by [f] itself
    are not visited. *)

val iter_matching_ro : t -> Value.t option array -> (tuple -> unit) -> unit
(** Like {!iter_matching} but safe for concurrent readers: never builds
    or mutates an index and probes with a private key.  Falls back to a
    filtered linear scan when no index exists for the pattern's bound
    columns — same rows, same insertion order, just slower; call
    {!ensure_index} from the (sequential) coordinator first. *)

val iter_matching_cols : t -> int -> Value.t array -> (tuple -> unit) -> unit
(** [iter_matching_cols r mask key f]: rows agreeing with [key] on every
    column of the bitmask [mask], in insertion order.  [key] is a
    full-arity buffer whose positions outside [mask] are ignored — the
    compiled execution path's allocation-free replacement for building
    an option pattern.  Index choice and snapshot semantics are those of
    {!iter_matching}, so the row sequence is identical. *)

val iter_matching_cols_ro : t -> int -> Value.t array -> Value.t array -> (tuple -> unit) -> unit
(** [iter_matching_cols_ro r mask key probe f]: like
    {!iter_matching_cols} but safe for concurrent readers — never builds
    an index and probes with the caller-owned [probe] buffer, which must
    hold exactly as many slots as [mask] has bits.  Falls back to a
    filtered linear scan when no index exists (same rows, same order). *)

val ensure_index : t -> int -> unit
(** [ensure_index r mask] builds (if absent) the index for the
    bound-column bitmask [mask], so subsequent {!iter_matching_ro}
    probes with that mask hit it.  Must be called outside any parallel
    region — it mutates the relation's index table. *)

(** {2 Slices — sharded enumeration}

    A slice freezes the row set matching a pattern so a domain pool can
    enumerate disjoint contiguous ranges of it concurrently.  Built by
    the sequential coordinator ({!slice} may create an index); shards
    then call {!slice_iter} on their own ranges, which touches nothing
    mutable.  Rows appended after the slice was taken are not
    visited. *)

type slice

val slice : t -> Value.t option array -> slice
(** The rows matching [pattern] (every [Some v] position), in insertion
    order: the whole relation when the pattern is all-wildcards, an
    index bucket otherwise. *)

val slice_cols : t -> int -> Value.t array -> slice
(** Mask + key-buffer variant of {!slice} for compiled chains: the rows
    agreeing with [key] on every column of [mask]. *)

val slice_len : slice -> int

val slice_rel : slice -> t
(** The relation the slice was taken from — pair with {!slice_iter_ids}
    and {!read}. *)

val slice_iter : slice -> int -> int -> (tuple -> unit) -> unit
(** [slice_iter sl lo hi f]: rows [lo, hi) of the slice, in order. *)

val slice_iter_ids : slice -> int -> int -> (int -> unit) -> unit
(** Id-yielding {!slice_iter}: same ids, same order. *)

val fold : t -> init:'a -> f:('a -> tuple -> 'a) -> 'a
val to_list : t -> tuple list

val copy : t -> t
(** An independent snapshot: further [add]s to either side are invisible
    to the other.  O(1) — the row store and membership set are shared
    until one side next mutates (stored rows themselves never change). *)

(** {2 Flat representation control and raw access} *)

val is_flat : t -> bool

val set_flat_threshold : int option -> unit
(** Override the promotion threshold for this process: [Some n] promotes
    all-int relations at [n] rows, [None] disables flat storage for
    relations not already flat.  Initialized from the [GBC_FLAT]
    environment variable ("off"/"0" disables, an integer overrides the
    default of 1024).  Intended for tests and benchmarks. *)

val flat_threshold : unit -> int option

val promote : t -> bool
(** Force promotion now (threshold ignored); returns whether the
    relation is flat afterwards (false if it holds non-encodable rows,
    is nullary, or flat storage is disabled). *)

val demote : t -> unit
(** Force the boxed representation (no-op if already boxed). *)

val distinct_counts : t -> int array
(** Per-column distinct-value counts — planner statistics.  O(cells) on
    flat relations with no boxing. *)

(** {2 Snapshot codec support}

    A flat relation's store is an array of cells: [i lsl 1] encodes
    [Int i], [(id lsl 1) lor 1] encodes [Sym id].  The codec writes the
    store as one blob and rewrites sym ids through the snapshot's local
    symbol table using the helpers below. *)

val flat_cells : t -> int array option
(** The live cell store of a flat relation (length may exceed
    [cardinal * arity]; only the first [cardinal * arity] cells are
    meaningful).  [None] for boxed relations.  Callers must not mutate
    the array. *)

val of_flat_cells : string -> int -> int array -> int -> t
(** [of_flat_cells name arity cells count]: rebuild a flat relation from
    a decoded cell blob, taking ownership of [cells].  Rows must already
    be distinct (membership is rebuilt, not checked).
    @raise Invalid_argument if [arity <= 0] or [cells] is too short. *)

val cell_is_sym : int -> bool
val cell_sym : int -> int
val sym_cell : int -> int
val int_cell : int -> int
