(** Append-only relation storage with on-demand hash indexes.

    Rows are kept in insertion order (engines rely on this for
    deterministic tie-breaking), membership is a hash set, and an index
    is built lazily for every distinct bound-column pattern that a query
    uses.  Indexes are maintained incrementally on insertion, so any
    lookup after the first is expected [O(1 + matches)].

    Relations only grow — the semantics never retracts a fact — which is
    what makes the watermark-based semi-naive deltas ({!cardinal} +
    {!iter_from}) sound, and what lets {!copy} share the frozen prefix
    copy-on-write instead of re-hashing every row. *)

type tuple = Value.t array

module Row_key : Hashtbl.HashedType with type t = tuple
(** Structural equality and deep hash over whole rows. *)

module Row_tbl : Hashtbl.S with type key = tuple
(** Hash tables keyed by rows — use this instead of a polymorphic
    [Hashtbl] so keys hash via {!Value.hash} (never truncated). *)

type t

val create : string -> int -> t
(** [create name arity]. *)

val name : t -> string
val arity : t -> int
val cardinal : t -> int

val add : t -> tuple -> bool
(** [add r row] returns [true] if the row was new.
    @raise Invalid_argument on arity mismatch. *)

val mem : t -> tuple -> bool

val iter : t -> (tuple -> unit) -> unit
(** All rows, in insertion order. *)

val iter_from : t -> int -> (tuple -> unit) -> unit
(** [iter_from r k f] applies [f] to rows [k, k+1, ...] in insertion
    order — the semi-naive delta between two watermarks. *)

val filter : t -> (tuple -> bool) -> t
(** [filter r keep]: a fresh relation holding the rows of [r] that
    satisfy [keep], in their original insertion order.  This is how
    incremental view maintenance retracts: relations themselves are
    append-only, so deletion rebuilds the survivors (O(n)) and installs
    the result with [Database.set_relation]; indexes are rebuilt lazily
    on the next probe. *)

val iter_matching : t -> Value.t option array -> (tuple -> unit) -> unit
(** [iter_matching r pattern f]: rows agreeing with every [Some v]
    position of [pattern], in insertion order.  Uses (and if needed
    builds) the index for the pattern's bound-column set.  The pattern
    is consumed before [f] is first called, so callers may reuse a
    scratch pattern buffer across calls.  Rows inserted by [f] itself
    are not visited. *)

val iter_matching_ro : t -> Value.t option array -> (tuple -> unit) -> unit
(** Like {!iter_matching} but safe for concurrent readers: never builds
    or mutates an index and probes with a private key.  Falls back to a
    filtered linear scan when no index exists for the pattern's bound
    columns — same rows, same insertion order, just slower; call
    {!ensure_index} from the (sequential) coordinator first. *)

val iter_matching_cols : t -> int -> Value.t array -> (tuple -> unit) -> unit
(** [iter_matching_cols r mask key f]: rows agreeing with [key] on every
    column of the bitmask [mask], in insertion order.  [key] is a
    full-arity buffer whose positions outside [mask] are ignored — the
    compiled execution path's allocation-free replacement for building
    an option pattern.  Index choice and snapshot semantics are those of
    {!iter_matching}, so the row sequence is identical. *)

val iter_matching_cols_ro : t -> int -> Value.t array -> Value.t array -> (tuple -> unit) -> unit
(** [iter_matching_cols_ro r mask key probe f]: like
    {!iter_matching_cols} but safe for concurrent readers — never builds
    an index and probes with the caller-owned [probe] buffer, which must
    hold exactly as many slots as [mask] has bits.  Falls back to a
    filtered linear scan when no index exists (same rows, same order). *)

val ensure_index : t -> int -> unit
(** [ensure_index r mask] builds (if absent) the index for the
    bound-column bitmask [mask], so subsequent {!iter_matching_ro}
    probes with that mask hit it.  Must be called outside any parallel
    region — it mutates the relation's index table. *)

(** {2 Slices — sharded enumeration}

    A slice freezes the row set matching a pattern so a domain pool can
    enumerate disjoint contiguous ranges of it concurrently.  Built by
    the sequential coordinator ({!slice} may create an index); shards
    then call {!slice_iter} on their own ranges, which touches nothing
    mutable.  Rows appended after the slice was taken are not
    visited. *)

type slice

val slice : t -> Value.t option array -> slice
(** The rows matching [pattern] (every [Some v] position), in insertion
    order: the whole relation when the pattern is all-wildcards, an
    index bucket otherwise. *)

val slice_cols : t -> int -> Value.t array -> slice
(** Mask + key-buffer variant of {!slice} for compiled chains: the rows
    agreeing with [key] on every column of [mask]. *)

val slice_len : slice -> int

val slice_iter : slice -> int -> int -> (tuple -> unit) -> unit
(** [slice_iter sl lo hi f]: rows [lo, hi) of the slice, in order. *)

val fold : t -> init:'a -> f:('a -> tuple -> 'a) -> 'a
val to_list : t -> tuple list

val copy : t -> t
(** An independent snapshot: further [add]s to either side are invisible
    to the other.  O(1) — the row array and membership set are shared
    until one side next mutates (rows themselves are immutable
    values). *)
