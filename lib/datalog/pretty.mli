(** Pretty-printers for the surface syntax.  [Parser.parse_program] of a
    pretty-printed program reproduces the original AST (round-trip
    property, checked by the tests). *)

val pp_term : Format.formatter -> Ast.term -> unit
val pp_atom : Format.formatter -> Ast.atom -> unit
val pp_literal : Format.formatter -> Ast.literal -> unit
val pp_rule : Format.formatter -> Ast.rule -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val term_to_string : Ast.term -> string
val rule_to_string : Ast.rule -> string
val program_to_string : Ast.program -> string
