(** Binary serialization of databases for the durability layer.

    A snapshot is self-contained: interner ids are {e not} stable
    across process restarts, so every [Sym]/[Str] payload is written
    through a local string table embedded in the snapshot and
    re-interned on load.  Rows are written per relation in insertion
    order, so a round trip preserves arities, per-relation order and —
    therefore — the canonical [Database.pp] rendering byte-for-byte.

    The current stream format (version 2, magic ["GBC2"]) writes flat
    all-int relations as one raw cell blob — restoring a bulk-loaded
    database is a blit plus a membership rehash per relation instead of
    a value decode per field.  Version 1 streams (no magic) are still
    decoded; {!write_v1} produces them for back-compat tests.

    The codec checksums nothing: callers (lib/server/durable.ml) wrap
    the emitted bytes in their own magic/version/CRC envelope.
    Multiple snapshots can be concatenated; {!read} returns the offset
    just past the one it consumed. *)

exception Corrupt of string
(** Raised by {!read} on any malformation — truncation, impossible
    counts, unknown value tags, out-of-range local symbol ids.  Never
    raised after reading past the snapshot's own bytes. *)

val write : Buffer.t -> Database.t -> unit
(** Append the (version 2) snapshot encoding of a database. *)

val write_v1 : Buffer.t -> Database.t -> unit
(** Append the legacy unframed version 1 encoding — every relation as
    tagged value rows.  Decodes to the same database as {!write};
    exists so tests can cover the legacy path with current data. *)

val read : string -> int -> Database.t * int
(** [read s pos] decodes one snapshot starting at [pos], returning the
    database and the offset just past it.
    @raise Corrupt on malformed input. *)
