(** Ground values of the (reduced) Herbrand universe.

    Function symbols are restricted, as in the paper's next-Datalog
    programs, to those the programs themselves build — e.g. Huffman's
    tree constructor [t(X, Y)] — plus tuples used by [choice] goals.

    [Sym]/[Str] payloads are {!Interner} ids, not strings: build them
    with {!sym}/{!str} and read them back with {!resolve}.  Equality
    and hashing on symbols are therefore integer operations, while
    {!compare} still agrees with [String.compare] on the underlying
    text. *)

type t =
  | Int of int  (** integers: costs, grades, stage values *)
  | Sym of int  (** lowercase constants: [a], [nil], [engl] — interned *)
  | Str of int  (** quoted strings — interned *)
  | Tup of t list  (** tuples [(a, b)]; [Tup []] is the unit [()] *)
  | App of string * t list  (** compound terms such as [t(l1, l2)] *)

val sym : string -> t
(** The interned symbol for [s]: [sym s = sym s] physically on ids. *)

val str : string -> t
(** The interned quoted string for [s]. *)

val resolve : int -> string
(** The text behind a [Sym]/[Str] id; see {!Interner.resolve}. *)

val unit : t
val nil : t

val compare : t -> t -> int
(** Total order: [Int < Sym < Str < Tup < App], contents lexicographic
    ([Sym]/[Str] by their resolved strings, not by id).  [least]/[most]
    and deterministic tie-breaking rely on it. *)

val equal : t -> t -> bool
(** Structural equality; on symbols a single integer comparison. *)

val hash : t -> int
(** Deep structural hash (unlike [Hashtbl.hash], never truncates deep
    Huffman trees to a handful of meaningful nodes). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val as_int : t -> int
(** @raise Invalid_argument when the value is not an [Int]. *)

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
