open Ast

let delta_suffix = "$delta"

(* ------------------------------------------------------------------ *)
(* Extrema rules                                                       *)
(* ------------------------------------------------------------------ *)

type extremum = { minimize : bool; key : Ast.term; cost : Ast.term }

let extrema_of rule =
  List.filter_map
    (function
      | Least (c, ks) -> Some { minimize = true; key = Cmp ("", ks); cost = c }
      | Most (c, ks) -> Some { minimize = false; key = Cmp ("", ks); cost = c }
      | _ -> None)
    rule.body

let flat_body rule =
  List.filter (function Least _ | Most _ | Agg _ -> false | _ -> true) rule.body

let eval_extrema_rule ?(telemetry = Telemetry.none) ?(limits = Limits.unlimited) db rule =
  let extrema = extrema_of rule in
  let body = Eval.compile_body (flat_body rule) in
  let c_head = Eval.compile_terms body rule.head.args in
  let c_ext =
    Array.of_list
      (List.map (fun e -> (Eval.compile_term body e.key, Eval.compile_term body e.cost)) extrema)
  in
  let c_min = Array.of_list (List.map (fun e -> e.minimize) extrema) in
  let env = Eval.fresh_env body in
  (* Solution: head row + per-extremum (key, cost). *)
  let solutions = ref [] in
  Eval.run body db env (fun env ->
      Limits.poll limits;
      let head = Eval.eval_row env c_head in
      let kcs = Array.map (fun (k, c) -> (Eval.eval_cterm env k, Eval.eval_cterm env c)) c_ext in
      solutions := (head, kcs) :: !solutions);
  let solutions = List.rev !solutions in
  (* Optimum per key, per extremum. *)
  let bests = Array.map (fun _ -> Value.Tbl.create 16) c_ext in
  List.iter
    (fun (_, kcs) ->
      Array.iteri
        (fun i (k, c) ->
          let tbl = bests.(i) in
          match Value.Tbl.find_opt tbl k with
          | None -> Value.Tbl.replace tbl k c
          | Some best ->
            let better = if c_min.(i) then Value.compare c best < 0 else Value.compare c best > 0 in
            if better then Value.Tbl.replace tbl k c)
        kcs)
    solutions;
  let added = ref 0 in
  List.iter
    (fun (head, kcs) ->
      let optimal = ref true in
      Array.iteri
        (fun i (k, c) ->
          if Value.compare (Value.Tbl.find bests.(i) k) c <> 0 then optimal := false)
        kcs;
      if !optimal && Database.add_fact db rule.head.pred head then incr added)
    solutions;
  Telemetry.add_derived telemetry (Telemetry.rule_label rule) !added;
  Limits.tick_derived limits !added;
  !added > 0

(* ------------------------------------------------------------------ *)
(* Aggregate rules                                                     *)
(* ------------------------------------------------------------------ *)

(* One [count]/[sum] goal per rule: group the flat-body solutions by
   the (evaluated) keys, aggregate the distinct counted values of each
   group, bind the output variable and emit the heads. *)
let eval_agg_rule ?(telemetry = Telemetry.none) ?(limits = Limits.unlimited) db rule =
  let op, out, counted, keys =
    match List.filter_map (function Agg (o, v, c, k) -> Some (o, v, c, k) | _ -> None) rule.body with
    | [ x ] -> x
    | [] -> invalid_arg "Seminaive.eval_agg_rule: no aggregate goal"
    | _ -> invalid_arg ("Seminaive: at most one aggregate per rule: " ^ Pretty.rule_to_string rule)
  in
  if Ast.has_extrema rule then
    invalid_arg ("Seminaive: aggregate mixed with extremum: " ^ Pretty.rule_to_string rule);
  let key_term = Cmp ("", keys) in
  let body = Eval.compile_body (flat_body rule) in
  let c_key = Eval.compile_term body key_term in
  let c_counted = Eval.compile_term body counted in
  (* Head arguments: the output variable passes through ([None]),
     everything else must be determined by the group (evaluated per
     solution, first solution of the group wins — sound when head vars
     are key vars, which the programs we accept satisfy). *)
  let c_head =
    List.map
      (fun t ->
        match t with
        | Var v when String.equal v out -> None
        | t -> Some (Eval.compile_term body t))
      rule.head.args
  in
  let env = Eval.fresh_env body in
  let head_parts = Value.Tbl.create 16 in
  let groups = Value.Tbl.create 16 in
  Eval.run body db env (fun env ->
      Limits.poll limits;
      let key = Eval.eval_cterm env c_key in
      let v = Eval.eval_cterm env c_counted in
      (match Value.Tbl.find_opt groups key with
      | Some set -> set := Value.Set.add v !set
      | None -> Value.Tbl.add groups key (ref (Value.Set.singleton v)));
      if not (Value.Tbl.mem head_parts key) then begin
        let partial =
          List.map (Option.map (Eval.eval_cterm env)) c_head
        in
        Value.Tbl.add head_parts key partial
      end);
  let added = ref 0 in
  Value.Tbl.iter
    (fun key set ->
      let aggregate =
        match op with
        | Count -> Value.Int (Value.Set.cardinal !set)
        | Sum ->
          Value.Int
            (Value.Set.fold (fun v acc -> acc + Value.as_int v) !set 0)
      in
      let row =
        Array.of_list
          (List.map
             (function Some v -> v | None -> aggregate)
             (Value.Tbl.find head_parts key))
      in
      if Database.add_fact db rule.head.pred row then incr added)
    groups;
  Telemetry.add_derived telemetry (Telemetry.rule_label rule) !added;
  Limits.tick_derived limits !added;
  !added > 0

(* ------------------------------------------------------------------ *)
(* Rule checks                                                         *)
(* ------------------------------------------------------------------ *)

let check_clique_rule ~allow_clique_negation clique rule =
  List.iter
    (fun lit ->
      match lit with
      | Neg a when List.mem a.pred clique && not allow_clique_negation ->
        invalid_arg
          ("Seminaive: negation of clique predicate " ^ a.pred ^ " in "
          ^ Pretty.rule_to_string rule)
      | Choice _ | Next _ ->
        invalid_arg ("Seminaive: choice/next goal in " ^ Pretty.rule_to_string rule)
      | _ -> ())
    rule.body;
  if (Ast.has_extrema rule || Ast.has_agg rule) && not allow_clique_negation then
    List.iter
      (fun p ->
        if List.mem p clique then
          invalid_arg
            ("Seminaive: extremum or aggregate over recursive predicate in "
            ^ Pretty.rule_to_string rule))
      (body_preds rule)

(* ------------------------------------------------------------------ *)
(* Incremental semi-naive saturation                                   *)
(* ------------------------------------------------------------------ *)

type variant = {
  v_label : string;
  v_head : Ast.atom;
  v_body : Eval.body;
  v_chead : Eval.cterm array;  (* head arguments against [v_body] *)
  (* Per-shard scratch for the data-parallel fire path: one cloned body
     (private probe buffers) and one private environment per shard,
     grown lazily and reused across steps. *)
  mutable v_scratch : (Eval.body * Eval.env) array;
  (* Compiled execution: the closure chain for [v_body] plus the head
     row evaluators over its unboxed environment ([None] when running
     interpreted).  Shards get chain clones, grown like [v_scratch]. *)
  v_chain : Compile.t option;
  v_cprogs : Compile.value_prog array;
  mutable v_cscratch : Compile.t array;
}

(* Delta variants of a rule: one per positive occurrence of a tracked
   predicate, reading that occurrence from [pred$delta]. *)
let variants_of_rule ?(compiled = false) tracked (rule : Ast.rule) =
  let occurrences =
    List.filter (function Pos a -> List.mem a.pred tracked | _ -> false) rule.body
  in
  let make i =
    let occurrence = ref (-1) in
    let delta = ref None in
    let rest =
      List.filter_map
        (fun lit ->
          match lit with
          | Pos a when List.mem a.pred tracked ->
            incr occurrence;
            if !occurrence = i then begin
              delta := Some (Pos { a with pred = a.pred ^ delta_suffix });
              None
            end
            else Some lit
          | lit -> Some lit)
        rule.body
    in
    (* The delta occurrence goes first: it is the smallest relation, so
       the join planner makes it the outer loop and a variant whose
       delta is empty costs O(1). *)
    let body = match !delta with Some d -> d :: rest | None -> assert false in
    let v_body = Eval.compile_body body in
    let v_chead = Eval.compile_terms v_body rule.head.args in
    let v_chain = if compiled then Some (Compile.of_body v_body) else None in
    let v_cprogs =
      match v_chain with Some c -> Compile.compile_row c v_chead | None -> [||]
    in
    { v_label = Telemetry.rule_label rule; v_head = rule.head; v_body; v_chead;
      v_scratch = [||]; v_chain; v_cprogs; v_cscratch = [||] }
  in
  List.init (List.length occurrences) make

type incremental = {
  db : Database.t;
  tracked : string list;
  variants : variant list;
  extrema_rules : Ast.rule list;
  watermarks : (string, int) Hashtbl.t;
  tele : Telemetry.t;
  limits : Limits.t;
  pool : Par.t;
  clique_label : string;
}

let make ?(allow_clique_negation = false) ?(telemetry = Telemetry.none)
    ?(limits = Limits.unlimited) ?(pool = Par.sequential) ?(marks = fun _ -> 0)
    ?(compiled = false) db ~clique program =
  let rules =
    List.filter (fun r -> (not (Ast.is_fact r)) && List.mem (head_pred r) clique) program
  in
  List.iter (check_clique_rule ~allow_clique_negation clique) rules;
  (* Head relations must exist even when no rule ever fires. *)
  List.iter
    (fun (r : Ast.rule) ->
      ignore (Database.relation db r.head.pred (List.length r.head.args)))
    rules;
  let agg_rules, rest = List.partition Ast.has_agg rules in
  let extrema_rules, plain = List.partition Ast.has_extrema rest in
  (* Aggregate rules are evaluated by the same group-then-emit schedule
     as extrema rules. *)
  let extrema_rules = extrema_rules @ agg_rules in
  (* Track every positive body predicate: the first step then seeds
     from the full relations, later steps only from what is new —
     including facts added externally between steps. *)
  let tracked =
    List.sort_uniq String.compare
      (clique
      @ List.concat_map
          (fun r -> List.map (fun a -> a.pred) (positive_body_atoms r))
          (plain @ extrema_rules))
  in
  let variants = List.concat_map (variants_of_rule ~compiled tracked) plain in
  (* Initial watermark per tracked predicate: 0 replays the whole
     relation on the first step (the seed evaluation); a caller doing
     incremental view maintenance passes [marks] pointing at the rows
     its materialized output already accounts for, so the first step
     publishes only what appeared since (clamped — a relation can have
     shrunk through retraction since the mark was taken). *)
  let watermarks = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let m = max 0 (marks p) in
      let m =
        match Database.find db p with
        | None -> 0
        | Some rel -> min m (Relation.cardinal rel)
      in
      Hashtbl.replace watermarks p m)
    tracked;
  { db; tracked; variants; extrema_rules; watermarks; tele = telemetry; limits;
    pool; clique_label = String.concat "," clique }

let publish_deltas t =
  List.fold_left
    (fun any p ->
      match Database.find t.db p with
      | None -> any
      | Some rel ->
        let from = Hashtbl.find t.watermarks p in
        let count = Relation.cardinal rel in
        Hashtbl.replace t.watermarks p count;
        if count = from then begin
          (* Empty delta: drop the previous step's relation instead of
             materializing a fresh empty one — scans of an absent
             relation enumerate nothing, exactly like an empty one, and
             most predicates go quiet well before the fixpoint. *)
          Database.remove_relation t.db (p ^ delta_suffix);
          any
        end
        else begin
          let delta = Relation.create (p ^ delta_suffix) (Relation.arity rel) in
          (* bulk copy: rows of one relation are already distinct, and a
             flat source becomes a flat delta via one cell blit *)
          Relation.append_from delta rel from;
          Database.set_relation t.db (p ^ delta_suffix) delta;
          Telemetry.add_delta t.tele p (count - from);
          true
        end)
    false t.tracked

(* Minimum delta rows before a fire is worth fanning out to the pool.
   Kept small so that modest workloads still exercise the parallel
   machinery when [--jobs] asks for it. *)
let par_threshold = 4

let scratch_for variant shards =
  if Array.length variant.v_scratch < shards then begin
    let old = variant.v_scratch in
    variant.v_scratch <-
      Array.init shards (fun i ->
          if i < Array.length old then old.(i)
          else
            let b = Eval.clone_body variant.v_body in
            (b, Eval.fresh_env b))
  end;
  variant.v_scratch

(* Data-parallel evaluation of one delta variant: the first scan (the
   delta occurrence) is sliced into contiguous ranges, each evaluated
   by a shard into a private prepend-built list.  The sequential path
   inserts in reverse enumeration order (prepend then fold), so the
   merge walks shards from last to first, each list front-to-back —
   the database insertion order is byte-identical to sequential. *)
let fire_parallel tele limits db pool variant slice =
  let n = Relation.slice_len slice in
  let shards = Par.nshards pool n in
  Eval.prepare_indexes variant.v_body db;
  let scratch = scratch_for variant shards in
  let accs = Array.make shards [] in
  Par.run pool ~shards (fun s ->
      let body, env = scratch.(s) in
      Array.fill env 0 (Array.length env) None;
      let lo, hi = Par.bounds ~shards n s in
      let acc = ref [] in
      Eval.run_slice body db env slice lo hi (fun env ->
          Limits.poll limits;
          acc := Eval.eval_row env variant.v_chead :: !acc);
      accs.(s) <- !acc);
  let added = ref 0 in
  Telemetry.span tele "par:merge" (fun () ->
      for s = shards - 1 downto 0 do
        List.iter
          (fun row -> if Database.add_fact db variant.v_head.pred row then incr added)
          accs.(s)
      done);
  Telemetry.add_par tele ~shards ~rows:n;
  Telemetry.add_derived tele variant.v_label !added;
  Limits.tick_derived limits !added;
  !added > 0

let cscratch_for variant chain shards =
  if Array.length variant.v_cscratch < shards then begin
    let old = variant.v_cscratch in
    variant.v_cscratch <-
      Array.init shards (fun i ->
          if i < Array.length old then old.(i) else Compile.clone chain)
  end;
  variant.v_cscratch

(* Compiled fire: same slice threshold, same shard bounds, same
   last-to-first merge as the interpreted paths — only the per-tuple
   machinery differs. *)
let fire_compiled tele limits db pool variant chain =
  let parallel_slice =
    if Par.size pool > 1 && Compile.shardable chain then
      match Compile.shard_scan chain db with
      | Some slice when Relation.slice_len slice >= par_threshold -> Some slice
      | _ -> None
    else None
  in
  match parallel_slice with
  | Some slice ->
    let n = Relation.slice_len slice in
    let shards = Par.nshards pool n in
    Compile.prepare_indexes chain db;
    let scratch = cscratch_for variant chain shards in
    let accs = Array.make shards [] in
    Par.run pool ~shards (fun s ->
        let ch = scratch.(s) in
        let cenv = Compile.env ch in
        let lo, hi = Par.bounds ~shards n s in
        let acc = ref [] in
        Compile.run_slice ch db slice lo hi (fun () ->
            Limits.poll limits;
            acc := Compile.eval_row cenv variant.v_cprogs :: !acc);
        accs.(s) <- !acc);
    let added = ref 0 in
    Telemetry.span tele "par:merge" (fun () ->
        for s = shards - 1 downto 0 do
          List.iter
            (fun row -> if Database.add_fact db variant.v_head.pred row then incr added)
            accs.(s)
        done);
    Telemetry.add_par tele ~shards ~rows:n;
    Telemetry.add_derived tele variant.v_label !added;
    Limits.tick_derived limits !added;
    !added > 0
  | None ->
    let cenv = Compile.env chain in
    let additions = ref [] in
    Compile.run chain db (fun () ->
        Limits.poll limits;
        additions := Compile.eval_row cenv variant.v_cprogs :: !additions);
    let added =
      List.fold_left
        (fun n row -> if Database.add_fact db variant.v_head.pred row then n + 1 else n)
        0 !additions
    in
    Telemetry.add_derived tele variant.v_label added;
    Limits.tick_derived limits added;
    added > 0

let fire ?(pool = Par.sequential) tele limits db variant =
  match variant.v_chain with
  | Some chain -> fire_compiled tele limits db pool variant chain
  | None -> (
    let parallel_slice =
      if Par.size pool > 1 && Eval.shardable variant.v_body then
        match Eval.shard_scan variant.v_body db (Eval.fresh_env variant.v_body) with
        | Some slice when Relation.slice_len slice >= par_threshold -> Some slice
        | _ -> None
      else None
    in
    match parallel_slice with
    | Some slice -> fire_parallel tele limits db pool variant slice
    | None ->
      let env = Eval.fresh_env variant.v_body in
      let additions = ref [] in
      Eval.run variant.v_body db env (fun env ->
          Limits.poll limits;
          additions := Eval.eval_row env variant.v_chead :: !additions);
      let added =
        List.fold_left
          (fun n row -> if Database.add_fact db variant.v_head.pred row then n + 1 else n)
          0 !additions
      in
      Telemetry.add_derived tele variant.v_label added;
      Limits.tick_derived limits added;
      added > 0)

let step t =
  (* The delta relations are scratch state: drop them even when a
     governor aborts the loop, so a Partial database never leaks
     [pred$delta] relations. *)
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> Database.remove_relation t.db (p ^ delta_suffix)) t.tracked)
    (fun () ->
      let progressed = ref (publish_deltas t) in
      while !progressed do
        Limits.tick_step t.limits;
        Telemetry.iteration t.tele t.clique_label;
        List.iter (fun v -> ignore (fire ~pool:t.pool t.tele t.limits t.db v)) t.variants;
        List.iter
          (fun r ->
            ignore
              (if Ast.has_agg r then eval_agg_rule ~telemetry:t.tele ~limits:t.limits t.db r
               else eval_extrema_rule ~telemetry:t.tele ~limits:t.limits t.db r))
          t.extrema_rules;
        progressed := publish_deltas t
      done)

let eval_clique ?allow_clique_negation ?telemetry ?limits ?pool ?compiled db ~clique program =
  step (make ?allow_clique_negation ?telemetry ?limits ?pool ?compiled db ~clique program)
