type binop = Add | Sub | Mul | Max | Min

type term =
  | Var of string
  | Cst of Value.t
  | Cmp of string * term list
  | Binop of binop * term * term

type cmp_op = Lt | Le | Gt | Ge | Eq | Ne
type agg_op = Count | Sum

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Rel of cmp_op * term * term
  | Choice of term list * term list
  | Least of term * term list
  | Most of term * term list
  | Agg of agg_op * string * term * term list
  | Next of string

type rule = { head : atom; body : literal list }
type program = rule list

let atom pred args = { pred; args }
let rule head body = { head; body }

let var v = Var v
let int n = Cst (Value.Int n)
let sym s = Cst (Value.sym s)

let rec term_is_ground = function
  | Var _ -> false
  | Cst _ -> true
  | Cmp (_, args) -> List.for_all term_is_ground args
  | Binop (_, a, b) -> term_is_ground a && term_is_ground b

let rec term_to_value = function
  | Cst v -> v
  | Cmp ("", args) -> Value.Tup (List.map term_to_value args)
  | Cmp (f, args) -> Value.App (f, List.map term_to_value args)
  | Var v -> invalid_arg ("Ast.term_to_value: unbound variable " ^ v)
  | Binop (op, a, b) -> (
    (* Ground arithmetic in fact heads, e.g. [p(0 - 5).]. *)
    match op, term_to_value a, term_to_value b with
    | Add, Value.Int x, Value.Int y -> Value.Int (x + y)
    | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
    | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
    | Max, x, y -> if Value.compare x y >= 0 then x else y
    | Min, x, y -> if Value.compare x y <= 0 then x else y
    | (Add | Sub | Mul), _, _ ->
      invalid_arg "Ast.term_to_value: arithmetic on non-integers")

let rec value_to_term v =
  match v with
  | Value.Int _ | Value.Sym _ | Value.Str _ -> Cst v
  | Value.Tup xs -> Cmp ("", List.map value_to_term xs)
  | Value.App (f, xs) -> Cmp (f, List.map value_to_term xs)

let fact pred values = { head = atom pred (List.map value_to_term values); body = [] }

let is_fact r = r.body = [] && List.for_all term_is_ground r.head.args

let add_var acc v = if v = "_" || List.mem v acc then acc else v :: acc

let rec term_vars_acc acc = function
  | Var v -> add_var acc v
  | Cst _ -> acc
  | Cmp (_, args) -> List.fold_left term_vars_acc acc args
  | Binop (_, a, b) -> term_vars_acc (term_vars_acc acc a) b

let term_vars t = List.rev (term_vars_acc [] t)
let atom_vars_acc acc a = List.fold_left term_vars_acc acc a.args
let atom_vars a = List.rev (atom_vars_acc [] a)

let literal_vars_acc acc = function
  | Pos a | Neg a -> atom_vars_acc acc a
  | Rel (_, t1, t2) -> term_vars_acc (term_vars_acc acc t1) t2
  | Choice (l, r) -> List.fold_left term_vars_acc (List.fold_left term_vars_acc acc l) r
  | Least (c, ks) | Most (c, ks) -> List.fold_left term_vars_acc (term_vars_acc acc c) ks
  | Agg (_, out, counted, ks) ->
    List.fold_left term_vars_acc (term_vars_acc (add_var acc out) counted) ks
  | Next v -> add_var acc v

let literal_vars l = List.rev (literal_vars_acc [] l)

let rule_vars r =
  List.rev (List.fold_left literal_vars_acc (atom_vars_acc [] r.head) r.body)

let positive_body_atoms r =
  List.filter_map (function Pos a -> Some a | _ -> None) r.body

let negative_body_atoms r =
  List.filter_map (function Neg a -> Some a | _ -> None) r.body

let body_preds r =
  List.filter_map (function Pos a | Neg a -> Some a.pred | _ -> None) r.body

let head_pred r = r.head.pred
let has_next r = List.exists (function Next _ -> true | _ -> false) r.body
let has_choice r = List.exists (function Choice _ -> true | _ -> false) r.body

let has_extrema r =
  List.exists (function Least _ | Most _ -> true | _ -> false) r.body

let has_agg r = List.exists (function Agg _ -> true | _ -> false) r.body

let rec rename_term f = function
  | Var v -> Var (f v)
  | Cst _ as t -> t
  | Cmp (name, args) -> Cmp (name, List.map (rename_term f) args)
  | Binop (op, a, b) -> Binop (op, rename_term f a, rename_term f b)

let rename_atom f a = { a with args = List.map (rename_term f) a.args }

let rename_literal f = function
  | Pos a -> Pos (rename_atom f a)
  | Neg a -> Neg (rename_atom f a)
  | Rel (op, a, b) -> Rel (op, rename_term f a, rename_term f b)
  | Choice (l, r) -> Choice (List.map (rename_term f) l, List.map (rename_term f) r)
  | Least (c, ks) -> Least (rename_term f c, List.map (rename_term f) ks)
  | Most (c, ks) -> Most (rename_term f c, List.map (rename_term f) ks)
  | Agg (op, out, counted, ks) ->
    Agg (op, f out, rename_term f counted, List.map (rename_term f) ks)
  | Next v -> Next (f v)

let rename_rule f r =
  { head = rename_atom f r.head; body = List.map (rename_literal f) r.body }

let choice_fds r =
  List.filter_map (function Choice (l, rhs) -> Some (l, rhs) | _ -> None) r.body

(* Atomic: rewrite/compile phases on distinct server domains draw
   fresh variables concurrently (names are rule-local, but two calls
   must never return the same name to one caller's rule). *)
let fresh_counter = Atomic.make 0

let fresh_var () = Printf.sprintf "_G%d" (1 + Atomic.fetch_and_add fresh_counter 1)
