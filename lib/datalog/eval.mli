(** Compilation and evaluation of flat rule bodies.

    A {e flat body} is a list of [Pos]/[Neg]/[Rel] literals — the
    engines strip [choice]/[least]/[most]/[next] goals and handle them
    separately.  Compilation assigns every variable an integer slot,
    greedily orders the literals so that each is evaluated only when its
    inputs are bound, and turns comparisons that constrain otherwise-
    unbound variables of a negated atom into {e guards} scoped inside
    that negation.  The guard treatment implements the paper's notation
    [¬subtree(X, L1), L1 < I], where [L1] is existentially quantified
    under the negation (cf. Example 6 and footnote 2).

    Evaluation enumerates all satisfying assignments by backtracking
    joins over {!Relation.iter_matching}, in relation insertion order —
    engines rely on that order for deterministic tie-breaking. *)

type env = Value.t option array

(** {2 Internal representation}

    Exposed concretely so {!Compile} can turn an already-planned body
    into a chain of specialized closures without re-deriving the join
    order — the compiled engine's byte-identity guarantee rests on
    executing exactly these steps in exactly this order.  Everything
    here is produced by {!compile_body}; treat it as read-only. *)

(** Slot-resolved terms.  [PAny] only arises from {!compile_term} on a
    wildcard — the body compiler gives every [_] its own fresh slot. *)
type pterm =
  | PVar of int
  | PCst of Value.t
  | PCmp of string * pterm array
  | PBinop of Ast.binop * pterm * pterm
  | PAny

type cterm = pterm

type guard = Ast.cmp_op * pterm * pterm

(** A compiled scan of one atom; see [eval.ml] for the invariants of
    the scratch pattern, kernel writes and static probe mask. *)
type scan = {
  sc_pred : string;
  sc_arity : int;
  sc_args : pterm array;
  sc_pattern : Value.t option array;
  sc_fill : (int * pterm) array;
  sc_writes : (int * int) array;
  sc_reads : int array;
  sc_fast : bool;
  sc_mask : int;
}

type step =
  | SScan of scan
  | SNeg of scan * guard list
  | STest of Ast.cmp_op * pterm * pterm
  | SUnify of pterm * pterm

type body = {
  steps : step array;
  slots : (string, int) Hashtbl.t;
  nvars : int;
}

exception Unsafe of string
(** Raised at compile time when the body cannot be ordered safely
    (e.g. a comparison or negation over variables never bound by a
    positive literal). *)

val apply_binop : Ast.binop -> Value.t -> Value.t -> Value.t
(** Integer arithmetic plus [max]/[min].  @raise Unsafe on arithmetic
    over non-integers and on native-int overflow ([Add]/[Sub]/[Mul]
    never wrap silently — the message names the offending operation). *)

val compile_body : ?extra_bound:string list -> Ast.literal list -> body
(** [extra_bound] names variables the engine binds before {!run}
    (typically the stage variable of a [next] rule). *)

val nvars : body -> int
val slot : body -> string -> int
(** Slot of a variable. @raise Not_found if the body never saw it. *)

val fresh_env : body -> env

val run : body -> Database.t -> env -> (env -> unit) -> unit
(** [run body db env k] calls [k] once per satisfying assignment.  The
    environment is mutated in place and restored between solutions;
    [k] must not retain it (copy what it needs). *)

val eval_term : body -> env -> Ast.term -> Value.t
(** Evaluate a term (head argument, cost, key, ...) under [env].
    @raise Unsafe when a variable is unbound. *)

val eval_terms : body -> env -> Ast.term list -> Value.t list

(** {2 Precompiled terms}

    [eval_term] re-resolves its AST argument against the slot table on
    every call.  Hot paths (the greedy engines evaluate heads, costs,
    keys and FD projections once per candidate row) should instead
    resolve once with {!compile_term} and evaluate the compiled form. *)

val compile_term : body -> Ast.term -> cterm
(** Resolve a term's variables to slots once.  Wildcards ([_]) compile
    to a match-anything pattern (they evaluate as unbound).
    @raise Unsafe when a named variable does not occur in the body. *)

val compile_terms : body -> Ast.term list -> cterm array

val eval_cterm : env -> cterm -> Value.t
(** @raise Unsafe when a variable is unbound. *)

val eval_row : env -> cterm array -> Value.t array

val bind_row : env -> cterm array -> Value.t array -> bool
(** [bind_row env cts row] matches compiled argument terms against a
    ground row, binding unbound variable slots of [env] in place.  On
    [false], [env] may be partially written: the caller owns the
    environment and must reset (or discard) it between rows. *)

val solutions :
  body -> Database.t -> ?bindings:(string * Value.t) list -> Ast.term list -> Value.t list list
(** [solutions body db ~bindings outs] runs the body with the given
    initial variable bindings and returns the evaluation of [outs] for
    every solution, in enumeration order. *)

(** {2 Sharded read-only execution}

    The data-parallel saturation path ({!Par}) splits the first scan of
    a body into contiguous row ranges evaluated by independent domains.
    Shards must touch nothing shared and mutable: each owns a
    {!clone_body} (private probe buffers; slots and compiled terms
    shared, so cterms compiled against the original still evaluate
    under the clone's environments) and runs {!run_slice}, whose scans
    are read-only — no lazy index builds, private probe keys.  The
    sequential coordinator calls {!prepare_indexes} first so the
    read-only probes hit prebuilt indexes. *)

val shardable : body -> bool
(** The body starts with a positive scan — its enumeration can be
    sharded.  (Bodies starting with a filter fall back to sequential
    evaluation.) *)

val clone_body : body -> body
(** A structural copy with private scan-pattern buffers, safe to
    execute concurrently with other clones of the same body. *)

val prepare_indexes : body -> Database.t -> unit
(** Build (sequentially) every index the body's scans will probe,
    using the compile-time static bound-column masks.  Call before
    entering a parallel region. *)

val shard_scan : body -> Database.t -> env -> Relation.slice option
(** Fill the first scan's probe pattern from [env] and return the
    slice of matching rows ([None] when the relation does not exist).
    Sequential: may build the probed index.
    @raise Invalid_argument when the body does not start with a scan. *)

val run_slice :
  body -> Database.t -> env -> Relation.slice -> int -> int -> (env -> unit) -> unit
(** [run_slice body db env slice lo hi k]: like {!run}, but the first
    scan's rows are drawn from [slice.(lo..hi-1)] and all execution is
    read-only.  [body] and [env] must be private to the calling shard,
    with any extra-bound variables already set in [env]. *)
