(** Compilation and evaluation of flat rule bodies.

    A {e flat body} is a list of [Pos]/[Neg]/[Rel] literals — the
    engines strip [choice]/[least]/[most]/[next] goals and handle them
    separately.  Compilation assigns every variable an integer slot,
    greedily orders the literals so that each is evaluated only when its
    inputs are bound, and turns comparisons that constrain otherwise-
    unbound variables of a negated atom into {e guards} scoped inside
    that negation.  The guard treatment implements the paper's notation
    [¬subtree(X, L1), L1 < I], where [L1] is existentially quantified
    under the negation (cf. Example 6 and footnote 2).

    Evaluation enumerates all satisfying assignments by backtracking
    joins over {!Relation.iter_matching}, in relation insertion order —
    engines rely on that order for deterministic tie-breaking. *)

type env = Value.t option array

type body

exception Unsafe of string
(** Raised at compile time when the body cannot be ordered safely
    (e.g. a comparison or negation over variables never bound by a
    positive literal). *)

val apply_binop : Ast.binop -> Value.t -> Value.t -> Value.t
(** Integer arithmetic plus [max]/[min].  @raise Unsafe on arithmetic
    over non-integers and on native-int overflow ([Add]/[Sub]/[Mul]
    never wrap silently — the message names the offending operation). *)

val compile_body : ?extra_bound:string list -> Ast.literal list -> body
(** [extra_bound] names variables the engine binds before {!run}
    (typically the stage variable of a [next] rule). *)

val nvars : body -> int
val slot : body -> string -> int
(** Slot of a variable. @raise Not_found if the body never saw it. *)

val fresh_env : body -> env

val run : body -> Database.t -> env -> (env -> unit) -> unit
(** [run body db env k] calls [k] once per satisfying assignment.  The
    environment is mutated in place and restored between solutions;
    [k] must not retain it (copy what it needs). *)

val eval_term : body -> env -> Ast.term -> Value.t
(** Evaluate a term (head argument, cost, key, ...) under [env].
    @raise Unsafe when a variable is unbound. *)

val eval_terms : body -> env -> Ast.term list -> Value.t list

(** {2 Precompiled terms}

    [eval_term] re-resolves its AST argument against the slot table on
    every call.  Hot paths (the greedy engines evaluate heads, costs,
    keys and FD projections once per candidate row) should instead
    resolve once with {!compile_term} and evaluate the compiled form. *)

type cterm

val compile_term : body -> Ast.term -> cterm
(** Resolve a term's variables to slots once.  Wildcards ([_]) compile
    to a match-anything pattern (they evaluate as unbound).
    @raise Unsafe when a named variable does not occur in the body. *)

val compile_terms : body -> Ast.term list -> cterm array

val eval_cterm : env -> cterm -> Value.t
(** @raise Unsafe when a variable is unbound. *)

val eval_row : env -> cterm array -> Value.t array

val bind_row : env -> cterm array -> Value.t array -> bool
(** [bind_row env cts row] matches compiled argument terms against a
    ground row, binding unbound variable slots of [env] in place.  On
    [false], [env] may be partially written: the caller owns the
    environment and must reset (or discard) it between rows. *)

val solutions :
  body -> Database.t -> ?bindings:(string * Value.t) list -> Ast.term list -> Value.t list list
(** [solutions body db ~bindings outs] runs the body with the given
    initial variable bindings and returns the evaluation of [outs] for
    every solution, in enumeration order. *)
