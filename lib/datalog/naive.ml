let model_alias = "$model$"

let check_plain rules =
  List.iter
    (fun r ->
      List.iter
        (fun lit ->
          match lit with
          | Ast.Pos _ | Ast.Neg _ | Ast.Rel _ -> ()
          | Ast.Choice _ | Ast.Least _ | Ast.Most _ | Ast.Agg _ | Ast.Next _ ->
            invalid_arg
              ("Naive: rule contains a meta-level goal; expand it first: "
              ^ Pretty.rule_to_string r))
        r.Ast.body)
    rules

type compiled_rule = { rule : Ast.rule; body : Eval.body }

let compile_rules rules =
  List.map (fun r -> { rule = r; body = Eval.compile_body r.Ast.body }) rules

let head_row cr env =
  Array.of_list (Eval.eval_terms cr.body env cr.rule.Ast.head.Ast.args)

(* One naive round: fire every rule once against the current database.
   Returns whether any new fact was derived. *)
let round ?(limits = Limits.unlimited) db compiled =
  List.fold_left
    (fun changed cr ->
      let additions = ref [] in
      let env = Eval.fresh_env cr.body in
      Eval.run cr.body db env (fun env ->
          Limits.poll limits;
          additions := head_row cr env :: !additions);
      let added =
        List.fold_left
          (fun n row -> if Database.add_fact db cr.rule.Ast.head.Ast.pred row then n + 1 else n)
          0 !additions
      in
      Limits.tick_derived limits added;
      added > 0 || changed)
    false compiled

let saturate ?(limits = Limits.unlimited) db program =
  let facts, rules = List.partition Ast.is_fact program in
  check_plain rules;
  Limits.check_now limits;
  Database.load_facts db facts;
  let compiled = compile_rules rules in
  while
    Limits.tick_step limits;
    round ~limits db compiled
  do
    ()
  done

(* Rename negated occurrences so they read from the fixed model. *)
let redirect_negations rule =
  let body =
    List.map
      (fun lit ->
        match lit with
        | Ast.Neg a -> Ast.Neg { a with Ast.pred = model_alias ^ a.Ast.pred }
        | lit -> lit)
      rule.Ast.body
  in
  { rule with Ast.body }

let least_model_under ?(limits = Limits.unlimited) ~model ~edb program =
  let facts, rules = List.partition Ast.is_fact program in
  check_plain rules;
  Limits.check_now limits;
  let db = Database.copy edb in
  Database.load_facts db facts;
  (* Alias every negated predicate to the model's relation (an empty
     one when the model never saw the predicate). *)
  List.iter
    (fun r ->
      List.iter
        (fun a ->
          let pred = a.Ast.pred in
          let rel =
            match Database.find model pred with
            | Some rel -> rel
            | None -> Relation.create pred (List.length a.Ast.args)
          in
          Database.set_relation db (model_alias ^ pred) rel)
        (Ast.negative_body_atoms r))
    rules;
  let compiled = compile_rules (List.map redirect_negations rules) in
  while
    Limits.tick_step limits;
    round ~limits db compiled
  do
    ()
  done;
  (* Drop the alias relations from the result view. *)
  let out = Database.create () in
  List.iter
    (fun pred ->
      if
        String.length pred < String.length model_alias
        || String.sub pred 0 (String.length model_alias) <> model_alias
      then
        match Database.find db pred with
        | Some rel -> Database.set_relation out pred rel
        | None -> ())
    (Database.preds db);
  out
