type t =
  | Int of int
  | Sym of int
  | Str of int
  | Tup of t list
  | App of string * t list

let sym s = Sym (Interner.intern s)
let str s = Str (Interner.intern s)
let resolve = Interner.resolve

let unit = Tup []
let nil = sym "nil"

let tag = function Int _ -> 0 | Sym _ -> 1 | Str _ -> 2 | Tup _ -> 3 | App _ -> 4

let rec compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Sym x, Sym y | Str x, Str y -> Interner.compare_ids x y
  | Tup xs, Tup ys -> compare_list xs ys
  | App (f, xs), App (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else compare_list xs ys
  | _ -> Stdlib.compare (tag a) (tag b)

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs' ys'

let rec equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Sym x, Sym y | Str x, Str y -> x = y
  | Tup xs, Tup ys -> equal_list xs ys
  | App (f, xs), App (g, ys) -> String.equal f g && equal_list xs ys
  | _ -> false

and equal_list xs ys =
  match xs, ys with
  | [], [] -> true
  | x :: xs', y :: ys' -> equal x y && equal_list xs' ys'
  | _ -> false

let combine h x = (h * 1000003) lxor x

let rec hash = function
  | Int x -> combine 3 (Hashtbl.hash x)
  | Sym id -> combine 5 id
  | Str id -> combine 7 id
  | Tup xs -> List.fold_left (fun h x -> combine h (hash x)) 11 xs
  | App (f, xs) -> List.fold_left (fun h x -> combine h (hash x)) (combine 13 (Hashtbl.hash f)) xs

let rec pp fmt = function
  | Int x -> Format.pp_print_int fmt x
  | Sym id -> Format.pp_print_string fmt (Interner.resolve id)
  | Str id -> Format.fprintf fmt "%S" (Interner.resolve id)
  | Tup xs -> Format.fprintf fmt "(%a)" pp_args xs
  | App (f, xs) -> Format.fprintf fmt "%s(%a)" f pp_args xs

and pp_args fmt xs =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp fmt xs

let to_string v = Format.asprintf "%a" pp v

let as_int = function
  | Int x -> x
  | v -> invalid_arg (Printf.sprintf "Value.as_int: %s" (to_string v))

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Stdlib.Set.Make (Key)
module Map = Stdlib.Map.Make (Key)
