(** Incremental view maintenance over a materialized model.

    After an engine run completes, the database holds the fixpoint of
    the program over its fact base.  {!create} captures that pairing;
    {!apply} then repairs the model in place for a batch of EDB
    assertions and retractions instead of re-running the fixpoint:

    - insertions ride the semi-naive delta machinery
      ({!Seminaive.make}[ ~marks]), so the work is proportional to the
      new facts and their consequences;
    - deletions in non-recursive monotone strata use counting (a
      support count per derived fact, decremented by the lost
      derivations); recursive strata use DRed — over-delete everything
      reachable from the retracted rows, then restore what is still
      EDB-backed or re-derivable;
    - strata with negation, extrema or aggregates are recomputed from
      their updated inputs with the same {!Seminaive.eval_clique} the
      engines use, and the diff keeps propagating;
    - a change that can reach a [choice]/[next] stratum is refused
      ({!outcome}[ = Fallback]) {e before} the model is touched:
      nondeterministic strata are never "repaired" into a model no
      engine run could have produced.  The caller discards the
      materialization and re-runs the engine; the fallback is counted
      in {!stats}.

    After [Maintained], the model is fact-for-fact identical to a
    from-scratch engine run over the updated fact base — the canonical
    sorted rendering ({!Database.pp}) is byte-identical.  Per-relation
    insertion order may differ (e.g. a DRed-restored row re-enters at
    the end of its relation). *)

type t

type outcome =
  | Maintained  (** the model now reflects the updated fact base *)
  | Fallback of string
      (** refused; the model was not touched (pre-checked) — discard
          this value and re-run the engine.  The exception paths
          ([Limits.Exhausted], [Invalid_argument], [Eval.Unsafe]) can
          leave the model partially repaired: discard on those too. *)

type stats = {
  mutable applies : int;  (** maintained applies *)
  mutable fallbacks : int;  (** applies refused (choice reachable) *)
  mutable rows_inserted : int;  (** net rows added to the model *)
  mutable rows_deleted : int;  (** net rows removed from the model *)
  mutable strata_stepped : int;  (** delta-maintained stratum visits *)
  mutable strata_recomputed : int;  (** non-monotone recomputations *)
  mutable dred_overdeleted : int;
  mutable dred_rederived : int;
}

val create : Ast.program -> edb:Database.t -> model:Database.t -> t
(** [create program ~edb ~model] materializes: [model] must be the
    complete fixpoint of [program]'s rules over the fact base [edb]
    (facts in [program] are ignored — they are already part of [edb]).
    [edb] is copied; [model] is owned by the returned value and
    mutated by {!apply} — callers keep reading it through {!model}. *)

val model : t -> Database.t
val stats : t -> stats

val apply :
  ?telemetry:Telemetry.t ->
  ?limits:Limits.t ->
  ?pool:Par.t ->
  t ->
  inserts:(string * Value.t array) list ->
  deletes:(string * Value.t array) list ->
  outcome
(** Repair the model for a batch of net EDB changes.  [inserts] rows
    must be absent from the fact base and [deletes] rows present in it
    (the session layer nets out its multiset before calling);
    duplicates within a batch are tolerated, a row appearing in both
    lists is not.
    @raise Limits.Exhausted when the governor trips mid-repair — the
    model is partially repaired; discard the materialization. *)
