open Ast

type rewritten = { program : Ast.program; query_pred : string }

let ( let* ) = Result.bind

let adorned_name pred adornment = Printf.sprintf "%s$%s" pred adornment
let magic_name pred adornment = Printf.sprintf "magic$%s$%s" pred adornment

let check_positive program =
  let bad =
    List.find_opt
      (fun r ->
        List.exists
          (function
            | Pos _ | Rel _ -> false
            | Neg _ | Choice _ | Least _ | Most _ | Agg _ | Next _ -> true)
          r.body)
      program
  in
  match bad with
  | Some r -> Error ("Magic.rewrite: non-positive rule: " ^ Pretty.rule_to_string r)
  | None -> Ok ()

module SSet = Set.Make (String)

(* Adornment of an atom given the currently bound variables: 'b' for an
   argument whose variables are all bound (or which is ground). *)
let adorn_atom bound a =
  String.concat ""
    (List.map
       (fun t ->
         let vars = term_vars t in
         if vars <> [] && List.for_all (fun v -> SSet.mem v bound) vars then "b"
         else if vars = [] then "b"
         else "f")
       a.args)

let project_args adornment args =
  List.filteri (fun i _ -> adornment.[i] = 'b') args

let rewrite ~query program =
  let* () = check_positive program in
  let facts, rules = List.partition Ast.is_fact program in
  let idb =
    List.sort_uniq String.compare (List.map head_pred rules)
  in
  if not (List.mem query.pred idb) then
    Error (Printf.sprintf "Magic.rewrite: %s is not an IDB predicate" query.pred)
  else begin
    let query_adornment =
      String.concat ""
        (List.map (fun t -> if term_is_ground t then "b" else "f") query.args)
    in
    (* Worklist over (pred, adornment) pairs. *)
    let produced = Hashtbl.create 16 in
    let out_rules = ref [] in
    let queue = Queue.create () in
    let demand pred adornment =
      if List.mem pred idb && not (Hashtbl.mem produced (pred, adornment)) then begin
        Hashtbl.add produced (pred, adornment) ();
        Queue.push (pred, adornment) queue
      end
    in
    demand query.pred query_adornment;
    while not (Queue.is_empty queue) do
      let pred, adornment = Queue.pop queue in
      List.iter
        (fun r ->
          if head_pred r = pred then begin
            let head_bound =
              List.concat
                (List.filteri
                   (fun i _ -> adornment.[i] = 'b')
                   (List.map term_vars r.head.args))
            in
            let magic_head =
              atom (magic_name pred adornment) (project_args adornment r.head.args)
            in
            (* Left-to-right SIP: walk the body, adorn IDB atoms, emit a
               magic rule for each, accumulate bindings. *)
            let bound = ref (SSet.of_list head_bound) in
            let prefix = ref [ Pos magic_head ] in
            let new_body =
              List.map
                (fun lit ->
                  match lit with
                  | Pos a when List.mem a.pred idb ->
                    let sub_adornment = adorn_atom !bound a in
                    demand a.pred sub_adornment;
                    let magic_rule =
                      { head =
                          atom (magic_name a.pred sub_adornment)
                            (project_args sub_adornment a.args);
                        body = List.rev !prefix }
                    in
                    out_rules := magic_rule :: !out_rules;
                    let lit' = Pos { a with pred = adorned_name a.pred sub_adornment } in
                    bound := SSet.union !bound (SSet.of_list (atom_vars a));
                    prefix := lit' :: !prefix;
                    lit'
                  | Pos a ->
                    bound := SSet.union !bound (SSet.of_list (atom_vars a));
                    prefix := lit :: !prefix;
                    lit
                  | Rel _ ->
                    prefix := lit :: !prefix;
                    lit
                  | _ -> assert false)
                r.body
            in
            out_rules :=
              { head = { r.head with pred = adorned_name pred adornment };
                body = Pos magic_head :: new_body }
              :: !out_rules
          end)
        rules
    done;
    let seed =
      { head = atom (magic_name query.pred query_adornment) (project_args query_adornment query.args);
        body = [] }
    in
    Ok
      { program = facts @ (seed :: List.rev !out_rules);
        query_pred = adorned_name query.pred query_adornment }
  end

let matches_query query row =
  List.for_all2
    (fun t v -> if term_is_ground t then Value.equal (term_to_value t) v else true)
    query.args (Array.to_list row)

(* Both sides evaluate with the semi-naive engine, so the benchmark
   compares rewritings, not evaluators. *)
let eval program = Engine_core.model program

let answers ~query program =
  match rewrite ~query program with
  | Error msg -> invalid_arg msg
  | Ok { program = rewritten; query_pred } ->
    let db = eval rewritten in
    List.filter (matches_query query) (Database.facts_of db query_pred)

let answers_unoptimized ~query program =
  let db = eval program in
  List.filter (matches_query query) (Database.facts_of db query.pred)

let facts_computed ~query program =
  match rewrite ~query program with
  | Error msg -> invalid_arg msg
  | Ok { program = rewritten; _ } ->
    let magic_db = eval rewritten in
    let full_db = eval program in
    (Database.cardinal magic_db - Database.cardinal (eval (List.filter Ast.is_fact program)),
     Database.cardinal full_db - Database.cardinal (eval (List.filter Ast.is_fact program)))
