open Ast

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let var_name = function Var v -> Some v | _ -> None

(* The unary-least post-condition: opt(C) <- a(C), least(C). *)
let find_post_condition program =
  let candidates =
    List.filter_map
      (fun r ->
        match r.head.args, r.body with
        | [ Var c ], [ Pos a; Least (Var c', []) ] when c = c' -> (
          match a.args with [ Var c'' ] when c'' = c -> Some (r, a.pred) | _ -> None)
        | _ -> None)
      program
  in
  match candidates with
  | [ x ] -> Ok x
  | [] -> fail "no unary least post-condition rule found"
  | _ -> fail "more than one post-condition rule"

(* The final-stage aggregate: a(C) <- p(..., C, ..., I, ...), most(I). *)
let find_aggregate program a_pred =
  let candidates =
    List.filter_map
      (fun r ->
        match r.head with
        | { pred; args = [ Var c ] } when pred = a_pred -> (
          match r.body with
          | [ Pos p; Most (Var i, []) ] ->
            let pos_of v =
              List.find_index (fun t -> var_name t = Some v) p.args
            in
            (match pos_of c, pos_of i with
            | Some cost_pos, Some stage_pos -> Some (r, p.pred, cost_pos, stage_pos)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      program
  in
  match candidates with
  | [ x ] -> Ok x
  | [] -> fail "no most-aggregate rule over %s" a_pred
  | _ -> fail "ambiguous aggregate rules"

(* The variable-to-variable substitution unifying two atoms of equal
   shape (both all-variable argument lists). *)
let var_mapping src dst =
  if List.length src.args <> List.length dst.args then None
  else
    let tbl = Hashtbl.create 8 in
    let ok =
      List.for_all2
        (fun s d ->
          match var_name s, var_name d with
          | Some sv, Some dv -> (
            match Hashtbl.find_opt tbl sv with
            | None ->
              Hashtbl.add tbl sv dv;
              true
            | Some dv' -> dv = dv')
          | _ -> false)
        src.args dst.args
    in
    if ok then Some tbl else None

let rename_by tbl r =
  Ast.rename_rule (fun v -> Option.value ~default:v (Hashtbl.find_opt tbl v)) r

let push_extremum program =
  let* post_rule, a_pred = find_post_condition program in
  let* agg_rule, p_pred, cost_pos, _stage_pos = find_aggregate program a_pred in
  (* The next rule of p and its accumulator source atom. *)
  let* next_rule =
    match
      List.filter (fun r -> head_pred r = p_pred && has_next r) program
    with
    | [ r ] -> Ok r
    | [] -> fail "no next rule for %s" p_pred
    | _ -> fail "several next rules for %s" p_pred
  in
  let* cost_var =
    match List.nth_opt next_rule.head.args cost_pos with
    | Some (Var c) -> Ok c
    | _ -> fail "cost position of %s is not a variable in the next rule" p_pred
  in
  let* stage_var =
    match List.find_map (function Next v -> Some v | _ -> None) next_rule.body with
    | Some v -> Ok v
    | None -> fail "next rule lost its stage variable"
  in
  let* source_atom =
    match
      List.filter_map
        (function
          | Pos a when List.exists (fun t -> var_name t = Some cost_var) a.args -> Some a
          | _ -> None)
        next_rule.body
    with
    | [ a ] -> Ok a
    | _ -> fail "expected exactly one accumulator atom binding the cost"
  in
  let acc_pred = source_atom.pred in
  (* The accumulator rule: acc(...) <- p-or-acc(..C1..), base(..C2..),
     C = C1 + C2. *)
  let* acc_rule =
    match List.filter (fun r -> head_pred r = acc_pred) program with
    | [ r ] -> Ok r
    | [] -> fail "no accumulator rule for %s" acc_pred
    | _ -> fail "several rules define the accumulator %s" acc_pred
  in
  let* acc_cost_var =
    (* Position of the cost in the accumulator head = position of the
       next rule's cost variable in its source atom. *)
    match
      List.find_index (fun t -> var_name t = Some cost_var) source_atom.args
    with
    | Some pos -> (
      match List.nth_opt acc_rule.head.args pos with
      | Some (Var v) -> Ok v
      | _ -> fail "accumulator head cost is not a variable")
    | None -> fail "cost variable not found in the source atom"
  in
  let* c1_var, c2_var =
    match
      List.find_map
        (function
          | Rel (Eq, Var c, Binop (Add, Var c1, Var c2)) when c = acc_cost_var ->
            Some (c1, c2)
          | _ -> None)
        acc_rule.body
    with
    | Some x -> Ok x
    | None -> fail "accumulator does not add two costs into %s" acc_cost_var
  in
  let* base_atom =
    match
      List.filter_map
        (function
          | Pos a
            when a.pred <> p_pred && a.pred <> acc_pred
                 && List.exists
                      (fun t -> var_name t = Some c1_var || var_name t = Some c2_var)
                      a.args ->
            Some a
          | _ -> None)
        acc_rule.body
    with
    | [ a ] -> Ok a
    | _ -> fail "expected exactly one base atom carrying a step cost"
  in
  let step_cost = if List.exists (fun t -> var_name t = Some c2_var) base_atom.args then c2_var else c1_var in
  (* Rename the base atom into the next rule's variable space: map the
     accumulator head's variables to the source occurrence's, and the
     step cost to the rule's cost variable. *)
  let* mapping =
    match var_mapping acc_rule.head source_atom with
    | Some tbl -> Ok tbl
    | None -> fail "cannot unify the accumulator head with its occurrence"
  in
  Hashtbl.replace mapping step_cost cost_var;
  let renamed_base =
    (rename_by mapping { head = base_atom; body = [] }).head
  in
  (* Variables that vanish with the accumulator (e.g. its stage). *)
  let dead_vars =
    List.filter
      (fun v ->
        (not (Hashtbl.mem mapping v))
        && not (List.mem v (atom_vars renamed_base)))
      (atom_vars source_atom)
    |> List.filter (fun v -> not (String.equal v cost_var))
  in
  let body' =
    List.filter_map
      (fun lit ->
        match lit with
        | Pos a when a == source_atom -> Some (Pos renamed_base)
        | Rel (_, x, y)
          when List.exists (fun v -> List.mem v dead_vars) (term_vars x @ term_vars y) ->
          None
        | lit -> Some lit)
      next_rule.body
    @ [ Least (Var cost_var, [ Var stage_var ]) ]
  in
  let next_rule' = { next_rule with body = body' } in
  Ok
    (List.filter_map
       (fun r ->
         if r == post_rule || r == agg_rule || r == acc_rule then None
         else if r == next_rule then Some next_rule'
         else Some r)
       program)
