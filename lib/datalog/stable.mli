(** Stable-model machinery (Gelfond–Lifschitz).

    Everything here works on the {e rewritten} program
    ({!Rewrite.expand_all}): the normal program with negation whose
    stable models define the semantics of choice programs (Section 4).
    A model produced by an engine contains the [chosen$i] relations but
    not the [witness$m] ones (those exist only in the rewriting);
    {!complete} adds them.

    These functions are exponential-free but build full least models,
    so they are meant for validating engines on small instances —
    the Theorem-1 tests ("every set of facts produced by the Choice
    Fixpoint is a stable model") and the Lemma-2 completeness tests. *)

val complete : ?limits:Limits.t -> ?edb:Database.t -> Ast.program -> Database.t -> Database.t
(** [complete program m] extends a copy of [m] with the [witness$m]
    facts the rewritten program derives under [m].  [edb] supplies
    extensional facts that are not part of the program text.
    All functions in this module accept a [limits] governor and raise
    {!Limits.Exhausted} when it trips. *)

val reduct_model :
  ?limits:Limits.t -> ?edb:Database.t -> Ast.program -> Database.t -> Database.t
(** Least model of the Gelfond–Lifschitz reduct of the rewritten
    program with respect to [complete program m]. *)

val is_stable : ?limits:Limits.t -> ?edb:Database.t -> Ast.program -> Database.t -> bool
(** [is_stable program m]: is [complete program m] a stable model of
    the rewritten program?  [m] is typically {!Choice_fixpoint.model}
    output. *)

val stable_models_brute :
  ?limits:Limits.t -> ?edb:Database.t -> ?max_atoms:int -> Ast.program -> Database.t list
(** All stable models of the rewritten program, by exhaustive search
    over subsets of the derivable-atom upper bound (the least model
    with every negation assumed true).  Exponential: refuses to run
    (raises [Invalid_argument]) when the candidate atom count exceeds
    [max_atoms] (default 16).  Used to validate {!Choice_fixpoint.enumerate}
    independently on paper-scale examples. *)
