type pos = Lexer.pos = { line : int; col : int }

type t =
  | Lex of string * pos
  | Parse of string * pos
  | Unsafe of string
  | Unsupported of string
  | Not_compilable of string
  | Io of string

(* [Parser.Error] wraps lexical failures with a "lexical error: "
   prefix so pre-existing catch sites keep their one-exception
   interface; split them back out here for classification. *)
let lex_prefix = "lexical error: "

let of_exn = function
  | Parser.Error (msg, pos) ->
    let n = String.length lex_prefix in
    if String.length msg >= n && String.sub msg 0 n = lex_prefix then
      Some (Lex (String.sub msg n (String.length msg - n), pos))
    else Some (Parse (msg, pos))
  | Lexer.Error (msg, pos) -> Some (Lex (msg, pos))
  | Eval.Unsafe msg -> Some (Unsafe msg)
  | Engine_core.Unsupported msg -> Some (Unsupported msg)
  | Stage_engine.Not_compilable msg -> Some (Not_compilable msg)
  | Sys_error msg -> Some (Io msg)
  | _ -> None

let protect f =
  match f () with
  | x -> Ok x
  | exception e -> ( match of_exn e with Some t -> Error t | None -> raise e)

let at pos = if pos.line = 0 then "" else Printf.sprintf " at line %d, column %d" pos.line pos.col

let to_string = function
  | Lex (msg, pos) -> Printf.sprintf "lexical error%s: %s" (at pos) msg
  | Parse (msg, pos) -> Printf.sprintf "parse error%s: %s" (at pos) msg
  | Unsafe msg -> "unsafe evaluation: " ^ msg
  | Unsupported msg -> "unsupported program (reference engine): " ^ msg
  | Not_compilable msg -> "not compilable (staged engine): " ^ msg
  | Io msg -> msg

let pp ppf t = Format.pp_print_string ppf (to_string t)
