(* Incremental view maintenance over a materialized model.

   A session that has run its program to a complete model holds the
   fixpoint of the rules over its fact base.  When the client then
   asserts or retracts a handful of EDB facts, re-running the whole
   fixpoint charges the entire database for a one-row change; this
   module instead repairs the materialized model in place, stratum by
   stratum in topological order:

   - {e insertions} ride the existing semi-naive machinery: every
     stratum keeps its [Seminaive] watermarks at the rows its output
     already accounts for ([?marks]), so a step publishes only the
     newly asserted rows (and whatever lower strata just derived) as
     deltas and fires only the delta variants;

   - {e deletions} in a non-recursive stratum use counting: a support
     count per derived fact (EDB presence counts one, every derivation
     counts one), decremented by the "lost derivation" joins over the
     deleted rows, with a fact disappearing exactly when its support
     reaches zero;

   - {e deletions} in a recursive stratum use DRed (delete and
     re-derive): over-delete everything reachable from the deleted
     rows through the clique's rules, then restore the rows that are
     still EDB-backed or re-derivable from what survived;

   - a stratum with negation, extrema or aggregates is {e recomputed}
     from its (updated) inputs with the same [Seminaive.eval_clique]
     the engines use, and its output diff keeps propagating;

   - a change that can reach a {e choice} stratum falls back: the
     caller discards the materialization and re-runs the engine, so
     nondeterministic strata are never "repaired" into a model no
     engine run could have produced.  The fallback is counted.

   Throughout, correctness is judged against from-scratch evaluation
   of the final fact base: after a [Maintained] apply the model is
   fact-for-fact identical to what the engine would produce (the
   canonical sorted rendering is byte-identical; per-relation insertion
   order may differ, e.g. a DRed-restored row re-enters at the end). *)

open Ast

let del_suffix = "$ivm_del"
let pre_suffix = "$ivm_pre"
let mid_suffix = "$ivm_mid"
let fr_suffix = "$ivm_fr"

type kind = Monotone | Nonmonotone | Choice

type stratum = {
  s_preds : string list;
  s_rules : Ast.rule list;
  s_kind : kind;
  s_recursive : bool;
  s_reads : string list;  (* every body predicate, deduplicated *)
  (* Support counts for the counting deletion path (non-recursive
     monotone strata only).  [None] = not initialized or invalidated;
     rebuilt lazily by the next deletion that reaches the stratum. *)
  mutable s_supports : int Relation.Row_tbl.t option;
}

type stats = {
  mutable applies : int;  (* maintained applies *)
  mutable fallbacks : int;  (* applies refused (choice stratum reachable) *)
  mutable rows_inserted : int;  (* net rows added to the model *)
  mutable rows_deleted : int;  (* net rows removed from the model *)
  mutable strata_stepped : int;  (* delta-maintained stratum visits *)
  mutable strata_recomputed : int;  (* non-monotone recomputations *)
  mutable dred_overdeleted : int;
  mutable dred_rederived : int;
}

type t = {
  strata : stratum array;
  idb : (string, unit) Hashtbl.t;
  edb : Database.t;  (* the fact base the model is the fixpoint of *)
  model : Database.t;
  stats : stats;
}

type outcome = Maintained | Fallback of string

exception Fall of string

let model t = t.model
let stats t = t.stats

let create program ~edb ~model =
  let rules = List.filter (fun r -> not (Ast.is_fact r)) program in
  let dg = Depgraph.make rules in
  let idb = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace idb p ()) (Depgraph.idb dg);
  let strata =
    List.map
      (fun clique ->
        let srules = Depgraph.rules_of_clique dg clique in
        let kind =
          if List.exists (fun r -> Ast.has_choice r || Ast.has_next r) srules then Choice
          else if
            List.exists
              (fun r ->
                Ast.has_extrema r || Ast.has_agg r
                || List.exists (function Neg _ -> true | _ -> false) r.body)
              srules
          then Nonmonotone
          else Monotone
        in
        { s_preds = clique;
          s_rules = srules;
          s_kind = kind;
          s_recursive = Depgraph.is_recursive dg clique;
          s_reads = List.sort_uniq String.compare (List.concat_map Ast.body_preds srules);
          s_supports = None })
      (Depgraph.cliques dg)
  in
  { strata = Array.of_list strata;
    idb;
    edb = Database.copy edb;
    model;
    stats =
      { applies = 0; fallbacks = 0; rows_inserted = 0; rows_deleted = 0;
        strata_stepped = 0; strata_recomputed = 0; dred_overdeleted = 0;
        dred_rederived = 0 } }

(* Conservative predicate-level reachability: would a change to any of
   [preds] (transitively) affect a choice stratum?  Checked before the
   model is touched, so a refused apply leaves the materialization
   intact and the caller can simply re-run the engine. *)
let reaches_choice t preds =
  let changed = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace changed p ()) preds;
  let hit = ref false in
  Array.iter
    (fun s ->
      let affected =
        List.exists (Hashtbl.mem changed) s.s_reads
        || List.exists (Hashtbl.mem changed) s.s_preds
      in
      if affected then begin
        if s.s_kind = Choice then hit := true;
        List.iter (fun p -> Hashtbl.replace changed p ()) s.s_preds
      end)
    t.strata;
  !hit

let row_tbl_of rows =
  let tbl = Relation.Row_tbl.create (max 4 (List.length rows)) in
  List.iter (fun r -> Relation.Row_tbl.replace tbl r ()) rows;
  tbl

let group changes =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (p, row) ->
      match Hashtbl.find_opt tbl p with
      | Some l -> l := row :: !l
      | None ->
        Hashtbl.replace tbl p (ref [ row ]);
        order := p :: !order)
    changes;
  List.rev_map (fun p -> (p, List.rev !(Hashtbl.find tbl p))) !order

let apply ?(telemetry = Telemetry.none) ?(limits = Limits.unlimited)
    ?(pool = Par.sequential) t ~inserts ~deletes =
  let changed_preds =
    List.sort_uniq String.compare (List.map fst inserts @ List.map fst deletes)
  in
  if reaches_choice t changed_preds then begin
    t.stats.fallbacks <- t.stats.fallbacks + 1;
    Fallback "change reaches a choice stratum"
  end
  else begin
    try
      Telemetry.span telemetry "ivm:apply" (fun () ->
          let stats = t.stats in
          let model = t.model in

          (* ---- per-apply bookkeeping ---------------------------- *)

          (* Pre-apply copy of every relation we mutate: the deletion
             joins must read the state the model was derived from.
             Only the deletion machinery (and the recompute diff) ever
             reads it, so a pure-insert apply skips the snapshots —
             [Relation.copy] is O(1) but marks the relation
             copy-on-write, which would turn the delta step's first
             insertion into an O(model) privatization. *)
          let deleting = deletes <> [] in
          let pre : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
          let save_pre_always p =
            if not (Hashtbl.mem pre p) then
              match Database.find model p with
              | Some r -> Hashtbl.replace pre p (Relation.copy r)
              | None -> ()
          in
          let save_pre p = if deleting then save_pre_always p in
          (* Net rows removed from the model so far, per predicate. *)
          let deleted : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
          (* Rows at index >= base_card are "new since this apply
             started" — exactly what downstream strata must see as
             their insertion deltas ([Seminaive] marks).  A rebuild
             after deletion resets the mark to the surviving count; a
             recomputed stratum resets it to 0 (conservatively
             republishing the whole relation). *)
          let base_card : (string, int) Hashtbl.t = Hashtbl.create 32 in
          List.iter
            (fun p ->
              match Database.find model p with
              | Some r -> Hashtbl.replace base_card p (Relation.cardinal r)
              | None -> ())
            (Database.preds model);
          let mark p = try Hashtbl.find base_card p with Not_found -> 0 in
          let has_inserts p =
            match Database.find model p with
            | None -> false
            | Some r -> Relation.cardinal r > mark p
          in
          let has_deletes p = Hashtbl.mem deleted p in
          (* Exact pre-apply view of a predicate that gained rows but
             never lost any: rows are append-only within an apply, so
             the prefix below the watermark IS the pre state.  Built on
             demand — only when deletion machinery actually joins
             against an insert-dirtied predicate — so it costs nothing
             on the common pure-insert apply, and unlike a
             [Relation.copy] snapshot it never marks the live relation
             copy-on-write. *)
          let pre_view_memo : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
          let pre_view p =
            match Hashtbl.find_opt pre p with
            | Some r -> r
            | None -> (
              match Hashtbl.find_opt pre_view_memo p with
              | Some r -> r
              | None ->
                let r =
                  match Database.find model p with
                  | None -> Relation.create p 0
                  | Some rel ->
                    let m = mark p in
                    if m >= Relation.cardinal rel then rel
                    else begin
                      let out =
                        Relation.create (p ^ pre_suffix) (Relation.arity rel)
                      in
                      let i = ref 0 in
                      (try
                         Relation.iter rel (fun row ->
                             if !i >= m then raise Exit;
                             ignore (Relation.add out row);
                             incr i)
                       with Exit -> ());
                      out
                    end
                in
                Hashtbl.replace pre_view_memo p r;
                r)
          in
          let note_deleted p rows =
            match rows with
            | [] -> ()
            | first :: _ ->
              let rel =
                match Hashtbl.find_opt deleted p with
                | Some r -> r
                | None ->
                  let r = Relation.create (p ^ del_suffix) (Array.length first) in
                  Hashtbl.replace deleted p r;
                  r
              in
              List.iter (fun row -> ignore (Relation.add rel row)) rows
          in
          (* Remove [rows] from [p]'s model relation in one
             order-preserving rebuild; returns the rows actually
             removed (deduplicated). *)
          let remove_rows p rows =
            let seen = Relation.Row_tbl.create 16 in
            let present =
              List.filter
                (fun row ->
                  Database.mem_fact model p row
                  && not (Relation.Row_tbl.mem seen row)
                  && (Relation.Row_tbl.replace seen row (); true))
                rows
            in
            match present with
            | [] -> []
            | _ ->
              save_pre_always p;
              let rel = Option.get (Database.find model p) in
              let filtered =
                Relation.filter rel (fun row -> not (Relation.Row_tbl.mem seen row))
              in
              Database.set_relation model p filtered;
              Hashtbl.replace base_card p (Relation.cardinal filtered);
              note_deleted p present;
              stats.rows_deleted <- stats.rows_deleted + List.length present;
              present
          in
          (* S_old minus the deleted rows, memoized per predicate (a
             predicate's deletions are final once its stratum has been
             processed, and only lower strata are ever read). *)
          let mid_memo : (string, Relation.t) Hashtbl.t = Hashtbl.create 8 in
          let mid_rel p =
            match Hashtbl.find_opt mid_memo p with
            | Some r -> r
            | None ->
              let r =
                match (Hashtbl.find_opt pre p, Hashtbl.find_opt deleted p) with
                | Some pr, Some del ->
                  Relation.filter pr (fun row -> not (Relation.mem del row))
                | Some pr, None -> pr
                | None, _ -> (
                  match Database.find model p with
                  | Some r -> r
                  | None -> Relation.create p 0)
              in
              Hashtbl.replace mid_memo p r;
              r
          in
          let with_rels bindings f =
            Fun.protect
              ~finally:(fun () ->
                List.iter (fun (n, _) -> Database.remove_relation model n) bindings)
              (fun () ->
                List.iter (fun (n, r) -> Database.set_relation model n r) bindings;
                f ())
          in
          let run_variant (cbody, chead) k =
            let env = Eval.fresh_env cbody in
            Eval.run cbody model env (fun env ->
                Limits.poll limits;
                k (Eval.eval_row env chead))
          in

          (* ---- phase 0: the fact base -------------------------- *)

          let del_groups = group deletes and ins_groups = group inserts in
          List.iter
            (fun (p, rows) ->
              match Database.find t.edb p with
              | None -> ()
              | Some rel ->
                let doomed = row_tbl_of rows in
                Database.set_relation t.edb p
                  (Relation.filter rel (fun r -> not (Relation.Row_tbl.mem doomed r))))
            del_groups;
          List.iter
            (fun (p, rows) ->
              List.iter (fun row -> ignore (Database.add_fact t.edb p row)) rows)
            ins_groups;

          (* EDB changes to predicates that rules also derive are
             deferred to the owning stratum (support counts and delta
             publication need the stratum context); pure-EDB
             predicates are patched directly. *)
          let edb_ins : (string, Value.t array list) Hashtbl.t = Hashtbl.create 8
          and edb_del : (string, Value.t array list) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun (p, rows) ->
              if Hashtbl.mem t.idb p then Hashtbl.replace edb_del p rows
              else ignore (remove_rows p rows))
            del_groups;
          List.iter
            (fun (p, rows) ->
              if Hashtbl.mem t.idb p then Hashtbl.replace edb_ins p rows
              else begin
                save_pre p;
                List.iter
                  (fun row ->
                    if Database.add_fact model p row then
                      stats.rows_inserted <- stats.rows_inserted + 1)
                  rows
              end)
            ins_groups;
          let edb_ins_of p =
            match Hashtbl.find_opt edb_ins p with Some r -> r | None -> []
          and edb_del_of p =
            match Hashtbl.find_opt edb_del p with Some r -> r | None -> []
          in

          (* ---- deletion machinery ------------------------------ *)

          (* Variants counting the lost derivations of [rule]: one per
             positive occurrence of a deleted predicate, reading that
             occurrence from the deleted rows, earlier deleted-pred
             occurrences from S_old minus the deletions, later ones
             (and every merely insert-dirtied predicate) from S_old —
             each lost derivation is counted exactly once, at its
             first deleted occurrence. *)
          let deletion_variants ~is_deleted ~is_dirty rule =
            let n_del =
              List.length
                (List.filter (function Pos a -> is_deleted a.pred | _ -> false) rule.body)
            in
            List.init n_del (fun i ->
                let occ = ref (-1) in
                let delta = ref None in
                let rest =
                  List.filter_map
                    (fun lit ->
                      match lit with
                      | Pos a when is_deleted a.pred ->
                        incr occ;
                        if !occ = i then begin
                          delta := Some (Pos { a with pred = a.pred ^ del_suffix });
                          None
                        end
                        else if !occ < i then
                          Some (Pos { a with pred = a.pred ^ mid_suffix })
                        else Some (Pos { a with pred = a.pred ^ pre_suffix })
                      | Pos a when is_dirty a.pred ->
                        Some (Pos { a with pred = a.pred ^ pre_suffix })
                      | lit -> Some lit)
                    rule.body
                in
                (* The delta occurrence goes first: smallest relation,
                   and an empty delta costs O(1). *)
                let body =
                  match !delta with Some d -> d :: rest | None -> assert false
                in
                let cbody = Eval.compile_body body in
                (cbody, Eval.compile_terms cbody rule.head.args))
          in
          let bindings_for reads =
            List.concat_map
              (fun p ->
                let b = ref [] in
                (match Hashtbl.find_opt deleted p with
                | Some d ->
                  b := (p ^ del_suffix, d) :: (p ^ mid_suffix, mid_rel p) :: !b
                | None -> ());
                (match Hashtbl.find_opt pre p with
                | Some pr -> b := (p ^ pre_suffix, pr) :: !b
                | None ->
                  if has_inserts p then b := (p ^ pre_suffix, pre_view p) :: !b);
                !b)
              reads
          in

          (* Counting deletion for a non-recursive monotone stratum
             (a single head predicate the body never mentions).
             Returns [true] when the support table was (re)built this
             visit — such a table already accounts for the final lower
             state, so the following insertion step keeps it valid. *)
          let counting_delete s =
            let p = List.hd s.s_preds in
            let bump tbl row n =
              let prev = try Relation.Row_tbl.find tbl row with Not_found -> 0 in
              Relation.Row_tbl.replace tbl row (prev + n)
            in
            match s.s_supports with
            | Some tbl ->
              (* Exact decrement against the state the counts reflect. *)
              let dec = Relation.Row_tbl.create 64 in
              List.iter (fun row -> bump dec row 1) (edb_del_of p);
              let is_deleted q = Hashtbl.mem deleted q in
              let is_dirty q =
                (not (is_deleted q)) && (Hashtbl.mem pre q || has_inserts q)
              in
              with_rels (bindings_for s.s_reads) (fun () ->
                  List.iter
                    (fun rule ->
                      List.iter
                        (fun v -> run_variant v (fun row -> bump dec row 1))
                        (deletion_variants ~is_deleted ~is_dirty rule))
                    s.s_rules);
              let doomed = ref [] in
              Relation.Row_tbl.iter
                (fun row n ->
                  let cur = try Relation.Row_tbl.find tbl row with Not_found -> 0 in
                  let left = cur - n in
                  if left <= 0 then begin
                    Relation.Row_tbl.remove tbl row;
                    if Database.mem_fact model p row then doomed := row :: !doomed
                  end
                  else Relation.Row_tbl.replace tbl row left)
                dec;
              ignore (remove_rows p !doomed);
              false
            | None ->
              (* Recount from scratch against the already-final lower
                 state: rows at zero support disappear; rows counted
                 but not yet present arrive with the insertion step. *)
              let tbl = Relation.Row_tbl.create 256 in
              (match Database.find t.edb p with
              | Some r -> Relation.iter r (fun row -> bump tbl row 1)
              | None -> ());
              List.iter
                (fun rule ->
                  let cbody = Eval.compile_body rule.body in
                  let chead = Eval.compile_terms cbody rule.head.args in
                  let env = Eval.fresh_env cbody in
                  Eval.run cbody model env (fun env ->
                      Limits.poll limits;
                      bump tbl (Eval.eval_row env chead) 1))
                s.s_rules;
              let doomed = ref [] in
              (match Database.find model p with
              | Some rel ->
                Relation.iter rel (fun row ->
                    if not (Relation.Row_tbl.mem tbl row) then doomed := row :: !doomed)
              | None -> ());
              ignore (remove_rows p (List.rev !doomed));
              s.s_supports <- Some tbl;
              true
          in

          (* DRed for a recursive monotone clique: over-delete
             everything reachable from the deleted rows through the
             clique's rules (judged over the pre state), then restore
             what is still EDB-backed or re-derivable from the
             survivors. *)
          let dred_delete s =
            let clique = s.s_preds in
            List.iter save_pre_always clique;
            let in_clique p = List.mem p clique in
            let is_front q = in_clique q || Hashtbl.mem deleted q in
            let is_pre q = is_front q || Hashtbl.mem pre q || has_inserts q in
            let front_preds = List.filter is_front s.s_reads in
            let front_preds =
              List.sort_uniq String.compare (front_preds @ clique)
            in
            (* Over-deleted rows per clique pred. *)
            let over : (string, Relation.Row_tbl.key list ref) Hashtbl.t =
              Hashtbl.create 4
            in
            let over_tbl : (string, unit Relation.Row_tbl.t) Hashtbl.t =
              Hashtbl.create 4
            in
            let is_over p row =
              match Hashtbl.find_opt over_tbl p with
              | Some tb -> Relation.Row_tbl.mem tb row
              | None -> false
            in
            let mark_over p row =
              (match Hashtbl.find_opt over p with
              | Some l -> l := row :: !l
              | None -> Hashtbl.replace over p (ref [ row ]));
              (match Hashtbl.find_opt over_tbl p with
              | Some tb -> Relation.Row_tbl.replace tb row ()
              | None ->
                let tb = Relation.Row_tbl.create 64 in
                Relation.Row_tbl.replace tb row ();
                Hashtbl.replace over_tbl p tb)
            in
            let remove_now p rows =
              match rows with
              | [] -> ()
              | _ -> (
                match Database.find model p with
                | None -> ()
                | Some rel ->
                  let doomed = row_tbl_of rows in
                  Database.set_relation model p
                    (Relation.filter rel (fun r ->
                         not (Relation.Row_tbl.mem doomed r))))
            in
            (* One variant per positive occurrence of a frontier-able
               predicate; every other occurrence of a dirty predicate
               reads the pre state (over-approximation is fine — the
               re-derive phase restores any overshoot). *)
            let variants =
              List.concat_map
                (fun rule ->
                  let n =
                    List.length
                      (List.filter
                         (function Pos a -> is_front a.pred | _ -> false)
                         rule.body)
                  in
                  List.init n (fun i ->
                      let occ = ref (-1) in
                      let delta = ref None in
                      let rest =
                        List.filter_map
                          (fun lit ->
                            match lit with
                            | Pos a when is_front a.pred ->
                              incr occ;
                              if !occ = i then begin
                                delta :=
                                  Some (Pos { a with pred = a.pred ^ fr_suffix });
                                None
                              end
                              else Some (Pos { a with pred = a.pred ^ pre_suffix })
                            | Pos a when is_pre a.pred ->
                              Some (Pos { a with pred = a.pred ^ pre_suffix })
                            | lit -> Some lit)
                          rule.body
                      in
                      let body =
                        match !delta with Some d -> d :: rest | None -> assert false
                      in
                      let cbody = Eval.compile_body body in
                      (rule.head.pred, cbody, Eval.compile_terms cbody rule.head.args)))
                s.s_rules
            in
            let pre_of p =
              match Hashtbl.find_opt pre p with
              | Some r -> Some r
              | None ->
                if has_inserts p then Some (pre_view p) else Database.find model p
            in
            let static_bindings =
              List.filter_map
                (fun p ->
                  match pre_of p with
                  | Some r -> Some (p ^ pre_suffix, r)
                  | None -> None)
                (List.sort_uniq String.compare
                   (List.filter is_pre (s.s_reads @ clique)))
            in
            let arity_of p =
              match Database.find model p with
              | Some r -> Relation.arity r
              | None -> (
                match Database.find t.edb p with
                | Some r -> Relation.arity r
                | None -> 0)
            in
            let fr_names = List.map (fun p -> (p, p ^ fr_suffix)) front_preds in
            with_rels static_bindings (fun () ->
                Fun.protect
                  ~finally:(fun () ->
                    List.iter
                      (fun (_, n) -> Database.remove_relation model n)
                      fr_names)
                  (fun () ->
                    (* Seed: external deletions from lower strata, plus
                       this clique's own retracted EDB rows. *)
                    let frontier : (string, Relation.Row_tbl.key list) Hashtbl.t =
                      Hashtbl.create 4
                    in
                    List.iter
                      (fun q ->
                        if not (in_clique q) then
                          match Hashtbl.find_opt deleted q with
                          | Some d -> Hashtbl.replace frontier q (Relation.to_list d)
                          | None -> ())
                      front_preds;
                    List.iter
                      (fun p ->
                        let rows =
                          List.filter
                            (fun row -> Database.mem_fact model p row)
                            (edb_del_of p)
                        in
                        if rows <> [] then begin
                          remove_now p rows;
                          List.iter (mark_over p) rows;
                          Hashtbl.replace frontier p rows
                        end)
                      clique;
                    (* Over-delete to fixpoint. *)
                    while Hashtbl.length frontier > 0 do
                      Limits.poll limits;
                      List.iter
                        (fun (p, n) ->
                          let rel = Relation.create n (arity_of p) in
                          (match Hashtbl.find_opt frontier p with
                          | Some rows ->
                            List.iter (fun row -> ignore (Relation.add rel row)) rows
                          | None -> ());
                          Database.set_relation model n rel)
                        fr_names;
                      let next : (string, Relation.Row_tbl.key list ref) Hashtbl.t =
                        Hashtbl.create 4
                      in
                      List.iter
                        (fun (hp, cbody, chead) ->
                          run_variant (cbody, chead) (fun row ->
                              if
                                Database.mem_fact model hp row
                                && not (is_over hp row)
                              then begin
                                mark_over hp row;
                                match Hashtbl.find_opt next hp with
                                | Some l -> l := row :: !l
                                | None -> Hashtbl.replace next hp (ref [ row ])
                              end))
                        variants;
                      Hashtbl.reset frontier;
                      Hashtbl.iter
                        (fun p l ->
                          remove_now p !l;
                          Hashtbl.replace frontier p !l)
                        next
                    done));
            (* Re-derive: restore over-deleted rows that are still
               EDB-backed or have a derivation over the surviving (and
               already-updated lower) state. *)
            let checkers =
              Array.of_list
              @@ List.map
                (fun rule ->
                  let bindable =
                    List.for_all
                      (function Var _ | Cst _ -> true | _ -> false)
                      rule.head.args
                  in
                  if bindable then begin
                    let head_vars =
                      List.sort_uniq compare
                        (List.concat_map Ast.term_vars rule.head.args)
                    in
                    let cbody = Eval.compile_body ~extra_bound:head_vars rule.body in
                    `Probe (rule.head.pred, cbody, Eval.compile_terms cbody rule.head.args)
                  end
                  else
                    let cbody = Eval.compile_body rule.body in
                    `Enumerate (rule.head.pred, cbody, Eval.compile_terms cbody rule.head.args))
                s.s_rules
            in
            let overdeleted = ref 0 and rederived = ref 0 in
            let remaining : (string, unit Relation.Row_tbl.t) Hashtbl.t =
              Hashtbl.create 4
            in
            Hashtbl.iter
              (fun p l ->
                overdeleted := !overdeleted + List.length !l;
                Hashtbl.replace remaining p (row_tbl_of !l))
              over;
            let restore p row tb =
              ignore (Database.add_fact model p row);
              Relation.Row_tbl.remove tb row;
              incr rederived
            in
            let progress = ref true in
            while !progress do
              progress := false;
              Limits.poll limits;
              (* Heads of computed-argument rules, re-enumerated once
                 per round (rare: monotone heads are almost always
                 plain variables).  Stale within a round is fine — the
                 outer loop repeats until no restore makes progress. *)
              let enum_heads =
                Array.map
                  (fun checker ->
                    match checker with
                    | `Probe _ -> None
                    | `Enumerate (_, cbody, chead) ->
                      let tb = Relation.Row_tbl.create 64 in
                      let env = Eval.fresh_env cbody in
                      Eval.run cbody model env (fun env ->
                          Limits.poll limits;
                          Relation.Row_tbl.replace tb (Eval.eval_row env chead) ());
                      Some tb)
                  checkers
              in
              let derivable p row =
                let ok = ref false in
                Array.iteri
                  (fun i checker ->
                    if not !ok then
                      match checker with
                      | `Probe (hp, cbody, chead) ->
                        if String.equal hp p then begin
                          let env = Eval.fresh_env cbody in
                          if
                            Eval.bind_row env chead row
                            && (try
                                  Eval.run cbody model env (fun _ -> raise Exit);
                                  false
                                with Exit -> true)
                          then ok := true
                        end
                      | `Enumerate (hp, _, _) -> (
                        if String.equal hp p then
                          match enum_heads.(i) with
                          | Some tb -> if Relation.Row_tbl.mem tb row then ok := true
                          | None -> ()))
                  checkers;
                !ok
              in
              Hashtbl.iter
                (fun p tb ->
                  let rows = Relation.Row_tbl.fold (fun row () acc -> row :: acc) tb [] in
                  List.iter
                    (fun row ->
                      if Relation.Row_tbl.mem tb row then
                        if Database.mem_fact t.edb p row || derivable p row then begin
                          restore p row tb;
                          progress := true
                        end)
                    rows)
                remaining
            done;
            stats.dred_overdeleted <- stats.dred_overdeleted + !overdeleted;
            stats.dred_rederived <- stats.dred_rederived + !rederived;
            Hashtbl.iter
              (fun p tb ->
                let gone = Relation.Row_tbl.fold (fun row () acc -> row :: acc) tb [] in
                note_deleted p gone;
                stats.rows_deleted <- stats.rows_deleted + List.length gone)
              remaining;
            (* The restored rows were never absent from the stratum's
               point of view: mark them (and the survivors) as already
               seen, so only genuinely new rows flow downstream. *)
            List.iter
              (fun p ->
                match Database.find model p with
                | Some r -> Hashtbl.replace base_card p (Relation.cardinal r)
                | None -> ())
              clique
          in

          (* Semi-naive insertion step: the stratum's watermarks start
             at everything its output already accounts for, so the
             first publication is exactly the externally appended rows
             (lower-stratum insertions, freshly asserted EDB rows). *)
          let insert_phase s ~fresh_supports =
            let own_edb =
              List.exists (fun p -> edb_ins_of p <> []) s.s_preds
            in
            let any_delta = List.exists has_inserts s.s_reads || own_edb in
            if any_delta then begin
              List.iter
                (fun p ->
                  match edb_ins_of p with
                  | [] -> ()
                  | rows ->
                    save_pre p;
                    List.iter
                      (fun row ->
                        if Database.add_fact model p row then
                          stats.rows_inserted <- stats.rows_inserted + 1)
                      rows)
                s.s_preds;
              List.iter save_pre s.s_preds;
              let before =
                List.map
                  (fun p ->
                    ( p,
                      match Database.find model p with
                      | Some r -> Relation.cardinal r
                      | None -> 0 ))
                  s.s_preds
              in
              let inc =
                Seminaive.make ~telemetry ~limits ~pool ~marks:mark model
                  ~clique:s.s_preds s.s_rules
              in
              Seminaive.step inc;
              List.iter
                (fun (p, c) ->
                  match Database.find model p with
                  | Some r ->
                    stats.rows_inserted <-
                      stats.rows_inserted + (Relation.cardinal r - c)
                  | None -> ())
                before;
              stats.strata_stepped <- stats.strata_stepped + 1;
              if not fresh_supports then s.s_supports <- None
            end
          in

          (* Non-monotone stratum: recompute from the updated inputs
             with the same machinery the engines use, then diff. *)
          let recompute s =
            List.iter save_pre_always s.s_preds;
            List.iter
              (fun p ->
                match Database.find model p with
                | None -> ()
                | Some r ->
                  let fresh = Relation.create p (Relation.arity r) in
                  (match Database.find t.edb p with
                  | Some er ->
                    Relation.iter er (fun row -> ignore (Relation.add fresh row))
                  | None -> ());
                  Database.set_relation model p fresh)
              s.s_preds;
            Seminaive.eval_clique ~telemetry ~limits ~pool model ~clique:s.s_preds
              s.s_rules;
            List.iter
              (fun p ->
                match (Hashtbl.find_opt pre p, Database.find model p) with
                | Some old, Some now ->
                  let gone = ref [] in
                  Relation.iter old (fun row ->
                      if not (Relation.mem now row) then gone := row :: !gone);
                  let gone = List.rev !gone in
                  note_deleted p gone;
                  stats.rows_deleted <- stats.rows_deleted + List.length gone;
                  Relation.iter now (fun row ->
                      if not (Relation.mem old row) then
                        stats.rows_inserted <- stats.rows_inserted + 1);
                  Hashtbl.replace base_card p 0
                | _ -> ())
              s.s_preds;
            s.s_supports <- None;
            stats.strata_recomputed <- stats.strata_recomputed + 1
          in

          (* ---- the stratum sweep ------------------------------- *)

          Array.iter
            (fun s ->
              let reads_changed =
                List.exists (fun q -> has_inserts q || has_deletes q) s.s_reads
              in
              let own_edb_change =
                List.exists
                  (fun p -> edb_ins_of p <> [] || edb_del_of p <> [])
                  s.s_preds
              in
              if reads_changed || own_edb_change then begin
                match s.s_kind with
                | Choice -> raise (Fall "choice stratum affected")
                | Nonmonotone -> recompute s
                | Monotone ->
                  let have_del =
                    List.exists has_deletes s.s_reads
                    || List.exists (fun p -> edb_del_of p <> []) s.s_preds
                  in
                  let fresh_supports = ref false in
                  if have_del then
                    if s.s_recursive then dred_delete s
                    else fresh_supports := counting_delete s;
                  insert_phase s ~fresh_supports:!fresh_supports
              end)
            t.strata;
          stats.applies <- stats.applies + 1);
      Maintained
    with Fall msg ->
      t.stats.fallbacks <- t.stats.fallbacks + 1;
      Fallback msg
  end
