(** The Section-4 compile-time analysis: stage predicates, stage
    cliques, and the (strict) stage-stratification checker.

    The checker is conservative and syntactic, as in the paper: a
    body occurrence of a stage predicate is accepted when its stage
    term is {e provably bounded} by the head stage variable through an
    explicit comparison ([J < I], [J <= I]), an increment equation
    ([I = J + 1]) or a max equation ([I = max(J, K)]); [next] rules and
    negated occurrences need the strict forms.  Ground-constant stage
    arguments (fixed early stages, e.g. [tsp_chain(Y, _, _, 1)]) are
    accepted and recorded as a note.

    Verdicts do not gate execution — the engines run any program whose
    rules are individually safe — but {!report} is what the paper means
    by "easily recognized at compile time", and the CLI's [check]
    command prints it. *)

type kind =
  | Horn  (** no negation, extrema or choice anywhere in the clique *)
  | Flat_stratified  (** negation/extrema, none of it inside the clique *)
  | Choice_clique  (** contains [next] and/or [choice] rules *)

type clique_report = {
  preds : string list;
  kind : kind;
  next_rules : int;
  choice_only_rules : int;  (** [choice] but no [next] (exit rules) *)
  flat_rules : int;
  stage_args : (string * int) list;  (** inferred stage argument per predicate *)
  issues : string list;  (** stage-stratification violations *)
  notes : string list;  (** non-fatal observations (e.g. extremum without stage key) *)
}

type report = {
  cliques : clique_report list;  (** topological order, dependencies first *)
  stage_stratified : bool;  (** no clique has issues *)
}

val analyze : Ast.program -> report

val stage_positions : Ast.program -> (string * int list) list
(** Inferred stage-argument positions per predicate (0-based),
    exposed for tests. *)

val pp_report : Format.formatter -> report -> unit
