(* A work-sharing pool of OCaml 5 domains for data-parallel saturation.

   One pool owns [size - 1] spawned worker domains plus the calling
   domain; [run] splits a job into [shards] independent bodies claimed
   dynamically through an atomic counter, so uneven shards balance
   across domains.  Workers block on a condition variable between jobs
   — an idle pool burns no CPU — and are reused for the lifetime of the
   process (spawning a domain costs tens of microseconds, far too much
   to pay per rule firing).

   The pool makes no determinism promises of its own: shard bodies run
   concurrently in any order.  Determinism is the caller's job — the
   engines have each shard write into a private buffer and merge the
   buffers sequentially in shard-index order after [run] returns.

   Re-entrancy: [run] must not be called from inside a shard body.
   Concurrent [run]s on the same pool from different domains (the
   daemon's worker domains sharing a sized pool) are safe: the pool is
   claimed with [Mutex.try_lock], and a caller that loses the race
   simply executes its shards inline on its own domain. *)

type task = {
  f : int -> unit;
  nshards : int;
  next : int Atomic.t;  (* next unclaimed shard index *)
  pending : int Atomic.t;  (* shards not yet finished *)
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
}

type t = {
  size : int;  (* total domains incl. the caller *)
  m : Mutex.t;
  cv : Condition.t;  (* new-task and task-finished signals *)
  run_m : Mutex.t;  (* held by the caller for a whole [run] *)
  mutable current : task option;
  mutable generation : int;
  mutable spawned : bool;  (* workers are started on first parallel run *)
}

let create ~jobs =
  let size = max 1 (min jobs 64) in
  { size;
    m = Mutex.create ();
    cv = Condition.create ();
    run_m = Mutex.create ();
    current = None;
    generation = 0;
    spawned = false }

let sequential = create ~jobs:1
let size t = t.size

(* Claim and execute shards until the task's counter is exhausted.  A
   shard body must not escape with an exception — the first failure (by
   lowest shard index) is re-raised by the caller after the join. *)
let work_on pool task =
  let rec claim () =
    let i = Atomic.fetch_and_add task.next 1 in
    if i < task.nshards then begin
      (try task.f i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock pool.m;
         task.failures <- (i, e, bt) :: task.failures;
         Mutex.unlock pool.m);
      if Atomic.fetch_and_add task.pending (-1) = 1 then begin
        (* last shard: wake the caller waiting in [run] *)
        Mutex.lock pool.m;
        Condition.broadcast pool.cv;
        Mutex.unlock pool.m
      end;
      claim ()
    end
  in
  claim ()

let rec worker pool gen =
  Mutex.lock pool.m;
  while pool.generation = gen do
    Condition.wait pool.cv pool.m
  done;
  let gen = pool.generation in
  let task = pool.current in
  Mutex.unlock pool.m;
  (* [current] is never reset, so a late wake-up finds the finished
     task, sees its counter exhausted, and goes back to waiting. *)
  (match task with Some task -> work_on pool task | None -> ());
  worker pool gen

let ensure_workers pool =
  if not pool.spawned then begin
    pool.spawned <- true;
    for _ = 1 to pool.size - 1 do
      ignore (Domain.spawn (fun () -> worker pool 0))
    done
  end

let run_inline ~shards f =
  for i = 0 to shards - 1 do
    f i
  done

let run pool ~shards f =
  if shards <= 0 then ()
  else if pool.size <= 1 || shards = 1 then run_inline ~shards f
  else if not (Mutex.try_lock pool.run_m) then
    (* another domain owns the pool right now: degrade gracefully *)
    run_inline ~shards f
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool.run_m)
      (fun () ->
        let task =
          { f;
            nshards = shards;
            next = Atomic.make 0;
            pending = Atomic.make shards;
            failures = [] }
        in
        Mutex.lock pool.m;
        ensure_workers pool;
        pool.current <- Some task;
        pool.generation <- pool.generation + 1;
        Condition.broadcast pool.cv;
        Mutex.unlock pool.m;
        work_on pool task;
        Mutex.lock pool.m;
        while Atomic.get task.pending > 0 do
          Condition.wait pool.cv pool.m
        done;
        let failures = task.failures in
        Mutex.unlock pool.m;
        match
          List.sort (fun (a, _, _) (b, _, _) -> compare (a : int) b) failures
        with
        | [] -> ()
        | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt)

(* ------------------------------------------------------------------ *)
(* Shared sized pools                                                  *)
(* ------------------------------------------------------------------ *)

(* One pool per requested width, shared process-wide: `--jobs 4` from
   the repl, the daemon, or the bench all reuse the same three spawned
   workers instead of accumulating idle domains. *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_m = Mutex.create ()

let get jobs =
  let jobs = max 1 (min jobs 64) in
  if jobs = 1 then sequential
  else
    Mutex.protect pools_m (fun () ->
        match Hashtbl.find_opt pools jobs with
        | Some p -> p
        | None ->
          let p = create ~jobs in
          Hashtbl.add pools jobs p;
          p)

(* Split [n] items into at most [size t] contiguous shards of near-equal
   width.  [bounds t n i] is the [lo, hi) range of shard [i]; callers
   merge results for i = nshards-1 downto 0 (or 0 upto) as their
   determinism argument requires. *)
let nshards t n = if n <= 0 then 0 else min t.size n

let bounds ~shards n i = (i * n / shards, (i + 1) * n / shards)
