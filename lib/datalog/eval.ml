open Ast

type env = Value.t option array

exception Unsafe of string

(* Slot-resolved terms.  [PAny] only arises from [compile_term] on a
   wildcard — the body compiler gives every [_] its own fresh slot. *)
type pterm =
  | PVar of int
  | PCst of Value.t
  | PCmp of string * pterm array
  | PBinop of binop * pterm * pterm
  | PAny

type cterm = pterm

type guard = cmp_op * pterm * pterm

(* A compiled scan of one atom.  [sc_pattern] is a scratch probe buffer
   reused across invocations: constant positions are prefilled at
   compile time, the rest ([sc_fill]) are refreshed from the
   environment on every execution.  This is safe because
   [Relation.iter_matching] consumes the pattern before invoking the
   row callback.

   When every argument is a constant or a first-occurrence variable the
   scan runs as a kernel: [sc_writes] lists (row position, slot) pairs
   written directly into [env] per row — no trail, no structural match,
   no per-row allocation beyond the bindings themselves.  [sc_reads]
   lists the pattern positions of statically-bound variables; the
   kernel only applies when the runtime environment agrees with the
   static binding analysis (see [fast_applicable]), otherwise the scan
   falls back to generic matching for that invocation. *)
type scan = {
  sc_pred : string;
  sc_arity : int;
  sc_args : pterm array;
  sc_pattern : Value.t option array;
  sc_fill : (int * pterm) array;
  sc_writes : (int * int) array;
  sc_reads : int array;
  sc_fast : bool;
  sc_mask : int;
      (* static probe mask: positions known bound at fill time
         (constants + statically-bound variables/terms).  Drives index
         prebuilding before a parallel region; when the runtime pattern
         binds more, the read-only paths fall back to a linear scan. *)
}

type step =
  | SScan of scan
  | SNeg of scan * guard list
  | STest of cmp_op * pterm * pterm
  | SUnify of pterm * pterm

type body = {
  steps : step array;
  slots : (string, int) Hashtbl.t;
  nvars : int;
}

(* ------------------------------------------------------------------ *)
(* Term runtime                                                        *)
(* ------------------------------------------------------------------ *)

(* Native ints wrap silently; greedy cost accumulation must not return
   a wrong model quietly, so every overflow raises [Unsafe] naming the
   offending operation. *)
let overflow op x y =
  raise (Unsafe (Printf.sprintf "integer overflow in %d %s %d" x op y))

let checked_add x y =
  let s = x + y in
  if (x lxor s) land (y lxor s) < 0 then overflow "+" x y else s

let checked_sub x y =
  let d = x - y in
  if (x lxor y) land (x lxor d) < 0 then overflow "-" x y else d

let checked_mul x y =
  if (x = -1 && y = min_int) || (y = -1 && x = min_int) then overflow "*" x y
  else
    let p = x * y in
    if x <> 0 && p / x <> y then overflow "*" x y else p

let apply_binop op a b =
  match op, a, b with
  | Add, Value.Int x, Value.Int y -> Value.Int (checked_add x y)
  | Sub, Value.Int x, Value.Int y -> Value.Int (checked_sub x y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (checked_mul x y)
  | Max, x, y -> if Value.compare x y >= 0 then x else y
  | Min, x, y -> if Value.compare x y <= 0 then x else y
  | (Add | Sub | Mul), _, _ ->
    raise (Unsafe "arithmetic on non-integer values")

let rec eval_pterm (env : env) = function
  | PVar s -> env.(s)
  | PCst v -> Some v
  | PCmp (f, args) ->
    let n = Array.length args in
    let out = Array.make n Value.unit in
    let ok = ref true in
    for i = 0 to n - 1 do
      match eval_pterm env args.(i) with
      | Some v -> out.(i) <- v
      | None -> ok := false
    done;
    if not !ok then None
    else if f = "" then Some (Value.Tup (Array.to_list out))
    else Some (Value.App (f, Array.to_list out))
  | PBinop (op, a, b) -> (
    match eval_pterm env a, eval_pterm env b with
    | Some x, Some y -> Some (apply_binop op x y)
    | _ -> None)
  | PAny -> None

(* Structural match of a pattern term against a ground value, binding
   unbound variables into [env] and recording them on [trail]. *)
let rec match_pterm env trail t v =
  match t with
  | PAny -> true
  | PVar s -> (
    match env.(s) with
    | Some v' -> Value.equal v v'
    | None ->
      env.(s) <- Some v;
      trail := s :: !trail;
      true)
  | PCst c -> Value.equal c v
  | PCmp ("", args) -> (
    match v with
    | Value.Tup vs -> match_args env trail args vs
    | _ -> false)
  | PCmp (f, args) -> (
    match v with
    | Value.App (g, vs) when String.equal f g -> match_args env trail args vs
    | _ -> false)
  | PBinop (op, a, b) -> (
    (* Invert simple integer arithmetic so that equations like
       [I = J + 1] can bind [J] when [I] is already known. *)
    match eval_pterm env t with
    | Some v' -> Value.equal v v'
    | None -> (
      match op, v with
      | Add, Value.Int s -> (
        match eval_pterm env a, eval_pterm env b with
        | Some (Value.Int x), None -> match_pterm env trail b (Value.Int (s - x))
        | None, Some (Value.Int y) -> match_pterm env trail a (Value.Int (s - y))
        | _ -> false)
      | Sub, Value.Int s -> (
        match eval_pterm env a, eval_pterm env b with
        | Some (Value.Int x), None -> match_pterm env trail b (Value.Int (x - s))
        | None, Some (Value.Int y) -> match_pterm env trail a (Value.Int (s + y))
        | _ -> false)
      | _ -> false))

and match_args env trail args vs =
  Array.length args = List.length vs
  &&
  let rec go i = function
    | [] -> true
    | v :: rest -> match_pterm env trail args.(i) v && go (i + 1) rest
  in
  go 0 vs

(* Top-level row match: a direct array walk, no [Array.to_list].  The
   loop is a toplevel function — a nested [let rec] would allocate a
   closure per call (no flambda). *)
let rec match_row_from env trail args (row : Value.t array) i =
  i = Array.length args
  || (match_pterm env trail args.(i) row.(i) && match_row_from env trail args row (i + 1))

let match_row env trail args (row : Value.t array) =
  Array.length row = Array.length args && match_row_from env trail args row 0

let undo env trail = List.iter (fun s -> env.(s) <- None) !trail

let test_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0
  | Eq -> c = 0
  | Ne -> c <> 0

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

type ctx = { tbl : (string, int) Hashtbl.t; mutable next : int }

let slot_of ctx v =
  match Hashtbl.find_opt ctx.tbl v with
  | Some s -> s
  | None ->
    let s = ctx.next in
    ctx.next <- s + 1;
    Hashtbl.add ctx.tbl v s;
    s

let rec resolve ctx = function
  | Var "_" -> PVar (slot_of ctx (Ast.fresh_var ()))
  | Var v -> PVar (slot_of ctx v)
  | Cst v -> PCst v
  | Cmp (f, args) -> PCmp (f, Array.of_list (List.map (resolve ctx) args))
  | Binop (op, a, b) -> PBinop (op, resolve ctx a, resolve ctx b)

module SSet = Set.Make (String)

let lit_name = function
  | Pos a -> "atom " ^ a.pred
  | Neg a -> "negated atom " ^ a.pred
  | Rel _ -> "comparison"
  | Choice _ -> "choice goal"
  | Least _ | Most _ -> "extrema goal"
  | Agg _ -> "aggregate goal"
  | Next _ -> "next goal"

(* Variables a positive occurrence of [lit] can bind. *)
let binders = function
  | Pos a -> atom_vars a
  | Rel (Eq, a, b) ->
    (* An equality can bind either side once the other is ground. *)
    term_vars a @ term_vars b
  | _ -> []

let compile_body ?(extra_bound = []) lits =
  List.iter
    (fun l ->
      match l with
      | Pos _ | Neg _ | Rel _ -> ()
      | Choice _ | Least _ | Most _ | Agg _ | Next _ ->
        invalid_arg ("Eval.compile_body: non-flat literal: " ^ lit_name l))
    lits;
  (* Which variables ever become bound (fixpoint over Eq propagation). *)
  let eventually =
    let base =
      List.fold_left
        (fun acc l -> List.fold_left (fun acc v -> SSet.add v acc) acc (binders l))
        (SSet.of_list extra_bound) lits
    in
    (* Positive atoms bind all their variables; Eq both sides are in
       [base] already via [binders], which over-approximates — refined
       by the planner below, which only fires a step when ready. *)
    base
  in
  (* Locals of each negation: variables never bound positively. *)
  let lits =
    List.map
      (fun l ->
        match l with
        | Neg a ->
          let locals =
            List.filter (fun v -> not (SSet.mem v eventually)) (atom_vars a)
          in
          `Neg (a, SSet.of_list locals)
        | Pos a -> `Pos a
        | Rel (op, x, y) -> `Rel (op, x, y)
        | _ -> assert false)
      lits
  in
  (* Attach guard comparisons to the negation owning their local vars. *)
  let guards = Hashtbl.create 4 in
  (* keyed by the negated atom (physical position via index) *)
  let lits_idx = List.mapi (fun i l -> (i, l)) lits in
  let guard_of = Hashtbl.create 4 in
  List.iter
    (fun (i, l) ->
      match l with
      | `Rel (op, x, y) ->
        let vars = SSet.of_list (term_vars x @ term_vars y) in
        let local_vars = SSet.filter (fun v -> not (SSet.mem v eventually)) vars in
        if not (SSet.is_empty local_vars) then begin
          (* Find the unique negation owning all these locals. *)
          let owners =
            List.filter_map
              (fun (j, l') ->
                match l' with
                | `Neg (_, locals) when SSet.exists (fun v -> SSet.mem v locals) local_vars ->
                  Some (j, locals)
                | _ -> None)
              lits_idx
          in
          match owners with
          | [ (j, locals) ] when SSet.subset local_vars locals ->
            Hashtbl.replace guards i j;
            Hashtbl.replace guard_of i (op, x, y)
          | [] ->
            raise
              (Unsafe
                 (Printf.sprintf "comparison uses variable(s) %s never bound by a positive goal"
                    (String.concat ", " (SSet.elements local_vars))))
          | _ ->
            raise (Unsafe "comparison mixes local variables of distinct negations")
        end
      | _ -> ())
    lits_idx;
  let ctx = { tbl = Hashtbl.create 16; next = 0 } in
  List.iter (fun v -> ignore (slot_of ctx v)) extra_bound;
  (* Greedy planning. *)
  let remaining = ref (List.filter (fun (i, _) -> not (Hashtbl.mem guards i)) lits_idx) in
  let bound = ref (SSet.of_list extra_bound) in
  let steps = ref [] in
  let all_bound t = List.for_all (fun v -> SSet.mem v !bound) (term_vars t) in
  let resolve_guards j =
    Hashtbl.fold
      (fun i owner acc ->
        if owner = j then
          let op, x, y = Hashtbl.find guard_of i in
          (op, resolve ctx x, resolve ctx y) :: acc
        else acc)
      guards []
  in
  let emit_scan ~fast a =
    let ast_args = Array.of_list a.args in
    let n = Array.length ast_args in
    let args = Array.map (resolve ctx) ast_args in
    let pattern = Array.make n None in
    let fill = ref [] and writes = ref [] and reads = ref [] in
    let written = Hashtbl.create 4 in
    let all_fast = ref fast in
    let mask = ref 0 in
    for p = n - 1 downto 0 do
      match args.(p) with
      | PCst c ->
        pattern.(p) <- Some c;
        mask := !mask lor (1 lsl p)
      | PVar s ->
        fill := (p, args.(p)) :: !fill;
        let statically_bound =
          match ast_args.(p) with Var v when v <> "_" -> SSet.mem v !bound | _ -> false
        in
        if statically_bound then begin
          reads := p :: !reads;
          mask := !mask lor (1 lsl p)
        end
        else if Hashtbl.mem written s then
          (* Repeated unbound variable within one atom, e.g. [e(X, X)]:
             needs an equality check, so no kernel. *)
          all_fast := false
        else begin
          Hashtbl.add written s ();
          writes := (p, s) :: !writes
        end
      | PCmp _ | PBinop _ ->
        fill := (p, args.(p)) :: !fill;
        all_fast := false;
        if List.for_all (fun v -> SSet.mem v !bound) (term_vars ast_args.(p)) then
          mask := !mask lor (1 lsl p)
      | PAny -> assert false (* [resolve] gives wildcards fresh slots *)
    done;
    { sc_pred = a.pred;
      sc_arity = n;
      sc_args = args;
      sc_pattern = pattern;
      sc_fill = Array.of_list !fill;
      sc_writes = Array.of_list !writes;
      sc_reads = Array.of_list !reads;
      sc_fast = !all_fast;
      sc_mask = !mask }
  in
  let ready (j, l) =
    match l with
    | `Pos _ -> true
    | `Rel (Eq, x, y) -> all_bound x || all_bound y
    | `Rel (_, x, y) -> all_bound x && all_bound y
    | `Neg (a, locals) ->
      List.for_all (fun v -> SSet.mem v locals || SSet.mem v !bound) (atom_vars a)
      && List.for_all
           (fun (_, x, y) ->
             List.for_all
               (fun v -> SSet.mem v locals || SSet.mem v !bound)
               (term_vars x @ term_vars y))
           (List.map
              (fun (op, x, y) -> (op, x, y))
              (Hashtbl.fold
                 (fun i owner acc ->
                   if owner = j then Hashtbl.find guard_of i :: acc else acc)
                 guards []))
  in
  (* Preference: cheap filters first (tests, unifications, negations),
     then positive scans in written order. *)
  let pick () =
    let filters, scans =
      List.partition (fun (_, l) -> match l with `Pos _ -> false | _ -> true) !remaining
    in
    let try_list lst = List.find_opt ready lst in
    match try_list filters with Some x -> Some x | None -> try_list scans
  in
  let rec plan () =
    match !remaining with
    | [] -> ()
    | _ -> (
      match pick () with
      | None ->
        let names =
          String.concat ", "
            (List.map
               (fun (_, l) ->
                 match l with
                 | `Pos a -> a.pred
                 | `Neg (a, _) -> "not " ^ a.pred
                 | `Rel _ -> "comparison")
               !remaining)
        in
        raise (Unsafe ("cannot order body literals safely: stuck on " ^ names))
      | Some (j, l) ->
        remaining := List.filter (fun (i, _) -> i <> j) !remaining;
        (match l with
        | `Pos a ->
          steps := SScan (emit_scan ~fast:true a) :: !steps;
          List.iter (fun v -> bound := SSet.add v !bound) (atom_vars a)
        | `Rel (Eq, x, y) when not (all_bound x && all_bound y) ->
          let ground, pat = if all_bound x then (x, y) else (y, x) in
          steps := SUnify (resolve ctx pat, resolve ctx ground) :: !steps;
          List.iter (fun v -> bound := SSet.add v !bound) (term_vars pat)
        | `Rel (op, x, y) -> steps := STest (op, resolve ctx x, resolve ctx y) :: !steps
        | `Neg (a, _) ->
          steps := SNeg (emit_scan ~fast:false a, resolve_guards j) :: !steps);
        plan ())
  in
  plan ();
  { steps = Array.of_list (List.rev !steps); slots = ctx.tbl; nvars = ctx.next }

let nvars b = b.nvars
let slot b v = Hashtbl.find b.slots v
let fresh_env b = Array.make (max 1 b.nvars) None

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Refresh the scratch probe pattern from the environment.  Constant
   positions were prefilled at compile time; variable positions read
   straight out of [env] with no allocation. *)
let fill_pattern env sc =
  let fl = sc.sc_fill in
  for j = 0 to Array.length fl - 1 do
    let p, t = fl.(j) in
    sc.sc_pattern.(p) <- eval_pterm env t
  done

(* The kernel assumes statically-bound variables are bound and
   statically-unbound ones are not.  [Eval.solutions ~bindings] (and an
   engine running without binding its [extra_bound] variables) can
   violate either assumption, in which case this invocation falls back
   to generic matching. *)
let fast_applicable sc =
  let ok = ref true in
  let writes = sc.sc_writes in
  for j = 0 to Array.length writes - 1 do
    let p, _ = writes.(j) in
    match sc.sc_pattern.(p) with None -> () | Some _ -> ok := false
  done;
  let reads = sc.sc_reads in
  for j = 0 to Array.length reads - 1 do
    match sc.sc_pattern.(reads.(j)) with None -> ok := false | Some _ -> ()
  done;
  !ok

let find_rel db sc =
  match Database.find db sc.sc_pred with
  | None -> None
  | Some rel ->
    if Relation.arity rel <> sc.sc_arity then
      invalid_arg
        (Printf.sprintf "predicate %s used with arity %d and %d" sc.sc_pred
           (Relation.arity rel) sc.sc_arity);
    Some rel

let neg_holds db env sc guards =
  match find_rel db sc with
  | None -> true
  | Some rel ->
    fill_pattern env sc;
    let found = ref false in
    (try
       Relation.iter_matching rel sc.sc_pattern (fun row ->
           let trail = ref [] in
           let matched =
             match_row env trail sc.sc_args row
             && List.for_all
                  (fun (op, x, y) ->
                    match eval_pterm env x, eval_pterm env y with
                    | Some a, Some b -> test_cmp op a b
                    | _ -> raise (Unsafe "unbound variable in negation guard"))
                  guards
           in
           undo env trail;
           if matched then begin
             found := true;
             raise Exit
           end)
     with Exit -> ());
    not !found

let run body db env k =
  let nsteps = Array.length body.steps in
  let rec exec i =
    if i = nsteps then k env
    else
      match body.steps.(i) with
      | SScan sc -> (
        match find_rel db sc with
        | None -> ()
        | Some rel ->
          fill_pattern env sc;
          if sc.sc_fast && fast_applicable sc then begin
            (* id-based kernel: read only the written positions — on a
               flat relation no row tuple is ever materialized *)
            let writes = sc.sc_writes in
            let nw = Array.length writes in
            Relation.iter_matching_ids rel sc.sc_pattern (fun id ->
                for j = 0 to nw - 1 do
                  let p, s = writes.(j) in
                  env.(s) <- Some (Relation.read rel id p)
                done;
                exec (i + 1));
            for j = 0 to nw - 1 do
              let _, s = writes.(j) in
              env.(s) <- None
            done
          end
          else
            Relation.iter_matching rel sc.sc_pattern (fun row ->
                let trail = ref [] in
                if match_row env trail sc.sc_args row then exec (i + 1);
                undo env trail))
      | SNeg (sc, guards) -> if neg_holds db env sc guards then exec (i + 1)
      | STest (op, x, y) -> (
        match eval_pterm env x, eval_pterm env y with
        | Some a, Some b -> if test_cmp op a b then exec (i + 1)
        | _ -> raise (Unsafe "unbound variable in comparison"))
      | SUnify (pat, ground) -> (
        match eval_pterm env ground with
        | None -> raise (Unsafe "unbound variable in equality")
        | Some v ->
          let trail = ref [] in
          if match_pterm env trail pat v then exec (i + 1);
          undo env trail)
  in
  exec 0

(* Resolve an AST term once against a compiled body's slot table.  Do
   this at rule-compile time and evaluate/bind the result per solution:
   re-resolving on every call is the dominant allocation of the greedy
   engines' hot loop. *)
let compile_term body t =
  let rec go = function
    | Var "_" -> PAny
    | Var v -> (
      match Hashtbl.find_opt body.slots v with
      | Some s -> PVar s
      | None -> raise (Unsafe ("variable " ^ v ^ " does not occur in the body")))
    | Cst v -> PCst v
    | Cmp (f, args) -> PCmp (f, Array.of_list (List.map go args))
    | Binop (op, a, b) -> PBinop (op, go a, go b)
  in
  go t

let compile_terms body ts = Array.of_list (List.map (compile_term body) ts)

let eval_cterm env ct =
  match eval_pterm env ct with
  | Some v -> v
  | None -> raise (Unsafe "unbound variable in compiled term")

(* Manual loop: [Array.map] with a partial application would allocate
   a closure per call on top of the (wanted) result row. *)
let eval_row env cts =
  let n = Array.length cts in
  let out = Array.make n Value.unit in
  for i = 0 to n - 1 do
    out.(i) <- eval_cterm env cts.(i)
  done;
  out

(* Match compiled argument terms against a ground row, binding unbound
   variable slots in place.  No trail: the caller owns [env] and resets
   it (or discards it) between rows. *)
let rec bind_cterm env t v =
  match t with
  | PAny -> true
  | PVar s -> (
    match env.(s) with
    | Some v' -> Value.equal v v'
    | None ->
      env.(s) <- Some v;
      true)
  | PCst c -> Value.equal c v
  | PCmp ("", args) -> (
    match v with
    | Value.Tup vs -> bind_args env args vs
    | _ -> false)
  | PCmp (f, args) -> (
    match v with
    | Value.App (g, vs) when String.equal f g -> bind_args env args vs
    | _ -> false)
  | PBinop _ -> (
    match eval_pterm env t with
    | Some v' -> Value.equal v v'
    | None -> false)

and bind_args env args vs =
  Array.length args = List.length vs
  &&
  let rec go i = function
    | [] -> true
    | v :: rest -> bind_cterm env args.(i) v && go (i + 1) rest
  in
  go 0 vs

let rec bind_row_from env cts (row : Value.t array) i =
  i = Array.length cts || (bind_cterm env cts.(i) row.(i) && bind_row_from env cts row (i + 1))

let bind_row env cts (row : Value.t array) =
  Array.length row = Array.length cts && bind_row_from env cts row 0

let eval_term body env t =
  match eval_pterm env (compile_term body t) with
  | Some v -> v
  | None -> raise (Unsafe ("unbound variable in term " ^ Pretty.term_to_string t))

let eval_terms body env ts = List.map (eval_term body env) ts

let solutions body db ?(bindings = []) outs =
  let env = fresh_env body in
  List.iter (fun (v, value) -> env.(slot body v) <- Some value) bindings;
  let acc = ref [] in
  run body db env (fun env -> acc := eval_terms body env outs :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Sharded read-only execution (parallel saturation)                   *)
(* ------------------------------------------------------------------ *)

(* During a parallel region every shard joins against the same frozen
   database, so execution must touch nothing shared and mutable: scans
   go through [Relation.iter_matching_ro] (private probe keys, no lazy
   index builds) and every shard owns a [clone_body] — a structural
   copy with private [sc_pattern] buffers.  Slot assignments and
   compiled terms are shared with the original, so cterms compiled
   against the original body evaluate correctly under a clone's
   environment. *)

let clone_scan sc = { sc with sc_pattern = Array.copy sc.sc_pattern }

let clone_body b =
  { b with
    steps =
      Array.map
        (function
          | SScan sc -> SScan (clone_scan sc)
          | SNeg (sc, g) -> SNeg (clone_scan sc, g)
          | (STest _ | SUnify _) as s -> s)
        b.steps }

(* Build (sequentially, before the region) every index the shards'
   read-only scans will probe, keyed by the compile-time masks. *)
let prepare_indexes body db =
  Array.iter
    (function
      | SScan sc | SNeg (sc, _) -> (
        if sc.sc_mask <> 0 then
          match find_rel db sc with
          | Some rel -> Relation.ensure_index rel sc.sc_mask
          | None -> ())
      | STest _ | SUnify _ -> ())
    body.steps

let neg_holds_ro db env sc guards =
  match find_rel db sc with
  | None -> true
  | Some rel ->
    fill_pattern env sc;
    let found = ref false in
    (try
       Relation.iter_matching_ro rel sc.sc_pattern (fun row ->
           let trail = ref [] in
           let matched =
             match_row env trail sc.sc_args row
             && List.for_all
                  (fun (op, x, y) ->
                    match eval_pterm env x, eval_pterm env y with
                    | Some a, Some b -> test_cmp op a b
                    | _ -> raise (Unsafe "unbound variable in negation guard"))
                  guards
           in
           undo env trail;
           if matched then begin
             found := true;
             raise Exit
           end)
     with Exit -> ());
    not !found

let shardable body =
  Array.length body.steps > 0
  && match body.steps.(0) with SScan _ -> true | _ -> false

let shard_scan body db env =
  match body.steps.(0) with
  | SScan sc -> (
    match find_rel db sc with
    | None -> None
    | Some rel ->
      fill_pattern env sc;
      Some (Relation.slice rel sc.sc_pattern))
  | _ -> invalid_arg "Eval.shard_scan: body does not start with a scan"

(* [run_slice body db env slice lo hi k]: evaluate a body whose first
   step is a scan, drawing that scan's rows from [slice.(lo..hi-1)] and
   executing the remaining steps read-only.  [body] must be a private
   clone and [env] a private environment of the calling shard (with any
   extra-bound variables already set). *)
let run_slice body db env slice lo hi k =
  let nsteps = Array.length body.steps in
  let rec exec i =
    if i = nsteps then k env
    else
      match body.steps.(i) with
      | SScan sc -> (
        match find_rel db sc with
        | None -> ()
        | Some rel ->
          fill_pattern env sc;
          if sc.sc_fast && fast_applicable sc then begin
            let writes = sc.sc_writes in
            let nw = Array.length writes in
            Relation.iter_matching_ro_ids rel sc.sc_pattern (fun id ->
                for j = 0 to nw - 1 do
                  let p, s = writes.(j) in
                  env.(s) <- Some (Relation.read rel id p)
                done;
                exec (i + 1));
            for j = 0 to nw - 1 do
              let _, s = writes.(j) in
              env.(s) <- None
            done
          end
          else
            Relation.iter_matching_ro rel sc.sc_pattern (fun row ->
                let trail = ref [] in
                if match_row env trail sc.sc_args row then exec (i + 1);
                undo env trail))
      | SNeg (sc, guards) -> if neg_holds_ro db env sc guards then exec (i + 1)
      | STest (op, x, y) -> (
        match eval_pterm env x, eval_pterm env y with
        | Some a, Some b -> if test_cmp op a b then exec (i + 1)
        | _ -> raise (Unsafe "unbound variable in comparison"))
      | SUnify (pat, ground) -> (
        match eval_pterm env ground with
        | None -> raise (Unsafe "unbound variable in equality")
        | Some v ->
          let trail = ref [] in
          if match_pterm env trail pat v then exec (i + 1);
          undo env trail)
  in
  match body.steps.(0) with
  | SScan sc ->
    fill_pattern env sc;
    if sc.sc_fast && fast_applicable sc then begin
      let writes = sc.sc_writes in
      let nw = Array.length writes in
      let srel = Relation.slice_rel slice in
      Relation.slice_iter_ids slice lo hi (fun id ->
          for j = 0 to nw - 1 do
            let p, s = writes.(j) in
            env.(s) <- Some (Relation.read srel id p)
          done;
          exec 1);
      for j = 0 to nw - 1 do
        let _, s = writes.(j) in
        env.(s) <- None
      done
    end
    else
      Relation.slice_iter slice lo hi (fun row ->
          let trail = ref [] in
          if match_row env trail sc.sc_args row then exec 1;
          undo env trail)
  | _ -> invalid_arg "Eval.run_slice: body does not start with a scan"
