(** Hand-written lexer for the surface syntax.

    Comments run from [%] or [#] to end of line.  [<-] and [:-] both
    introduce rule bodies. *)

type token =
  | LIDENT of string  (** lowercase identifier: predicate / constant *)
  | UIDENT of string  (** capitalized or [_]-prefixed identifier: variable *)
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW
  | NOT  (** [not] / [~] *)
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | PLUS
  | MINUS
  | STAR
  | UNDERSCORE  (** the anonymous variable *)
  | EOF

type pos = { line : int; col : int }

exception Error of string * pos

val tokenize : string -> (token * pos) list
(** @raise Error on any unrecognizable input. *)

val token_to_string : token -> string
