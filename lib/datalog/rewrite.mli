(** The paper's first-order macro-expansions (Sections 2–3).

    Applying {!expand_next}, then {!expand_choice}, then
    {!expand_extrema} turns a program with [next]/[choice]/[least]/
    [most] goals into a normal program whose only non-Horn construct is
    negation — the program whose stable models define the semantics
    (Section 4), used by the {!Stable} checker and the {!Stage}
    analysis.

    [diffChoice] is not materialized as a predicate.  A goal
    [¬diffChoice_i(L, R)] is emitted as a negated [chosen_i] atom whose
    [R]-positions hold fresh existential variables, guarded by a tuple
    disequality — precisely the "generated on-the-fly" reading the
    paper prescribes, and directly executable by {!Eval}'s scoped
    negation. *)

val chosen_pred : int -> string
(** Name of the memo predicate for the [i]-th choice rule
    (["chosen$i"]; [$] keeps it out of the user namespace). *)

val is_internal_pred : string -> bool
(** Predicates introduced by the rewritings (chosen / witness). *)

val choice_vars : (Ast.term list * Ast.term list) list -> string list
(** Variables of a rule's choice goals, each once, in first-occurrence
    order — the argument list of its [chosen_i] predicate.  Exposed so
    the engines memoize [chosen_i] tuples in exactly the layout the
    rewriting defines (the stability checker depends on the match). *)

val expand_next : Ast.program -> Ast.program
(** Replace every [next(I)] goal by the paper's macro: a self-join on
    the head predicate binding [I1], [I = I1 + 1], and the stage FDs
    [choice(I, W)], [choice(W, I)].
    @raise Invalid_argument if the stage variable does not appear in
    the rule head. *)

val expand_choice : Ast.program -> Ast.program
(** Rewrite every rule carrying [choice] goals into the positive rule
    over [chosen_i] plus the [chosen_i] rule with its FD-enforcing
    negations. *)

val expand_extrema : Ast.program -> Ast.program
(** Rewrite every [least]/[most] goal into a negated witness: a fresh
    predicate [witness$m(KeyTuple, Cost)] capturing the rule body, and a
    guarded negation asserting no witness with equal keys and smaller
    (greater) cost exists. *)

val expand_all : Ast.program -> Ast.program
(** [expand_extrema (expand_choice (expand_next p))]. *)
