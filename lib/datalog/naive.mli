(** Naive bottom-up evaluation.

    Two uses: saturating small rule sets where performance is
    irrelevant, and computing the least model of a Gelfond–Lifschitz
    reduct, where negated atoms are tested against a {e fixed} model
    database rather than the growing one. *)

val saturate : ?limits:Limits.t -> Database.t -> Ast.program -> unit
(** Fire all non-fact rules to fixpoint against (and into) [db].
    @raise Limits.Exhausted when a governed run trips a budget; [db]
    then holds the consistent partial model derived so far.
    Negation is tested against the growing database — the caller must
    guarantee this is sound (e.g. negated predicates already saturated).
    Extrema goals are evaluated as per-round group filters, which is
    only meaningful for non-recursive extrema rules.  Facts in the
    program are loaded first. *)

val least_model_under :
  ?limits:Limits.t -> model:Database.t -> edb:Database.t -> Ast.program -> Database.t
(** The least model of the reduct of [program] with respect to [model]:
    start from a copy of [edb], fire rules to fixpoint, and evaluate
    every negated goal against [model] (never against the growing
    database).  The program must already be free of
    [choice]/[least]/[most]/[next] goals (apply {!Rewrite.expand_all}
    first). *)
