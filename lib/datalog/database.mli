(** A database: a mutable map from predicate names to relations.

    Arities are fixed on first use; a later use at a different arity is
    an error (the surface language, like classic Datalog, has no
    overloading). *)

type t

val create : unit -> t

val relation : t -> string -> int -> Relation.t
(** [relation db pred arity] returns the relation for [pred], creating
    it empty when absent.
    @raise Invalid_argument on an arity clash. *)

val find : t -> string -> Relation.t option
(** The relation for a predicate, or [None] if never touched. *)

val add_fact : t -> string -> Value.t array -> bool
val mem_fact : t -> string -> Value.t array -> bool

val load_facts : t -> Ast.program -> unit
(** Insert every ground fact of the program.
    @raise Invalid_argument if a clause with a non-empty body or a
    non-ground head is present. *)

val preds : t -> string list
(** Predicate names in creation order. *)

val cardinal : t -> int
(** Total fact count across relations. *)

val copy : t -> t

val set_relation : t -> string -> Relation.t -> unit
(** Install (or replace) the relation bound to a name.  Engine-internal:
    used for semi-naive delta relations ([p$delta]) and for aliasing a
    fixed model database during reduct evaluation. *)

val remove_relation : t -> string -> unit
(** Drop a relation (engine-internal cleanup of delta relations). *)

val facts_of : t -> string -> Value.t array list
(** All rows of a predicate in insertion order ([[]] if absent). *)

val pp : Format.formatter -> t -> unit
(** Sorted, one fact per line — stable output for tests and the CLI. *)

val equal_on : t -> t -> string list -> bool
(** [equal_on a b preds]: do [a] and [b] hold exactly the same facts for
    each predicate in [preds]? *)
