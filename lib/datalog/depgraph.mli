(** Predicate dependency graph, strongly connected components and
    topological ordering — the clique structure of Section 4.

    An edge [p -> q] exists when a rule with head predicate [p] uses [q]
    in its body.  The edge is {e negative} when the occurrence is under
    negation, and {e extremal} when the rule carries a [least]/[most]
    goal (extrema behave like negation for stratification purposes: the
    body must be saturated before the extremum is taken). *)

type t

type polarity = Positive | Negative | Extremal

val make : Ast.program -> t

val preds : t -> string list
(** Every predicate occurring in the program (heads and bodies). *)

val idb : t -> string list
(** Predicates defined by at least one non-fact rule. *)

val edb : t -> string list
(** Predicates that occur only in bodies or as ground facts. *)

val cliques : t -> string list list
(** Strongly connected components of the dependency graph restricted to
    IDB predicates, in topological order (dependencies first).  Each
    component is the paper's {e recursive clique}; trivial components
    are singletons. *)

val clique_index : t -> string -> int
(** Index of a predicate's clique in the {!cliques} list.
    @raise Not_found for pure-EDB predicates. *)

val edges_within : t -> string list -> (string * string * polarity) list
(** Dependency edges with both endpoints inside the given clique. *)

val rules_of_clique : t -> string list -> Ast.rule list
(** Non-fact rules whose head is in the clique, in program order. *)

val is_recursive : t -> string list -> bool
(** A clique is recursive when it has more than one predicate or a
    self-edge. *)
