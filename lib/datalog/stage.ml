open Ast

type kind = Horn | Flat_stratified | Choice_clique

type clique_report = {
  preds : string list;
  kind : kind;
  next_rules : int;
  choice_only_rules : int;
  flat_rules : int;
  stage_args : (string * int) list;
  issues : string list;
  notes : string list;
}

type report = { cliques : clique_report list; stage_stratified : bool }

(* ------------------------------------------------------------------ *)
(* Provable bounds between variables of one rule                       *)
(* ------------------------------------------------------------------ *)

(* Is [x >= y] (resp. [x > y]) provable from the rule's comparison and
   equation goals?  One-hop only — deliberately conservative. *)
let bound_facts rule =
  List.filter_map
    (fun lit ->
      match lit with
      | Rel (Lt, Var a, Var b) -> Some (`Gt (b, a))
      | Rel (Le, Var a, Var b) -> Some (`Ge (b, a))
      | Rel (Gt, Var a, Var b) -> Some (`Gt (a, b))
      | Rel (Ge, Var a, Var b) -> Some (`Ge (a, b))
      | Rel (Eq, Var a, Binop (Add, Var b, Cst (Value.Int k)))
      | Rel (Eq, Binop (Add, Var b, Cst (Value.Int k)), Var a) ->
        if k > 0 then Some (`Gt (a, b)) else if k = 0 then Some (`Ge (a, b)) else None
      | Rel (Eq, Var a, Binop (Max, s, t)) | Rel (Eq, Binop (Max, s, t), Var a) ->
        let vars = List.concat_map term_vars [ s; t ] in
        Some (`Max (a, vars))
      | _ -> None)
    rule.body

let bounds_ge facts x y =
  String.equal x y
  || List.exists
       (function
         | `Gt (a, b) | `Ge (a, b) -> String.equal a x && String.equal b y
         | `Max (a, vars) -> String.equal a x && List.mem y vars)
       facts

let bounds_gt facts x y =
  List.exists
    (function
      | `Gt (a, b) -> String.equal a x && String.equal b y
      | `Ge _ | `Max _ -> false)
    facts

(* ------------------------------------------------------------------ *)
(* Stage-predicate inference                                           *)
(* ------------------------------------------------------------------ *)

module SMap = Map.Make (String)
module ISet = Set.Make (Int)

let head_stage_var rule =
  List.find_map (function Next v -> Some v | _ -> None) rule.body

(* Positions in [head] holding a variable provably >= [y]. *)
let head_positions_bounding facts head y =
  List.filteri (fun _ _ -> true) head.args
  |> List.mapi (fun i t -> (i, t))
  |> List.filter_map (fun (i, t) ->
         match t with Var x when bounds_ge facts x y -> Some i | _ -> None)

let infer_stage_positions rules =
  let stage = ref SMap.empty in
  let add pred pos changed =
    let cur = Option.value ~default:ISet.empty (SMap.find_opt pred !stage) in
    if ISet.mem pos cur then changed
    else begin
      stage := SMap.add pred (ISet.add pos cur) !stage;
      true
    end
  in
  (* Seed: next rules. *)
  let changed = ref false in
  List.iter
    (fun r ->
      match head_stage_var r with
      | None -> ()
      | Some v ->
        List.iteri
          (fun i t ->
            match t with
            | Var x when String.equal x v -> changed := add r.head.pred i !changed
            | _ -> ())
          r.head.args)
    rules;
  (* Propagate through all rules. *)
  let step () =
    let changed = ref false in
    List.iter
      (fun r ->
        if not (Ast.is_fact r) then begin
          let facts = bound_facts r in
          List.iter
            (fun lit ->
              match lit with
              | Pos a | Neg a -> (
                match SMap.find_opt a.pred !stage with
                | None -> ()
                | Some positions ->
                  ISet.iter
                    (fun pos ->
                      match List.nth_opt a.args pos with
                      | Some (Var y) ->
                        List.iter
                          (fun i -> changed := add r.head.pred i !changed)
                          (head_positions_bounding facts r.head y)
                      | _ -> ())
                    positions)
              | _ -> ())
            r.body
        end)
      rules;
    !changed
  in
  while step () do
    ()
  done;
  !stage

let stage_positions rules =
  SMap.bindings (infer_stage_positions rules)
  |> List.map (fun (p, s) -> (p, ISet.elements s))

(* ------------------------------------------------------------------ *)
(* Clique analysis                                                     *)
(* ------------------------------------------------------------------ *)

let rule_is_recursive clique r = List.exists (fun p -> List.mem p clique) (body_preds r)

type rule_class = Rnext | Rchoice | Rflat

let classify r = if has_next r then Rnext else if has_choice r then Rchoice else Rflat

(* Check one stage-predicate occurrence inside a rule.  [head_stage] is
   the head's stage variable (as a string), [strict] whether the bound
   must be strict.  Returns [Ok note option] or [Error msg]. *)
let check_occurrence ~facts ~head_stage ~strict ~rule ~atom:a ~pos =
  let where =
    Printf.sprintf "%s occurrence in '%s'" a.pred (Pretty.rule_to_string rule)
  in
  match List.nth_opt a.args pos with
  | None -> Error (Printf.sprintf "%s: missing stage argument %d" where pos)
  | Some (Cst _) -> Ok (Some (Printf.sprintf "%s: constant stage argument accepted" where))
  | Some (Var y) ->
    let ok = if strict then bounds_gt facts head_stage y else bounds_ge facts head_stage y in
    if ok then Ok None
    else
      Error
        (Printf.sprintf "%s: stage variable %s not provably %s head stage %s" where y
           (if strict then "<" else "<=")
           head_stage)
  | Some _ -> Error (Printf.sprintf "%s: stage argument is a compound term" where)

let analyze rules =
  let graph = Depgraph.make (Rewrite.expand_next rules) in
  let stage = infer_stage_positions rules in
  let stage_of p = Option.map ISet.elements (SMap.find_opt p stage) in
  let cliques = Depgraph.cliques graph in
  let analyze_clique clique =
    let crules =
      List.filter (fun r -> (not (Ast.is_fact r)) && List.mem (head_pred r) clique) rules
    in
    let kind =
      if List.exists (fun r -> has_next r || has_choice r) crules then Choice_clique
      else if
        List.exists
          (fun r -> has_extrema r || negative_body_atoms r <> [])
          crules
      then Flat_stratified
      else Horn
    in
    let issues = ref [] and notes = ref [] in
    let issue msg = issues := msg :: !issues in
    let note msg = notes := msg :: !notes in
    let next_rules = List.filter (fun r -> classify r = Rnext) crules in
    let choice_only = List.filter (fun r -> classify r = Rchoice) crules in
    let flat_rules = List.filter (fun r -> classify r = Rflat) crules in
    let stage_args = ref [] in
    (match kind with
    | Horn -> ()
    | Flat_stratified ->
      (* Negation/extrema must not cross inside the clique. *)
      List.iter
        (fun (p, q, pol) ->
          match pol with
          | Depgraph.Positive -> ()
          | Depgraph.Negative ->
            issue (Printf.sprintf "negation from %s to %s inside a recursive clique" p q)
          | Depgraph.Extremal ->
            issue (Printf.sprintf "extremum over %s inside the recursive clique of %s" q p))
        (Depgraph.edges_within graph clique)
    | Choice_clique when next_rules = [] && not (Depgraph.is_recursive graph clique) ->
      (* A non-recursive choice rule (Example 1 style): no stage
         machinery involved, trivially fine. *)
      note "non-recursive choice clique"
    | Choice_clique ->
      (* Stage-clique conditions. *)
      List.iter
        (fun p ->
          match stage_of p with
          | Some [ pos ] -> stage_args := (p, pos) :: !stage_args
          | Some [] | None ->
            issue (Printf.sprintf "recursive predicate %s has no stage argument" p)
          | Some positions ->
            issue
              (Printf.sprintf "predicate %s has %d stage arguments" p (List.length positions)))
        clique;
      List.iter
        (fun p ->
          let recursive =
            List.filter
              (fun r -> head_pred r = p && (has_next r || rule_is_recursive clique r))
              crules
          in
          let kinds = List.sort_uniq compare (List.map classify recursive) in
          if List.length kinds > 1 then
            issue
              (Printf.sprintf "predicate %s mixes next and flat recursive rules" p))
        clique;
      (* Stage-stratification of each rule. *)
      let check_rule ~is_next r =
        let facts = bound_facts r in
        let head_stage =
          match
            if is_next then head_stage_var r
            else
              match List.assoc_opt (head_pred r) !stage_args with
              | Some pos -> (
                match List.nth_opt r.head.args pos with
                | Some (Var v) -> Some v
                | _ -> None)
              | None -> None
          with
          | Some v -> Some v
          | None -> None
        in
        match head_stage with
        | None ->
          if is_next then issue ("next rule without head stage variable: " ^ Pretty.rule_to_string r)
        | Some head_stage ->
          List.iter
            (fun lit ->
              let occ strict a =
                match List.assoc_opt a.pred !stage_args with
                | None -> () (* not a clique stage predicate *)
                | Some pos when not (List.mem a.pred clique) -> ignore pos
                | Some pos -> (
                  match check_occurrence ~facts ~head_stage ~strict ~rule:r ~atom:a ~pos with
                  | Ok (Some n) -> note n
                  | Ok None -> ()
                  | Error e -> issue e)
              in
              match lit with
              | Pos a -> occ is_next a
              | Neg a -> occ true a
              | Least (_, keys) | Most (_, keys) ->
                if
                  is_next
                  && not
                       (List.exists
                          (function Var v -> String.equal v head_stage | _ -> false)
                          keys)
                then
                  note
                    (Printf.sprintf
                       "extremum in next rule of %s has no stage key (cf. the paper's \
                        least(C, I) remark)"
                       (head_pred r))
              | Agg _ | Rel _ | Choice _ | Next _ -> ())
            r.body
      in
      List.iter (check_rule ~is_next:true) next_rules;
      List.iter (check_rule ~is_next:false) flat_rules);
    { preds = clique;
      kind;
      next_rules = List.length next_rules;
      choice_only_rules = List.length choice_only;
      flat_rules = List.length flat_rules;
      stage_args = List.rev !stage_args;
      issues = List.rev !issues;
      notes = List.rev !notes }
  in
  let reports = List.map analyze_clique cliques in
  { cliques = reports; stage_stratified = List.for_all (fun c -> c.issues = []) reports }

let pp_kind fmt = function
  | Horn -> Format.pp_print_string fmt "horn"
  | Flat_stratified -> Format.pp_print_string fmt "stratified"
  | Choice_clique -> Format.pp_print_string fmt "choice"

let pp_report fmt r =
  List.iter
    (fun c ->
      Format.fprintf fmt "clique {%s}: %a" (String.concat ", " c.preds) pp_kind c.kind;
      if c.kind = Choice_clique then
        Format.fprintf fmt " (%d next, %d choice, %d flat)" c.next_rules c.choice_only_rules
          c.flat_rules;
      Format.pp_print_newline fmt ();
      List.iter (fun (p, i) -> Format.fprintf fmt "  stage argument: %s[%d]@." p i) c.stage_args;
      List.iter (fun m -> Format.fprintf fmt "  issue: %s@." m) c.issues;
      List.iter (fun m -> Format.fprintf fmt "  note: %s@." m) c.notes)
    r.cliques;
  Format.fprintf fmt "stage-stratified: %b@." r.stage_stratified
