let witness_prefix = "witness$"

let has_prefix prefix p =
  String.length p >= String.length prefix && String.sub p 0 (String.length prefix) = prefix

let is_witness p = has_prefix witness_prefix p

let empty_db () = Database.create ()

let complete ?(limits = Limits.unlimited) ?edb program m =
  let rewritten = Rewrite.expand_all program in
  let witness_rules =
    List.filter (fun r -> is_witness (Ast.head_pred r)) rewritten
  in
  (* Witness bodies read ordinary predicates and negate chosen$i — all
     present in [m]; evaluate them once against [m] itself. *)
  let base =
    match edb with
    | None -> Database.copy m
    | Some edb ->
      let db = Database.copy m in
      List.iter
        (fun pred ->
          List.iter
            (fun row -> ignore (Database.add_fact db pred row))
            (Database.facts_of edb pred))
        (Database.preds edb);
      db
  in
  Naive.least_model_under ~limits ~model:base ~edb:base witness_rules

let all_preds a b =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    (Database.preds a @ Database.preds b)

let reduct_model ?limits ?edb program m =
  let rewritten = Rewrite.expand_all program in
  let completed = complete ?limits ?edb program m in
  let base = match edb with None -> empty_db () | Some edb -> Database.copy edb in
  Naive.least_model_under ?limits ~model:completed ~edb:base rewritten

let is_stable ?limits ?edb program m =
  let completed = complete ?limits ?edb program m in
  let rewritten = Rewrite.expand_all program in
  let base = match edb with None -> empty_db () | Some edb -> Database.copy edb in
  let reduct = Naive.least_model_under ?limits ~model:completed ~edb:base rewritten in
  Database.equal_on reduct completed (all_preds reduct completed)

(* ------------------------------------------------------------------ *)
(* Brute-force enumeration                                             *)
(* ------------------------------------------------------------------ *)

let stable_models_brute ?limits ?edb ?(max_atoms = 16) program =
  let rewritten = Rewrite.expand_all program in
  let base = match edb with None -> empty_db () | Some edb -> Database.copy edb in
  (* Upper bound on derivable atoms: least model with every negation
     assumed to hold (negations evaluated against an empty model). *)
  let upper = Naive.least_model_under ?limits ~model:(empty_db ()) ~edb:base rewritten in
  let edb_facts = Database.copy base in
  Database.load_facts edb_facts (List.filter Ast.is_fact rewritten);
  let candidates =
    List.concat_map
      (fun pred ->
        List.filter_map
          (fun row -> if Database.mem_fact edb_facts pred row then None else Some (pred, row))
          (Database.facts_of upper pred))
      (Database.preds upper)
  in
  let n = List.length candidates in
  if n > max_atoms then
    invalid_arg
      (Printf.sprintf "Stable.stable_models_brute: %d candidate atoms exceed the limit %d" n
         max_atoms);
  let models = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let m = Database.copy edb_facts in
    List.iteri
      (fun i (pred, row) -> if mask land (1 lsl i) <> 0 then ignore (Database.add_fact m pred row))
      candidates;
    let reduct = Naive.least_model_under ?limits ~model:m ~edb:base rewritten in
    if Database.equal_on reduct m (all_preds reduct m) then models := m :: !models
  done;
  List.rev !models
