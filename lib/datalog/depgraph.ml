type polarity = Positive | Negative | Extremal

type t = {
  rules : Ast.rule list;
  all_preds : string list;
  idb_preds : string list;
  edges : (string, (string * polarity) list) Hashtbl.t; (* head -> body deps *)
  mutable cliques_memo : string list list option;
}

let rule_edges (r : Ast.rule) =
  let extremal = Ast.has_extrema r || Ast.has_agg r in
  List.filter_map
    (fun lit ->
      match lit with
      | Ast.Pos a -> Some (a.Ast.pred, if extremal then Extremal else Positive)
      | Ast.Neg a -> Some (a.Ast.pred, Negative)
      | _ -> None)
    r.Ast.body

let make rules =
  let edges = Hashtbl.create 32 in
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let note p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      order := p :: !order
    end
  in
  let idb = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let h = Ast.head_pred r in
      note h;
      if not (Ast.is_fact r) then Hashtbl.replace idb h ();
      let deps = rule_edges r in
      List.iter (fun (p, _) -> note p) deps;
      let existing = try Hashtbl.find edges h with Not_found -> [] in
      Hashtbl.replace edges h (existing @ deps))
    rules;
  let all_preds = List.rev !order in
  let idb_preds = List.filter (Hashtbl.mem idb) all_preds in
  { rules; all_preds; idb_preds; edges; cliques_memo = None }

let preds g = g.all_preds
let idb g = g.idb_preds
let edb g = List.filter (fun p -> not (List.mem p g.idb_preds)) g.all_preds

let successors g p =
  match Hashtbl.find_opt g.edges p with
  | None -> []
  | Some deps -> List.filter (fun (q, _) -> List.mem q g.idb_preds) deps

(* Iterative Tarjan SCC; components come out reverse-topologically, so
   we reverse at the end to get dependencies-first order. *)
let compute_cliques g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) g.idb_preds;
  (* Tarjan emits a component before any component that depends on it is
     closed, i.e. [!components] is already dependencies-last; reverse. *)
  List.rev !components

let cliques g =
  match g.cliques_memo with
  | Some c -> c
  | None ->
    let c = compute_cliques g in
    g.cliques_memo <- Some c;
    c

let clique_index g p =
  let rec go i = function
    | [] -> raise Not_found
    | c :: rest -> if List.mem p c then i else go (i + 1) rest
  in
  go 0 (cliques g)

let edges_within g clique =
  List.concat_map
    (fun p ->
      match Hashtbl.find_opt g.edges p with
      | None -> []
      | Some deps ->
        List.filter_map
          (fun (q, pol) -> if List.mem q clique then Some (p, q, pol) else None)
          deps)
    clique

let rules_of_clique g clique =
  List.filter (fun r -> (not (Ast.is_fact r)) && List.mem (Ast.head_pred r) clique) g.rules

let is_recursive g clique =
  match clique with
  | [] -> false
  | [ p ] -> List.exists (fun (q, _) -> String.equal q p) (successors g p)
  | _ -> true
