(** Engine telemetry: the measurement substrate behind `gbc profile`,
    `gbc run --stats` and the benchmark JSON trajectory.

    One [t] collects, across both engines:

    - {b per-rule counters} — facts derived by flat saturation,
      candidates examined by the gamma operator, choice-FD rejections,
      firings and the final stage value, and the Section-6 (R,Q,L)
      queue statistics (pushes, pops, r-congruence shadows, stale pops,
      lazy re-validations, queue high-water mark);
    - {b per-predicate delta sizes} — tuples published by the
      semi-naive watermarks;
    - {b wall-clock spans} — one per stratum/clique, plus whatever the
      CLI wraps;
    - {b fixpoint traces} — iteration and stratum events are also
      emitted on the [gbc.engine] {!Logs} source at debug level,
      independent of whether counting is enabled.

    The default sink {!none} is disabled: every recording function
    first tests [enabled] and returns, so instrumented hot paths cost
    one branch and no allocation when telemetry is off. *)

type rule_counters = {
  mutable derived : int;  (** facts added by this rule's flat saturation *)
  mutable candidates : int;  (** candidate solutions examined by gamma *)
  mutable fd_rejections : int;  (** solutions rejected by the choice FDs *)
  mutable fired : int;  (** gamma firings credited to this rule *)
  mutable last_stage : int;  (** final stage value reached (next rules) *)
  mutable pushes : int;  (** Rql insertions *)
  mutable pops : int;  (** Rql pops: stale + revalidation-failed + used *)
  mutable shadowed : int;  (** insertions shadowed by r-congruence *)
  mutable stale : int;  (** superseded entries skipped at pop *)
  mutable revalidations : int;  (** popped candidates failing lazy re-validation *)
  mutable max_queue : int;  (** live-queue high-water mark *)
}

type t

val none : t
(** The shared disabled sink — the default of every engine entry point. *)

val create : unit -> t
(** A fresh enabled collector. *)

val enabled : t -> bool

val log_src : Logs.src
(** The [gbc.engine] source carrying iteration/stratum debug traces. *)

val rule_label : Ast.rule -> string
(** Stable display label of a rule (truncated pretty-printed clause). *)

val rule : t -> string -> rule_counters option
(** Get-or-create the counters of a rule label; [None] when disabled.
    Engines look the row up once per phase and mutate it directly. *)

val add_derived : t -> string -> int -> unit
val fired : t -> ?stage:int -> string -> unit
val set_last_stage : t -> string -> int -> unit

val queue : t -> string -> Gbc_ordered.Rql.stats -> unit
(** Merge an (R,Q,L) statistics snapshot into a rule's counters. *)

val add_delta : t -> string -> int -> unit

(** [delta_tuples t pred]: total delta tuples published so far for a
    predicate — the join planner's selectivity seed ([None] when never
    recorded). *)
val delta_tuples : t -> string -> int option
val iteration : t -> string -> unit
val stratum : t -> string -> unit

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t label f] runs [f], accumulating its wall-clock time under
    [label] (no-op wrapper when disabled). *)

val add_par : t -> shards:int -> rows:int -> unit
(** Record one data-parallel region: how many shards it ran on and how
    many input rows it covered.  Called by the sequential coordinator
    after the merge — never from inside a shard. *)

val iterations : t -> int
val gamma_steps : t -> int

val rules : t -> (string * rule_counters) list
(** Snapshot of every rule's counters, in first-seen order. *)

val totals : t -> (string * int) list
(** Flat counter snapshot (summed over rules), for benchmark records. *)

val pp : Format.formatter -> t -> unit
(** Render the per-rule table, delta sizes, spans and totals. *)

val to_json : t -> string
(** The counter snapshot as a self-contained JSON object; the schema is
    documented in docs/INTERNALS.md. *)
