type tuple = Value.t array

module Row_key = struct
  type t = tuple

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i = Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash row = Array.fold_left (fun h v -> (h * 1000003) lxor Value.hash v) 17 row
end

module Row_tbl = Hashtbl.Make (Row_key)

(* An index for a set of bound columns: projection of the row on those
   columns (as a [Value.Tup]) -> row ids, most recent first. *)
type index = { columns : int list; buckets : int list ref Value.Tbl.t }

type t = {
  rel_name : string;
  rel_arity : int;
  mutable rows : tuple array;
  mutable count : int;
  seen : unit Row_tbl.t;
  indexes : (int, index) Hashtbl.t; (* bitmask of bound columns -> index *)
}

let create rel_name rel_arity =
  { rel_name; rel_arity; rows = [||]; count = 0; seen = Row_tbl.create 64;
    indexes = Hashtbl.create 4 }

let name r = r.rel_name
let arity r = r.rel_arity
let cardinal r = r.count

let project row columns = Value.Tup (List.map (fun c -> row.(c)) columns)

let index_add idx row_id row =
  let key = project row idx.columns in
  match Value.Tbl.find_opt idx.buckets key with
  | Some ids -> ids := row_id :: !ids
  | None -> Value.Tbl.add idx.buckets key (ref [ row_id ])

let grow r row =
  let cap = Array.length r.rows in
  if r.count = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nrows = Array.make ncap row in
    Array.blit r.rows 0 nrows 0 r.count;
    r.rows <- nrows
  end

let add r row =
  if Array.length row <> r.rel_arity then
    invalid_arg
      (Printf.sprintf "Relation.add: %s expects arity %d, got %d" r.rel_name r.rel_arity
         (Array.length row));
  if Row_tbl.mem r.seen row then false
  else begin
    Row_tbl.add r.seen row ();
    grow r row;
    r.rows.(r.count) <- row;
    r.count <- r.count + 1;
    Hashtbl.iter (fun _ idx -> index_add idx (r.count - 1) row) r.indexes;
    true
  end

let mem r row = Row_tbl.mem r.seen row

let iter r f =
  for i = 0 to r.count - 1 do
    f r.rows.(i)
  done

let iter_from r k f =
  for i = k to r.count - 1 do
    f r.rows.(i)
  done

let mask_of_columns columns = List.fold_left (fun m c -> m lor (1 lsl c)) 0 columns

let get_index r columns =
  let mask = mask_of_columns columns in
  match Hashtbl.find_opt r.indexes mask with
  | Some idx -> idx
  | None ->
    let idx = { columns; buckets = Value.Tbl.create 64 } in
    for i = 0 to r.count - 1 do
      index_add idx i r.rows.(i)
    done;
    Hashtbl.add r.indexes mask idx;
    idx

let iter_matching r pattern f =
  if Array.length pattern <> r.rel_arity then
    invalid_arg (Printf.sprintf "Relation.iter_matching: bad pattern arity for %s" r.rel_name);
  let columns = ref [] in
  for i = r.rel_arity - 1 downto 0 do
    if pattern.(i) <> None then columns := i :: !columns
  done;
  match !columns with
  | [] -> iter r f
  | columns ->
    let idx = get_index r columns in
    let key = Value.Tup (List.map (fun c -> match pattern.(c) with Some v -> v | None -> assert false) columns) in
    (match Value.Tbl.find_opt idx.buckets key with
    | None -> ()
    | Some ids ->
      (* Reverse for insertion order: determinism of candidate choice. *)
      List.iter (fun i -> f r.rows.(i)) (List.rev !ids))

let fold r ~init ~f =
  let acc = ref init in
  iter r (fun row -> acc := f !acc row);
  !acc

let to_list r = List.rev (fold r ~init:[] ~f:(fun acc row -> row :: acc))

let copy r =
  { rel_name = r.rel_name;
    rel_arity = r.rel_arity;
    rows = Array.sub r.rows 0 r.count;
    count = r.count;
    seen = Row_tbl.copy r.seen;
    indexes = Hashtbl.create 4 (* rebuilt lazily *) }
