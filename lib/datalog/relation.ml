type tuple = Value.t array

(* Top-level loops with explicit arguments: without flambda, a nested
   [let rec] capturing its surroundings allocates a closure — and rows
   are hashed and compared on every membership test, index probe and
   cost-cache lookup. *)
let rec eq_from a b i =
  i = Array.length a || (Value.equal a.(i) b.(i) && eq_from a b (i + 1))

let rec hash_from row h i =
  if i = Array.length row then h
  else hash_from row ((h * 1000003) lxor Value.hash row.(i)) (i + 1)

module Row_key = struct
  type t = tuple

  let equal a b = Array.length a = Array.length b && eq_from a b 0
  let hash row = hash_from row 17 0
end

module Row_tbl = Hashtbl.Make (Row_key)

(* Row ids for one projection key, in insertion order.  A growable int
   array rather than a list: probes walk it front-to-back with no
   [List.rev] and no per-probe allocation. *)
type bucket = { mutable ids : int array; mutable n : int }

let bucket_push b id =
  let cap = Array.length b.ids in
  if b.n = cap then begin
    let nids = Array.make (if cap = 0 then 4 else 2 * cap) 0 in
    Array.blit b.ids 0 nids 0 b.n;
    b.ids <- nids
  end;
  b.ids.(b.n) <- id;
  b.n <- b.n + 1

(* An index for a set of bound columns: projection of the row on those
   columns -> bucket of row ids.  [scratch] is the reusable probe key;
   it is copied only when a projection is stored for the first time. *)
type index = { columns : int array; buckets : bucket Row_tbl.t; scratch : Value.t array }

type t = {
  rel_name : string;
  rel_arity : int;
  mutable rows : tuple array;
  mutable count : int;
  mutable seen : unit Row_tbl.t;
  mutable shared : bool; (* rows/seen shared with a copy; privatize before add *)
  indexes : (int, index) Hashtbl.t; (* bitmask of bound columns -> index *)
}

let create rel_name rel_arity =
  { rel_name; rel_arity; rows = [||]; count = 0; seen = Row_tbl.create 64;
    shared = false; indexes = Hashtbl.create 4 }

let name r = r.rel_name
let arity r = r.rel_arity
let cardinal r = r.count

let index_add idx row_id row =
  let k = Array.length idx.columns in
  for j = 0 to k - 1 do
    idx.scratch.(j) <- row.(idx.columns.(j))
  done;
  match Row_tbl.find_opt idx.buckets idx.scratch with
  | Some b -> bucket_push b row_id
  | None ->
    let b = { ids = Array.make 4 0; n = 0 } in
    bucket_push b row_id;
    Row_tbl.add idx.buckets (Array.copy idx.scratch) b

(* The rows array and [seen] set are shared with a copy until either
   side first mutates; the frozen prefix itself never changes, so
   sharing is safe for all read paths. *)
let privatize r =
  if r.shared then begin
    r.rows <- Array.copy r.rows;
    r.seen <- Row_tbl.copy r.seen;
    r.shared <- false
  end

let grow r row =
  let cap = Array.length r.rows in
  if r.count = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nrows = Array.make ncap row in
    Array.blit r.rows 0 nrows 0 r.count;
    r.rows <- nrows
  end

let add r row =
  if Array.length row <> r.rel_arity then
    invalid_arg
      (Printf.sprintf "Relation.add: %s expects arity %d, got %d" r.rel_name r.rel_arity
         (Array.length row));
  if Row_tbl.mem r.seen row then false
  else begin
    privatize r;
    Row_tbl.add r.seen row ();
    grow r row;
    r.rows.(r.count) <- row;
    r.count <- r.count + 1;
    Hashtbl.iter (fun _ idx -> index_add idx (r.count - 1) row) r.indexes;
    true
  end

let mem r row = Row_tbl.mem r.seen row

(* Deletion support for incremental view maintenance: relations are
   append-only, so removing rows means rebuilding.  The survivors keep
   their relative insertion order (engines and the canonical printer
   rely on it); indexes are rebuilt lazily on the next probe. *)
let filter r keep =
  let out = create r.rel_name r.rel_arity in
  for i = 0 to r.count - 1 do
    let row = r.rows.(i) in
    if keep row then begin
      Row_tbl.add out.seen row ();
      grow out row;
      out.rows.(out.count) <- row;
      out.count <- out.count + 1
    end
  done;
  out

let iter r f =
  for i = 0 to r.count - 1 do
    f r.rows.(i)
  done

let iter_from r k f =
  for i = k to r.count - 1 do
    f r.rows.(i)
  done

let get_index r mask nbound =
  match Hashtbl.find_opt r.indexes mask with
  | Some idx -> idx
  | None ->
    let columns = Array.make nbound 0 in
    let j = ref 0 in
    for c = 0 to r.rel_arity - 1 do
      if mask land (1 lsl c) <> 0 then begin
        columns.(!j) <- c;
        incr j
      end
    done;
    let idx = { columns; buckets = Row_tbl.create 64; scratch = Array.make nbound Value.unit } in
    for i = 0 to r.count - 1 do
      index_add idx i r.rows.(i)
    done;
    Hashtbl.add r.indexes mask idx;
    idx

let iter_matching r pattern f =
  if Array.length pattern <> r.rel_arity then
    invalid_arg (Printf.sprintf "Relation.iter_matching: bad pattern arity for %s" r.rel_name);
  let mask = ref 0 and nbound = ref 0 in
  for i = 0 to r.rel_arity - 1 do
    if pattern.(i) <> None then begin
      mask := !mask lor (1 lsl i);
      incr nbound
    end
  done;
  if !mask = 0 then iter r f
  else begin
    let idx = get_index r !mask !nbound in
    for j = 0 to !nbound - 1 do
      idx.scratch.(j) <-
        (match pattern.(idx.columns.(j)) with Some v -> v | None -> assert false)
    done;
    match Row_tbl.find_opt idx.buckets idx.scratch with
    | None -> ()
    | Some b ->
      (* Snapshot semantics: the bound is read once, and ids only ever
         append, so rows inserted by [f] are not visited. *)
      let stop = b.n - 1 in
      for i = 0 to stop do
        f r.rows.(b.ids.(i))
      done
  end

(* Mask + key-buffer probes for the compiled execution path.  The
   compiled chains know their bound-column masks statically, so they
   probe with a full-arity [Value.t] buffer (bound positions filled,
   the rest ignored) instead of an option pattern — no [Some] boxes per
   probe.  Index choice, bucket walk and snapshot semantics are
   identical to [iter_matching], so enumeration order matches the
   interpreter's exactly. *)

let popcount mask =
  let n = ref 0 and m = ref mask in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr n
  done;
  !n

let iter_matching_cols r mask (key : Value.t array) f =
  if mask = 0 then iter r f
  else begin
    let idx = get_index r mask (popcount mask) in
    let cols = idx.columns in
    for j = 0 to Array.length cols - 1 do
      idx.scratch.(j) <- key.(cols.(j))
    done;
    match Row_tbl.find_opt idx.buckets idx.scratch with
    | None -> ()
    | Some b ->
      let stop = b.n - 1 in
      for i = 0 to stop do
        f r.rows.(b.ids.(i))
      done
  end

(* Does [row] agree with [key] on every column of [mask]? *)
let rec row_matches_cols mask (key : Value.t array) (row : tuple) i =
  i = Array.length row
  || ((mask land (1 lsl i) = 0 || Value.equal key.(i) row.(i))
     && row_matches_cols mask key row (i + 1))

let iter_matching_cols_ro r mask (key : Value.t array) (probe : Value.t array) f =
  if mask = 0 then iter r f
  else
    match Hashtbl.find_opt r.indexes mask with
    | Some idx -> (
      let cols = idx.columns in
      for j = 0 to Array.length cols - 1 do
        probe.(j) <- key.(cols.(j))
      done;
      match Row_tbl.find_opt idx.buckets probe with
      | None -> ()
      | Some b ->
        let stop = b.n - 1 in
        for i = 0 to stop do
          f r.rows.(b.ids.(i))
        done)
    | None ->
      for i = 0 to r.count - 1 do
        let row = r.rows.(i) in
        if row_matches_cols mask key row 0 then f row
      done

let ensure_index r mask =
  if mask <> 0 then begin
    let nbound = ref 0 in
    for c = 0 to r.rel_arity - 1 do
      if mask land (1 lsl c) <> 0 then incr nbound
    done;
    ignore (get_index r mask !nbound)
  end

(* Does [row] agree with every bound position of [pattern]?  The
   linear-scan fallback of the read-only paths below. *)
let rec row_matches pattern (row : tuple) i =
  i = Array.length pattern
  || ((match pattern.(i) with None -> true | Some v -> Value.equal v row.(i))
     && row_matches pattern row (i + 1))

(* Read-only variant for concurrent readers inside a parallel region:
   never builds or mutates an index and probes with a private key
   instead of the shared [scratch] buffer.  Uses an existing index when
   one is present, otherwise filters a linear scan — both enumerate in
   insertion order, so the result sequence is identical to
   [iter_matching] either way.  Coordinators call [ensure_index] for
   the statically known probe masks before entering the region, making
   the fallback rare. *)
let iter_matching_ro r pattern f =
  if Array.length pattern <> r.rel_arity then
    invalid_arg (Printf.sprintf "Relation.iter_matching_ro: bad pattern arity for %s" r.rel_name);
  let mask = ref 0 and nbound = ref 0 in
  for i = 0 to r.rel_arity - 1 do
    if pattern.(i) <> None then begin
      mask := !mask lor (1 lsl i);
      incr nbound
    end
  done;
  if !mask = 0 then iter r f
  else
    match Hashtbl.find_opt r.indexes !mask with
    | Some idx -> (
      let key = Array.make !nbound Value.unit in
      for j = 0 to !nbound - 1 do
        key.(j) <-
          (match pattern.(idx.columns.(j)) with Some v -> v | None -> assert false)
      done;
      match Row_tbl.find_opt idx.buckets key with
      | None -> ()
      | Some b ->
        let stop = b.n - 1 in
        for i = 0 to stop do
          f r.rows.(b.ids.(i))
        done)
    | None ->
      for i = 0 to r.count - 1 do
        let row = r.rows.(i) in
        if row_matches pattern row 0 then f row
      done

(* ------------------------------------------------------------------ *)
(* Slices: sharded enumeration of a matched row set                    *)
(* ------------------------------------------------------------------ *)

(* A frozen description of the rows matching a pattern, splittable into
   contiguous ranges for the domain pool.  Built by the sequential
   coordinator (which may create the index); iterated concurrently by
   shards, each over its own [lo, hi) range, touching nothing mutable.
   The ids array and row array are captured with their current bounds,
   so later appends by the coordinator are invisible. *)
type slice = { sl_rel : t; sl_ids : int array option; sl_len : int }

let slice r pattern =
  if Array.length pattern <> r.rel_arity then
    invalid_arg (Printf.sprintf "Relation.slice: bad pattern arity for %s" r.rel_name);
  let mask = ref 0 and nbound = ref 0 in
  for i = 0 to r.rel_arity - 1 do
    if pattern.(i) <> None then begin
      mask := !mask lor (1 lsl i);
      incr nbound
    end
  done;
  if !mask = 0 then { sl_rel = r; sl_ids = None; sl_len = r.count }
  else begin
    let idx = get_index r !mask !nbound in
    for j = 0 to !nbound - 1 do
      idx.scratch.(j) <-
        (match pattern.(idx.columns.(j)) with Some v -> v | None -> assert false)
    done;
    match Row_tbl.find_opt idx.buckets idx.scratch with
    | None -> { sl_rel = r; sl_ids = None; sl_len = 0 }
    | Some b -> { sl_rel = r; sl_ids = Some b.ids; sl_len = b.n }
  end

let slice_cols r mask (key : Value.t array) =
  if mask = 0 then { sl_rel = r; sl_ids = None; sl_len = r.count }
  else begin
    let idx = get_index r mask (popcount mask) in
    let cols = idx.columns in
    for j = 0 to Array.length cols - 1 do
      idx.scratch.(j) <- key.(cols.(j))
    done;
    match Row_tbl.find_opt idx.buckets idx.scratch with
    | None -> { sl_rel = r; sl_ids = None; sl_len = 0 }
    | Some b -> { sl_rel = r; sl_ids = Some b.ids; sl_len = b.n }
  end

let slice_len sl = sl.sl_len

let slice_iter sl lo hi f =
  let hi = min hi sl.sl_len in
  match sl.sl_ids with
  | None ->
    for i = lo to hi - 1 do
      f sl.sl_rel.rows.(i)
    done
  | Some ids ->
    for i = lo to hi - 1 do
      f sl.sl_rel.rows.(ids.(i))
    done

let fold r ~init ~f =
  let acc = ref init in
  iter r (fun row -> acc := f !acc row);
  !acc

let to_list r = List.rev (fold r ~init:[] ~f:(fun acc row -> row :: acc))

let copy r =
  r.shared <- true;
  { rel_name = r.rel_name;
    rel_arity = r.rel_arity;
    rows = r.rows;
    count = r.count;
    seen = r.seen;
    shared = true;
    indexes = Hashtbl.create 4 (* rebuilt lazily; never shared *) }
