type tuple = Value.t array

(* Top-level loops with explicit arguments: without flambda, a nested
   [let rec] capturing its surroundings allocates a closure — and rows
   are hashed and compared on every membership test, index probe and
   cost-cache lookup. *)
let rec eq_from a b i =
  i = Array.length a || (Value.equal a.(i) b.(i) && eq_from a b (i + 1))

let rec hash_from row h i =
  if i = Array.length row then h
  else hash_from row ((h * 1000003) lxor Value.hash row.(i)) (i + 1)

module Row_key = struct
  type t = tuple

  let equal a b = Array.length a = Array.length b && eq_from a b 0
  let hash row = hash_from row 17 0
end

module Row_tbl = Hashtbl.Make (Row_key)

(* ------------------------------------------------------------------ *)
(* Flat cell encoding                                                  *)
(* ------------------------------------------------------------------ *)

(* Interning (PR 3) made ground rows all-int in practice: every field
   is a [Value.Int] or a [Value.Sym].  Such rows pack into a single
   growable int array of [arity * count] cells — one word per field, no
   per-field box, no pointer chase on scans.  A cell is

     [i lsl 1]           for [Int i]   (|i| < 2^61)
     [(id lsl 1) lor 1]  for [Sym id]  (interner ids are >= 0)

   [Str]/[Tup]/[App] fields are not encodable (a [Str] shares the
   interner id space with [Sym], and there is only one tag bit);
   relations holding such rows stay in the boxed representation. *)

let max_flat_int = 1 lsl 61

let cell_encodable = function
  | Value.Int i -> i < max_flat_int && i > -max_flat_int
  | Value.Sym _ -> true
  | Value.Str _ | Value.Tup _ | Value.App _ -> false

let encode_cell = function
  | Value.Int i -> i lsl 1
  | Value.Sym id -> (id lsl 1) lor 1
  | _ -> invalid_arg "Relation.encode_cell: not flat-encodable"

let cell_is_sym c = c land 1 = 1
let cell_sym c = c lsr 1
let sym_cell id = (id lsl 1) lor 1
let int_cell i = i lsl 1

let rec row_encodable (row : tuple) i =
  i = Array.length row || (cell_encodable row.(i) && row_encodable row (i + 1))

(* Decoding caches: direct-mapped arrays of shared [Int]/[Sym] boxes,
   so decoding a cell is allocation-free once its value has been seen
   recently.  Reads validate the slot (the stored box must carry the
   requested payload), so a stale or racy entry only costs a fresh
   allocation — never a wrong value.  Domain-safe without locks: slots
   hold immutable one-field blocks, which OCaml 5 publishes safely
   across racy accesses, and a single-word store cannot tear. *)

let cache_bits = 16
let cache_mask = (1 lsl cache_bits) - 1
let int_cache = Array.make (1 lsl cache_bits) (Value.Int 0)
let sym_cache = Array.make (1 lsl cache_bits) (Value.Sym 0)

let int_value i =
  let k = i land cache_mask in
  match Array.unsafe_get int_cache k with
  | Value.Int j as v when j = i -> v
  | _ ->
    let v = Value.Int i in
    Array.unsafe_set int_cache k v;
    v

let sym_value id =
  let k = id land cache_mask in
  match Array.unsafe_get sym_cache k with
  | Value.Sym j as v when j = id -> v
  | _ ->
    let v = Value.Sym id in
    Array.unsafe_set sym_cache k v;
    v

let decode_cell c = if c land 1 = 0 then int_value (c asr 1) else sym_value (c lsr 1)

(* ------------------------------------------------------------------ *)
(* Promotion policy                                                    *)
(* ------------------------------------------------------------------ *)

(* All-int relations promote to the flat representation automatically
   once they reach the threshold ([GBC_FLAT] overrides: "off"/"0"
   disables, an integer replaces the default).  Mixed-type relations
   never promote; a non-encodable row arriving later demotes. *)

let default_flat_threshold = 1024

let initial_threshold =
  match Sys.getenv_opt "GBC_FLAT" with
  | Some ("off" | "0") -> None
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Some n
    | _ -> Some default_flat_threshold)
  | None -> Some default_flat_threshold

let flat_threshold_ref = ref initial_threshold
let set_flat_threshold t = flat_threshold_ref := t
let flat_threshold () = !flat_threshold_ref

(* ------------------------------------------------------------------ *)
(* Flat membership set and indexes                                     *)
(* ------------------------------------------------------------------ *)

(* Open-addressing structures over row ids, probing straight into the
   cell store: no per-entry box, no stored keys — a slot is compared by
   reading its row's cells.  Power-of-two sizes, linear probing, no
   deletions (relations are append-only). *)

let mix h c = (h * 1000003) lxor (c lxor (c lsr 31))

let rec hash_cells cells off w h i =
  if i = w then h land max_int
  else hash_cells cells off w (mix h (Array.unsafe_get cells (off + i))) (i + 1)

let rec hash_probe (probe : int array) w h i =
  if i = w then h land max_int
  else hash_probe probe w (mix h (Array.unsafe_get probe i)) (i + 1)

let rec cells_eq_probe cells off (probe : int array) w i =
  i = w
  || (Array.unsafe_get cells (off + i) = Array.unsafe_get probe i
     && cells_eq_probe cells off probe w (i + 1))

(* Membership: a hash set of row ids keyed by full-row cell content.
   Always populated (promotion, restore, bulk load, privatize) so that
   [mem] never mutates — parallel shards call it on relations they only
   read. *)
type fseen = { mutable fs_slots : int array; mutable fs_n : int }

let fs_create n =
  let rec cap c = if c >= 2 * n then c else cap (2 * c) in
  { fs_slots = Array.make (cap 32) (-1); fs_n = 0 }

let fs_insert_no_resize slots mask cells w id =
  let h = hash_cells cells (id * w) w 17 0 in
  let i = ref (h land mask) in
  while Array.unsafe_get slots !i >= 0 do
    i := (!i + 1) land mask
  done;
  Array.unsafe_set slots !i id

let fs_resize fs cells w =
  let ncap = 2 * Array.length fs.fs_slots in
  let nslots = Array.make ncap (-1) in
  let mask = ncap - 1 in
  Array.iter
    (fun id -> if id >= 0 then fs_insert_no_resize nslots mask cells w id)
    fs.fs_slots;
  fs.fs_slots <- nslots

(* [probe] holds the encoded candidate row. *)
let fs_mem fs cells w (probe : int array) =
  let slots = fs.fs_slots in
  let mask = Array.length slots - 1 in
  let h = hash_probe probe w 17 0 in
  let i = ref (h land mask) in
  let found = ref false in
  let stop = ref false in
  while not !stop do
    let id = Array.unsafe_get slots !i in
    if id < 0 then stop := true
    else if cells_eq_probe cells (id * w) probe w 0 then begin
      found := true;
      stop := true
    end
    else i := (!i + 1) land mask
  done;
  !found

(* The row's cells must already be in the store. *)
let fs_insert fs cells w id =
  if 2 * (fs.fs_n + 1) >= Array.length fs.fs_slots then fs_resize fs cells w;
  fs_insert_no_resize fs.fs_slots (Array.length fs.fs_slots - 1) cells w id;
  fs.fs_n <- fs.fs_n + 1

(* An index maps a projection on a column set to the bucket of matching
   row ids, in insertion order.  Buckets live in an open-addressing
   table; a bucket's key is the projection of its first row, so exact
   comparison reads that representative's cells and no keys are
   stored. *)

type fbucket = { mutable fb_ids : int array; mutable fb_n : int }

let fb_null = { fb_ids = [||]; fb_n = -1 }

let fb_push b id =
  let cap = Array.length b.fb_ids in
  if b.fb_n = cap then begin
    let nids = Array.make (if cap = 0 then 4 else 2 * cap) 0 in
    Array.blit b.fb_ids 0 nids 0 b.fb_n;
    b.fb_ids <- nids
  end;
  b.fb_ids.(b.fb_n) <- id;
  b.fb_n <- b.fb_n + 1

type findex = {
  fi_cols : int array;
  mutable fi_slots : fbucket array;
  mutable fi_n : int;  (* used slots (distinct keys) *)
  fi_probe : int array;  (* reusable probe, length |fi_cols| *)
}

let rec hash_proj cells off (cols : int array) k h i =
  if i = k then h land max_int
  else
    hash_proj cells off cols k (mix h (Array.unsafe_get cells (off + Array.unsafe_get cols i))) (i + 1)

let rec proj_eq_probe cells off (cols : int array) (probe : int array) k i =
  i = k
  || (Array.unsafe_get cells (off + Array.unsafe_get cols i) = Array.unsafe_get probe i
     && proj_eq_probe cells off cols probe k (i + 1))

let fi_insert_bucket slots mask cells w cols k b =
  let rep = b.fb_ids.(0) * w in
  let h = hash_proj cells rep cols k 17 0 in
  let i = ref (h land mask) in
  while (Array.unsafe_get slots !i).fb_n >= 0 do
    i := (!i + 1) land mask
  done;
  Array.unsafe_set slots !i b

let fi_resize fi cells w =
  let ncap = 2 * Array.length fi.fi_slots in
  let nslots = Array.make ncap fb_null in
  let mask = ncap - 1 in
  let k = Array.length fi.fi_cols in
  Array.iter
    (fun b -> if b.fb_n >= 0 then fi_insert_bucket nslots mask cells w fi.fi_cols k b)
    fi.fi_slots;
  fi.fi_slots <- nslots

(* Find the bucket whose key equals [probe] (first |fi_cols| slots);
   [fb_null] when absent. *)
let fi_find fi cells w (probe : int array) =
  let slots = fi.fi_slots in
  let mask = Array.length slots - 1 in
  let k = Array.length fi.fi_cols in
  let h = hash_probe probe k 17 0 in
  let i = ref (h land mask) in
  let res = ref fb_null in
  let stop = ref false in
  while not !stop do
    let b = Array.unsafe_get slots !i in
    if b.fb_n < 0 then stop := true
    else if proj_eq_probe cells (b.fb_ids.(0) * w) fi.fi_cols probe k 0 then begin
      res := b;
      stop := true
    end
    else i := (!i + 1) land mask
  done;
  !res

(* Add a stored row to the index. *)
let fi_add fi cells w id =
  let k = Array.length fi.fi_cols in
  let off = id * w in
  for j = 0 to k - 1 do
    fi.fi_probe.(j) <- Array.unsafe_get cells (off + Array.unsafe_get fi.fi_cols j)
  done;
  let b = fi_find fi cells w fi.fi_probe in
  if b.fb_n >= 0 then fb_push b id
  else begin
    if 2 * (fi.fi_n + 1) >= Array.length fi.fi_slots then fi_resize fi cells w;
    let nb = { fb_ids = Array.make 4 0; fb_n = 0 } in
    fb_push nb id;
    fi_insert_bucket fi.fi_slots (Array.length fi.fi_slots - 1) cells w fi.fi_cols k nb;
    fi.fi_n <- fi.fi_n + 1
  end

(* ------------------------------------------------------------------ *)
(* Representations                                                     *)
(* ------------------------------------------------------------------ *)

(* Row ids for one projection key, in insertion order.  A growable int
   array rather than a list: probes walk it front-to-back with no
   [List.rev] and no per-probe allocation. *)
type bucket = { mutable ids : int array; mutable n : int }

let bucket_push b id =
  let cap = Array.length b.ids in
  if b.n = cap then begin
    let nids = Array.make (if cap = 0 then 4 else 2 * cap) 0 in
    Array.blit b.ids 0 nids 0 b.n;
    b.ids <- nids
  end;
  b.ids.(b.n) <- id;
  b.n <- b.n + 1

(* A boxed index for a set of bound columns: projection of the row on
   those columns -> bucket of row ids.  [scratch] is the reusable probe
   key; it is copied only when a projection is stored for the first
   time. *)
type index = { columns : int array; buckets : bucket Row_tbl.t; scratch : Value.t array }

type boxed = {
  mutable rows : tuple array;
  mutable seen : unit Row_tbl.t;
  bindexes : (int, index) Hashtbl.t;  (* bitmask of bound columns -> index *)
}

type flat = {
  width : int;  (* = arity, > 0 *)
  mutable cells : int array;  (* row i at [i*width, (i+1)*width) *)
  mutable fseen : fseen;
  findexes : (int, findex) Hashtbl.t;  (* bitmask of bound columns -> index *)
  fscratch : int array;  (* reusable full-width encoded probe *)
}

type repr = Boxed of boxed | Flat of flat

type t = {
  rel_name : string;
  rel_arity : int;
  mutable count : int;
  mutable shared : bool;  (* rows/cells/seen shared with a copy; privatize before add *)
  mutable all_int : bool;  (* every stored row is flat-encodable *)
  mutable repr : repr;
}

let mk_boxed () = Boxed { rows = [||]; seen = Row_tbl.create 64; bindexes = Hashtbl.create 4 }

let mk_flat arity =
  Flat
    { width = arity;
      cells = [||];
      fseen = fs_create 16;
      findexes = Hashtbl.create 4;
      fscratch = Array.make arity 0 }

let create rel_name rel_arity =
  { rel_name; rel_arity; count = 0; shared = false; all_int = true; repr = mk_boxed () }

let name r = r.rel_name
let arity r = r.rel_arity
let cardinal r = r.count
let is_flat r = match r.repr with Flat _ -> true | Boxed _ -> false

let index_add idx row_id row =
  let k = Array.length idx.columns in
  for j = 0 to k - 1 do
    idx.scratch.(j) <- row.(idx.columns.(j))
  done;
  match Row_tbl.find_opt idx.buckets idx.scratch with
  | Some b -> bucket_push b row_id
  | None ->
    let b = { ids = Array.make 4 0; n = 0 } in
    bucket_push b row_id;
    Row_tbl.add idx.buckets (Array.copy idx.scratch) b

(* The row store and membership table are shared with a copy until
   either side first mutates; the frozen prefix itself never changes,
   so sharing is safe for every read path. *)
let privatize r =
  if r.shared then begin
    (match r.repr with
    | Boxed b ->
      b.rows <- Array.copy b.rows;
      b.seen <- Row_tbl.copy b.seen
    | Flat f ->
      f.cells <- Array.copy f.cells;
      f.fseen <- { fs_slots = Array.copy f.fseen.fs_slots; fs_n = f.fseen.fs_n });
    r.shared <- false
  end

let grow_boxed r b (row : tuple) =
  let cap = Array.length b.rows in
  if r.count = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nrows = Array.make ncap row in
    Array.blit b.rows 0 nrows 0 r.count;
    b.rows <- nrows
  end

let grow_flat r f =
  let w = f.width in
  let cap = Array.length f.cells in
  if (r.count * w) + w > cap then begin
    let ncap = max (16 * w) (2 * cap) in
    let ncells = Array.make ncap 0 in
    Array.blit f.cells 0 ncells 0 (r.count * w);
    f.cells <- ncells
  end

(* Decode one stored row into a fresh tuple. *)
let decode_row f i =
  let w = f.width in
  let off = i * w in
  Array.init w (fun j -> decode_cell (Array.unsafe_get f.cells (off + j)))

(* Positional read of one field of a stored row.  Allocation-free for
   boxed relations and for flat cells that hit the decode cache. *)
let read r id col =
  match r.repr with
  | Flat f -> decode_cell (Array.unsafe_get f.cells ((id * f.width) + col))
  | Boxed b -> Array.unsafe_get (Array.unsafe_get b.rows id) col

(* ---------------- promotion / demotion ---------------- *)

(* Rebuild as flat from the boxed rows.  Indexes are dropped and
   rebuilt lazily on the next probe; membership is rebuilt eagerly (see
   [fseen]). *)
let promote_now r (b : boxed) =
  let w = r.rel_arity in
  let f =
    { width = w;
      cells = Array.make (max (16 * w) (r.count * w)) 0;
      fseen = fs_create (max 16 r.count);
      findexes = Hashtbl.create 4;
      fscratch = Array.make w 0 }
  in
  for i = 0 to r.count - 1 do
    let row = b.rows.(i) in
    let off = i * w in
    for j = 0 to w - 1 do
      f.cells.(off + j) <- encode_cell row.(j)
    done;
    fs_insert f.fseen f.cells w i
  done;
  r.repr <- Flat f;
  (* the new structures are private by construction *)
  r.shared <- false

let promote r =
  (match r.repr with
  | Boxed b when r.all_int && r.rel_arity > 0 && flat_threshold () <> None -> promote_now r b
  | _ -> ());
  is_flat r

let maybe_promote r =
  match (r.repr, flat_threshold ()) with
  | Boxed b, Some th when r.all_int && r.rel_arity > 0 && r.count >= th -> promote_now r b
  | _ -> ()

(* Rebuild as boxed from the flat cells: a non-encodable row arrived,
   or a test forces the representation. *)
let demote r =
  match r.repr with
  | Boxed _ -> ()
  | Flat f ->
    let b =
      { rows = Array.make (max 16 r.count) [||];
        seen = Row_tbl.create (max 64 (2 * r.count));
        bindexes = Hashtbl.create 4 }
    in
    for i = 0 to r.count - 1 do
      let row = decode_row f i in
      b.rows.(i) <- row;
      Row_tbl.add b.seen row ()
    done;
    r.repr <- Boxed b;
    r.shared <- false

(* ---------------- add / mem ---------------- *)

let encode_probe f (row : tuple) =
  for j = 0 to f.width - 1 do
    f.fscratch.(j) <- encode_cell row.(j)
  done

let add_boxed r b row =
  if Row_tbl.mem b.seen row then false
  else begin
    (* [privatize] replaces the backing arrays inside this same [b]
       record, so the binding stays valid *)
    privatize r;
    Row_tbl.add b.seen row ();
    grow_boxed r b row;
    b.rows.(r.count) <- row;
    r.count <- r.count + 1;
    Hashtbl.iter (fun _ idx -> index_add idx (r.count - 1) row) b.bindexes;
    if not (row_encodable row 0) then r.all_int <- false;
    maybe_promote r;
    true
  end

(* The encoded candidate is in [f.fscratch]. *)
let add_flat_encoded r f =
  if fs_mem f.fseen f.cells f.width f.fscratch then false
  else begin
    privatize r;
    grow_flat r f;
    let w = f.width in
    Array.blit f.fscratch 0 f.cells (r.count * w) w;
    fs_insert f.fseen f.cells w r.count;
    (* Guarded: the iter closure would otherwise be the only per-row
       minor allocation on the bulk-load path (no indexes yet). *)
    if Hashtbl.length f.findexes > 0 then
      Hashtbl.iter (fun _ fi -> fi_add fi f.cells w r.count) f.findexes;
    r.count <- r.count + 1;
    true
  end

let add r row =
  if Array.length row <> r.rel_arity then
    invalid_arg
      (Printf.sprintf "Relation.add: %s expects arity %d, got %d" r.rel_name r.rel_arity
         (Array.length row));
  match r.repr with
  | Boxed b -> add_boxed r b row
  | Flat f ->
    if row_encodable row 0 then begin
      encode_probe f row;
      add_flat_encoded r f
    end
    else begin
      demote r;
      r.all_int <- false;
      match r.repr with Boxed b -> add_boxed r b row | Flat _ -> assert false
    end

(* Bulk-load fast path: an all-[Int] row given as raw integers.  The
   first row of an empty relation switches it to the flat
   representation immediately (no boxed warm-up), so loading allocates
   nothing per row beyond amortized store growth. *)
let add_ints r (ints : int array) =
  if Array.length ints <> r.rel_arity then
    invalid_arg
      (Printf.sprintf "Relation.add_ints: %s expects arity %d, got %d" r.rel_name r.rel_arity
         (Array.length ints));
  (match r.repr with
  | Boxed _ when r.count = 0 && r.rel_arity > 0 && flat_threshold () <> None ->
    r.repr <- mk_flat r.rel_arity
  | _ -> ());
  match r.repr with
  | Flat f ->
    for j = 0 to f.width - 1 do
      f.fscratch.(j) <- int_cell ints.(j)
    done;
    add_flat_encoded r f
  | Boxed _ -> add r (Array.map (fun i -> Value.Int i) ints)

let mem r row =
  match r.repr with
  | Boxed b -> Row_tbl.mem b.seen row
  | Flat f ->
    Array.length row = f.width
    && row_encodable row 0
    && begin
         encode_probe f row;
         fs_mem f.fseen f.cells f.width f.fscratch
       end

(* ---------------- iteration ---------------- *)

let iter r f =
  match r.repr with
  | Boxed b ->
    let rows = b.rows in
    for i = 0 to r.count - 1 do
      f (Array.unsafe_get rows i)
    done
  | Flat fl ->
    for i = 0 to r.count - 1 do
      f (decode_row fl i)
    done

let iter_from r k f =
  match r.repr with
  | Boxed b ->
    let rows = b.rows in
    for i = k to r.count - 1 do
      f (Array.unsafe_get rows i)
    done
  | Flat fl ->
    for i = k to r.count - 1 do
      f (decode_row fl i)
    done

let iter_ids r f =
  for i = 0 to r.count - 1 do
    f i
  done

(* Deletion support for incremental view maintenance: relations are
   append-only, so removing rows means rebuilding.  The survivors keep
   their relative insertion order (engines and the canonical printer
   rely on it) and the source's representation; indexes are rebuilt
   lazily on the next probe. *)
let filter r keep =
  let out = create r.rel_name r.rel_arity in
  (match r.repr with
  | Boxed b ->
    let ob = match out.repr with Boxed ob -> ob | Flat _ -> assert false in
    for i = 0 to r.count - 1 do
      let row = b.rows.(i) in
      if keep row then begin
        Row_tbl.add ob.seen row ();
        grow_boxed out ob row;
        ob.rows.(out.count) <- row;
        out.count <- out.count + 1
      end
    done;
    out.all_int <- r.all_int
  | Flat f ->
    out.repr <- mk_flat r.rel_arity;
    let og = match out.repr with Flat og -> og | Boxed _ -> assert false in
    let w = f.width in
    for i = 0 to r.count - 1 do
      if keep (decode_row f i) then begin
        grow_flat out og;
        Array.blit f.cells (i * w) og.cells (out.count * w) w;
        fs_insert og.fseen og.cells w out.count;
        out.count <- out.count + 1
      end
    done);
  out

(* Bulk append of rows [from, cardinal src) of [src] into the empty
   [dst] — the semi-naive delta publisher.  Rows of one relation are
   already distinct, so no membership probes on the way in; flat
   sources blit their cell range, boxed sources share row pointers. *)
let append_from dst src from =
  if dst.count <> 0 then invalid_arg "Relation.append_from: destination not empty";
  if dst.rel_arity <> src.rel_arity then invalid_arg "Relation.append_from: arity mismatch";
  let n = src.count - from in
  if n > 0 then begin
    match src.repr with
    | Flat f ->
      let w = f.width in
      let og =
        { width = w;
          cells = Array.make (n * w) 0;
          fseen = fs_create (max 16 n);
          findexes = Hashtbl.create 4;
          fscratch = Array.make w 0 }
      in
      Array.blit f.cells (from * w) og.cells 0 (n * w);
      for i = 0 to n - 1 do
        fs_insert og.fseen og.cells w i
      done;
      dst.repr <- Flat og;
      dst.count <- n
    | Boxed b ->
      let ob = match dst.repr with Boxed ob -> ob | Flat _ -> assert false in
      ob.rows <- Array.sub b.rows from n;
      for i = 0 to n - 1 do
        Row_tbl.add ob.seen ob.rows.(i) ()
      done;
      dst.count <- n;
      (* conservative: only gates future promotion *)
      dst.all_int <- src.all_int
  end

(* ---------------- indexes and probes ---------------- *)

let index_columns arity mask nbound =
  let columns = Array.make nbound 0 in
  let j = ref 0 in
  for c = 0 to arity - 1 do
    if mask land (1 lsl c) <> 0 then begin
      columns.(!j) <- c;
      incr j
    end
  done;
  columns

let boxed_index r b mask nbound =
  match Hashtbl.find_opt b.bindexes mask with
  | Some idx -> idx
  | None ->
    let idx =
      { columns = index_columns r.rel_arity mask nbound;
        buckets = Row_tbl.create 64;
        scratch = Array.make nbound Value.unit }
    in
    for i = 0 to r.count - 1 do
      index_add idx i b.rows.(i)
    done;
    Hashtbl.add b.bindexes mask idx;
    idx

let flat_index r f mask nbound =
  match Hashtbl.find_opt f.findexes mask with
  | Some fi -> fi
  | None ->
    let fi =
      { fi_cols = index_columns r.rel_arity mask nbound;
        fi_slots = Array.make 64 fb_null;
        fi_n = 0;
        fi_probe = Array.make nbound 0 }
    in
    for i = 0 to r.count - 1 do
      fi_add fi f.cells f.width i
    done;
    Hashtbl.add f.findexes mask fi;
    fi

let popcount mask =
  let n = ref 0 and m = ref mask in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr n
  done;
  !n

let pattern_mask r fn pattern =
  if Array.length pattern <> r.rel_arity then
    invalid_arg (Printf.sprintf "Relation.%s: bad pattern arity for %s" fn r.rel_name);
  let mask = ref 0 and nbound = ref 0 in
  for i = 0 to r.rel_arity - 1 do
    if pattern.(i) <> None then begin
      mask := !mask lor (1 lsl i);
      incr nbound
    end
  done;
  (!mask, !nbound)

(* Fill a findex probe from an option pattern; false when a bound value
   is not flat-encodable (then no flat row can match). *)
let fill_fprobe (probe : int array) (cols : int array) (pattern : Value.t option array) =
  let ok = ref true in
  let k = Array.length cols in
  let j = ref 0 in
  while !ok && !j < k do
    (match pattern.(cols.(!j)) with
    | Some v -> if cell_encodable v then probe.(!j) <- encode_cell v else ok := false
    | None -> assert false);
    incr j
  done;
  !ok

let fill_fprobe_cols (probe : int array) (cols : int array) (key : Value.t array) =
  let ok = ref true in
  let k = Array.length cols in
  let j = ref 0 in
  while !ok && !j < k do
    let v = key.(cols.(!j)) in
    if cell_encodable v then probe.(!j) <- encode_cell v else ok := false;
    incr j
  done;
  !ok

(* Bucket walks snapshot their bound before the first callback: ids
   only ever append and the bound is read once, so rows inserted by the
   callback itself are not visited. *)

let iter_matching_ids r pattern f =
  let mask, nbound = pattern_mask r "iter_matching_ids" pattern in
  if mask = 0 then iter_ids r f
  else
    match r.repr with
    | Boxed b -> (
      let idx = boxed_index r b mask nbound in
      for j = 0 to nbound - 1 do
        idx.scratch.(j) <-
          (match pattern.(idx.columns.(j)) with Some v -> v | None -> assert false)
      done;
      match Row_tbl.find_opt idx.buckets idx.scratch with
      | None -> ()
      | Some bk ->
        let ids = bk.ids and stop = bk.n - 1 in
        for i = 0 to stop do
          f (Array.unsafe_get ids i)
        done)
    | Flat fl ->
      let fi = flat_index r fl mask nbound in
      if fill_fprobe fi.fi_probe fi.fi_cols pattern then begin
        let bk = fi_find fi fl.cells fl.width fi.fi_probe in
        if bk.fb_n >= 0 then begin
          let ids = bk.fb_ids and stop = bk.fb_n - 1 in
          for i = 0 to stop do
            f (Array.unsafe_get ids i)
          done
        end
      end

let iter_matching r pattern f =
  match r.repr with
  | Boxed b -> iter_matching_ids r pattern (fun id -> f (Array.unsafe_get b.rows id))
  | Flat fl -> iter_matching_ids r pattern (fun id -> f (decode_row fl id))

(* Mask + key-buffer probes for the compiled execution path: the
   compiled chains know their bound-column masks statically, so they
   probe with a full-arity buffer (bound positions filled, the rest
   ignored) instead of an option pattern.  Index choice, bucket walk
   and snapshot semantics are identical to [iter_matching], so the
   enumeration order matches the interpreter's exactly. *)

let iter_matching_cols_ids r mask (key : Value.t array) f =
  if mask = 0 then iter_ids r f
  else
    match r.repr with
    | Boxed b -> (
      let idx = boxed_index r b mask (popcount mask) in
      let cols = idx.columns in
      for j = 0 to Array.length cols - 1 do
        idx.scratch.(j) <- key.(cols.(j))
      done;
      match Row_tbl.find_opt idx.buckets idx.scratch with
      | None -> ()
      | Some bk ->
        let ids = bk.ids and stop = bk.n - 1 in
        for i = 0 to stop do
          f (Array.unsafe_get ids i)
        done)
    | Flat fl ->
      let fi = flat_index r fl mask (popcount mask) in
      if fill_fprobe_cols fi.fi_probe fi.fi_cols key then begin
        let bk = fi_find fi fl.cells fl.width fi.fi_probe in
        if bk.fb_n >= 0 then begin
          let ids = bk.fb_ids and stop = bk.fb_n - 1 in
          for i = 0 to stop do
            f (Array.unsafe_get ids i)
          done
        end
      end

let iter_matching_cols r mask key f =
  match r.repr with
  | Boxed b -> iter_matching_cols_ids r mask key (fun id -> f (Array.unsafe_get b.rows id))
  | Flat fl -> iter_matching_cols_ids r mask key (fun id -> f (decode_row fl id))

(* Does [row] agree with [key] on every column of [mask]? *)
let rec row_matches_cols mask (key : Value.t array) (row : tuple) i =
  i = Array.length row
  || ((mask land (1 lsl i) = 0 || Value.equal key.(i) row.(i))
     && row_matches_cols mask key row (i + 1))

let rec cells_match_cols cells off w mask (iprobe : int array) i =
  i = w
  || ((mask land (1 lsl i) = 0 || Array.unsafe_get cells (off + i) = iprobe.(i))
     && cells_match_cols cells off w mask iprobe (i + 1))

(* Read-only variants for concurrent readers inside a parallel region:
   they never build or mutate an index and probe with caller-owned
   buffers instead of the relation's shared scratch.  An existing index
   is used when present, otherwise a filtered linear scan — both
   enumerate in insertion order, so the result sequence is identical
   either way.  Coordinators call [ensure_index] for the statically
   known probe masks before entering the region, making the fallback
   rare.

   [probe] must hold at least as many slots as [mask] has bits;
   [iprobe] must hold at least [arity] slots. *)
let iter_matching_cols_ro_ids r mask (key : Value.t array) (probe : Value.t array)
    (iprobe : int array) f =
  if mask = 0 then iter_ids r f
  else
    match r.repr with
    | Boxed b -> (
      match Hashtbl.find_opt b.bindexes mask with
      | Some idx -> (
        let cols = idx.columns in
        for j = 0 to Array.length cols - 1 do
          probe.(j) <- key.(cols.(j))
        done;
        match Row_tbl.find_opt idx.buckets probe with
        | None -> ()
        | Some bk ->
          let ids = bk.ids and stop = bk.n - 1 in
          for i = 0 to stop do
            f (Array.unsafe_get ids i)
          done)
      | None ->
        let rows = b.rows in
        for i = 0 to r.count - 1 do
          if row_matches_cols mask key (Array.unsafe_get rows i) 0 then f i
        done)
    | Flat fl -> (
      match Hashtbl.find_opt fl.findexes mask with
      | Some fi ->
        if fill_fprobe_cols iprobe fi.fi_cols key then begin
          (* [fi_find] only reads the first |fi_cols| slots *)
          let bk = fi_find fi fl.cells fl.width iprobe in
          if bk.fb_n >= 0 then begin
            let ids = bk.fb_ids and stop = bk.fb_n - 1 in
            for i = 0 to stop do
              f (Array.unsafe_get ids i)
            done
          end
        end
      | None ->
        (* encode the bound positions once; a non-encodable bound value
           matches no flat row *)
        let w = fl.width in
        let ok = ref true in
        for i = 0 to w - 1 do
          if mask land (1 lsl i) <> 0 then
            if cell_encodable key.(i) then iprobe.(i) <- encode_cell key.(i) else ok := false
        done;
        if !ok then begin
          let cells = fl.cells in
          for i = 0 to r.count - 1 do
            if cells_match_cols cells (i * w) w mask iprobe 0 then f i
          done
        end)

let iter_matching_cols_ro r mask key probe f =
  let iprobe = Array.make r.rel_arity 0 in
  match r.repr with
  | Boxed b ->
    iter_matching_cols_ro_ids r mask key probe iprobe (fun id ->
        f (Array.unsafe_get b.rows id))
  | Flat fl ->
    iter_matching_cols_ro_ids r mask key probe iprobe (fun id -> f (decode_row fl id))

(* Does [row] agree with every bound position of [pattern]? *)
let rec row_matches pattern (row : tuple) i =
  i = Array.length pattern
  || ((match pattern.(i) with None -> true | Some v -> Value.equal v row.(i))
     && row_matches pattern row (i + 1))

let iter_matching_ro_ids r pattern f =
  let mask, nbound = pattern_mask r "iter_matching_ro_ids" pattern in
  if mask = 0 then iter_ids r f
  else
    match r.repr with
    | Boxed b -> (
      match Hashtbl.find_opt b.bindexes mask with
      | Some idx -> (
        let key = Array.make nbound Value.unit in
        for j = 0 to nbound - 1 do
          key.(j) <-
            (match pattern.(idx.columns.(j)) with Some v -> v | None -> assert false)
        done;
        match Row_tbl.find_opt idx.buckets key with
        | None -> ()
        | Some bk ->
          let ids = bk.ids and stop = bk.n - 1 in
          for i = 0 to stop do
            f (Array.unsafe_get ids i)
          done)
      | None ->
        let rows = b.rows in
        for i = 0 to r.count - 1 do
          if row_matches pattern (Array.unsafe_get rows i) 0 then f i
        done)
    | Flat fl -> (
      match Hashtbl.find_opt fl.findexes mask with
      | Some fi ->
        let iprobe = Array.make nbound 0 in
        if fill_fprobe iprobe fi.fi_cols pattern then begin
          let bk = fi_find fi fl.cells fl.width iprobe in
          if bk.fb_n >= 0 then begin
            let ids = bk.fb_ids and stop = bk.fb_n - 1 in
            for i = 0 to stop do
              f (Array.unsafe_get ids i)
            done
          end
        end
      | None ->
        let w = fl.width in
        let iprobe = Array.make w 0 in
        let ok = ref true in
        for i = 0 to w - 1 do
          match pattern.(i) with
          | None -> ()
          | Some v -> if cell_encodable v then iprobe.(i) <- encode_cell v else ok := false
        done;
        if !ok then begin
          let cells = fl.cells in
          for i = 0 to r.count - 1 do
            if cells_match_cols cells (i * w) w mask iprobe 0 then f i
          done
        end)

let iter_matching_ro r pattern f =
  match r.repr with
  | Boxed b -> iter_matching_ro_ids r pattern (fun id -> f (Array.unsafe_get b.rows id))
  | Flat fl -> iter_matching_ro_ids r pattern (fun id -> f (decode_row fl id))

let ensure_index r mask =
  if mask <> 0 then begin
    let nbound = popcount mask in
    match r.repr with
    | Boxed b -> ignore (boxed_index r b mask nbound)
    | Flat f -> ignore (flat_index r f mask nbound)
  end

(* ------------------------------------------------------------------ *)
(* Slices: sharded enumeration of a matched row set                    *)
(* ------------------------------------------------------------------ *)

(* A frozen description of the rows matching a pattern, splittable into
   contiguous ranges for the domain pool.  Built by the sequential
   coordinator (which may create the index); iterated concurrently by
   shards, each over its own [lo, hi) range, touching nothing mutable.
   The ids array and its bound are captured at build time, so later
   appends by the coordinator are invisible. *)
type slice = { sl_rel : t; sl_ids : int array option; sl_len : int }

let matched_bucket r pattern mask nbound =
  match r.repr with
  | Boxed b -> (
    let idx = boxed_index r b mask nbound in
    for j = 0 to nbound - 1 do
      idx.scratch.(j) <-
        (match pattern.(idx.columns.(j)) with Some v -> v | None -> assert false)
    done;
    match Row_tbl.find_opt idx.buckets idx.scratch with
    | None -> None
    | Some bk -> Some (bk.ids, bk.n))
  | Flat fl ->
    let fi = flat_index r fl mask nbound in
    if fill_fprobe fi.fi_probe fi.fi_cols pattern then begin
      let bk = fi_find fi fl.cells fl.width fi.fi_probe in
      if bk.fb_n >= 0 then Some (bk.fb_ids, bk.fb_n) else None
    end
    else None

let slice r pattern =
  let mask, nbound = pattern_mask r "slice" pattern in
  if mask = 0 then { sl_rel = r; sl_ids = None; sl_len = r.count }
  else
    match matched_bucket r pattern mask nbound with
    | None -> { sl_rel = r; sl_ids = None; sl_len = 0 }
    | Some (ids, n) -> { sl_rel = r; sl_ids = Some ids; sl_len = n }

let slice_cols r mask (key : Value.t array) =
  if mask = 0 then { sl_rel = r; sl_ids = None; sl_len = r.count }
  else
    match r.repr with
    | Boxed b -> (
      let idx = boxed_index r b mask (popcount mask) in
      let cols = idx.columns in
      for j = 0 to Array.length cols - 1 do
        idx.scratch.(j) <- key.(cols.(j))
      done;
      match Row_tbl.find_opt idx.buckets idx.scratch with
      | None -> { sl_rel = r; sl_ids = None; sl_len = 0 }
      | Some bk -> { sl_rel = r; sl_ids = Some bk.ids; sl_len = bk.n })
    | Flat fl ->
      let fi = flat_index r fl mask (popcount mask) in
      if fill_fprobe_cols fi.fi_probe fi.fi_cols key then begin
        let bk = fi_find fi fl.cells fl.width fi.fi_probe in
        if bk.fb_n >= 0 then { sl_rel = r; sl_ids = Some bk.fb_ids; sl_len = bk.fb_n }
        else { sl_rel = r; sl_ids = None; sl_len = 0 }
      end
      else { sl_rel = r; sl_ids = None; sl_len = 0 }

let slice_len sl = sl.sl_len
let slice_rel sl = sl.sl_rel

let slice_iter_ids sl lo hi f =
  let hi = min hi sl.sl_len in
  match sl.sl_ids with
  | None ->
    for i = lo to hi - 1 do
      f i
    done
  | Some ids ->
    for i = lo to hi - 1 do
      f (Array.unsafe_get ids i)
    done

let slice_iter sl lo hi f =
  match sl.sl_rel.repr with
  | Boxed b -> slice_iter_ids sl lo hi (fun id -> f (Array.unsafe_get b.rows id))
  | Flat fl -> slice_iter_ids sl lo hi (fun id -> f (decode_row fl id))

let fold r ~init ~f =
  let acc = ref init in
  iter r (fun row -> acc := f !acc row);
  !acc

let to_list r = List.rev (fold r ~init:[] ~f:(fun acc row -> row :: acc))

let copy r =
  r.shared <- true;
  { rel_name = r.rel_name;
    rel_arity = r.rel_arity;
    count = r.count;
    shared = true;
    all_int = r.all_int;
    repr =
      (* the big structures are shared until either side mutates;
         indexes are rebuilt lazily and never shared *)
      (match r.repr with
      | Boxed b -> Boxed { rows = b.rows; seen = b.seen; bindexes = Hashtbl.create 4 }
      | Flat f ->
        Flat
          { width = f.width;
            cells = f.cells;
            fseen = f.fseen;
            findexes = Hashtbl.create 4;
            fscratch = Array.make f.width 0 }) }

(* ------------------------------------------------------------------ *)
(* Statistics and raw access                                           *)
(* ------------------------------------------------------------------ *)

(* Distinct cells of one column of a flat store, via a private
   open-addressing int set sized up front.  [min_int] marks an empty
   slot: it can never be a cell ([Int (-2^61)] is outside the encodable
   range and sym ids are non-negative). *)
let distinct_cells cells n w c =
  let cap = ref 64 in
  while !cap < 2 * n do
    cap := 2 * !cap
  done;
  let slots = Array.make !cap min_int in
  let mask = !cap - 1 in
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    let cell = Array.unsafe_get cells ((i * w) + c) in
    let j = ref (mix 17 cell land max_int land mask) in
    let stop = ref false in
    while not !stop do
      let v = Array.unsafe_get slots !j in
      if v = min_int then begin
        Array.unsafe_set slots !j cell;
        incr distinct;
        stop := true
      end
      else if v = cell then stop := true
      else j := (!j + 1) land mask
    done
  done;
  !distinct

(* Per-column distinct counts for the cost-based planner.  Flat
   relations count raw cells with no boxing; boxed relations fall back
   to value sets. *)
let distinct_counts r =
  let w = r.rel_arity in
  match r.repr with
  | Flat f ->
    Array.init w (fun c -> if r.count = 0 then 0 else distinct_cells f.cells r.count w c)
  | Boxed b ->
    let sets = Array.make w Value.Set.empty in
    for i = 0 to r.count - 1 do
      let row = b.rows.(i) in
      for c = 0 to w - 1 do
        sets.(c) <- Value.Set.add row.(c) sets.(c)
      done
    done;
    Array.map Value.Set.cardinal sets

(* Raw cell access for the snapshot codec: the live flat store (its
   length may exceed count * arity).  Callers must not mutate it. *)
let flat_cells r = match r.repr with Flat f -> Some f.cells | Boxed _ -> None

(* Rebuild a relation from a decoded cell blob — the snapshot restore
   path.  Takes ownership of [cells]; membership is rebuilt (one hash
   insert per row), indexes stay lazy. *)
let of_flat_cells rel_name rel_arity (cells : int array) count =
  if rel_arity <= 0 then invalid_arg "Relation.of_flat_cells: arity must be positive";
  if Array.length cells < count * rel_arity then
    invalid_arg "Relation.of_flat_cells: cell array too short";
  let f =
    { width = rel_arity;
      cells;
      fseen = fs_create (max 16 count);
      findexes = Hashtbl.create 4;
      fscratch = Array.make rel_arity 0 }
  in
  for i = 0 to count - 1 do
    fs_insert f.fseen f.cells rel_arity i
  done;
  { rel_name; rel_arity; count; shared = false; all_int = true; repr = Flat f }
