(* The resource governor threaded through every fixpoint loop.  Budget
   counters are plain integer compares; the wall clock and the
   cancellation token are polled on step ticks and otherwise every
   [poll_interval] events, so the hot derivation paths pay one branch
   when unlimited and a handful of integer operations when governed. *)

type violation = Deadline | Max_facts | Max_steps | Max_candidates | Cancelled

exception Exhausted of violation

type fault = Trip of violation | Raise of exn

type t = {
  limited : bool;  (* false only for [unlimited]: ticks are one branch *)
  started : float;
  deadline : float option;
  max_facts : int;
  max_steps : int;
  max_candidates : int;
  cancel : bool ref;
  mutable facts : int;
  mutable steps : int;
  mutable candidates : int;
  mutable countdown : int;  (* events until the next clock/token poll *)
  mutable active : string option;
  mutable fault : (int * fault) option;
}

let poll_interval = 256

let make limited ~deadline ~max_facts ~max_steps ~max_candidates ~cancel =
  { limited;
    started = Unix.gettimeofday ();
    deadline;
    max_facts;
    max_steps;
    max_candidates;
    cancel;
    facts = 0;
    steps = 0;
    candidates = 0;
    countdown = poll_interval;
    active = None;
    fault = None }

let unlimited =
  make false ~deadline:None ~max_facts:max_int ~max_steps:max_int
    ~max_candidates:max_int ~cancel:(ref false)

let create ?timeout_s ?max_facts ?max_steps ?max_candidates ?cancel () =
  let bound = function Some n -> n | None -> max_int in
  let t =
    make true ~deadline:None ~max_facts:(bound max_facts) ~max_steps:(bound max_steps)
      ~max_candidates:(bound max_candidates)
      ~cancel:(match cancel with Some r -> r | None -> ref false)
  in
  match timeout_s with
  | None -> t
  | Some s -> { t with deadline = Some (t.started +. s) }

let is_unlimited t = not t.limited

let set_active t label = if t.limited then t.active <- Some label

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let check_clock_and_token t =
  if !(t.cancel) then raise (Exhausted Cancelled);
  match t.deadline with
  | Some d when Unix.gettimeofday () >= d -> raise (Exhausted Deadline)
  | _ -> ()

let check_now t = if t.limited then check_clock_and_token t

let poll t =
  if t.limited then begin
    t.countdown <- t.countdown - 1;
    if t.countdown <= 0 then begin
      t.countdown <- poll_interval;
      check_clock_and_token t
    end
  end

let fire_fault t =
  match t.fault with
  | Some (k, f) when t.facts >= k ->
    t.fault <- None;
    (match f with Trip v -> raise (Exhausted v) | Raise e -> raise e)
  | _ -> ()

let tick_derived t n =
  if t.limited && n > 0 then begin
    t.facts <- t.facts + n;
    if t.fault <> None then fire_fault t;
    if t.facts > t.max_facts then raise (Exhausted Max_facts);
    poll t
  end

let tick_step t =
  if t.limited then begin
    t.steps <- t.steps + 1;
    if t.steps > t.max_steps then raise (Exhausted Max_steps);
    check_clock_and_token t
  end

let tick_candidates t n =
  if t.limited && n > 0 then begin
    t.candidates <- t.candidates + n;
    if t.candidates > t.max_candidates then raise (Exhausted Max_candidates);
    poll t
  end

let fault_at t ~k f = if t.limited then t.fault <- Some (k, f)

(* ------------------------------------------------------------------ *)
(* Outcomes and diagnostics                                            *)
(* ------------------------------------------------------------------ *)

type diagnostics = {
  violated : violation;
  active : string option;
  elapsed_s : float;
  facts : int;
  steps : int;
  candidates : int;
  max_queue : int;
}

type 'a outcome = Complete of 'a | Partial of 'a * diagnostics

let value = function Complete x -> x | Partial (x, _) -> x

let diagnostics ?(telemetry = Telemetry.none) (t : t) violated =
  let max_queue =
    List.fold_left
      (fun acc (_, rc) -> max acc rc.Telemetry.max_queue)
      0 (Telemetry.rules telemetry)
  in
  { violated;
    active = t.active;
    elapsed_s = Unix.gettimeofday () -. t.started;
    facts = t.facts;
    steps = t.steps;
    candidates = t.candidates;
    max_queue }

let govern ?telemetry t ~partial f =
  match
    check_now t;
    f ()
  with
  | x -> Complete x
  | exception Exhausted v -> Partial (partial (), diagnostics ?telemetry t v)

let violation_to_string = function
  | Deadline -> "wall-clock deadline"
  | Max_facts -> "max-facts budget"
  | Max_steps -> "max-steps budget"
  | Max_candidates -> "max-candidates budget"
  | Cancelled -> "cancelled"

let pp_diagnostics ppf d =
  Format.fprintf ppf "resource limit hit: %s@." (violation_to_string d.violated);
  (match d.active with
  | Some label -> Format.fprintf ppf "  active: %s@." label
  | None -> ());
  Format.fprintf ppf
    "  elapsed %.3fs; facts derived %d; steps %d; candidates examined %d; max queue %d@."
    d.elapsed_s d.facts d.steps d.candidates d.max_queue
