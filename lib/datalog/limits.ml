(* The resource governor threaded through every fixpoint loop.  Budget
   counters are atomic integer updates; the wall clock and the
   cancellation token are polled on step ticks and otherwise every
   [poll_interval] events, so the hot derivation paths pay one branch
   when unlimited and a handful of integer operations when governed.

   One governor may be ticked from several domains at once during
   data-parallel saturation (Par): the counters are [Atomic.t], and a
   budget trip in any shard publishes the violation through [tripped],
   which every other shard observes at its next poll — so all shards
   abort within one poll interval and the merge never happens, keeping
   the Partial database consistent. *)

type violation = Deadline | Max_facts | Max_steps | Max_candidates | Cancelled

exception Exhausted of violation

type fault = Trip of violation | Raise of exn

type t = {
  limited : bool;  (* false only for [unlimited]: ticks are one branch *)
  started : float;
  deadline : float option;
  max_facts : int;
  max_steps : int;
  max_candidates : int;
  cancel : bool ref;
  facts : int Atomic.t;
  steps : int Atomic.t;
  candidates : int Atomic.t;
  countdown : int Atomic.t;  (* events until the next clock/token poll *)
  tripped : violation option Atomic.t;  (* cross-shard abort broadcast *)
  mutable active : string option;
  mutable fault : (int * fault) option;
}

let poll_interval = 256

let make limited ~deadline ~max_facts ~max_steps ~max_candidates ~cancel =
  { limited;
    started = Unix.gettimeofday ();
    deadline;
    max_facts;
    max_steps;
    max_candidates;
    cancel;
    facts = Atomic.make 0;
    steps = Atomic.make 0;
    candidates = Atomic.make 0;
    countdown = Atomic.make poll_interval;
    tripped = Atomic.make None;
    active = None;
    fault = None }

let unlimited =
  make false ~deadline:None ~max_facts:max_int ~max_steps:max_int
    ~max_candidates:max_int ~cancel:(ref false)

let create ?timeout_s ?max_facts ?max_steps ?max_candidates ?cancel () =
  let bound = function Some n -> n | None -> max_int in
  let t =
    make true ~deadline:None ~max_facts:(bound max_facts) ~max_steps:(bound max_steps)
      ~max_candidates:(bound max_candidates)
      ~cancel:(match cancel with Some r -> r | None -> ref false)
  in
  match timeout_s with
  | None -> t
  | Some s -> { t with deadline = Some (t.started +. s) }

let is_unlimited t = not t.limited

let set_active t label = if t.limited then t.active <- Some label

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let trip t v =
  Atomic.set t.tripped (Some v);
  raise (Exhausted v)

let check_clock_and_token t =
  (match Atomic.get t.tripped with Some v -> raise (Exhausted v) | None -> ());
  if !(t.cancel) then trip t Cancelled;
  match t.deadline with
  | Some d when Unix.gettimeofday () >= d -> trip t Deadline
  | _ -> ()

let check_now t = if t.limited then check_clock_and_token t

let poll t =
  if t.limited then
    if Atomic.fetch_and_add t.countdown (-1) <= 1 then begin
      Atomic.set t.countdown poll_interval;
      check_clock_and_token t
    end

let fire_fault t =
  match t.fault with
  | Some (k, f) when Atomic.get t.facts >= k ->
    t.fault <- None;
    (match f with Trip v -> trip t v | Raise e -> raise e)
  | _ -> ()

let tick_derived t n =
  if t.limited && n > 0 then begin
    let facts = Atomic.fetch_and_add t.facts n + n in
    if t.fault <> None then fire_fault t;
    if facts > t.max_facts then trip t Max_facts;
    poll t
  end

let tick_step t =
  if t.limited then begin
    if Atomic.fetch_and_add t.steps 1 + 1 > t.max_steps then trip t Max_steps;
    check_clock_and_token t
  end

let tick_candidates t n =
  if t.limited && n > 0 then begin
    if Atomic.fetch_and_add t.candidates n + n > t.max_candidates then
      trip t Max_candidates;
    poll t
  end

let fault_at t ~k f = if t.limited then t.fault <- Some (k, f)

(* ------------------------------------------------------------------ *)
(* Outcomes and diagnostics                                            *)
(* ------------------------------------------------------------------ *)

type diagnostics = {
  violated : violation;
  active : string option;
  elapsed_s : float;
  facts : int;
  steps : int;
  candidates : int;
  max_queue : int;
}

type 'a outcome = Complete of 'a | Partial of 'a * diagnostics

let value = function Complete x -> x | Partial (x, _) -> x

let diagnostics ?(telemetry = Telemetry.none) (t : t) violated =
  let max_queue =
    List.fold_left
      (fun acc (_, rc) -> max acc rc.Telemetry.max_queue)
      0 (Telemetry.rules telemetry)
  in
  { violated;
    active = t.active;
    elapsed_s = Unix.gettimeofday () -. t.started;
    facts = Atomic.get t.facts;
    steps = Atomic.get t.steps;
    candidates = Atomic.get t.candidates;
    max_queue }

let govern ?telemetry t ~partial f =
  match
    check_now t;
    f ()
  with
  | x -> Complete x
  | exception Exhausted v ->
    (* reset the broadcast so the governor (and its cancel token) can be
       reused after a partial outcome *)
    Atomic.set t.tripped None;
    Partial (partial (), diagnostics ?telemetry t v)

let violation_to_string = function
  | Deadline -> "wall-clock deadline"
  | Max_facts -> "max-facts budget"
  | Max_steps -> "max-steps budget"
  | Max_candidates -> "max-candidates budget"
  | Cancelled -> "cancelled"

let pp_diagnostics ppf d =
  Format.fprintf ppf "resource limit hit: %s@." (violation_to_string d.violated);
  (match d.active with
  | Some label -> Format.fprintf ppf "  active: %s@." label
  | None -> ());
  Format.fprintf ppf
    "  elapsed %.3fs; facts derived %d; steps %d; candidates examined %d; max queue %d@."
    d.elapsed_s d.facts d.steps d.candidates d.max_queue
