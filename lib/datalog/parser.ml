open Ast

exception Error of string * Lexer.pos

(* For failures with no meaningful source location (e.g. clause-count
   mismatches); renderers omit positions with line 0. *)
let nowhere = { Lexer.line = 0; col = 0 }

type state = { mutable toks : (Lexer.token * Lexer.pos) list }

let fail_at (pos : Lexer.pos) msg = raise (Error (msg, pos))

let peek st = match st.toks with [] -> (Lexer.EOF, { Lexer.line = 0; col = 0 }) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let t, pos = peek st in
  if t = tok then advance st
  else
    fail_at pos
      (Printf.sprintf "expected '%s' but found '%s'" (Lexer.token_to_string tok)
         (Lexer.token_to_string t))

let reserved = [ "choice"; "least"; "most"; "next"; "max"; "min"; "count"; "sum" ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st =
  let lhs = parse_addend st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match fst (peek st) with
  | Lexer.PLUS ->
    advance st;
    let rhs = parse_addend st in
    parse_expr_rest st (Binop (Add, lhs, rhs))
  | Lexer.MINUS ->
    advance st;
    let rhs = parse_addend st in
    parse_expr_rest st (Binop (Sub, lhs, rhs))
  | _ -> lhs

and parse_addend st =
  let lhs = parse_factor st in
  parse_addend_rest st lhs

and parse_addend_rest st lhs =
  match fst (peek st) with
  | Lexer.STAR ->
    advance st;
    let rhs = parse_factor st in
    parse_addend_rest st (Binop (Mul, lhs, rhs))
  | _ -> lhs

and parse_factor st =
  let t, pos = peek st in
  match t with
  | Lexer.INT n ->
    advance st;
    Cst (Value.Int n)
  | Lexer.MINUS ->
    (* Unary minus: a negative literal or a negated term. *)
    advance st;
    (match parse_factor st with
    | Cst (Value.Int n) -> Cst (Value.Int (-n))
    | t -> Binop (Sub, Cst (Value.Int 0), t))
  | Lexer.STRING s ->
    advance st;
    Cst (Value.str s)
  | Lexer.UIDENT v ->
    advance st;
    Var v
  | Lexer.UNDERSCORE ->
    advance st;
    Var (Ast.fresh_var ())
  | Lexer.LIDENT f when (f = "max" || f = "min") && fst (peek { toks = List.tl st.toks }) = Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let a = parse_expr st in
    expect st Lexer.COMMA;
    let b = parse_expr st in
    expect st Lexer.RPAREN;
    Binop ((if f = "max" then Max else Min), a, b)
  | Lexer.LIDENT f ->
    advance st;
    if fst (peek st) = Lexer.LPAREN then begin
      if List.mem f reserved then fail_at pos (Printf.sprintf "'%s' cannot be used as a term" f);
      advance st;
      let args = parse_expr_list st in
      expect st Lexer.RPAREN;
      Cmp (f, args)
    end
    else Cst (Value.sym f)
  | Lexer.LPAREN ->
    advance st;
    if fst (peek st) = Lexer.RPAREN then begin
      advance st;
      Cst Value.unit
    end
    else begin
      let first = parse_expr st in
      match fst (peek st) with
      | Lexer.COMMA ->
        advance st;
        let rest = parse_expr_list st in
        expect st Lexer.RPAREN;
        Cmp ("", first :: rest)
      | _ ->
        expect st Lexer.RPAREN;
        first
    end
  | tok -> fail_at pos (Printf.sprintf "unexpected token '%s'" (Lexer.token_to_string tok))

and parse_expr_list st =
  let first = parse_expr st in
  if fst (peek st) = Lexer.COMMA then begin
    advance st;
    first :: parse_expr_list st
  end
  else [ first ]

(* A group is the argument form used by [choice]/[least]/[most]:
   either a parenthesized (possibly empty) list or a single term. *)
let parse_group st =
  match fst (peek st) with
  | Lexer.LPAREN ->
    advance st;
    if fst (peek st) = Lexer.RPAREN then begin
      advance st;
      []
    end
    else begin
      let args = parse_expr_list st in
      expect st Lexer.RPAREN;
      args
    end
  | _ -> [ parse_expr st ]

(* ------------------------------------------------------------------ *)
(* Literals and clauses                                                *)
(* ------------------------------------------------------------------ *)

let cmp_of_token = function
  | Lexer.LT -> Some Lt
  | Lexer.LE -> Some Le
  | Lexer.GT -> Some Gt
  | Lexer.GE -> Some Ge
  | Lexer.EQ -> Some Eq
  | Lexer.NE -> Some Ne
  | _ -> None

let term_to_atom pos t =
  match t with
  | Cst (Value.Sym p) -> { pred = Value.resolve p; args = [] }
  | Cmp (p, args) when p <> "" -> { pred = p; args }
  | _ -> fail_at pos "expected a predicate atom"

let parse_literal st =
  let t, pos = peek st in
  match t with
  | Lexer.NOT ->
    advance st;
    let pos' = snd (peek st) in
    Neg (term_to_atom pos' (parse_factor st))
  | Lexer.LIDENT "choice" ->
    advance st;
    expect st Lexer.LPAREN;
    let left = parse_group st in
    expect st Lexer.COMMA;
    let right = parse_group st in
    expect st Lexer.RPAREN;
    Choice (left, right)
  | Lexer.LIDENT (("least" | "most") as which) ->
    advance st;
    expect st Lexer.LPAREN;
    let cost = parse_expr st in
    let keys =
      if fst (peek st) = Lexer.COMMA then begin
        advance st;
        parse_group st
      end
      else []
    in
    expect st Lexer.RPAREN;
    if which = "least" then Least (cost, keys) else Most (cost, keys)
  | Lexer.LIDENT (("count" | "sum") as which) ->
    advance st;
    expect st Lexer.LPAREN;
    let out, pos' = peek st in
    let out =
      match out with
      | Lexer.UIDENT name ->
        advance st;
        name
      | _ -> fail_at pos' (which ^ "(..) expects an output variable first")
    in
    expect st Lexer.COMMA;
    let counted = parse_expr st in
    let keys =
      if fst (peek st) = Lexer.COMMA then begin
        advance st;
        parse_group st
      end
      else []
    in
    expect st Lexer.RPAREN;
    Agg ((if which = "count" then Count else Sum), out, counted, keys)
  | Lexer.LIDENT "next" ->
    advance st;
    expect st Lexer.LPAREN;
    let v, pos' = peek st in
    (match v with
    | Lexer.UIDENT name ->
      advance st;
      expect st Lexer.RPAREN;
      Next name
    | _ -> fail_at pos' "next(..) expects a variable")
  | _ ->
    let lhs = parse_expr st in
    (match cmp_of_token (fst (peek st)) with
    | Some op ->
      advance st;
      let rhs = parse_expr st in
      Rel (op, lhs, rhs)
    | None -> Pos (term_to_atom pos lhs))

let rec parse_literals st =
  let first = parse_literal st in
  if fst (peek st) = Lexer.COMMA then begin
    advance st;
    first :: parse_literals st
  end
  else [ first ]

let parse_clause st =
  let _, pos = peek st in
  let head = term_to_atom pos (parse_expr st) in
  let body =
    if fst (peek st) = Lexer.ARROW then begin
      advance st;
      parse_literals st
    end
    else []
  in
  expect st Lexer.DOT;
  { head; body }

let wrap_lex f src =
  match f src with
  | exception Lexer.Error (msg, pos) -> raise (Error ("lexical error: " ^ msg, pos))
  | x -> x

let parse_program src =
  let st = { toks = wrap_lex Lexer.tokenize src } in
  let rec go acc =
    if fst (peek st) = Lexer.EOF then List.rev acc else go (parse_clause st :: acc)
  in
  go []

let parse_rule src =
  let src = String.trim src in
  let src = if String.length src > 0 && src.[String.length src - 1] = '.' then src else src ^ "." in
  match parse_program src with
  | [ r ] -> r
  | rs ->
    raise (Error (Printf.sprintf "expected a single clause, found %d" (List.length rs), nowhere))

let parse_term src =
  let st = { toks = wrap_lex Lexer.tokenize src } in
  let t = parse_expr st in
  expect st Lexer.EOF;
  t
