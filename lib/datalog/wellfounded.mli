(** Well-founded semantics (Van Gelder–Ross–Schlipf, the paper's [11])
    via the alternating fixpoint.

    [Gamma(I)] is the least model of the Gelfond–Lifschitz reduct with
    respect to [I]; it is antimonotone, so its square is monotone and
    the alternation [K := Gamma(U); U := Gamma(K)] converges to the
    well-founded model: [K] holds the true atoms, [U] the possible ones
    (true or undefined), and everything outside [U] is false.

    The paper leans on two facts this module lets the tests observe
    directly: locally stratified programs have a total well-founded
    model that coincides with their unique stable model, while choice
    programs — once rewritten into negation — are {e deliberately}
    non-stratified: the well-founded semantics leaves every genuine
    choice undefined, and the stable models (one per choice) each live
    between [true_facts] and [possible].

    Programs must be flat (apply {!Rewrite.expand_all} first). *)

type t = {
  true_facts : Database.t;  (** atoms true in the well-founded model *)
  possible : Database.t;  (** atoms true or undefined *)
}

val compute : ?limits:Limits.t -> ?edb:Database.t -> ?max_rounds:int -> Ast.program -> t
(** Alternating fixpoint.  [max_rounds] (default 1000) is a safety
    bound; the alternation converges in at most [|Herbrand base|]
    rounds.  The [limits] governor ticks one step per alternation round
    and governs the inner least-model computations.
    @raise Invalid_argument on non-flat programs or non-convergence.
    @raise Limits.Exhausted when [limits] trips a budget. *)

val is_total : t -> bool
(** No undefined atoms: [true_facts = possible]. *)

val undefined : t -> (string * Value.t array) list
(** The undefined atoms ([possible] minus [true_facts]). *)

val agrees_with_stable : t -> Database.t -> bool
(** [agrees_with_stable wf m]: does the candidate stable model [m]
    lie between [true_facts] and [possible]?  (A property every stable
    model must satisfy.) *)
