type token =
  | LIDENT of string
  | UIDENT of string
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW
  | NOT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | PLUS
  | MINUS
  | STAR
  | UNDERSCORE
  | EOF

type pos = { line : int; col : int }

exception Error of string * pos

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_digit c || is_lower c || is_upper c || c = '_' || c = '\''

type state = { src : string; mutable i : int; mutable line : int; mutable col : int }

let peek st = if st.i < String.length st.src then Some st.src.[st.i] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.i <- st.i + 1

let here st = { line = st.line; col = st.col }

let error st msg = raise (Error (msg, here st))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some ('%' | '#') ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.i in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  (* Canonicalize through the interner: every occurrence of an
     identifier in a token stream shares one string. *)
  Interner.canonical (String.sub st.src start (st.i - start))

let lex_int st =
  let start = st.i in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  int_of_string (String.sub st.src start (st.i - start))

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some c -> Buffer.add_char buf c
      | None -> error st "unterminated escape");
      advance st;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st =
  skip_ws st;
  let pos = here st in
  let tok =
    match peek st with
    | None -> EOF
    | Some c when is_digit c -> INT (lex_int st)
    | Some c when is_lower c ->
      let id = lex_ident st in
      if id = "not" then NOT else LIDENT id
    | Some c when is_upper c -> UIDENT (lex_ident st)
    | Some '_' ->
      let id = lex_ident st in
      if id = "_" then UNDERSCORE else UIDENT id
    | Some '"' -> STRING (lex_string st)
    | Some '(' ->
      advance st;
      LPAREN
    | Some ')' ->
      advance st;
      RPAREN
    | Some ',' ->
      advance st;
      COMMA
    | Some '.' ->
      advance st;
      DOT
    | Some '+' ->
      advance st;
      PLUS
    | Some '-' ->
      advance st;
      MINUS
    | Some '*' ->
      advance st;
      STAR
    | Some '~' ->
      advance st;
      NOT
    | Some '=' ->
      advance st;
      EQ
    | Some '!' ->
      advance st;
      (match peek st with
      | Some '=' ->
        advance st;
        NE
      | _ -> error st "expected '=' after '!'")
    | Some '<' ->
      advance st;
      (match peek st with
      | Some '-' ->
        advance st;
        ARROW
      | Some '=' ->
        advance st;
        LE
      | Some '>' ->
        advance st;
        NE
      | _ -> LT)
    | Some '>' ->
      advance st;
      (match peek st with
      | Some '=' ->
        advance st;
        GE
      | _ -> GT)
    | Some ':' ->
      advance st;
      (match peek st with
      | Some '-' ->
        advance st;
        ARROW
      | _ -> error st "expected '-' after ':'")
    | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  in
  (tok, pos)

let tokenize src =
  let st = { src; i = 0; line = 1; col = 1 } in
  let rec go acc =
    let ((tok, _) as t) = next_token st in
    if tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []

let token_to_string = function
  | LIDENT s -> s
  | UIDENT s -> s
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> "<-"
  | NOT -> "not"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "="
  | NE -> "!="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | UNDERSCORE -> "_"
  | EOF -> "<eof>"
