(** The resource governor: budgets and cancellation for every fixpoint
    loop.

    Theorem 2 guarantees polynomial termination only for the
    stage-stratified fragment; outside it (and on adversarial inputs —
    successor-term generators, exponential joins, runaway recursion)
    the saturation loops of {!Naive}, {!Seminaive}, {!Choice_fixpoint},
    {!Stage_engine}, {!Stable} and {!Wellfounded} are unbounded.  A
    [Limits.t] carries the budgets and a polled cancellation token; the
    engines tick it as they derive, and when any budget is exhausted
    evaluation exits through a single structured path — the internal
    {!Exhausted} exception — which the governed entry points
    ([run_governed] on each engine, {!govern} here) convert into a
    {!Partial} outcome carrying the database built so far and a
    {!diagnostics} snapshot.

    The engines only ever add facts that are genuinely derivable and
    every database mutation is atomic per fact, so a partial database
    interrupted at any tick is a consistent under-approximation of the
    model.

    The default {!unlimited} instance is shared and permanently
    disabled: every tick costs one branch and no allocation, mirroring
    {!Telemetry.none}.

    A governor is domain-safe: during data-parallel saturation
    ({!Par}) every shard ticks the same [t] — the counters are atomic,
    and a budget trip in any shard is broadcast so the others abort at
    their next poll, before any merge into the database. *)

type violation =
  | Deadline  (** wall-clock deadline passed *)
  | Max_facts  (** derived-fact budget exhausted *)
  | Max_steps  (** iteration / gamma-firing budget exhausted *)
  | Max_candidates  (** choice-candidate examination budget exhausted *)
  | Cancelled  (** the cancellation token was set *)

exception Exhausted of violation
(** The single structured exit path out of a governed fixpoint loop.
    Raised by the tick functions below; engine drivers catch it at the
    [run_governed] boundary (via {!govern}) and never let it escape to
    callers of the governed entry points.  Ungoverned entry points that
    accept a [?limits] argument document that they may raise it. *)

type t

val unlimited : t
(** The shared disabled governor — the default of every engine entry
    point.  Never trips. *)

val create :
  ?timeout_s:float ->
  ?max_facts:int ->
  ?max_steps:int ->
  ?max_candidates:int ->
  ?cancel:bool ref ->
  unit ->
  t
(** A fresh governor.  [timeout_s] is a relative wall-clock deadline
    measured from this call ([0.] fails fast: the first check trips
    before any iteration runs).  [max_facts] bounds facts derived by
    rules (loaded EDB facts are not counted), [max_steps] bounds
    fixpoint iterations plus gamma firings, [max_candidates] bounds
    choice-candidate examinations.  [cancel] is a polled token: setting
    it to [true] (e.g. from a signal handler) stops the run at the next
    check with {!Cancelled}. *)

val is_unlimited : t -> bool

(** {2 Engine-facing ticks}

    Budget-counter updates are exact integer compares on every call;
    the clock and the cancellation token are polled on every
    {!tick_step} and otherwise amortized (once every 256 ticks), so a
    hot derivation loop pays one branch per event. *)

val set_active : t -> string -> unit
(** Record the stratum/rule label currently evaluating, for the
    diagnostics snapshot.  O(1), no allocation. *)

val tick_derived : t -> int -> unit
(** [n] more facts were derived.  Also drives the fault hook. *)

val tick_step : t -> unit
(** One fixpoint iteration or gamma firing; polls clock and token. *)

val tick_candidates : t -> int -> unit
(** [n] more choice candidates were examined. *)

val poll : t -> unit
(** Amortized clock/token check for hot enumeration callbacks that
    derive nothing (e.g. solutions rejected by a filter). *)

val check_now : t -> unit
(** Unconditional clock/token check — loop heads and entry points. *)

(** {2 Outcomes and diagnostics} *)

type diagnostics = {
  violated : violation;
  active : string option;  (** stratum/rule label active when tripped *)
  elapsed_s : float;
  facts : int;  (** facts derived when the run stopped *)
  steps : int;  (** iterations + gamma firings *)
  candidates : int;  (** choice candidates examined *)
  max_queue : int;  (** Rql high-water mark (telemetry-enabled runs) *)
}

type 'a outcome =
  | Complete of 'a
  | Partial of 'a * diagnostics
      (** Graceful degradation: the result built so far plus what
          stopped the run. *)

val value : 'a outcome -> 'a
(** The carried result, whether complete or partial. *)

val diagnostics : ?telemetry:Telemetry.t -> t -> violation -> diagnostics
(** Snapshot the governor's counters; [max_queue] is read from the
    telemetry collector's per-rule queue counters when enabled. *)

val govern : ?telemetry:Telemetry.t -> t -> partial:(unit -> 'a) -> (unit -> 'a) -> 'a outcome
(** [govern t ~partial f] checks the clock/token once, runs [f], and
    wraps the result in {!Complete}; if [f] exits through {!Exhausted},
    the partial result is recovered with [partial] and wrapped in
    {!Partial} together with the diagnostics.  Other exceptions pass
    through untouched. *)

val violation_to_string : violation -> string
val pp_diagnostics : Format.formatter -> diagnostics -> unit
(** Multi-line rendering: the violated budget, the active label, and
    the counter snapshot — what `gbc run` prints on exhaustion. *)

(** {2 Fault injection (tests only)}

    Deterministic failure points for the harness in
    [test/test_limits.ml]: trip a budget or raise an arbitrary
    exception when the cumulative derived-fact count first reaches [k].
    The hook fires at most once. *)

type fault =
  | Trip of violation  (** exit through the structured path *)
  | Raise of exn  (** simulate an engine crash: escapes {!govern} *)

val fault_at : t -> k:int -> fault -> unit
