open Ast

type node = {
  pred : string;
  row : Value.t array;
  reason : reason;
  children : node list;
}

and reason =
  | Extensional
  | Rule of Ast.rule
  | Selected of Ast.rule
  | Chosen
  | Assumed

let flat_part rule =
  List.filter (function Pos _ | Neg _ | Rel _ -> true | _ -> false) rule.body

let is_selection rule =
  has_choice rule || has_next rule || has_extrema rule || has_agg rule

let chosen_prefix = "chosen$"

let is_chosen pred =
  String.length pred > String.length chosen_prefix
  && String.sub pred 0 (String.length chosen_prefix) = chosen_prefix

(* One satisfying assignment of [rule]'s flat body with the head
   unified against [row]; returns the positive subgoal instances. *)
let body_instance db rule row =
  let eqs =
    List.map2 (fun t v -> Rel (Eq, t, Ast.value_to_term v)) rule.head.args (Array.to_list row)
  in
  match Eval.compile_body (flat_part rule @ eqs) with
  | exception Eval.Unsafe _ -> None
  | body ->
    let positives = positive_body_atoms rule in
    let outs = List.map (fun (a : Ast.atom) -> Cmp ("", a.args)) positives in
    (match Eval.solutions body db outs with
    | [] -> None
    | sol :: _ ->
      Some
        (List.map2
           (fun (a : Ast.atom) out ->
             match out with
             | Value.Tup vs -> (a.pred, Array.of_list vs)
             | v -> (a.pred, [| v |]))
           positives sol))

let fact ?(max_depth = 64) program db pred row =
  let program_facts = Database.create () in
  Database.load_facts program_facts (List.filter Ast.is_fact program);
  let rules =
    List.filter (fun r -> not (Ast.is_fact r)) program
  in
  let rec explain depth path pred row =
    if not (Database.mem_fact db pred row) then None
    else if Database.mem_fact program_facts pred row then
      Some { pred; row; reason = Extensional; children = [] }
    else if is_chosen pred then Some { pred; row; reason = Chosen; children = [] }
    else if depth = 0 then Some { pred; row; reason = Assumed; children = [] }
    else if List.mem (pred, row) path then None (* no circular justification *)
    else begin
      let path = (pred, row) :: path in
      let try_rule r =
        if head_pred r <> pred || List.length r.head.args <> Array.length row then None
        else
          match body_instance db r row with
          | None -> None
          | Some subgoals ->
            let children =
              List.map
                (fun (p, sub_row) ->
                  match explain (depth - 1) path p sub_row with
                  | Some node -> Some node
                  | None -> None)
                subgoals
            in
            if List.for_all Option.is_some children then
              Some
                { pred; row;
                  reason = (if is_selection r then Selected r else Rule r);
                  children = List.filter_map Fun.id children }
            else None
      in
      List.find_map try_rule rules
    end
  in
  match explain max_depth [] pred row with
  | Some node -> Some node
  | None ->
    (* In the model but not re-derivable within the budget (e.g. an
       extensional fact of a preloaded database). *)
    if Database.mem_fact db pred row then
      Some { pred; row; reason = Assumed; children = [] }
    else None

let reason_label = function
  | Extensional -> "fact"
  | Rule r -> "by  " ^ Pretty.rule_to_string r
  | Selected r -> "selected by  " ^ Pretty.rule_to_string r
  | Chosen -> "gamma step (chosen)"
  | Assumed -> "in the model"

let pp fmt node =
  let rec go indent node =
    Format.fprintf fmt "%s%s(%s)   [%s]@." indent node.pred
      (String.concat ", " (List.map Value.to_string (Array.to_list node.row)))
      (reason_label node.reason);
    List.iter (go (indent ^ "  ")) node.children
  in
  go "" node
