type t = { true_facts : Database.t; possible : Database.t }

let gamma ?limits ~edb program interpretation =
  Naive.least_model_under ?limits ~model:interpretation ~edb program

let preds_of a b =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    (Database.preds a @ Database.preds b)

let equal a b = Database.equal_on a b (preds_of a b)

let compute ?(limits = Limits.unlimited) ?edb ?(max_rounds = 1000) program =
  let edb = match edb with Some db -> Database.copy db | None -> Database.create () in
  Limits.check_now limits;
  let gamma = gamma ~limits ~edb program in
  (* K underestimates the true atoms, U overestimates; both improve
     monotonically under the squared operator. *)
  let rec alternate k round =
    if round > max_rounds then
      invalid_arg "Wellfounded.compute: alternation did not converge";
    Limits.tick_step limits;
    let u = gamma k in
    let k' = gamma u in
    if equal k k' then { true_facts = k; possible = u } else alternate k' (round + 1)
  in
  alternate (Database.create ()) 0

let is_total t = equal t.true_facts t.possible

let undefined t =
  List.concat_map
    (fun pred ->
      List.filter_map
        (fun row ->
          if Database.mem_fact t.true_facts pred row then None else Some (pred, row))
        (Database.facts_of t.possible pred))
    (Database.preds t.possible)

let subset a b =
  List.for_all
    (fun pred ->
      List.for_all (fun row -> Database.mem_fact b pred row) (Database.facts_of a pred))
    (Database.preds a)

let agrees_with_stable t m = subset t.true_facts m && subset m t.possible
