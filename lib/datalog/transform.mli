(** The conclusion's program transformation, implemented for the shape
    the paper exhibits.

    Section 7 poses the "intriguing possibility" of detecting
    declarative specifications that greedy algorithms implement: the
    naive matching program accumulates a running total [C = C1 + C2]
    through the recursion and selects the cheapest completed run with a
    post-condition

    {v
    opt(C)  <- a(C), least(C).
    a(C)    <- p(_, _, C, I), most(I).
    p(X, Y, C, I) <- next(I), acc(X, Y, C, J), I = J + 1, choice...
    acc(X, Y, C, J) <- p(_, _, C1, J), base(X, Y, C2), C = C1 + C2.
    v}

    and the paper states it "can be transformed into the efficient
    solution of Example 7" — pushing the extremum into the recursion:

    {v
    p(X, Y, C2, I) <- next(I), base(X, Y, C2), least(C2, I), choice...
    v}

    {!push_extremum} performs exactly this rewriting when it recognizes
    the shape: a unary [least] post-condition over a [most]-final
    aggregate of an additively accumulated cost.  Sufficient conditions
    for the transformation to preserve optimality are the paper's open
    problem (matroid theory — see {!Gbc_greedy.Matroid} for the
    executable side of that discussion); this function is the syntactic
    rewriting, and the tests exercise it on instances where greedy is
    optimal.  *)

val push_extremum : Ast.program -> (Ast.program, string) result
(** Returns the transformed program (post-condition and accumulator
    rules removed, [least(C, I)] pushed into the [next] rule reading
    the base relation directly), or [Error reason] when the program
    does not match the recognized shape. *)
