(** Structured diagnostics: one type behind the five scattered
    exceptions the substrate can raise.

    Every user-facing failure — lexing, parsing, unsafe rules, a
    program outside an engine's class, an unreadable file — is
    classified into a {!t} carrying its source position when one
    exists, so the CLI and the repl render all of them uniformly
    ([line L, column C: message]) instead of leaking raw exception
    backtraces. *)

type pos = Lexer.pos = { line : int; col : int }

type t =
  | Lex of string * pos  (** unrecognizable input *)
  | Parse of string * pos  (** syntax error *)
  | Unsafe of string  (** {!Eval.Unsafe}: unorderable body, overflow *)
  | Unsupported of string  (** reference engine: outside the evaluable class *)
  | Not_compilable of string  (** staged engine: outside the compiled class *)
  | Io of string  (** file-system failure ([Sys_error]) *)

val of_exn : exn -> t option
(** Classify one of the known exceptions ({!Lexer.Error},
    {!Parser.Error}, {!Eval.Unsafe}, {!Engine_core.Unsupported} — the
    identity of [Choice_fixpoint.Unsupported] — ,
    {!Stage_engine.Not_compilable}, [Sys_error]); [None] for anything
    else. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, classifying known exceptions into [Error]; unknown
    exceptions propagate. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
(** One-line rendering: an error-class prefix, the position when the
    failure has one ([line 0] positions are omitted), and the
    message. *)
