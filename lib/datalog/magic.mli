(** Magic-set rewriting for positive Datalog queries.

    The engines of this library evaluate bottom-up, computing whole
    relations; a deductive database also needs goal-directed query
    answering (the substrate LDL systems of the era shipped exactly
    this pair).  [rewrite] specializes a positive program to a query
    atom: predicates are {e adorned} with bound/free argument patterns
    (left-to-right sideways information passing), [magic$...] filter
    predicates restrict each adorned rule to the bindings actually
    demanded, and a seed fact carries the query constants.  Bottom-up
    evaluation of the rewritten program then touches only the part of
    the model relevant to the query.

    Supported programs: positive rules (atoms and comparisons).
    Negation, extrema and choice are out of scope — magic sets predate
    and do not commute with the paper's non-monotonic constructs. *)

type rewritten = {
  program : Ast.program;  (** adorned rules + magic rules + seed *)
  query_pred : string;  (** the adorned predicate answering the query *)
}

val rewrite : query:Ast.atom -> Ast.program -> (rewritten, string) result
(** The bound positions of [query] are its ground arguments. *)

val answers : query:Ast.atom -> Ast.program -> Value.t array list
(** Evaluate the rewritten program bottom-up and return the rows of the
    query predicate that match the query's ground arguments.
    @raise Invalid_argument when {!rewrite} fails. *)

val answers_unoptimized : query:Ast.atom -> Ast.program -> Value.t array list
(** Full bottom-up evaluation followed by filtering — the oracle the
    tests and the benchmark compare against. *)

val facts_computed : query:Ast.atom -> Ast.program -> int * int
(** [(magic, full)]: total facts derived by the magic-rewritten program
    versus full evaluation — the work saved. *)
