(** Best-effort provenance: why is a fact in the model?

    [fact] searches backwards for a derivation tree: a rule whose head
    matches the fact and whose body is satisfied in the model, with the
    positive subgoals explained recursively (acyclically — a fact never
    justifies itself along one branch).  For rules carrying [choice] /
    [next] / extrema goals the flat part of the body is checked and the
    node is marked as a greedy selection; [chosen$i] facts and
    extensional facts are leaves.

    This is a diagnostic for users of the CLI ([gbc explain]), not a
    proof object: it exhibits {e one} supported derivation. *)

type node = {
  pred : string;
  row : Value.t array;
  reason : reason;
  children : node list;  (** positive subgoals, in rule order *)
}

and reason =
  | Extensional  (** a fact of the program (or preloaded EDB) *)
  | Rule of Ast.rule  (** derived by this rule *)
  | Selected of Ast.rule  (** derived by a choice / next / extrema rule *)
  | Chosen  (** a [chosen$i] memo tuple (a gamma step) *)
  | Assumed  (** depth budget exhausted; the fact is in the model *)

val fact :
  ?max_depth:int -> Ast.program -> Database.t -> string -> Value.t array -> node option
(** [fact program model pred row]: a derivation of [pred(row)] from
    [program] within [model], or [None] when the fact is not in the
    model at all.  [max_depth] defaults to 64. *)

val pp : Format.formatter -> node -> unit
(** Render as an indented tree. *)
