(** Cost-based join planning for the compiled execution path.

    [analyze] estimates per-rule join costs from relation cardinalities
    (and per-column distinct counts) of the base database, telemetry
    delta totals from a previous run, or flat defaults, and greedily
    orders each rule's positive atoms cheapest-first.

    Reordering changes solution enumeration order, which is observable
    through choice tie-breaking, so it is gated: only programs whose
    every rule body is flat ([Pos]/[Neg]/[Rel]) are reordered.  For
    order-sensitive programs the plan is annotation-only and
    {!program} returns the input unchanged — the compiled engine then
    executes the interpreter's join order and stays byte-identical. *)

type lit_cost = {
  lp_lit : Ast.literal;
  lp_index : int;  (** position in the original body *)
  lp_card : float;  (** estimated cardinality of the scanned relation *)
  lp_cost : float;  (** estimated rows enumerated per outer binding *)
}

type rule_plan = {
  rp_rule : Ast.rule;
  rp_label : string;
  rp_body : Ast.literal list;  (** the planned body order *)
  rp_lits : lit_cost list;  (** positive atoms, in planned order *)
  rp_reordered : bool;  (** the planned order differs from the source *)
}

type t = { rules : rule_plan list; reorderable : bool }

val reorderable : Ast.program -> bool
(** Every rule body is flat — no choice / extrema / aggregate / next
    goals anywhere, so enumeration order cannot leak into the model. *)

val analyze : ?telemetry:Telemetry.t -> ?db:Database.t -> Ast.program -> t

val program : t -> Ast.program
(** The program with rule bodies in planned order. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
